GO ?= go

.PHONY: build test check lint bench fuzz-smoke fmt

build:
	$(GO) build ./...

test:
	$(GO) test ./...

# Race-detector gate over the whole suite (vet + build + go test -race).
check:
	./scripts/check.sh

# Project invariants (ring comparisons, RPC-under-mutex, metric names,
# sim determinism, dropped I/O errors) plus gofmt cleanliness. CI runs
# the same; see EXPERIMENTS.md for reading and suppressing findings.
lint:
	./scripts/lint.sh

# Real-engine benchmark harness; writes BENCH_*.json into the repo root.
# CI runs the same with BENCH_SHORT=1.
bench:
	./scripts/bench.sh

# Short bursts of the native fuzz targets; CI runs the same.
fuzz-smoke:
	$(GO) test ./internal/mapreduce -run '^$$' -fuzz FuzzDecodeKVs -fuzztime=10s
	$(GO) test ./internal/kde -run '^$$' -fuzz FuzzPartitionCDF -fuzztime=10s

fmt:
	gofmt -l -w .
