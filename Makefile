GO ?= go

.PHONY: build test check bench fuzz-smoke fmt

build:
	$(GO) build ./...

test:
	$(GO) test ./...

# Race-detector gate over the whole suite (vet + build + go test -race).
check:
	./scripts/check.sh

# Real-engine benchmark harness; writes BENCH_*.json into the repo root.
# CI runs the same with BENCH_SHORT=1.
bench:
	./scripts/bench.sh

# Short bursts of the native fuzz targets; CI runs the same.
fuzz-smoke:
	$(GO) test ./internal/mapreduce -run '^$$' -fuzz FuzzDecodeKVs -fuzztime=10s
	$(GO) test ./internal/kde -run '^$$' -fuzz FuzzPartitionCDF -fuzztime=10s

fmt:
	gofmt -l -w .
