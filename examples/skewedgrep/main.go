// Skewed grep: the §III-C experiment in miniature, on the *real* engine.
// A batch of grep jobs repeatedly scans the same files, so the
// distributed in-memory cache matters; we run the batch under the LAF
// scheduler and under delay scheduling and compare cache hit ratios and
// per-node load spread — the locality/balance trade-off the paper's
// Figure 7 quantifies.
//
//	go run ./examples/skewedgrep
package main

import (
	"fmt"
	"log"

	"eclipsemr"
	"eclipsemr/internal/apps"
	"eclipsemr/internal/workloads"
)

func main() {
	for _, policy := range []eclipsemr.Policy{eclipsemr.PolicyLAF, eclipsemr.PolicyDelay} {
		if err := runBatch(policy); err != nil {
			log.Fatal(err)
		}
	}
}

func runBatch(policy eclipsemr.Policy) error {
	c, err := eclipsemr.NewCluster(6, eclipsemr.Options{
		Policy:    policy,
		DelayWait: 200e6, // 200ms delay-scheduling wait, scaled with the workload
		Config:    eclipsemr.Config{CacheBytes: 16 << 20},
	})
	if err != nil {
		return err
	}
	defer c.Close()

	// Two input files; the batch accesses one of them far more often, the
	// access skew that static hash ranges handle poorly.
	for i, seed := range []int64{11, 22} {
		text := workloads.Text(seed, 512<<10, 2000)
		name := fmt.Sprintf("logs-%d.txt", i)
		if _, err := c.UploadRecords(name, "demo", eclipsemr.PermPublic, text, '\n'); err != nil {
			return err
		}
	}
	jobs := []string{
		"logs-0.txt", "logs-0.txt", "logs-0.txt", "logs-0.txt",
		"logs-0.txt", "logs-0.txt", "logs-1.txt", "logs-0.txt",
	}
	var matches int
	for i, input := range jobs {
		res, err := c.Run(eclipsemr.JobSpec{
			ID:     fmt.Sprintf("grep-%s-%d", policy, i),
			App:    apps.Grep,
			Inputs: []string{input},
			User:   "demo",
			Params: eclipsemr.Params{"pattern": []byte("ba")},
		})
		if err != nil {
			return err
		}
		pairs, err := c.Collect(res, "demo")
		if err != nil {
			return err
		}
		matches += len(pairs)
	}
	cs := c.CacheStats()
	ss := c.Scheduler().Stats()
	fmt.Printf("%-6s scheduler: %d jobs, %d matching lines, cache hit ratio %.1f%%, load stddev %.1f (locality %.0f%%)\n",
		policy, len(jobs), matches, 100*cs.HitRatio(), ss.LoadStdDev(), 100*ss.LocalityRatio())
	return nil
}
