// Quickstart: boot an in-process EclipseMR cluster, store a text file in
// the DHT file system, run word count under the LAF scheduler, and print
// the ten most frequent words.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"
	"sort"
	"strconv"

	"eclipsemr"
	"eclipsemr/internal/apps"
	"eclipsemr/internal/workloads"
)

func main() {
	// Eight worker servers in one process: each holds a DHT file system
	// shard, an iCache/oCache slice, and 8 map + 8 reduce slots.
	c, err := eclipsemr.NewCluster(8, eclipsemr.Options{
		Policy: eclipsemr.PolicyLAF,
	})
	if err != nil {
		log.Fatal(err)
	}
	defer c.Close()

	// Generate ~1 MiB of Zipf-distributed text and upload it; blocks are
	// distributed across the ring by hash key with record-aligned cuts.
	text := workloads.Text(42, 1<<20, 5000)
	meta, err := c.UploadRecords("corpus.txt", "demo", eclipsemr.PermPublic, text, '\n')
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("uploaded corpus.txt: %d bytes in %d blocks\n", meta.Size, meta.Blocks())

	// Run the registered word count application (one map task per block;
	// intermediate results are proactively shuffled to reducer-side nodes
	// while the maps run).
	res, err := c.Run(eclipsemr.JobSpec{
		ID:     "quickstart-wc",
		App:    apps.WordCount,
		Inputs: []string{"corpus.txt"},
		User:   "demo",
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("job finished: %d map + %d reduce tasks in %v, %d shuffle bytes\n",
		res.MapTasks, res.ReduceTasks, res.Elapsed.Round(1e6), res.ShuffleBytes)

	pairs, err := c.Collect(res, "demo")
	if err != nil {
		log.Fatal(err)
	}
	sort.Slice(pairs, func(i, j int) bool {
		ni, _ := strconv.Atoi(string(pairs[i].Value))
		nj, _ := strconv.Atoi(string(pairs[j].Value))
		return ni > nj
	})
	fmt.Println("top words:")
	for i := 0; i < 10 && i < len(pairs); i++ {
		fmt.Printf("  %-12s %s\n", pairs[i].Key, pairs[i].Value)
	}
}
