// Page rank: run the iterative page rank application over a synthetic
// power-law web graph, storing each iteration's outputs in the DHT file
// system (and oCache) exactly as the paper's iterative experiments do,
// then print the highest-ranked nodes.
//
//	go run ./examples/pagerank
package main

import (
	"fmt"
	"log"
	"sort"

	"eclipsemr"
	"eclipsemr/internal/apps"
	"eclipsemr/internal/workloads"
)

func main() {
	c, err := eclipsemr.NewCluster(6, eclipsemr.Options{Policy: eclipsemr.PolicyLAF})
	if err != nil {
		log.Fatal(err)
	}
	defer c.Close()

	const n = 500
	graph := workloads.Graph(7, n, 4)
	if _, err := c.UploadRecords("web.graph", "demo", eclipsemr.PermPublic, graph, '\n'); err != nil {
		log.Fatal(err)
	}

	res, err := apps.RunPageRank(c, "web.graph", "demo", n, 5, true /* cache iteration outputs */)
	if err != nil {
		log.Fatal(err)
	}
	for i, d := range res.IterationTimes {
		fmt.Printf("iteration %d: %v (%d maps, %d reduces)\n",
			i+1, d.Round(1e6), res.Results[i].MapTasks, res.Results[i].ReduceTasks)
	}

	type ranked struct {
		node string
		rank float64
	}
	var all []ranked
	var total float64
	for node, r := range res.Ranks {
		all = append(all, ranked{node, r})
		total += r
	}
	sort.Slice(all, func(i, j int) bool { return all[i].rank > all[j].rank })
	fmt.Printf("rank mass: %.4f over %d nodes\n", total, len(all))
	fmt.Println("top pages:")
	for i := 0; i < 10 && i < len(all); i++ {
		fmt.Printf("  node %-6s rank %.5f\n", all[i].node, all[i].rank)
	}
}
