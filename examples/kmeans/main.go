// K-means: Lloyd's algorithm as an iterative MapReduce job over a
// Gaussian-mixture point set. The map tasks aggregate partial centroid
// sums locally (which is why the paper's k-means iteration output is only
// kilobytes), and the driver feeds the new centroids to the next
// iteration through job parameters. A second run with a reuse tag shows
// tagged intermediate reuse skipping the map phase entirely.
//
//	go run ./examples/kmeans
package main

import (
	"fmt"
	"log"

	"eclipsemr"
	"eclipsemr/internal/apps"
	"eclipsemr/internal/workloads"
)

func main() {
	c, err := eclipsemr.NewCluster(6, eclipsemr.Options{
		Policy: eclipsemr.PolicyLAF,
		Config: eclipsemr.Config{BlockSize: 8 << 10},
	})
	if err != nil {
		log.Fatal(err)
	}
	defer c.Close()

	data, truth := workloads.Points(3, 3000, 2, 4)
	if _, err := c.UploadRecords("points.csv", "demo", eclipsemr.PermPublic, data, '\n'); err != nil {
		log.Fatal(err)
	}

	initial := [][]float64{{-5, -5}, {5, 5}, {-5, 5}, {5, -5}}
	res, err := apps.RunKMeans(c, "points.csv", "demo", initial, 6, false)
	if err != nil {
		log.Fatal(err)
	}
	for i := range res.Shifts {
		fmt.Printf("iteration %d: centroid shift %.4f in %v\n",
			i+1, res.Shifts[i], res.IterationTimes[i].Round(1e6))
	}
	fmt.Println("learned centroids (true cluster centers in parentheses):")
	for _, got := range res.Centroids {
		// Find the nearest true center for display.
		best, bestD := truth[0], 1e18
		for _, tc := range truth {
			d := (got[0]-tc[0])*(got[0]-tc[0]) + (got[1]-tc[1])*(got[1]-tc[1])
			if d < bestD {
				best, bestD = tc, d
			}
		}
		fmt.Printf("  (%7.3f, %7.3f)   (true: %7.3f, %7.3f)\n", got[0], got[1], best[0], best[1])
	}

	// A second job over the same input with a shared reuse tag skips its
	// map phase and reuses the stored intermediate results (§II-C).
	spec := eclipsemr.JobSpec{
		ID: "wc-shared-1", App: apps.WordCount, Inputs: []string{"points.csv"},
		User: "demo", ReuseTag: "points-words",
	}
	first, err := c.Run(spec)
	if err != nil {
		log.Fatal(err)
	}
	spec.ID = "wc-shared-2"
	second, err := c.Run(spec)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("reuse demo: first run executed %d maps; second run skipped maps: %v\n",
		first.MapTasks, second.MapsSkipped)
}
