// Benchmarks regenerating every table and figure of the paper's §III
// (one benchmark per figure, reporting the figure's own metrics via
// ReportMetric), plus ablation benchmarks for the design choices called
// out in DESIGN.md and microbenchmarks of the real engine.
//
//	go test -bench=. -benchmem
package eclipsemr_test

import (
	"os"
	"path/filepath"

	"fmt"
	"testing"

	"eclipsemr"
	"eclipsemr/internal/apps"
	"eclipsemr/internal/benchrun"
	"eclipsemr/internal/bundle"
	"eclipsemr/internal/chord"
	"eclipsemr/internal/hashing"
	"eclipsemr/internal/kde"
	"eclipsemr/internal/simcluster"
	"eclipsemr/internal/trace"
	"eclipsemr/internal/workloads"
)

// ---------------------------------------------------------------------
// Figure benchmarks (simulated at the paper's nominal scale)
// ---------------------------------------------------------------------

func BenchmarkFig5aIOThroughputPerTask(b *testing.B) {
	for i := 0; i < b.N; i++ {
		a, _, err := simcluster.Fig5([]int{38})
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(a[0].DHTMBps, "dht-MB/s")
		b.ReportMetric(a[0].HDFSMBps, "hdfs-MB/s")
	}
}

func BenchmarkFig5bIOThroughputPerJob(b *testing.B) {
	for i := 0; i < b.N; i++ {
		_, rows, err := simcluster.Fig5([]int{38})
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(rows[0].DHTMBps, "dht-MB/s")
		b.ReportMetric(rows[0].HDFSMBps, "hdfs-MB/s")
	}
}

func BenchmarkFig6aNonIterative(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows, err := simcluster.Fig6a()
		if err != nil {
			b.Fatal(err)
		}
		for _, r := range rows {
			b.ReportMetric(r.LAFSec, r.App+"-laf-s")
			b.ReportMetric(r.DelaySec, r.App+"-delay-s")
		}
	}
}

func BenchmarkFig6bIterative(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows, err := simcluster.Fig6b()
		if err != nil {
			b.Fatal(err)
		}
		for _, r := range rows {
			b.ReportMetric(r.LAFSec, r.App+"-laf-s")
			b.ReportMetric(r.DelaySec, r.App+"-delay-s")
		}
	}
}

func BenchmarkFig7aSkewExecTime(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows, err := simcluster.Fig7([]float64{1.5})
		if err != nil {
			b.Fatal(err)
		}
		for _, r := range rows {
			b.ReportMetric(r.ExecSec, r.Policy+"-s")
		}
	}
}

func BenchmarkFig7bSkewHitRatio(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows, err := simcluster.Fig7([]float64{1.5})
		if err != nil {
			b.Fatal(err)
		}
		for _, r := range rows {
			b.ReportMetric(100*r.HitRatio, r.Policy+"-hit%")
		}
	}
}

func BenchmarkFig8ConcurrentJobs(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows, err := simcluster.Fig8([]int{8})
		if err != nil {
			b.Fatal(err)
		}
		var laf, delay float64
		for _, r := range rows {
			if r.ExecSec > laf && r.Policy == "laf" {
				laf = r.ExecSec
			}
			if r.ExecSec > delay && r.Policy == "delay" {
				delay = r.ExecSec
			}
		}
		b.ReportMetric(laf, "laf-makespan-s")
		b.ReportMetric(delay, "delay-makespan-s")
	}
}

func BenchmarkFig9FrameworkComparison(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows, err := simcluster.Fig9()
		if err != nil {
			b.Fatal(err)
		}
		for _, r := range rows {
			b.ReportMetric(r.EclipseSec, r.App+"-eclipse-s")
			b.ReportMetric(r.SparkSec, r.App+"-spark-s")
		}
	}
}

func benchmarkFig10(b *testing.B, app string) {
	for i := 0; i < b.N; i++ {
		figs, err := simcluster.Fig10()
		if err != nil {
			b.Fatal(err)
		}
		rows := figs[app]
		b.ReportMetric(rows[0].SparkSec, "spark-iter1-s")
		b.ReportMetric(rows[4].SparkSec, "spark-steady-s")
		b.ReportMetric(rows[4].EclipseSec, "eclipse-steady-s")
	}
}

func BenchmarkFig10aKMeansIterations(b *testing.B)   { benchmarkFig10(b, "kmeans") }
func BenchmarkFig10bLogRegIterations(b *testing.B)   { benchmarkFig10(b, "logreg") }
func BenchmarkFig10cPageRankIterations(b *testing.B) { benchmarkFig10(b, "pagerank") }

// ---------------------------------------------------------------------
// Ablations (DESIGN.md §5)
// ---------------------------------------------------------------------

// BenchmarkAblationRoutingHops compares the paper's one-hop DHT routing
// (complete routing tables) against classic multi-hop finger routing.
func BenchmarkAblationRoutingHops(b *testing.B) {
	ring := hashing.NewChordRing()
	for i := 0; i < 40; i++ {
		if err := ring.AddNode(hashing.NodeID(fmt.Sprintf("n%02d", i))); err != nil {
			b.Fatal(err)
		}
	}
	oneHop, err := chord.BuildOneHopRoutes(ring)
	if err != nil {
		b.Fatal(err)
	}
	fingers, err := chord.BuildRoutes(ring, 64)
	if err != nil {
		b.Fatal(err)
	}
	members := ring.Members()
	keys := workloads.UniformKeys(5, 1024)
	count := func(r *chord.Routes) float64 {
		total := 0
		for i, k := range keys {
			path, err := r.Route(members[i%len(members)], k)
			if err != nil {
				b.Fatal(err)
			}
			total += len(path)
		}
		return float64(total) / float64(len(keys))
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		b.ReportMetric(count(oneHop), "onehop-hops")
		b.ReportMetric(count(fingers), "finger-hops")
	}
}

// BenchmarkAblationShuffle quantifies proactive shuffling (§II-D) by
// running the shuffle-bound sort workload with and without it.
func BenchmarkAblationShuffle(b *testing.B) {
	run := func(proactive bool) float64 {
		m, err := simcluster.NewModel(simcluster.DefaultParams(), simcluster.Eclipse, simcluster.LAF(0.001))
		if err != nil {
			b.Fatal(err)
		}
		m.SetProactiveShuffle(proactive)
		var stats simcluster.JobStats
		if err := m.Submit(simcluster.JobDesc{
			Name: "sort", App: simcluster.ProfileSort, InputBytes: 250 << 30, Seed: 1,
		}, 0, func(s simcluster.JobStats) { stats = s }); err != nil {
			b.Fatal(err)
		}
		m.Run()
		return stats.Elapsed()
	}
	for i := 0; i < b.N; i++ {
		proactive := run(true)
		pull := run(false)
		b.ReportMetric(proactive, "proactive-s")
		b.ReportMetric(pull, "pull-s")
		if proactive >= pull {
			b.Fatalf("proactive shuffle (%.0fs) not faster than pull (%.0fs)", proactive, pull)
		}
	}
}

// BenchmarkAblationAlpha sweeps the LAF weight factor on the skewed
// workload (the paper's §III-C performance spectrum).
func BenchmarkAblationAlpha(b *testing.B) {
	for _, alpha := range []float64{0.001, 0.1, 1} {
		b.Run(fmt.Sprintf("alpha=%g", alpha), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				m, err := simcluster.NewModel(simcluster.DefaultParams(), simcluster.Eclipse, simcluster.LAF(alpha))
				if err != nil {
					b.Fatal(err)
				}
				var stats simcluster.JobStats
				if err := m.Submit(simcluster.JobDesc{
					Name: "grep", App: simcluster.ProfileGrep, InputBytes: 90 << 30,
					BlockKeys: workloads.TwoNormalKeys(13, 720, 0.22, 0.71, 0.04, 0.65),
				}, 0, func(s simcluster.JobStats) { stats = s }); err != nil {
					b.Fatal(err)
				}
				m.Run()
				b.ReportMetric(stats.Elapsed(), "exec-s")
			}
		})
	}
}

// BenchmarkAblationKDEBandwidth sweeps the box-kernel bandwidth k: larger
// k smooths the estimated PDF (§II-E).
func BenchmarkAblationKDEBandwidth(b *testing.B) {
	keys := workloads.TwoNormalKeys(3, 1<<14, 0.25, 0.75, 0.03, 0.5)
	for _, bw := range []int{1, 8, 64} {
		b.Run(fmt.Sprintf("k=%d", bw), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				est, err := kde.New(kde.Config{Bins: 4096, Bandwidth: bw, Alpha: 0.5, Window: 1024})
				if err != nil {
					b.Fatal(err)
				}
				for _, k := range keys {
					est.Add(k)
				}
				if _, err := est.Partition(40); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// ---------------------------------------------------------------------
// Real-engine benchmarks
// ---------------------------------------------------------------------

// BenchmarkEngineWordCount measures a full word count job on the real
// in-process engine (DHT FS + caches + proactive shuffle + LAF).
func BenchmarkEngineWordCount(b *testing.B) {
	c, err := eclipsemr.NewCluster(4, eclipsemr.Options{})
	if err != nil {
		b.Fatal(err)
	}
	defer c.Close()
	text := workloads.Text(1, 1<<20, 2000)
	if _, err := c.UploadRecords("bench.txt", "b", eclipsemr.PermPublic, text, '\n'); err != nil {
		b.Fatal(err)
	}
	b.SetBytes(int64(len(text)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := c.Run(eclipsemr.JobSpec{
			ID: fmt.Sprintf("bench-wc-%d", i), App: apps.WordCount,
			Inputs: []string{"bench.txt"}, User: "b",
		})
		if err != nil {
			b.Fatal(err)
		}
		if len(res.OutputFiles) == 0 {
			b.Fatal("no output")
		}
	}
}

// BenchmarkDHTFSUploadRead measures file round trips through the real
// distributed file system.
func BenchmarkDHTFSUploadRead(b *testing.B) {
	c, err := eclipsemr.NewCluster(4, eclipsemr.Options{})
	if err != nil {
		b.Fatal(err)
	}
	defer c.Close()
	data := workloads.Text(2, 1<<20, 500)
	b.SetBytes(int64(len(data)) * 2)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		name := fmt.Sprintf("rt-%d.dat", i)
		if _, err := c.Upload(name, "b", eclipsemr.PermPublic, data); err != nil {
			b.Fatal(err)
		}
		if _, err := c.ReadFile(name, "b"); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkRingLookup measures consistent-hash owner lookups.
func BenchmarkRingLookup(b *testing.B) {
	ring := hashing.NewChordRing()
	for i := 0; i < 40; i++ {
		if err := ring.AddNode(hashing.NodeID(fmt.Sprintf("n%02d", i))); err != nil {
			b.Fatal(err)
		}
	}
	keys := workloads.UniformKeys(1, 4096)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := ring.Owner(keys[i%len(keys)]); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkKDEAdd measures density-estimator updates, the per-task cost
// the LAF scheduler adds to the submission path.
func BenchmarkKDEAdd(b *testing.B) {
	est, err := kde.New(kde.DefaultConfig())
	if err != nil {
		b.Fatal(err)
	}
	keys := workloads.UniformKeys(1, 4096)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		est.Add(keys[i%len(keys)])
	}
}

// BenchmarkAblationVirtualNodes quantifies block-placement balance vs
// tokens per server: the max/min key-space share across 40 nodes. The
// paper's single-token prototype tolerates the skew via LAF scheduling;
// virtual nodes attack it at placement time.
func BenchmarkAblationVirtualNodes(b *testing.B) {
	spread := func(vnodes int) float64 {
		r, err := hashing.NewVirtualRing(vnodes)
		if err != nil {
			b.Fatal(err)
		}
		for i := 0; i < 40; i++ {
			if err := r.AddNode(hashing.NodeID(fmt.Sprintf("n%02d", i))); err != nil {
				b.Fatal(err)
			}
		}
		min, max := 2.0, 0.0
		for _, s := range r.LoadShare() {
			if s < min {
				min = s
			}
			if s > max {
				max = s
			}
		}
		return max / min
	}
	for i := 0; i < b.N; i++ {
		b.ReportMetric(spread(1), "1-token-maxmin")
		b.ReportMetric(spread(16), "16-token-maxmin")
		b.ReportMetric(spread(128), "128-token-maxmin")
	}
}

// ---------------------------------------------------------------------
// Harness benchmarks (the BENCH_*.json trajectory)
// ---------------------------------------------------------------------

// BenchmarkHarnessWordCount and BenchmarkHarnessKMeans run the benchrun
// harness on the real engine and report the headline numbers. When
// BENCH_DIR is set (scripts/bench.sh does this), the last run's full
// report is written to BENCH_<workload>.json so CI records a perf point
// per PR. BENCH_SHORT=1 (or -short) selects the CI smoke size.
func BenchmarkHarnessWordCount(b *testing.B) { harnessBench(b, "wordcount") }

func BenchmarkHarnessKMeans(b *testing.B) { harnessBench(b, "kmeans") }

func harnessBench(b *testing.B, workload string) {
	cfg := benchrun.DefaultConfig()
	if testing.Short() || os.Getenv("BENCH_SHORT") != "" {
		cfg = benchrun.ShortConfig()
	}
	var rep benchrun.Report
	for i := 0; i < b.N; i++ {
		var err error
		rep, err = benchrun.Run(workload, cfg)
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(rep.WallMS, "wall-ms")
	b.ReportMetric(rep.CacheHitRatio*100, "cache-hit-%")
	if s, ok := rep.Stages["mr.map.read_ns"]; ok {
		b.ReportMetric(s.P99MS, "map-read-p99-ms")
	}
	if dir := os.Getenv("BENCH_DIR"); dir != "" {
		path := filepath.Join(dir, "BENCH_"+workload+".json")
		if err := benchrun.WriteJSON(path, rep); err != nil {
			b.Fatal(err)
		}
		b.Logf("wrote %s", path)
	}
}

// BenchmarkHarnessTraceOverhead runs wordcount untraced and traced on
// the same config and reports the wall-time cost of span recording. The
// traced run's Chrome export is schema-validated and, when BENCH_DIR is
// set, written to trace.json (the CI artifact — load it in Perfetto)
// next to BENCH_trace_overhead.json.
func BenchmarkHarnessTraceOverhead(b *testing.B) {
	cfg := benchrun.DefaultConfig()
	if testing.Short() || os.Getenv("BENCH_SHORT") != "" {
		cfg = benchrun.ShortConfig()
	}
	var (
		rep    benchrun.OverheadReport
		chrome []byte
	)
	for i := 0; i < b.N; i++ {
		var err error
		rep, chrome, err = benchrun.Overhead("wordcount", cfg)
		if err != nil {
			b.Fatal(err)
		}
	}
	if rep.Traced.TraceSpans == 0 {
		b.Fatal("traced run recorded no spans")
	}
	if err := trace.ValidateChrome(chrome); err != nil {
		b.Fatalf("traced run exported invalid Chrome trace: %v", err)
	}
	b.ReportMetric(rep.Untraced.WallMS, "untraced-ms")
	b.ReportMetric(rep.Traced.WallMS, "traced-ms")
	b.ReportMetric(rep.DeltaPct, "overhead-%")
	b.ReportMetric(float64(rep.Traced.TraceSpans), "spans")
	if dir := os.Getenv("BENCH_DIR"); dir != "" {
		path := filepath.Join(dir, "BENCH_trace_overhead.json")
		if err := benchrun.WriteJSON(path, rep); err != nil {
			b.Fatal(err)
		}
		tracePath := filepath.Join(dir, "trace.json")
		if err := os.WriteFile(tracePath, chrome, 0o644); err != nil {
			b.Fatal(err)
		}
		b.Logf("wrote %s and %s", path, tracePath)
	}
}

// BenchmarkHarnessChaosBundle runs the seeded kill-a-node recovery
// scenario with event recording on and captures the resulting debug
// bundle — the same canonical format the engine's flight recorder
// writes. When BENCH_DIR is set the bundle lands in bundle.json, which
// CI re-validates with cmd/bundlecheck so a schema drift in the capture
// path fails the build, not the person who later opens a real incident
// bundle. The headline metrics are the recovered wall time and the size
// of the merged timeline.
func BenchmarkHarnessChaosBundle(b *testing.B) {
	var (
		data    []byte
		stats   simcluster.JobStats
		nEvents int
	)
	for i := 0; i < b.N; i++ {
		p := simcluster.DefaultParams()
		p.Nodes = 8
		m, err := simcluster.NewModel(p, simcluster.Eclipse, simcluster.LAF(0.001))
		if err != nil {
			b.Fatal(err)
		}
		m.EnableEvents(99)
		m.EnableTracing(99)
		if err := m.KillNodeAtReduceStart(3); err != nil {
			b.Fatal(err)
		}
		if err := m.Submit(simcluster.JobDesc{
			Name: "chaos-wc", App: simcluster.ProfileWordCount, InputBytes: 2 << 30, Seed: 1,
		}, 0, func(s simcluster.JobStats) { stats = s }); err != nil {
			b.Fatal(err)
		}
		m.Run()
		if stats.Finish == 0 {
			b.Fatal("chaos job never completed")
		}
		data, err = m.DebugBundle("", "bench_capture")
		if err != nil {
			b.Fatal(err)
		}
		if err := bundle.Validate(data); err != nil {
			b.Fatalf("captured bundle invalid: %v", err)
		}
		nEvents = len(m.Events(""))
	}
	b.ReportMetric(stats.Finish, "recovered-wall-s")
	b.ReportMetric(float64(nEvents), "events")
	if dir := os.Getenv("BENCH_DIR"); dir != "" {
		path := filepath.Join(dir, "bundle.json")
		if err := os.WriteFile(path, data, 0o644); err != nil {
			b.Fatal(err)
		}
		b.Logf("wrote %s", path)
	}
}

// BenchmarkHarnessRing compares the ring backends — lookup ns/op, keys
// remapped per join/leave and load balance at several member counts —
// and writes BENCH_ring.json when BENCH_DIR is set. The headline metrics
// contrast the chord ring's lookup growth with the O(1) backends at the
// largest configured size.
func BenchmarkHarnessRing(b *testing.B) {
	cfg := benchrun.DefaultRingBenchConfig()
	if testing.Short() || os.Getenv("BENCH_SHORT") != "" {
		cfg = benchrun.ShortRingBenchConfig()
	}
	var rep benchrun.RingReport
	for i := 0; i < b.N; i++ {
		var err error
		rep, err = benchrun.RingBench(cfg)
		if err != nil {
			b.Fatal(err)
		}
	}
	for _, back := range rep.Backends {
		last := back.Points[len(back.Points)-1]
		b.ReportMetric(last.LookupNS, back.Algorithm+"-lookup-ns")
		b.ReportMetric(last.JoinRemappedFrac*100, back.Algorithm+"-join-remap-%")
	}
	if dir := os.Getenv("BENCH_DIR"); dir != "" {
		path := filepath.Join(dir, "BENCH_ring.json")
		if err := benchrun.WriteJSON(path, rep); err != nil {
			b.Fatal(err)
		}
		b.Logf("wrote %s", path)
	}
}
