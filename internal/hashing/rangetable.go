package hashing

import (
	"fmt"
	"sort"
	"strings"
)

// RangeTable maps the full key space onto an ordered list of servers using
// explicit boundaries, independent of the servers' ring positions. This is
// the job scheduler's hash-key table from the paper: the LAF scheduler
// re-partitions the CDF of recent accesses into equally-probable ranges,
// so the cache layer's ranges can be deliberately misaligned with the DHT
// file system's static ranges.
//
// Server i owns [bounds[i], bounds[i+1]) with the last range wrapping
// around to bounds[0]. Zero-width ranges are legal: the paper's hot-spot
// example collapses a server's range to nothing so all incoming tasks go
// elsewhere.
type RangeTable struct {
	servers []NodeID
	bounds  []Key // len == len(servers); bounds[i] is the start of server i's range
}

// NewRangeTable builds a table from parallel server and boundary slices.
// Boundaries must be non-decreasing after the first element when traversed
// clockwise from bounds[0]; in practice callers supply sorted bounds.
func NewRangeTable(servers []NodeID, bounds []Key) (*RangeTable, error) {
	if len(servers) == 0 {
		return nil, ErrEmptyRing
	}
	if len(servers) != len(bounds) {
		return nil, fmt.Errorf("hashing: %d servers but %d bounds", len(servers), len(bounds))
	}
	for i := 1; i < len(bounds); i++ {
		if bounds[i] < bounds[i-1] {
			return nil, fmt.Errorf("hashing: bounds not sorted at index %d", i)
		}
	}
	return &RangeTable{
		servers: append([]NodeID(nil), servers...),
		bounds:  append([]Key(nil), bounds...),
	}, nil
}

// UniformRangeTable assigns each server an equal-width slice of the key
// space, in the given server order. This is the scheduler's initial state
// before any access history exists (a uniform access PDF partitions into
// equal-width ranges).
func UniformRangeTable(servers []NodeID) (*RangeTable, error) {
	if len(servers) == 0 {
		return nil, ErrEmptyRing
	}
	n := len(servers)
	bounds := make([]Key, n)
	step := (uint64(1) << 63) / uint64(n) * 2 // 2^64 / n without overflow
	for i := range bounds {
		bounds[i] = Key(uint64(i) * step)
	}
	return NewRangeTable(servers, bounds)
}

// AlignedRangeTable builds a table whose ranges exactly mirror the DHT
// file system ring: each server's range is its ring arc. This is the
// weight-factor-zero / delay-scheduling configuration in which the cache
// layer is perfectly aligned with the file system layer.
func AlignedRangeTable(r *ChordRing) (*RangeTable, error) {
	if r.Len() == 0 {
		return nil, ErrEmptyRing
	}
	members := r.Members() // ascending ring position
	n := len(members)
	servers := make([]NodeID, n)
	bounds := make([]Key, n)
	// A ring node at position p owns the arc (pred, p]. Expressed as
	// half-open [start, end) table ranges, the range [pos[j], pos[j+1])
	// belongs to the node at pos[j+1]; the final range wraps around to the
	// first node. The one-key shift at the exact boundary is harmless here:
	// scheduler ranges are a locality hint, not an ownership property.
	for j, id := range members {
		pos, _ := r.Position(id)
		bounds[j] = pos
		servers[j] = members[(j+1)%n]
	}
	return NewRangeTable(servers, bounds)
}

// Len returns the number of servers in the table.
func (t *RangeTable) Len() int { return len(t.servers) }

// Servers returns the servers in table order.
func (t *RangeTable) Servers() []NodeID {
	return append([]NodeID(nil), t.servers...)
}

// Bounds returns the range-start boundaries in table order.
func (t *RangeTable) Bounds() []Key {
	return append([]Key(nil), t.bounds...)
}

// Lookup returns the server whose range contains k.
func (t *RangeTable) Lookup(k Key) NodeID {
	return t.servers[t.LookupIndex(k)]
}

// LookupIndex returns the table index of the server whose range contains
// k. MapReduce partitioning uses the index directly as the reduce
// partition number.
func (t *RangeTable) LookupIndex(k Key) int {
	// Find the last bound <= k; keys below bounds[0] wrap into the final
	// server's range.
	i := sort.Search(len(t.bounds), func(i int) bool { return t.bounds[i] > k })
	// i is the first bound > k, so server i-1 owns k; i == 0 wraps.
	idx := (i - 1 + len(t.servers)) % len(t.servers)
	// Skip zero-width ranges backwards: a server whose range is empty
	// cannot own any key. bounds[idx] == bounds[idx+1] means empty.
	for n := 0; n < len(t.servers); n++ {
		next := (idx + 1) % len(t.servers)
		if t.bounds[idx] != t.bounds[next] || len(t.servers) == 1 {
			return idx
		}
		idx = (idx - 1 + len(t.servers)) % len(t.servers)
	}
	return idx
}

// RangeOf returns the half-open range [start, end) of the i-th server.
func (t *RangeTable) RangeOf(i int) (start, end Key) {
	return t.bounds[i], t.bounds[(i+1)%len(t.bounds)]
}

// ServerRange returns the range of the named server, or ok=false if the
// server is not in the table.
func (t *RangeTable) ServerRange(id NodeID) (start, end Key, ok bool) {
	for i, s := range t.servers {
		if s == id {
			start, end = t.RangeOf(i)
			return start, end, true
		}
	}
	return 0, 0, false
}

// Contains reports whether key k falls in the range of server id.
func (t *RangeTable) Contains(id NodeID, k Key) bool {
	return t.Lookup(k) == id
}

// String renders the table in the paper's "server: [start~end)" style.
func (t *RangeTable) String() string {
	var b strings.Builder
	for i, s := range t.servers {
		start, end := t.RangeOf(i)
		fmt.Fprintf(&b, "%s: [%s~%s)\n", s, start, end)
	}
	return b.String()
}
