package hashing

import (
	"fmt"
	"strconv"
	"strings"
)

// Ring is the placement contract every consistent-hashing backend honors.
// dhtfs block placement, shuffle routing and scheduler range cuts all go
// through this interface; the conformance suite in ringtest pins the
// invariants callers rely on:
//
//   - Determinism: the same membership operation sequence yields the same
//     owner for every key (no hidden randomness or wall-clock state).
//   - Total coverage: with at least one member, every key has an owner and
//     the owner is a live member.
//   - Monotonicity on join: AddNode remaps only keys that move to the new
//     node; no key moves between two pre-existing nodes.
//   - Bounded churn on leave: Remove remaps at most a small multiple of
//     1/n of the key space (the departed arc plus backend bookkeeping).
//   - Replica sets: duplicate-free, members-only, clamped to Len().
//
// Implementations are not safe for concurrent mutation; callers
// synchronize externally, as membership changes flow through the resource
// manager. Snapshot returns an independent deep copy for lock-free reads.
type Ring interface {
	// AddNode joins a node; joining a current member is an error.
	AddNode(id NodeID) error
	// Remove leaves a node; removing a non-member returns false.
	Remove(id NodeID) bool
	// Len returns the number of member nodes.
	Len() int
	// Members returns the node IDs in the backend's deterministic order.
	Members() []NodeID
	// Owner returns the node owning key k (ErrEmptyRing when empty).
	Owner(k Key) (NodeID, error)
	// Successor returns the next node after id in the backend's order.
	Successor(id NodeID) (NodeID, error)
	// Predecessor returns the node before id in the backend's order.
	Predecessor(id NodeID) (NodeID, error)
	// ReplicaSet returns n distinct live nodes for key k, owner first.
	ReplicaSet(k Key, n int) ([]NodeID, error)
	// RangeTable cuts the key space into one contiguous range per member
	// as the scheduler's initial locality hint.
	RangeTable() (*RangeTable, error)
	// Snapshot returns an independent deep copy.
	Snapshot() Ring
	// Algorithm names the backend (a valid NewAlgorithmRing argument).
	Algorithm() string
}

// Backend names accepted by NewAlgorithmRing and the -ring flag.
const (
	// AlgorithmChord is the paper's SHA-1 ring (single token per node,
	// O(log n) lookup). The empty string selects it too.
	AlgorithmChord = "chord"
	// AlgorithmJump is jump consistent hash (Lamping & Veach): O(1)
	// expected lookup over an arrival-ordered bucket list.
	AlgorithmJump = "jump"
	// AlgorithmPower is power-of-two consistent hash (Leu): O(1)
	// worst-case lookup, at most 2x load skew between powers of two.
	AlgorithmPower = "power"
	// AlgorithmRendezvous is highest-random-weight hashing: O(n) lookup,
	// per-key independent candidate order, optimal churn.
	AlgorithmRendezvous = "rendezvous"
)

// Algorithms lists the selectable backends in flag/matrix order. The
// chord backend also accepts a "chord:<vnodes>" spelling that places
// <vnodes> virtual tokens per node (the SHA-1 virtual-node ring).
func Algorithms() []string {
	return []string{AlgorithmChord, AlgorithmJump, AlgorithmPower, AlgorithmRendezvous}
}

// NewAlgorithmRing builds an empty ring of the named backend. The empty
// name selects the paper's default chord ring; "chord:<V>" selects the
// SHA-1 ring with V virtual tokens per node.
func NewAlgorithmRing(name string) (Ring, error) {
	switch name {
	case "", AlgorithmChord:
		return NewChordRing(), nil
	case AlgorithmJump:
		return NewJumpRing(), nil
	case AlgorithmPower:
		return NewPowerRing(), nil
	case AlgorithmRendezvous:
		return NewRendezvousRing(), nil
	}
	if v, ok := strings.CutPrefix(name, AlgorithmChord+":"); ok {
		n, err := strconv.Atoi(v)
		if err != nil {
			return nil, fmt.Errorf("hashing: bad vnode count in ring algorithm %q", name)
		}
		return NewVirtualRing(n)
	}
	return nil, fmt.Errorf("hashing: unknown ring algorithm %q (want one of %s)",
		name, strings.Join(Algorithms(), ", "))
}

// mix64 is SplitMix64's finalizer: a cheap bijective scrambler applied to
// keys before bucket selection so the jump/power recurrences see
// well-distributed bits even for structured inputs.
func mix64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}
