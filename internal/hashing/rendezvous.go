package hashing

import (
	"errors"
	"sort"
)

// RendezvousRing implements highest-random-weight (rendezvous) hashing:
// every key scores every member with an independent hash and the highest
// score wins. Each key sees its own uniformly random candidate order, so
// replica sets spread load across the cluster without the ring-neighbor
// clustering of arc-based schemes — the "local candidates with bounded
// loads" placement that the iCache/oCache locality story wants. Churn is
// optimal: a join steals exactly the keys the new node out-scores, and a
// leave remaps only the departed node's keys. The price is O(n) per
// lookup, which the churn benchmark makes visible.
type RendezvousRing struct {
	members []NodeID // sorted; scores break ties by this order
	seeds   map[NodeID]uint64
}

var _ Ring = (*RendezvousRing)(nil)

// NewRendezvousRing returns an empty rendezvous ring.
func NewRendezvousRing() *RendezvousRing {
	return &RendezvousRing{seeds: make(map[NodeID]uint64)}
}

// score is the weight of node (by seed) for key k. Seeds are derived from
// the node ID alone, so two rings with the same membership agree on every
// score regardless of join order.
func rendezvousScore(k Key, seed uint64) uint64 {
	return mix64(uint64(k) ^ seed)
}

// AddNode joins a node, keeping members sorted.
func (r *RendezvousRing) AddNode(id NodeID) error {
	if _, ok := r.seeds[id]; ok {
		return errors.New("hashing: node " + string(id) + " already on ring")
	}
	i := sort.Search(len(r.members), func(i int) bool { return r.members[i] >= id })
	r.members = append(r.members, "")
	copy(r.members[i+1:], r.members[i:])
	r.members[i] = id
	r.seeds[id] = uint64(KeyOfString(string(id)))
	return nil
}

// Remove leaves a node; only its keys remap.
func (r *RendezvousRing) Remove(id NodeID) bool {
	if _, ok := r.seeds[id]; !ok {
		return false
	}
	i := sort.Search(len(r.members), func(i int) bool { return r.members[i] >= id })
	r.members = append(r.members[:i], r.members[i+1:]...)
	delete(r.seeds, id)
	return true
}

// Len returns the member count.
func (r *RendezvousRing) Len() int { return len(r.members) }

// Members returns the nodes in sorted ID order.
func (r *RendezvousRing) Members() []NodeID {
	return append([]NodeID(nil), r.members...)
}

// Owner returns the member with the highest score for k.
func (r *RendezvousRing) Owner(k Key) (NodeID, error) {
	if len(r.members) == 0 {
		return "", ErrEmptyRing
	}
	best := r.members[0]
	bestScore := rendezvousScore(k, r.seeds[best])
	for _, id := range r.members[1:] {
		if s := rendezvousScore(k, r.seeds[id]); s > bestScore {
			best, bestScore = id, s
		}
	}
	return best, nil
}

// ReplicaSet returns the n highest-scoring members for k, owner first.
func (r *RendezvousRing) ReplicaSet(k Key, n int) ([]NodeID, error) {
	if len(r.members) == 0 {
		return nil, ErrEmptyRing
	}
	if n > len(r.members) {
		n = len(r.members)
	}
	type scored struct {
		id NodeID
		s  uint64
	}
	all := make([]scored, len(r.members))
	for i, id := range r.members {
		all[i] = scored{id: id, s: rendezvousScore(k, r.seeds[id])}
	}
	// Descending score; members is sorted and scores derive from distinct
	// SHA-1 seeds, so ties are broken by ID order deterministically.
	sort.SliceStable(all, func(i, j int) bool { return all[i].s > all[j].s })
	out := make([]NodeID, n)
	for i := 0; i < n; i++ {
		out[i] = all[i].id
	}
	return out, nil
}

// Successor returns the next node in sorted ID order, wrapping.
func (r *RendezvousRing) Successor(id NodeID) (NodeID, error) {
	i, err := r.indexOf(id)
	if err != nil {
		return "", err
	}
	return r.members[(i+1)%len(r.members)], nil
}

// Predecessor returns the previous node in sorted ID order, wrapping.
func (r *RendezvousRing) Predecessor(id NodeID) (NodeID, error) {
	i, err := r.indexOf(id)
	if err != nil {
		return "", err
	}
	return r.members[(i-1+len(r.members))%len(r.members)], nil
}

func (r *RendezvousRing) indexOf(id NodeID) (int, error) {
	if _, ok := r.seeds[id]; !ok {
		return 0, errors.New("hashing: node " + string(id) + " not on ring")
	}
	return sort.Search(len(r.members), func(i int) bool { return r.members[i] >= id }), nil
}

// RangeTable cuts the key space uniformly over sorted member order.
// Rendezvous ownership has no contiguous arcs to align with, so equal
// cuts seed the scheduler and KDE re-partitioning refines them.
func (r *RendezvousRing) RangeTable() (*RangeTable, error) {
	return UniformRangeTable(r.Members())
}

// Snapshot returns an independent deep copy.
func (r *RendezvousRing) Snapshot() Ring {
	c := &RendezvousRing{
		members: append([]NodeID(nil), r.members...),
		seeds:   make(map[NodeID]uint64, len(r.seeds)),
	}
	for id, s := range r.seeds {
		c.seeds[id] = s
	}
	return c
}

// Algorithm identifies the backend.
func (r *RendezvousRing) Algorithm() string { return AlgorithmRendezvous }
