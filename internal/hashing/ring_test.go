package hashing

import (
	"fmt"
	"math/rand"
	"sort"
	"testing"
	"testing/quick"
)

// paperRing reproduces the six-server ring from Figure 1 of the paper,
// scaled to our 64-bit space by using the raw positions directly.
func paperRing(t *testing.T) *ChordRing {
	t.Helper()
	r := NewChordRing()
	for _, n := range []struct {
		id  NodeID
		pos Key
	}{
		{"A", 5}, {"B", 15}, {"C", 26}, {"D", 39}, {"E", 47}, {"F", 57},
	} {
		if err := r.Add(n.id, n.pos); err != nil {
			t.Fatal(err)
		}
	}
	return r
}

func TestRingOwnerMatchesPaperFigure1(t *testing.T) {
	r := paperRing(t)
	// Figure 1: A owns [55~5), i.e. keys after F's position 57 wrap to A.
	cases := []struct {
		k    Key
		want NodeID
	}{
		{5, "A"}, {60, "A"}, {0, "A"},
		{6, "B"}, {15, "B"}, {11, "B"},
		{18, "C"}, {26, "C"},
		{38, "D"}, {39, "D"},
		{47, "E"},
		{55, "F"}, {57, "F"},
	}
	for _, c := range cases {
		got, err := r.Owner(c.k)
		if err != nil {
			t.Fatal(err)
		}
		if got != c.want {
			t.Errorf("Owner(%d) = %s want %s", c.k, got, c.want)
		}
	}
}

func TestRingEmpty(t *testing.T) {
	r := NewChordRing()
	if _, err := r.Owner(1); err != ErrEmptyRing {
		t.Fatalf("Owner on empty ring: err = %v, want ErrEmptyRing", err)
	}
	if _, err := r.ReplicaSet(1, 3); err != ErrEmptyRing {
		t.Fatalf("ReplicaSet on empty ring: err = %v, want ErrEmptyRing", err)
	}
	if r.Remove("x") {
		t.Fatal("Remove on empty ring returned true")
	}
}

func TestRingDuplicateAddRejected(t *testing.T) {
	r := NewChordRing()
	if err := r.Add("A", 10); err != nil {
		t.Fatal(err)
	}
	if err := r.Add("A", 20); err == nil {
		t.Fatal("duplicate node ID accepted")
	}
	if err := r.Add("B", 10); err == nil {
		t.Fatal("duplicate position accepted")
	}
}

func TestRingSuccessorPredecessor(t *testing.T) {
	r := paperRing(t)
	cases := []struct{ id, succ, pred NodeID }{
		{"A", "B", "F"},
		{"B", "C", "A"},
		{"F", "A", "E"},
	}
	for _, c := range cases {
		s, err := r.Successor(c.id)
		if err != nil || s != c.succ {
			t.Errorf("Successor(%s) = %s,%v want %s", c.id, s, err, c.succ)
		}
		p, err := r.Predecessor(c.id)
		if err != nil || p != c.pred {
			t.Errorf("Predecessor(%s) = %s,%v want %s", c.id, p, err, c.pred)
		}
	}
	if _, err := r.Successor("Z"); err == nil {
		t.Fatal("Successor of unknown node did not error")
	}
}

func TestRingReplicaSetPredAndSucc(t *testing.T) {
	r := paperRing(t)
	// Key 20 is owned by C; replicas should be C (owner), B (pred), D (succ).
	set, err := r.ReplicaSet(20, 3)
	if err != nil {
		t.Fatal(err)
	}
	want := []NodeID{"C", "B", "D"}
	if fmt.Sprint(set) != fmt.Sprint(want) {
		t.Fatalf("ReplicaSet(20,3) = %v want %v", set, want)
	}
}

func TestRingReplicaSetSmallRing(t *testing.T) {
	r := NewChordRing()
	if err := r.Add("A", 10); err != nil {
		t.Fatal(err)
	}
	set, err := r.ReplicaSet(5, 3)
	if err != nil {
		t.Fatal(err)
	}
	if len(set) != 1 || set[0] != "A" {
		t.Fatalf("single-node ReplicaSet = %v", set)
	}
	if err := r.Add("B", 20); err != nil {
		t.Fatal(err)
	}
	set, _ = r.ReplicaSet(5, 3)
	if len(set) != 2 {
		t.Fatalf("two-node ReplicaSet = %v", set)
	}
	if set[0] == set[1] {
		t.Fatalf("ReplicaSet returned duplicates: %v", set)
	}
}

func TestRingRemoveSuccessorTakesOver(t *testing.T) {
	r := paperRing(t)
	// B owns key 10. Remove B: C (successor) must take over.
	if !r.Remove("B") {
		t.Fatal("Remove(B) returned false")
	}
	got, err := r.Owner(10)
	if err != nil {
		t.Fatal(err)
	}
	if got != "C" {
		t.Fatalf("after removing B, Owner(10) = %s want C", got)
	}
	if r.Len() != 5 {
		t.Fatalf("Len after remove = %d", r.Len())
	}
}

func TestRingRangeOfAndOwns(t *testing.T) {
	r := paperRing(t)
	start, end, err := r.RangeOf("B")
	if err != nil {
		t.Fatal(err)
	}
	if start != 5 || end != 15 {
		t.Fatalf("RangeOf(B) = (%d,%d] want (5,15]", start, end)
	}
	if !r.Owns("B", 10) || r.Owns("B", 20) || r.Owns("B", 5) || !r.Owns("B", 15) {
		t.Fatal("Owns(B, ·) boundary behaviour wrong")
	}
}

func TestRingMembersSorted(t *testing.T) {
	r := NewChordRing()
	rng := rand.New(rand.NewSource(42))
	for i := 0; i < 50; i++ {
		if err := r.Add(NodeID(fmt.Sprintf("n%02d", i)), Key(rng.Uint64())); err != nil {
			t.Fatal(err)
		}
	}
	members := r.Members()
	positions := make([]uint64, len(members))
	for i, m := range members {
		p, ok := r.Position(m)
		if !ok {
			t.Fatalf("Position(%s) missing", m)
		}
		positions[i] = uint64(p)
	}
	if !sort.SliceIsSorted(positions, func(i, j int) bool { return positions[i] < positions[j] }) {
		t.Fatal("Members() not in ring order")
	}
}

func TestRingClone(t *testing.T) {
	r := paperRing(t)
	c := r.Clone()
	c.Remove("A")
	if r.Len() != 6 || c.Len() != 5 {
		t.Fatalf("Clone not independent: %d / %d", r.Len(), c.Len())
	}
}

// Property: every key has exactly one owner, and the owner actually Owns it.
func TestRingOwnershipConsistent(t *testing.T) {
	r := NewChordRing()
	rng := rand.New(rand.NewSource(7))
	for i := 0; i < 20; i++ {
		if err := r.Add(NodeID(fmt.Sprintf("n%02d", i)), Key(rng.Uint64())); err != nil {
			t.Fatal(err)
		}
	}
	f := func(k Key) bool {
		owner, err := r.Owner(k)
		if err != nil {
			return false
		}
		if !r.Owns(owner, k) {
			return false
		}
		// No other node owns it.
		for _, m := range r.Members() {
			if m != owner && r.Owns(m, k) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

// Property: removing a node only reassigns keys that node owned; all other
// keys keep their owner (the minimal-disruption guarantee of consistent
// hashing).
func TestRingConsistentHashingMinimalDisruption(t *testing.T) {
	r := NewChordRing()
	rng := rand.New(rand.NewSource(11))
	for i := 0; i < 20; i++ {
		if err := r.Add(NodeID(fmt.Sprintf("n%02d", i)), Key(rng.Uint64())); err != nil {
			t.Fatal(err)
		}
	}
	victim := NodeID("n07")
	before := map[Key]NodeID{}
	keys := make([]Key, 2000)
	for i := range keys {
		keys[i] = Key(rng.Uint64())
		owner, _ := r.Owner(keys[i])
		before[keys[i]] = owner
	}
	r.Remove(victim)
	for _, k := range keys {
		after, _ := r.Owner(k)
		if before[k] != victim && after != before[k] {
			t.Fatalf("key %v moved from %s to %s although %s was removed",
				k, before[k], after, victim)
		}
		if before[k] == victim && after == victim {
			t.Fatalf("key %v still owned by removed node", k)
		}
	}
}

func TestAddNodeUsesDerivedPosition(t *testing.T) {
	r := NewChordRing()
	if err := r.AddNode("worker-1"); err != nil {
		t.Fatal(err)
	}
	pos, ok := r.Position("worker-1")
	if !ok || pos != KeyOfString("worker-1") {
		t.Fatalf("AddNode position = %v, %v", pos, ok)
	}
}
