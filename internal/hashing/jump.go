package hashing

// JumpRing implements jump consistent hash (Lamping & Veach, "A Fast,
// Minimal Memory, Consistent Hash Algorithm"). Keys map to bucket indices
// with O(1) expected time and no per-node state beyond the slot table;
// growing from n to n+1 buckets moves exactly the keys that land in the
// new bucket, so joins are strictly monotone. Leaves use slotRing's
// swap-remove, bounding churn to about 2/n of the key space.
type JumpRing struct {
	slotRing
}

var _ Ring = (*JumpRing)(nil)

// NewJumpRing returns an empty jump consistent hash ring.
func NewJumpRing() *JumpRing {
	return &JumpRing{slotRing: newSlotRing()}
}

// jumpBucket is the Lamping-Veach recurrence: a sequence of jumps through
// candidate buckets where the probability of jumping past bucket j shrinks
// as 1/j, yielding uniform assignment and minimal movement as n grows.
func jumpBucket(key uint64, n int) int {
	var b, j int64 = -1, 0
	for j < int64(n) {
		b = j
		key = key*2862933555777941757 + 1
		j = int64(float64(b+1) * (float64(int64(1)<<31) / float64((key>>33)+1)))
	}
	return int(b)
}

// Owner returns the node in key k's bucket.
func (r *JumpRing) Owner(k Key) (NodeID, error) {
	if len(r.slots) == 0 {
		return "", ErrEmptyRing
	}
	return r.slots[jumpBucket(mix64(uint64(k)), len(r.slots))], nil
}

// ReplicaSet returns n distinct nodes: the owner's bucket then successive
// buckets. Bucket indices are uncorrelated with node identity, so
// consecutive buckets spread replicas uniformly.
func (r *JumpRing) ReplicaSet(k Key, n int) ([]NodeID, error) {
	if len(r.slots) == 0 {
		return nil, ErrEmptyRing
	}
	return r.replicaSet(jumpBucket(mix64(uint64(k)), len(r.slots)), n), nil
}

// Snapshot returns an independent deep copy.
func (r *JumpRing) Snapshot() Ring {
	return &JumpRing{slotRing: r.slotRing.clone()}
}

// Algorithm identifies the backend.
func (r *JumpRing) Algorithm() string { return AlgorithmJump }
