// Package ringtest is the shared conformance suite for hashing.Ring
// implementations. Every backend the -ring flag can select must pass
// RunRingConformance: the rest of the system (dhtfs placement, shuffle
// routing, scheduler range cuts) assumes exactly these invariants and
// nothing stronger, so a new backend that passes the suite is safe to
// deploy without touching any consumer.
package ringtest

import (
	"fmt"
	"testing"
	"testing/quick"

	"eclipsemr/internal/hashing"
)

// probeKeys returns a deterministic sample of the key space: fixed
// landmark keys (0, max, powers of two) plus hashed keys, enough to catch
// per-arc ownership changes on small rings.
func probeKeys(n int) []hashing.Key {
	keys := []hashing.Key{0, 1, 1<<63 - 1, 1 << 63, ^hashing.Key(0)}
	for i := 0; len(keys) < n; i++ {
		keys = append(keys, hashing.KeyOfString(fmt.Sprintf("probe-%d", i)))
	}
	return keys[:n]
}

// nodeIDs returns n deterministic member names.
func nodeIDs(n int) []hashing.NodeID {
	out := make([]hashing.NodeID, n)
	for i := range out {
		out[i] = hashing.NodeID(fmt.Sprintf("worker-%02d", i))
	}
	return out
}

// owners maps every probe key to its owner.
func owners(t *testing.T, r hashing.Ring, keys []hashing.Key) map[hashing.Key]hashing.NodeID {
	t.Helper()
	out := make(map[hashing.Key]hashing.NodeID, len(keys))
	for _, k := range keys {
		id, err := r.Owner(k)
		if err != nil {
			t.Fatalf("Owner(%v) on %d-member ring: %v", k, r.Len(), err)
		}
		out[k] = id
	}
	return out
}

// RunRingConformance asserts the Ring contract on rings produced by
// newRing. It is table-driven over membership sizes and runs
// testing/quick property checks for join monotonicity.
func RunRingConformance(t *testing.T, newRing func() hashing.Ring) {
	t.Run("Empty", func(t *testing.T) { testEmpty(t, newRing) })
	t.Run("Determinism", func(t *testing.T) { testDeterminism(t, newRing) })
	t.Run("TotalCoverage", func(t *testing.T) { testTotalCoverage(t, newRing) })
	t.Run("MonotoneJoin", func(t *testing.T) { testMonotoneJoin(t, newRing) })
	t.Run("MonotoneJoinQuick", func(t *testing.T) { testMonotoneJoinQuick(t, newRing) })
	t.Run("BoundedChurnLeave", func(t *testing.T) { testBoundedChurnLeave(t, newRing) })
	t.Run("ReplicaSets", func(t *testing.T) { testReplicaSets(t, newRing) })
	t.Run("Neighbors", func(t *testing.T) { testNeighbors(t, newRing) })
	t.Run("RangeTable", func(t *testing.T) { testRangeTable(t, newRing) })
	t.Run("Snapshot", func(t *testing.T) { testSnapshot(t, newRing) })
	t.Run("Membership", func(t *testing.T) { testMembership(t, newRing) })
}

// testEmpty: lookups on an empty ring fail with ErrEmptyRing, never panic.
func testEmpty(t *testing.T, newRing func() hashing.Ring) {
	r := newRing()
	if r.Len() != 0 {
		t.Fatalf("new ring has %d members, want 0", r.Len())
	}
	if _, err := r.Owner(42); err != hashing.ErrEmptyRing {
		t.Errorf("Owner on empty ring: err = %v, want ErrEmptyRing", err)
	}
	if _, err := r.ReplicaSet(42, 3); err != hashing.ErrEmptyRing {
		t.Errorf("ReplicaSet on empty ring: err = %v, want ErrEmptyRing", err)
	}
	if _, err := r.RangeTable(); err != hashing.ErrEmptyRing {
		t.Errorf("RangeTable on empty ring: err = %v, want ErrEmptyRing", err)
	}
	if r.Remove("ghost") {
		t.Error("Remove of unknown node returned true")
	}
	if _, err := r.Successor("ghost"); err == nil {
		t.Error("Successor of unknown node succeeded")
	}
}

// testDeterminism: two rings built by the same operation sequence agree
// on every owner and replica set — no hidden randomness or clock state.
func testDeterminism(t *testing.T, newRing func() hashing.Ring) {
	build := func() hashing.Ring {
		r := newRing()
		for _, id := range nodeIDs(9) {
			if err := r.AddNode(id); err != nil {
				t.Fatal(err)
			}
		}
		r.Remove("worker-03")
		r.Remove("worker-07")
		if err := r.AddNode("worker-99"); err != nil {
			t.Fatal(err)
		}
		return r
	}
	a, b := build(), build()
	keys := probeKeys(512)
	ao, bo := owners(t, a, keys), owners(t, b, keys)
	for _, k := range keys {
		if ao[k] != bo[k] {
			t.Fatalf("same op sequence, different owner for %v: %s vs %s", k, ao[k], bo[k])
		}
		ra, err := a.ReplicaSet(k, 3)
		if err != nil {
			t.Fatal(err)
		}
		rb, err := b.ReplicaSet(k, 3)
		if err != nil {
			t.Fatal(err)
		}
		if fmt.Sprint(ra) != fmt.Sprint(rb) {
			t.Fatalf("same op sequence, different replica set for %v: %v vs %v", k, ra, rb)
		}
	}
}

// testTotalCoverage: every key has an owner and the owner is a member.
func testTotalCoverage(t *testing.T, newRing func() hashing.Ring) {
	for _, n := range []int{1, 2, 3, 8, 40} {
		r := newRing()
		live := make(map[hashing.NodeID]bool, n)
		for _, id := range nodeIDs(n) {
			if err := r.AddNode(id); err != nil {
				t.Fatal(err)
			}
			live[id] = true
		}
		for k, id := range owners(t, r, probeKeys(1024)) {
			if !live[id] {
				t.Fatalf("n=%d: key %v owned by non-member %q", n, k, id)
			}
		}
	}
}

// testMonotoneJoin: adding a node moves keys only onto the new node;
// no key moves between two pre-existing nodes.
func testMonotoneJoin(t *testing.T, newRing func() hashing.Ring) {
	for _, n := range []int{1, 2, 4, 7, 16, 31, 32, 40, 63, 64} {
		r := newRing()
		for _, id := range nodeIDs(n) {
			if err := r.AddNode(id); err != nil {
				t.Fatal(err)
			}
		}
		keys := probeKeys(2048)
		before := owners(t, r, keys)
		joined := hashing.NodeID("joiner-xx")
		if err := r.AddNode(joined); err != nil {
			t.Fatal(err)
		}
		after := owners(t, r, keys)
		moved := 0
		for _, k := range keys {
			if before[k] == after[k] {
				continue
			}
			moved++
			if after[k] != joined {
				t.Fatalf("n=%d: key %v moved %s -> %s on join of %s (must move only to the joiner)",
					n, k, before[k], after[k], joined)
			}
		}
		// The joiner should take a nonzero share once rings are big enough
		// for the probe sample to see its arcs (tiny rings always do).
		if moved == 0 && n <= 16 {
			t.Errorf("n=%d: join of %s moved no probed keys", n, joined)
		}
	}
}

// testMonotoneJoinQuick: the same property over quick-generated keys and
// ring sizes.
func testMonotoneJoinQuick(t *testing.T, newRing func() hashing.Ring) {
	prop := func(rawKeys []uint64, sz uint8) bool {
		n := int(sz%24) + 1
		r := newRing()
		for _, id := range nodeIDs(n) {
			if err := r.AddNode(id); err != nil {
				return false
			}
		}
		keys := make([]hashing.Key, 0, len(rawKeys))
		for _, rk := range rawKeys {
			keys = append(keys, hashing.Key(rk))
		}
		before := owners(t, r, keys)
		if err := r.AddNode("joiner-xx"); err != nil {
			return false
		}
		after := owners(t, r, keys)
		for _, k := range keys {
			if before[k] != after[k] && after[k] != "joiner-xx" {
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

// testBoundedChurnLeave: removing one node remaps a bounded slice of the
// key space. The departed node's keys must move (about 1/n); backends may
// shuffle bookkeeping for at most another node's worth. We allow 3x the
// fair share plus slack for sampling noise — far below the ~100% a
// non-consistent rehash would show.
func testBoundedChurnLeave(t *testing.T, newRing func() hashing.Ring) {
	const n, probes = 20, 4096
	r := newRing()
	ids := nodeIDs(n)
	for _, id := range ids {
		if err := r.AddNode(id); err != nil {
			t.Fatal(err)
		}
	}
	keys := probeKeys(probes)
	before := owners(t, r, keys)
	departed := ids[n/2]
	if !r.Remove(departed) {
		t.Fatalf("Remove(%s) returned false", departed)
	}
	after := owners(t, r, keys)
	moved := 0
	for _, k := range keys {
		if before[k] != after[k] {
			moved++
		}
		if after[k] == departed {
			t.Fatalf("key %v still owned by departed node %s", k, departed)
		}
	}
	limit := 3*probes/n + 64
	if moved > limit {
		t.Fatalf("leave of 1/%d nodes moved %d/%d probed keys (limit %d)", n, moved, probes, limit)
	}
}

// testReplicaSets: duplicate-free, live, owner-first, clamped to Len.
func testReplicaSets(t *testing.T, newRing func() hashing.Ring) {
	for _, n := range []int{1, 2, 3, 5, 12} {
		r := newRing()
		live := make(map[hashing.NodeID]bool, n)
		for _, id := range nodeIDs(n) {
			if err := r.AddNode(id); err != nil {
				t.Fatal(err)
			}
			live[id] = true
		}
		for _, k := range probeKeys(256) {
			for _, want := range []int{1, 3, n + 5} {
				set, err := r.ReplicaSet(k, want)
				if err != nil {
					t.Fatal(err)
				}
				expect := want
				if expect > n {
					expect = n
				}
				if len(set) != expect {
					t.Fatalf("n=%d: ReplicaSet(%v, %d) returned %d nodes, want %d", n, k, want, len(set), expect)
				}
				owner, err := r.Owner(k)
				if err != nil {
					t.Fatal(err)
				}
				if set[0] != owner {
					t.Fatalf("n=%d: ReplicaSet(%v)[0] = %s, want owner %s", n, k, set[0], owner)
				}
				seen := make(map[hashing.NodeID]bool, len(set))
				for _, id := range set {
					if seen[id] {
						t.Fatalf("n=%d: duplicate %s in ReplicaSet(%v, %d) = %v", n, id, k, want, set)
					}
					seen[id] = true
					if !live[id] {
						t.Fatalf("n=%d: non-member %s in ReplicaSet(%v, %d)", n, id, k, want)
					}
				}
			}
		}
	}
}

// testNeighbors: Successor/Predecessor stay on the ring, invert each
// other, and a sole member neighbors itself.
func testNeighbors(t *testing.T, newRing func() hashing.Ring) {
	r := newRing()
	if err := r.AddNode("solo"); err != nil {
		t.Fatal(err)
	}
	if s, err := r.Successor("solo"); err != nil || s != "solo" {
		t.Errorf("sole member successor = %q, %v; want itself", s, err)
	}
	for _, id := range nodeIDs(7) {
		if err := r.AddNode(id); err != nil {
			t.Fatal(err)
		}
	}
	live := make(map[hashing.NodeID]bool)
	for _, id := range r.Members() {
		live[id] = true
	}
	for _, id := range r.Members() {
		succ, err := r.Successor(id)
		if err != nil {
			t.Fatal(err)
		}
		if !live[succ] {
			t.Fatalf("Successor(%s) = non-member %s", id, succ)
		}
		if succ == id {
			t.Fatalf("Successor(%s) is itself on an %d-member ring", id, r.Len())
		}
		back, err := r.Predecessor(succ)
		if err != nil {
			t.Fatal(err)
		}
		if back != id {
			t.Fatalf("Predecessor(Successor(%s)) = %s, want %s", id, back, id)
		}
	}
}

// testRangeTable: one range per member, each member present exactly once.
func testRangeTable(t *testing.T, newRing func() hashing.Ring) {
	for _, n := range []int{1, 3, 8, 40} {
		r := newRing()
		for _, id := range nodeIDs(n) {
			if err := r.AddNode(id); err != nil {
				t.Fatal(err)
			}
		}
		table, err := r.RangeTable()
		if err != nil {
			t.Fatal(err)
		}
		if table.Len() != n {
			t.Fatalf("n=%d: RangeTable has %d servers", n, table.Len())
		}
		seen := make(map[hashing.NodeID]bool, n)
		for _, id := range table.Servers() {
			if seen[id] {
				t.Fatalf("n=%d: server %s appears twice in RangeTable", n, id)
			}
			seen[id] = true
		}
		for _, id := range r.Members() {
			if !seen[id] {
				t.Fatalf("n=%d: member %s missing from RangeTable", n, id)
			}
		}
		// Every key resolves to some member through the table.
		for _, k := range probeKeys(64) {
			if !seen[table.Lookup(k)] {
				t.Fatalf("n=%d: table lookup of %v returned non-member", n, k)
			}
		}
	}
}

// testSnapshot: a snapshot agrees with its source and is independent of
// later mutation.
func testSnapshot(t *testing.T, newRing func() hashing.Ring) {
	r := newRing()
	for _, id := range nodeIDs(10) {
		if err := r.AddNode(id); err != nil {
			t.Fatal(err)
		}
	}
	snap := r.Snapshot()
	if snap.Algorithm() != r.Algorithm() {
		t.Fatalf("snapshot algorithm %q != source %q", snap.Algorithm(), r.Algorithm())
	}
	keys := probeKeys(512)
	src, dup := owners(t, r, keys), owners(t, snap, keys)
	for _, k := range keys {
		if src[k] != dup[k] {
			t.Fatalf("snapshot disagrees on %v: %s vs %s", k, src[k], dup[k])
		}
	}
	// Mutate the source; the snapshot must not change.
	if err := r.AddNode("late-joiner"); err != nil {
		t.Fatal(err)
	}
	r.Remove("worker-02")
	after := owners(t, snap, keys)
	for _, k := range keys {
		if dup[k] != after[k] {
			t.Fatalf("snapshot changed after source mutation: key %v %s -> %s", k, dup[k], after[k])
		}
	}
	if snap.Len() != 10 {
		t.Fatalf("snapshot Len %d changed by source mutation", snap.Len())
	}
}

// testMembership: duplicate joins fail, Members matches joins minus
// leaves, Len agrees.
func testMembership(t *testing.T, newRing func() hashing.Ring) {
	r := newRing()
	for _, id := range nodeIDs(5) {
		if err := r.AddNode(id); err != nil {
			t.Fatal(err)
		}
	}
	if err := r.AddNode("worker-03"); err == nil {
		t.Error("duplicate AddNode succeeded")
	}
	if r.Len() != 5 {
		t.Fatalf("Len = %d after duplicate join, want 5", r.Len())
	}
	if !r.Remove("worker-00") {
		t.Error("Remove of member returned false")
	}
	if r.Remove("worker-00") {
		t.Error("second Remove of same node returned true")
	}
	members := r.Members()
	if len(members) != 4 || r.Len() != 4 {
		t.Fatalf("Members/Len = %d/%d after one leave, want 4/4", len(members), r.Len())
	}
	for _, id := range members {
		if id == "worker-00" {
			t.Error("departed node still in Members")
		}
	}
}
