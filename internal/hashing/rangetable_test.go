package hashing

import (
	"math/rand"
	"strings"
	"testing"
	"testing/quick"
)

func TestNewRangeTableValidation(t *testing.T) {
	if _, err := NewRangeTable(nil, nil); err == nil {
		t.Fatal("empty table accepted")
	}
	if _, err := NewRangeTable([]NodeID{"a"}, []Key{1, 2}); err == nil {
		t.Fatal("mismatched lengths accepted")
	}
	if _, err := NewRangeTable([]NodeID{"a", "b"}, []Key{5, 3}); err == nil {
		t.Fatal("unsorted bounds accepted")
	}
}

// TestRangeTablePaperFigure3 reproduces the worked example from Figure 3:
// five servers over hash space [0,140) partitioned at 0/35/47/91/102, so
// task T1 (HK=43) goes to server 2 and T2 (HK=69) to server 3.
func TestRangeTablePaperFigure3(t *testing.T) {
	tab, err := NewRangeTable(
		[]NodeID{"server1", "server2", "server3", "server4", "server5"},
		[]Key{0, 35, 47, 91, 102},
	)
	if err != nil {
		t.Fatal(err)
	}
	if got := tab.Lookup(43); got != "server2" {
		t.Fatalf("T1 (HK=43) scheduled on %s, want server2", got)
	}
	if got := tab.Lookup(69); got != "server3" {
		t.Fatalf("T2 (HK=69) scheduled on %s, want server3", got)
	}
	if got := tab.Lookup(0); got != "server1" {
		t.Fatalf("Lookup(0) = %s want server1", got)
	}
	// Keys past the last bound wrap into server5's range.
	if got := tab.Lookup(139); got != "server5" {
		t.Fatalf("Lookup(139) = %s want server5", got)
	}
	if got := tab.Lookup(MaxKey); got != "server5" {
		t.Fatalf("Lookup(MaxKey) = %s want server5", got)
	}
}

// TestRangeTableHotSpotCollapse models the paper's extreme hot-spot case:
// [0,40], [40,40), [40,40), [40,140) — servers with zero-width ranges must
// never be selected by Lookup.
func TestRangeTableHotSpotCollapse(t *testing.T) {
	tab, err := NewRangeTable(
		[]NodeID{"s1", "s2", "s3", "s4"},
		[]Key{0, 40, 40, 40},
	)
	if err != nil {
		t.Fatal(err)
	}
	if got := tab.Lookup(20); got != "s1" {
		t.Fatalf("Lookup(20) = %s want s1", got)
	}
	if got := tab.Lookup(100); got != "s4" {
		t.Fatalf("Lookup(100) = %s want s4", got)
	}
	// The boundary key itself belongs to the last server whose range
	// starts there and is non-empty.
	got := tab.Lookup(40)
	if got == "s2" || got == "s3" {
		t.Fatalf("Lookup(40) selected zero-width range server %s", got)
	}
}

func TestUniformRangeTableEqualWidths(t *testing.T) {
	servers := []NodeID{"a", "b", "c", "d"}
	tab, err := UniformRangeTable(servers)
	if err != nil {
		t.Fatal(err)
	}
	var prev uint64
	for i := 0; i < tab.Len(); i++ {
		start, end := tab.RangeOf(i)
		width := uint64(end - start)
		if i > 0 && width != prev {
			t.Fatalf("range %d width %d != %d", i, width, prev)
		}
		prev = width
	}
	if _, err := UniformRangeTable(nil); err == nil {
		t.Fatal("empty UniformRangeTable accepted")
	}
}

func TestAlignedRangeTableMatchesRingOwnership(t *testing.T) {
	r := NewChordRing()
	for i := 0; i < 8; i++ {
		if err := r.AddNode(NodeID(rune('a' + i))); err != nil {
			t.Fatal(err)
		}
	}
	tab, err := AlignedRangeTable(r)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(3))
	for i := 0; i < 2000; i++ {
		k := Key(rng.Uint64())
		ringOwner, _ := r.Owner(k)
		tabOwner := tab.Lookup(k)
		// The table uses [start,end) where the ring uses (start,end]; they
		// may only disagree on exact node positions.
		if tabOwner != ringOwner {
			if _, isBoundary := r.byID[ringOwner]; !isBoundary {
				t.Fatalf("unexpected disagreement at %v: ring=%s table=%s", k, ringOwner, tabOwner)
			}
			if pos, _ := r.Position(ringOwner); pos != k {
				t.Fatalf("disagreement at non-boundary key %v: ring=%s table=%s", k, ringOwner, tabOwner)
			}
		}
	}
	if _, err := AlignedRangeTable(NewChordRing()); err == nil {
		t.Fatal("AlignedRangeTable on empty ring accepted")
	}
}

func TestRangeTableServerRange(t *testing.T) {
	tab, _ := NewRangeTable([]NodeID{"a", "b"}, []Key{0, 100})
	start, end, ok := tab.ServerRange("b")
	if !ok || start != 100 || end != 0 {
		t.Fatalf("ServerRange(b) = %d,%d,%v", start, end, ok)
	}
	if _, _, ok := tab.ServerRange("zz"); ok {
		t.Fatal("ServerRange of unknown server returned ok")
	}
	if !tab.Contains("a", 50) || tab.Contains("a", 150) {
		t.Fatal("Contains wrong")
	}
}

func TestRangeTableString(t *testing.T) {
	tab, _ := NewRangeTable([]NodeID{"a", "b"}, []Key{0, 100})
	s := tab.String()
	if !strings.Contains(s, "a: [") || !strings.Contains(s, "b: [") {
		t.Fatalf("String() = %q", s)
	}
}

// Property: Lookup always returns a server from the table, and for tables
// with distinct bounds the selected server's range contains the key.
func TestRangeTableLookupInRange(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	servers := make([]NodeID, 6)
	bounds := make([]Key, 6)
	raw := make([]uint64, 6)
	for i := range raw {
		raw[i] = rng.Uint64()
	}
	// Sort and dedupe into strictly increasing bounds.
	for i := range raw {
		for j := i + 1; j < len(raw); j++ {
			if raw[j] < raw[i] {
				raw[i], raw[j] = raw[j], raw[i]
			}
		}
	}
	for i := range servers {
		servers[i] = NodeID(rune('a' + i))
		bounds[i] = Key(raw[i])
	}
	tab, err := NewRangeTable(servers, bounds)
	if err != nil {
		t.Fatal(err)
	}
	f := func(k Key) bool {
		id := tab.Lookup(k)
		start, end, ok := tab.ServerRange(id)
		return ok && InRange(k, start, end)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Fatal(err)
	}
}

func TestRangeTableSingleServer(t *testing.T) {
	tab, err := NewRangeTable([]NodeID{"only"}, []Key{12345})
	if err != nil {
		t.Fatal(err)
	}
	for _, k := range []Key{0, 12345, MaxKey} {
		if got := tab.Lookup(k); got != "only" {
			t.Fatalf("Lookup(%v) = %s", k, got)
		}
	}
}
