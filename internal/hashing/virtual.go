package hashing

import (
	"errors"
	"fmt"
	"sort"
	"strconv"
)

// VirtualRing places every node at several derived ring positions
// (virtual nodes), the standard consistent-hashing refinement that evens
// out arc-width skew: with a single token per server the largest arc is
// ~ln(N)× the mean, while V tokens shrink the spread by ~sqrt(V). The
// paper's prototype uses single tokens; VirtualRing is provided for
// deployments that need tighter block balance, and the ablation benchmark
// quantifies the difference.
type VirtualRing struct {
	ring   *ChordRing
	vnodes int
	// owner maps each virtual identity back to its physical node.
	owner map[NodeID]NodeID
	// members tracks the physical nodes.
	members map[NodeID]bool
}

var _ Ring = (*VirtualRing)(nil)

// NewVirtualRing creates an empty ring with the given tokens per node.
func NewVirtualRing(vnodes int) (*VirtualRing, error) {
	if vnodes < 1 {
		return nil, fmt.Errorf("hashing: vnodes must be >= 1, got %d", vnodes)
	}
	return &VirtualRing{
		ring:    NewChordRing(),
		vnodes:  vnodes,
		owner:   make(map[NodeID]NodeID),
		members: make(map[NodeID]bool),
	}, nil
}

// virtualID names token v of a node.
func virtualID(id NodeID, v int) NodeID {
	return id + NodeID("#"+strconv.Itoa(v))
}

// AddNode places a physical node's tokens on the ring.
func (r *VirtualRing) AddNode(id NodeID) error {
	if r.members[id] {
		return fmt.Errorf("hashing: node %s already on virtual ring", id)
	}
	added := make([]NodeID, 0, r.vnodes)
	for v := 0; v < r.vnodes; v++ {
		vid := virtualID(id, v)
		if err := r.ring.AddNode(vid); err != nil {
			for _, a := range added {
				r.ring.Remove(a)
				delete(r.owner, a)
			}
			return err
		}
		r.owner[vid] = id
		added = append(added, vid)
	}
	r.members[id] = true
	return nil
}

// Remove deletes a physical node and all of its tokens.
func (r *VirtualRing) Remove(id NodeID) bool {
	if !r.members[id] {
		return false
	}
	for v := 0; v < r.vnodes; v++ {
		vid := virtualID(id, v)
		r.ring.Remove(vid)
		delete(r.owner, vid)
	}
	delete(r.members, id)
	return true
}

// Len returns the number of physical nodes.
func (r *VirtualRing) Len() int { return len(r.members) }

// Owner returns the physical node owning key k.
func (r *VirtualRing) Owner(k Key) (NodeID, error) {
	vid, err := r.ring.Owner(k)
	if err != nil {
		return "", err
	}
	return r.owner[vid], nil
}

// ReplicaSet returns n distinct physical nodes for key k: the owner and
// the next distinct nodes clockwise (successive tokens of the same node
// are skipped, so replicas land on different machines).
func (r *VirtualRing) ReplicaSet(k Key, n int) ([]NodeID, error) {
	if len(r.members) == 0 {
		return nil, ErrEmptyRing
	}
	if n > len(r.members) {
		n = len(r.members)
	}
	out := make([]NodeID, 0, n)
	seen := make(map[NodeID]bool, n)
	// Walk tokens clockwise from the key's owner token.
	cur, err := r.ring.Owner(k)
	if err != nil {
		return nil, err
	}
	for len(out) < n {
		phys := r.owner[cur]
		if !seen[phys] {
			seen[phys] = true
			out = append(out, phys)
		}
		cur, err = r.ring.Successor(cur)
		if err != nil {
			return nil, err
		}
	}
	return out, nil
}

// Members returns the physical nodes in sorted ID order.
func (r *VirtualRing) Members() []NodeID {
	out := make([]NodeID, 0, len(r.members))
	for id := range r.members {
		out = append(out, id)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// Successor returns the next physical node in the ring's cyclic order.
func (r *VirtualRing) Successor(id NodeID) (NodeID, error) {
	return r.neighbor(id, 1)
}

// Predecessor returns the previous physical node in the ring's cyclic
// order.
func (r *VirtualRing) Predecessor(id NodeID) (NodeID, error) {
	return r.neighbor(id, -1)
}

// neighbor steps through the cyclic order of physical nodes. Walking the
// raw tokens would not give a consistent order — successor-of-token and
// predecessor-of-token need not invert each other across interleaved
// token runs — so nodes are ordered by their minimum token position, a
// total cyclic order on which the two directions are true inverses.
func (r *VirtualRing) neighbor(id NodeID, dir int) (NodeID, error) {
	if !r.members[id] {
		return "", errors.New("hashing: node " + string(id) + " not on ring")
	}
	minPos := make(map[NodeID]Key, len(r.members))
	for _, vid := range r.ring.Members() { // ascending token position
		phys := r.owner[vid]
		if _, ok := minPos[phys]; !ok {
			pos, _ := r.ring.Position(vid)
			minPos[phys] = pos
		}
	}
	ordered := make([]NodeID, 0, len(minPos))
	for phys := range minPos {
		ordered = append(ordered, phys)
	}
	sort.Slice(ordered, func(i, j int) bool { return minPos[ordered[i]] < minPos[ordered[j]] })
	for i, phys := range ordered {
		if phys == id {
			return ordered[(i+dir+len(ordered))%len(ordered)], nil
		}
	}
	return id, nil // unreachable: id is a member
}

// RangeTable cuts the key space uniformly over sorted member order. Token
// arcs are too fragmented to serve as per-node ranges, so equal cuts seed
// the scheduler and KDE re-partitioning refines them.
func (r *VirtualRing) RangeTable() (*RangeTable, error) {
	return UniformRangeTable(r.Members())
}

// Snapshot returns an independent deep copy.
func (r *VirtualRing) Snapshot() Ring {
	c := &VirtualRing{
		ring:    r.ring.Clone(),
		vnodes:  r.vnodes,
		owner:   make(map[NodeID]NodeID, len(r.owner)),
		members: make(map[NodeID]bool, len(r.members)),
	}
	for vid, id := range r.owner {
		c.owner[vid] = id
	}
	for id := range r.members {
		c.members[id] = true
	}
	return c
}

// Algorithm identifies the backend, including the token count.
func (r *VirtualRing) Algorithm() string {
	return AlgorithmChord + ":" + strconv.Itoa(r.vnodes)
}

// LoadShare returns each physical node's fraction of the key space, the
// quantity virtual nodes exist to equalize.
func (r *VirtualRing) LoadShare() map[NodeID]float64 {
	shares := make(map[NodeID]float64, len(r.members))
	members := r.ring.Members()
	for i, vid := range members {
		pred := members[(i-1+len(members))%len(members)]
		pPos, _ := r.ring.Position(pred)
		pos, _ := r.ring.Position(vid)
		width := float64(uint64(pos - pPos))
		shares[r.owner[vid]] += width / keySpaceWidth
	}
	return shares
}

const keySpaceWidth = float64(1<<63) * 2
