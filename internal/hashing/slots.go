package hashing

import "errors"

// slotRing is the shared membership core of the O(1) bucket-indexed
// backends (jump, power). Both algorithms map a key to a bucket index in
// [0, n); slotRing supplies the index-to-node table and the membership
// maintenance rules that make the mapping consistent:
//
//   - Join appends to the slot list, so a growing ring only moves keys
//     whose bucket index becomes the new last slot (strict monotonicity,
//     guaranteed by the bucket functions themselves).
//   - Leave swap-removes: the last slot fills the departed hole and the
//     list shrinks by one. At most two slots change meaning, so churn is
//     bounded by ~2/n of the key space instead of a full reshuffle.
//
// The slot order is part of the ring's identity: two rings built by the
// same operation sequence have the same slot order and therefore agree on
// every owner, which is what the conformance determinism check pins.
type slotRing struct {
	slots []NodeID
	index map[NodeID]int
}

func newSlotRing() slotRing {
	return slotRing{index: make(map[NodeID]int)}
}

func (s *slotRing) clone() slotRing {
	c := slotRing{
		slots: append([]NodeID(nil), s.slots...),
		index: make(map[NodeID]int, len(s.index)),
	}
	for id, i := range s.index {
		c.index[id] = i
	}
	return c
}

// AddNode appends id as the highest bucket.
func (s *slotRing) AddNode(id NodeID) error {
	if _, ok := s.index[id]; ok {
		return errors.New("hashing: node " + string(id) + " already on ring")
	}
	s.index[id] = len(s.slots)
	s.slots = append(s.slots, id)
	return nil
}

// Remove swap-removes id: the last slot takes its bucket.
func (s *slotRing) Remove(id NodeID) bool {
	i, ok := s.index[id]
	if !ok {
		return false
	}
	last := len(s.slots) - 1
	moved := s.slots[last]
	s.slots[i] = moved
	s.index[moved] = i
	s.slots = s.slots[:last]
	delete(s.index, id)
	return true
}

// Len returns the member count.
func (s *slotRing) Len() int { return len(s.slots) }

// Members returns the nodes in slot (bucket) order.
func (s *slotRing) Members() []NodeID {
	return append([]NodeID(nil), s.slots...)
}

// Successor returns the node in the next bucket, wrapping.
func (s *slotRing) Successor(id NodeID) (NodeID, error) {
	i, ok := s.index[id]
	if !ok {
		return "", errors.New("hashing: node " + string(id) + " not on ring")
	}
	return s.slots[(i+1)%len(s.slots)], nil
}

// Predecessor returns the node in the previous bucket, wrapping.
func (s *slotRing) Predecessor(id NodeID) (NodeID, error) {
	i, ok := s.index[id]
	if !ok {
		return "", errors.New("hashing: node " + string(id) + " not on ring")
	}
	return s.slots[(i-1+len(s.slots))%len(s.slots)], nil
}

// RangeTable cuts the key space uniformly over the slot order. Bucket
// indices are not key-space positions, so equal cuts are the right
// locality hint: the scheduler's KDE re-partitioning takes over from
// there.
func (s *slotRing) RangeTable() (*RangeTable, error) {
	return UniformRangeTable(s.Members())
}

// replicaSet returns n distinct nodes for key k: the owner's bucket, then
// successive buckets clockwise. ownerIdx is the bucket of k's owner.
func (s *slotRing) replicaSet(ownerIdx, n int) []NodeID {
	if n > len(s.slots) {
		n = len(s.slots)
	}
	out := make([]NodeID, 0, n)
	for i := 0; i < n; i++ {
		out = append(out, s.slots[(ownerIdx+i)%len(s.slots)])
	}
	return out
}
