package hashing

import "math/bits"

// PowerRing implements power-of-two-choices consistent hashing after Leu
// ("Fast Consistent Hashing in Constant Time"): a key hashes directly into
// [0, M) for M the smallest power of two >= n, and overflowing draws
// (index >= n) fall back to the same hash truncated to M/2 bits. Lookup is
// O(1) worst case — two masks and a comparison — at the cost of up to 2x
// load skew between nodes while n sits between powers of two (the
// benchmark's load-stddev column makes the trade visible).
//
// The fallback MUST reuse the primary hash's low bits rather than an
// independent second hash: when M doubles at a power-of-two crossing, a
// key whose index gains a high bit either addresses the new bucket range
// or falls back to exactly the bucket it occupied before, which is what
// keeps joins strictly monotone.
type PowerRing struct {
	slotRing
}

var _ Ring = (*PowerRing)(nil)

// NewPowerRing returns an empty power consistent hash ring.
func NewPowerRing() *PowerRing {
	return &PowerRing{slotRing: newSlotRing()}
}

// powerBucket maps mixed hash h into [0, n) in constant time.
func powerBucket(h uint64, n int) int {
	if n <= 1 {
		return 0
	}
	m := uint64(1) << bits.Len64(uint64(n-1)) // smallest power of two >= n
	r := h & (m - 1)
	if r < uint64(n) {
		return int(r)
	}
	return int(h & (m/2 - 1))
}

// Owner returns the node in key k's bucket.
func (r *PowerRing) Owner(k Key) (NodeID, error) {
	if len(r.slots) == 0 {
		return "", ErrEmptyRing
	}
	return r.slots[powerBucket(mix64(uint64(k)), len(r.slots))], nil
}

// ReplicaSet returns n distinct nodes: the owner's bucket then successive
// buckets.
func (r *PowerRing) ReplicaSet(k Key, n int) ([]NodeID, error) {
	if len(r.slots) == 0 {
		return nil, ErrEmptyRing
	}
	return r.replicaSet(powerBucket(mix64(uint64(k)), len(r.slots)), n), nil
}

// Snapshot returns an independent deep copy.
func (r *PowerRing) Snapshot() Ring {
	return &PowerRing{slotRing: r.slotRing.clone()}
}

// Algorithm identifies the backend.
func (r *PowerRing) Algorithm() string { return AlgorithmPower }
