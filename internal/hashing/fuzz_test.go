package hashing_test

import (
	"fmt"
	"testing"

	"eclipsemr/internal/hashing"
)

// fuzzRing builds the ring backend selected by alg (wrapping over the
// matrix, including the virtual-node chord variant).
func fuzzRing(alg uint8) hashing.Ring {
	names := append(hashing.Algorithms(), "chord:4")
	r, err := hashing.NewAlgorithmRing(names[int(alg)%len(names)])
	if err != nil {
		panic(err) // all matrix names are valid
	}
	return r
}

// applyOps replays a fuzzed membership script: each byte joins (high bit
// clear) or leaves (high bit set) one of 16 pool nodes. Duplicate joins
// and missing leaves are ignored, as the ring API defines.
func applyOps(r hashing.Ring, ops []byte) {
	for _, op := range ops {
		id := hashing.NodeID(fmt.Sprintf("pool-%02d", op&0x0f))
		if op&0x80 != 0 {
			r.Remove(id)
		} else {
			_ = r.AddNode(id)
		}
	}
}

// FuzzRingLookupConsistency pins the consistency contract under arbitrary
// membership histories: the same key and membership always resolve to the
// same owner — across a Snapshot, and across an independent replay of the
// same operation sequence (restore).
func FuzzRingLookupConsistency(f *testing.F) {
	f.Add(uint8(0), []byte{0, 1, 2, 3}, uint64(42), uint64(1<<63))
	f.Add(uint8(1), []byte{0, 1, 0x81, 2}, uint64(0), uint64(^uint64(0)))
	f.Add(uint8(2), []byte{5, 9, 12, 0x85, 3, 7}, uint64(123456789), uint64(987654321))
	f.Add(uint8(3), []byte{1, 2, 3, 4, 5, 6, 7, 8}, uint64(1), uint64(2))
	f.Add(uint8(4), []byte{0, 0x80, 0, 0x80, 1}, uint64(7), uint64(7))
	f.Fuzz(func(t *testing.T, alg uint8, ops []byte, k1, k2 uint64) {
		ring := fuzzRing(alg)
		applyOps(ring, ops)
		replay := fuzzRing(alg)
		applyOps(replay, ops)
		snap := ring.Snapshot()
		if snap.Len() != ring.Len() || replay.Len() != ring.Len() {
			t.Fatalf("membership diverged: ring %d, snapshot %d, replay %d",
				ring.Len(), snap.Len(), replay.Len())
		}
		for _, k := range []hashing.Key{hashing.Key(k1), hashing.Key(k2)} {
			owner, err := ring.Owner(k)
			if err != nil {
				if err == hashing.ErrEmptyRing && ring.Len() == 0 {
					continue
				}
				t.Fatalf("Owner(%v): %v", k, err)
			}
			if got, err := snap.Owner(k); err != nil || got != owner {
				t.Fatalf("snapshot owner of %v = %s, %v; ring says %s", k, got, err, owner)
			}
			if got, err := replay.Owner(k); err != nil || got != owner {
				t.Fatalf("replayed ring owner of %v = %s, %v; ring says %s", k, got, err, owner)
			}
			set, err := ring.ReplicaSet(k, 3)
			if err != nil {
				t.Fatalf("ReplicaSet(%v): %v", k, err)
			}
			snapSet, err := snap.ReplicaSet(k, 3)
			if err != nil || fmt.Sprint(set) != fmt.Sprint(snapSet) {
				t.Fatalf("snapshot replica set of %v = %v, %v; ring says %v", k, snapSet, err, set)
			}
		}
	})
}

// FuzzRangeTableCoversSpace pins that every backend's range table
// partitions the key space: each key falls in exactly the range the
// lookup reports (no gaps), every server appears exactly once (no
// overlapping ownership), and boundary keys land on their own range.
func FuzzRangeTableCoversSpace(f *testing.F) {
	f.Add(uint8(0), uint8(1), uint64(0))
	f.Add(uint8(1), uint8(3), uint64(1<<32))
	f.Add(uint8(2), uint8(40), uint64(^uint64(0)))
	f.Add(uint8(3), uint8(7), uint64(1<<63))
	f.Add(uint8(4), uint8(64), uint64(3))
	f.Fuzz(func(t *testing.T, alg uint8, nodes uint8, rawKey uint64) {
		n := int(nodes)%64 + 1
		ring := fuzzRing(alg)
		for i := 0; i < n; i++ {
			if err := ring.AddNode(hashing.NodeID(fmt.Sprintf("worker-%02d", i))); err != nil {
				t.Fatal(err)
			}
		}
		table, err := ring.RangeTable()
		if err != nil {
			t.Fatal(err)
		}
		if table.Len() != n {
			t.Fatalf("table has %d servers for %d members", table.Len(), n)
		}
		seen := make(map[hashing.NodeID]bool, n)
		for _, id := range table.Servers() {
			if seen[id] {
				t.Fatalf("server %s owns two ranges", id)
			}
			seen[id] = true
		}
		// The fuzzed key and every boundary key must resolve to the range
		// that actually contains them: no gaps, no overlaps.
		keys := []hashing.Key{hashing.Key(rawKey)}
		for _, b := range table.Bounds() {
			keys = append(keys, b, b-1, b+1)
		}
		for _, k := range keys {
			idx := table.LookupIndex(k)
			if idx < 0 || idx >= table.Len() {
				t.Fatalf("LookupIndex(%v) = %d out of range", k, idx)
			}
			start, end := table.RangeOf(idx)
			if start != end && !hashing.InRange(k, start, end) {
				t.Fatalf("key %v resolved to range %d [%v, %v) that does not contain it", k, idx, start, end)
			}
			if !seen[table.Lookup(k)] {
				t.Fatalf("key %v resolved to unknown server %s", k, table.Lookup(k))
			}
		}
	})
}
