package hashing

import (
	"errors"
	"sort"
)

// NodeID identifies a worker server in the cluster. The DHT file system
// places a node on the ring at KeyOfString(string(id)) unless an explicit
// position is supplied.
type NodeID string

// ErrEmptyRing is returned by lookups on a ring with no members.
var ErrEmptyRing = errors.New("hashing: ring has no members")

type ringEntry struct {
	pos Key
	id  NodeID
}

// ChordRing is the paper's consistent-hash ring of named nodes. A node at
// ring position p owns the arc (pred(p), p]: every key is owned by its
// clockwise successor node, exactly as in Chord. ChordRing is not safe for
// concurrent mutation; callers synchronize externally (membership changes
// are rare and flow through the resource manager).
//
// ChordRing is the only Ring backend with explicit positions (Add, Position,
// RangeOf): the membership protocol ships positions on the wire and the
// finger-table router navigates by them. Placement-only consumers should
// hold the Ring interface instead.
type ChordRing struct {
	entries []ringEntry // sorted by pos, positions strictly increasing
	byID    map[NodeID]Key
}

var _ Ring = (*ChordRing)(nil)

// NewChordRing returns an empty ring.
func NewChordRing() *ChordRing {
	return &ChordRing{byID: make(map[NodeID]Key)}
}

// Clone returns a deep copy of the ring.
func (r *ChordRing) Clone() *ChordRing {
	c := &ChordRing{
		entries: append([]ringEntry(nil), r.entries...),
		byID:    make(map[NodeID]Key, len(r.byID)),
	}
	for id, pos := range r.byID {
		c.byID[id] = pos
	}
	return c
}

// Snapshot returns an independent deep copy as a Ring.
func (r *ChordRing) Snapshot() Ring { return r.Clone() }

// Algorithm identifies the backend.
func (r *ChordRing) Algorithm() string { return AlgorithmChord }

// Len returns the number of member nodes.
func (r *ChordRing) Len() int { return len(r.entries) }

// Members returns the node IDs in ring order (ascending position).
func (r *ChordRing) Members() []NodeID {
	out := make([]NodeID, len(r.entries))
	for i, e := range r.entries {
		out[i] = e.id
	}
	return out
}

// Position returns the ring position of id.
func (r *ChordRing) Position(id NodeID) (Key, bool) {
	pos, ok := r.byID[id]
	return pos, ok
}

// Add inserts a node at an explicit ring position. It returns an error if
// the node is already a member or the position is taken: positions must be
// unique for arcs to be well defined.
func (r *ChordRing) Add(id NodeID, pos Key) error {
	if _, ok := r.byID[id]; ok {
		return errors.New("hashing: node " + string(id) + " already on ring")
	}
	i := sort.Search(len(r.entries), func(i int) bool { return r.entries[i].pos >= pos })
	if i < len(r.entries) && r.entries[i].pos == pos {
		return errors.New("hashing: ring position collision at " + pos.String())
	}
	r.entries = append(r.entries, ringEntry{})
	copy(r.entries[i+1:], r.entries[i:])
	r.entries[i] = ringEntry{pos: pos, id: id}
	r.byID[id] = pos
	return nil
}

// AddNode inserts a node at the position derived from its ID.
func (r *ChordRing) AddNode(id NodeID) error {
	return r.Add(id, KeyOfString(string(id)))
}

// Remove deletes a node from the ring. Its arc is absorbed by its
// successor, which is how the DHT file system hands a failed server's key
// range to the take-over node.
func (r *ChordRing) Remove(id NodeID) bool {
	pos, ok := r.byID[id]
	if !ok {
		return false
	}
	i := sort.Search(len(r.entries), func(i int) bool { return r.entries[i].pos >= pos })
	r.entries = append(r.entries[:i], r.entries[i+1:]...)
	delete(r.byID, id)
	return true
}

// successorIndex returns the index of the first entry with position >= k,
// wrapping to 0 past the end.
func (r *ChordRing) successorIndex(k Key) int {
	i := sort.Search(len(r.entries), func(i int) bool { return r.entries[i].pos >= k })
	if i == len(r.entries) {
		return 0
	}
	return i
}

// Owner returns the node that owns key k: the first node at or clockwise
// after k.
func (r *ChordRing) Owner(k Key) (NodeID, error) {
	if len(r.entries) == 0 {
		return "", ErrEmptyRing
	}
	return r.entries[r.successorIndex(k)].id, nil
}

// Successor returns the node immediately clockwise of id.
func (r *ChordRing) Successor(id NodeID) (NodeID, error) {
	i, err := r.indexOf(id)
	if err != nil {
		return "", err
	}
	return r.entries[(i+1)%len(r.entries)].id, nil
}

// Predecessor returns the node immediately counter-clockwise of id.
func (r *ChordRing) Predecessor(id NodeID) (NodeID, error) {
	i, err := r.indexOf(id)
	if err != nil {
		return "", err
	}
	return r.entries[(i-1+len(r.entries))%len(r.entries)].id, nil
}

func (r *ChordRing) indexOf(id NodeID) (int, error) {
	pos, ok := r.byID[id]
	if !ok {
		return 0, errors.New("hashing: node " + string(id) + " not on ring")
	}
	i := sort.Search(len(r.entries), func(i int) bool { return r.entries[i].pos >= pos })
	return i, nil
}

// ReplicaSet returns the n distinct nodes that should hold copies of key
// k: the owner, its predecessor, and its successor (then further
// successors for n > 3). This matches the paper's fault-tolerance scheme
// of replicating file blocks and metadata "in predecessors and
// successors". If the ring has fewer than n members every member is
// returned.
func (r *ChordRing) ReplicaSet(k Key, n int) ([]NodeID, error) {
	if len(r.entries) == 0 {
		return nil, ErrEmptyRing
	}
	if n > len(r.entries) {
		n = len(r.entries)
	}
	out := make([]NodeID, 0, n)
	oi := r.successorIndex(k)
	out = append(out, r.entries[oi].id)
	if n >= 2 {
		out = append(out, r.entries[(oi-1+len(r.entries))%len(r.entries)].id)
	}
	for i := 1; len(out) < n; i++ {
		out = append(out, r.entries[(oi+i)%len(r.entries)].id)
	}
	return out, nil
}

// RangeOf returns the arc (pred, pos] owned by id, expressed as the
// half-open range (start, end] with start = predecessor position and end =
// the node's own position.
func (r *ChordRing) RangeOf(id NodeID) (start, end Key, err error) {
	i, err := r.indexOf(id)
	if err != nil {
		return 0, 0, err
	}
	pred := r.entries[(i-1+len(r.entries))%len(r.entries)]
	return pred.pos, r.entries[i].pos, nil
}

// Owns reports whether id owns key k.
func (r *ChordRing) Owns(id NodeID, k Key) bool {
	start, end, err := r.RangeOf(id)
	if err != nil {
		return false
	}
	if len(r.entries) == 1 {
		return true
	}
	return Between(k, start, end)
}

// RangeTable returns the scheduler's initial hash-key table aligned with
// this ring's arcs, so DHT placement and task locality agree at startup.
func (r *ChordRing) RangeTable() (*RangeTable, error) {
	return AlignedRangeTable(r)
}
