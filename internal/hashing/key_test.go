package hashing

import (
	"testing"
	"testing/quick"
)

func TestKeyOfDeterministic(t *testing.T) {
	a := KeyOf([]byte("hello"))
	b := KeyOf([]byte("hello"))
	if a != b {
		t.Fatalf("KeyOf not deterministic: %v != %v", a, b)
	}
	if a == KeyOf([]byte("world")) {
		t.Fatalf("distinct inputs produced identical keys")
	}
}

func TestKeyOfStringMatchesKeyOf(t *testing.T) {
	f := func(s string) bool { return KeyOfString(s) == KeyOf([]byte(s)) }
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestBlockKeyDistinctPerIndex(t *testing.T) {
	seen := map[Key]int{}
	for i := 0; i < 1000; i++ {
		k := BlockKey("input.txt", i)
		if j, dup := seen[k]; dup {
			t.Fatalf("block %d and %d collide on key %v", i, j, k)
		}
		seen[k] = i
	}
}

func TestKeyString(t *testing.T) {
	if got := Key(0xdeadbeef).String(); got != "00000000deadbeef" {
		t.Fatalf("Key.String() = %q", got)
	}
}

func TestDistanceWraps(t *testing.T) {
	if d := Distance(10, 5); d != ^uint64(0)-4 {
		t.Fatalf("Distance(10,5) = %d", d)
	}
	if d := Distance(5, 10); d != 5 {
		t.Fatalf("Distance(5,10) = %d", d)
	}
	if d := Distance(7, 7); d != 0 {
		t.Fatalf("Distance(k,k) = %d", d)
	}
}

func TestBetweenBasic(t *testing.T) {
	cases := []struct {
		k, a, b Key
		want    bool
	}{
		{5, 1, 10, true},
		{10, 1, 10, true}, // inclusive end
		{1, 1, 10, false}, // exclusive start
		{11, 1, 10, false},
		{0, 10, 2, true},  // wrapped arc
		{11, 10, 2, true}, // wrapped arc
		{5, 10, 2, false}, // outside wrapped arc
		{7, 7, 7, true},   // a == b covers full ring
		{1, 7, 7, true},
	}
	for _, c := range cases {
		if got := Between(c.k, c.a, c.b); got != c.want {
			t.Errorf("Between(%d,%d,%d) = %v want %v", c.k, c.a, c.b, got, c.want)
		}
	}
}

func TestInRangeBasic(t *testing.T) {
	cases := []struct {
		k, s, e Key
		want    bool
	}{
		{5, 1, 10, true},
		{1, 1, 10, true},   // inclusive start
		{10, 1, 10, false}, // exclusive end
		{0, 10, 2, true},   // wrapped
		{10, 10, 2, true},  // wrapped, start inclusive
		{2, 10, 2, false},  // wrapped, end exclusive
		{5, 3, 3, true},    // start == end covers full ring
	}
	for _, c := range cases {
		if got := InRange(c.k, c.s, c.e); got != c.want {
			t.Errorf("InRange(%d,%d,%d) = %v want %v", c.k, c.s, c.e, got, c.want)
		}
	}
}

// Property: for any a != b, each key is either in (a,b] or in (b,a] but
// never both — the two arcs partition the ring.
func TestBetweenPartitionsRing(t *testing.T) {
	f := func(k, a, b Key) bool {
		if a == b {
			return Between(k, a, b)
		}
		in1 := Between(k, a, b)
		in2 := Between(k, b, a)
		return in1 != in2
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 5000}); err != nil {
		t.Fatal(err)
	}
}

// Property: InRange and Between agree up to boundary conventions:
// Between(k, a, b) == InRange(k-? ...) is awkward, so instead check the
// complementary-partition property of InRange directly.
func TestInRangePartitionsRing(t *testing.T) {
	f := func(k, a, b Key) bool {
		if a == b {
			return InRange(k, a, b)
		}
		return InRange(k, a, b) != InRange(k, b, a)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 5000}); err != nil {
		t.Fatal(err)
	}
}

// Property: clockwise distances compose around the ring.
func TestDistanceComposes(t *testing.T) {
	f := func(a, b, c Key) bool {
		return Distance(a, b)+Distance(b, c) == Distance(a, c)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 5000}); err != nil {
		t.Fatal(err)
	}
}
