package hashing_test

import (
	"testing"

	"eclipsemr/internal/hashing"
	"eclipsemr/internal/hashing/ringtest"
)

// ringBackends is the full conformance matrix: every algorithm the -ring
// flag can select, plus the virtual-node chord variant.
func ringBackends(t *testing.T) map[string]func() hashing.Ring {
	t.Helper()
	backends := make(map[string]func() hashing.Ring)
	for _, alg := range hashing.Algorithms() {
		alg := alg
		backends[alg] = func() hashing.Ring {
			r, err := hashing.NewAlgorithmRing(alg)
			if err != nil {
				t.Fatalf("NewAlgorithmRing(%q): %v", alg, err)
			}
			return r
		}
	}
	backends["chord:8"] = func() hashing.Ring {
		r, err := hashing.NewAlgorithmRing("chord:8")
		if err != nil {
			t.Fatalf("NewAlgorithmRing(chord:8): %v", err)
		}
		return r
	}
	return backends
}

// TestRingConformance runs the shared invariant suite over every backend.
func TestRingConformance(t *testing.T) {
	for name, newRing := range ringBackends(t) {
		t.Run(name, func(t *testing.T) {
			ringtest.RunRingConformance(t, newRing)
		})
	}
}

// TestNewAlgorithmRing pins the factory surface: known names build rings
// reporting their own algorithm, unknown names fail.
func TestNewAlgorithmRing(t *testing.T) {
	for _, alg := range hashing.Algorithms() {
		r, err := hashing.NewAlgorithmRing(alg)
		if err != nil {
			t.Fatalf("NewAlgorithmRing(%q): %v", alg, err)
		}
		if got := r.Algorithm(); got != alg {
			t.Errorf("NewAlgorithmRing(%q).Algorithm() = %q", alg, got)
		}
	}
	if r, err := hashing.NewAlgorithmRing(""); err != nil || r.Algorithm() != hashing.AlgorithmChord {
		t.Errorf("empty name: ring %v, err %v; want default chord", r, err)
	}
	if r, err := hashing.NewAlgorithmRing("chord:16"); err != nil || r.Algorithm() != "chord:16" {
		t.Errorf("chord:16: ring %v, err %v", r, err)
	}
	for _, bad := range []string{"md5", "chord:x", "chord:0", "jump:4"} {
		if _, err := hashing.NewAlgorithmRing(bad); err == nil {
			t.Errorf("NewAlgorithmRing(%q) succeeded, want error", bad)
		}
	}
}

// TestChordRingDefaultPlacementUnchanged pins that the interface refactor
// did not move a single key on the default backend: the chord ring places
// ID-derived nodes exactly as the pre-interface ring did (owner at the
// clockwise successor position, replica set owner/predecessor/successor).
func TestChordRingDefaultPlacementUnchanged(t *testing.T) {
	r := hashing.NewChordRing()
	for _, id := range []hashing.NodeID{"worker-00", "worker-01", "worker-02", "worker-03"} {
		if err := r.AddNode(id); err != nil {
			t.Fatal(err)
		}
	}
	k := hashing.KeyOfString("some-block")
	owner, err := r.Owner(k)
	if err != nil {
		t.Fatal(err)
	}
	// The owner must be the member at the first ring position >= the key,
	// computed from first principles.
	var want hashing.NodeID
	var best hashing.Key
	first := true
	for _, id := range r.Members() {
		pos, _ := r.Position(id)
		if pos >= k && (first || pos < best) {
			want, best, first = id, pos, false
		}
	}
	if first { // wrapped: smallest position overall
		for _, id := range r.Members() {
			pos, _ := r.Position(id)
			if first || pos < best {
				want, best, first = id, pos, false
			}
		}
	}
	if owner != want {
		t.Fatalf("Owner(%v) = %s, want clockwise successor %s", k, owner, want)
	}
	set, err := r.ReplicaSet(k, 3)
	if err != nil {
		t.Fatal(err)
	}
	pred, _ := r.Predecessor(owner)
	succ, _ := r.Successor(owner)
	if set[0] != owner || set[1] != pred || set[2] != succ {
		t.Fatalf("ReplicaSet = %v, want [%s %s %s] (owner, predecessor, successor)", set, owner, pred, succ)
	}
}
