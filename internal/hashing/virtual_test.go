package hashing

import (
	"fmt"
	"math"
	"math/rand"
	"testing"
)

func newVRing(t *testing.T, nodes, vnodes int) *VirtualRing {
	t.Helper()
	r, err := NewVirtualRing(vnodes)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < nodes; i++ {
		if err := r.AddNode(NodeID(fmt.Sprintf("n%02d", i))); err != nil {
			t.Fatal(err)
		}
	}
	return r
}

func TestVirtualRingValidation(t *testing.T) {
	if _, err := NewVirtualRing(0); err == nil {
		t.Fatal("vnodes=0 accepted")
	}
	r := newVRing(t, 2, 4)
	if err := r.AddNode("n00"); err == nil {
		t.Fatal("duplicate node accepted")
	}
	if r.Len() != 2 {
		t.Fatalf("Len = %d", r.Len())
	}
}

func TestVirtualRingOwnerStable(t *testing.T) {
	r := newVRing(t, 8, 16)
	rng := rand.New(rand.NewSource(1))
	for i := 0; i < 500; i++ {
		k := Key(rng.Uint64())
		a, err := r.Owner(k)
		if err != nil {
			t.Fatal(err)
		}
		b, _ := r.Owner(k)
		if a != b || a == "" {
			t.Fatalf("unstable owner %q/%q", a, b)
		}
	}
}

func TestVirtualRingReplicaSetDistinct(t *testing.T) {
	r := newVRing(t, 6, 32)
	rng := rand.New(rand.NewSource(2))
	for i := 0; i < 300; i++ {
		set, err := r.ReplicaSet(Key(rng.Uint64()), 3)
		if err != nil {
			t.Fatal(err)
		}
		if len(set) != 3 {
			t.Fatalf("replica set = %v", set)
		}
		seen := map[NodeID]bool{}
		for _, id := range set {
			if seen[id] {
				t.Fatalf("duplicate physical node in %v", set)
			}
			seen[id] = true
		}
	}
	// More replicas than nodes clamps to the node count.
	set, err := r.ReplicaSet(1, 100)
	if err != nil || len(set) != 6 {
		t.Fatalf("clamped set = %v, %v", set, err)
	}
}

func TestVirtualRingRemove(t *testing.T) {
	r := newVRing(t, 4, 8)
	if !r.Remove("n02") || r.Remove("n02") {
		t.Fatal("Remove semantics")
	}
	rng := rand.New(rand.NewSource(3))
	for i := 0; i < 300; i++ {
		owner, err := r.Owner(Key(rng.Uint64()))
		if err != nil {
			t.Fatal(err)
		}
		if owner == "n02" {
			t.Fatal("removed node still owns keys")
		}
	}
	if len(r.Members()) != 3 {
		t.Fatalf("members = %v", r.Members())
	}
}

// TestVirtualNodesEqualizeLoad verifies the point of virtual nodes: the
// spread of per-node key-space shares shrinks as tokens increase.
func TestVirtualNodesEqualizeLoad(t *testing.T) {
	spread := func(vnodes int) float64 {
		r := newVRing(t, 20, vnodes)
		shares := r.LoadShare()
		var total, min, max float64
		min = math.Inf(1)
		for _, s := range shares {
			total += s
			if s < min {
				min = s
			}
			if s > max {
				max = s
			}
		}
		if math.Abs(total-1) > 1e-9 {
			t.Fatalf("shares sum to %g", total)
		}
		return max / min
	}
	single := spread(1)
	many := spread(64)
	if many >= single {
		t.Fatalf("64 vnodes spread %.2f not tighter than single-token %.2f", many, single)
	}
	if many > 3 {
		t.Fatalf("64-vnode max/min share = %.2f, want < 3", many)
	}
	t.Logf("max/min key-space share: 1 token %.2f, 64 tokens %.2f", single, many)
}
