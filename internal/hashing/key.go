// Package hashing provides the 64-bit hash-key space shared by every layer
// of EclipseMR: the DHT file system, the distributed in-memory cache, and
// the LAF job scheduler. Keys are derived from SHA-1 digests (the hash
// function the paper uses for its DHT file system) truncated to 64 bits,
// and all arithmetic is modulo 2^64 so the space forms a ring.
package hashing

import (
	"crypto/sha1"
	"encoding/binary"
	"fmt"
	"strconv"
)

// Key is a position on the consistent-hash ring. The ring is the full
// uint64 space; arithmetic wraps modulo 2^64.
type Key uint64

// MaxKey is the largest representable key.
const MaxKey Key = ^Key(0)

// KeyOf returns the ring key for an arbitrary byte string: the first eight
// bytes of its SHA-1 digest, big-endian.
func KeyOf(data []byte) Key {
	sum := sha1.Sum(data)
	return Key(binary.BigEndian.Uint64(sum[:8]))
}

// KeyOfString returns the ring key for a string (file names, node names,
// intermediate-result keys).
func KeyOfString(s string) Key {
	return KeyOf([]byte(s))
}

// BlockKey returns the deterministic ring key for block index idx of the
// named file. Deriving block keys from (name, index) rather than block
// contents keeps placement stable across re-uploads and lets the scheduler
// predict block locations from metadata alone.
func BlockKey(name string, idx int) Key {
	return KeyOfString(name + ":" + strconv.Itoa(idx))
}

// String renders the key as fixed-width hexadecimal.
func (k Key) String() string {
	return fmt.Sprintf("%016x", uint64(k))
}

// Distance returns the clockwise distance from a to b on the ring.
func Distance(a, b Key) uint64 {
	return uint64(b - a) // wraps modulo 2^64 by definition
}

// Between reports whether k lies in the half-open clockwise arc (a, b].
// This is the Chord ownership test: the node at position b owns every key
// in (pred, b]. When a == b the arc is the entire ring.
func Between(k, a, b Key) bool {
	if a == b {
		return true
	}
	if a < b {
		return a < k && k <= b
	}
	return k > a || k <= b
}

// InRange reports whether k lies in the half-open clockwise arc [start,
// end). When start == end the arc is the entire ring.
func InRange(k, start, end Key) bool {
	if start == end {
		return true
	}
	if start < end {
		return start <= k && k < end
	}
	return k >= start || k < end
}
