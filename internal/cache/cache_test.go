package cache

import (
	"fmt"
	"math/rand"
	"testing"
	"testing/quick"
	"time"

	"eclipsemr/internal/hashing"
)

func TestPutGetBasic(t *testing.T) {
	c := NewLRU(1024)
	if !c.Put(Entry{Key: "a", Size: 10, Value: "va"}) {
		t.Fatal("Put rejected")
	}
	e, ok := c.Get("a")
	if !ok || e.Value != "va" || e.Size != 10 {
		t.Fatalf("Get = %+v, %v", e, ok)
	}
	if _, ok := c.Get("missing"); ok {
		t.Fatal("Get(missing) hit")
	}
	st := c.Stats()
	if st.Hits != 1 || st.Misses != 1 || st.Insertions != 1 {
		t.Fatalf("stats = %+v", st)
	}
}

func TestPutReplaceAdjustsBytes(t *testing.T) {
	c := NewLRU(100)
	c.Put(Entry{Key: "a", Size: 40})
	c.Put(Entry{Key: "a", Size: 10})
	if c.Bytes() != 10 || c.Len() != 1 {
		t.Fatalf("bytes=%d len=%d after replace", c.Bytes(), c.Len())
	}
}

func TestLRUEvictionOrder(t *testing.T) {
	c := NewLRU(30)
	c.Put(Entry{Key: "a", Size: 10})
	c.Put(Entry{Key: "b", Size: 10})
	c.Put(Entry{Key: "c", Size: 10})
	// Touch "a" so "b" becomes the LRU victim.
	if _, ok := c.Get("a"); !ok {
		t.Fatal("a missing")
	}
	c.Put(Entry{Key: "d", Size: 10})
	if _, ok := c.Peek("b"); ok {
		t.Fatal("b should have been evicted")
	}
	for _, k := range []string{"a", "c", "d"} {
		if _, ok := c.Peek(k); !ok {
			t.Fatalf("%s should survive", k)
		}
	}
	if c.Stats().Evictions != 1 {
		t.Fatalf("evictions = %d", c.Stats().Evictions)
	}
}

func TestOversizedEntryRejected(t *testing.T) {
	c := NewLRU(10)
	if c.Put(Entry{Key: "big", Size: 11}) {
		t.Fatal("oversized entry accepted")
	}
	if c.Put(Entry{Key: "neg", Size: -1}) {
		t.Fatal("negative size accepted")
	}
	if c.Len() != 0 {
		t.Fatal("rejected entries stored")
	}
}

func TestZeroCapacityCachesNothing(t *testing.T) {
	c := NewLRU(0)
	stored := c.Put(Entry{Key: "a", Size: 1})
	if stored {
		t.Fatal("zero-capacity cache stored an entry")
	}
	if _, ok := c.Get("a"); ok {
		t.Fatal("zero-capacity cache hit")
	}
	// Zero-size entries must be rejected too: a zero-capacity cache that
	// accepted them would hold them forever (evictOverflow never fires at
	// bytes == capacity == 0), contradicting "every Get is a miss".
	if c.Put(Entry{Key: "empty", Size: 0}) {
		t.Fatal("zero-capacity cache stored a zero-size entry")
	}
	if c.Len() != 0 {
		t.Fatalf("len = %d, want 0", c.Len())
	}
	neg := NewLRU(-5)
	if neg.Put(Entry{Key: "x", Size: 0}) {
		t.Fatal("negative-capacity cache stored an entry")
	}
}

func TestResizeEvicts(t *testing.T) {
	c := NewLRU(100)
	for i := 0; i < 10; i++ {
		c.Put(Entry{Key: fmt.Sprint(i), Size: 10})
	}
	c.Resize(35)
	if c.Bytes() > 35 {
		t.Fatalf("bytes=%d after shrink", c.Bytes())
	}
	if c.Len() != 3 {
		t.Fatalf("len=%d after shrink, want 3", c.Len())
	}
	if c.Capacity() != 35 {
		t.Fatalf("capacity=%d", c.Capacity())
	}
	// Survivors must be the most recently used (7, 8, 9).
	for _, k := range []string{"7", "8", "9"} {
		if _, ok := c.Peek(k); !ok {
			t.Fatalf("MRU entry %s evicted by Resize", k)
		}
	}
}

func TestTTLExpiry(t *testing.T) {
	c := NewLRU(100)
	now := time.Unix(1000, 0)
	c.SetClock(func() time.Time { return now })
	c.Put(Entry{Key: "t", Size: 1, Expires: now.Add(10 * time.Second)})
	if _, ok := c.Get("t"); !ok {
		t.Fatal("entry expired early")
	}
	now = now.Add(11 * time.Second)
	if _, ok := c.Get("t"); ok {
		t.Fatal("expired entry still served")
	}
	st := c.Stats()
	if st.Expirations != 1 {
		t.Fatalf("expirations = %d", st.Expirations)
	}
	if _, ok := c.Peek("t"); ok {
		t.Fatal("Peek served expired entry")
	}
}

func TestPeekDropsExpiredEntry(t *testing.T) {
	c := NewLRU(100)
	now := time.Unix(1000, 0)
	c.SetClock(func() time.Time { return now })
	c.Put(Entry{Key: "t", Size: 7, Expires: now.Add(time.Second)})
	now = now.Add(2 * time.Second)
	if _, ok := c.Peek("t"); ok {
		t.Fatal("Peek served expired entry")
	}
	// The expired entry must be removed, not left resident holding bytes.
	if c.Len() != 0 || c.Bytes() != 0 {
		t.Fatalf("expired entry still resident: len=%d bytes=%d", c.Len(), c.Bytes())
	}
	if st := c.Stats(); st.Expirations != 1 {
		t.Fatalf("expirations = %d", st.Expirations)
	}
	// Peek still must not count hits or misses.
	if st := c.Stats(); st.Hits != 0 || st.Misses != 0 {
		t.Fatalf("Peek counted stats: %+v", st)
	}
}

func TestEntriesInRangeSkipsExpired(t *testing.T) {
	c := NewLRU(1000)
	now := time.Unix(1000, 0)
	c.SetClock(func() time.Time { return now })
	c.Put(Entry{Key: "live", HashKey: 100, Size: 1})
	c.Put(Entry{Key: "dying", HashKey: 200, Size: 1, Expires: now.Add(time.Second)})
	now = now.Add(2 * time.Second)
	got := c.EntriesInRange(0, 500)
	if len(got) != 1 || got[0].Key != "live" {
		t.Fatalf("EntriesInRange returned expired entries: %+v", got)
	}
}

func TestSweepExpired(t *testing.T) {
	c := NewLRU(100)
	now := time.Unix(0, 0)
	c.SetClock(func() time.Time { return now })
	c.Put(Entry{Key: "a", Size: 1, Expires: now.Add(time.Second)})
	c.Put(Entry{Key: "b", Size: 1, Expires: now.Add(time.Hour)})
	c.Put(Entry{Key: "c", Size: 1}) // no TTL
	now = now.Add(time.Minute)
	if n := c.SweepExpired(); n != 1 {
		t.Fatalf("SweepExpired = %d", n)
	}
	if c.Len() != 2 {
		t.Fatalf("len = %d after sweep", c.Len())
	}
}

func TestPeekDoesNotPromoteOrCount(t *testing.T) {
	c := NewLRU(20)
	c.Put(Entry{Key: "a", Size: 10})
	c.Put(Entry{Key: "b", Size: 10})
	c.Peek("a") // must NOT promote a
	c.Put(Entry{Key: "c", Size: 10})
	if _, ok := c.Peek("a"); ok {
		t.Fatal("Peek promoted entry")
	}
	st := c.Stats()
	if st.Hits != 0 || st.Misses != 0 {
		t.Fatalf("Peek counted stats: %+v", st)
	}
}

func TestRemoveAndClear(t *testing.T) {
	c := NewLRU(100)
	c.Put(Entry{Key: "a", Size: 5})
	if !c.Remove("a") || c.Remove("a") {
		t.Fatal("Remove semantics wrong")
	}
	if c.Bytes() != 0 {
		t.Fatalf("bytes=%d after remove", c.Bytes())
	}
	c.Put(Entry{Key: "b", Size: 5})
	c.Clear()
	if c.Len() != 0 || c.Bytes() != 0 {
		t.Fatal("Clear left entries")
	}
}

func TestEntriesInRange(t *testing.T) {
	c := NewLRU(1000)
	for i := 0; i < 10; i++ {
		k := hashing.Key(i * 100)
		c.Put(Entry{Key: fmt.Sprint(i), HashKey: k, Size: 1})
	}
	got := c.EntriesInRange(250, 550)
	if len(got) != 3 { // 300, 400, 500
		t.Fatalf("EntriesInRange = %d entries", len(got))
	}
	// Wrapped range.
	got = c.EntriesInRange(850, 150)
	if len(got) != 3 { // 900, 0, 100
		t.Fatalf("wrapped EntriesInRange = %d entries", len(got))
	}
}

func TestHitRatio(t *testing.T) {
	var s Stats
	if s.HitRatio() != 0 {
		t.Fatal("empty HitRatio != 0")
	}
	s = Stats{Hits: 3, Misses: 1}
	if s.HitRatio() != 0.75 {
		t.Fatalf("HitRatio = %g", s.HitRatio())
	}
}

// Property: bytes accounting always equals the sum of live entry sizes and
// never exceeds capacity.
func TestBytesInvariant(t *testing.T) {
	type op struct {
		Key  uint8
		Size uint16
		Del  bool
	}
	f := func(ops []op) bool {
		c := NewLRU(4096)
		for _, o := range ops {
			k := fmt.Sprint(o.Key % 32)
			if o.Del {
				c.Remove(k)
			} else {
				c.Put(Entry{Key: k, Size: int64(o.Size % 1024)})
			}
			if c.Bytes() > 4096 || c.Bytes() < 0 {
				return false
			}
		}
		var total int64
		for _, e := range c.EntriesInRange(0, 0) { // full ring = all entries
			total += e.Size
		}
		return total == c.Bytes()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestConcurrentAccess(t *testing.T) {
	c := NewLRU(1 << 16)
	done := make(chan struct{})
	for g := 0; g < 8; g++ {
		go func(seed int64) {
			defer func() { done <- struct{}{} }()
			rng := rand.New(rand.NewSource(seed))
			for i := 0; i < 2000; i++ {
				k := fmt.Sprint(rng.Intn(100))
				switch rng.Intn(3) {
				case 0:
					c.Put(Entry{Key: k, Size: int64(rng.Intn(256))})
				case 1:
					c.Get(k)
				case 2:
					c.Remove(k)
				}
			}
		}(int64(g))
	}
	for g := 0; g < 8; g++ {
		<-done
	}
	if c.Bytes() > 1<<16 {
		t.Fatalf("capacity exceeded under concurrency: %d", c.Bytes())
	}
}

func TestNodeCacheBlocks(t *testing.T) {
	nc := New(1024, 1024)
	k := hashing.KeyOfString("block-0")
	if !nc.PutBlock(k, []byte("hello")) {
		t.Fatal("PutBlock failed")
	}
	data, ok := nc.GetBlock(k)
	if !ok || string(data) != "hello" {
		t.Fatalf("GetBlock = %q, %v", data, ok)
	}
	if _, ok := nc.GetBlock(hashing.KeyOfString("other")); ok {
		t.Fatal("GetBlock hit on missing block")
	}
}

func TestNodeCacheTagged(t *testing.T) {
	nc := New(1024, 1024)
	now := time.Unix(0, 0)
	nc.SetClock(func() time.Time { return now })
	hk := hashing.KeyOfString("wc:iter1")
	if !nc.PutTagged("wordcount", "iter1", hk, []byte("result"), time.Minute) {
		t.Fatal("PutTagged failed")
	}
	data, ok := nc.GetTagged("wordcount", "iter1")
	if !ok || string(data) != "result" {
		t.Fatalf("GetTagged = %q, %v", data, ok)
	}
	// Tags from other applications do not collide.
	if _, ok := nc.GetTagged("grep", "iter1"); ok {
		t.Fatal("cross-application tag hit")
	}
	now = now.Add(2 * time.Minute)
	if _, ok := nc.GetTagged("wordcount", "iter1"); ok {
		t.Fatal("TTL not honored for tagged entry")
	}
}

func TestNodeCacheCombinedStats(t *testing.T) {
	nc := New(1024, 1024)
	k := hashing.KeyOfString("b")
	nc.PutBlock(k, []byte("x"))
	nc.GetBlock(k)                 // iCache hit
	nc.GetTagged("app", "missing") // oCache miss
	st := nc.CombinedStats()
	if st.Hits != 1 || st.Misses != 1 || st.Insertions != 1 {
		t.Fatalf("combined stats = %+v", st)
	}
	if st.HitRatio() != 0.5 {
		t.Fatalf("combined hit ratio = %g", st.HitRatio())
	}
}

func TestNewSharedSplitsCapacity(t *testing.T) {
	nc := NewShared(1001)
	if nc.ICache.Capacity()+nc.OCache.Capacity() != 1001 {
		t.Fatal("NewShared lost capacity to rounding")
	}
}
