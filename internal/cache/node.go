package cache

import (
	"time"

	"eclipsemr/internal/hashing"
)

// NodeCache is one worker server's slice of the distributed in-memory
// cache: an iCache partition for input blocks and an oCache partition for
// tagged intermediate results and iteration outputs.
type NodeCache struct {
	ICache *LRU
	OCache *LRU
}

// New builds a NodeCache with the given per-partition byte capacities.
func New(iCapacity, oCapacity int64) *NodeCache {
	return &NodeCache{
		ICache: NewLRU(iCapacity),
		OCache: NewLRU(oCapacity),
	}
}

// NewShared builds a NodeCache where both partitions share a single
// capacity figure split evenly, the configuration used by the paper's
// experiments ("we set the size of distributed in-memory cache per server
// to 1 GB").
func NewShared(capacity int64) *NodeCache {
	return New(capacity/2, capacity-capacity/2)
}

// SetClock overrides the time source of both partitions.
func (nc *NodeCache) SetClock(now func() time.Time) {
	nc.ICache.SetClock(now)
	nc.OCache.SetClock(now)
}

// BlockKey is the iCache lookup key for an input block.
func BlockKey(k hashing.Key) string {
	return "block:" + k.String()
}

// TagKey is the oCache lookup key for an explicitly cached object,
// namespaced by application ID and the user-assigned data ID (§II-B: the
// cached data is tagged with "application ID, user-assigned ID").
func TagKey(appID, dataID string) string {
	return "ocache:" + appID + ":" + dataID
}

// PutBlock caches an input data block in iCache.
func (nc *NodeCache) PutBlock(k hashing.Key, data []byte) bool {
	return nc.ICache.Put(Entry{
		Key:     BlockKey(k),
		HashKey: k,
		Size:    int64(len(data)),
		Value:   data,
	})
}

// GetBlock fetches an input block from iCache.
func (nc *NodeCache) GetBlock(k hashing.Key) ([]byte, bool) {
	e, ok := nc.ICache.Get(BlockKey(k))
	if !ok {
		return nil, false
	}
	data, _ := e.Value.([]byte)
	return data, true
}

// PutTagged caches an application-tagged object (intermediate result or
// iteration output) in oCache with an optional TTL.
func (nc *NodeCache) PutTagged(appID, dataID string, hashKey hashing.Key, data []byte, ttl time.Duration) bool {
	e := Entry{
		Key:     TagKey(appID, dataID),
		HashKey: hashKey,
		Size:    int64(len(data)),
		Value:   data,
	}
	if ttl > 0 {
		e.Expires = nowOf(nc.OCache).Add(ttl)
	}
	return nc.OCache.Put(e)
}

// GetTagged fetches an application-tagged object from oCache.
func (nc *NodeCache) GetTagged(appID, dataID string) ([]byte, bool) {
	e, ok := nc.OCache.Get(TagKey(appID, dataID))
	if !ok {
		return nil, false
	}
	data, _ := e.Value.([]byte)
	return data, true
}

// CombinedStats sums the two partitions' counters, the figure the paper
// reports as "the overall cache hit ratio".
func (nc *NodeCache) CombinedStats() Stats {
	i, o := nc.ICache.Stats(), nc.OCache.Stats()
	return Stats{
		Hits:        i.Hits + o.Hits,
		Misses:      i.Misses + o.Misses,
		Insertions:  i.Insertions + o.Insertions,
		Evictions:   i.Evictions + o.Evictions,
		Expirations: i.Expirations + o.Expirations,
	}
}

func nowOf(c *LRU) time.Time {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.now()
}
