// Package cache implements EclipseMR's distributed in-memory key-value
// cache layer. Each worker server holds one Cache, split into two
// partitions exactly as in §II-B of the paper:
//
//   - iCache: input data blocks, cached implicitly by hash key when a map
//     task reads them. Because placement follows the scheduler's hash-key
//     ranges rather than storage locality, popular blocks spread across
//     the whole cluster's memory.
//   - oCache: intermediate results of map tasks and outputs of iterative
//     jobs, cached explicitly by applications and tagged with metadata
//     (application ID, user-assigned data ID). Entries carry a TTL.
//
// Both partitions use LRU replacement with byte-accounted capacity.
package cache

import (
	"container/list"
	"sync"
	"time"

	"eclipsemr/internal/hashing"
)

// Entry is one cached object.
type Entry struct {
	// Key is the namespaced lookup key (e.g. "block:<hashkey>" for iCache
	// or "ocache:<app>:<tag>" for oCache).
	Key string
	// HashKey is the object's position in the ring key space; the
	// scheduler uses it for locality prediction and the migration option
	// uses it to find misplaced entries.
	HashKey hashing.Key
	// Size is the entry's memory footprint in bytes, charged against the
	// partition capacity. For simulated workloads Value may be nil while
	// Size is still accounted.
	Size int64
	// Value holds the cached object.
	Value any
	// Expires, when non-zero, invalidates the entry after this instant
	// (the paper's TTL on stored intermediate results).
	Expires time.Time
}

// Stats are cumulative counters for one partition.
type Stats struct {
	Hits        uint64
	Misses      uint64
	Insertions  uint64
	Evictions   uint64
	Expirations uint64
}

// HitRatio returns hits / (hits+misses), or 0 before any lookup.
func (s Stats) HitRatio() float64 {
	total := s.Hits + s.Misses
	if total == 0 {
		return 0
	}
	return float64(s.Hits) / float64(total)
}

// LRU is a byte-capacity-bounded least-recently-used cache partition.
// It is safe for concurrent use.
type LRU struct {
	mu       sync.Mutex
	capacity int64
	bytes    int64
	ll       *list.List // front = most recently used; values are *Entry
	table    map[string]*list.Element
	stats    Stats
	now      func() time.Time
}

// NewLRU creates a partition holding at most capacity bytes. A zero or
// negative capacity creates a cache that stores nothing (every Get is a
// miss), matching the "cache size 0" point in Figure 7.
func NewLRU(capacity int64) *LRU {
	return &LRU{
		capacity: capacity,
		ll:       list.New(),
		table:    make(map[string]*list.Element),
		now:      time.Now,
	}
}

// SetClock overrides the time source, for deterministic TTL tests and for
// the discrete-event simulator's virtual clock.
func (c *LRU) SetClock(now func() time.Time) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.now = now
}

// Capacity returns the partition's byte capacity.
func (c *LRU) Capacity() int64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.capacity
}

// Resize changes the capacity, evicting LRU entries if the cache now
// overflows.
func (c *LRU) Resize(capacity int64) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.capacity = capacity
	c.evictOverflow()
}

// Put inserts or replaces an entry, evicting least-recently-used entries
// to make room. It reports whether the entry was stored; entries larger
// than the whole partition are rejected.
func (c *LRU) Put(e Entry) bool {
	if e.Size < 0 {
		return false
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	// capacity <= 0 means "store nothing": without the explicit check a
	// zero-size entry would slip past the size comparison and live forever,
	// because evictOverflow never fires at bytes == capacity == 0.
	if c.capacity <= 0 || e.Size > c.capacity {
		return false
	}
	if el, ok := c.table[e.Key]; ok {
		old := el.Value.(*Entry)
		c.bytes += e.Size - old.Size
		*old = e
		c.ll.MoveToFront(el)
	} else {
		el := c.ll.PushFront(&e)
		c.table[e.Key] = el
		c.bytes += e.Size
	}
	c.stats.Insertions++
	c.evictOverflow()
	return true
}

// evictOverflow drops LRU entries until the partition fits its capacity.
// Caller holds c.mu.
func (c *LRU) evictOverflow() {
	for c.bytes > c.capacity {
		back := c.ll.Back()
		if back == nil {
			return
		}
		c.removeElement(back)
		c.stats.Evictions++
	}
}

// removeElement unlinks an element. Caller holds c.mu.
func (c *LRU) removeElement(el *list.Element) {
	e := el.Value.(*Entry)
	c.ll.Remove(el)
	delete(c.table, e.Key)
	c.bytes -= e.Size
}

// Get looks up a key, promoting it to most-recently-used on a hit.
// Expired entries count as misses and are removed.
func (c *LRU) Get(key string) (Entry, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	el, ok := c.table[key]
	if !ok {
		c.stats.Misses++
		return Entry{}, false
	}
	e := el.Value.(*Entry)
	if !e.Expires.IsZero() && c.now().After(e.Expires) {
		c.removeElement(el)
		c.stats.Expirations++
		c.stats.Misses++
		return Entry{}, false
	}
	c.ll.MoveToFront(el)
	c.stats.Hits++
	return *e, true
}

// Peek looks up a key without promoting it or counting hit/miss stats.
// The scheduler's locality predictions use Peek so probing does not skew
// the measured hit ratio.
func (c *LRU) Peek(key string) (Entry, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	el, ok := c.table[key]
	if !ok {
		return Entry{}, false
	}
	e := el.Value.(*Entry)
	if !e.Expires.IsZero() && c.now().After(e.Expires) {
		// Drop the dead entry just like Get: leaving it resident would
		// hold capacity and let EntriesInRange-style scans see it again.
		c.removeElement(el)
		c.stats.Expirations++
		return Entry{}, false
	}
	return *e, true
}

// Remove deletes a key, reporting whether it was present.
func (c *LRU) Remove(key string) bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	el, ok := c.table[key]
	if !ok {
		return false
	}
	c.removeElement(el)
	return true
}

// SweepExpired removes every expired entry and returns how many were
// dropped.
func (c *LRU) SweepExpired() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	now := c.now()
	var dropped int
	for el := c.ll.Front(); el != nil; {
		next := el.Next()
		e := el.Value.(*Entry)
		if !e.Expires.IsZero() && now.After(e.Expires) {
			c.removeElement(el)
			c.stats.Expirations++
			dropped++
		}
		el = next
	}
	return dropped
}

// EntriesInRange returns (copies of) all live entries whose HashKey falls
// in [start, end). The misplaced-cached-data migration option from §II-E
// uses this to find entries a neighbor's new hash-key range now covers.
func (c *LRU) EntriesInRange(start, end hashing.Key) []Entry {
	c.mu.Lock()
	defer c.mu.Unlock()
	now := c.now()
	var out []Entry
	for el := c.ll.Front(); el != nil; el = el.Next() {
		e := el.Value.(*Entry)
		if !e.Expires.IsZero() && now.After(e.Expires) {
			continue // dead data must not migrate across the ring
		}
		if hashing.InRange(e.HashKey, start, end) {
			out = append(out, *e)
		}
	}
	return out
}

// Len returns the number of live entries.
func (c *LRU) Len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.ll.Len()
}

// Bytes returns the bytes currently cached.
func (c *LRU) Bytes() int64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.bytes
}

// Stats returns a snapshot of the partition's counters.
func (c *LRU) Stats() Stats {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.stats
}

// Clear drops every entry, preserving counters.
func (c *LRU) Clear() {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.ll.Init()
	c.table = make(map[string]*list.Element)
	c.bytes = 0
}
