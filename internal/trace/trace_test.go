package trace

import (
	"bytes"
	"context"
	"fmt"
	"strings"
	"sync"
	"testing"
	"time"

	"eclipsemr/internal/metrics"
)

// frozenClock returns a virtual clock starting at t0 that advances by
// step on every read — deterministic but strictly increasing.
func tickClock(t0 int64, step time.Duration) metrics.Clock {
	var mu sync.Mutex
	now := t0
	return metrics.ClockFunc(func() time.Time {
		mu.Lock()
		defer mu.Unlock()
		now += int64(step)
		return time.Unix(0, now)
	})
}

func TestDisabledTracerIsNilSafe(t *testing.T) {
	tr := New("n0", Options{})
	ctx, sp := tr.StartRoot(context.Background(), "job-1", "root")
	if sp != nil {
		t.Fatal("disabled tracer returned a span")
	}
	// All of these must be no-ops, not panics.
	sp.Annotate("k", "v")
	sp.Eventf("e %d", 1)
	sp.End()
	if _, child := tr.StartSpan(ctx, "child"); child != nil {
		t.Fatal("disabled tracer returned a child span")
	}
	if got := tr.Spans(""); len(got) != 0 {
		t.Fatalf("disabled tracer recorded %d spans", len(got))
	}
	var nilTr *Tracer
	if nilTr.Enabled() {
		t.Fatal("nil tracer enabled")
	}
	nilTr.SetEnabled(true)
	if _, sp := nilTr.StartRoot(context.Background(), "j", "r"); sp != nil {
		t.Fatal("nil tracer returned a span")
	}
}

func TestSpanTreeAndPropagation(t *testing.T) {
	tr := New("driver", Options{Clock: tickClock(0, time.Millisecond)})
	tr.SetEnabled(true)
	ctx, root := tr.StartRoot(context.Background(), "job-1", "driver.job")
	ctx2, child := tr.StartSpan(ctx, "dispatch")
	child.Annotate("task", "m0")

	// Cross the "wire": encode the outbound context, decode on a second
	// node, and start a handler-side span there.
	sc := Outbound(ctx2)
	if sc.Trace != "job-1" || sc.Parent != child.ID {
		t.Fatalf("outbound = %+v", sc)
	}
	wire := sc.Encode()
	got, err := DecodeSpanContext(wire)
	if err != nil || got != sc {
		t.Fatalf("decode = %+v, %v", got, err)
	}
	worker := New("worker", Options{Clock: tickClock(int64(time.Second), time.Millisecond)})
	worker.SetEnabled(true)
	wctx := WithRemote(context.Background(), got)
	_, task := worker.StartSpan(wctx, "task.map")
	task.Eventf("retry attempt=%d", 1)
	task.End()
	child.End()
	root.End()

	all := append(tr.Spans("job-1"), worker.Spans("job-1")...)
	if len(all) != 3 {
		t.Fatalf("collected %d spans", len(all))
	}
	roots := BuildTree(all)
	if len(roots) != 1 || roots[0].Span.Name != "driver.job" {
		t.Fatalf("roots = %+v", roots)
	}
	d := roots[0].Children
	if len(d) != 1 || d[0].Span.Name != "dispatch" || len(d[0].Children) != 1 {
		t.Fatalf("dispatch subtree wrong: %+v", d)
	}
	if got := d[0].Children[0].Span; got.Name != "task.map" || got.Node != "worker" {
		t.Fatalf("remote child = %+v", got)
	}
	text := RenderTimeline(all)
	for _, want := range []string{"driver.job", "task.map", "task=m0", "retry attempt=1"} {
		if !strings.Contains(text, want) {
			t.Fatalf("timeline missing %q:\n%s", want, text)
		}
	}
}

func TestStartSpanOutsideTraceReturnsNil(t *testing.T) {
	tr := New("n0", Options{})
	tr.SetEnabled(true)
	if _, sp := tr.StartSpan(context.Background(), "orphan"); sp != nil {
		t.Fatal("span started outside any trace")
	}
}

func TestRingBounded(t *testing.T) {
	tr := New("n0", Options{Capacity: 8, Clock: tickClock(0, time.Microsecond)})
	tr.SetEnabled(true)
	for i := 0; i < 20; i++ {
		_, sp := tr.StartRoot(context.Background(), "job-1", fmt.Sprintf("s%02d", i))
		sp.End()
	}
	got := tr.Spans("job-1")
	if len(got) != 8 {
		t.Fatalf("ring kept %d spans, want 8", len(got))
	}
	if got[0].Name != "s12" || got[7].Name != "s19" {
		t.Fatalf("ring kept wrong window: %s..%s", got[0].Name, got[7].Name)
	}
	if tr.Dropped() != 12 {
		t.Fatalf("dropped = %d, want 12", tr.Dropped())
	}
}

func TestSeededIDsDeterministic(t *testing.T) {
	mk := func() []Span {
		tr := New("n0", Options{Seed: 7, Clock: tickClock(0, time.Millisecond)})
		tr.SetEnabled(true)
		ctx, root := tr.StartRoot(context.Background(), "job-1", "root")
		_, c := tr.StartSpan(ctx, "child")
		c.End()
		root.End()
		return tr.Spans("")
	}
	a, b := mk(), mk()
	if len(a) != 2 || len(b) != 2 {
		t.Fatalf("span counts %d/%d", len(a), len(b))
	}
	for i := range a {
		if a[i].ID != b[i].ID || a[i].StartNS != b[i].StartNS {
			t.Fatalf("run divergence at %d: %+v vs %+v", i, a[i], b[i])
		}
	}
}

func TestSamplingAllOrNothingPerTrace(t *testing.T) {
	tr := New("n0", Options{SampleEvery: 2, Clock: tickClock(0, time.Millisecond)})
	tr.SetEnabled(true)
	kept := 0
	for i := 0; i < 64; i++ {
		id := fmt.Sprintf("job-%d", i)
		ctx, root := tr.StartRoot(context.Background(), id, "root")
		if root == nil {
			if _, c := tr.StartSpan(ctx, "child"); c != nil {
				t.Fatalf("trace %s sampled out but child recorded", id)
			}
			continue
		}
		kept++
		root.End()
	}
	if kept == 0 || kept == 64 {
		t.Fatalf("sampling kept %d/64", kept)
	}
	// The decision must be per trace-ID and reproducible.
	tr2 := New("other", Options{SampleEvery: 2})
	tr2.SetEnabled(true)
	for i := 0; i < 64; i++ {
		id := fmt.Sprintf("job-%d", i)
		if tr.sampled(id) != tr2.sampled(id) {
			t.Fatalf("nodes disagree on sampling %s", id)
		}
	}
}

func TestChromeExportDeterministicAndValid(t *testing.T) {
	mk := func() []byte {
		d := New("driver", Options{Clock: tickClock(0, time.Millisecond)})
		w := New("worker-01", Options{Clock: tickClock(int64(10*time.Millisecond), time.Millisecond)})
		d.SetEnabled(true)
		w.SetEnabled(true)
		ctx, root := d.StartRoot(context.Background(), "job-1", "driver.job")
		wctx := WithRemote(context.Background(), Outbound(ctx))
		_, m := w.StartSpan(wctx, "task.map")
		m.Annotate("cache", "miss")
		m.Eventf("retry attempt=1")
		m.End()
		root.End()
		out, err := ChromeTrace(append(d.Spans(""), w.Spans("")...))
		if err != nil {
			t.Fatal(err)
		}
		return out
	}
	a, b := mk(), mk()
	if !bytes.Equal(a, b) {
		t.Fatalf("export not deterministic:\n%s\n---\n%s", a, b)
	}
	if err := ValidateChrome(a); err != nil {
		t.Fatalf("export invalid: %v\n%s", err, a)
	}
	for _, want := range []string{`"process_name"`, `"driver"`, `"worker-01"`,
		`"cache": "miss"`, `"retry attempt=1"`, `"displayTimeUnit": "ms"`} {
		if !bytes.Contains(a, []byte(want)) {
			t.Fatalf("export missing %s:\n%s", want, a)
		}
	}
}

func TestValidateChromeRejectsMalformed(t *testing.T) {
	if err := ValidateChrome([]byte("{")); err == nil {
		t.Fatal("accepted truncated JSON")
	}
	if err := ValidateChrome([]byte(`{"traceEvents":[]}`)); err == nil {
		t.Fatal("accepted empty trace")
	}
	bad := `{"traceEvents":[
	 {"name":"b","ph":"X","ts":50,"pid":1,"tid":1,
	  "args":{"span":"0000000000000002","parent":"0000000000000001"}},
	 {"name":"a","ph":"X","ts":100,"pid":1,"tid":1,
	  "args":{"span":"0000000000000001","parent":"0000000000000000"}}]}`
	if err := ValidateChrome([]byte(bad)); err == nil {
		t.Fatal("accepted child starting before parent")
	}
	unordered := `{"traceEvents":[
	 {"name":"a","ph":"X","ts":100,"pid":1,"tid":1},
	 {"name":"b","ph":"X","ts":50,"pid":1,"tid":1}]}`
	if err := ValidateChrome([]byte(unordered)); err == nil {
		t.Fatal("accepted non-monotone timestamps")
	}
}

func TestConcurrentSpans(t *testing.T) {
	tr := New("n0", Options{Capacity: 64})
	tr.SetEnabled(true)
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 50; i++ {
				ctx, root := tr.StartRoot(context.Background(), "job-1", "root")
				_, c := tr.StartSpan(ctx, "child")
				c.Annotate("g", fmt.Sprint(g))
				c.Eventf("i=%d", i)
				c.End()
				root.End()
			}
		}(g)
	}
	wg.Wait()
	got := tr.Spans("job-1")
	if len(got) != 64 {
		t.Fatalf("ring kept %d spans, want 64", len(got))
	}
	seen := map[SpanID]bool{}
	for _, s := range got {
		if seen[s.ID] {
			t.Fatalf("duplicate span ID %d", s.ID)
		}
		seen[s.ID] = true
	}
}

func TestAnnotateHelpersOnContext(t *testing.T) {
	tr := New("n0", Options{Clock: tickClock(0, time.Millisecond)})
	tr.SetEnabled(true)
	ctx, sp := tr.StartRoot(context.Background(), "job-1", "root")
	Annotate(ctx, "k", "v")
	Eventf(ctx, "hello %s", "world")
	sp.End()
	got := tr.Spans("job-1")
	if len(got) != 1 || len(got[0].Annotations) != 1 || len(got[0].Events) != 1 {
		t.Fatalf("span = %+v", got)
	}
	// Without an active span both helpers are no-ops.
	Annotate(context.Background(), "k", "v")
	Eventf(context.Background(), "x")
}

func TestDecodeSpanContextErrors(t *testing.T) {
	if _, err := DecodeSpanContext([]byte{1, 2}); err == nil {
		t.Fatal("accepted short buffer")
	}
	sc := SpanContext{Trace: "job-1", Parent: 42}
	b := sc.Encode()
	b[0] = 99
	if _, err := DecodeSpanContext(b); err == nil {
		t.Fatal("accepted unknown version")
	}
	b[0] = 1
	if _, err := DecodeSpanContext(b[:len(b)-1]); err == nil {
		t.Fatal("accepted truncated trace ID")
	}
	if (SpanContext{}).Encode() != nil {
		t.Fatal("invalid context encoded to bytes")
	}
}
