// Package trace is a dependency-free distributed tracing layer for the
// EclipseMR runtime. A trace is one job: the trace ID is the job ID, and
// every stage of the job's execution — driver dispatch, map read and
// compute, proactive shuffle, reduce, DHT file-system block IO, cache
// probes, scheduler queue wait — records a span naming the node it ran
// on, its start time and duration, and key/value annotations (cache
// hit/miss, retry attempt, chaos delay).
//
// Spans cross node boundaries through the transport envelope: the caller
// side serializes a SpanContext (trace ID + parent span ID) into the RPC
// frame, and the handler side starts its spans as children of that
// remote parent, so the collected spans from every node merge into one
// tree.
//
// The design goals, in order:
//
//   - Cheap when disabled: starting a span costs one atomic load and
//     returns a nil *Span whose methods are all no-ops.
//   - Deterministic under simulation: the clock is injectable
//     (metrics.Clock) and span IDs derive from a seeded per-node counter,
//     so a single-threaded simulated run produces byte-identical traces.
//   - Bounded: finished spans land in a fixed-size lock-free ring buffer;
//     a long-running node never grows its trace memory.
package trace

import (
	"fmt"
	"hash/fnv"
	"sync"
	"sync/atomic"

	"eclipsemr/internal/metrics"
)

// SpanID identifies one span within a trace. IDs are unique per node
// (counter in the low bits) and effectively unique across nodes (node
// hash in the high bits).
type SpanID uint64

// Annotation is one key/value tag on a span, e.g. {"cache", "miss"}.
type Annotation struct {
	Key, Value string
}

// Event is one timestamped point annotation within a span, e.g. a retry
// attempt.
type Event struct {
	AtNS int64 // absolute, same clock as Span.StartNS
	Msg  string
}

// Span is one timed operation. All exported fields are set by End and
// are gob- and json-serializable for collection RPCs.
type Span struct {
	Trace       string // trace ID = job ID
	ID          SpanID
	Parent      SpanID // 0 for a root span
	Name        string // operation, e.g. "map.compute"
	Node        string // node the span ran on
	StartNS     int64  // ns since the clock's epoch
	DurNS       int64
	Annotations []Annotation
	Events      []Event

	tr *Tracer
	// mu is a pointer so finished spans copy as plain data (snapshots,
	// collection RPCs); only live spans hold a mutex.
	mu    *sync.Mutex
	ended bool
}

// Annotate tags the span. Safe on a nil span and concurrently.
func (s *Span) Annotate(key, value string) {
	if s == nil {
		return
	}
	s.mu.Lock()
	if !s.ended {
		s.Annotations = append(s.Annotations, Annotation{Key: key, Value: value})
	}
	s.mu.Unlock()
}

// Eventf records a timestamped event on the span. Safe on a nil span.
func (s *Span) Eventf(format string, args ...interface{}) {
	if s == nil {
		return
	}
	at := s.tr.nowNS()
	s.mu.Lock()
	if !s.ended {
		s.Events = append(s.Events, Event{AtNS: at, Msg: fmt.Sprintf(format, args...)})
	}
	s.mu.Unlock()
}

// End finishes the span, computing its duration and publishing it to the
// tracer's ring buffer. Only the first End takes effect. Safe on nil.
func (s *Span) End() {
	if s == nil {
		return
	}
	end := s.tr.nowNS()
	s.mu.Lock()
	if s.ended {
		s.mu.Unlock()
		return
	}
	s.ended = true
	s.DurNS = end - s.StartNS
	if s.DurNS < 0 {
		s.DurNS = 0
	}
	s.mu.Unlock()
	s.tr.ring.put(s)
}

// snapshot returns a detached copy safe to serialize.
func (s *Span) snapshot() Span {
	s.mu.Lock()
	defer s.mu.Unlock()
	cp := Span{
		Trace: s.Trace, ID: s.ID, Parent: s.Parent, Name: s.Name, Node: s.Node,
		StartNS: s.StartNS, DurNS: s.DurNS,
		Annotations: append([]Annotation(nil), s.Annotations...),
		Events:      append([]Event(nil), s.Events...),
	}
	return cp
}

// Options configure a Tracer.
type Options struct {
	// Clock supplies timestamps; nil selects the wall clock. Simulations
	// inject their virtual clock for deterministic traces.
	Clock metrics.Clock
	// Seed perturbs span-ID generation (mixed with the node name). The
	// zero seed is fine: IDs are already node-unique.
	Seed uint64
	// Capacity bounds the finished-span ring buffer; 0 selects 4096.
	// Oldest spans are overwritten when full.
	Capacity int
	// SampleEvery keeps one of every N traces (decided per trace ID at
	// the root, so a trace is all-or-nothing). 0 or 1 keeps every trace.
	SampleEvery int
}

// DefaultCapacity is the ring size when Options.Capacity is zero.
const DefaultCapacity = 4096

// Tracer creates spans for one node and retains finished spans in a
// bounded lock-free ring buffer until collected.
type Tracer struct {
	node        string
	clock       metrics.Clock
	idBase      uint64 // node/seed hash in the high 32 bits
	sampleEvery uint64

	enabled atomic.Bool
	ctr     atomic.Uint64
	ring    ring
}

// New returns a tracer for the named node. Tracing starts disabled;
// call SetEnabled(true) to record spans.
func New(node string, o Options) *Tracer {
	capacity := o.Capacity
	if capacity <= 0 {
		capacity = DefaultCapacity
	}
	clock := o.Clock
	if clock == nil {
		clock = metrics.WallClock()
	}
	h := fnv.New32a()
	h.Write([]byte(node))
	base := uint64(h.Sum32()) ^ (o.Seed ^ o.Seed>>32&0xffffffff)
	t := &Tracer{
		node:        node,
		clock:       clock,
		idBase:      (base & 0xffffffff) << 32,
		sampleEvery: uint64(o.SampleEvery),
		ring:        newRing(capacity),
	}
	return t
}

// Node returns the node name spans are stamped with.
func (t *Tracer) Node() string { return t.node }

// Enabled reports whether spans are being recorded.
func (t *Tracer) Enabled() bool { return t != nil && t.enabled.Load() }

// SetEnabled turns recording on or off. Spans already started keep
// recording; new Start calls observe the flag immediately.
func (t *Tracer) SetEnabled(on bool) {
	if t != nil {
		t.enabled.Store(on)
	}
}

// SetClock replaces the tracer's time source (nil restores wall time).
func (t *Tracer) SetClock(c metrics.Clock) {
	if c == nil {
		c = metrics.WallClock()
	}
	t.clock = c
}

func (t *Tracer) nowNS() int64 {
	if t == nil {
		return 0
	}
	return t.clock.Now().UnixNano()
}

// NowNS returns the tracer clock's current time in UnixNano (0 on a nil
// tracer), for callers reconstructing start times with StartSpanAt.
func (t *Tracer) NowNS() int64 { return t.nowNS() }

// nextID returns a fresh span ID: node hash high bits, counter low bits.
func (t *Tracer) nextID() SpanID {
	return SpanID(t.idBase | (t.ctr.Add(1) & 0xffffffff))
}

// sampled decides, from the trace ID alone, whether this trace is kept.
// Every node makes the same decision for the same ID.
func (t *Tracer) sampled(traceID string) bool {
	if t.sampleEvery <= 1 {
		return true
	}
	h := fnv.New64a()
	h.Write([]byte(traceID))
	return h.Sum64()%t.sampleEvery == 0
}

// start builds and registers a span. Callers have already checked
// Enabled.
func (t *Tracer) start(traceID string, parent SpanID, name string) *Span {
	return &Span{
		Trace:   traceID,
		mu:      new(sync.Mutex),
		ID:      t.nextID(),
		Parent:  parent,
		Name:    name,
		Node:    t.node,
		StartNS: t.nowNS(),
		tr:      t,
	}
}

// Spans returns detached copies of the retained finished spans for one
// trace (all traces if traceID is empty), oldest first.
func (t *Tracer) Spans(traceID string) []Span {
	if t == nil {
		return nil
	}
	var out []Span
	for _, s := range t.ring.snapshot() {
		if traceID == "" || s.Trace == traceID {
			out = append(out, s.snapshot())
		}
	}
	return out
}

// Dropped returns how many finished spans have been overwritten before
// collection.
func (t *Tracer) Dropped() int64 { return t.ring.dropped() }

// ring is a bounded lock-free buffer of finished spans. Writers claim a
// slot with one atomic increment and store the span pointer; when the
// buffer wraps, the oldest span is overwritten.
type ring struct {
	slots []atomic.Pointer[Span]
	next  atomic.Uint64
}

func newRing(capacity int) ring {
	return ring{slots: make([]atomic.Pointer[Span], capacity)}
}

func (r *ring) put(s *Span) {
	i := r.next.Add(1) - 1
	r.slots[i%uint64(len(r.slots))].Store(s)
}

// snapshot returns the retained spans oldest-first. Concurrent puts may
// race individual slots; each slot read is atomic, so every returned
// span is complete.
func (r *ring) snapshot() []*Span {
	n := r.next.Load()
	size := uint64(len(r.slots))
	start := uint64(0)
	if n > size {
		start = n - size
	}
	out := make([]*Span, 0, n-start)
	for i := start; i < n; i++ {
		if s := r.slots[i%size].Load(); s != nil {
			out = append(out, s)
		}
	}
	return out
}

func (r *ring) dropped() int64 {
	n := r.next.Load()
	if size := uint64(len(r.slots)); n > size {
		return int64(n - size)
	}
	return 0
}
