package trace

import (
	"context"
	"encoding/binary"
	"fmt"
)

// SpanContext is the portable part of a span that crosses node
// boundaries inside the transport envelope: which trace the call belongs
// to and which span is the caller-side parent.
type SpanContext struct {
	Trace  string
	Parent SpanID
}

// Valid reports whether the context identifies a trace.
func (sc SpanContext) Valid() bool { return sc.Trace != "" }

type ctxKey int

const (
	activeKey ctxKey = iota // *Span started locally
	remoteKey               // SpanContext received from a remote caller
)

// withActive returns ctx carrying sp as the active span.
func withActive(ctx context.Context, sp *Span) context.Context {
	return context.WithValue(ctx, activeKey, sp)
}

// Active returns the span started locally in this context, or nil.
func Active(ctx context.Context) *Span {
	sp, _ := ctx.Value(activeKey).(*Span)
	return sp
}

// WithRemote returns ctx carrying a SpanContext received over the wire.
// Transports call this on the handler side so handler spans become
// children of the remote caller's span.
func WithRemote(ctx context.Context, sc SpanContext) context.Context {
	if !sc.Valid() {
		return ctx
	}
	return context.WithValue(ctx, remoteKey, sc)
}

// Remote returns the SpanContext installed by WithRemote, if any.
func Remote(ctx context.Context) (SpanContext, bool) {
	sc, ok := ctx.Value(remoteKey).(SpanContext)
	return sc, ok
}

// Outbound returns the SpanContext to serialize into an outgoing RPC:
// the active local span if one exists, else any remote parent being
// forwarded, else the zero SpanContext (no tracing header emitted).
func Outbound(ctx context.Context) SpanContext {
	if sp := Active(ctx); sp != nil {
		return SpanContext{Trace: sp.Trace, Parent: sp.ID}
	}
	if sc, ok := Remote(ctx); ok {
		return sc
	}
	return SpanContext{}
}

// Annotate tags the active span in ctx (no-op without one).
func Annotate(ctx context.Context, key, value string) {
	Active(ctx).Annotate(key, value)
}

// Eventf records a timestamped event on the active span in ctx (no-op
// without one).
func Eventf(ctx context.Context, format string, args ...interface{}) {
	Active(ctx).Eventf(format, args...)
}

// StartRoot begins a new trace rooted at this tracer (trace ID = job
// ID) and returns a context carrying the root span. With tracing
// disabled, or when the trace is sampled out, it returns (ctx, nil);
// nil spans are safe everywhere.
func (t *Tracer) StartRoot(ctx context.Context, traceID, name string) (context.Context, *Span) {
	if t == nil || !t.enabled.Load() || !t.sampled(traceID) {
		return ctx, nil
	}
	sp := t.start(traceID, 0, name)
	return withActive(ctx, sp), sp
}

// StartSpan begins a child of the context's active span — or of the
// remote parent installed by the transport. Outside any trace it
// returns (ctx, nil).
func (t *Tracer) StartSpan(ctx context.Context, name string) (context.Context, *Span) {
	if t == nil || !t.enabled.Load() {
		return ctx, nil
	}
	var sp *Span
	if parent := Active(ctx); parent != nil {
		sp = t.start(parent.Trace, parent.ID, name)
	} else if sc, ok := Remote(ctx); ok && sc.Valid() {
		sp = t.start(sc.Trace, sc.Parent, name)
	} else {
		return ctx, nil
	}
	return withActive(ctx, sp), sp
}

// StartSpanAt is StartSpan with an explicit start time (UnixNano on the
// tracer's clock), for spans reconstructed after the fact — e.g. a
// scheduler queue wait whose beginning is only known once the task is
// dispatched. End still computes the duration against the clock's now.
func (t *Tracer) StartSpanAt(ctx context.Context, name string, startNS int64) (context.Context, *Span) {
	c, sp := t.StartSpan(ctx, name)
	if sp != nil {
		sp.StartNS = startNS
	}
	return c, sp
}

// scVersion tags the wire encoding of a SpanContext. The transport
// frames themselves are versioned separately; this byte lets the header
// payload evolve without another frame bump.
const scVersion = 1

// Encode serializes the SpanContext for the transport envelope:
//
//	[1] version  [8] parent span ID (big endian)  [2] len  [n] trace ID
//
// An invalid context encodes to nil (no header on the wire).
func (sc SpanContext) Encode() []byte {
	if !sc.Valid() || len(sc.Trace) > 0xffff {
		return nil
	}
	b := make([]byte, 0, 11+len(sc.Trace))
	b = append(b, scVersion)
	b = binary.BigEndian.AppendUint64(b, uint64(sc.Parent))
	b = binary.BigEndian.AppendUint16(b, uint16(len(sc.Trace)))
	b = append(b, sc.Trace...)
	return b
}

// DecodeSpanContext parses an Encode result. Unknown versions and short
// buffers fail; transports treat a failed decode as "no trace header"
// after surfacing the error to their metrics.
func DecodeSpanContext(b []byte) (SpanContext, error) {
	if len(b) < 11 {
		return SpanContext{}, fmt.Errorf("trace: span context too short (%d bytes)", len(b))
	}
	if b[0] != scVersion {
		return SpanContext{}, fmt.Errorf("trace: unknown span context version %d", b[0])
	}
	parent := binary.BigEndian.Uint64(b[1:9])
	n := int(binary.BigEndian.Uint16(b[9:11]))
	if len(b) != 11+n {
		return SpanContext{}, fmt.Errorf("trace: span context length mismatch: have %d want %d", len(b), 11+n)
	}
	return SpanContext{Trace: string(b[11:]), Parent: SpanID(parent)}, nil
}
