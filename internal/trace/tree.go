package trace

import (
	"fmt"
	"sort"
	"strings"
)

// TreeNode is one span with its children, as assembled by BuildTree.
type TreeNode struct {
	Span     Span
	Children []*TreeNode
}

// Dedupe removes duplicate span IDs (a span can be collected twice when
// a node is queried through different paths) and sorts the result by
// (start, ID) — the canonical collection order.
func Dedupe(spans []Span) []Span {
	seen := make(map[SpanID]bool, len(spans))
	out := make([]Span, 0, len(spans))
	for _, s := range spans {
		if s.ID == 0 || seen[s.ID] {
			continue
		}
		seen[s.ID] = true
		out = append(out, s)
	}
	sortSpans(out)
	return out
}

// sortSpans orders spans deterministically: start time, then ID, then
// node and name (IDs are unique, so the tail keys only guard against
// malformed input).
func sortSpans(spans []Span) {
	sort.Slice(spans, func(i, j int) bool {
		a, b := spans[i], spans[j]
		if a.StartNS != b.StartNS {
			return a.StartNS < b.StartNS
		}
		if a.ID != b.ID {
			return a.ID < b.ID
		}
		if a.Node != b.Node {
			return a.Node < b.Node
		}
		return a.Name < b.Name
	})
}

// BuildTree links spans into parent/child trees. Spans whose parent was
// not collected (ring overwrote it, node unreachable) are promoted to
// roots so no data is silently dropped. Roots and children are in
// deterministic (start, ID) order.
func BuildTree(spans []Span) []*TreeNode {
	spans = Dedupe(spans)
	nodes := make(map[SpanID]*TreeNode, len(spans))
	for _, s := range spans {
		nodes[s.ID] = &TreeNode{Span: s}
	}
	var roots []*TreeNode
	for _, s := range spans { // spans is sorted, so children append in order
		n := nodes[s.ID]
		if p, ok := nodes[s.Parent]; ok && s.Parent != s.ID {
			p.Children = append(p.Children, n)
		} else {
			roots = append(roots, n)
		}
	}
	return roots
}

// RenderTimeline renders the span tree as an indented text timeline with
// offsets relative to the earliest span. Suitable for terminals; for
// interactive exploration use ChromeTrace and Perfetto.
func RenderTimeline(spans []Span) string {
	spans = Dedupe(spans)
	if len(spans) == 0 {
		return "no spans\n"
	}
	epoch := spans[0].StartNS
	nodes := map[string]bool{}
	traces := map[string]bool{}
	for _, s := range spans {
		nodes[s.Node] = true
		traces[s.Trace] = true
	}
	ids := make([]string, 0, len(traces))
	for id := range traces {
		ids = append(ids, id)
	}
	sort.Strings(ids)

	var b strings.Builder
	fmt.Fprintf(&b, "trace %s: %d spans over %d nodes\n",
		strings.Join(ids, ","), len(spans), len(nodes))
	var walk func(n *TreeNode, depth int)
	walk = func(n *TreeNode, depth int) {
		s := n.Span
		line := fmt.Sprintf("%s%s", strings.Repeat("  ", depth), s.Name)
		fmt.Fprintf(&b, "%-44s %10.3fms %10.3fms  %s%s\n",
			line, float64(s.StartNS-epoch)/1e6, float64(s.DurNS)/1e6,
			s.Node, annotationSuffix(s))
		for _, e := range s.Events {
			fmt.Fprintf(&b, "%s· %10.3fms %s\n",
				strings.Repeat("  ", depth+1), float64(e.AtNS-epoch)/1e6, e.Msg)
		}
		for _, c := range n.Children {
			walk(c, depth+1)
		}
	}
	for _, r := range BuildTree(spans) {
		walk(r, 0)
	}
	return b.String()
}

func annotationSuffix(s Span) string {
	if len(s.Annotations) == 0 {
		return ""
	}
	parts := make([]string, 0, len(s.Annotations))
	for _, a := range s.Annotations {
		parts = append(parts, a.Key+"="+a.Value)
	}
	return "  [" + strings.Join(parts, " ") + "]"
}
