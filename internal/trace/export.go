package trace

import (
	"encoding/json"
	"fmt"
	"sort"
)

// ChromeEvent is one entry of the Chrome trace-event format ("X"
// complete slices, "i" instants, "M" metadata), the JSON schema Perfetto
// and chrome://tracing load. Field order is fixed by the struct, and
// Args is a map (json.Marshal sorts map keys), so marshaling the same
// spans always yields the same bytes.
type ChromeEvent struct {
	Name string            `json:"name"`
	Ph   string            `json:"ph"`
	TS   int64             `json:"ts"` // microseconds
	Dur  int64             `json:"dur,omitempty"`
	PID  int               `json:"pid"`
	TID  int               `json:"tid"`
	S    string            `json:"s,omitempty"` // instant scope
	Args map[string]string `json:"args,omitempty"`
}

// ChromeFile is the top-level JSON object of an exported trace.
type ChromeFile struct {
	TraceEvents     []ChromeEvent `json:"traceEvents"`
	DisplayTimeUnit string        `json:"displayTimeUnit"`
}

// ChromeTrace exports spans as Chrome trace-event JSON: one process per
// node (named by a metadata event), slices laid out on per-node lanes so
// overlapping spans render side by side, and span events as thread-scoped
// instants. Output is deterministic for a given span set.
func ChromeTrace(spans []Span) ([]byte, error) {
	spans = Dedupe(spans)
	nodes := make([]string, 0, 8)
	seen := map[string]bool{}
	for _, s := range spans {
		if !seen[s.Node] {
			seen[s.Node] = true
			nodes = append(nodes, s.Node)
		}
	}
	sort.Strings(nodes)
	have := make(map[SpanID]bool, len(spans))
	for _, s := range spans {
		have[s.ID] = true
	}
	pid := make(map[string]int, len(nodes))
	events := make([]ChromeEvent, 0, len(spans)*2+len(nodes))
	for i, n := range nodes {
		pid[n] = i + 1
		events = append(events, ChromeEvent{
			Name: "process_name", Ph: "M", PID: i + 1,
			Args: map[string]string{"name": n},
		})
	}

	// Greedy per-node lane assignment: spans are in start order, so each
	// span takes the first lane free at its start time. Deterministic
	// because both the span order and lane scan are.
	type lane struct{ endNS int64 }
	lanes := map[string][]lane{}
	body := make([]ChromeEvent, 0, len(spans)*2)
	for _, s := range spans {
		ls := lanes[s.Node]
		tid := -1
		for i := range ls {
			if ls[i].endNS <= s.StartNS {
				tid = i
				ls[i].endNS = s.StartNS + s.DurNS
				break
			}
		}
		if tid < 0 {
			tid = len(ls)
			ls = append(ls, lane{endNS: s.StartNS + s.DurNS})
		}
		lanes[s.Node] = ls

		parent := s.Parent
		if !have[parent] {
			parent = 0 // uncollected parent: render as a root slice
		}
		args := make(map[string]string, len(s.Annotations)+3)
		for _, a := range s.Annotations {
			args[a.Key] = a.Value
		}
		// Reserved keys win over any colliding annotation.
		args["span"] = fmt.Sprintf("%016x", uint64(s.ID))
		args["parent"] = fmt.Sprintf("%016x", uint64(parent))
		args["trace"] = s.Trace
		body = append(body, ChromeEvent{
			Name: s.Name, Ph: "X",
			TS: s.StartNS / 1000, Dur: s.DurNS / 1000,
			PID: pid[s.Node], TID: tid + 1, Args: args,
		})
		for _, e := range s.Events {
			body = append(body, ChromeEvent{
				Name: e.Msg, Ph: "i", TS: e.AtNS / 1000,
				PID: pid[s.Node], TID: tid + 1, S: "t",
			})
		}
	}
	// The file promises monotone timestamps; instants recorded inside a
	// span start after it, so a stable sort by ts (span order already
	// deterministic) suffices.
	sort.SliceStable(body, func(i, j int) bool { return body[i].TS < body[j].TS })
	events = append(events, body...)
	return json.MarshalIndent(ChromeFile{TraceEvents: events, DisplayTimeUnit: "ms"}, "", " ")
}

// ValidateChrome checks an exported trace against the Chrome trace-event
// schema as the CI smoke test understands it: parseable JSON, known
// phase codes, non-negative times, monotone timestamps in file order,
// and every referenced parent present and started before its child.
func ValidateChrome(data []byte) error {
	var f ChromeFile
	if err := json.Unmarshal(data, &f); err != nil {
		return fmt.Errorf("trace: not valid JSON: %w", err)
	}
	if len(f.TraceEvents) == 0 {
		return fmt.Errorf("trace: no events")
	}
	starts := map[string]int64{} // span ID hex -> ts
	lastTS := int64(-1)
	for i, e := range f.TraceEvents {
		switch e.Ph {
		case "M":
			continue
		case "X", "i":
		default:
			return fmt.Errorf("trace: event %d: unknown phase %q", i, e.Ph)
		}
		if e.Name == "" {
			return fmt.Errorf("trace: event %d: empty name", i)
		}
		if e.TS < 0 || e.Dur < 0 {
			return fmt.Errorf("trace: event %d (%s): negative time", i, e.Name)
		}
		if e.TS < lastTS {
			return fmt.Errorf("trace: event %d (%s): timestamp %d before predecessor %d",
				i, e.Name, e.TS, lastTS)
		}
		lastTS = e.TS
		if e.Ph == "X" {
			if id := e.Args["span"]; id != "" {
				starts[id] = e.TS
			}
		}
	}
	const zeroID = "0000000000000000"
	for i, e := range f.TraceEvents {
		if e.Ph != "X" {
			continue
		}
		p := e.Args["parent"]
		if p == "" || p == zeroID {
			continue
		}
		pts, ok := starts[p]
		if !ok {
			return fmt.Errorf("trace: event %d (%s): parent %s not in file", i, e.Name, p)
		}
		if pts > e.TS {
			return fmt.Errorf("trace: event %d (%s): starts at %d before parent %s at %d",
				i, e.Name, e.TS, p, pts)
		}
	}
	return nil
}
