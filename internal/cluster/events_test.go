package cluster

import (
	"os"
	"path/filepath"
	"sort"
	"strings"
	"testing"

	"eclipsemr/internal/bundle"
	"eclipsemr/internal/dhtfs"
	"eclipsemr/internal/events"
	"eclipsemr/internal/mapreduce"
)

// eventNames indexes a merged timeline by event name.
func eventNames(evs []events.Event) map[string]int {
	names := map[string]int{}
	for _, e := range evs {
		names[e.Name]++
	}
	return names
}

// TestClusterEventsEndToEnd is the real-engine acceptance path for the
// event layer: a WordCount on a live cluster must leave a merged
// timeline that covers the whole job lifecycle — submit, both phases,
// every task dispatch and finish, shuffle pushes, and the terminal
// job.done — already in canonical order, with nothing overwritten.
func TestClusterEventsEndToEnd(t *testing.T) {
	c := newTestCluster(t, 4, Options{})
	text := strings.Repeat("pack my box with five dozen liquor jugs\n", 400)
	if _, err := c.UploadRecords("ev.txt", "u", dhtfs.PermPublic, []byte(text), '\n'); err != nil {
		t.Fatal(err)
	}
	spec := mapreduce.JobSpec{
		ID: "ev-wc", App: "cluster-wordcount", Inputs: []string{"ev.txt"}, User: "u",
	}
	if _, err := c.Run(spec); err != nil {
		t.Fatal(err)
	}

	evs, dropped, err := c.Events("ev-wc")
	if err != nil {
		t.Fatal(err)
	}
	if len(evs) == 0 {
		t.Fatal("job produced no events")
	}
	if dropped != 0 {
		t.Fatalf("event rings dropped %d events on a small job", dropped)
	}
	names := eventNames(evs)
	for _, want := range []string{
		"job.submit", "job.phase.map", "sched.admit", "map.dispatch", "map.finish",
		"shuffle.batch", "job.phase.reduce", "reduce.dispatch", "reduce.finish", "job.done",
	} {
		if names[want] == 0 {
			t.Errorf("no %q event (have %v)", want, names)
		}
	}
	// One dispatch and one finish per map task, one admit per task.
	if names["map.dispatch"] < names["map.finish"] {
		t.Errorf("map.dispatch=%d < map.finish=%d", names["map.dispatch"], names["map.finish"])
	}

	// The merged timeline must already be in canonical order…
	if !sort.SliceIsSorted(evs, func(i, j int) bool {
		a, b := evs[i], evs[j]
		if a.AtNS != b.AtNS {
			return a.AtNS < b.AtNS
		}
		if a.Node != b.Node {
			return a.Node < b.Node
		}
		return a.ID < b.ID
	}) {
		t.Error("merged timeline is not in (AtNS, Node, ID) order")
	}
	// …start with the submit and end with the terminal event.
	if evs[0].Name != "job.submit" {
		t.Errorf("first event = %q, want job.submit", evs[0].Name)
	}
	if last := evs[len(evs)-1]; last.Name != "job.done" {
		t.Errorf("last event = %q, want job.done", last.Name)
	}
	if out := events.Render(evs); !strings.Contains(out, "job.done") {
		t.Errorf("Render lost the terminal event:\n%s", out)
	}
}

// TestClusterEventsSurviveNodeFailure pins replica tolerance and the
// membership event trail: killing a worker must surface member.evict in
// the cluster-wide timeline, and collection must keep working with the
// dead node simply missing.
func TestClusterEventsSurviveNodeFailure(t *testing.T) {
	c := newTestCluster(t, 4, Options{})
	text := strings.Repeat("to be or not to be\n", 200)
	if _, err := c.UploadRecords("evf.txt", "u", dhtfs.PermPublic, []byte(text), '\n'); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Run(mapreduce.JobSpec{
		ID: "evf-wc", App: "cluster-wordcount", Inputs: []string{"evf.txt"}, User: "u",
	}); err != nil {
		t.Fatal(err)
	}
	if err := c.FailNow("worker-00"); err != nil {
		t.Fatal(err)
	}

	evs, _, err := c.Events("")
	if err != nil {
		t.Fatal(err)
	}
	names := eventNames(evs)
	if names["member.evict"] == 0 {
		t.Errorf("no member.evict event after FailNow (have %v)", names)
	}
	foundEvict := false
	for _, e := range evs {
		if e.Name == "member.evict" && e.Detail == "worker-00" {
			foundEvict = true
		}
		if e.Node == "worker-00" {
			t.Errorf("collected event from the dead node: %+v", e)
		}
	}
	if !foundEvict {
		t.Error("member.evict does not name worker-00")
	}

	// A bundle captured mid-incident must validate and reflect the new view.
	data, err := c.DebugBundle("", "test_capture")
	if err != nil {
		t.Fatal(err)
	}
	b, err := bundle.Decode(data)
	if err != nil {
		t.Fatal(err)
	}
	if err := bundle.Validate(data); err != nil {
		t.Fatalf("bundle invalid: %v", err)
	}
	for _, m := range b.Membership.Members {
		if m == "worker-00" {
			t.Error("bundle membership still lists the evicted node")
		}
	}
	if len(b.Events) == 0 || len(b.Metrics) == 0 {
		t.Fatalf("bundle missing sections: %d events, %d metric nodes", len(b.Events), len(b.Metrics))
	}
}

// TestFlightRecorderCapturesJobFailure pins the failure-triggered path:
// with BundleDir armed, a job that fails must leave a validating
// bundle-<job>-job_failed.json behind without any operator action.
func TestFlightRecorderCapturesJobFailure(t *testing.T) {
	dir := t.TempDir()
	c := newTestCluster(t, 3, Options{BundleDir: dir})
	if _, err := c.Run(mapreduce.JobSpec{
		ID: "fr-bad", App: "cluster-wordcount", Inputs: []string{"missing.txt"}, User: "u",
	}); err == nil {
		t.Fatal("job over a nonexistent input unexpectedly succeeded")
	}

	path := filepath.Join(dir, "bundle-fr-bad-job_failed.json")
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("flight recorder left no bundle: %v", err)
	}
	if err := bundle.Validate(data); err != nil {
		t.Fatalf("captured bundle invalid: %v", err)
	}
	b, err := bundle.Decode(data)
	if err != nil {
		t.Fatal(err)
	}
	if b.Reason != "job_failed" {
		t.Errorf("bundle reason = %q, want job_failed", b.Reason)
	}
	if b.Job != "fr-bad" {
		t.Errorf("bundle job = %q, want fr-bad", b.Job)
	}
	names := eventNames(b.Events)
	if names["job.failed"] == 0 {
		t.Errorf("captured bundle has no job.failed event (have %v)", names)
	}
}
