package cluster

import (
	"bytes"
	"context"
	"fmt"
	"strconv"
	"strings"
	"testing"
	"time"

	"eclipsemr/internal/dhtfs"
	"eclipsemr/internal/hashing"
	"eclipsemr/internal/mapreduce"
	"eclipsemr/internal/transport"
)

func init() {
	// A paced WordCount so cancellation and straggler tests have a job that
	// cannot race to completion before the fault fires.
	mapreduce.Register("cluster-slow-wordcount", mapreduce.App{
		Map: func(_ mapreduce.Params, input []byte, emit mapreduce.Emit) error {
			time.Sleep(2 * time.Millisecond)
			for _, w := range strings.Fields(string(input)) {
				if err := emit(w, []byte("1")); err != nil {
					return err
				}
			}
			return nil
		},
		Reduce: func(_ mapreduce.Params, key string, values [][]byte, emit mapreduce.Emit) error {
			total := 0
			for _, v := range values {
				n, _ := strconv.Atoi(string(v))
				total += n
			}
			return emit(key, []byte(strconv.Itoa(total)))
		},
	})
}

// recoveryText builds a corpus with many distinct words so every reduce
// partition of a small ring is non-empty — a crashed owner then always
// takes real intermediate data with it.
func recoveryText(distinct, repeat int) (string, map[string]int) {
	var b strings.Builder
	want := make(map[string]int, distinct)
	for r := 0; r < repeat; r++ {
		for i := 0; i < distinct; i++ {
			fmt.Fprintf(&b, "term%03d ", i)
			want[fmt.Sprintf("term%03d", i)]++
		}
		b.WriteByte('\n')
	}
	return b.String(), want
}

// nonManagerNode picks a live worker that is not the resource manager.
func nonManagerNode(t *testing.T, c *Cluster) hashing.NodeID {
	t.Helper()
	mgrID := c.Manager().ID
	for _, id := range c.Nodes() {
		if id != mgrID {
			return id
		}
	}
	t.Fatal("no non-manager node")
	return ""
}

// TestLostPartitionRecoveryEndToEnd is the acceptance chaos test: a
// 4-node WordCount under seeded message drops, with the owner of an
// unreplicated reduce partition crash-stopped after the shuffle. The job
// must complete with output byte-identical to a fault-free run — without
// restarting from scratch and without re-reducing partitions that
// survived, both pinned via the driver's counters.
func TestLostPartitionRecoveryEndToEnd(t *testing.T) {
	text, _ := recoveryText(300, 40)
	spec := mapreduce.JobSpec{
		ID: "heal-e2e", App: "cluster-wordcount", Inputs: []string{"chaos.txt"},
		User: "u", MaxAttempts: 5,
		// No ReplicateIntermediates: the crash genuinely loses the victim's
		// partition spills, forcing the recovery path rather than failover.
	}

	// Fault-free baseline for the byte-identity check.
	base := newTestCluster(t, 4, Options{})
	want := runWordCount(t, base, spec, text)

	chaos := transport.NewChaos(transport.NewLocal(), transport.ChaosConfig{
		Seed:    20260806,
		Latency: 50 * time.Microsecond,
		Jitter:  100 * time.Microsecond,
	})
	c := newTestCluster(t, 4, Options{
		Network: chaos,
		Retry:   transport.RetryPolicy{MaxAttempts: 5, BaseDelay: 200 * time.Microsecond},
	})
	if _, err := c.UploadRecords("chaos.txt", "u", dhtfs.PermPublic, []byte(text), '\n'); err != nil {
		t.Fatal(err)
	}
	chaos.SetDrop(0.05) // upload ran fault-free; the job does not

	if err := c.rebindDriver(); err != nil {
		t.Fatal(err)
	}
	victim := nonManagerNode(t, c)
	failed := make(chan error, 1)
	c.driver.SetEventListener(func(job, event string) {
		// Crash the victim exactly between the phases: every map has pushed
		// its spills, no reduce has run, and the victim's partitions have no
		// surviving copy.
		if job == spec.ID && event == "map_done" {
			select {
			case failed <- c.FailNow(victim):
			default:
			}
		}
	})

	res, err := c.Run(spec)
	if err != nil {
		t.Fatalf("job did not self-heal after losing %s: %v", victim, err)
	}
	select {
	case ferr := <-failed:
		if ferr != nil {
			t.Fatal(ferr)
		}
	default:
		t.Fatal("map_done event never fired; the crash was not injected")
	}
	if res.RecoveredPartitions < 1 {
		t.Fatalf("RecoveredPartitions = %d, want >= 1 (victim %s owned no non-empty partition?)",
			res.RecoveredPartitions, victim)
	}

	kvs, err := c.Collect(res, "u")
	if err != nil {
		t.Fatal(err)
	}
	if got := mapreduce.EncodeKVs(kvs); !bytes.Equal(got, want) {
		t.Fatalf("recovered output diverged from fault-free run: %d vs %d bytes", len(got), len(want))
	}

	snap := c.MetricsSnapshot()
	if got := snap.Get("mr.driver.partition_recoveries"); got < 1 {
		t.Errorf("partition_recoveries = %d, want >= 1", got)
	}
	// Exactly one successful reduce per partition: the recovery round
	// re-reduced only the lost partitions, never the completed ones.
	if got := snap.Get("mr.driver.partition_reduces"); got != int64(res.ReduceTasks) {
		t.Errorf("partition_reduces = %d with %d reduce tasks: completed partitions were re-reduced",
			got, res.ReduceTasks)
	}
	if snap.Get("chaos.drops") == 0 {
		t.Error("chaos.drops = 0: the schedule injected no message loss")
	}
	t.Logf("recovered %d partition(s) after crashing %s: recoveries=%d reduces=%d/%d drops=%d",
		res.RecoveredPartitions, victim, snap.Get("mr.driver.partition_recoveries"),
		snap.Get("mr.driver.partition_reduces"), res.ReduceTasks, snap.Get("chaos.drops"))
}

// TestManagerFailoverAdoptsJournaledJob is the acceptance resume test:
// the manager dies mid-job, a new manager is elected, adopts the job from
// its durable journal and finishes it — re-executing only the work the
// journal does not record as done.
func TestManagerFailoverAdoptsJournaledJob(t *testing.T) {
	c := newTestCluster(t, 5, Options{Config: Config{
		HeartbeatInterval: 20 * time.Millisecond,
		HeartbeatTimeout:  60 * time.Millisecond,
	}})
	text, want := recoveryText(200, 30)
	meta, err := c.UploadRecords("journal.txt", "u", dhtfs.PermPublic, []byte(text), '\n')
	if err != nil {
		t.Fatal(err)
	}
	totalMaps := meta.Blocks()
	if totalMaps < 10 {
		t.Fatalf("corpus too small: %d blocks", totalMaps)
	}

	spec := mapreduce.JobSpec{
		ID: "journal-e2e", App: "cluster-slow-wordcount", Inputs: []string{"journal.txt"},
		User: "u", MaxAttempts: 5,
	}
	if err := c.rebindDriver(); err != nil {
		t.Fatal(err)
	}
	// "Kill" the driver a few completions into the map phase. Cancelling
	// RunContext models the manager process dying mid-job: dispatching
	// stops, and only the journal survives (we then really kill the node).
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	done := 0
	c.driver.SetEventListener(func(job, event string) {
		if job == spec.ID && event == "map_task_done" {
			if done++; done == 5 {
				cancel()
			}
		}
	})
	if _, err := c.RunContext(ctx, spec); err == nil {
		t.Fatal("interrupted run reported success")
	}
	c.driver.SetEventListener(nil)

	oldMgr := c.Manager().ID
	c.Kill(oldMgr)
	// Heartbeats detect the death; the bully election converges on the
	// next-highest ID.
	deadline := time.Now().Add(10 * time.Second)
	for {
		if mgr := c.Manager(); mgr != nil && mgr.ID != oldMgr && !mgr.View().Has(oldMgr) {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("no new manager elected after the old one died")
		}
		time.Sleep(10 * time.Millisecond)
	}

	jobs, err := c.OrphanJobs()
	if err != nil {
		t.Fatal(err)
	}
	if len(jobs) != 1 || jobs[0] != spec.ID {
		t.Fatalf("orphaned jobs = %v, want [%s]", jobs, spec.ID)
	}
	res, err := c.Resume(spec.ID)
	if err != nil {
		t.Fatalf("elected manager failed to adopt the job: %v", err)
	}
	if !res.Resumed {
		t.Error("Resumed flag not set on the adopted run")
	}
	if res.MapTasks == 0 || res.MapTasks >= totalMaps {
		t.Errorf("adopted run re-executed %d of %d maps; want a strict, non-empty subset",
			res.MapTasks, totalMaps)
	}
	kvs, err := c.Collect(res, "u")
	if err != nil {
		t.Fatal(err)
	}
	got := map[string]int{}
	for _, kv := range kvs {
		n, _ := strconv.Atoi(string(kv.Value))
		got[kv.Key] = n
	}
	if len(got) != len(want) {
		t.Fatalf("resumed job produced %d distinct keys, want %d", len(got), len(want))
	}
	for w, n := range want {
		if got[w] != n {
			t.Fatalf("count[%q] = %d, want %d", w, got[w], n)
		}
	}
	t.Logf("manager %s died with %d/%d maps journaled; successor re-ran %d maps, recovered %d partitions",
		oldMgr, totalMaps-res.MapTasks, totalMaps, res.MapTasks, res.RecoveredPartitions)
}

// TestSpeculativeHedgeBeatsStraggler is the acceptance speculation test:
// seeded chaos latency turns one node into a straggler; the driver must
// hedge its overdue map tasks on ring replicas and take the hedge's
// result, completing the job well before the straggler's RPCs would.
func TestSpeculativeHedgeBeatsStraggler(t *testing.T) {
	chaos := transport.NewChaos(transport.NewLocal(), transport.ChaosConfig{Seed: 7})
	c := newTestCluster(t, 4, Options{
		Network: chaos,
		// Big blocks: ~a dozen map tasks, all dispatched in the first wave
		// and all within the hedge semaphore's budget.
		Config: Config{BlockSize: 4 << 10},
	})
	// A single-word corpus keeps the shuffle away from the straggler: only
	// the word's own partition receives spills, so a hedge on a fast
	// replica never touches a slow link — the hedge's advantage is then the
	// pure dispatch-latency difference the detector is meant to exploit.
	text := strings.Repeat(strings.Repeat("zebra ", 12)+"\n", 1200)
	want := map[string]int{"zebra": 12 * 1200}
	if _, err := c.UploadRecords("slow.txt", "u", dhtfs.PermPublic, []byte(text), '\n'); err != nil {
		t.Fatal(err)
	}
	// Straggler: a non-manager node that does not own the word's reduce
	// partition (its owner must stay fast, or every map task — original and
	// hedge alike — would stall on the same spill push).
	partOwner, err := c.Manager().Ring().Owner(hashing.KeyOfString("zebra"))
	if err != nil {
		t.Fatal(err)
	}
	var straggler hashing.NodeID
	mgrID := c.Manager().ID
	for _, id := range c.Nodes() {
		if id != mgrID && id != partOwner {
			straggler = id
			break
		}
	}
	if straggler == "" {
		t.Fatal("no eligible straggler node")
	}
	// Every message to the straggler crawls; nothing is dropped.
	chaos.SetLink("", straggler, 0, 300*time.Millisecond, 0)

	res, err := c.Run(mapreduce.JobSpec{
		ID: "spec-e2e", App: "cluster-wordcount", Inputs: []string{"slow.txt"},
		User: "u", MaxAttempts: 5,
		SpeculativeDeadline: 15 * time.Millisecond,
	})
	if err != nil {
		t.Fatalf("job failed under straggler latency: %v", err)
	}
	kvs, err := c.Collect(res, "u")
	if err != nil {
		t.Fatal(err)
	}
	got := map[string]int{}
	for _, kv := range kvs {
		n, _ := strconv.Atoi(string(kv.Value))
		got[kv.Key] = n
	}
	for w, n := range want {
		if got[w] != n {
			t.Fatalf("count[%q] = %d, want %d (speculation corrupted the output)", w, got[w], n)
		}
	}
	snap := c.MetricsSnapshot()
	launched := snap.Get("mr.driver.speculative_launched")
	won := snap.Get("mr.driver.speculative_won")
	if launched < 1 {
		t.Errorf("speculative_launched = %d, want >= 1", launched)
	}
	if won < 1 {
		t.Errorf("speculative_won = %d, want >= 1: no hedge beat the straggler", won)
	}
	t.Logf("straggler %s: hedges launched=%d won=%d wasted=%d, job in %v",
		straggler, launched, won, snap.Get("mr.driver.speculative_wasted"), res.Elapsed)
}

// TestSuspectVerifyRetriesUnderDrops pins the retried verification ping:
// a live node reported as suspect must survive even when half the
// manager's pings to it are dropped — the single unretried ping of the
// old implementation evicted healthy nodes on the first lost packet.
func TestSuspectVerifyRetriesUnderDrops(t *testing.T) {
	// Seed 2's drop schedule on the manager→victim link never strings five
	// losses together, so a 5-attempt verification always gets through
	// (while individual drops still occur and are asserted below).
	chaos := transport.NewChaos(transport.NewLocal(), transport.ChaosConfig{Seed: 2})
	c := newTestCluster(t, 3, Options{
		Network:      chaos,
		DisableRetry: true, // the verification path must bring its own retries
		Config:       Config{HeartbeatInterval: time.Hour},
	})
	mgrNode := c.Manager()
	mgr := mgrNode.Manager()
	victim := nonManagerNode(t, c)
	chaos.SetLink(mgrNode.ID, victim, 0.5, 0, 0)

	for i := 0; i < 3; i++ {
		mgr.reportSuspect(victim)
	}
	for _, id := range mgr.Members() {
		if id == victim {
			if drops := c.MetricsSnapshot().Get("chaos.drops"); drops == 0 {
				t.Fatal("no pings dropped: the retry path was never exercised")
			}
			return
		}
	}
	t.Fatalf("live node %s evicted despite retried verification (members %v)", victim, mgr.Members())
}

// TestReReplicateIdempotentAfterChurn pins repair idempotence: after one
// node fails and a replacement joins, a full re-replication pass restores
// every block and metadata entry to its replica set — and a second pass
// pushes nothing.
func TestReReplicateIdempotentAfterChurn(t *testing.T) {
	c := newTestCluster(t, 5, Options{})
	for i := 0; i < 4; i++ {
		name := fmt.Sprintf("churn-%d.txt", i)
		data := bytes.Repeat([]byte(fmt.Sprintf("payload %d for replication\n", i)), 50)
		if _, err := c.UploadRecords(name, "u", dhtfs.PermPublic, data, '\n'); err != nil {
			t.Fatal(err)
		}
	}

	// Churn: one failure, one join.
	if err := c.FailNow(nonManagerNode(t, c)); err != nil {
		t.Fatal(err)
	}
	newID := hashing.NodeID("worker-90")
	n, err := NewNode(newID, c.net, c.opts.Config)
	if err != nil {
		t.Fatal(err)
	}
	if err := n.Start(); err != nil {
		t.Fatal(err)
	}
	c.nodes[newID] = n
	c.order = append(c.order, newID)
	if err := c.Manager().Manager().Join(newID); err != nil {
		t.Fatal(err)
	}
	// Wait for every node to adopt the post-churn view so all repairers
	// agree on the replica sets.
	deadline := time.Now().Add(5 * time.Second)
	for {
		settled := true
		for _, id := range c.Nodes() {
			node, _ := c.Node(id)
			if len(node.View().Members) != 5 {
				settled = false
			}
		}
		if settled {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("views never converged after churn")
		}
		time.Sleep(10 * time.Millisecond)
	}

	pass := func() int {
		t.Helper()
		total := 0
		for _, id := range c.Nodes() {
			node, _ := c.Node(id)
			pushed, err := node.FS().ReReplicate(context.Background())
			if err != nil {
				t.Fatalf("ReReplicate on %s: %v", id, err)
			}
			total += pushed
		}
		return total
	}
	// The membership machinery already drove recovery on Fail/Join; drive
	// explicit passes to the fixpoint, then pin idempotence: once converged,
	// a full repair pass must push nothing. (Before metadata restoration
	// checked the target, every pass re-pushed every metadata entry and no
	// pass ever reached zero.)
	last := -1
	for i := 0; i < 6 && last != 0; i++ {
		last = pass()
	}
	if last != 0 {
		t.Fatalf("repair never converged: last pass pushed %d objects", last)
	}
	if extra := pass(); extra != 0 {
		t.Fatalf("converged repair pass pushed %d objects, want 0 (repair is not idempotent)", extra)
	}

	// Every block sits on exactly its replica-set members.
	ring := c.Manager().Ring()
	factor := c.opts.Replicas
	blocks := 0
	for _, id := range c.Nodes() {
		node, _ := c.Node(id)
		for _, k := range node.FS().Store().BlockKeys() {
			targets, err := ring.ReplicaSet(k, factor)
			if err != nil {
				t.Fatal(err)
			}
			holders := 0
			for _, tid := range c.Nodes() {
				tn, _ := c.Node(tid)
				if tn.FS().Store().HasBlock(k) {
					holders++
				}
			}
			for _, target := range targets {
				tn, ok := c.Node(target)
				if !ok {
					t.Fatalf("replica target %s for block %v is not live", target, k)
				}
				if !tn.FS().Store().HasBlock(k) {
					t.Errorf("block %v missing from replica %s", k, target)
				}
			}
			if holders != len(targets) {
				t.Errorf("block %v held by %d nodes, want exactly %d", k, holders, len(targets))
			}
			blocks++
		}
	}
	if blocks == 0 {
		t.Fatal("no blocks found after churn")
	}
}
