package cluster

import (
	"bytes"
	"testing"
	"time"

	"eclipsemr/internal/dhtfs"
	"eclipsemr/internal/hashing"
	"eclipsemr/internal/mapreduce"
	"eclipsemr/internal/transport"
)

// TestChaosWordCountAcrossRingBackends runs the same WordCount job on
// every -ring backend, twice per backend: once fault-free and once under
// seeded 10% message loss. Exactness must hold per backend — the chaotic
// run's output is byte-identical to that backend's own baseline — which
// pins that retries, attempt-tagged spills and shuffle routing stay
// correct no matter which consistent-hashing algorithm places the data.
func TestChaosWordCountAcrossRingBackends(t *testing.T) {
	text := chaosJobText(true)
	for _, alg := range append(hashing.Algorithms(), "chord:8") {
		alg := alg
		t.Run(alg, func(t *testing.T) {
			spec := mapreduce.JobSpec{
				ID: "ringchaos-" + alg, App: "cluster-wordcount",
				Inputs: []string{"chaos.txt"}, User: "u", MaxAttempts: 5,
			}
			base := newTestCluster(t, 4, Options{Config: Config{Ring: alg}})
			want := runWordCount(t, base, spec, text)

			chaos := transport.NewChaos(transport.NewLocal(), transport.ChaosConfig{Seed: 20260808})
			c := newTestCluster(t, 4, Options{
				Config:  Config{Ring: alg},
				Network: chaos,
				Retry:   transport.RetryPolicy{MaxAttempts: 6, BaseDelay: 100 * time.Microsecond},
			})
			if _, err := c.UploadRecords("chaos.txt", "u", dhtfs.PermPublic, []byte(text), '\n'); err != nil {
				t.Fatal(err)
			}
			chaos.SetDrop(0.10)
			res, err := c.Run(spec)
			if err != nil {
				t.Fatalf("%s: job failed under 10%% drop: %v", alg, err)
			}
			kvs, err := c.Collect(res, "u")
			if err != nil {
				t.Fatal(err)
			}
			if got := mapreduce.EncodeKVs(kvs); !bytes.Equal(got, want) {
				t.Fatalf("%s: chaotic output diverged from fault-free baseline: %d vs %d bytes",
					alg, len(got), len(want))
			}
			if snap := c.MetricsSnapshot(); snap.Get("chaos.drops") == 0 {
				t.Errorf("%s: no drops injected at 10%% drop rate", alg)
			}
		})
	}
}

// TestRingBackendsPlaceConsistently pins the cross-node agreement that
// O(1) backends rely on: every node derives its placement ring from the
// adopted membership view, so all nodes resolve every probe key to the
// same owner and replica set.
func TestRingBackendsPlaceConsistently(t *testing.T) {
	for _, alg := range append(hashing.Algorithms(), "chord:8") {
		alg := alg
		t.Run(alg, func(t *testing.T) {
			c := newTestCluster(t, 5, Options{Config: Config{Ring: alg}})
			rings := make([]hashing.Ring, 0, 5)
			for _, id := range c.Nodes() {
				n, ok := c.Node(id)
				if !ok {
					t.Fatalf("node %s missing", id)
				}
				rings = append(rings, n.Ring())
			}
			for i := 0; i < 64; i++ {
				k := hashing.KeyOfString("probe-" + string(rune('a'+i%26)) + "-" + string(rune('0'+i%10)))
				owner, err := rings[0].Owner(k)
				if err != nil {
					t.Fatal(err)
				}
				set, err := rings[0].ReplicaSet(k, 3)
				if err != nil {
					t.Fatal(err)
				}
				for j, r := range rings[1:] {
					got, err := r.Owner(k)
					if err != nil || got != owner {
						t.Fatalf("node %d disagrees on owner of %v: %s vs %s (err %v)", j+1, k, got, owner, err)
					}
					gotSet, err := r.ReplicaSet(k, 3)
					if err != nil {
						t.Fatal(err)
					}
					for x := range set {
						if gotSet[x] != set[x] {
							t.Fatalf("node %d disagrees on replica set of %v: %v vs %v", j+1, k, gotSet, set)
						}
					}
				}
			}
		})
	}
}
