package cluster

import (
	"bytes"
	"strings"
	"testing"
	"time"

	"eclipsemr/internal/dhtfs"
	"eclipsemr/internal/hashing"
	"eclipsemr/internal/mapreduce"
	"eclipsemr/internal/transport"
)

// chaosJobText sizes the WordCount input so the job comfortably spans the
// mid-job crash point.
func chaosJobText(short bool) string {
	line := "the quick brown fox jumps over the lazy dog again and again\n"
	n := 6000
	if short {
		n = 1500
	}
	return strings.Repeat(line, n)
}

// runWordCount uploads the text and runs the job, returning the collected
// output stream (sorted partitions, sorted keys: byte-comparable).
func runWordCount(t *testing.T, c *Cluster, spec mapreduce.JobSpec, text string) []byte {
	t.Helper()
	if _, err := c.UploadRecords("chaos.txt", "u", dhtfs.PermPublic, []byte(text), '\n'); err != nil {
		t.Fatal(err)
	}
	res, err := c.Run(spec)
	if err != nil {
		t.Fatal(err)
	}
	if res.MapTasks == 0 {
		t.Fatal("no map tasks ran")
	}
	kvs, err := c.Collect(res, "u")
	if err != nil {
		t.Fatal(err)
	}
	if len(kvs) == 0 {
		t.Fatal("empty job output")
	}
	return mapreduce.EncodeKVs(kvs)
}

// TestChaosWordCountSurvivesDropsAndCrash is the acceptance soak: a full
// WordCount over a chaos-wrapped cluster with message drops plus one
// worker crash-stopped mid-job must produce output byte-identical to a
// fault-free run, with the retry and failover counters visible in the
// metrics snapshot.
func TestChaosWordCountSurvivesDropsAndCrash(t *testing.T) {
	text := chaosJobText(testing.Short())
	drop := 0.10
	if testing.Short() {
		drop = 0.05
	}
	spec := mapreduce.JobSpec{
		ID: "chaos-wc", App: "cluster-wordcount", Inputs: []string{"chaos.txt"},
		User: "u", MaxAttempts: 5, ReplicateIntermediates: true,
	}

	// Fault-free baseline.
	base := newTestCluster(t, 5, Options{})
	want := runWordCount(t, base, spec, text)

	// Chaos run: drops + latency jitter on every link, one crash mid-job.
	chaos := transport.NewChaos(transport.NewLocal(), transport.ChaosConfig{
		Seed:    20260806,
		Latency: 100 * time.Microsecond,
		Jitter:  200 * time.Microsecond,
		Logf:    t.Logf,
	})
	c := newTestCluster(t, 5, Options{
		Network: chaos,
		Retry:   transport.RetryPolicy{MaxAttempts: 5, BaseDelay: 200 * time.Microsecond},
	})
	if _, err := c.UploadRecords("chaos.txt", "u", dhtfs.PermPublic, []byte(text), '\n'); err != nil {
		t.Fatal(err)
	}
	chaos.SetDrop(drop) // upload ran fault-free; the job does not

	victim := hashing.NodeID("worker-01") // not the manager (highest ID)
	crashed := make(chan struct{})
	go func() {
		time.Sleep(20 * time.Millisecond)
		chaos.Crash(victim)
		close(crashed)
	}()

	res, err := c.Run(spec)
	if err != nil {
		t.Fatalf("job did not survive chaos: %v", err)
	}
	<-crashed
	kvs, err := c.Collect(res, "u")
	if err != nil {
		t.Fatal(err)
	}
	got := mapreduce.EncodeKVs(kvs)
	if !bytes.Equal(got, want) {
		t.Fatalf("chaos output diverged from fault-free run: %d vs %d bytes, %d vs %d pairs",
			len(got), len(want), len(kvs), len(want)/8)
	}

	snap := c.MetricsSnapshot()
	if snap.Get("chaos.drops") == 0 {
		t.Error("chaos.drops = 0: the schedule injected no faults")
	}
	if snap.Get("net.retries") == 0 {
		t.Error("net.retries = 0: the retry layer absorbed nothing")
	}
	// The recovery counters must be visible in the snapshot (they are
	// pre-created, so presence does not depend on the fault schedule).
	for _, name := range []string{
		"mr.driver.map_retries", "mr.driver.map_failovers", "mr.driver.reduce_failovers",
	} {
		if _, ok := snap.Values[name]; !ok {
			t.Errorf("counter %s missing from metrics snapshot", name)
		}
	}
	t.Logf("chaos run: drops=%d blocked=%d retries=%d map_retries=%d map_failovers=%d reduce_failovers=%d",
		snap.Get("chaos.drops"), snap.Get("chaos.blocked"), snap.Get("net.retries"),
		snap.Get("mr.driver.map_retries"), snap.Get("mr.driver.map_failovers"), snap.Get("mr.driver.reduce_failovers"))
}

// TestChaosDropOnlyJobIsExact runs the job under pure message loss (no
// crash) and checks exactness: retries plus attempt-tagged idempotent
// spills must not duplicate or lose a single count.
func TestChaosDropOnlyJobIsExact(t *testing.T) {
	text := chaosJobText(true)
	spec := mapreduce.JobSpec{
		ID: "chaos-drop", App: "cluster-wordcount", Inputs: []string{"chaos.txt"},
		User: "u", MaxAttempts: 5,
	}
	base := newTestCluster(t, 4, Options{})
	want := runWordCount(t, base, spec, text)

	chaos := transport.NewChaos(transport.NewLocal(), transport.ChaosConfig{Seed: 7})
	c := newTestCluster(t, 4, Options{
		Network: chaos,
		Retry:   transport.RetryPolicy{MaxAttempts: 6, BaseDelay: 100 * time.Microsecond},
	})
	if _, err := c.UploadRecords("chaos.txt", "u", dhtfs.PermPublic, []byte(text), '\n'); err != nil {
		t.Fatal(err)
	}
	chaos.SetDrop(0.15)
	res, err := c.Run(spec)
	if err != nil {
		t.Fatalf("job failed under 15%% drop: %v", err)
	}
	kvs, err := c.Collect(res, "u")
	if err != nil {
		t.Fatal(err)
	}
	if got := mapreduce.EncodeKVs(kvs); !bytes.Equal(got, want) {
		t.Fatalf("drop-only output diverged: %d vs %d bytes", len(got), len(want))
	}
	if snap := c.MetricsSnapshot(); snap.Get("chaos.drops") == 0 {
		t.Error("no drops injected at 15% drop rate")
	}
}
