// Package cluster assembles EclipseMR nodes into a running system: each
// worker node combines a DHT file system shard, a distributed in-memory
// cache slice and a MapReduce worker behind one transport endpoint, and
// the package adds the control plane the paper describes in §II — an
// epoch-numbered membership view disseminated by the resource manager,
// neighbor heartbeats for failure detection, bully election of a new
// resource manager / job scheduler when the current one dies, and
// re-replication of file blocks after a failure.
package cluster

import (
	"context"
	"errors"
	"fmt"
	"path/filepath"
	"sync"
	"time"

	"eclipsemr/internal/cache"
	"eclipsemr/internal/chord"
	"eclipsemr/internal/dhtfs"
	"eclipsemr/internal/events"
	"eclipsemr/internal/hashing"
	"eclipsemr/internal/mapreduce"
	"eclipsemr/internal/metrics"
	"eclipsemr/internal/trace"
	"eclipsemr/internal/transport"
)

// Config holds per-node and cluster-wide parameters. The defaults mirror
// the paper's testbed where sensible (8 map + 8 reduce slots per server;
// blocks replicated on predecessor and successor).
type Config struct {
	// Replicas is the total copies per block/metadata entry (owner +
	// predecessor + successor = 3). Default 3.
	Replicas int
	// MapSlots / ReduceSlots per server. Default 8 each.
	MapSlots    int
	ReduceSlots int
	// CacheBytes is the distributed in-memory cache capacity per server,
	// split evenly between iCache and oCache. Default 64 MiB.
	CacheBytes int64
	// BlockSize is the default DHT-FS block size for uploads. The paper
	// uses 128 MB; the in-process default is 256 KiB (experiments scale
	// sizes down uniformly). Default 256 KiB.
	BlockSize int
	// HeartbeatInterval / HeartbeatTimeout drive neighbor failure
	// detection. Defaults 200 ms / 600 ms.
	HeartbeatInterval time.Duration
	HeartbeatTimeout  time.Duration
	// DataDir, when set, persists each node's file system blocks under
	// DataDir/<node-id>/ (a restarted node recovers its shard); empty
	// keeps blocks in memory.
	DataDir string
	// Ring selects the consistent-hashing algorithm used for block and
	// shuffle placement: "chord" (default), "chord:<vnodes>", "jump",
	// "power" or "rendezvous" (see hashing.Algorithms). The membership
	// protocol always runs on the chord ring — positions travel in views —
	// and the placement ring of the chosen algorithm is derived from each
	// adopted view, so every node with the same view places identically.
	Ring string
	// Trace configures the node's tracer (clock, seed, span-ring capacity,
	// sampling). Tracing always starts disabled; enable it through
	// Node.Tracer().SetEnabled or Cluster.SetTracing.
	Trace trace.Options
	// Events configures the node's structured event log (clock, seed,
	// ring capacity). Unlike tracing the log is always on — it is the
	// flight recorder consulted after failures.
	Events events.Options
}

// withDefaults fills zero fields.
func (c Config) withDefaults() Config {
	if c.Replicas <= 0 {
		c.Replicas = 3
	}
	if c.MapSlots <= 0 {
		c.MapSlots = 8
	}
	if c.ReduceSlots <= 0 {
		c.ReduceSlots = 8
	}
	if c.CacheBytes <= 0 {
		c.CacheBytes = 64 << 20
	}
	if c.BlockSize <= 0 {
		c.BlockSize = 256 << 10
	}
	if c.HeartbeatInterval <= 0 {
		c.HeartbeatInterval = 200 * time.Millisecond
	}
	if c.HeartbeatTimeout <= 0 {
		c.HeartbeatTimeout = 3 * c.HeartbeatInterval
	}
	return c
}

// Control-plane wire messages.
type (
	pingResp struct {
		Epoch   uint64
		Manager hashing.NodeID
	}
	viewMsg struct {
		View    chord.View
		Manager hashing.NodeID
	}
	suspectMsg struct {
		Suspect  hashing.NodeID
		Reporter hashing.NodeID
	}
	electionMsg struct {
		Candidate hashing.NodeID
	}
	electionResp struct {
		Alive bool
	}
	recoverResp struct {
		Pushed int
	}
	// StatsResp carries one node's metrics snapshot (flat values plus
	// latency histograms).
	StatsResp struct {
		Node    hashing.NodeID
		Metrics metrics.Snapshot
	}
	ack struct{}
)

// Control-plane method names.
const (
	methodPing        = "cluster.ping"
	methodView        = "cluster.view"
	methodSuspect     = "cluster.suspect"
	methodElection    = "cluster.election"
	methodCoordinator = "cluster.coordinator"
	methodRecover     = "cluster.recover"
	// MethodStats returns the node's merged metrics snapshot.
	MethodStats = "cluster.stats"
	// MethodSpans returns the node's retained trace spans for one trace.
	MethodSpans = "cluster.spans"
	// MethodEvents returns the node's retained structured events for one
	// job (plus cluster-scoped events).
	MethodEvents = "cluster.events"
	// MethodBundle asks a node to assemble a cluster-wide debug bundle.
	MethodBundle = "cluster.bundle"
)

// Span-collection wire messages.
type (
	// SpansReq asks a node for its retained spans of one trace (job ID);
	// an empty Trace selects every retained span.
	SpansReq struct {
		Trace string
	}
	// SpansResp carries one node's spans plus how many finished spans its
	// ring buffer has overwritten before collection.
	SpansResp struct {
		Node    hashing.NodeID
		Spans   []trace.Span
		Dropped int64
	}
)

// Event-collection wire messages.
type (
	// EventsReq asks a node for its retained events. A non-empty Job
	// keeps that job's events plus cluster-scoped ones (membership, FS
	// repair); SinceNS, when positive, drops older events.
	EventsReq struct {
		Job     string
		SinceNS int64
	}
	// EventsResp carries one node's events plus how many its ring has
	// overwritten before collection.
	EventsResp struct {
		Node    hashing.NodeID
		Events  []events.Event
		Dropped int64
	}
	// BundleReq asks a node to assemble a cluster-wide debug bundle for
	// one job ("" = everything) with the stated capture reason.
	BundleReq struct {
		Job    string
		Reason string
	}
	// BundleResp carries the serialized bundle.
	BundleResp struct {
		Data []byte
	}
)

// Node is one EclipseMR worker server.
type Node struct {
	ID  hashing.NodeID
	cfg Config
	net transport.Network

	fs     *dhtfs.Service
	cache  *cache.NodeCache
	worker *mapreduce.Worker
	tracer *trace.Tracer
	events *events.Log

	mu   sync.Mutex
	view chord.View
	ring *hashing.ChordRing // derived from view, cached
	// placement is the cfg.Ring-algorithm ring rebuilt from every adopted
	// view; on the default chord algorithm it is the view ring itself.
	placement hashing.Ring
	manager   hashing.NodeID
	mgr       *Manager // non-nil while this node is the resource manager
	closed    bool

	stopHB chan struct{}
	wg     sync.WaitGroup

	// extra, when set, is consulted for methods no built-in service
	// claims (cmd/eclipse-node mounts its job-submission endpoint here).
	extra func(method string, body []byte) ([]byte, bool, error)

	// extraMetrics lists additional snapshot sources merged into
	// MetricsSnapshot (driver, scheduler, transport decorators); guarded
	// by mu.
	extraMetrics []func() metrics.Snapshot
}

// NewNode constructs (but does not start) a node.
func NewNode(id hashing.NodeID, net transport.Network, cfg Config) (*Node, error) {
	cfg = cfg.withDefaults()
	if _, err := hashing.NewAlgorithmRing(cfg.Ring); err != nil {
		return nil, err
	}
	n := &Node{ID: id, cfg: cfg, net: net, stopHB: make(chan struct{})}
	store := dhtfs.NewStore()
	if cfg.DataDir != "" {
		var err error
		store, err = dhtfs.NewStoreAt(filepath.Join(cfg.DataDir, string(id)))
		if err != nil {
			return nil, err
		}
	}
	fs, err := dhtfs.NewServiceWithStore(id, net, n.Ring, cfg.Replicas, store)
	if err != nil {
		return nil, err
	}
	n.fs = fs
	n.cache = cache.NewShared(cfg.CacheBytes)
	n.worker = mapreduce.NewWorker(id, fs, n.cache, net)
	n.tracer = trace.New(string(id), cfg.Trace)
	n.fs.SetTracer(n.tracer)
	n.worker.SetTracer(n.tracer)
	n.events = events.New(string(id), cfg.Events)
	n.fs.SetEvents(n.events)
	n.worker.SetEvents(n.events)
	return n, nil
}

// Tracer exposes the node's span recorder (disabled until SetEnabled).
func (n *Node) Tracer() *trace.Tracer { return n.tracer }

// Events exposes the node's structured event log (always on).
func (n *Node) Events() *events.Log { return n.events }

// FS exposes the node's DHT file system service.
func (n *Node) FS() *dhtfs.Service { return n.fs }

// Cache exposes the node's in-memory cache slice.
func (n *Node) Cache() *cache.NodeCache { return n.cache }

// BlockSize returns the node's configured DHT-FS block size.
func (n *Node) BlockSize() int { return n.cfg.BlockSize }

// AddMetricsSource registers an additional snapshot source (driver,
// scheduler, transport decorators) merged into MetricsSnapshot and thus
// served over cluster.stats and /metrics.
func (n *Node) AddMetricsSource(src func() metrics.Snapshot) {
	n.mu.Lock()
	defer n.mu.Unlock()
	n.extraMetrics = append(n.extraMetrics, src)
}

// MetricsSnapshot merges the node's worker and file system counters,
// its cache statistics, and any registered extra sources into one
// snapshot. Cache hit ratios are refreshed at snapshot time, in basis
// points (a ratio of 1.0 = 10000) so they survive the int64 wire format;
// note ratios are per-node values — cluster-wide ratios must be
// recomputed from the summed hit/miss counters, not by adding these.
func (n *Node) MetricsSnapshot() metrics.Snapshot {
	snap := n.worker.Metrics().Snapshot()
	metrics.Merge(&snap, n.fs.Metrics().Snapshot())
	cs := n.cache.CombinedStats()
	snap.Values["cache.hits"] = int64(cs.Hits)
	snap.Values["cache.misses"] = int64(cs.Misses)
	snap.Values["cache.insertions"] = int64(cs.Insertions)
	snap.Values["cache.evictions"] = int64(cs.Evictions)
	snap.Values["cache.expirations"] = int64(cs.Expirations)
	snap.Values["cache.bytes"] = n.cache.ICache.Bytes() + n.cache.OCache.Bytes()
	snap.Values["cache.hit_ratio_bp"] = int64(cs.HitRatio() * 10000)
	snap.Values["cache.icache.hit_ratio_bp"] = int64(n.cache.ICache.Stats().HitRatio() * 10000)
	snap.Values["cache.ocache.hit_ratio_bp"] = int64(n.cache.OCache.Stats().HitRatio() * 10000)
	// Ring-overflow gauges, refreshed at snapshot time like the cache
	// figures: invisible overflow is how a debugging session discovers too
	// late that its history was overwritten.
	snap.Values["trace.dropped"] = n.tracer.Dropped()
	snap.Values["events.dropped"] = n.events.Dropped()
	n.mu.Lock()
	extra := append([]func() metrics.Snapshot(nil), n.extraMetrics...)
	n.mu.Unlock()
	for _, src := range extra {
		metrics.Merge(&snap, src())
	}
	return snap
}

// Ring returns the node's current placement ring (a copy) of the
// configured algorithm.
func (n *Node) Ring() hashing.Ring {
	n.mu.Lock()
	defer n.mu.Unlock()
	if n.placement == nil {
		empty, _ := hashing.NewAlgorithmRing(n.cfg.Ring) // validated in NewNode
		return empty
	}
	return n.placement.Snapshot()
}

// placementFrom derives the placement ring of the configured algorithm
// from a view ring. Members are inserted in ring-position order, a pure
// function of the view, so every node sharing a view builds the same
// bucket order for the O(1) backends.
func (n *Node) placementFrom(ring *hashing.ChordRing) hashing.Ring {
	if n.cfg.Ring == "" || n.cfg.Ring == hashing.AlgorithmChord {
		return ring
	}
	p, err := hashing.NewAlgorithmRing(n.cfg.Ring)
	if err != nil {
		return ring // unreachable: algorithm validated in NewNode
	}
	for _, id := range ring.Members() {
		_ = p.AddNode(id)
	}
	return p
}

// View returns the node's current membership view.
func (n *Node) View() chord.View {
	n.mu.Lock()
	defer n.mu.Unlock()
	return n.view
}

// ManagerID returns the node's notion of the current resource manager.
func (n *Node) ManagerID() hashing.NodeID {
	n.mu.Lock()
	defer n.mu.Unlock()
	return n.manager
}

// IsManager reports whether this node currently holds the resource
// manager role.
func (n *Node) IsManager() bool {
	n.mu.Lock()
	defer n.mu.Unlock()
	return n.mgr != nil
}

// SetExtraHandler installs a fallback handler for methods outside the
// built-in services. Call before Start.
func (n *Node) SetExtraHandler(h func(method string, body []byte) ([]byte, bool, error)) {
	n.extra = h
}

// Start registers the node on the network and launches its heartbeat
// loop.
func (n *Node) Start() error {
	if err := n.net.Listen(n.ID, n.handle); err != nil {
		return err
	}
	n.wg.Add(1)
	go n.heartbeatLoop()
	return nil
}

// Close stops the node's background work and removes it from the network.
func (n *Node) Close() {
	n.mu.Lock()
	if n.closed {
		n.mu.Unlock()
		return
	}
	n.closed = true
	mgr := n.mgr
	n.mu.Unlock()
	close(n.stopHB)
	if mgr != nil {
		mgr.stop()
	}
	n.net.Unlisten(n.ID)
	n.wg.Wait()
}

// BecomeManagerWith bootstraps the resource-manager role on this node
// with an explicit initial ring and epoch, broadcasting the view to every
// member. Deployments (cmd/eclipse-node) call it on the designated
// bootstrap coordinator; subsequent failures are handled by election.
func (n *Node) BecomeManagerWith(ring *hashing.ChordRing, epoch uint64) *Manager {
	mgr := newManager(n, ring, epoch)
	n.mu.Lock()
	n.mgr = mgr
	n.manager = n.ID
	n.mu.Unlock()
	mgr.broadcastView()
	return mgr
}

// Manager returns this node's resource-manager role, or nil if the node
// does not currently hold it.
func (n *Node) Manager() *Manager {
	n.mu.Lock()
	defer n.mu.Unlock()
	return n.mgr
}

// adoptView installs a membership view if it is newer than the current
// one. It returns true if the view was adopted.
func (n *Node) adoptView(v chord.View, manager hashing.NodeID) bool {
	n.mu.Lock()
	defer n.mu.Unlock()
	if v.Epoch < n.view.Epoch {
		return false
	}
	if v.Epoch == n.view.Epoch && manager == n.manager {
		n.view = v // idempotent refresh
		return true
	}
	ring, err := v.Ring()
	if err != nil {
		return false
	}
	n.view = v
	n.ring = ring
	n.placement = n.placementFrom(ring)
	n.manager = manager
	return true
}

// handle dispatches inbound calls: MapReduce worker methods first, then
// file system methods, then the control plane.
func (n *Node) handle(ctx context.Context, method string, body []byte) ([]byte, error) {
	if out, ok, err := n.worker.Handle(ctx, method, body); ok {
		return out, err
	}
	if out, ok, err := n.fs.Handle(ctx, method, body); ok {
		return out, err
	}
	switch method {
	case methodPing:
		n.mu.Lock()
		resp := pingResp{Epoch: n.view.Epoch, Manager: n.manager}
		n.mu.Unlock()
		return transport.Encode(resp)
	case methodView:
		var msg viewMsg
		if err := transport.Decode(body, &msg); err != nil {
			return nil, err
		}
		n.adoptView(msg.View, msg.Manager)
		return transport.Encode(ack{})
	case methodSuspect:
		var msg suspectMsg
		if err := transport.Decode(body, &msg); err != nil {
			return nil, err
		}
		n.mu.Lock()
		mgr := n.mgr
		n.mu.Unlock()
		if mgr == nil {
			return nil, errors.New("cluster: not the resource manager")
		}
		mgr.reportSuspect(msg.Suspect)
		return transport.Encode(ack{})
	case methodElection:
		var msg electionMsg
		if err := transport.Decode(body, &msg); err != nil {
			return nil, err
		}
		// Bully election: a higher-ID node answers "alive" and launches
		// its own election, suppressing the lower candidate.
		if n.ID > msg.Candidate {
			//lint:ignore goroleak bully election is a bounded round of RPCs; runElection returns once a coordinator is settled
			go n.runElection()
			return transport.Encode(electionResp{Alive: true})
		}
		return transport.Encode(electionResp{Alive: false})
	case methodCoordinator:
		var msg viewMsg
		if err := transport.Decode(body, &msg); err != nil {
			return nil, err
		}
		n.adoptView(msg.View, msg.Manager)
		return transport.Encode(ack{})
	case methodRecover:
		pushed, err := n.fs.ReReplicate(ctx)
		if err != nil {
			return nil, err
		}
		return transport.Encode(recoverResp{Pushed: pushed})
	case MethodStats:
		return transport.Encode(StatsResp{Node: n.ID, Metrics: n.MetricsSnapshot()})
	case MethodSpans:
		var req SpansReq
		if err := transport.Decode(body, &req); err != nil {
			return nil, err
		}
		return transport.Encode(SpansResp{
			Node: n.ID, Spans: n.tracer.Spans(req.Trace), Dropped: n.tracer.Dropped(),
		})
	case MethodEvents:
		var req EventsReq
		if err := transport.Decode(body, &req); err != nil {
			return nil, err
		}
		return transport.Encode(EventsResp{
			Node: n.ID, Events: n.events.Events(req.Job, req.SinceNS), Dropped: n.events.Dropped(),
		})
	case MethodBundle:
		var req BundleReq
		if err := transport.Decode(body, &req); err != nil {
			return nil, err
		}
		data, err := n.BuildBundleBytes(ctx, req.Job, req.Reason)
		if err != nil {
			return nil, err
		}
		return transport.Encode(BundleResp{Data: data})
	}
	if n.extra != nil {
		if out, ok, err := n.extra(method, body); ok {
			return out, err
		}
	}
	return nil, fmt.Errorf("cluster: unknown method %q", method)
}

// call is the node's typed RPC helper. Control-plane calls are untraced
// (they belong to no job), so the context is a fresh background one.
func (n *Node) call(to hashing.NodeID, method string, req, resp any) error {
	//lint:ignore ctxflow control-plane RPCs (election, recovery) belong to no job; see the function comment
	return n.callCtx(context.Background(), to, method, req, resp)
}

// callCtx is call with caller-controlled cancellation (bundle assembly,
// which fans out on behalf of an RPC that does carry a context).
func (n *Node) callCtx(ctx context.Context, to hashing.NodeID, method string, req, resp any) error {
	body, err := transport.Encode(req)
	if err != nil {
		return err
	}
	out, err := n.net.Call(ctx, to, method, body)
	if err != nil {
		return err
	}
	if resp == nil {
		return nil
	}
	return transport.Decode(out, resp)
}

// heartbeatLoop implements the paper's neighbor heartbeats: each server
// periodically pings its ring successor; after HeartbeatTimeout without a
// response it reports the suspect to the resource manager, and if the
// manager itself is gone it starts an election.
func (n *Node) heartbeatLoop() {
	defer n.wg.Done()
	ticker := time.NewTicker(n.cfg.HeartbeatInterval)
	defer ticker.Stop()
	lastSeen := make(map[hashing.NodeID]time.Time)
	for {
		select {
		case <-n.stopHB:
			return
		case <-ticker.C:
		}
		n.mu.Lock()
		ring := n.ring
		manager := n.manager
		n.mu.Unlock()
		if ring == nil || ring.Len() < 2 {
			continue
		}
		succ, err := ring.Clone().Successor(n.ID)
		if err != nil {
			continue
		}
		var resp pingResp
		if err := n.call(succ, methodPing, ack{}, &resp); err == nil {
			lastSeen[succ] = time.Now()
			continue
		}
		seen, ok := lastSeen[succ]
		if !ok {
			lastSeen[succ] = time.Now()
			continue
		}
		if time.Since(seen) < n.cfg.HeartbeatTimeout {
			continue
		}
		delete(lastSeen, succ)
		// Successor is dead: tell the resource manager. If we *are* the
		// manager, handle it directly; if the manager is unreachable,
		// elect a new one.
		n.mu.Lock()
		mgr := n.mgr
		n.mu.Unlock()
		if mgr != nil {
			mgr.reportSuspect(succ)
			continue
		}
		if err := n.call(manager, methodSuspect, suspectMsg{Suspect: succ, Reporter: n.ID}, nil); err != nil {
			if errors.Is(err, transport.ErrUnreachable) {
				n.runElection()
			}
		}
	}
}

// runElection performs a bully election over the current view: if any
// higher-ID member is alive, it takes over; otherwise this node becomes
// the resource manager, purges unreachable members and broadcasts the new
// view.
func (n *Node) runElection() {
	n.mu.Lock()
	if n.mgr != nil || n.closed {
		n.mu.Unlock()
		return
	}
	view := n.view
	n.mu.Unlock()
	for id := range view.Members {
		if id <= n.ID {
			continue
		}
		var resp electionResp
		if err := n.call(id, methodElection, electionMsg{Candidate: n.ID}, &resp); err == nil && resp.Alive {
			return // a higher node takes over
		}
	}
	n.becomeManager()
}

// becomeManager promotes this node to resource manager, drops unreachable
// members from the view, and broadcasts the result.
func (n *Node) becomeManager() {
	n.mu.Lock()
	if n.mgr != nil || n.closed {
		n.mu.Unlock()
		return
	}
	ring, err := n.view.Ring()
	if err != nil {
		n.mu.Unlock()
		return
	}
	epoch := n.view.Epoch
	n.mu.Unlock()

	// Probe every member; survivors form the new view.
	alive := hashing.NewChordRing()
	for _, id := range ring.Members() {
		if id == n.ID {
			pos, _ := ring.Position(id)
			_ = alive.Add(id, pos)
			continue
		}
		var resp pingResp
		if err := n.call(id, methodPing, ack{}, &resp); err == nil {
			pos, _ := ring.Position(id)
			_ = alive.Add(id, pos)
		}
	}
	// Isolation guard: a node that reaches no other member of a
	// multi-node view is far more likely cut off (or crash-stopped at the
	// transport) than the sole survivor. Promoting it would create a
	// zombie manager nobody else can see; stay a worker and let a
	// reachable node win the election.
	if ring.Len() > 1 && alive.Len() <= 1 {
		return
	}
	mgr := newManager(n, alive, epoch+1)
	n.mu.Lock()
	n.mgr = mgr
	n.manager = n.ID
	n.mu.Unlock()
	n.events.Emit(events.KindMembership, "member.elect", events.F{Detail: string(n.ID)})
	mgr.broadcastView()
	mgr.directRecovery()
	mgr.start()
}
