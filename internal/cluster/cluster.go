package cluster

import (
	"context"
	"fmt"
	"os"
	"sort"
	"time"

	"eclipsemr/internal/cache"
	"eclipsemr/internal/dhtfs"
	"eclipsemr/internal/events"
	"eclipsemr/internal/hashing"
	"eclipsemr/internal/mapreduce"
	"eclipsemr/internal/metrics"
	"eclipsemr/internal/scheduler"
	"eclipsemr/internal/trace"
	"eclipsemr/internal/transport"
)

// Policy selects the job-scheduling algorithm.
type Policy string

// Scheduling policies.
const (
	PolicyLAF   Policy = "laf"
	PolicyDelay Policy = "delay"
	PolicyFair  Policy = "fair"
)

// Options configures a Cluster.
type Options struct {
	Config
	// Policy selects the scheduling algorithm; default LAF.
	Policy Policy
	// LAF parameterizes the LAF policy (alpha, KDE bins/bandwidth/window).
	LAF scheduler.LAFConfig
	// DelayWait is the delay-scheduling wait; default 5 s as in Spark.
	DelayWait time.Duration
	// Network overrides the transport; default an in-process network.
	Network transport.Network
	// Retry tunes the transparent retry layer wrapped around the network
	// (zero fields select transport.DefaultRetryPolicy).
	Retry transport.RetryPolicy
	// DisableRetry mounts the network bare, without the retry layer.
	DisableRetry bool
	// BundleDir, when set, arms the flight recorder: a job failure or a
	// recovery sweep snapshots a cluster-wide debug bundle into this
	// directory as bundle-<job>-<reason>.json. Falls back to the
	// ECLIPSE_BUNDLE_DIR environment variable when empty.
	BundleDir string
}

// Cluster is a running EclipseMR deployment plus the job-scheduler role:
// the entry point for uploads and job submission. With the default
// in-process network it hosts every node in one process, which is how the
// examples, tests and benchmarks run; the same Node code serves TCP
// deployments via cmd/eclipse-node.
type Cluster struct {
	opts   Options
	net    transport.Network
	nodes  map[hashing.NodeID]*Node
	order  []hashing.NodeID
	sched  scheduler.Scheduler
	driver *mapreduce.Driver
	// driverOn is the node the current driver is bound to.
	driverOn hashing.NodeID
	// schedNodes tracks which workers hold slots in the scheduler.
	schedNodes map[hashing.NodeID]bool
}

// New boots a cluster of n in-process nodes named worker-00..worker-(n-1).
func New(n int, opts Options) (*Cluster, error) {
	if n <= 0 {
		return nil, fmt.Errorf("cluster: need at least one node, got %d", n)
	}
	names := make([]hashing.NodeID, n)
	for i := range names {
		names[i] = hashing.NodeID(fmt.Sprintf("worker-%02d", i))
	}
	return NewWithNodes(names, opts)
}

// NewWithNodes boots a cluster with explicit node IDs.
func NewWithNodes(ids []hashing.NodeID, opts Options) (*Cluster, error) {
	if len(ids) == 0 {
		return nil, fmt.Errorf("cluster: no node IDs")
	}
	opts.Config = opts.Config.withDefaults()
	if opts.Policy == "" {
		opts.Policy = PolicyLAF
	}
	if opts.LAF.KDE.Bins == 0 {
		opts.LAF = scheduler.DefaultLAFConfig()
	}
	if opts.DelayWait == 0 {
		opts.DelayWait = 5 * time.Second
	}
	net := opts.Network
	if net == nil {
		net = transport.NewLocal()
	}
	if !opts.DisableRetry {
		// Transient message loss (a chaos-injected drop, a TCP timeout) is
		// absorbed here; structural failures still surface immediately.
		net = transport.NewRetry(net, opts.Retry)
	}
	c := &Cluster{
		opts:       opts,
		net:        net,
		nodes:      make(map[hashing.NodeID]*Node),
		schedNodes: make(map[hashing.NodeID]bool),
	}
	ring := hashing.NewChordRing()
	for _, id := range ids {
		if err := ring.AddNode(id); err != nil {
			c.Close()
			return nil, err
		}
	}
	// The scheduler's initial range table comes from the placement ring of
	// the configured algorithm, built in the same member order nodes use
	// when they adopt the bootstrap view.
	schedRing := hashing.Ring(ring)
	if alg := opts.Config.Ring; alg != "" && alg != hashing.AlgorithmChord {
		pr, err := hashing.NewAlgorithmRing(alg)
		if err != nil {
			c.Close()
			return nil, err
		}
		for _, id := range ring.Members() {
			if err := pr.AddNode(id); err != nil {
				c.Close()
				return nil, err
			}
		}
		schedRing = pr
	}
	for _, id := range ids {
		// Origin-stamped facets let a fault-injecting network attribute
		// each node's outbound calls (asymmetric partitions, crash-stop).
		nodeNet := net
		if on, ok := net.(transport.OriginNetwork); ok {
			nodeNet = on.From(id)
		}
		node, err := NewNode(id, nodeNet, opts.Config)
		if err != nil {
			c.Close()
			return nil, err
		}
		if err := node.Start(); err != nil {
			c.Close()
			return nil, err
		}
		c.nodes[id] = node
		c.order = append(c.order, id)
	}
	sort.Slice(c.order, func(i, j int) bool { return c.order[i] < c.order[j] })

	// Bootstrap the resource manager on the highest-ID node — the same
	// node a bully election would pick, so a restarted cluster converges
	// to the same coordinator.
	mgrID := c.order[len(c.order)-1]
	mgrNode := c.nodes[mgrID]
	mgr := newManager(mgrNode, ring, 1)
	mgrNode.mu.Lock()
	mgrNode.mgr = mgr
	mgrNode.manager = mgrID
	mgrNode.mu.Unlock()
	mgr.broadcastView()

	var sched scheduler.Scheduler
	var err error
	switch opts.Policy {
	case PolicyLAF:
		sched, err = scheduler.NewLAF(opts.LAF, schedRing)
	case PolicyDelay:
		sched, err = scheduler.NewDelay(scheduler.DelayConfig{Wait: opts.DelayWait}, schedRing)
	case PolicyFair:
		sched, err = scheduler.NewFair(schedRing)
	default:
		err = fmt.Errorf("cluster: unknown policy %q", opts.Policy)
	}
	if err != nil {
		c.Close()
		return nil, err
	}
	c.sched = sched
	for _, id := range ids {
		sched.AddNode(id, opts.MapSlots)
		c.schedNodes[id] = true
	}
	c.attachScheduler(mgr)
	if err := c.rebindDriver(); err != nil {
		c.Close()
		return nil, err
	}
	return c, nil
}

// attachScheduler keeps the scheduler's worker set in sync with the
// manager's membership.
func (c *Cluster) attachScheduler(mgr *Manager) {
	mgr.OnChange(func(joined, failed []hashing.NodeID) {
		for _, id := range joined {
			if !c.schedNodes[id] {
				c.sched.AddNode(id, c.opts.MapSlots)
				c.schedNodes[id] = true
			}
		}
		for _, id := range failed {
			if c.schedNodes[id] {
				c.sched.RemoveNode(id)
				delete(c.schedNodes, id)
			}
		}
	})
}

// Manager returns the node currently holding the resource-manager role,
// or nil during a leadership gap.
func (c *Cluster) Manager() *Node {
	for _, id := range c.order {
		if n, ok := c.nodes[id]; ok && n.IsManager() {
			return n
		}
	}
	return nil
}

// rebindDriver points the job driver at the current manager node.
func (c *Cluster) rebindDriver() error {
	mgrNode := c.Manager()
	if mgrNode == nil {
		return fmt.Errorf("cluster: no resource manager is live")
	}
	if c.driver != nil && c.driverOn == mgrNode.ID {
		return nil
	}
	driverNet := c.net
	if on, ok := c.net.(transport.OriginNetwork); ok {
		driverNet = on.From(mgrNode.ID)
	}
	driver, err := mapreduce.NewDriver(mgrNode.ID, driverNet, mgrNode.fs, c.sched, mgrNode.Ring, c.opts.ReduceSlots)
	if err != nil {
		return err
	}
	// The driver's spans record on the manager node's tracer, so one
	// cluster.spans sweep collects driver and worker spans alike; the
	// driver's events likewise record on the manager node's ring.
	driver.SetTracer(mgrNode.tracer)
	driver.SetEvents(mgrNode.events)
	if dir := c.bundleDir(); dir != "" {
		driver.SetFlightRecorder(func(job, reason string) {
			c.captureBundle(dir, job, reason)
		})
	}
	// The old driver's dispatcher must stop before the new one pumps the
	// shared scheduler, or the two loops would steal each other's
	// assignments.
	if c.driver != nil {
		c.driver.Close()
	}
	// A newly elected manager needs the scheduler observer too.
	mgrNode.mu.Lock()
	mgr := mgrNode.mgr
	mgrNode.mu.Unlock()
	if mgr != nil && c.driverOn != mgrNode.ID {
		c.attachScheduler(mgr)
		// Reconcile scheduler membership with the manager's view.
		live := map[hashing.NodeID]bool{}
		for _, id := range mgr.Members() {
			live[id] = true
			if !c.schedNodes[id] {
				c.sched.AddNode(id, c.opts.MapSlots)
				c.schedNodes[id] = true
			}
		}
		for id := range c.schedNodes {
			if !live[id] {
				c.sched.RemoveNode(id)
				delete(c.schedNodes, id)
			}
		}
	}
	c.driver = driver
	c.driverOn = mgrNode.ID
	return nil
}

// Node returns a node by ID.
func (c *Cluster) Node(id hashing.NodeID) (*Node, bool) {
	n, ok := c.nodes[id]
	return n, ok
}

// Nodes lists live node IDs in sorted order.
func (c *Cluster) Nodes() []hashing.NodeID {
	out := make([]hashing.NodeID, 0, len(c.nodes))
	for _, id := range c.order {
		if _, ok := c.nodes[id]; ok {
			out = append(out, id)
		}
	}
	return out
}

// Scheduler exposes the scheduling policy (for stats).
func (c *Cluster) Scheduler() scheduler.Scheduler { return c.sched }

// anyNode returns some live node (preferring the manager).
func (c *Cluster) anyNode() (*Node, error) {
	if n := c.Manager(); n != nil {
		return n, nil
	}
	for _, id := range c.order {
		if n, ok := c.nodes[id]; ok {
			return n, nil
		}
	}
	return nil, fmt.Errorf("cluster: no live nodes")
}

// rootContext is the one place the facade mints a fresh root context.
// Cluster's ctx-less convenience methods sit at the top of their call
// trees (tests, examples, REPL-style drivers) where no caller context
// exists to thread; everything below them takes the returned ctx as a
// parameter, and every I/O-heavy method has a *Context variant for
// callers that do hold one.
//
//lint:ignore ctxflow the facade's ctx-less entry points root their call trees here; use the *Context variants to pass a real context
func rootContext() context.Context { return context.Background() }

// Upload stores a file in the DHT file system.
func (c *Cluster) Upload(name, owner string, perm dhtfs.Perm, data []byte) (dhtfs.Metadata, error) {
	return c.UploadContext(rootContext(), name, owner, perm, data)
}

// UploadContext is Upload with caller-controlled cancellation.
func (c *Cluster) UploadContext(ctx context.Context, name, owner string, perm dhtfs.Perm, data []byte) (dhtfs.Metadata, error) {
	n, err := c.anyNode()
	if err != nil {
		return dhtfs.Metadata{}, err
	}
	return n.fs.Upload(ctx, name, owner, perm, data, c.opts.BlockSize)
}

// UploadRecords stores a line-oriented file with record-aligned blocks.
func (c *Cluster) UploadRecords(name, owner string, perm dhtfs.Perm, data []byte, delim byte) (dhtfs.Metadata, error) {
	return c.UploadRecordsContext(rootContext(), name, owner, perm, data, delim)
}

// UploadRecordsContext is UploadRecords with caller-controlled cancellation.
func (c *Cluster) UploadRecordsContext(ctx context.Context, name, owner string, perm dhtfs.Perm, data []byte, delim byte) (dhtfs.Metadata, error) {
	n, err := c.anyNode()
	if err != nil {
		return dhtfs.Metadata{}, err
	}
	return n.fs.UploadRecords(ctx, name, owner, perm, data, c.opts.BlockSize, delim)
}

// ReadFile fetches a file from the DHT file system.
func (c *Cluster) ReadFile(name, user string) ([]byte, error) {
	return c.ReadFileContext(rootContext(), name, user)
}

// ReadFileContext is ReadFile with caller-controlled cancellation.
func (c *Cluster) ReadFileContext(ctx context.Context, name, user string) ([]byte, error) {
	n, err := c.anyNode()
	if err != nil {
		return nil, err
	}
	return n.fs.ReadFile(ctx, name, user)
}

// DeleteFile removes a file (owner only) from the DHT file system.
func (c *Cluster) DeleteFile(name, user string) error {
	return c.DeleteFileContext(rootContext(), name, user)
}

// DeleteFileContext is DeleteFile with caller-controlled cancellation.
func (c *Cluster) DeleteFileContext(ctx context.Context, name, user string) error {
	n, err := c.anyNode()
	if err != nil {
		return err
	}
	return n.fs.Delete(ctx, name, user)
}

// Run executes a MapReduce job to completion.
func (c *Cluster) Run(spec mapreduce.JobSpec) (mapreduce.Result, error) {
	if err := c.rebindDriver(); err != nil {
		return mapreduce.Result{}, err
	}
	return c.driver.Run(spec)
}

// RunContext executes a MapReduce job with caller-controlled
// cancellation (see mapreduce.Driver.RunContext).
func (c *Cluster) RunContext(ctx context.Context, spec mapreduce.JobSpec) (mapreduce.Result, error) {
	if err := c.rebindDriver(); err != nil {
		return mapreduce.Result{}, err
	}
	return c.driver.RunContext(ctx, spec)
}

// Resume adopts an interrupted job from its durable journal and drives it
// to completion on the current manager's driver, re-executing only the
// work the journal does not record as done. This is how the cluster picks
// a job back up after the driver (or its whole manager node) died mid-run.
func (c *Cluster) Resume(jobID string) (mapreduce.Result, error) {
	if err := c.rebindDriver(); err != nil {
		return mapreduce.Result{}, err
	}
	return c.driver.Resume(jobID)
}

// OrphanJobs lists journaled jobs that never reached the done phase — the
// candidates for Resume after a manager failover.
func (c *Cluster) OrphanJobs() ([]string, error) {
	if err := c.rebindDriver(); err != nil {
		return nil, err
	}
	n := c.Manager()
	if n == nil {
		return nil, fmt.Errorf("cluster: no resource manager is live")
	}
	return c.driver.Orphans(rootContext())
}

// Collect fetches and decodes a completed job's output pairs.
func (c *Cluster) Collect(res mapreduce.Result, user string) ([]mapreduce.KV, error) {
	return c.CollectContext(rootContext(), res, user)
}

// CollectContext is Collect with caller-controlled cancellation.
func (c *Cluster) CollectContext(ctx context.Context, res mapreduce.Result, user string) ([]mapreduce.KV, error) {
	if err := c.rebindDriver(); err != nil {
		return nil, err
	}
	return c.driver.Collect(ctx, res, user)
}

// DropIntermediates deletes a job's shuffle data cluster-wide.
func (c *Cluster) DropIntermediates(spec mapreduce.JobSpec) {
	if err := c.rebindDriver(); err == nil {
		c.driver.DropIntermediates(rootContext(), spec)
	}
}

// SetTracing turns span recording on or off on every live node. The
// driver records through the manager node's tracer, so it is covered too.
func (c *Cluster) SetTracing(on bool) {
	for _, n := range c.nodes {
		n.tracer.SetEnabled(on)
	}
}

// TraceSpans collects the retained spans of one trace (the job ID; empty
// selects everything) from every live node over the cluster.spans RPC,
// returning them deduped in canonical order plus the total number of
// spans nodes dropped before collection. Unreachable nodes are skipped —
// a trace survives node failures with a hole, not an error.
func (c *Cluster) TraceSpans(jobID string) ([]trace.Span, int64, error) {
	return c.TraceSpansContext(rootContext(), jobID)
}

// TraceSpansContext is TraceSpans with caller-controlled cancellation.
func (c *Cluster) TraceSpansContext(ctx context.Context, jobID string) ([]trace.Span, int64, error) {
	body, err := transport.Encode(SpansReq{Trace: jobID})
	if err != nil {
		return nil, 0, err
	}
	var all []trace.Span
	var dropped int64
	for _, id := range c.Nodes() {
		out, err := c.net.Call(ctx, id, MethodSpans, body)
		if err != nil {
			continue
		}
		var resp SpansResp
		if err := transport.Decode(out, &resp); err != nil {
			return nil, dropped, err
		}
		all = append(all, resp.Spans...)
		dropped += resp.Dropped
	}
	return trace.Dedupe(all), dropped, nil
}

// Events collects the retained structured events of one job (empty
// selects everything, including cluster-scoped membership events) from
// every live node over the cluster.events RPC. The union is deduped and
// merged into one deterministic timeline; the second return is the total
// number of events nodes overwrote before collection. Unreachable nodes
// are skipped — like a trace, an event timeline survives node failures
// with a hole, not an error.
func (c *Cluster) Events(jobID string) ([]events.Event, int64, error) {
	return c.EventsContext(rootContext(), jobID)
}

// EventsContext is Events with caller-controlled cancellation.
func (c *Cluster) EventsContext(ctx context.Context, jobID string) ([]events.Event, int64, error) {
	body, err := transport.Encode(EventsReq{Job: jobID})
	if err != nil {
		return nil, 0, err
	}
	var all []events.Event
	var dropped int64
	for _, id := range c.Nodes() {
		out, err := c.net.Call(ctx, id, MethodEvents, body)
		if err != nil {
			continue
		}
		var resp EventsResp
		if err := transport.Decode(out, &resp); err != nil {
			return nil, dropped, err
		}
		all = append(all, resp.Events...)
		dropped += resp.Dropped
	}
	return events.Merge(all), dropped, nil
}

// DebugBundle assembles a cluster-wide debug bundle for one job ("" =
// everything) with the stated capture reason, canonically encoded. The
// capture runs on the manager node (falling back to any live node), the
// same assembly the cluster.bundle RPC and the flight recorder use.
func (c *Cluster) DebugBundle(jobID, reason string) ([]byte, error) {
	return c.DebugBundleContext(rootContext(), jobID, reason)
}

// DebugBundleContext is DebugBundle with caller-controlled cancellation.
func (c *Cluster) DebugBundleContext(ctx context.Context, jobID, reason string) ([]byte, error) {
	n, err := c.anyNode()
	if err != nil {
		return nil, err
	}
	return n.BuildBundleBytes(ctx, jobID, reason)
}

// bundleDir resolves the flight-recorder directory: the explicit option
// wins, then the ECLIPSE_BUNDLE_DIR environment variable; empty disarms
// the recorder.
func (c *Cluster) bundleDir() string {
	if c.opts.BundleDir != "" {
		return c.opts.BundleDir
	}
	return os.Getenv("ECLIPSE_BUNDLE_DIR")
}

// captureBundle is the armed flight recorder: snapshot the cluster into
// <dir>/bundle-<job>-<reason>.json via the capturing node. Capture
// errors are recorded as a metric rather than surfaced, because the
// recorder fires on paths that are already failing.
func (c *Cluster) captureBundle(dir, job, reason string) {
	n, err := c.anyNode()
	if err != nil {
		return
	}
	if _, err := n.WriteBundleFile(rootContext(), dir, job, reason); err != nil {
		n.worker.Metrics().Counter("bundle.capture_errors").Inc()
		return
	}
	n.worker.Metrics().Counter("bundle.captured").Inc()
}

// Kill crashes a node without any cleanup handshake: it simply vanishes
// from the network, exactly as a machine failure would appear to its
// peers. Detection and recovery run through heartbeats, the resource
// manager and (if the manager died) election.
func (c *Cluster) Kill(id hashing.NodeID) {
	if n, ok := c.nodes[id]; ok {
		n.Close()
		delete(c.nodes, id)
	}
}

// FailNow is deterministic failure handling for tests and benchmarks: the
// node is killed and the resource manager is told immediately, skipping
// the heartbeat wait.
func (c *Cluster) FailNow(id hashing.NodeID) error {
	c.Kill(id)
	mgrNode := c.Manager()
	if mgrNode == nil {
		return fmt.Errorf("cluster: no manager to process the failure")
	}
	mgrNode.mu.Lock()
	mgr := mgrNode.mgr
	mgrNode.mu.Unlock()
	mgr.Fail(id)
	return nil
}

// MigrateMisplacedCaches runs the §II-E cache-migration option across the
// cluster: every node is told its current scheduler hash-key range and
// pulls cached input blocks that now fall in it from its ring neighbors.
// The paper disables this option for its experiments (few misplaced
// objects are ever needed); it is exposed for workloads with fast-moving
// range boundaries. Returns the number of blocks migrated.
func (c *Cluster) MigrateMisplacedCaches() (int, error) {
	table := c.sched.RangeTable()
	mgrNode := c.Manager()
	if mgrNode == nil {
		return 0, fmt.Errorf("cluster: no live manager")
	}
	ring := mgrNode.Ring()
	total := 0
	for _, id := range table.Servers() {
		if _, ok := c.nodes[id]; !ok {
			continue
		}
		start, end, ok := table.ServerRange(id)
		if !ok {
			continue
		}
		left, err := ring.Predecessor(id)
		if err != nil {
			return total, err
		}
		right, err := ring.Successor(id)
		if err != nil {
			return total, err
		}
		req := mapreduce.AdoptRangeReq{Start: start, End: end, Left: left, Right: right}
		body, err := transport.Encode(req)
		if err != nil {
			return total, err
		}
		out, err := c.net.Call(rootContext(), id, mapreduce.MethodAdoptRange, body)
		if err != nil {
			return total, err
		}
		var resp mapreduce.AdoptRangeResp
		if err := transport.Decode(out, &resp); err != nil {
			return total, err
		}
		total += resp.Migrated
	}
	return total, nil
}

// MetricsSnapshot aggregates every live node's metrics, the driver's and
// scheduler's counters and histograms, and the network layers' counters
// into one snapshot (values summed, histogram buckets merged).
func (c *Cluster) MetricsSnapshot() metrics.Snapshot {
	total := metrics.NewSnapshot()
	for _, n := range c.nodes {
		metrics.Merge(&total, n.MetricsSnapshot())
	}
	if c.driver != nil {
		metrics.Merge(&total, c.driver.Metrics().Snapshot())
	}
	if c.sched != nil {
		metrics.Merge(&total, c.sched.Metrics().Snapshot())
	}
	// Walk the transport decorator chain (Retry, Chaos, ...) and pick up
	// every layer that exports metrics.
	for net := c.net; net != nil; {
		if ms, ok := net.(transport.MetricsSource); ok {
			metrics.Merge(&total, ms.NetMetrics().Snapshot())
		}
		u, ok := net.(interface{ Unwrap() transport.Network })
		if !ok {
			break
		}
		net = u.Unwrap()
	}
	// Cluster-wide hit ratio must come from summed counters, not summed
	// per-node ratios.
	cs := c.CacheStats()
	total.Values["cache.hit_ratio_bp"] = int64(cs.HitRatio() * 10000)
	return total
}

// CacheStats aggregates every live node's combined iCache+oCache
// counters, the cluster-wide figure the paper reports as the cache hit
// ratio.
func (c *Cluster) CacheStats() cache.Stats {
	var total cache.Stats
	for _, n := range c.nodes {
		s := n.cache.CombinedStats()
		total.Hits += s.Hits
		total.Misses += s.Misses
		total.Insertions += s.Insertions
		total.Evictions += s.Evictions
		total.Expirations += s.Expirations
	}
	return total
}

// Close shuts every node down.
func (c *Cluster) Close() {
	if c.driver != nil {
		c.driver.Close()
		c.driver = nil
	}
	for id, n := range c.nodes {
		n.Close()
		delete(c.nodes, id)
	}
	if c.net != nil {
		// Visible discard: the cluster is going away with every node
		// already stopped, so a listener teardown error has no one left
		// to act on it.
		_ = c.net.Close()
	}
}
