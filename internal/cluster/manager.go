package cluster

import (
	"context"
	"sync"
	"time"

	"eclipsemr/internal/chord"
	"eclipsemr/internal/events"
	"eclipsemr/internal/hashing"
	"eclipsemr/internal/transport"
)

// Manager is the resource manager role (§II: "responsible for server
// join, leave, failure recovery, and file upload"). Exactly one live node
// holds it at a time; it owns the authoritative membership ring and epoch
// counter, disseminates views, verifies failure reports and directs
// re-replication. Scheduler integration happens through the OnChange
// callback, which the job-scheduler role uses to add and remove worker
// slots.
type Manager struct {
	node *Node
	// verify wraps the node's network with its own bounded retry for
	// suspect-verification pings: eviction is expensive (re-replication,
	// task failover), so one dropped verify packet on a lossy link must
	// not condemn a healthy node. Never Closed — closing a Retry closes
	// the shared inner network.
	verify transport.Network
	mu     sync.Mutex
	ring   *hashing.ChordRing
	epoch  uint64
	// onChange observers are invoked with every join and failure.
	onChange []func(joined, failed []hashing.NodeID)
	stopped  bool
}

// verifyRetryPolicy is the suspect-verification ping budget: generous
// attempts with short, deterministic backoff, so verification stays well
// under a heartbeat period even when several retries are needed.
func verifyRetryPolicy() transport.RetryPolicy {
	return transport.RetryPolicy{MaxAttempts: 5, BaseDelay: time.Millisecond,
		MaxDelay: 20 * time.Millisecond, Multiplier: 2, JitterFrac: 0.5, Seed: 1}
}

// newManager builds the role object on a node with an initial ring and
// epoch.
func newManager(n *Node, ring *hashing.ChordRing, epoch uint64) *Manager {
	return &Manager{
		node:   n,
		verify: transport.NewRetry(n.net, verifyRetryPolicy()),
		ring:   ring,
		epoch:  epoch,
	}
}

// start finishes promotion; currently a placeholder for symmetric
// shutdown via stop.
func (m *Manager) start() {}

// stop deactivates the role.
func (m *Manager) stop() {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.stopped = true
}

// OnChange registers a membership observer (the job scheduler).
func (m *Manager) OnChange(fn func(joined, failed []hashing.NodeID)) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.onChange = append(m.onChange, fn)
}

// Epoch returns the current membership epoch.
func (m *Manager) Epoch() uint64 {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.epoch
}

// Members returns the live membership in ring order.
func (m *Manager) Members() []hashing.NodeID {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.ring.Members()
}

// Join admits a new worker: it enters the ring, the epoch advances, the
// view is broadcast and data is re-balanced onto the newcomer.
func (m *Manager) Join(id hashing.NodeID) error {
	m.mu.Lock()
	if err := m.ring.AddNode(id); err != nil {
		m.mu.Unlock()
		return err
	}
	m.epoch++
	observers := append([]func(joined, failed []hashing.NodeID){}, m.onChange...)
	m.mu.Unlock()
	m.node.events.Emit(events.KindMembership, "member.join", events.F{Detail: string(id)})
	m.broadcastView()
	m.directRecovery()
	for _, fn := range observers {
		fn([]hashing.NodeID{id}, nil)
	}
	return nil
}

// reportSuspect handles a failure report from a neighbor heartbeat: the
// manager verifies the suspect itself before declaring it dead (a report
// may be due to a partition local to the reporter).
func (m *Manager) reportSuspect(suspect hashing.NodeID) {
	m.mu.Lock()
	if m.stopped {
		m.mu.Unlock()
		return
	}
	if _, ok := m.ring.Position(suspect); !ok {
		m.mu.Unlock()
		return // already removed
	}
	m.mu.Unlock()
	m.node.events.Emit(events.KindMembership, "member.suspect", events.F{Detail: string(suspect)})
	if err := m.verifyPing(suspect); err == nil {
		return // false alarm
	}
	m.Fail(suspect)
}

// verifyPing probes a suspect through the retried verification network:
// transient drops are absorbed by the retry budget, so only sustained
// unreachability condemns the node.
func (m *Manager) verifyPing(suspect hashing.NodeID) error {
	body, err := transport.Encode(ack{})
	if err != nil {
		return err
	}
	//lint:ignore ctxflow liveness probe on the manager's own clock; it belongs to no job or request, so there is no caller ctx to thread
	out, err := m.verify.Call(context.Background(), suspect, methodPing, body)
	if err != nil {
		return err
	}
	var resp pingResp
	return transport.Decode(out, &resp)
}

// Fail removes a dead worker from the membership, broadcasts the new view
// and directs every survivor to re-replicate, restoring the replication
// invariant from the copies the predecessor and successor hold.
func (m *Manager) Fail(id hashing.NodeID) {
	m.mu.Lock()
	if !m.ring.Remove(id) {
		m.mu.Unlock()
		return
	}
	m.epoch++
	observers := append([]func(joined, failed []hashing.NodeID){}, m.onChange...)
	m.mu.Unlock()
	m.node.events.Emit(events.KindMembership, "member.evict", events.F{Detail: string(id)})
	m.broadcastView()
	m.directRecovery()
	for _, fn := range observers {
		fn(nil, []hashing.NodeID{id})
	}
}

// view snapshots the authoritative view.
func (m *Manager) view() chord.View {
	m.mu.Lock()
	defer m.mu.Unlock()
	return chord.NewView(m.epoch, m.ring)
}

// broadcastView pushes the current view to every member (including the
// local node, through adoptView directly).
func (m *Manager) broadcastView() {
	v := m.view()
	m.node.adoptView(v, m.node.ID)
	for id := range v.Members {
		if id == m.node.ID {
			continue
		}
		_ = m.node.call(id, methodView, viewMsg{View: v, Manager: m.node.ID}, nil) // best effort
	}
}

// directRecovery asks every member to run re-replication against the new
// view. Errors are tolerated: the next membership change retries.
func (m *Manager) directRecovery() {
	v := m.view()
	for id := range v.Members {
		if id == m.node.ID {
			//lint:ignore ctxflow membership-change recovery runs on the manager's own authority; no request context exists
			_, _ = m.node.fs.ReReplicate(context.Background())
			continue
		}
		var resp recoverResp
		_ = m.node.call(id, methodRecover, ack{}, &resp)
	}
}
