package cluster

import (
	"bytes"
	"context"
	"strconv"
	"strings"
	"testing"
	"time"

	"eclipsemr/internal/dhtfs"
	"eclipsemr/internal/hashing"
	"eclipsemr/internal/mapreduce"
	"eclipsemr/internal/transport"
)

func init() {
	mapreduce.Register("cluster-wordcount", mapreduce.App{
		Map: func(_ mapreduce.Params, input []byte, emit mapreduce.Emit) error {
			for _, w := range strings.Fields(string(input)) {
				if err := emit(w, []byte("1")); err != nil {
					return err
				}
			}
			return nil
		},
		Reduce: func(_ mapreduce.Params, key string, values [][]byte, emit mapreduce.Emit) error {
			total := 0
			for _, v := range values {
				n, _ := strconv.Atoi(string(v))
				total += n
			}
			return emit(key, []byte(strconv.Itoa(total)))
		},
	})
}

func newTestCluster(t *testing.T, n int, opts Options) *Cluster {
	t.Helper()
	if opts.HeartbeatInterval == 0 {
		opts.HeartbeatInterval = 25 * time.Millisecond
	}
	if opts.CacheBytes == 0 {
		opts.CacheBytes = 8 << 20
	}
	if opts.BlockSize == 0 {
		opts.BlockSize = 512
	}
	c, err := New(n, opts)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(c.Close)
	return c
}

func TestBootstrapConvergesViews(t *testing.T) {
	c := newTestCluster(t, 5, Options{})
	mgr := c.Manager()
	if mgr == nil {
		t.Fatal("no manager after bootstrap")
	}
	// The bootstrap manager is the highest ID (bully convention).
	if mgr.ID != c.order[len(c.order)-1] {
		t.Fatalf("manager = %s", mgr.ID)
	}
	for _, id := range c.Nodes() {
		n, _ := c.Node(id)
		v := n.View()
		if v.Epoch != 1 || len(v.Members) != 5 {
			t.Fatalf("node %s view = epoch %d, %d members", id, v.Epoch, len(v.Members))
		}
		if n.ManagerID() != mgr.ID {
			t.Fatalf("node %s thinks manager is %s", id, n.ManagerID())
		}
	}
}

func TestClusterRunsJob(t *testing.T) {
	c := newTestCluster(t, 4, Options{})
	text := strings.Repeat("hello world hello cluster\n", 200)
	if _, err := c.UploadRecords("t.txt", "u", dhtfs.PermPublic, []byte(text), '\n'); err != nil {
		t.Fatal(err)
	}
	res, err := c.Run(mapreduce.JobSpec{
		ID: "j1", App: "cluster-wordcount", Inputs: []string{"t.txt"}, User: "u",
	})
	if err != nil {
		t.Fatal(err)
	}
	kvs, err := c.Collect(res, "u")
	if err != nil {
		t.Fatal(err)
	}
	counts := map[string]string{}
	for _, kv := range kvs {
		counts[kv.Key] = string(kv.Value)
	}
	if counts["hello"] != "400" || counts["world"] != "200" || counts["cluster"] != "200" {
		t.Fatalf("counts = %v", counts)
	}
}

func TestClusterPolicies(t *testing.T) {
	for _, p := range []Policy{PolicyLAF, PolicyDelay, PolicyFair} {
		t.Run(string(p), func(t *testing.T) {
			c := newTestCluster(t, 3, Options{Policy: p, DelayWait: 50 * time.Millisecond})
			if _, err := c.UploadRecords("x.txt", "u", dhtfs.PermPublic,
				[]byte(strings.Repeat("a b c\n", 100)), '\n'); err != nil {
				t.Fatal(err)
			}
			res, err := c.Run(mapreduce.JobSpec{
				ID: "p1", App: "cluster-wordcount", Inputs: []string{"x.txt"}, User: "u",
			})
			if err != nil {
				t.Fatal(err)
			}
			if len(res.OutputFiles) == 0 {
				t.Fatal("no output")
			}
		})
	}
}

func TestFileReadAfterFailNow(t *testing.T) {
	c := newTestCluster(t, 6, Options{})
	data := bytes.Repeat([]byte("0123456789"), 2000)
	if _, err := c.Upload("f.dat", "u", dhtfs.PermPublic, data); err != nil {
		t.Fatal(err)
	}
	// Deterministically fail a non-manager node.
	victim := c.order[0]
	if err := c.FailNow(victim); err != nil {
		t.Fatal(err)
	}
	got, err := c.ReadFile("f.dat", "u")
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, data) {
		t.Fatal("data corrupted after failure")
	}
	// Replication invariant restored: a second failure is survivable too.
	if err := c.FailNow(c.order[1]); err != nil {
		t.Fatal(err)
	}
	got, err = c.ReadFile("f.dat", "u")
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, data) {
		t.Fatal("data lost after second failure")
	}
}

func TestHeartbeatDetectsFailure(t *testing.T) {
	c := newTestCluster(t, 5, Options{
		Config: Config{HeartbeatInterval: 20 * time.Millisecond, HeartbeatTimeout: 60 * time.Millisecond},
	})
	victim := c.order[1] // not the manager (manager is highest ID)
	c.Kill(victim)
	deadline := time.Now().Add(5 * time.Second)
	for {
		mgr := c.Manager()
		if mgr != nil {
			mgr.mu.Lock()
			m := mgr.mgr
			mgr.mu.Unlock()
			alive := m.Members()
			found := false
			for _, id := range alive {
				if id == victim {
					found = true
				}
			}
			if !found {
				return // failure detected and membership updated
			}
		}
		if time.Now().After(deadline) {
			t.Fatal("failure not detected via heartbeats")
		}
		time.Sleep(20 * time.Millisecond)
	}
}

func TestManagerFailureTriggersElection(t *testing.T) {
	c := newTestCluster(t, 5, Options{
		Config: Config{HeartbeatInterval: 20 * time.Millisecond, HeartbeatTimeout: 60 * time.Millisecond},
	})
	oldMgr := c.Manager()
	if oldMgr == nil {
		t.Fatal("no initial manager")
	}
	c.Kill(oldMgr.ID)
	deadline := time.Now().Add(10 * time.Second)
	var newMgr *Node
	for {
		newMgr = c.Manager()
		if newMgr != nil && newMgr.ID != oldMgr.ID {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("no new manager elected")
		}
		time.Sleep(20 * time.Millisecond)
	}
	// The new manager must be the highest surviving ID.
	want := c.order[len(c.order)-2]
	if newMgr.ID != want {
		t.Fatalf("elected %s, want %s", newMgr.ID, want)
	}
	// Wait for the new view (without the dead manager) to spread.
	deadline = time.Now().Add(5 * time.Second)
	for {
		v := newMgr.View()
		if !v.Has(oldMgr.ID) {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("dead manager never left the view")
		}
		time.Sleep(20 * time.Millisecond)
	}
	// The cluster still runs jobs under the new manager.
	if _, err := c.UploadRecords("post.txt", "u", dhtfs.PermPublic,
		[]byte(strings.Repeat("x y\n", 50)), '\n'); err != nil {
		t.Fatal(err)
	}
	res, err := c.Run(mapreduce.JobSpec{
		ID: "post-election", App: "cluster-wordcount", Inputs: []string{"post.txt"}, User: "u",
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.OutputFiles) == 0 {
		t.Fatal("no output after election")
	}
}

func TestJoinExpandsCluster(t *testing.T) {
	c := newTestCluster(t, 3, Options{})
	data := bytes.Repeat([]byte("abcdef"), 1000)
	if _, err := c.Upload("grow.dat", "u", dhtfs.PermPublic, data); err != nil {
		t.Fatal(err)
	}
	// Boot a new node on the same network and have the manager admit it.
	newID := hashing.NodeID("worker-99")
	n, err := NewNode(newID, c.net, c.opts.Config)
	if err != nil {
		t.Fatal(err)
	}
	if err := n.Start(); err != nil {
		t.Fatal(err)
	}
	c.nodes[newID] = n
	c.order = append(c.order, newID)
	mgrNode := c.Manager()
	mgrNode.mu.Lock()
	mgr := mgrNode.mgr
	mgrNode.mu.Unlock()
	if err := mgr.Join(newID); err != nil {
		t.Fatal(err)
	}
	v := n.View()
	if !v.Has(newID) || v.Epoch < 2 {
		t.Fatalf("new node view = %+v", v)
	}
	// Data remains readable and the newcomer participates in jobs.
	got, err := c.ReadFile("grow.dat", "u")
	if err != nil || !bytes.Equal(got, data) {
		t.Fatalf("read after join: %v", err)
	}
	if _, err := c.UploadRecords("j.txt", "u", dhtfs.PermPublic,
		[]byte(strings.Repeat("m n\n", 100)), '\n'); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Run(mapreduce.JobSpec{
		ID: "after-join", App: "cluster-wordcount", Inputs: []string{"j.txt"}, User: "u",
	}); err != nil {
		t.Fatal(err)
	}
}

func TestCacheStatsAggregate(t *testing.T) {
	c := newTestCluster(t, 3, Options{})
	if _, err := c.UploadRecords("s.txt", "u", dhtfs.PermPublic,
		[]byte(strings.Repeat("q r s\n", 200)), '\n'); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 2; i++ {
		if _, err := c.Run(mapreduce.JobSpec{
			ID: "cs-" + strconv.Itoa(i), App: "cluster-wordcount",
			Inputs: []string{"s.txt"}, User: "u",
		}); err != nil {
			t.Fatal(err)
		}
	}
	st := c.CacheStats()
	if st.Hits == 0 {
		t.Fatalf("no cache hits across two identical jobs: %+v", st)
	}
}

func TestNewValidation(t *testing.T) {
	if _, err := New(0, Options{}); err == nil {
		t.Fatal("New(0) accepted")
	}
	if _, err := NewWithNodes(nil, Options{}); err == nil {
		t.Fatal("empty node list accepted")
	}
	if _, err := New(2, Options{Policy: "bogus"}); err == nil {
		t.Fatal("bogus policy accepted")
	}
}

func TestConfigDefaults(t *testing.T) {
	cfg := Config{}.withDefaults()
	if cfg.Replicas != 3 || cfg.MapSlots != 8 || cfg.ReduceSlots != 8 {
		t.Fatalf("defaults = %+v", cfg)
	}
	if cfg.HeartbeatTimeout < cfg.HeartbeatInterval {
		t.Fatal("timeout below interval")
	}
}

func TestMetricsSnapshotReflectsWork(t *testing.T) {
	c := newTestCluster(t, 3, Options{})
	if _, err := c.UploadRecords("m.txt", "u", dhtfs.PermPublic,
		[]byte(strings.Repeat("alpha beta\n", 300)), '\n'); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Run(mapreduce.JobSpec{
		ID: "metrics-job", App: "cluster-wordcount", Inputs: []string{"m.txt"}, User: "u",
	}); err != nil {
		t.Fatal(err)
	}
	snap := c.MetricsSnapshot()
	for _, key := range []string{
		"mr.map.tasks", "mr.reduce.tasks", "mr.shuffle.bytes",
		"fs.blocks.written", "fs.segments.appended", "cache.insertions",
	} {
		if snap.Get(key) <= 0 {
			t.Errorf("metric %s = %d, want > 0 (snapshot: %v)", key, snap.Get(key), snap.Values)
		}
	}
	if snap.Get("mr.reduce.keys") != 2 { // alpha, beta
		t.Errorf("mr.reduce.keys = %d", snap.Get("mr.reduce.keys"))
	}
	// Per-stage latency histograms must be populated by a real job run and
	// survive the cluster-wide bucket merge.
	for _, key := range []string{
		"mr.map.read_ns", "mr.map.compute_ns", "mr.shuffle.send_ns",
		"mr.reduce.compute_ns", "fs.write_block_ns", "sched.queue_wait_ns",
		"mr.driver.job_ns",
	} {
		h, ok := snap.Hists[key]
		if !ok || h.Count() == 0 {
			t.Errorf("histogram %s missing or empty (count=%d)", key, h.Count())
			continue
		}
		if h.Quantile(0.99) < h.Quantile(0.50) {
			t.Errorf("histogram %s quantiles not monotone", key)
		}
	}
	// The snapshot-level hit ratio must come from the summed counters.
	wantBP := snap.Get("cache.hits") * 10000 / (snap.Get("cache.hits") + snap.Get("cache.misses"))
	if got := snap.Get("cache.hit_ratio_bp"); got != wantBP {
		t.Errorf("cache.hit_ratio_bp = %d, want %d", got, wantBP)
	}
	// Per-node stats are reachable over the control plane too, and the
	// histogram state survives the gob wire format: at least one node ran
	// a timed stage, so the union over nodes must carry histograms.
	body, err := transport.Encode(struct{}{})
	if err != nil {
		t.Fatal(err)
	}
	wireHists := 0
	for _, id := range c.Nodes() {
		out, err := c.net.Call(context.Background(), id, MethodStats, body)
		if err != nil {
			t.Fatal(err)
		}
		var resp StatsResp
		if err := transport.Decode(out, &resp); err != nil {
			t.Fatal(err)
		}
		if resp.Node != id || len(resp.Metrics.Values) == 0 {
			t.Fatalf("stats resp = %+v", resp)
		}
		wireHists += len(resp.Metrics.Hists)
	}
	if wireHists == 0 {
		t.Fatal("no node's stats carry histograms over the wire")
	}
}
