package cluster

import (
	"fmt"
	"strconv"
	"strings"
	"testing"
	"time"

	"eclipsemr/internal/chord"
	"eclipsemr/internal/dhtfs"
	"eclipsemr/internal/hashing"
	"eclipsemr/internal/mapreduce"
)

func TestAdoptViewRejectsStaleEpoch(t *testing.T) {
	c := newTestCluster(t, 3, Options{})
	n, _ := c.Node(c.Nodes()[0])
	current := n.View()
	staleRing := hashing.NewChordRing()
	if err := staleRing.AddNode("imposter"); err != nil {
		t.Fatal(err)
	}
	stale := chord.NewView(0, staleRing) // epoch below current
	if n.adoptView(stale, "imposter") {
		t.Fatal("stale view adopted")
	}
	if got := n.View(); got.Epoch != current.Epoch || got.Has("imposter") {
		t.Fatalf("view changed by stale adopt: %+v", got)
	}
}

func TestSuspectFalseAlarmIgnored(t *testing.T) {
	c := newTestCluster(t, 3, Options{})
	mgrNode := c.Manager()
	mgr := mgrNode.Manager()
	victim := c.order[0]
	// The suspect is alive: the manager must verify and keep it.
	mgr.reportSuspect(victim)
	for _, id := range mgr.Members() {
		if id == victim {
			return
		}
	}
	t.Fatalf("live node %s removed on false alarm", victim)
}

func TestSuspectUnknownNodeIgnored(t *testing.T) {
	c := newTestCluster(t, 2, Options{})
	mgr := c.Manager().Manager()
	mgr.reportSuspect("never-existed")
	if len(mgr.Members()) != 2 {
		t.Fatalf("membership changed: %v", mgr.Members())
	}
}

func TestManagerEpochAdvancesPerChange(t *testing.T) {
	c := newTestCluster(t, 4, Options{})
	mgr := c.Manager().Manager()
	e0 := mgr.Epoch()
	if err := c.FailNow(c.order[0]); err != nil {
		t.Fatal(err)
	}
	if mgr.Epoch() != e0+1 {
		t.Fatalf("epoch = %d after failure, want %d", mgr.Epoch(), e0+1)
	}
	// Double-fail of the same node is a no-op.
	mgr.Fail(c.order[0])
	if mgr.Epoch() != e0+1 {
		t.Fatalf("epoch advanced on repeated Fail: %d", mgr.Epoch())
	}
}

// TestSoakJobsUnderChurn runs a stream of jobs while nodes fail and new
// nodes join — the end-to-end resilience story: every job that the
// framework accepts must return correct results, and data survives the
// churn within the replication factor.
func TestSoakJobsUnderChurn(t *testing.T) {
	if testing.Short() {
		t.Skip("soak test")
	}
	c := newTestCluster(t, 7, Options{})
	text := strings.Repeat("soak word storm\n", 400)
	if _, err := c.UploadRecords("soak.txt", "u", dhtfs.PermPublic, []byte(text), '\n'); err != nil {
		t.Fatal(err)
	}

	runJob := func(i int) error {
		res, err := c.Run(mapreduce.JobSpec{
			ID: fmt.Sprintf("soak-%d", i), App: "cluster-wordcount",
			Inputs: []string{"soak.txt"}, User: "u",
		})
		if err != nil {
			return err
		}
		kvs, err := c.Collect(res, "u")
		if err != nil {
			return err
		}
		counts := map[string]int{}
		for _, kv := range kvs {
			n, _ := strconv.Atoi(string(kv.Value))
			counts[kv.Key] = n
		}
		if counts["soak"] != 400 || counts["word"] != 400 || counts["storm"] != 400 {
			return fmt.Errorf("job %d wrong counts: %v", i, counts)
		}
		return nil
	}

	for round := 0; round < 3; round++ {
		if err := runJob(round * 10); err != nil {
			t.Fatalf("round %d pre-churn: %v", round, err)
		}
		// Fail one non-manager node deterministically.
		var victim hashing.NodeID
		mgrID := c.Manager().ID
		for _, id := range c.Nodes() {
			if id != mgrID {
				victim = id
				break
			}
		}
		if err := c.FailNow(victim); err != nil {
			t.Fatal(err)
		}
		if err := runJob(round*10 + 1); err != nil {
			t.Fatalf("round %d post-failure: %v", round, err)
		}
		// Admit a replacement node.
		newID := hashing.NodeID(fmt.Sprintf("worker-9%d", round))
		n, err := NewNode(newID, c.net, c.opts.Config)
		if err != nil {
			t.Fatal(err)
		}
		if err := n.Start(); err != nil {
			t.Fatal(err)
		}
		c.nodes[newID] = n
		c.order = append(c.order, newID)
		if err := c.Manager().Manager().Join(newID); err != nil {
			t.Fatal(err)
		}
		if err := runJob(round*10 + 2); err != nil {
			t.Fatalf("round %d post-join: %v", round, err)
		}
	}
	// The original file is still fully intact after three fail+join cycles.
	got, err := c.ReadFile("soak.txt", "u")
	if err != nil {
		t.Fatal(err)
	}
	if string(got) != text {
		t.Fatal("input corrupted by churn")
	}
	// Give the async view/heartbeat machinery a moment, then verify the
	// membership settled at 7 nodes again.
	deadline := time.Now().Add(3 * time.Second)
	for {
		if len(c.Manager().Manager().Members()) == 7 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("membership = %v", c.Manager().Manager().Members())
		}
		time.Sleep(20 * time.Millisecond)
	}
}

// TestLAFCacheLocalityBeatsFair shows the locality property end to end on
// the real engine: re-running the same job under LAF reuses the caches
// that the first run populated (deterministic hash-range placement),
// while the locality-unaware Fair policy scatters tasks and misses.
func TestLAFCacheLocalityBeatsFair(t *testing.T) {
	run := func(policy Policy) float64 {
		c := newTestCluster(t, 5, Options{Policy: policy, Config: Config{CacheBytes: 32 << 20}})
		text := strings.Repeat("locality probe text\n", 2000)
		if _, err := c.UploadRecords("loc.txt", "u", dhtfs.PermPublic, []byte(text), '\n'); err != nil {
			t.Fatal(err)
		}
		// One cold run to populate the caches, then measure the second run:
		// under Fair each block's re-run lands on a random node, so only a
		// fraction finds the copy the first run cached.
		var warm mapreduce.Result
		for i := 0; i < 2; i++ {
			res, err := c.Run(mapreduce.JobSpec{
				ID: fmt.Sprintf("loc-%s-%d", policy, i), App: "cluster-wordcount",
				Inputs: []string{"loc.txt"}, User: "u",
			})
			if err != nil {
				t.Fatal(err)
			}
			warm = res
		}
		total := warm.CacheHits + warm.CacheMisses
		if total == 0 {
			t.Fatal("no block reads recorded")
		}
		return float64(warm.CacheHits) / float64(total)
	}
	laf := run(PolicyLAF)
	fair := run(PolicyFair)
	t.Logf("warm-run map cache hit ratio: LAF %.2f, Fair %.2f", laf, fair)
	if laf < 0.9 {
		t.Fatalf("LAF warm hit ratio %.2f, want ~1 (deterministic placement)", laf)
	}
	if laf <= fair {
		t.Fatalf("LAF hit ratio %.2f not above Fair %.2f", laf, fair)
	}
}
