package cluster

import (
	"context"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"

	"eclipsemr/internal/bundle"
	"eclipsemr/internal/events"
	"eclipsemr/internal/hashing"
	"eclipsemr/internal/mapreduce"
	"eclipsemr/internal/trace"
)

// Debug-bundle assembly: any node can build a cluster-wide bundle by
// fanning the collection RPCs (cluster.events, cluster.spans,
// cluster.stats) over its membership view. Collection is
// replica-tolerant on purpose — bundles are captured exactly when parts
// of the cluster are failing, so an unreachable member contributes
// nothing instead of failing the capture. The merged event timeline and
// the canonical encoding make two captures of the same quiesced state
// byte-identical.

// BuildBundle assembles a debug bundle for one job ("" = everything)
// with the stated capture reason. The local node is read directly; every
// other view member is asked over the network and skipped if
// unreachable.
func (n *Node) BuildBundle(ctx context.Context, job, reason string) (*bundle.Bundle, error) {
	n.mu.Lock()
	view := n.view
	manager := n.manager
	n.mu.Unlock()

	members := make([]hashing.NodeID, 0, len(view.Members))
	for id := range view.Members {
		members = append(members, id)
	}
	sort.Slice(members, func(i, j int) bool { return members[i] < members[j] })
	if len(members) == 0 {
		members = []hashing.NodeID{n.ID} // not yet in a view: capture locally
	}

	b := &bundle.Bundle{
		Reason:    reason,
		Node:      string(n.ID),
		Job:       job,
		CreatedNS: n.events.NowNS(),
		Membership: bundle.Membership{
			Manager: string(manager),
			Epoch:   view.Epoch,
		},
	}
	for _, id := range members {
		b.Membership.Members = append(b.Membership.Members, string(id))
	}

	for _, id := range members {
		evs, evDropped, spans, spDropped, stats, ok := n.collectFrom(ctx, id, job)
		if !ok {
			continue
		}
		b.Events = append(b.Events, evs...)
		b.EventsDropped += evDropped
		b.Spans = append(b.Spans, spans...)
		b.SpansDropped += spDropped
		b.Metrics = append(b.Metrics, stats)
	}

	// Journal state lives in the DHT file system, not on any one node;
	// one replicated read covers the cluster. Skipped on error for the
	// same reason unreachable members are.
	if snaps, err := mapreduce.JournalSnapshots(ctx, n.fs, job); err == nil {
		for _, s := range snaps {
			b.Journal = append(b.Journal, bundle.JournalState{
				Job: s.Job, Phase: s.Phase, Generation: s.Generation,
				MapsDone: s.MapsDone, PartsDone: s.PartsDone, Attempts: s.Attempts,
			})
		}
	}
	return b, nil
}

// collectFrom gathers one member's events, spans and metrics. The local
// node short-circuits to in-process reads; remote members that fail any
// of the three calls are dropped wholesale (ok=false) so a half-answered
// node cannot skew the capture.
func (n *Node) collectFrom(ctx context.Context, id hashing.NodeID, job string) (
	evs []events.Event, evDropped int64, spans []trace.Span, spDropped int64,
	stats bundle.NodeMetrics, ok bool) {
	if id == n.ID {
		return n.events.Events(job, 0), n.events.Dropped(),
			n.tracer.Spans(job), n.tracer.Dropped(),
			bundle.NodeMetrics{Node: string(n.ID), Values: n.MetricsSnapshot().Values}, true
	}
	var er EventsResp
	if err := n.callCtx(ctx, id, MethodEvents, EventsReq{Job: job}, &er); err != nil {
		return nil, 0, nil, 0, bundle.NodeMetrics{}, false
	}
	var sr SpansResp
	if err := n.callCtx(ctx, id, MethodSpans, SpansReq{Trace: job}, &sr); err != nil {
		return nil, 0, nil, 0, bundle.NodeMetrics{}, false
	}
	var mr StatsResp
	if err := n.callCtx(ctx, id, MethodStats, ack{}, &mr); err != nil {
		return nil, 0, nil, 0, bundle.NodeMetrics{}, false
	}
	return er.Events, er.Dropped, sr.Spans, sr.Dropped,
		bundle.NodeMetrics{Node: string(id), Values: mr.Metrics.Values}, true
}

// BuildBundleBytes is BuildBundle canonically encoded (the form served
// over cluster.bundle and written to disk).
func (n *Node) BuildBundleBytes(ctx context.Context, job, reason string) ([]byte, error) {
	b, err := n.BuildBundle(ctx, job, reason)
	if err != nil {
		return nil, err
	}
	return bundle.Encode(b)
}

// WriteBundleFile captures a bundle into <dir>/BundleFileName(job,
// reason), creating dir if needed, and returns the written path.
// Deterministic naming overwrites an earlier capture of the same (job,
// reason) — the latest state of an incident is the one worth keeping.
func (n *Node) WriteBundleFile(ctx context.Context, dir, job, reason string) (string, error) {
	data, err := n.BuildBundleBytes(ctx, job, reason)
	if err != nil {
		return "", err
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return "", err
	}
	path := filepath.Join(dir, BundleFileName(job, reason))
	if err := os.WriteFile(path, data, 0o644); err != nil {
		return "", err
	}
	return path, nil
}

// BundleFileName maps (job, reason) onto one flat, filesystem-safe name.
func BundleFileName(job, reason string) string {
	clean := func(s string) string {
		return strings.Map(func(r rune) rune {
			switch {
			case r >= 'a' && r <= 'z', r >= 'A' && r <= 'Z', r >= '0' && r <= '9',
				r == '-', r == '_', r == '.':
				return r
			default:
				return '_'
			}
		}, s)
	}
	if job == "" {
		job = "all"
	}
	return fmt.Sprintf("bundle-%s-%s.json", clean(job), clean(reason))
}

// Health is one node's liveness summary, served on the private metrics
// mux as /healthz and /readyz.
type Health struct {
	Node string
	// Ready reports the node has adopted a membership view that contains
	// it — it can place blocks and receive tasks.
	Ready   bool
	Manager string
	Epoch   uint64
	Members int
	// EventsDropped / SpansDropped count ring overwrites: rising values
	// mean the flight recorder's history window is shorter than the
	// incident being debugged.
	EventsDropped int64
	SpansDropped  int64
}

// Health snapshots the node's liveness summary.
func (n *Node) Health() Health {
	n.mu.Lock()
	view := n.view
	manager := n.manager
	n.mu.Unlock()
	_, inView := view.Members[n.ID]
	return Health{
		Node:          string(n.ID),
		Ready:         inView,
		Manager:       string(manager),
		Epoch:         view.Epoch,
		Members:       len(view.Members),
		EventsDropped: n.events.Dropped(),
		SpansDropped:  n.tracer.Dropped(),
	}
}
