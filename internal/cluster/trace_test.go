package cluster

import (
	"strings"
	"testing"
	"time"

	"eclipsemr/internal/dhtfs"
	"eclipsemr/internal/mapreduce"
	"eclipsemr/internal/trace"
	"eclipsemr/internal/transport"
)

// traceIndex summarizes one collected trace for assertions.
type traceIndex struct {
	names     map[string]bool
	nodes     map[string]bool
	cacheVals map[string]bool
	retries   int
}

func indexSpans(spans []trace.Span) traceIndex {
	ix := traceIndex{
		names: map[string]bool{}, nodes: map[string]bool{}, cacheVals: map[string]bool{},
	}
	for _, s := range spans {
		ix.names[s.Name] = true
		ix.nodes[s.Node] = true
		for _, a := range s.Annotations {
			if a.Key == "cache" {
				ix.cacheVals[a.Value] = true
			}
			if a.Key == "retry" {
				ix.retries++
			}
		}
		for _, e := range s.Events {
			if strings.Contains(e.Msg, "retry attempt=") {
				ix.retries++
			}
		}
	}
	return ix
}

// TestClusterTraceEndToEnd is the real-engine acceptance path: a 4-node
// WordCount over a lossy chaos network, traced end to end. The collected
// span tree must cover driver→map→shuffle→reduce across every node, the
// second (warm) job must carry cache=hit annotations, drops must surface
// as retry annotations, and the Chrome export must validate.
func TestClusterTraceEndToEnd(t *testing.T) {
	chaos := transport.NewChaos(transport.NewLocal(), transport.ChaosConfig{Seed: 42})
	c := newTestCluster(t, 4, Options{
		Network: chaos,
		Retry:   transport.RetryPolicy{MaxAttempts: 5, BaseDelay: 100 * time.Microsecond},
	})
	c.SetTracing(true)

	text := strings.Repeat("pack my box with five dozen liquor jugs\n", 800)
	if _, err := c.UploadRecords("trace.txt", "u", dhtfs.PermPublic, []byte(text), '\n'); err != nil {
		t.Fatal(err)
	}
	chaos.SetDrop(0.08) // upload ran fault-free; the jobs do not

	spec := mapreduce.JobSpec{
		App: "cluster-wordcount", Inputs: []string{"trace.txt"}, User: "u", MaxAttempts: 5,
	}
	var indexes []traceIndex
	for _, id := range []string{"trace-wc-cold", "trace-wc-warm"} {
		spec.ID = id
		if _, err := c.Run(spec); err != nil {
			t.Fatalf("job %s: %v", id, err)
		}
		spans, _, err := c.TraceSpans(id)
		if err != nil {
			t.Fatalf("TraceSpans(%s): %v", id, err)
		}
		if len(spans) == 0 {
			t.Fatalf("job %s collected no spans", id)
		}

		tree := trace.BuildTree(spans)
		if len(tree) == 0 || tree[0].Span.Name != "driver.job" {
			t.Fatalf("job %s: tree does not start at driver.job (%d roots)", id, len(tree))
		}
		data, err := trace.ChromeTrace(spans)
		if err != nil {
			t.Fatalf("ChromeTrace(%s): %v", id, err)
		}
		if err := trace.ValidateChrome(data); err != nil {
			t.Fatalf("job %s: exported trace invalid: %v", id, err)
		}

		ix := indexSpans(spans)
		for _, want := range []string{
			"driver.job", "driver.map_task", "task.map", "map.read", "map.compute",
			"shuffle.send", "driver.reduce_task", "task.reduce", "shuffle.recv",
			"reduce.compute", "reduce.write", "fs.write_block",
		} {
			if !ix.names[want] {
				t.Errorf("job %s: no %q span (have %v)", id, want, ix.names)
			}
		}
		for _, n := range c.Nodes() {
			if !ix.nodes[string(n)] {
				t.Errorf("job %s: no spans from node %s (have %v)", id, n, ix.nodes)
			}
		}
		indexes = append(indexes, ix)
	}

	// The first job reads cold (misses), the second hits the warm iCache.
	if !indexes[0].cacheVals["miss"] {
		t.Errorf("cold job: no cache=miss annotation, got %v", indexes[0].cacheVals)
	}
	if !indexes[1].cacheVals["hit"] {
		t.Errorf("warm job: no cache=hit annotation, got %v", indexes[1].cacheVals)
	}
	// At 8% drop over hundreds of traced RPCs the retry layer must have
	// fired inside at least one traced call.
	if total := indexes[0].retries + indexes[1].retries; total == 0 {
		t.Error("no retry annotations or events in either trace despite 8% drop rate")
	}
}

// TestTracingDisabledByDefault pins the off switch on the real engine: a
// cluster without SetTracing records nothing and pays no span costs.
func TestTracingDisabledByDefault(t *testing.T) {
	c := newTestCluster(t, 3, Options{})
	text := strings.Repeat("a b c\n", 200)
	if _, err := c.UploadRecords("off.txt", "u", dhtfs.PermPublic, []byte(text), '\n'); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Run(mapreduce.JobSpec{
		ID: "off-wc", App: "cluster-wordcount", Inputs: []string{"off.txt"}, User: "u",
	}); err != nil {
		t.Fatal(err)
	}
	spans, dropped, err := c.TraceSpans("off-wc")
	if err != nil {
		t.Fatal(err)
	}
	if len(spans) != 0 || dropped != 0 {
		t.Fatalf("disabled tracing collected %d spans (%d dropped)", len(spans), dropped)
	}
}
