// Package chord implements the DHT routing machinery of EclipseMR's file
// system layer: per-node finger tables in the style of Chord [29], the
// one-hop routing configuration the paper adopts for cluster-scale
// deployments (m chosen so every server knows every other, after [13]),
// and epoch-numbered membership views that the resource manager
// disseminates on join, leave and failure.
package chord

import (
	"errors"
	"fmt"

	"eclipsemr/internal/hashing"
)

// finger is one routing-table entry: the node succeeding start on the ring.
type finger struct {
	start hashing.Key
	node  hashing.NodeID
	pos   hashing.Key
}

// FingerTable is one node's DHT routing table. With m fingers the i-th
// entry points at successor(self + 2^i); when 2^m - 1 >= ring size the
// table effectively contains every server and lookups resolve in one hop.
type FingerTable struct {
	self    hashing.NodeID
	selfPos hashing.Key
	succ    hashing.NodeID
	succPos hashing.Key
	fingers []finger
}

// Build constructs the finger table for node self over the given ring with
// m entries. m must be in [1, 64].
func Build(ring *hashing.ChordRing, self hashing.NodeID, m int) (*FingerTable, error) {
	if m < 1 || m > 64 {
		return nil, fmt.Errorf("chord: m must be in [1,64], got %d", m)
	}
	selfPos, ok := ring.Position(self)
	if !ok {
		return nil, fmt.Errorf("chord: node %s not on ring", self)
	}
	succ, err := ring.Successor(self)
	if err != nil {
		return nil, err
	}
	succPos, _ := ring.Position(succ)
	ft := &FingerTable{self: self, selfPos: selfPos, succ: succ, succPos: succPos}
	for i := 0; i < m; i++ {
		start := selfPos + hashing.Key(uint64(1)<<uint(i))
		node, err := ring.Owner(start)
		if err != nil {
			return nil, err
		}
		pos, _ := ring.Position(node)
		ft.fingers = append(ft.fingers, finger{start: start, node: node, pos: pos})
	}
	return ft, nil
}

// The paper sets m "to the total number of servers to enable the one hop
// DHT routing [13]": each server stores complete routing information, so
// lookups resolve directly at the owner. BuildOneHopRoutes models that
// default; BuildRoutes with finger tables models the classic multi-hop
// DHT used "if zero hop routing is not enabled".

// Self returns the owning node.
func (ft *FingerTable) Self() hashing.NodeID { return ft.self }

// Successor returns the node's direct ring successor.
func (ft *FingerTable) Successor() hashing.NodeID { return ft.succ }

// Len returns the number of finger entries.
func (ft *FingerTable) Len() int { return len(ft.fingers) }

// NextHop returns the node to forward a lookup for key k to, and whether
// the lookup is already resolved (self owns k, or the successor owns k so
// the successor is the final answer).
func (ft *FingerTable) NextHop(k hashing.Key) (node hashing.NodeID, resolved bool) {
	// k in (self, successor] => successor owns k.
	if hashing.Between(k, ft.selfPos, ft.succPos) {
		return ft.succ, true
	}
	// Closest preceding finger: the finger whose position most closely
	// precedes k clockwise from self.
	best := ft.succ
	bestPos := ft.succPos
	for _, f := range ft.fingers {
		if f.node == ft.self {
			continue
		}
		if hashing.Between(f.pos, ft.selfPos, k-1) && hashing.Distance(f.pos, k) < hashing.Distance(bestPos, k) {
			best, bestPos = f.node, f.pos
		}
	}
	return best, false
}

// Routes holds the finger tables of every node, supporting full lookups
// with hop counting. The real cluster performs the same walk over RPC;
// Routes exists for the routing ablation and for unit testing the
// topology logic without a network.
type Routes struct {
	ring   *hashing.ChordRing
	tables map[hashing.NodeID]*FingerTable
	oneHop bool
}

// BuildRoutes constructs finger tables for every ring member (multi-hop
// routing).
func BuildRoutes(ring *hashing.ChordRing, m int) (*Routes, error) {
	if ring.Len() == 0 {
		return nil, hashing.ErrEmptyRing
	}
	r := &Routes{ring: ring, tables: make(map[hashing.NodeID]*FingerTable)}
	for _, id := range ring.Members() {
		ft, err := Build(ring, id, m)
		if err != nil {
			return nil, err
		}
		r.tables[id] = ft
	}
	return r, nil
}

// BuildOneHopRoutes constructs the paper's default topology: every server
// holds the complete ring, so any lookup is answered by forwarding
// directly to the owner.
func BuildOneHopRoutes(ring *hashing.ChordRing) (*Routes, error) {
	if ring.Len() == 0 {
		return nil, hashing.ErrEmptyRing
	}
	return &Routes{ring: ring, oneHop: true}, nil
}

// Table returns the finger table of a node.
func (r *Routes) Table(id hashing.NodeID) (*FingerTable, bool) {
	ft, ok := r.tables[id]
	return ft, ok
}

// ErrRoutingLoop reports a lookup that failed to converge, which indicates
// inconsistent finger tables.
var ErrRoutingLoop = errors.New("chord: lookup did not converge")

// Route resolves key k starting at node from, returning the full node path
// (excluding from, including the owner). Path length is the hop count.
func (r *Routes) Route(from hashing.NodeID, k hashing.Key) ([]hashing.NodeID, error) {
	if r.oneHop {
		owner, err := r.ring.Owner(k)
		if err != nil {
			return nil, err
		}
		return []hashing.NodeID{owner}, nil
	}
	cur := from
	var path []hashing.NodeID
	limit := 2*r.ring.Len() + 64
	for step := 0; step < limit; step++ {
		ft, ok := r.tables[cur]
		if !ok {
			return nil, fmt.Errorf("chord: no table for %s", cur)
		}
		if r.ring.Owns(cur, k) {
			if len(path) == 0 {
				path = append(path, cur)
			}
			return path, nil
		}
		next, resolved := ft.NextHop(k)
		path = append(path, next)
		if resolved {
			return path, nil
		}
		cur = next
	}
	return nil, ErrRoutingLoop
}

// View is an epoch-numbered snapshot of cluster membership. The resource
// manager increments the epoch on every join/leave/failure and pushes the
// view to all workers; stale epochs are ignored, making dissemination
// idempotent and order-insensitive.
type View struct {
	Epoch uint64
	// Members maps each node to its ring position.
	Members map[hashing.NodeID]hashing.Key
}

// NewView builds a view from a ring.
func NewView(epoch uint64, ring *hashing.ChordRing) View {
	v := View{Epoch: epoch, Members: make(map[hashing.NodeID]hashing.Key, ring.Len())}
	for _, id := range ring.Members() {
		pos, _ := ring.Position(id)
		v.Members[id] = pos
	}
	return v
}

// Ring reconstructs the consistent-hash ring described by the view.
func (v View) Ring() (*hashing.ChordRing, error) {
	r := hashing.NewChordRing()
	for id, pos := range v.Members {
		if err := r.Add(id, pos); err != nil {
			return nil, err
		}
	}
	return r, nil
}

// Has reports membership of a node.
func (v View) Has(id hashing.NodeID) bool {
	_, ok := v.Members[id]
	return ok
}
