package chord

import (
	"fmt"
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"eclipsemr/internal/hashing"
)

func buildRing(t testing.TB, n int, seed int64) *hashing.ChordRing {
	t.Helper()
	r := hashing.NewChordRing()
	rng := rand.New(rand.NewSource(seed))
	for i := 0; i < n; i++ {
		if err := r.Add(hashing.NodeID(fmt.Sprintf("n%03d", i)), hashing.Key(rng.Uint64())); err != nil {
			t.Fatal(err)
		}
	}
	return r
}

func TestBuildValidation(t *testing.T) {
	ring := buildRing(t, 4, 1)
	if _, err := Build(ring, "n000", 0); err == nil {
		t.Fatal("m=0 accepted")
	}
	if _, err := Build(ring, "n000", 65); err == nil {
		t.Fatal("m=65 accepted")
	}
	if _, err := Build(ring, "ghost", 8); err == nil {
		t.Fatal("unknown node accepted")
	}
}

func TestFingerEntriesAreSuccessors(t *testing.T) {
	ring := buildRing(t, 16, 2)
	ft, err := Build(ring, "n005", 64)
	if err != nil {
		t.Fatal(err)
	}
	pos, _ := ring.Position("n005")
	for i, f := range ft.fingers {
		start := pos + hashing.Key(uint64(1)<<uint(i))
		want, _ := ring.Owner(start)
		if f.node != want {
			t.Fatalf("finger[%d] = %s want %s", i, f.node, want)
		}
	}
	if ft.Len() != 64 || ft.Self() != "n005" {
		t.Fatalf("Len=%d Self=%s", ft.Len(), ft.Self())
	}
	succ, _ := ring.Successor("n005")
	if ft.Successor() != succ {
		t.Fatalf("Successor = %s want %s", ft.Successor(), succ)
	}
}

func TestOneHopRouting(t *testing.T) {
	ring := buildRing(t, 32, 3)
	routes, err := BuildOneHopRoutes(ring)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(4))
	for i := 0; i < 500; i++ {
		k := hashing.Key(rng.Uint64())
		from := hashing.NodeID(fmt.Sprintf("n%03d", rng.Intn(32)))
		path, err := routes.Route(from, k)
		if err != nil {
			t.Fatal(err)
		}
		owner, _ := ring.Owner(k)
		if len(path) != 1 || path[0] != owner {
			t.Fatalf("one-hop route for %v = %v, owner is %s", k, path, owner)
		}
	}
	if _, err := BuildOneHopRoutes(hashing.NewChordRing()); err == nil {
		t.Fatal("BuildOneHopRoutes accepted empty ring")
	}
}

func TestLogHopRoutingBound(t *testing.T) {
	const n = 64
	ring := buildRing(t, n, 5)
	// Small m still routes correctly, in O(log N) hops.
	m := 64 // full span is needed for correctness over the 64-bit space
	routes, err := BuildRoutes(ring, m)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(6))
	bound := int(math.Log2(n)) + 2
	for i := 0; i < 300; i++ {
		k := hashing.Key(rng.Uint64())
		from := hashing.NodeID(fmt.Sprintf("n%03d", rng.Intn(n)))
		path, err := routes.Route(from, k)
		if err != nil {
			t.Fatal(err)
		}
		if len(path) > bound {
			t.Fatalf("route took %d hops, log bound %d", len(path), bound)
		}
	}
}

// Property: routing always terminates at the ring owner regardless of the
// starting node.
func TestRouteAlwaysFindsOwner(t *testing.T) {
	ring := buildRing(t, 20, 7)
	routes, err := BuildRoutes(ring, 64)
	if err != nil {
		t.Fatal(err)
	}
	members := ring.Members()
	f := func(k hashing.Key, fromIdx uint8) bool {
		from := members[int(fromIdx)%len(members)]
		path, err := routes.Route(from, k)
		if err != nil || len(path) == 0 {
			return false
		}
		owner, _ := ring.Owner(k)
		return path[len(path)-1] == owner
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 1000}); err != nil {
		t.Fatal(err)
	}
}

func TestRouteFromOwnerIsZeroForwarding(t *testing.T) {
	ring := buildRing(t, 8, 8)
	routes, _ := BuildRoutes(ring, 64)
	k := hashing.Key(12345)
	owner, _ := ring.Owner(k)
	path, err := routes.Route(owner, k)
	if err != nil {
		t.Fatal(err)
	}
	if len(path) != 1 || path[0] != owner {
		t.Fatalf("path from owner = %v", path)
	}
}

func TestBuildRoutesEmptyRing(t *testing.T) {
	if _, err := BuildRoutes(hashing.NewChordRing(), 8); err == nil {
		t.Fatal("empty ring accepted")
	}
}

func TestSingleNodeRouting(t *testing.T) {
	ring := hashing.NewChordRing()
	if err := ring.AddNode("solo"); err != nil {
		t.Fatal(err)
	}
	routes, err := BuildRoutes(ring, 64)
	if err != nil {
		t.Fatal(err)
	}
	path, err := routes.Route("solo", 99)
	if err != nil || len(path) != 1 || path[0] != "solo" {
		t.Fatalf("path = %v err = %v", path, err)
	}
}

func TestViewRoundTrip(t *testing.T) {
	ring := buildRing(t, 10, 9)
	v := NewView(7, ring)
	if v.Epoch != 7 || len(v.Members) != 10 {
		t.Fatalf("view = %+v", v)
	}
	if !v.Has("n000") || v.Has("ghost") {
		t.Fatal("Has wrong")
	}
	r2, err := v.Ring()
	if err != nil {
		t.Fatal(err)
	}
	if r2.Len() != ring.Len() {
		t.Fatalf("reconstructed ring has %d members", r2.Len())
	}
	for _, id := range ring.Members() {
		p1, _ := ring.Position(id)
		p2, ok := r2.Position(id)
		if !ok || p1 != p2 {
			t.Fatalf("position mismatch for %s", id)
		}
	}
}

func TestTableAccessor(t *testing.T) {
	ring := buildRing(t, 4, 10)
	routes, _ := BuildRoutes(ring, 8)
	if _, ok := routes.Table("n000"); !ok {
		t.Fatal("Table(n000) missing")
	}
	if _, ok := routes.Table("ghost"); ok {
		t.Fatal("Table(ghost) present")
	}
}
