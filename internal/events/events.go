// Package events is the always-on structured event log of the EclipseMR
// runtime — the black-box flight recorder the trace layer is not. Where
// internal/trace records opt-in timed span trees for performance work,
// this package records every *interesting transition* as a small typed
// event: job phases, task dispatch/finish/failover, speculative hedges,
// shuffle batches and supersedes, DHT-FS replication and read failover,
// scheduler admission, membership churn, journal flushes. When a job
// fails or a recovery fires, the last N events from every node are the
// first (often the only) artifact needed to answer "why did it do that".
//
// The design discipline is the same as internal/trace, deliberately:
//
//   - Cheap when filtered: emitting an event whose kind is masked off
//     costs one atomic load and returns.
//   - Bounded: finished events land in a fixed-size lock-free ring;
//     the oldest are overwritten and a dropped counter tells the
//     collector how much history it lost.
//   - Deterministic under simulation: the clock is injectable
//     (metrics.Clock) and event IDs derive from a seeded per-node
//     counter, so a single-threaded simulated run produces
//     byte-identical timelines.
//
// Unlike tracing, the log starts with every kind enabled: a flight
// recorder that must be switched on after the crash records nothing.
package events

import (
	"hash/fnv"
	"sync/atomic"

	"eclipsemr/internal/metrics"
)

// Kind is the coarse event taxonomy. Filters (the collection RPC, the
// CLI, the per-log mask) select on kinds; names stay free to be precise.
type Kind uint8

// The event taxonomy. Every emitted event carries exactly one kind.
const (
	// KindJob covers driver job lifecycle: submit, phase changes, done,
	// failed, recovery rounds.
	KindJob Kind = iota
	// KindTask covers map/reduce task transitions: dispatch, finish,
	// retry, retry give-up, failover, partition re-home.
	KindTask
	// KindSpec covers speculative execution: hedge launch, win, waste.
	KindSpec
	// KindShuffle covers intermediate-data movement: spill batch pushes
	// and attempt supersedes.
	KindShuffle
	// KindFS covers DHT file-system repair: re-replication passes and
	// replica read failover.
	KindFS
	// KindSched covers scheduler admission.
	KindSched
	// KindMembership covers ring membership: join, suspect, evict,
	// manager election.
	KindMembership
	// KindJournal covers the durable job journal: flushes, flush
	// errors, resume adoption.
	KindJournal

	numKinds
)

var kindNames = [numKinds]string{
	"job", "task", "spec", "shuffle", "fs", "sched", "membership", "journal",
}

// Valid reports whether k is a defined kind (bundles validate decoded
// events against this).
func (k Kind) Valid() bool { return k < numKinds }

// String returns the kind's stable lowercase name (used by filters and
// the rendered timeline).
func (k Kind) String() string {
	if int(k) < len(kindNames) {
		return kindNames[k]
	}
	return "unknown"
}

// KindFromString resolves a kind name as printed by String.
func KindFromString(s string) (Kind, bool) {
	for i, n := range kindNames {
		if n == s {
			return Kind(i), true
		}
	}
	return 0, false
}

// Kinds lists every kind name in declaration order, for CLI help text.
func Kinds() []string {
	return append([]string(nil), kindNames[:]...)
}

// AllKinds is the mask with every kind enabled — the default.
const AllKinds uint64 = 1<<numKinds - 1

// Event is one recorded transition. All fields are exported and plain
// data, so events serialize over collection RPCs and into debug bundles
// unchanged.
type Event struct {
	// ID is unique per node: seeded node hash in the high 32 bits, the
	// per-node emission sequence in the low 32. The low bits order a
	// node's own events even when its clock jumps.
	ID   uint64
	Kind Kind
	// Name identifies the transition, e.g. "map.dispatch". Names are
	// statically known — the eventname lint analyzer enforces constant
	// arguments — so dashboards and tests can match on them.
	Name string
	// Job, Task and Attempt scope the event; empty/zero when the event
	// is cluster-level (membership churn, FS repair).
	Job     string
	Task    string
	Attempt int
	// Node is the emitting node.
	Node string
	// AtNS is the emission time in UnixNano on the log's clock.
	AtNS int64
	// Detail carries one free-form value: a target node, an error
	// string, a count.
	Detail string
}

// F carries the optional fields of one emission. Constructing it is a
// plain stack write; no allocation happens for filtered-out kinds.
type F struct {
	Job, Task, Detail string
	Attempt           int
}

// Options configure a Log.
type Options struct {
	// Clock supplies timestamps; nil selects the wall clock. Simulations
	// inject their virtual clock for deterministic timelines.
	Clock metrics.Clock
	// Seed perturbs event-ID generation (mixed with the node name). The
	// zero seed is fine: IDs are already node-unique.
	Seed uint64
	// Capacity bounds the event ring; 0 selects 8192. Oldest events are
	// overwritten when full.
	Capacity int
}

// DefaultCapacity is the ring size when Options.Capacity is zero. Events
// are small and always on, so the default is deeper than the trace ring.
const DefaultCapacity = 8192

// Log records events for one node in a bounded lock-free ring. A nil
// *Log is valid and records nothing.
type Log struct {
	node   string
	clock  metrics.Clock
	idBase uint64 // seeded node hash in the high 32 bits

	mask atomic.Uint64 // bit per Kind; Emit is a no-op for cleared bits
	ctr  atomic.Uint64
	ring ring
}

// New returns an event log for the named node with every kind enabled.
func New(node string, o Options) *Log {
	capacity := o.Capacity
	if capacity <= 0 {
		capacity = DefaultCapacity
	}
	clock := o.Clock
	if clock == nil {
		clock = metrics.WallClock()
	}
	h := fnv.New32a()
	h.Write([]byte(node))
	base := uint64(h.Sum32()) ^ (o.Seed ^ o.Seed>>32&0xffffffff)
	l := &Log{
		node:   node,
		clock:  clock,
		idBase: (base & 0xffffffff) << 32,
		ring:   newRing(capacity),
	}
	l.mask.Store(AllKinds)
	return l
}

// Node returns the node name events are stamped with.
func (l *Log) Node() string {
	if l == nil {
		return ""
	}
	return l.node
}

// SetClock replaces the log's time source (nil restores wall time).
func (l *Log) SetClock(c metrics.Clock) {
	if c == nil {
		c = metrics.WallClock()
	}
	l.clock = c
}

// NowNS returns the log clock's current time in UnixNano (0 on a nil
// log), for capture code stamping artifacts on the same clock as the
// events they contain.
func (l *Log) NowNS() int64 {
	if l == nil {
		return 0
	}
	return l.clock.Now().UnixNano()
}

// Mask returns the enabled-kind bitmask.
func (l *Log) Mask() uint64 {
	if l == nil {
		return 0
	}
	return l.mask.Load()
}

// SetMask replaces the enabled-kind bitmask wholesale.
func (l *Log) SetMask(mask uint64) {
	if l != nil {
		l.mask.Store(mask & AllKinds)
	}
}

// SetKindEnabled enables or disables one kind.
func (l *Log) SetKindEnabled(k Kind, on bool) {
	if l == nil || k >= numKinds {
		return
	}
	for {
		old := l.mask.Load()
		next := old | 1<<k
		if !on {
			next = old &^ (1 << k)
		}
		if l.mask.CompareAndSwap(old, next) {
			return
		}
	}
}

// KindEnabled reports whether events of kind k are being recorded.
func (l *Log) KindEnabled(k Kind) bool {
	return l != nil && l.mask.Load()&(1<<k) != 0
}

// Emit records one event. For a filtered-out kind (or a nil log) the
// cost is one atomic load; otherwise one allocation and one atomic slot
// claim. Safe for concurrent use.
func (l *Log) Emit(k Kind, name string, f F) {
	if l == nil || l.mask.Load()&(1<<k) == 0 {
		return
	}
	l.ring.put(&Event{
		ID:      l.idBase | (l.ctr.Add(1) & 0xffffffff),
		Kind:    k,
		Name:    name,
		Job:     f.Job,
		Task:    f.Task,
		Attempt: f.Attempt,
		Node:    l.node,
		AtNS:    l.clock.Now().UnixNano(),
		Detail:  f.Detail,
	})
}

// Events returns copies of the retained events, oldest first. A
// non-empty job keeps that job's events plus every cluster-scoped event
// (empty Job) — membership churn and FS repair are part of any job's
// story. sinceNS, when positive, drops events before it.
func (l *Log) Events(job string, sinceNS int64) []Event {
	if l == nil {
		return nil
	}
	var out []Event
	for _, e := range l.ring.snapshot() {
		if job != "" && e.Job != "" && e.Job != job {
			continue
		}
		if sinceNS > 0 && e.AtNS < sinceNS {
			continue
		}
		out = append(out, *e)
	}
	return out
}

// Dropped returns how many events have been overwritten before
// collection.
func (l *Log) Dropped() int64 {
	if l == nil {
		return 0
	}
	return l.ring.dropped()
}

// ring is a bounded lock-free buffer of emitted events, identical in
// discipline to the trace span ring: writers claim a slot with one
// atomic increment; when the buffer wraps, the oldest event is
// overwritten.
type ring struct {
	slots []atomic.Pointer[Event]
	next  atomic.Uint64
}

func newRing(capacity int) ring {
	return ring{slots: make([]atomic.Pointer[Event], capacity)}
}

func (r *ring) put(e *Event) {
	i := r.next.Add(1) - 1
	r.slots[i%uint64(len(r.slots))].Store(e)
}

// snapshot returns the retained events oldest-first. Concurrent puts may
// race individual slots; each slot read is atomic and events are
// immutable once stored, so every returned event is complete.
func (r *ring) snapshot() []*Event {
	n := r.next.Load()
	size := uint64(len(r.slots))
	start := uint64(0)
	if n > size {
		start = n - size
	}
	out := make([]*Event, 0, n-start)
	for i := start; i < n; i++ {
		if e := r.slots[i%size].Load(); e != nil {
			out = append(out, e)
		}
	}
	return out
}

func (r *ring) dropped() int64 {
	n := r.next.Load()
	if size := uint64(len(r.slots)); n > size {
		return int64(n - size)
	}
	return 0
}
