package events

import (
	"fmt"
	"sort"
	"strings"
)

// Merge dedupes and canonically orders events collected from many nodes
// (and, replica-tolerantly, from overlapping collections of the same
// node). The order is (AtNS, Node, ID): time first, then node name, then
// the node's own emission sequence. Because the final two keys are
// collision-free, the merged order is a pure function of the event set —
// two collections of the same run order identically no matter how the
// batches arrived, and skewed node clocks cannot make the merge
// ambiguous (they can only interleave nodes differently, deterministically).
func Merge(evs []Event) []Event {
	type key struct {
		node string
		id   uint64
	}
	seen := make(map[key]bool, len(evs))
	out := make([]Event, 0, len(evs))
	for _, e := range evs {
		k := key{e.Node, e.ID}
		if seen[k] {
			continue
		}
		seen[k] = true
		out = append(out, e)
	}
	sort.Slice(out, func(i, j int) bool {
		a, b := out[i], out[j]
		if a.AtNS != b.AtNS {
			return a.AtNS < b.AtNS
		}
		if a.Node != b.Node {
			return a.Node < b.Node
		}
		return a.ID < b.ID
	})
	return out
}

// Filter selects a subset of a merged timeline.
type Filter struct {
	// Kinds keeps only the set kinds; nil keeps all.
	Kinds map[Kind]bool
	// Node keeps only one emitting node; empty keeps all.
	Node string
	// SinceNS drops events before it when positive.
	SinceNS int64
}

// Apply returns the events passing the filter, preserving order.
func Apply(evs []Event, f Filter) []Event {
	if f.Kinds == nil && f.Node == "" && f.SinceNS <= 0 {
		return evs
	}
	out := make([]Event, 0, len(evs))
	for _, e := range evs {
		if f.Kinds != nil && !f.Kinds[e.Kind] {
			continue
		}
		if f.Node != "" && e.Node != f.Node {
			continue
		}
		if f.SinceNS > 0 && e.AtNS < f.SinceNS {
			continue
		}
		out = append(out, e)
	}
	return out
}

// ParseKinds parses a comma-separated kind list ("task,shuffle") into a
// Filter.Kinds set. An empty string returns nil (all kinds).
func ParseKinds(s string) (map[Kind]bool, error) {
	if s == "" {
		return nil, nil
	}
	set := make(map[Kind]bool)
	for _, part := range strings.Split(s, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		k, ok := KindFromString(part)
		if !ok {
			return nil, fmt.Errorf("events: unknown kind %q (known: %s)", part, strings.Join(Kinds(), ","))
		}
		set[k] = true
	}
	if len(set) == 0 {
		return nil, nil
	}
	return set, nil
}

// Render formats a merged timeline as text, one event per line, offsets
// relative to the earliest event. The output is a pure function of the
// event set (Merge canonicalizes first), so a deterministic run renders
// byte-identical timelines.
func Render(evs []Event) string {
	evs = Merge(evs)
	if len(evs) == 0 {
		return ""
	}
	epoch := evs[0].AtNS
	var b strings.Builder
	for _, e := range evs {
		fmt.Fprintf(&b, "%12.3fms  %-12s %-10s %-20s", float64(e.AtNS-epoch)/1e6, e.Node, e.Kind, e.Name)
		if e.Job != "" {
			fmt.Fprintf(&b, " job=%s", e.Job)
		}
		if e.Task != "" {
			fmt.Fprintf(&b, " task=%s", e.Task)
		}
		if e.Attempt != 0 {
			fmt.Fprintf(&b, " attempt=%d", e.Attempt)
		}
		if e.Detail != "" {
			fmt.Fprintf(&b, " (%s)", e.Detail)
		}
		b.WriteByte('\n')
	}
	return b.String()
}
