package events

import (
	"math/rand"
	"reflect"
	"testing"
)

// TestMergeSkewedClocks pins the satellite requirement: the merged order
// of events collected from nodes with mutually skewed clocks is a pure
// function of the event set — identical however the batches arrive, with
// inter-node ties broken by node name then per-node sequence.
func TestMergeSkewedClocks(t *testing.T) {
	// Three nodes whose clocks disagree: node-b runs 1s ahead, node-c 1s
	// behind. Each emits a deterministic sequence.
	mk := func(node string, startNS int64) []Event {
		l := New(node, Options{Clock: tickClock(startNS, 7), Capacity: 32})
		l.Emit(KindJob, "job.submit", F{Job: "wc"})
		l.Emit(KindTask, "map.dispatch", F{Job: "wc", Task: "m-" + node})
		l.Emit(KindTask, "map.finish", F{Job: "wc", Task: "m-" + node})
		return l.Events("", 0)
	}
	a := mk("node-a", 5_000_000_000)
	b := mk("node-b", 6_000_000_000)
	c := mk("node-c", 4_000_000_000)

	all := append(append(append([]Event(nil), a...), b...), c...)
	want := Merge(all)

	// Skew interleaves whole nodes: node-c (clock behind) sorts first,
	// node-b last, and each node's own events keep emission order.
	order := make([]string, 0, len(want))
	for _, e := range want {
		order = append(order, e.Node)
	}
	wantOrder := []string{
		"node-c", "node-c", "node-c",
		"node-a", "node-a", "node-a",
		"node-b", "node-b", "node-b",
	}
	if !reflect.DeepEqual(order, wantOrder) {
		t.Fatalf("skewed merge order = %v, want %v", order, wantOrder)
	}

	// Arrival order must not matter: merge every permutation of the
	// per-node batches, plus a shuffled flat list, and compare.
	perms := [][][]Event{
		{a, b, c}, {c, b, a}, {b, a, c}, {b, c, a}, {c, a, b},
	}
	for i, p := range perms {
		var flat []Event
		for _, batch := range p {
			flat = append(flat, batch...)
		}
		if got := Merge(flat); !reflect.DeepEqual(got, want) {
			t.Fatalf("permutation %d merges differently", i)
		}
	}
	rng := rand.New(rand.NewSource(1))
	shuffled := append([]Event(nil), all...)
	rng.Shuffle(len(shuffled), func(i, j int) { shuffled[i], shuffled[j] = shuffled[j], shuffled[i] })
	if got := Merge(shuffled); !reflect.DeepEqual(got, want) {
		t.Fatal("shuffled input merges differently")
	}
}

// TestMergeReplicaTolerant pins dedupe: collecting the same node twice
// (the replica-tolerant collection path) must not duplicate events.
func TestMergeReplicaTolerant(t *testing.T) {
	l := New("node-a", Options{Clock: tickClock(0, 3), Capacity: 16})
	l.Emit(KindJob, "job.submit", F{Job: "wc"})
	l.Emit(KindJob, "job.done", F{Job: "wc"})
	once := l.Events("", 0)
	twice := append(append([]Event(nil), once...), once...)
	if got := Merge(twice); len(got) != 2 {
		t.Fatalf("double collection merged to %d events, want 2", len(got))
	}
}

// TestMergeSameTimestampDistinctNodes pins the tie-break: two nodes
// emitting at the identical instant order by node name, and a node's own
// same-instant events order by sequence.
func TestMergeSameTimestampDistinctNodes(t *testing.T) {
	la := New("node-a", Options{Clock: tickClock(100, 0), Capacity: 8})
	lb := New("node-b", Options{Clock: tickClock(100, 0), Capacity: 8})
	lb.Emit(KindTask, "map.finish", F{Task: "b1"})
	la.Emit(KindTask, "map.finish", F{Task: "a1"})
	la.Emit(KindTask, "map.finish", F{Task: "a2"})
	got := Merge(append(lb.Events("", 0), la.Events("", 0)...))
	tasks := []string{got[0].Task, got[1].Task, got[2].Task}
	if !reflect.DeepEqual(tasks, []string{"a1", "a2", "b1"}) {
		t.Fatalf("tie-break order = %v, want [a1 a2 b1]", tasks)
	}
}

func TestApplyFilter(t *testing.T) {
	l := New("node-a", Options{Clock: tickClock(0, 10), Capacity: 16})
	l.Emit(KindJob, "job.submit", F{Job: "wc"})
	l.Emit(KindTask, "map.dispatch", F{Job: "wc", Task: "m0"})
	l.Emit(KindShuffle, "shuffle.batch", F{Job: "wc"})
	lb := New("node-b", Options{Clock: tickClock(5, 10), Capacity: 16})
	lb.Emit(KindTask, "map.finish", F{Job: "wc", Task: "m0"})
	all := Merge(append(l.Events("", 0), lb.Events("", 0)...))

	kinds, err := ParseKinds("task")
	if err != nil {
		t.Fatal(err)
	}
	if got := Apply(all, Filter{Kinds: kinds}); len(got) != 2 {
		t.Fatalf("kind filter kept %d, want 2", len(got))
	}
	if got := Apply(all, Filter{Node: "node-b"}); len(got) != 1 || got[0].Node != "node-b" {
		t.Fatalf("node filter wrong: %+v", got)
	}
	if got := Apply(all, Filter{SinceNS: 16}); len(got) != 1 || got[0].Name != "shuffle.batch" {
		t.Fatalf("since filter wrong: %+v", got)
	}
	if got := Apply(all, Filter{}); len(got) != len(all) {
		t.Fatal("empty filter dropped events")
	}
}
