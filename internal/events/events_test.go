package events

import (
	"fmt"
	"strings"
	"testing"
	"time"

	"eclipsemr/internal/metrics"
)

// tickClock is a deterministic clock advancing a fixed step per read.
func tickClock(startNS, stepNS int64) metrics.Clock {
	now := startNS - stepNS
	return metrics.ClockFunc(func() time.Time {
		now += stepNS
		return time.Unix(0, now)
	})
}

func TestEmitAndSnapshot(t *testing.T) {
	l := New("node-a", Options{Clock: tickClock(1000, 10), Capacity: 16})
	l.Emit(KindJob, "job.submit", F{Job: "wc"})
	l.Emit(KindTask, "map.dispatch", F{Job: "wc", Task: "m0", Attempt: 1, Detail: "node-b"})
	l.Emit(KindMembership, "member.join", F{Detail: "node-c"})

	evs := l.Events("", 0)
	if len(evs) != 3 {
		t.Fatalf("got %d events, want 3", len(evs))
	}
	e := evs[1]
	if e.Kind != KindTask || e.Name != "map.dispatch" || e.Job != "wc" ||
		e.Task != "m0" || e.Attempt != 1 || e.Detail != "node-b" || e.Node != "node-a" {
		t.Fatalf("event fields wrong: %+v", e)
	}
	if evs[0].AtNS != 1000 || evs[1].AtNS != 1010 || evs[2].AtNS != 1020 {
		t.Fatalf("timestamps not from injected clock: %d %d %d", evs[0].AtNS, evs[1].AtNS, evs[2].AtNS)
	}
	// Job filter keeps the job's events plus cluster-scoped ones.
	scoped := l.Events("wc", 0)
	if len(scoped) != 3 {
		t.Fatalf("job filter dropped cluster-scoped events: got %d, want 3", len(scoped))
	}
	other := l.Events("other", 0)
	if len(other) != 1 || other[0].Kind != KindMembership {
		t.Fatalf("job filter kept foreign job events: %+v", other)
	}
	// since filter.
	late := l.Events("", 1015)
	if len(late) != 1 || late[0].Name != "member.join" {
		t.Fatalf("since filter wrong: %+v", late)
	}
}

func TestRingOverwriteAndDropped(t *testing.T) {
	l := New("node-a", Options{Clock: tickClock(0, 1), Capacity: 4})
	for i := 0; i < 10; i++ {
		l.Emit(KindTask, "map.finish", F{Task: fmt.Sprintf("m%d", i)})
	}
	evs := l.Events("", 0)
	if len(evs) != 4 {
		t.Fatalf("ring retained %d events, want 4", len(evs))
	}
	if evs[0].Task != "m6" || evs[3].Task != "m9" {
		t.Fatalf("ring did not keep the newest events: first=%s last=%s", evs[0].Task, evs[3].Task)
	}
	if got := l.Dropped(); got != 6 {
		t.Fatalf("Dropped() = %d, want 6", got)
	}
}

func TestKindMaskFiltering(t *testing.T) {
	l := New("node-a", Options{Clock: tickClock(0, 1), Capacity: 8})
	l.SetKindEnabled(KindShuffle, false)
	l.Emit(KindShuffle, "shuffle.batch", F{})
	l.Emit(KindTask, "map.finish", F{})
	if evs := l.Events("", 0); len(evs) != 1 || evs[0].Kind != KindTask {
		t.Fatalf("masked kind recorded: %+v", evs)
	}
	if l.KindEnabled(KindShuffle) || !l.KindEnabled(KindTask) {
		t.Fatal("KindEnabled disagrees with mask")
	}
	l.SetKindEnabled(KindShuffle, true)
	l.Emit(KindShuffle, "shuffle.batch", F{})
	if evs := l.Events("", 0); len(evs) != 2 {
		t.Fatalf("re-enabled kind not recorded: %d events", len(evs))
	}
	l.SetMask(0)
	l.Emit(KindJob, "job.submit", F{})
	if evs := l.Events("", 0); len(evs) != 2 {
		t.Fatal("zero mask still recorded")
	}
	// A filtered emit must not consume IDs or ring slots (the fast path
	// returns before any state change).
	if got := l.Dropped(); got != 0 {
		t.Fatalf("filtered emits advanced the ring: dropped=%d", got)
	}
}

func TestNilLogSafe(t *testing.T) {
	var l *Log
	l.Emit(KindJob, "job.submit", F{Job: "wc"}) // must not panic
	if l.Events("", 0) != nil || l.Dropped() != 0 || l.Node() != "" || l.Mask() != 0 {
		t.Fatal("nil log not inert")
	}
	l.SetKindEnabled(KindJob, false)
	l.SetMask(1)
	if l.KindEnabled(KindJob) {
		t.Fatal("nil log reports enabled kind")
	}
}

func TestSeededDeterministicIDs(t *testing.T) {
	mk := func() []Event {
		l := New("node-a", Options{Clock: tickClock(100, 5), Seed: 42, Capacity: 8})
		l.Emit(KindJob, "job.submit", F{Job: "wc"})
		l.Emit(KindTask, "map.dispatch", F{Job: "wc", Task: "m0"})
		return l.Events("", 0)
	}
	a, b := mk(), mk()
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("event %d differs across identical runs: %+v vs %+v", i, a[i], b[i])
		}
	}
	// A different seed changes the ID base but nothing else.
	l2 := New("node-a", Options{Clock: tickClock(100, 5), Seed: 43, Capacity: 8})
	l2.Emit(KindJob, "job.submit", F{Job: "wc"})
	if l2.Events("", 0)[0].ID == a[0].ID {
		t.Fatal("seed did not perturb event IDs")
	}
}

func TestKindNames(t *testing.T) {
	for i := Kind(0); i < numKinds; i++ {
		name := i.String()
		if name == "" || name == "unknown" {
			t.Fatalf("kind %d has no name", i)
		}
		back, ok := KindFromString(name)
		if !ok || back != i {
			t.Fatalf("KindFromString(%q) = %v,%v want %v", name, back, ok, i)
		}
	}
	if _, ok := KindFromString("nope"); ok {
		t.Fatal("unknown kind resolved")
	}
}

func TestParseKinds(t *testing.T) {
	set, err := ParseKinds("task, shuffle")
	if err != nil {
		t.Fatal(err)
	}
	if !set[KindTask] || !set[KindShuffle] || set[KindJob] {
		t.Fatalf("ParseKinds wrong: %v", set)
	}
	if all, err := ParseKinds(""); err != nil || all != nil {
		t.Fatalf("empty spec: %v %v", all, err)
	}
	if _, err := ParseKinds("task,bogus"); err == nil {
		t.Fatal("unknown kind accepted")
	}
}

func TestRenderFormatsFields(t *testing.T) {
	l := New("node-a", Options{Clock: tickClock(1_000_000, 500_000), Capacity: 8})
	l.Emit(KindJob, "job.submit", F{Job: "wc"})
	l.Emit(KindTask, "map.dispatch", F{Job: "wc", Task: "m0", Attempt: 2, Detail: "node-b"})
	out := Render(l.Events("", 0))
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != 2 {
		t.Fatalf("got %d lines, want 2:\n%s", len(lines), out)
	}
	if !strings.Contains(lines[0], "job.submit") || !strings.Contains(lines[0], "job=wc") {
		t.Errorf("line 0 missing fields: %q", lines[0])
	}
	if !strings.Contains(lines[1], "task=m0") || !strings.Contains(lines[1], "attempt=2") ||
		!strings.Contains(lines[1], "(node-b)") {
		t.Errorf("line 1 missing fields: %q", lines[1])
	}
	if !strings.HasPrefix(lines[0], "       0.000ms") {
		t.Errorf("offset not relative to first event: %q", lines[0])
	}
	if Render(nil) != "" {
		t.Error("empty timeline renders non-empty")
	}
}

// BenchmarkEmitFiltered pins the acceptance criterion: emitting an event
// whose kind is masked off is one atomic load, no allocation.
func BenchmarkEmitFiltered(b *testing.B) {
	l := New("node-a", Options{Capacity: 64})
	l.SetKindEnabled(KindShuffle, false)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		l.Emit(KindShuffle, "shuffle.batch", F{Job: "wc", Task: "m0"})
	}
}

func BenchmarkEmitRecorded(b *testing.B) {
	l := New("node-a", Options{Capacity: 1 << 12})
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		l.Emit(KindShuffle, "shuffle.batch", F{Job: "wc", Task: "m0"})
	}
}

func TestEmitFilteredAllocFree(t *testing.T) {
	l := New("node-a", Options{Capacity: 64})
	l.SetKindEnabled(KindShuffle, false)
	allocs := testing.AllocsPerRun(1000, func() {
		l.Emit(KindShuffle, "shuffle.batch", F{Job: "wc", Task: "m0", Attempt: 3})
	})
	if allocs != 0 {
		t.Fatalf("filtered Emit allocates %.1f objects per call, want 0", allocs)
	}
}
