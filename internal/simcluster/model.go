package simcluster

import (
	"context"
	"fmt"
	"math/rand"
	"strconv"
	"time"

	"eclipsemr/internal/cache"
	"eclipsemr/internal/events"
	"eclipsemr/internal/hashing"
	"eclipsemr/internal/scheduler"
	"eclipsemr/internal/sim"
	"eclipsemr/internal/trace"
	"eclipsemr/internal/workloads"
)

// Framework selects the simulated system.
type Framework string

// Simulated frameworks.
const (
	Eclipse Framework = "eclipse"
	Hadoop  Framework = "hadoop"
	Spark   Framework = "spark"
)

// Policy selects EclipseMR's scheduling algorithm (Hadoop always uses
// Fair, Spark always uses Delay, per the paper's comparison setup).
type Policy struct {
	// Kind is "laf" or "delay".
	Kind string
	// Alpha is LAF's moving-average weight factor.
	Alpha float64
	// Wait is the delay-scheduling wait (default 5 s).
	Wait time.Duration
}

// LAF returns the standard LAF policy with the given weight factor.
func LAF(alpha float64) Policy { return Policy{Kind: "laf", Alpha: alpha} }

// Delay returns the delay-scheduling policy with a 5 s wait.
func Delay() Policy { return Policy{Kind: "delay", Wait: 5 * time.Second} }

// Model simulates one framework instance on the testbed.
type Model struct {
	S    *sim.Sim
	p    Params
	fw   FrameworkParams
	kind Framework

	sched    scheduler.Scheduler
	ring     hashing.Ring
	ids      []hashing.NodeID
	idx      map[hashing.NodeID]int
	table    *hashing.RangeTable // static partition table (reduce placement, FS ownership)
	disks    []*sim.Queue
	launch   []*sim.Queue // per-node serialized task launchers (Hadoop)
	reduce   []*sim.Queue
	net      *sim.FlowNet
	caches   []*cache.LRU
	nameNode *sim.Queue

	pumpAt float64 // earliest already-scheduled pump wake, -1 if none
	rng    *rand.Rand
	// noProactive disables EclipseMR's proactive shuffle (ablation):
	// intermediates are written to the mapper's local disk after compute
	// and pulled by reducers, Hadoop-style.
	noProactive bool
	running     int
	jobs        map[string]*runningJob
	// tr is non-nil after EnableTracing: deterministic per-node span
	// recording on the virtual clock (see tracing.go).
	tr *modelTrace
	// ev is non-nil after EnableEvents: deterministic per-node structured
	// events on the virtual clock (see events.go).
	ev *modelEvents
	// Chaos hook: killAtReduce (armed via KillNodeAtReduceStart) crashes
	// one node at the exact map→reduce boundary of the first job to reach
	// it; dead marks crashed nodes and epoch counts membership changes,
	// mirroring the real manager's view epoch.
	killAtReduce int
	killed       bool
	dead         []bool
	epoch        uint64
}

// NewModel builds a simulated cluster for one framework and policy.
func NewModel(p Params, kind Framework, pol Policy) (*Model, error) {
	p = p.withDefaults()
	s := sim.New()
	m := &Model{
		S:            s,
		p:            p,
		kind:         kind,
		idx:          make(map[hashing.NodeID]int, p.Nodes),
		net:          sim.NewFlowNet(s),
		rng:          rand.New(rand.NewSource(42)),
		pumpAt:       -1,
		killAtReduce: -1,
		jobs:         make(map[string]*runningJob),
	}
	switch kind {
	case Eclipse:
		m.fw = EclipseOverheads
	case Hadoop:
		m.fw = HadoopOverheads
	case Spark:
		m.fw = SparkOverheads
	default:
		return nil, fmt.Errorf("simcluster: unknown framework %q", kind)
	}
	// The default chord ring sits nodes at near-even ring positions (even
	// spacing plus a mild deterministic jitter). A production
	// consistent-hashing deployment achieves the same with virtual nodes;
	// without it, single-token arc skew (up to ln N × the mean) would
	// dominate every experiment and mask the framework effects under
	// study. The alternate -ring algorithms (jump, power, rendezvous) are
	// balanced by construction and take their members by ID.
	chordDefault := p.Ring == "" || p.Ring == hashing.AlgorithmChord
	var chordRing *hashing.ChordRing
	if chordDefault {
		chordRing = hashing.NewChordRing()
		m.ring = chordRing
	} else {
		r, err := hashing.NewAlgorithmRing(p.Ring)
		if err != nil {
			return nil, err
		}
		m.ring = r
	}
	posRng := rand.New(rand.NewSource(7))
	step := float64(1<<63) * 2 / float64(p.Nodes)
	for i := 0; i < p.Nodes; i++ {
		id := hashing.NodeID(fmt.Sprintf("node-%02d", i))
		if chordDefault {
			jitter := (posRng.Float64() - 0.5) * 0.8
			pos := hashing.Key((float64(i) + 0.5 + jitter) * step)
			if err := chordRing.Add(id, pos); err != nil {
				return nil, err
			}
		} else if err := m.ring.AddNode(id); err != nil {
			return nil, err
		}
		m.ids = append(m.ids, id)
		m.idx[id] = i
		m.disks = append(m.disks, sim.NewQueue(s, 1))
		launchers := m.fw.SerialLaunch
		if launchers < 1 {
			launchers = 1
		}
		m.launch = append(m.launch, sim.NewQueue(s, launchers))
		m.reduce = append(m.reduce, sim.NewQueue(s, p.ReduceSlots))
		c := cache.NewLRU(p.CachePerNode)
		c.SetClock(s.Clock())
		m.caches = append(m.caches, c)
		m.net.AddResource(nicOut(i), p.NICBandwidth)
		m.net.AddResource(nicIn(i), p.NICBandwidth)
	}
	m.net.AddResource("uplink", p.UplinkBandwidth)
	table, err := m.ring.RangeTable()
	if err != nil {
		return nil, err
	}
	m.table = table

	switch {
	case kind == Hadoop:
		m.sched, err = scheduler.NewFair(m.ring)
		m.nameNode = sim.NewQueue(s, 1)
	case kind == Spark:
		m.sched, err = scheduler.NewDelay(scheduler.DefaultDelayConfig(), m.ring)
		m.nameNode = sim.NewQueue(s, 1)
	case pol.Kind == "delay":
		wait := pol.Wait
		if wait == 0 {
			wait = 5 * time.Second
		}
		m.sched, err = scheduler.NewDelay(scheduler.DelayConfig{Wait: wait}, m.ring)
	default: // LAF
		cfg := scheduler.DefaultLAFConfig()
		cfg.KDE.Alpha = pol.Alpha
		// Keys are recorded at submission, so bursts of queued tasks
		// re-partition immediately regardless of window size; a large
		// window keeps the empirical quantiles stable (±1 node at N=40,
		// within replica reach) instead of jittering with sampling noise.
		cfg.KDE.Window = 2048
		cfg.KDE.Bandwidth = 32
		m.sched, err = scheduler.NewLAF(cfg, m.ring)
	}
	if err != nil {
		return nil, err
	}
	for _, id := range m.ids {
		m.sched.AddNode(id, p.MapSlots)
	}
	return m, nil
}

func nicOut(i int) string { return fmt.Sprintf("out%02d", i) }
func nicIn(i int) string  { return fmt.Sprintf("in%02d", i) }

// rack returns the rack index of node i.
func (m *Model) rack(i int) int { return i / m.p.RackSize }

// route lists the flow resources for a transfer from node a to node b.
func (m *Model) route(a, b int) []string {
	if a == b {
		return nil
	}
	r := []string{nicOut(a), nicIn(b)}
	if m.rack(a) != m.rack(b) {
		r = append(r, "uplink")
	}
	return r
}

// transfer starts a network flow and calls done at completion.
func (m *Model) transfer(size float64, from, to int, done func()) {
	m.net.StartFlow(size, m.route(from, to), done)
}

// allToAll models one endpoint's share of an all-to-all transfer: size
// bytes cross the named NIC, and the half destined for (or arriving
// from) the other rack also crosses the shared uplink. Shuffle traffic
// is symmetric, so per-flow endpoints need no random peers — every NIC
// carries its own aggregate.
func (m *Model) allToAll(nic string, size float64, done func()) {
	crossFrac := 0.5
	if m.p.Nodes <= m.p.RackSize {
		crossFrac = 0 // single rack: no uplink traffic
	}
	pending := 2
	one := func() {
		pending--
		if pending == 0 {
			done()
		}
	}
	m.net.StartFlow(size*(1-crossFrac), []string{nic}, one)
	m.net.StartFlow(size*crossFrac, []string{nic, "uplink"}, one)
}

// diskRead schedules a sequential read on node i's disk.
func (m *Model) diskRead(i int, bytes float64, done func()) {
	m.disks[i].Submit(m.p.DiskSeek+bytes/m.p.DiskBandwidth, done)
}

// diskWrite schedules a sequential write on node i's disk.
func (m *Model) diskWrite(i int, bytes float64, done func()) {
	m.diskRead(i, bytes, done) // same cost model for the single HDD
}

// memRead models an in-memory cache read.
func (m *Model) memRead(bytes float64, done func()) {
	m.S.After(bytes/m.p.MemoryBandwidth, done)
}

// runningJob tracks one simulated job.
type runningJob struct {
	desc      JobDesc
	stats     *JobStats
	blockKeys []hashing.Key
	iteration int
	mapsLeft  int
	reduces   int
	done      func(JobStats)
	// jctx carries the job's root span for task spans to parent under;
	// context.Background() when the model is untraced.
	//lint:ignore ctxflow runningJob is the per-submission state of one simulated job; the virtual clock never blocks, so cancellation has nothing to interrupt
	jctx context.Context
	root *trace.Span
}

// Submit schedules a job at virtual time `at`; done (optional) fires with
// the final stats. Job names must be unique within a model. Call Run
// afterwards to execute the simulation.
func (m *Model) Submit(job JobDesc, at float64, done func(JobStats)) error {
	if err := validateJob(m.p, job); err != nil {
		return err
	}
	if _, dup := m.jobs[job.Name]; dup {
		return fmt.Errorf("simcluster: duplicate job name %q", job.Name)
	}
	if job.Iterations <= 0 {
		job.Iterations = 1
	}
	keys := job.BlockKeys
	if keys == nil {
		blocks := int(job.InputBytes / m.p.BlockSize)
		if blocks < 1 {
			blocks = 1
		}
		keys = workloads.UniformKeys(job.Seed+77, blocks)
	}
	j := &runningJob{
		desc:      job,
		blockKeys: keys,
		stats:     &JobStats{Name: job.Name, Start: at, MapTasks: len(keys) * job.Iterations},
		done:      done,
		//lint:ignore ctxflow the simulator is its own entry point: jobs are born here, on a virtual clock with no caller ctx
		jctx: context.Background(),
	}
	m.jobs[job.Name] = j
	m.S.At(at, func() {
		m.running++
		j.jctx, j.root = m.tr.startRoot(j.jctx, job.Name, "driver.job")
		j.root.Annotate("framework", string(m.kind))
		m.ev.emitDriver(events.KindJob, "job.submit", events.F{Job: job.Name, Detail: string(m.kind)})
		m.S.After(m.fw.JobOverhead, func() { m.startIteration(j) })
	})
	return nil
}

// Run executes the simulation to completion and returns the final time.
func (m *Model) Run() float64 { return m.S.Run() }

// startIteration submits one iteration's map tasks to the scheduler.
func (m *Model) startIteration(j *runningJob) {
	j.mapsLeft = len(j.blockKeys)
	m.ev.emitDriver(events.KindJob, "job.phase.map", events.F{
		Job: j.desc.Name, Detail: fmt.Sprintf("tasks=%d", len(j.blockKeys)),
	})
	now := sim.Duration(m.S.Now())
	for i, k := range j.blockKeys {
		m.sched.Submit(scheduler.Task{
			Job:     j.desc.Name,
			ID:      fmt.Sprintf("%s/%d/%d", j.desc.Name, j.iteration, i),
			HashKey: k,
		}, now)
	}
	m.pump()
}

// pump dispatches every assignable task and arranges a wake-up for the
// delay scheduler's earliest deadline.
func (m *Model) pump() {
	for {
		as := m.sched.Dispatch(sim.Duration(m.S.Now()))
		if len(as) == 0 {
			break
		}
		for _, a := range as {
			m.startMapTask(a)
		}
	}
	// Arrange a wake-up only for a *future* delay deadline: a task whose
	// wait has already expired was considered by Dispatch above, and can
	// only proceed when a slot frees — and every slot release re-pumps.
	if dl, ok := m.sched.NextDeadline(); ok {
		at := sim.Seconds(dl)
		if at > m.S.Now() && (m.pumpAt < 0 || at < m.pumpAt-1e-9) {
			m.pumpAt = at
			m.S.At(at, func() {
				m.pumpAt = -1
				m.pump()
			})
		}
	}
}

// jobOf resolves the running job a task belongs to.
var errUnknownJob = fmt.Errorf("simcluster: task for unknown job")

// startMapTask executes one map task on its assigned node:
//
//	slot overhead → (NameNode lookup) → input acquisition
//	(cache | local disk | remote disk + network) → compute ∥ shuffle
//
// For EclipseMR the shuffle is proactive: the aggregate spill flow runs
// concurrently with map compute, and the task completes when both are
// done (§II-D). Hadoop and Spark write intermediate output to the local
// disk after compute, and move it across the network during the reduce
// phase instead.
func (m *Model) startMapTask(a scheduler.Assignment) {
	j := m.jobs[a.Task.Job]
	if j == nil {
		panic(errUnknownJob)
	}
	n := m.idx[a.Node]
	blockBytes := float64(m.p.BlockSize)
	if len(j.blockKeys) > 0 && j.desc.InputBytes > 0 {
		blockBytes = float64(j.desc.InputBytes) / float64(len(j.blockKeys))
	}
	overhead := m.fw.TaskOverhead
	if a.Waited > 0 {
		// The wait began a.Waited of virtual time ago; reconstruct it as
		// a child of the job root so the timeline shows where scheduling
		// (not execution) spent the time.
		_, qs := m.tr.startSpanAt(n, j.jctx, "sched.queue_wait", m.tr.nowNS(n)-int64(a.Waited))
		qs.Annotate("task", a.Task.ID)
		qs.End()
	}
	// task is assigned when the slot overhead completes (inside begin);
	// declared here so finish, defined first, can end it.
	tctx := j.jctx
	var task *trace.Span

	acquire := func(cont func(fromCache bool)) {
		_, rd := m.tr.startSpan(n, tctx, "map.read")
		key := cache.BlockKey(a.Task.HashKey)
		useCache := m.kind == Eclipse || (m.kind == Spark && j.desc.App.Iterative)
		inner := cont
		cont = func(fromCache bool) {
			if useCache {
				v := "miss"
				if fromCache {
					v = "hit"
				}
				rd.Annotate("cache", v)
			}
			rd.End()
			inner(fromCache)
		}
		if useCache {
			if _, ok := m.caches[n].Get(key); ok {
				j.stats.CacheHits++
				m.memRead(blockBytes, func() { cont(true) })
				return
			}
			j.stats.CacheMiss++
		}
		j.stats.BytesRead += int64(blockBytes)
		insert := func() {
			if useCache {
				m.caches[n].Put(cache.Entry{Key: key, HashKey: a.Task.HashKey, Size: int64(blockBytes)})
			}
			cont(false)
		}
		readService := m.p.DiskSeek + blockBytes/m.p.DiskBandwidth
		if m.kind != Eclipse {
			// HDFS with locality scheduling: the read is node-local, after
			// a central NameNode lookup.
			j.stats.ReadSeconds += readService
			m.nameNode.Submit(m.fw.NameNodeLookup, func() {
				m.diskRead(n, blockBytes, insert)
			})
			return
		}
		// DHT FS: the block lives at its hash-key owner and is replicated
		// on the owner's ring predecessor and successor (§II-A). A task
		// whose node holds any replica reads locally — this is how mildly
		// misaligned cache ranges "avoid remote disk IOs" (§II-E); only
		// a seriously misaligned or migrated task reads remotely.
		owner := m.idx[m.table.Lookup(a.Task.HashKey)]
		local := false
		for r := -(m.p.Replicas - 1) / 2; r <= m.p.Replicas/2; r++ {
			if (owner+r+m.p.Nodes)%m.p.Nodes == n {
				local = true
				break
			}
		}
		if local {
			j.stats.ReadSeconds += readService
			m.diskRead(n, blockBytes, insert)
			return
		}
		j.stats.ReadSeconds += readService + blockBytes/m.p.NICBandwidth
		m.diskRead(owner, blockBytes, func() {
			m.transfer(blockBytes, owner, n, insert)
		})
	}

	baseCompute := blockBytes * j.desc.App.MapCost * m.fw.ComputeFactor
	baseCompute += blockBytes * j.desc.App.ShuffleRatio * m.fw.ShuffleByteCost
	if m.kind == Spark && j.desc.App.Iterative && j.iteration == 0 {
		baseCompute *= 1.5 // RDD construction on the first iteration
	}
	shuffleBytes := blockBytes * j.desc.App.ShuffleRatio

	finish := func() {
		task.End()
		m.ev.emit(n, events.KindTask, "map.finish", events.F{Job: j.desc.Name, Task: a.Task.ID})
		m.sched.Release(a.Node)
		j.mapsLeft--
		if j.mapsLeft == 0 {
			m.startReducePhase(j)
		}
		m.pump()
	}

	begin := func(fn func()) {
		if m.fw.SerialLaunch > 0 {
			m.launch[n].Submit(overhead, fn)
			return
		}
		m.S.After(overhead, fn)
	}
	begin(func() {
		tctx, task = m.tr.startSpan(n, j.jctx, "task.map")
		task.Annotate("task", a.Task.ID)
		m.ev.emit(n, events.KindTask, "map.dispatch", events.F{Job: j.desc.Name, Task: a.Task.ID})
		acquire(func(fromCache bool) {
			compute := baseCompute
			if !fromCache {
				// Deserialization cost applies only to storage reads; a
				// cached partition is already in object form.
				compute += blockBytes * m.fw.IOByteCost
			}
			_, comp := m.tr.startSpan(n, tctx, "map.compute")
			if m.kind == Eclipse && !m.noProactive {
				// Proactive shuffle: compute and the spill transfer overlap;
				// the spill is one aggregate flow to a rotating partition
				// owner (a deterministic stand-in for the per-range spill
				// streams) followed by the reducer-side disk write.
				pending := 2
				part := func() {
					pending--
					if pending == 0 {
						finish()
					}
				}
				m.S.After(compute, func() {
					comp.End()
					part()
				})
				if shuffleBytes < 1 {
					part()
				} else {
					// The spill fans out to every partition owner; the
					// reducer-side disk write is charged at a symmetric
					// stand-in (this node), keeping total disk work and
					// balance identical without random peers.
					_, sh := m.tr.startSpan(n, tctx, "shuffle.send")
					m.allToAll(nicOut(n), shuffleBytes, func() {
						m.diskWrite(n, shuffleBytes, func() {
							sh.End()
							part()
						})
					})
				}
				return
			}
			// Hadoop/Spark: compute, then write intermediate output to the
			// local disk. Spark keeps small shuffles and *iterative* RDD-
			// to-RDD shuffles in memory ("Spark does not store the
			// intermediate outputs in file systems", §III-E); its on-disk
			// sort-based shuffle pays a second spill-merge pass.
			m.S.After(compute, func() {
				comp.End()
				memShuffle := m.kind == Spark && (j.desc.App.Iterative || shuffleBytes < 64<<20)
				if shuffleBytes < 1 || memShuffle {
					finish()
					return
				}
				m.diskWrite(n, shuffleBytes, func() {
					if m.fw.DoubleSpill {
						m.diskWrite(n, shuffleBytes, finish)
						return
					}
					finish()
				})
			})
		})
	})
}

// KillNodeAtReduceStart arms the chaos hook: the given node crashes at
// the exact map→reduce boundary of the first job (or iteration) to
// reach it. Detection is modeled as immediate — the boundary is the
// deterministic instant — and recovery follows the real engine's shape:
// the victim leaves the membership (member.suspect, member.evict, epoch
// bump), its reduce partition re-homes to its ring successor
// (partition.rehome, job.recovery), and the new owner pulls the
// partition's proactively delivered segments from the surviving
// replica over the network instead of reading its own disk.
func (m *Model) KillNodeAtReduceStart(node int) error {
	if node < 0 || node >= m.p.Nodes {
		return fmt.Errorf("simcluster: kill node %d out of range [0,%d)", node, m.p.Nodes)
	}
	m.killAtReduce = node
	return nil
}

// execKill crashes the armed victim (once) at the map→reduce boundary.
func (m *Model) execKill() {
	if m.killAtReduce < 0 || m.killed {
		return
	}
	m.killed = true
	victim := m.killAtReduce
	vid := m.ids[victim]
	m.dead = make([]bool, m.p.Nodes)
	m.dead[victim] = true
	m.epoch++
	m.sched.RemoveNode(vid)
	// Cluster-scoped (no job): membership changes outlive any one job,
	// exactly as the real manager emits them.
	m.ev.emitDriver(events.KindMembership, "member.suspect", events.F{Detail: string(vid)})
	m.ev.emitDriver(events.KindMembership, "member.evict", events.F{Detail: string(vid)})
}

// liveSuccessor walks the ring clockwise from i to the first live node.
func (m *Model) liveSuccessor(i int) int {
	for d := 1; d < m.p.Nodes; d++ {
		if k := (i + d) % m.p.Nodes; !m.dead[k] {
			return k
		}
	}
	return i
}

// livePredecessor walks the ring counter-clockwise from i to the first
// live node — the surviving replica of i's partition data.
func (m *Model) livePredecessor(i int) int {
	for d := 1; d < m.p.Nodes; d++ {
		if k := (i - d + m.p.Nodes) % m.p.Nodes; !m.dead[k] {
			return k
		}
	}
	return i
}

// startReducePhase runs one reduce task per node (partition), then
// finishes the iteration. Partitions of crashed nodes re-home to their
// ring successor, which pulls the data from the surviving replica.
func (m *Model) startReducePhase(j *runningJob) {
	m.execKill()
	totalShuffle := float64(j.desc.InputBytes) * j.desc.App.ShuffleRatio
	outRatio := j.desc.App.OutputRatio
	isLastIter := j.iteration == j.desc.Iterations-1
	if j.desc.App.Iterative {
		outRatio = j.desc.App.IterOutputRatio
	}
	totalOut := float64(j.desc.InputBytes) * outRatio
	// Spark keeps iteration outputs in memory; only the final iteration's
	// output reaches storage (§III-E/F: Spark's last page rank iteration
	// is slower because it writes final outputs to disk).
	writeOutput := true
	if m.kind == Spark && j.desc.App.Iterative && !isLastIter {
		writeOutput = false
	}

	m.ev.emitDriver(events.KindJob, "job.phase.reduce", events.F{
		Job: j.desc.Name, Detail: fmt.Sprintf("parts=%d", m.p.Nodes),
	})
	j.reduces = m.p.Nodes
	part := totalShuffle / float64(m.p.Nodes)
	outPart := totalOut / float64(m.p.Nodes)
	rehomed := 0
	for i := 0; i < m.p.Nodes; i++ {
		node, pullFrom := i, -1
		if m.dead != nil && m.dead[i] {
			node = m.liveSuccessor(i)
			pullFrom = m.livePredecessor(i)
			rehomed++
			m.ev.emitDriver(events.KindTask, "partition.rehome", events.F{
				Job: j.desc.Name, Task: fmt.Sprintf("part-%02d", i), Detail: string(m.ids[node]),
			})
		}
		m.ev.emitDriver(events.KindTask, "reduce.dispatch", events.F{
			Job: j.desc.Name, Task: fmt.Sprintf("part-%02d", i), Detail: string(m.ids[node]),
		})
		partIdx, node, pull := i, node, pullFrom
		m.reduce[node].Submit(m.fw.TaskOverhead, func() {
			m.runReduceTask(j, partIdx, node, part, outPart, writeOutput, pull)
		})
	}
	if rehomed > 0 {
		m.ev.emitDriver(events.KindJob, "job.recovery", events.F{
			Job: j.desc.Name, Detail: fmt.Sprintf("partitions=%d", rehomed),
		})
	}
}

// runReduceTask executes one reduce partition on its node. pullFrom >= 0
// marks a re-homed partition: the data is read from that surviving
// replica's disk and crosses the network instead of a local read.
func (m *Model) runReduceTask(j *runningJob, partIdx, node int, shufflePart, outPart float64, writeOutput bool, pullFrom int) {
	compute := shufflePart * (j.desc.App.ReduceCost*m.fw.ComputeFactor + m.fw.ShuffleByteCost)
	tctx, task := m.tr.startSpan(node, j.jctx, "task.reduce")
	task.Annotate("partition", strconv.Itoa(partIdx))
	// recv covers gathering the partition (local read of proactively
	// delivered segments, or the pull shuffle) up to compute start.
	var recv *trace.Span

	finish := func() {
		recv.End()
		_, comp := m.tr.startSpan(node, tctx, "reduce.compute")
		m.S.After(compute, func() {
			comp.End()
			write := func(done func()) {
				if !writeOutput || outPart < 1 {
					done()
					return
				}
				_, wr := m.tr.startSpan(node, tctx, "reduce.write")
				wrapped := done
				done = func() {
					wr.End()
					wrapped()
				}
				// Local write plus (Replicas-1) remote copies.
				pending := m.p.Replicas
				one := func() {
					pending--
					if pending == 0 {
						done()
					}
				}
				m.diskWrite(node, outPart, one)
				for r := 1; r < m.p.Replicas; r++ {
					dst := (node + r) % m.p.Nodes
					m.transfer(outPart, node, dst, func() { m.diskWrite(dst, outPart, one) })
				}
			}
			write(func() {
				task.End()
				m.ev.emit(node, events.KindTask, "reduce.finish", events.F{
					Job: j.desc.Name, Task: fmt.Sprintf("part-%02d", partIdx),
				})
				m.reduceDone(j)
			})
		})
	}

	if shufflePart < 1 {
		finish()
		return
	}
	_, recv = m.tr.startSpan(node, tctx, "shuffle.recv")
	if m.kind == Eclipse && !m.noProactive {
		if pullFrom >= 0 {
			// Recovery pull: the re-homed partition's segments live on the
			// surviving replica, not this node — one remote disk read plus
			// a network transfer replaces the local read.
			recv.Annotate("recovered", "true")
			m.diskRead(pullFrom, shufflePart, func() {
				m.transfer(shufflePart, pullFrom, node, finish)
			})
			return
		}
		// Proactive shuffle already delivered the partition locally.
		m.diskRead(node, shufflePart, finish)
		return
	}
	if m.kind == Eclipse {
		// Ablation: pull shuffle without the merge-sort pass.
		m.diskRead(node, shufflePart, func() {
			m.allToAll(nicIn(node), shufflePart, finish)
		})
		return
	}
	// Pull shuffle: the partition arrives all-to-all through this
	// reducer's NIC; the distributed source-disk reads are approximated
	// by an equal local disk pass (total disk work and balance are the
	// same). Spark's iterative shuffles move memory-to-memory; its
	// non-iterative sort shuffle and Hadoop's merge sort pay disk passes
	// on the reduce side too.
	if m.kind == Spark && j.desc.App.Iterative {
		m.allToAll(nicIn(node), shufflePart, finish)
		return
	}
	m.diskRead(node, shufflePart, func() {
		m.allToAll(nicIn(node), shufflePart, func() {
			m.diskWrite(node, shufflePart, func() {
				m.diskRead(node, shufflePart, finish)
			})
		})
	})
}

// reduceDone accounts one reduce completion and advances the iteration.
func (m *Model) reduceDone(j *runningJob) {
	j.reduces--
	if j.reduces > 0 {
		return
	}
	j.stats.IterationFinish = append(j.stats.IterationFinish, m.S.Now())
	j.iteration++
	if j.iteration < j.desc.Iterations {
		m.startIteration(j)
		return
	}
	j.stats.Finish = m.S.Now()
	j.root.Annotate("map_tasks", strconv.Itoa(j.stats.MapTasks))
	j.root.End()
	m.ev.emitDriver(events.KindJob, "job.done", events.F{Job: j.desc.Name})
	m.running--
	if j.done != nil {
		j.done(*j.stats)
	}
}
