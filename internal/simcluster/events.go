package simcluster

import (
	"fmt"

	"eclipsemr/internal/bundle"
	"eclipsemr/internal/events"
	"eclipsemr/internal/metrics"
)

// modelEvents holds the per-node event logs of an event-recording
// simulation run. All logs share the model's virtual clock and derive
// event IDs from the run seed, so a single-threaded simulated run
// produces byte-identical merged timelines for identical parameters —
// the property the deterministic chaos e2e pins.
type modelEvents struct {
	driver *events.Log
	nodes  []*events.Log
}

// EnableEvents turns structured-event recording on for this model: one
// log per simulated node plus one for the driver role, all on the
// simulation clock, with event IDs seeded from seed. Call before Run;
// collect afterwards with Events or DebugBundle.
func (m *Model) EnableEvents(seed uint64) {
	clock := metrics.ClockFunc(m.S.Clock())
	me := &modelEvents{}
	mk := func(node string) *events.Log {
		// A simulated task emits a couple of events; 64Ki slots keep
		// paper-scale runs from overwriting their tails.
		return events.New(node, events.Options{Clock: clock, Seed: seed, Capacity: 1 << 16})
	}
	me.driver = mk("driver")
	for _, id := range m.ids {
		me.nodes = append(me.nodes, mk(string(id)))
	}
	m.ev = me
}

// emitDriver records a driver-role event. Nil-safe: an unrecorded model
// pays one nil check.
func (me *modelEvents) emitDriver(k events.Kind, name string, f events.F) {
	if me == nil {
		return
	}
	//lint:ignore eventname nil-safe emission wrapper; every caller passes a constant name
	me.driver.Emit(k, name, f)
}

// emit records an event on node n's log. Nil-safe.
func (me *modelEvents) emit(n int, k events.Kind, name string, f events.F) {
	if me == nil {
		return
	}
	//lint:ignore eventname nil-safe emission wrapper; every caller passes a constant name
	me.nodes[n].Emit(k, name, f)
}

// Events returns the merged deterministic timeline of one simulated job
// (all jobs plus cluster-scoped events if job is empty). Empty without
// EnableEvents.
func (m *Model) Events(job string) []events.Event {
	if m.ev == nil {
		return nil
	}
	var all []events.Event
	all = append(all, m.ev.driver.Events(job, 0)...)
	for _, l := range m.ev.nodes {
		all = append(all, l.Events(job, 0)...)
	}
	return events.Merge(all)
}

// EventsDropped sums ring overwrites across every simulated log.
func (m *Model) EventsDropped() int64 {
	if m.ev == nil {
		return 0
	}
	total := m.ev.driver.Dropped()
	for _, l := range m.ev.nodes {
		total += l.Dropped()
	}
	return total
}

// DebugBundle captures the simulated cluster into the same canonical
// bundle format the real engine's flight recorder produces, so
// cmd/bundlecheck and the walkthroughs treat simulated and real captures
// alike. Requires EnableEvents (a bundle without events is invalid by
// definition — there is nothing to explain the capture with).
func (m *Model) DebugBundle(job, reason string) ([]byte, error) {
	if m.ev == nil {
		return nil, fmt.Errorf("simcluster: DebugBundle requires EnableEvents")
	}
	b := &bundle.Bundle{
		Reason:    reason,
		Node:      "driver",
		Job:       job,
		CreatedNS: m.ev.driver.NowNS(),
		Events:    m.Events(job),
		Spans:     m.TraceSpans(job),
	}
	b.EventsDropped = m.EventsDropped()
	for i, id := range m.ids {
		if m.dead != nil && m.dead[i] {
			continue
		}
		cs := m.caches[i].Stats()
		b.Metrics = append(b.Metrics, bundle.NodeMetrics{
			Node: string(id),
			Values: map[string]int64{
				"cache.hits":       int64(cs.Hits),
				"cache.misses":     int64(cs.Misses),
				"cache.insertions": int64(cs.Insertions),
				"cache.evictions":  int64(cs.Evictions),
			},
		})
		b.Membership.Members = append(b.Membership.Members, string(id))
	}
	b.Membership.Epoch = m.epoch
	return bundle.Encode(b)
}
