package simcluster

import (
	"testing"
)

// The experiment tests assert the paper's qualitative findings — who
// wins, by roughly what factor, where crossovers fall — not absolute
// numbers (the substrate is a simulator, not the authors' testbed).

// skipIfExpensive gates the figure sweeps that take >10 s even without
// instrumentation. The simulations are deterministic, so skipping them
// under -short or -race loses no assertion diversity per run; the model's
// event-queue concurrency stays race-checked by the fast Model* tests and
// the Fig5/6a/8 sweeps that still run.
func skipIfExpensive(t *testing.T) {
	t.Helper()
	if testing.Short() {
		t.Skip("expensive figure sweep: skipped in -short mode")
	}
	if raceEnabled {
		t.Skip("expensive figure sweep: ~20x slower under -race")
	}
}

func TestFig5Shapes(t *testing.T) {
	a, b, err := Fig5(nil)
	if err != nil {
		t.Fatal(err)
	}
	for i := range a {
		t.Logf("Fig5 nodes=%2d  (a) DHT=%6.0f HDFS=%6.0f MB/s   (b) DHT=%6.0f HDFS=%6.0f MB/s",
			a[i].Nodes, a[i].DHTMBps, a[i].HDFSMBps, b[i].DHTMBps, b[i].HDFSMBps)
	}
	for i := range a {
		// (a) pure read latency: the two file systems perform alike.
		if ratio := a[i].DHTMBps / a[i].HDFSMBps; ratio < 0.8 || ratio > 1.25 {
			t.Errorf("Fig5a nodes=%d: DHT/HDFS = %.2f, want ~1", a[i].Nodes, ratio)
		}
		// (b) whole-job throughput: the DHT FS holds its rate, HDFS pays
		// NameNode + container + scheduling overheads.
		if b[i].DHTMBps < 2*b[i].HDFSMBps {
			t.Errorf("Fig5b nodes=%d: DHT %.0f not ≫ HDFS %.0f", b[i].Nodes, b[i].DHTMBps, b[i].HDFSMBps)
		}
		// HDFS loses far more of its per-task throughput at the job level
		// than the DHT file system does.
		if b[i].HDFSMBps/a[i].HDFSMBps > 0.8*b[i].DHTMBps/a[i].DHTMBps {
			t.Errorf("Fig5 nodes=%d: HDFS job/task ratio %.2f not well below DHT's %.2f",
				a[i].Nodes, b[i].HDFSMBps/a[i].HDFSMBps, b[i].DHTMBps/a[i].DHTMBps)
		}
	}
	// Both metrics scale with cluster size.
	if a[len(a)-1].DHTMBps < 3*a[0].DHTMBps {
		t.Errorf("Fig5a DHT did not scale: %v -> %v", a[0].DHTMBps, a[len(a)-1].DHTMBps)
	}
}

func TestFig6aLAFBeatsDelay(t *testing.T) {
	rows, err := Fig6a()
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range rows {
		t.Logf("Fig6a %-14s LAF=%6.0fs Delay=%6.0fs", r.App, r.LAFSec, r.DelaySec)
		// Sort is shuffle-bound: both schedulers saturate the network, so
		// we only require parity there; the read/compute-bound apps must
		// show LAF strictly ahead.
		if r.App == "sort" {
			if r.LAFSec > 1.02*r.DelaySec {
				t.Errorf("Fig6a sort: LAF %.0f clearly worse than Delay %.0f", r.LAFSec, r.DelaySec)
			}
			continue
		}
		if r.LAFSec >= r.DelaySec {
			t.Errorf("Fig6a %s: LAF %.0f not faster than Delay %.0f", r.App, r.LAFSec, r.DelaySec)
		}
	}
}

func TestFig6bIterative(t *testing.T) {
	skipIfExpensive(t)
	rows, err := Fig6b()
	if err != nil {
		t.Fatal(err)
	}
	var kmeans, pagerank Fig6bRow
	for _, r := range rows {
		t.Logf("Fig6b %-9s LAF=%6.0f LAF+oC=%6.0f Delay=%6.0f Delay+oC=%6.0f",
			r.App, r.LAFSec, r.LAFOCacheSec, r.DelaySec, r.DelayOCacheSec)
		if r.App == "kmeans" {
			kmeans = r
		} else {
			pagerank = r
		}
		// LAF at least matches Delay; oCache for iteration outputs does
		// not help (the paper's OS-page-cache observation).
		if r.LAFSec > r.DelaySec*1.02 {
			t.Errorf("Fig6b %s: LAF %.0f worse than Delay %.0f", r.App, r.LAFSec, r.DelaySec)
		}
		if diff := r.LAFOCacheSec / r.LAFSec; diff < 0.95 || diff > 1.05 {
			t.Errorf("Fig6b %s: oCache changed time by %.2fx, paper found no effect", r.App, diff)
		}
	}
	// The LAF/Delay gap is larger for k-means (4000 mappers) than for
	// page rank (240 mappers, no load-balancing pressure).
	kGap := kmeans.DelaySec / kmeans.LAFSec
	pGap := pagerank.DelaySec / pagerank.LAFSec
	if kGap < pGap {
		t.Errorf("Fig6b: kmeans gap %.2f not larger than pagerank gap %.2f", kGap, pGap)
	}
}

func TestFig7SkewTradeoffs(t *testing.T) {
	skipIfExpensive(t)
	rows, err := Fig7(nil)
	if err != nil {
		t.Fatal(err)
	}
	byPolicy := map[string][]Fig7Row{}
	for _, r := range rows {
		t.Logf("Fig7 %-11s cache=%.1fGB exec=%6.0fs hit=%5.1f%% loadσ=%6.1f",
			r.Policy, r.CacheGB, r.ExecSec, 100*r.HitRatio, r.LoadStdDev)
		byPolicy[r.Policy] = append(byPolicy[r.Policy], r)
	}
	last := func(p string) Fig7Row { rs := byPolicy[p]; return rs[len(rs)-1] }
	// Delay caches aggressively too — its hit ratio must be substantial
	// (the paper measures Delay's hit ratio highest; in our cost model
	// the hot owners' caches thrash under Delay — the §III-D mechanism —
	// which caps it slightly below LAF's; see EXPERIMENTS.md).
	if last("delay").HitRatio < 0.5*last("laf-a1").HitRatio {
		t.Errorf("Fig7b: delay hit %.2f collapsed vs laf-a1 %.2f",
			last("delay").HitRatio, last("laf-a1").HitRatio)
	}
	// LAF executes much faster thanks to load balance (paper: up to
	// 2.86× at the largest cache).
	for _, p := range []string{"laf-a0.001", "laf-a1"} {
		if last(p).ExecSec >= last("delay").ExecSec {
			t.Errorf("Fig7a: %s %.0fs not faster than delay %.0fs",
				p, last(p).ExecSec, last("delay").ExecSec)
		}
	}
	// LAF's load stddev is far below Delay's (paper: 4.07 vs 13.07).
	if last("laf-a0.001").LoadStdDev*2 > last("delay").LoadStdDev {
		t.Errorf("Fig7: LAF load stddev %.1f not ≪ delay %.1f",
			last("laf-a0.001").LoadStdDev, last("delay").LoadStdDev)
	}
	// Hit ratio grows and execution time falls with cache size, for every
	// policy.
	for p, rs := range byPolicy {
		if rs[len(rs)-1].HitRatio <= rs[0].HitRatio {
			t.Errorf("Fig7b %s: hit ratio did not grow with cache", p)
		}
		if rs[len(rs)-1].ExecSec >= rs[0].ExecSec {
			t.Errorf("Fig7a %s: exec time did not fall with cache", p)
		}
	}
	// α=0.001 yields a higher hit ratio than α=1 (paper: ~13.2% vs ~10.8%).
	if last("laf-a0.001").HitRatio <= last("laf-a1").HitRatio {
		t.Errorf("Fig7b: α=0.001 hit %.3f not above α=1 %.3f",
			last("laf-a0.001").HitRatio, last("laf-a1").HitRatio)
	}
}

func TestFig8ConcurrentJobs(t *testing.T) {
	rows, err := Fig8(nil)
	if err != nil {
		t.Fatal(err)
	}
	type key struct {
		app     string
		cacheGB int
	}
	laf := map[key]float64{}
	delay := map[key]float64{}
	for _, r := range rows {
		t.Logf("Fig8 %-12s %-5s cache=%dGB exec=%6.0fs hit=%5.1f%%",
			r.App, r.Policy, r.CacheGB, r.ExecSec, 100*r.HitRatio)
		k := key{r.App, r.CacheGB}
		if r.Policy == "laf" {
			laf[k] = r.ExecSec
		} else {
			delay[k] = r.ExecSec
		}
	}
	for k, l := range laf {
		if l > delay[k]*1.05 {
			t.Errorf("Fig8 %s cache=%dGB: LAF %.0f worse than Delay %.0f", k.app, k.cacheGB, l, delay[k])
		}
	}
}

func TestFig9FrameworkComparison(t *testing.T) {
	skipIfExpensive(t)
	rows, err := Fig9()
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range rows {
		t.Logf("Fig9 %-14s Eclipse=%7.0f Spark=%7.0f Hadoop=%7.0f",
			r.App, r.EclipseSec, r.SparkSec, r.HadoopSec)
		if r.App == "pagerank" {
			// The paper reports Spark ~15% ahead over the full 2-iteration
			// job while also showing (Fig. 10c) that Spark's first
			// iteration is much slower; at 2 iterations those pull in
			// opposite directions, so we assert the two frameworks land
			// close (within ~30% either way) and leave the steady-state
			// crossover to the Fig. 10 test. Hadoop must remain slowest.
			ratio := r.EclipseSec / r.SparkSec
			if ratio < 0.7 || ratio > 1.45 {
				t.Errorf("Fig9 pagerank: Eclipse/Spark = %.2f, want ~1±0.3", ratio)
			}
			if r.HadoopSec <= r.SparkSec || r.HadoopSec <= r.EclipseSec {
				t.Errorf("Fig9 pagerank: Hadoop %.0f not slowest (Spark %.0f, Eclipse %.0f)",
					r.HadoopSec, r.SparkSec, r.EclipseSec)
			}
			continue
		}
		// Everywhere else EclipseMR is the fastest framework.
		if r.EclipseSec >= r.SparkSec {
			t.Errorf("Fig9 %s: EclipseMR %.0f not faster than Spark %.0f", r.App, r.EclipseSec, r.SparkSec)
		}
		if !r.SkipHadoop && r.EclipseSec >= r.HadoopSec {
			t.Errorf("Fig9 %s: EclipseMR %.0f not faster than Hadoop %.0f", r.App, r.EclipseSec, r.HadoopSec)
		}
	}
	// k-means: EclipseMR ~3.5× faster than Spark; logistic regression ~2.5×.
	for _, r := range rows {
		switch r.App {
		case "kmeans":
			if ratio := r.SparkSec / r.EclipseSec; ratio < 2 || ratio > 5 {
				t.Errorf("Fig9 kmeans: Spark/Eclipse = %.2f, want ~3.5", ratio)
			}
		case "logreg":
			if ratio := r.SparkSec / r.EclipseSec; ratio < 1.8 || ratio > 4 {
				t.Errorf("Fig9 logreg: Spark/Eclipse = %.2f, want ~2.5", ratio)
			}
		}
	}
}

func TestFig10IterationShapes(t *testing.T) {
	skipIfExpensive(t)
	figs, err := Fig10()
	if err != nil {
		t.Fatal(err)
	}
	for app, rows := range figs {
		for _, r := range rows {
			t.Logf("Fig10 %-9s iter=%2d Eclipse=%6.0f Spark=%6.0f", app, r.Iteration, r.EclipseSec, r.SparkSec)
		}
		// Spark's first iteration is much slower than its later ones (RDD
		// construction).
		if rows[0].SparkSec < 1.3*rows[1].SparkSec {
			t.Errorf("Fig10 %s: Spark iteration 1 (%.0f) not ≫ iteration 2 (%.0f)",
				app, rows[0].SparkSec, rows[1].SparkSec)
		}
		mid := rows[4]
		switch app {
		case "kmeans", "logreg":
			// EclipseMR runs subsequent iterations ~3× faster than Spark.
			if ratio := mid.SparkSec / mid.EclipseSec; ratio < 2 || ratio > 5 {
				t.Errorf("Fig10 %s: Spark/Eclipse steady-state = %.2f, want ~3", app, ratio)
			}
		case "pagerank":
			// Spark is faster on subsequent iterations, but EclipseMR is at
			// most ~30% slower; Spark's final iteration spikes (it writes
			// the final output to storage).
			if mid.SparkSec >= mid.EclipseSec {
				t.Errorf("Fig10 pagerank: Spark steady-state %.0f not faster than EclipseMR %.0f",
					mid.SparkSec, mid.EclipseSec)
			}
			if mid.EclipseSec > 1.4*mid.SparkSec {
				t.Errorf("Fig10 pagerank: EclipseMR steady-state %.0f more than ~30%% behind Spark %.0f",
					mid.EclipseSec, mid.SparkSec)
			}
			last := rows[len(rows)-1]
			if last.SparkSec < 1.2*mid.SparkSec {
				t.Errorf("Fig10 pagerank: Spark final iteration %.0f did not spike over %.0f",
					last.SparkSec, mid.SparkSec)
			}
		}
	}
}
