// Package simcluster models the performance of EclipseMR, Hadoop and
// Spark on the paper's testbed using the discrete-event substrate in
// internal/sim, re-using the *real* scheduler implementations (LAF,
// Delay, Fair) and the real LRU cache for placement decisions. It exists
// to regenerate the shape of every figure in §III at the paper's nominal
// scale (250 GB inputs, 40 nodes) deterministically and in milliseconds.
//
// The Hadoop and Spark comparators are cost models calibrated from the
// overheads the paper itself identifies: Hadoop's central NameNode, the
// ~7 s YARN container initialization per task ([16], [17]), its
// disk-based post-map pull shuffle; Spark's 5 s delay scheduling, RDD
// construction on the first iteration, JVM compute penalty relative to
// the C++ EclipseMR implementation, and its policy of keeping iteration
// outputs in memory rather than persisting them.
package simcluster

import (
	"fmt"

	"eclipsemr/internal/hashing"
)

// Params describes the simulated testbed. Defaults mirror §III: 40 nodes
// (two 20-node racks joined by a third switch), dual quad-core servers
// with 8 map + 8 reduce slots, one 7200 rpm data disk, 1 GbE NICs.
type Params struct {
	Nodes    int
	RackSize int
	// MapSlots / ReduceSlots per node.
	MapSlots    int
	ReduceSlots int
	// DiskBandwidth (bytes/s) and DiskSeek (s) model the single data HDD.
	DiskBandwidth float64
	DiskSeek      float64
	// NICBandwidth is each server's link speed; UplinkBandwidth is the
	// shared inter-switch link.
	NICBandwidth    float64
	UplinkBandwidth float64
	// MemoryBandwidth serves in-memory cache reads.
	MemoryBandwidth float64
	// CachePerNode is the distributed in-memory cache per server (iCache
	// + oCache combined, as the paper configures it).
	CachePerNode int64
	// BlockSize is the DHT-FS / HDFS block size.
	BlockSize int64
	// Replicas is the file system replication factor.
	Replicas int
	// Ring selects the consistent-hashing algorithm for placement and the
	// initial range table: "chord" (default, the paper's jittered
	// even-spaced ring), "chord:<vnodes>", "jump", "power" or
	// "rendezvous" (see hashing.Algorithms).
	Ring string
}

// DefaultParams returns the paper's testbed.
func DefaultParams() Params {
	return Params{
		Nodes:           40,
		RackSize:        20,
		MapSlots:        8,
		ReduceSlots:     8,
		DiskBandwidth:   100e6,
		DiskSeek:        8e-3,
		NICBandwidth:    125e6, // 1 Gb/s
		UplinkBandwidth: 125e6,
		MemoryBandwidth: 2e9,
		CachePerNode:    1 << 30, // 1 GB, the common experimental setting
		BlockSize:       128 << 20,
		Replicas:        3,
	}
}

func (p Params) withDefaults() Params {
	d := DefaultParams()
	if p.Nodes <= 0 {
		p.Nodes = d.Nodes
	}
	if p.RackSize <= 0 {
		p.RackSize = d.RackSize
	}
	if p.MapSlots <= 0 {
		p.MapSlots = d.MapSlots
	}
	if p.ReduceSlots <= 0 {
		p.ReduceSlots = d.ReduceSlots
	}
	if p.DiskBandwidth <= 0 {
		p.DiskBandwidth = d.DiskBandwidth
	}
	if p.DiskSeek <= 0 {
		p.DiskSeek = d.DiskSeek
	}
	if p.NICBandwidth <= 0 {
		p.NICBandwidth = d.NICBandwidth
	}
	if p.UplinkBandwidth <= 0 {
		p.UplinkBandwidth = d.UplinkBandwidth
	}
	if p.MemoryBandwidth <= 0 {
		p.MemoryBandwidth = d.MemoryBandwidth
	}
	if p.CachePerNode <= 0 {
		p.CachePerNode = d.CachePerNode
	}
	if p.BlockSize <= 0 {
		p.BlockSize = d.BlockSize
	}
	if p.Replicas <= 0 {
		p.Replicas = d.Replicas
	}
	return p
}

// AppProfile captures an application's cost coefficients, calibrated so
// the relative behaviour across apps matches §III (sort is shuffle-bound,
// k-means and logistic regression are compute-bound with tiny shuffles,
// page rank produces iteration outputs as large as its input, ...).
type AppProfile struct {
	Name string
	// MapCost / ReduceCost are CPU seconds per input/shuffle byte.
	MapCost    float64
	ReduceCost float64
	// ShuffleRatio is intermediate bytes per input byte (after the
	// combiner, where the app has one).
	ShuffleRatio float64
	// OutputRatio is reduce-output bytes per input byte.
	OutputRatio float64
	// IterOutputRatio is the per-iteration output size relative to the
	// input (k-means ≈ 0, page rank ≈ 1). Only meaningful for iterative
	// apps.
	IterOutputRatio float64
	// Iterative marks apps whose driver re-reads the same input every
	// iteration.
	Iterative bool
}

// Application profiles. Costs are per byte; with 128 MB blocks a map task
// reads for 1.3 s, so MapCost=10e-9 means ~1.3 s of compute per block.
var (
	ProfileWordCount = AppProfile{
		Name: "wordcount", MapCost: 9e-9, ReduceCost: 6e-9,
		ShuffleRatio: 0.05, OutputRatio: 0.02,
	}
	ProfileGrep = AppProfile{
		Name: "grep", MapCost: 3e-9, ReduceCost: 4e-9,
		ShuffleRatio: 0.002, OutputRatio: 0.002,
	}
	ProfileInvertedIndex = AppProfile{
		Name: "invertedindex", MapCost: 11e-9, ReduceCost: 8e-9,
		ShuffleRatio: 0.30, OutputRatio: 0.20,
	}
	ProfileSort = AppProfile{
		Name: "sort", MapCost: 2e-9, ReduceCost: 4e-9,
		ShuffleRatio: 1.0, OutputRatio: 1.0,
	}
	ProfileKMeans = AppProfile{
		Name: "kmeans", MapCost: 150e-9, ReduceCost: 5e-9,
		ShuffleRatio: 1e-7, OutputRatio: 1e-7, IterOutputRatio: 1e-7,
		Iterative: true,
	}
	ProfilePageRank = AppProfile{
		Name: "pagerank", MapCost: 25e-9, ReduceCost: 10e-9,
		ShuffleRatio: 1.0, OutputRatio: 1.0, IterOutputRatio: 1.0,
		Iterative: true,
	}
	ProfileLogReg = AppProfile{
		Name: "logreg", MapCost: 120e-9, ReduceCost: 5e-9,
		ShuffleRatio: 1e-7, OutputRatio: 1e-7, IterOutputRatio: 1e-7,
		Iterative: true,
	}
)

// FrameworkParams captures the per-framework overheads the models apply.
type FrameworkParams struct {
	// TaskOverhead is fixed per-task slot occupancy beyond IO and compute
	// (container/executor bookkeeping).
	TaskOverhead float64
	// JobOverhead is fixed per-job startup cost.
	JobOverhead float64
	// NameNodeLookup is the service time of one central-directory lookup
	// (zero for the decentralized DHT file system).
	NameNodeLookup float64
	// ComputeFactor scales app CPU costs (JVM vs the C++ EclipseMR).
	ComputeFactor float64
	// IOByteCost is extra CPU per input byte for record deserialization
	// and JVM object construction (zero for the C++ prototype).
	IOByteCost float64
	// ShuffleByteCost is CPU per shuffle byte for serialization, charged
	// on both the map and reduce side (Spark's sort-based shuffle; the
	// paper confirms Spark still loses sort at version 1.6).
	ShuffleByteCost float64
	// SerialLaunch > 0 serializes task launches per node through that
	// many launcher slots: YARN's NodeManager starts containers one or
	// two at a time, which is why "Hadoop spends 7 seconds for every
	// 128 MB block" instead of hiding the cost behind its 8 task slots.
	SerialLaunch int
	// DoubleSpill makes mappers write their shuffle output to local disk
	// twice (spill + merge pass of a sort-based shuffle).
	DoubleSpill bool
}

// Framework overheads. EclipseMR is a lightweight C++ prototype; Hadoop
// pays ~7 s of YARN container initialization per task ([16],[17]) plus
// NameNode lookups; Spark launches executors once per job, pays small
// per-task overheads, a central cache/driver round trip per task, and a
// JVM compute penalty (the paper credits EclipseMR's faster C++ k-means /
// logistic regression implementations).
var (
	EclipseOverheads = FrameworkParams{
		TaskOverhead: 0.05, JobOverhead: 0.5, NameNodeLookup: 0, ComputeFactor: 1.0,
		IOByteCost: 0,
	}
	HadoopOverheads = FrameworkParams{
		TaskOverhead: 7.0, JobOverhead: 10, NameNodeLookup: 1.5e-3, ComputeFactor: 2.0,
		IOByteCost: 5e-9, ShuffleByteCost: 4e-9, SerialLaunch: 1,
	}
	// Spark's per-task overhead is calibrated high (JVM task launch, GC
	// pressure and the task instability the paper observed) so that, as
	// in §III-E, Spark trails Hadoop slightly on non-iterative ETL jobs
	// while its RDD caching still wins iterative ones against Hadoop.
	// Spark's per-byte IO cost models JVM record deserialization and GC
	// pressure; it is charged only when input comes from storage — a
	// cached RDD partition is already deserialized objects, which is
	// precisely why Spark's later iterations are fast.
	SparkOverheads = FrameworkParams{
		TaskOverhead: 1.0, JobOverhead: 4, NameNodeLookup: 1.0e-3, ComputeFactor: 2.5,
		IOByteCost: 90e-9, ShuffleByteCost: 24e-9, DoubleSpill: true,
	}
)

// JobDesc describes one simulated job submission.
type JobDesc struct {
	Name string
	App  AppProfile
	// InputBytes is the dataset size; blocks are InputBytes/BlockSize.
	InputBytes int64
	// BlockKeys optionally fixes the input blocks' hash keys (Figure 7's
	// skewed workloads); when nil, keys are uniform from the seed.
	BlockKeys []hashing.Key
	// Iterations > 1 runs an iterative driver re-reading the input.
	Iterations int
	// CacheIterOutputs stores iteration outputs in oCache (§III-B's
	// "with oCache" configurations).
	CacheIterOutputs bool
	// Seed drives deterministic key generation.
	Seed int64
}

// JobStats reports one simulated job.
type JobStats struct {
	Name      string
	Start     float64
	Finish    float64
	MapTasks  int
	CacheHits int64
	CacheMiss int64
	// IterationFinish records the completion time of each iteration.
	IterationFinish []float64
	// BytesRead counts input bytes actually read (cache hits excluded).
	BytesRead int64
	// ReadSeconds sums the service time of every input read (disk seek +
	// transfer, plus the network hop for remote reads; queueing and
	// framework overheads excluded) — the denominator of Figure 5(a)'s
	// bytes-per-map-task-execution-time, which the paper describes as
	// measuring "the read latency of local disks".
	ReadSeconds float64
}

// Elapsed is the job's makespan in seconds.
func (s JobStats) Elapsed() float64 { return s.Finish - s.Start }

// HitRatio is the fraction of block reads served from the distributed
// in-memory cache.
func (s JobStats) HitRatio() float64 {
	total := s.CacheHits + s.CacheMiss
	if total == 0 {
		return 0
	}
	return float64(s.CacheHits) / float64(total)
}

// IterationTimes converts cumulative iteration finish times to
// per-iteration durations.
func (s JobStats) IterationTimes() []float64 {
	out := make([]float64, len(s.IterationFinish))
	prev := s.Start
	for i, f := range s.IterationFinish {
		out[i] = f - prev
		prev = f
	}
	return out
}

func validateJob(p Params, job JobDesc) error {
	if job.InputBytes <= 0 && len(job.BlockKeys) == 0 {
		return fmt.Errorf("simcluster: job %s has no input", job.Name)
	}
	if job.Iterations < 0 {
		return fmt.Errorf("simcluster: job %s has negative iterations", job.Name)
	}
	_ = p
	return nil
}
