package simcluster

import (
	"strings"
	"testing"

	"eclipsemr/internal/bundle"
	"eclipsemr/internal/events"
)

// runKillRecovery executes one seeded kill-a-node WordCount: node 3 is
// crashed at the exact map→reduce boundary, its partition re-homes, and
// the run completes. Returns the rendered merged timeline and the
// captured debug bundle.
func runKillRecovery(t *testing.T, seed uint64) (timeline string, bundleBytes []byte, stats JobStats) {
	t.Helper()
	p := DefaultParams()
	p.Nodes = 8
	m, err := NewModel(p, Eclipse, LAF(0.001))
	if err != nil {
		t.Fatal(err)
	}
	m.EnableEvents(seed)
	m.EnableTracing(seed)
	if err := m.KillNodeAtReduceStart(3); err != nil {
		t.Fatal(err)
	}
	job := JobDesc{Name: "chaos-wc", App: ProfileWordCount, InputBytes: 2 * gb, Seed: 1}
	if err := m.Submit(job, 0, func(s JobStats) { stats = s }); err != nil {
		t.Fatal(err)
	}
	m.Run()
	if stats.Finish == 0 {
		t.Fatal("job never completed after the kill")
	}
	if m.EventsDropped() != 0 {
		t.Fatalf("event rings dropped %d events", m.EventsDropped())
	}
	data, err := m.DebugBundle("", "soak_failure")
	if err != nil {
		t.Fatal(err)
	}
	return events.Render(m.Events("")), data, stats
}

// TestKillRecoveryDeterministicTimeline is the deterministic chaos e2e
// the PR pins its acceptance on: two identical seeded kill-a-node runs
// must produce byte-identical merged event timelines and byte-identical
// debug bundles, and the timeline must contain the exact recovery
// sequence in order.
func TestKillRecoveryDeterministicTimeline(t *testing.T) {
	tl1, b1, _ := runKillRecovery(t, 99)
	tl2, b2, _ := runKillRecovery(t, 99)
	if tl1 != tl2 {
		t.Fatalf("seeded runs diverged:\n--- run 1 ---\n%s\n--- run 2 ---\n%s", tl1, tl2)
	}
	if string(b1) != string(b2) {
		t.Fatal("seeded runs produced different debug bundles")
	}

	// The recovery narrative must appear in this exact order: the victim
	// is suspected, evicted, its partition re-homes to the successor, the
	// job records the recovery, and the re-homed partition still reduces.
	sequence := []string{
		"member.suspect",
		"member.evict",
		"partition.rehome",
		"job.recovery",
		"reduce.finish",
		"job.done",
	}
	at := 0
	for _, want := range sequence {
		i := strings.Index(tl1[at:], want)
		if i < 0 {
			t.Fatalf("timeline missing %q after offset %d:\n%s", want, at, tl1)
		}
		at += i
	}
	for _, want := range []string{
		"member.evict", "(node-03)", // the armed victim, by name
		"part-03", // its partition is the one that re-homes
	} {
		if !strings.Contains(tl1, want) {
			t.Fatalf("timeline missing %q:\n%s", want, tl1)
		}
	}
	// The dead node must not emit anything after eviction; its partition's
	// reduce.finish must exist and come from the successor.
	foundRehomed := false
	for _, line := range strings.Split(tl1, "\n") {
		if strings.Contains(line, "reduce.finish") && strings.Contains(line, "part-03") {
			foundRehomed = true
			if !strings.Contains(line, "node-04") {
				t.Fatalf("re-homed partition reduced on the wrong node: %s", line)
			}
		}
	}
	if !foundRehomed {
		t.Fatal("timeline records no reduce.finish for the re-homed partition")
	}
}

// TestKillRecoveryBundleValidates pins the auto-captured bundle against
// the schema cmd/bundlecheck enforces: events + metrics + spans +
// membership present, the victim gone from the view, and the canonical
// encoding stable under re-encode.
func TestKillRecoveryBundleValidates(t *testing.T) {
	_, data, _ := runKillRecovery(t, 7)
	if err := bundle.Validate(data); err != nil {
		t.Fatalf("captured bundle invalid: %v", err)
	}
	b, err := bundle.Decode(data)
	if err != nil {
		t.Fatal(err)
	}
	if b.Reason != "soak_failure" {
		t.Errorf("reason = %q", b.Reason)
	}
	for _, mem := range b.Membership.Members {
		if mem == "node-03" {
			t.Error("bundle membership still lists the crashed node")
		}
	}
	if len(b.Membership.Members) != 7 {
		t.Errorf("membership has %d members, want 7", len(b.Membership.Members))
	}
	if b.Membership.Epoch != 1 {
		t.Errorf("epoch = %d, want 1 after one eviction", b.Membership.Epoch)
	}
	if len(b.Spans) == 0 {
		t.Error("bundle has no spans despite EnableTracing")
	}
	// Canonical re-encode must be byte-identical.
	re, err := bundle.Encode(b)
	if err != nil {
		t.Fatal(err)
	}
	if string(re) != string(data) {
		t.Error("re-encoding the decoded bundle changed bytes")
	}
}

// TestKillRecoveryCostsShowUp pins that recovery is not free in the
// model: the same job without a kill finishes no later than the killed
// run (the re-homed partition pays a remote pull and queue sharing).
func TestKillRecoveryCostsShowUp(t *testing.T) {
	p := DefaultParams()
	p.Nodes = 8
	job := JobDesc{Name: "base-wc", App: ProfileWordCount, InputBytes: 2 * gb, Seed: 1}

	base, err := NewModel(p, Eclipse, LAF(0.001))
	if err != nil {
		t.Fatal(err)
	}
	var baseStats JobStats
	if err := base.Submit(job, 0, func(s JobStats) { baseStats = s }); err != nil {
		t.Fatal(err)
	}
	base.Run()

	_, _, killed := runKillRecovery(t, 1)
	if killed.Finish < baseStats.Finish {
		t.Errorf("killed run (%.3fs) finished before the healthy run (%.3fs)",
			killed.Finish, baseStats.Finish)
	}
}

// TestEventsDisabledByDefault pins the off switch: a model without
// EnableEvents records nothing and Events/DebugBundle degrade cleanly.
func TestEventsDisabledByDefault(t *testing.T) {
	m, err := NewModel(DefaultParams(), Eclipse, LAF(0.001))
	if err != nil {
		t.Fatal(err)
	}
	if err := m.Submit(JobDesc{Name: "off", App: ProfileWordCount, InputBytes: gb, Seed: 1}, 0, nil); err != nil {
		t.Fatal(err)
	}
	m.Run()
	if evs := m.Events(""); len(evs) != 0 {
		t.Fatalf("disabled events collected %d", len(evs))
	}
	if _, err := m.DebugBundle("", "x"); err == nil {
		t.Fatal("DebugBundle without EnableEvents did not error")
	}
}
