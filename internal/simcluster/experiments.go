package simcluster

import (
	"fmt"
	"sort"

	"eclipsemr/internal/hashing"
	"eclipsemr/internal/workloads"
)

// This file regenerates every table and figure of the paper's §III. Each
// Fig* function runs the simulation(s) behind one figure and returns the
// same series the paper plots; cmd/eclipse-bench prints them and
// bench_test.go asserts their shape.

// overrideFw swaps a model's framework overheads (used by Figure 5, which
// measures raw IO with and without framework overheads).
func (m *Model) overrideFw(fw FrameworkParams) { m.fw = fw }

// SetProactiveShuffle toggles EclipseMR's proactive shuffle (§II-D); the
// shuffle ablation benchmark disables it to measure its contribution.
func (m *Model) SetProactiveShuffle(enabled bool) { m.noProactive = !enabled }

const gb = int64(1) << 30

// dfsioProfile is a pure streaming-read workload (DFSIO).
var dfsioProfile = AppProfile{Name: "dfsio", MapCost: 1e-10, ReduceCost: 0, ShuffleRatio: 0, OutputRatio: 0}

// Fig5Row is one point of Figure 5: aggregate read throughput (MB/s) at a
// node count, for the DHT file system and HDFS.
type Fig5Row struct {
	Nodes    int
	DHTMBps  float64
	HDFSMBps float64
}

// Fig5 reproduces Figures 5(a) and 5(b): DFSIO read throughput while
// varying the cluster size. The (a) metric divides bytes by map-task
// execution time only — framework overheads (NameNode lookups, container
// initialization, job scheduling) are excluded, so both file systems
// perform alike. The (b) metric divides by whole-job execution time,
// which charges HDFS/Hadoop for those overheads.
func Fig5(nodeCounts []int) (a, b []Fig5Row, err error) {
	if len(nodeCounts) == 0 {
		nodeCounts = []int{6, 14, 22, 30, 38}
	}
	// run returns (bytes / Σ read time × total slots, bytes / job time):
	// the paper's per-map-task metric (a) and per-job metric (b).
	run := func(nodes int, kind Framework) (perTask, perJob float64, err error) {
		p := DefaultParams()
		p.Nodes = nodes
		if nodes < p.RackSize {
			p.RackSize = nodes
		}
		p.CachePerNode = 1 // effectively no cache: DFSIO is a cold read
		// DFSIO measures the file system, not the scheduler: tasks run at
		// their blocks' owners (sticky delay scheduling = static aligned
		// ranges with unlimited wait).
		m, err := NewModel(p, kind, Policy{Kind: "delay", Wait: -1})
		if err != nil {
			return 0, 0, err
		}
		input := int64(nodes) * 50 * p.BlockSize // 50 blocks per node
		var stats JobStats
		if err := m.Submit(JobDesc{Name: "dfsio", App: dfsioProfile, InputBytes: input},
			0, func(s JobStats) { stats = s }); err != nil {
			return 0, 0, err
		}
		m.Run()
		perTask = float64(input) / stats.ReadSeconds * float64(nodes) / 1e6
		perJob = float64(input) / stats.Elapsed() / 1e6
		return perTask, perJob, nil
	}
	for _, n := range nodeCounts {
		dhtA, dhtB, err := run(n, Eclipse)
		if err != nil {
			return nil, nil, err
		}
		hdfsA, hdfsB, err := run(n, Hadoop)
		if err != nil {
			return nil, nil, err
		}
		a = append(a, Fig5Row{Nodes: n, DHTMBps: dhtA, HDFSMBps: hdfsA})
		b = append(b, Fig5Row{Nodes: n, DHTMBps: dhtB, HDFSMBps: hdfsB})
	}
	return a, b, nil
}

// Fig6aRow is one bar pair of Figure 6(a): non-iterative job execution
// time under LAF vs Delay scheduling.
type Fig6aRow struct {
	App      string
	LAFSec   float64
	DelaySec float64
}

// Fig6a reproduces Figure 6(a): single cold-cache 250 GB jobs under the
// two EclipseMR schedulers.
func Fig6a() ([]Fig6aRow, error) {
	apps := []AppProfile{ProfileInvertedIndex, ProfileSort, ProfileWordCount, ProfileGrep}
	var out []Fig6aRow
	for _, app := range apps {
		row := Fig6aRow{App: app.Name}
		for _, pol := range []Policy{LAF(0.001), Delay()} {
			m, err := NewModel(DefaultParams(), Eclipse, pol)
			if err != nil {
				return nil, err
			}
			var stats JobStats
			if err := m.Submit(JobDesc{Name: app.Name, App: app, InputBytes: 250 * gb, Seed: 1},
				0, func(s JobStats) { stats = s }); err != nil {
				return nil, err
			}
			m.Run()
			if pol.Kind == "laf" {
				row.LAFSec = stats.Elapsed()
			} else {
				row.DelaySec = stats.Elapsed()
			}
		}
		out = append(out, row)
	}
	return out, nil
}

// Fig6bRow is one group of Figure 6(b): iterative job execution time for
// LAF and Delay, with and without oCache for iteration outputs.
type Fig6bRow struct {
	App            string
	LAFSec         float64
	LAFOCacheSec   float64
	DelaySec       float64
	DelayOCacheSec float64
}

// Fig6b reproduces Figure 6(b): k-means (250 GB) and page rank (15 GB),
// five iterations, 1 GB cache per server. Enabling oCache for iteration
// outputs changes little — the paper attributes this to the OS page cache
// already holding the freshly written outputs, and the model's next
// iteration never re-reads them from disk either way.
func Fig6b() ([]Fig6bRow, error) {
	jobs := []struct {
		app   AppProfile
		bytes int64
	}{
		{ProfileKMeans, 250 * gb},
		{ProfilePageRank, 15 * gb},
	}
	var out []Fig6bRow
	for _, jd := range jobs {
		row := Fig6bRow{App: jd.app.Name}
		for _, pol := range []Policy{LAF(0.001), Delay()} {
			for _, oCache := range []bool{false, true} {
				m, err := NewModel(DefaultParams(), Eclipse, pol)
				if err != nil {
					return nil, err
				}
				var stats JobStats
				if err := m.Submit(JobDesc{
					Name: jd.app.Name, App: jd.app, InputBytes: jd.bytes,
					Iterations: 5, CacheIterOutputs: oCache, Seed: 2,
				}, 0, func(s JobStats) { stats = s }); err != nil {
					return nil, err
				}
				m.Run()
				switch {
				case pol.Kind == "laf" && !oCache:
					row.LAFSec = stats.Elapsed()
				case pol.Kind == "laf":
					row.LAFOCacheSec = stats.Elapsed()
				case !oCache:
					row.DelaySec = stats.Elapsed()
				default:
					row.DelayOCacheSec = stats.Elapsed()
				}
			}
		}
		out = append(out, row)
	}
	return out, nil
}

// Fig7Row is one cache-size point of Figure 7 for one policy.
type Fig7Row struct {
	Policy     string
	CacheGB    float64
	ExecSec    float64
	HitRatio   float64
	LoadStdDev float64
}

// fig7Workload builds the skewed grep workload of §III-C: 24 jobs, 6410
// map tasks, 90 GB read in total, with block hash keys drawn from two
// merged normal distributions. Jobs sample their blocks from a shared
// 4000-block universe so popular blocks recur and can hit the cache.
func fig7Workload(blockSize int64) [][]hashing.Key {
	const (
		jobsN    = 24
		maps     = 6410
		universe = 4000
	)
	uni := workloads.UniformKeys(11, universe)
	sorted := append([]hashing.Key(nil), uni...)
	//lint:ignore ringcmp ordinal sort backs a successor search; the idx==len reset below supplies the wraparound
	sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
	// Sample two-normal positions and snap to the nearest universe block,
	// so access frequency is skewed over real stored blocks.
	samples := workloads.TwoNormalKeys(13, maps, 0.22, 0.71, 0.04, 0.65)
	perJob := maps / jobsN
	jobs := make([][]hashing.Key, jobsN)
	for i, s := range samples {
		//lint:ignore ringcmp successor search over the ordinal-sorted universe; idx==len wraps to slot 0
		idx := sort.Search(len(sorted), func(k int) bool { return sorted[k] >= s })
		if idx == len(sorted) {
			idx = 0
		}
		j := i / perJob
		if j >= jobsN {
			j = jobsN - 1
		}
		jobs[j] = append(jobs[j], sorted[idx])
	}
	return jobs
}

// Fig7 reproduces Figures 7(a) and 7(b): execution time and cache hit
// ratio of the skewed grep workload while sweeping the per-server cache
// size, for LAF α=0.001, LAF α=1 and Delay.
func Fig7(cacheGBs []float64) ([]Fig7Row, error) {
	if len(cacheGBs) == 0 {
		cacheGBs = []float64{0, 0.5, 1.0, 1.5}
	}
	policies := []struct {
		name string
		pol  Policy
	}{
		{"laf-a0.001", LAF(0.001)},
		{"laf-a1", LAF(1)},
		{"delay", Delay()},
	}
	const blockSize = 14 << 20 // 6410 maps × 14 MB = 90 GB as in §III-C
	jobs := fig7Workload(blockSize)
	var out []Fig7Row
	for _, pc := range policies {
		for _, cgb := range cacheGBs {
			p := DefaultParams()
			p.BlockSize = blockSize
			p.CachePerNode = int64(cgb * float64(gb))
			if p.CachePerNode == 0 {
				p.CachePerNode = 1 // an empty cache, not "default"
			}
			m, err := NewModel(p, Eclipse, pc.pol)
			if err != nil {
				return nil, err
			}
			var finish float64
			var hits, misses int64
			for ji, keys := range jobs {
				if err := m.Submit(JobDesc{
					Name:       fmt.Sprintf("grep-%02d", ji),
					App:        ProfileGrep,
					InputBytes: int64(len(keys)) * blockSize,
					BlockKeys:  keys,
				}, 0, func(s JobStats) {
					if s.Finish > finish {
						finish = s.Finish
					}
					hits += s.CacheHits
					misses += s.CacheMiss
				}); err != nil {
					return nil, err
				}
			}
			m.Run()
			hr := 0.0
			if hits+misses > 0 {
				hr = float64(hits) / float64(hits+misses)
			}
			out = append(out, Fig7Row{
				Policy:     pc.name,
				CacheGB:    cgb,
				ExecSec:    finish,
				HitRatio:   hr,
				LoadStdDev: m.sched.Stats().LoadStdDev(),
			})
		}
	}
	return out, nil
}

// Fig8Row is one bar of Figure 8: one application's execution time within
// the concurrent batch, for one scheduler and cache size.
type Fig8Row struct {
	App      string
	Policy   string
	CacheGB  int
	ExecSec  float64
	HitRatio float64
}

// Fig8 reproduces Figure 8: a batch of 7 concurrent jobs (2 grep, 2 word
// count, 1 page rank, 1 sort, 1 k-means) over 15 GB inputs, with word
// count and grep sharing one input dataset, swept over 1/4/8 GB caches
// for LAF and Delay.
func Fig8(cacheGBs []int) ([]Fig8Row, error) {
	if len(cacheGBs) == 0 {
		cacheGBs = []int{1, 4, 8}
	}
	type jobSpec struct {
		name  string
		app   AppProfile
		seed  int64
		iters int
	}
	// word count and grep jobs share input block keys (same seed).
	batch := []jobSpec{
		{"grep-1", ProfileGrep, 100, 1},
		{"grep-2", ProfileGrep, 100, 1},
		{"wordcount-1", ProfileWordCount, 100, 1},
		{"wordcount-2", ProfileWordCount, 100, 1},
		{"pagerank", ProfilePageRank, 101, 2},
		{"sort", ProfileSort, 102, 1},
		{"kmeans", ProfileKMeans, 103, 2},
	}
	var out []Fig8Row
	for _, polName := range []string{"laf", "delay"} {
		pol := LAF(0.001)
		if polName == "delay" {
			pol = Delay()
		}
		for _, cgb := range cacheGBs {
			p := DefaultParams()
			p.CachePerNode = int64(cgb) * gb
			m, err := NewModel(p, Eclipse, pol)
			if err != nil {
				return nil, err
			}
			results := make(map[string]JobStats, len(batch))
			for _, js := range batch {
				if err := m.Submit(JobDesc{
					Name:       js.name,
					App:        js.app,
					InputBytes: 15 * gb,
					Iterations: js.iters,
					Seed:       js.seed,
				}, 0, func(s JobStats) { results[s.Name] = s }); err != nil {
					return nil, err
				}
			}
			m.Run()
			for _, js := range batch {
				s := results[js.name]
				out = append(out, Fig8Row{
					App: js.name, Policy: polName, CacheGB: cgb,
					ExecSec: s.Elapsed(), HitRatio: s.HitRatio(),
				})
			}
		}
	}
	return out, nil
}

// Fig9Row is one application group of Figure 9: absolute execution time
// per framework plus the normalization base.
type Fig9Row struct {
	App        string
	EclipseSec float64
	SparkSec   float64
	HadoopSec  float64
	// SkipHadoop marks apps where the paper omits Hadoop (an order of
	// magnitude slower on iterative jobs).
	SkipHadoop bool
}

// fig9Jobs lists the Figure 9 workloads: 250 GB datasets (15 GB for page
// rank), k-means ×5, page rank ×2, logistic regression ×10 iterations.
func fig9Jobs() []struct {
	app        AppProfile
	bytes      int64
	iters      int
	skipHadoop bool
} {
	return []struct {
		app        AppProfile
		bytes      int64
		iters      int
		skipHadoop bool
	}{
		{ProfileInvertedIndex, 250 * gb, 1, false},
		{ProfileWordCount, 250 * gb, 1, false},
		{ProfileSort, 250 * gb, 1, false},
		{ProfileKMeans, 250 * gb, 5, true},
		{ProfileLogReg, 250 * gb, 10, true},
		{ProfilePageRank, 15 * gb, 2, false},
	}
}

// Fig9 reproduces Figure 9: EclipseMR (LAF) vs Spark vs Hadoop across the
// six applications.
func Fig9() ([]Fig9Row, error) {
	var out []Fig9Row
	for _, jd := range fig9Jobs() {
		row := Fig9Row{App: jd.app.Name, SkipHadoop: jd.skipHadoop}
		for _, kind := range []Framework{Eclipse, Spark, Hadoop} {
			if kind == Hadoop && jd.skipHadoop {
				continue
			}
			m, err := NewModel(DefaultParams(), kind, LAF(0.001))
			if err != nil {
				return nil, err
			}
			var stats JobStats
			if err := m.Submit(JobDesc{
				Name: jd.app.Name, App: jd.app, InputBytes: jd.bytes,
				Iterations: jd.iters, Seed: 3,
			}, 0, func(s JobStats) { stats = s }); err != nil {
				return nil, err
			}
			m.Run()
			switch kind {
			case Eclipse:
				row.EclipseSec = stats.Elapsed()
			case Spark:
				row.SparkSec = stats.Elapsed()
			case Hadoop:
				row.HadoopSec = stats.Elapsed()
			}
		}
		out = append(out, row)
	}
	return out, nil
}

// Fig10Row is one iteration point of Figure 10 for one application.
type Fig10Row struct {
	App        string
	Iteration  int
	EclipseSec float64
	SparkSec   float64
}

// Fig10 reproduces Figures 10(a)–(c): per-iteration execution times of
// k-means, logistic regression and page rank over ten iterations,
// EclipseMR (LAF) vs Spark.
func Fig10() (map[string][]Fig10Row, error) {
	jobs := []struct {
		app   AppProfile
		bytes int64
	}{
		{ProfileKMeans, 250 * gb},
		{ProfileLogReg, 250 * gb},
		{ProfilePageRank, 15 * gb},
	}
	out := make(map[string][]Fig10Row)
	for _, jd := range jobs {
		rows := make([]Fig10Row, 10)
		for i := range rows {
			rows[i] = Fig10Row{App: jd.app.Name, Iteration: i + 1}
		}
		for _, kind := range []Framework{Eclipse, Spark} {
			m, err := NewModel(DefaultParams(), kind, LAF(0.001))
			if err != nil {
				return nil, err
			}
			var stats JobStats
			if err := m.Submit(JobDesc{
				Name: jd.app.Name, App: jd.app, InputBytes: jd.bytes,
				Iterations: 10, Seed: 4,
			}, 0, func(s JobStats) { stats = s }); err != nil {
				return nil, err
			}
			m.Run()
			times := stats.IterationTimes()
			for i := range rows {
				if kind == Eclipse {
					rows[i].EclipseSec = times[i]
				} else {
					rows[i].SparkSec = times[i]
				}
			}
		}
		out[jd.app.Name] = rows
	}
	return out, nil
}
