package simcluster

import (
	"bytes"
	"strings"
	"testing"

	"eclipsemr/internal/trace"
)

// tracedRun executes one small traced WordCount (two iterations, so the
// second pass hits the warm cache) and returns the collected spans plus
// the Chrome export bytes.
func tracedRun(t *testing.T, seed uint64) ([]trace.Span, []byte) {
	t.Helper()
	m, err := NewModel(Params{Nodes: 4, RackSize: 4}, Eclipse, LAF(0.001))
	if err != nil {
		t.Fatal(err)
	}
	m.EnableTracing(seed)
	if err := m.Submit(JobDesc{
		Name: "wc", App: ProfileWordCount, InputBytes: 2 << 30, Iterations: 2, Seed: 1,
	}, 0, nil); err != nil {
		t.Fatal(err)
	}
	m.Run()
	spans := m.TraceSpans("wc")
	data, err := m.TraceChrome("wc")
	if err != nil {
		t.Fatal(err)
	}
	return spans, data
}

// TestTracedRunDeterministic is the acceptance gate for simulated
// tracing: two runs with the same seed must export byte-identical
// Chrome trace JSON, and the trace must cover the whole
// driver→map→shuffle→reduce path on every node with cache annotations.
func TestTracedRunDeterministic(t *testing.T) {
	spans, data1 := tracedRun(t, 7)
	_, data2 := tracedRun(t, 7)
	if !bytes.Equal(data1, data2) {
		t.Fatalf("same seed produced different trace bytes (%d vs %d bytes)", len(data1), len(data2))
	}
	if err := trace.ValidateChrome(data1); err != nil {
		t.Fatalf("exported trace invalid: %v", err)
	}
	_, data3 := tracedRun(t, 8)
	if bytes.Equal(data1, data3) {
		t.Fatal("different seeds produced identical trace bytes; span IDs ignore the seed")
	}

	names := map[string]bool{}
	nodes := map[string]bool{}
	cacheVals := map[string]bool{}
	for _, s := range spans {
		names[s.Name] = true
		nodes[s.Node] = true
		for _, a := range s.Annotations {
			if a.Key == "cache" {
				cacheVals[a.Value] = true
			}
		}
	}
	for _, want := range []string{
		"driver.job", "task.map", "map.read", "map.compute", "shuffle.send",
		"task.reduce", "shuffle.recv", "reduce.compute", "reduce.write",
	} {
		if !names[want] {
			t.Errorf("no %q span in traced run (have %v)", want, names)
		}
	}
	for _, n := range []string{"driver", "node-00", "node-01", "node-02", "node-03"} {
		if !nodes[n] {
			t.Errorf("no spans from %s (have %v)", n, nodes)
		}
	}
	// Iteration 1 reads from disk, iteration 2 from the warm cache.
	if !cacheVals["miss"] || !cacheVals["hit"] {
		t.Errorf("want both cache=miss and cache=hit annotations, got %v", cacheVals)
	}

	tree := trace.BuildTree(spans)
	if len(tree) != 1 {
		t.Fatalf("got %d root spans, want 1 (driver.job)", len(tree))
	}
	tl := trace.RenderTimeline(spans)
	if !strings.Contains(tl, "driver.job") || !strings.Contains(tl, "task.reduce") {
		t.Errorf("timeline missing stages:\n%s", tl)
	}
}

// TestUntracedModelRecordsNothing pins the off switch: a model without
// EnableTracing collects no spans and exports an empty trace.
func TestUntracedModelRecordsNothing(t *testing.T) {
	m, err := NewModel(Params{Nodes: 2, RackSize: 2}, Eclipse, LAF(0.001))
	if err != nil {
		t.Fatal(err)
	}
	if err := m.Submit(JobDesc{
		Name: "wc", App: ProfileWordCount, InputBytes: 256 << 20, Seed: 1,
	}, 0, nil); err != nil {
		t.Fatal(err)
	}
	m.Run()
	if spans := m.TraceSpans("wc"); spans != nil {
		t.Fatalf("untraced model collected %d spans", len(spans))
	}
}
