//go:build !race

package simcluster

const raceEnabled = false
