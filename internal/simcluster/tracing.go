package simcluster

import (
	"context"

	"eclipsemr/internal/metrics"
	"eclipsemr/internal/trace"
)

// modelTrace holds the per-node tracers of a traced simulation run. All
// tracers share the model's virtual clock and derive span IDs from the
// run seed, so a single-threaded simulated run produces byte-identical
// traces for identical parameters — the property the determinism test
// and EXPERIMENTS.md rely on.
type modelTrace struct {
	driver *trace.Tracer
	nodes  []*trace.Tracer
}

// EnableTracing turns span recording on for this model: one tracer per
// simulated node plus one for the driver role, all on the simulation
// clock, with span IDs seeded from seed. Call before Run; spans are
// collected afterwards with TraceSpans or TraceChrome.
func (m *Model) EnableTracing(seed uint64) {
	clock := metrics.ClockFunc(m.S.Clock())
	mt := &modelTrace{}
	mk := func(node string) *trace.Tracer {
		// A simulated job emits a handful of spans per task; 64Ki slots
		// keep moderate paper-scale runs from overwriting their tails.
		t := trace.New(node, trace.Options{Clock: clock, Seed: seed, Capacity: 1 << 16})
		t.SetEnabled(true)
		return t
	}
	mt.driver = mk("driver")
	for _, id := range m.ids {
		mt.nodes = append(mt.nodes, mk(string(id)))
	}
	m.tr = mt
}

// startRoot opens the job's root span on the driver tracer. Nil-safe:
// an untraced model returns the context unchanged and a nil span.
func (mt *modelTrace) startRoot(ctx context.Context, job, name string) (context.Context, *trace.Span) {
	if mt == nil {
		return ctx, nil
	}
	return mt.driver.StartRoot(ctx, job, name)
}

// startSpan opens a child span on node n's tracer. Nil-safe.
func (mt *modelTrace) startSpan(n int, ctx context.Context, name string) (context.Context, *trace.Span) {
	if mt == nil {
		return ctx, nil
	}
	return mt.nodes[n].StartSpan(ctx, name)
}

// startSpanAt opens a child span on node n's tracer with an explicit
// (virtual) start time, for reconstructed intervals such as scheduler
// queue waits. Nil-safe.
func (mt *modelTrace) startSpanAt(n int, ctx context.Context, name string, startNS int64) (context.Context, *trace.Span) {
	if mt == nil {
		return ctx, nil
	}
	return mt.nodes[n].StartSpanAt(ctx, name, startNS)
}

// nowNS reads the shared virtual clock through a tracer (0 untraced).
func (mt *modelTrace) nowNS(n int) int64 {
	if mt == nil {
		return 0
	}
	return mt.nodes[n].NowNS()
}

// TraceSpans returns the collected spans of one simulated job (all jobs
// if job is empty), deduped in canonical order. Empty without
// EnableTracing.
func (m *Model) TraceSpans(job string) []trace.Span {
	if m.tr == nil {
		return nil
	}
	var all []trace.Span
	all = append(all, m.tr.driver.Spans(job)...)
	for _, t := range m.tr.nodes {
		all = append(all, t.Spans(job)...)
	}
	return trace.Dedupe(all)
}

// TraceChrome exports one simulated job's trace as Chrome trace-event
// JSON (load in Perfetto / chrome://tracing).
func (m *Model) TraceChrome(job string) ([]byte, error) {
	return trace.ChromeTrace(m.TraceSpans(job))
}
