//go:build race

package simcluster

const raceEnabled = true
