package simcluster

import (
	"math"
	"testing"

	"eclipsemr/internal/workloads"
)

func runOne(t *testing.T, kind Framework, pol Policy, job JobDesc) JobStats {
	t.Helper()
	m, err := NewModel(DefaultParams(), kind, pol)
	if err != nil {
		t.Fatal(err)
	}
	var stats JobStats
	if err := m.Submit(job, 0, func(s JobStats) { stats = s }); err != nil {
		t.Fatal(err)
	}
	m.Run()
	if stats.Finish == 0 {
		t.Fatal("job never completed")
	}
	return stats
}

func TestModelDeterministic(t *testing.T) {
	job := JobDesc{Name: "det", App: ProfileWordCount, InputBytes: 10 * gb, Seed: 1}
	a := runOne(t, Eclipse, LAF(0.001), job)
	b := runOne(t, Eclipse, LAF(0.001), job)
	if a.Finish != b.Finish || a.CacheHits != b.CacheHits || a.BytesRead != b.BytesRead {
		t.Fatalf("nondeterministic: %+v vs %+v", a, b)
	}
}

func TestModelValidation(t *testing.T) {
	if _, err := NewModel(DefaultParams(), Framework("bogus"), LAF(1)); err == nil {
		t.Fatal("bogus framework accepted")
	}
	m, err := NewModel(DefaultParams(), Eclipse, LAF(1))
	if err != nil {
		t.Fatal(err)
	}
	if err := m.Submit(JobDesc{Name: "empty"}, 0, nil); err == nil {
		t.Fatal("empty job accepted")
	}
	if err := m.Submit(JobDesc{Name: "neg", InputBytes: gb, Iterations: -1}, 0, nil); err == nil {
		t.Fatal("negative iterations accepted")
	}
	if err := m.Submit(JobDesc{Name: "dup", InputBytes: gb}, 0, nil); err != nil {
		t.Fatal(err)
	}
	if err := m.Submit(JobDesc{Name: "dup", InputBytes: gb}, 0, nil); err == nil {
		t.Fatal("duplicate job name accepted")
	}
}

func TestModelIterationAccounting(t *testing.T) {
	stats := runOne(t, Eclipse, LAF(0.001), JobDesc{
		Name: "iters", App: ProfileKMeans, InputBytes: 20 * gb, Iterations: 4, Seed: 2,
	})
	if len(stats.IterationFinish) != 4 {
		t.Fatalf("iteration finishes = %d", len(stats.IterationFinish))
	}
	times := stats.IterationTimes()
	var sum float64
	for i, d := range times {
		if d <= 0 {
			t.Fatalf("iteration %d duration %g", i, d)
		}
		sum += d
	}
	// Iteration durations partition the interval from job start to finish
	// (the job-overhead prefix belongs to iteration 1's duration).
	if math.Abs(sum-(stats.Finish-stats.Start)) > 1e-6 {
		t.Fatalf("iteration times sum %g != makespan %g", sum, stats.Finish-stats.Start)
	}
	if stats.IterationFinish[3] != stats.Finish {
		t.Fatalf("last iteration finish %g != job finish %g", stats.IterationFinish[3], stats.Finish)
	}
	if stats.MapTasks != 4*int(20*gb/DefaultParams().BlockSize) {
		t.Fatalf("map tasks = %d", stats.MapTasks)
	}
}

func TestModelCacheWarmsAcrossIterations(t *testing.T) {
	p := DefaultParams()
	p.CachePerNode = 64 << 30 // cache far larger than the input: all re-reads hit
	m, err := NewModel(p, Eclipse, LAF(0.001))
	if err != nil {
		t.Fatal(err)
	}
	var stats JobStats
	if err := m.Submit(JobDesc{
		Name: "warm", App: ProfileKMeans, InputBytes: 10 * gb, Iterations: 3, Seed: 3,
	}, 0, func(s JobStats) { stats = s }); err != nil {
		t.Fatal(err)
	}
	m.Run()
	blocks := int64(10 * gb / p.BlockSize)
	if stats.CacheMiss != blocks {
		t.Fatalf("misses = %d want %d (first iteration only)", stats.CacheMiss, blocks)
	}
	if stats.CacheHits != 2*blocks {
		t.Fatalf("hits = %d want %d", stats.CacheHits, 2*blocks)
	}
	if stats.BytesRead != 10*gb {
		t.Fatalf("bytes read = %d want one pass", stats.BytesRead)
	}
}

func TestModelHadoopSlowerThanEclipse(t *testing.T) {
	job := JobDesc{Name: "cmp", App: ProfileWordCount, InputBytes: 50 * gb, Seed: 4}
	e := runOne(t, Eclipse, LAF(0.001), job)
	h := runOne(t, Hadoop, LAF(0.001), job)
	if h.Elapsed() <= e.Elapsed() {
		t.Fatalf("Hadoop %.0fs not slower than Eclipse %.0fs", h.Elapsed(), e.Elapsed())
	}
}

func TestModelExplicitBlockKeys(t *testing.T) {
	keys := workloads.TwoNormalKeys(7, 100, 0.3, 0.6, 0.02, 0.5)
	stats := runOne(t, Eclipse, Delay(), JobDesc{
		Name: "keys", App: ProfileGrep, InputBytes: int64(len(keys)) * (14 << 20), BlockKeys: keys,
	})
	if stats.MapTasks != len(keys) {
		t.Fatalf("map tasks = %d want %d", stats.MapTasks, len(keys))
	}
}

func TestModelConcurrentJobsInterleave(t *testing.T) {
	m, err := NewModel(DefaultParams(), Eclipse, LAF(0.001))
	if err != nil {
		t.Fatal(err)
	}
	var a, b JobStats
	if err := m.Submit(JobDesc{Name: "j1", App: ProfileGrep, InputBytes: 30 * gb, Seed: 1},
		0, func(s JobStats) { a = s }); err != nil {
		t.Fatal(err)
	}
	if err := m.Submit(JobDesc{Name: "j2", App: ProfileGrep, InputBytes: 30 * gb, Seed: 2},
		0, func(s JobStats) { b = s }); err != nil {
		t.Fatal(err)
	}
	m.Run()
	solo := runOne(t, Eclipse, LAF(0.001), JobDesc{Name: "solo", App: ProfileGrep, InputBytes: 30 * gb, Seed: 1})
	// Two competing jobs each take longer than one alone, but less than
	// 3× (they share disks and slots, not serialize fully).
	if a.Elapsed() <= solo.Elapsed() || b.Elapsed() <= solo.Elapsed() {
		t.Fatalf("contention had no cost: solo %.0f, a %.0f, b %.0f",
			solo.Elapsed(), a.Elapsed(), b.Elapsed())
	}
	if a.Elapsed() > 3*solo.Elapsed() {
		t.Fatalf("contention overpriced: solo %.0f vs %.0f", solo.Elapsed(), a.Elapsed())
	}
}

func TestJobStatsHelpers(t *testing.T) {
	s := JobStats{Start: 10, Finish: 30, CacheHits: 3, CacheMiss: 1,
		IterationFinish: []float64{15, 30}}
	if s.Elapsed() != 20 {
		t.Fatalf("Elapsed = %g", s.Elapsed())
	}
	if s.HitRatio() != 0.75 {
		t.Fatalf("HitRatio = %g", s.HitRatio())
	}
	times := s.IterationTimes()
	if times[0] != 5 || times[1] != 15 {
		t.Fatalf("IterationTimes = %v", times)
	}
	var empty JobStats
	if empty.HitRatio() != 0 {
		t.Fatal("empty HitRatio != 0")
	}
}

func TestParamsWithDefaults(t *testing.T) {
	p := Params{}.withDefaults()
	d := DefaultParams()
	if p != d {
		t.Fatalf("zero params did not default: %+v", p)
	}
	p = Params{Nodes: 10}.withDefaults()
	if p.Nodes != 10 || p.DiskBandwidth != d.DiskBandwidth {
		t.Fatalf("partial params = %+v", p)
	}
}

func TestProactiveShuffleToggle(t *testing.T) {
	run := func(proactive bool) float64 {
		m, err := NewModel(DefaultParams(), Eclipse, LAF(0.001))
		if err != nil {
			t.Fatal(err)
		}
		m.SetProactiveShuffle(proactive)
		var stats JobStats
		if err := m.Submit(JobDesc{Name: "s", App: ProfileSort, InputBytes: 50 * gb, Seed: 5},
			0, func(s JobStats) { stats = s }); err != nil {
			t.Fatal(err)
		}
		m.Run()
		return stats.Elapsed()
	}
	on, off := run(true), run(false)
	if on >= off {
		t.Fatalf("proactive shuffle (%.0fs) not faster than pull (%.0fs)", on, off)
	}
}

// TestModelRingBackends pins Params.Ring: the simulator runs a full job
// deterministically on every placement backend, and an unknown name is
// rejected at construction.
func TestModelRingBackends(t *testing.T) {
	job := JobDesc{Name: "ring", App: ProfileWordCount, InputBytes: 5 * gb, Seed: 3}
	for _, alg := range []string{"", "chord", "chord:8", "jump", "power", "rendezvous"} {
		p := DefaultParams()
		p.Ring = alg
		run := func() JobStats {
			m, err := NewModel(p, Eclipse, LAF(0.001))
			if err != nil {
				t.Fatalf("Ring=%q: %v", alg, err)
			}
			var stats JobStats
			if err := m.Submit(job, 0, func(s JobStats) { stats = s }); err != nil {
				t.Fatal(err)
			}
			m.Run()
			return stats
		}
		a, b := run(), run()
		if a.Finish == 0 {
			t.Fatalf("Ring=%q: job never completed", alg)
		}
		if a.Finish != b.Finish || a.BytesRead != b.BytesRead {
			t.Fatalf("Ring=%q nondeterministic: %+v vs %+v", alg, a, b)
		}
	}
	p := DefaultParams()
	p.Ring = "md5"
	if _, err := NewModel(p, Eclipse, LAF(0.001)); err == nil {
		t.Fatal("unknown ring algorithm accepted")
	}
}
