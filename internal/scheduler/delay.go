package scheduler

import (
	"sync"
	"time"

	"eclipsemr/internal/hashing"
	"eclipsemr/internal/metrics"
)

// DelayConfig parameterizes the delay scheduler.
type DelayConfig struct {
	// Wait is how long a task waits for its (static) range owner before
	// being reassigned to any free server. Spark's suggested value, used
	// by the paper, is 5 seconds. Wait < 0 means unlimited waiting, the
	// behaviour the paper ascribes to LAF with weight factor 0.
	Wait time.Duration
}

// DefaultDelayConfig returns the paper's 5-second delay.
func DefaultDelayConfig() DelayConfig { return DelayConfig{Wait: 5 * time.Second} }

// Delay implements the paper's variant of Spark's delay scheduling
// (§II-F): hash-key ranges are fixed and aligned with the DHT file
// system; a task prefers its range owner and is launched non-locally
// only after it has been *skipped* — passed over while some other server
// had a free slot — for cfg.Wait, matching the delay-scheduling rule of
// Zaharia et al. [33] (the wait clock does not run while the whole
// cluster is saturated, since there is no slot the task is declining).
type Delay struct {
	mu    sync.Mutex
	cfg   DelayConfig
	table *hashing.RangeTable
	slots slotTable
	queue []delayTask
	stats Stats
	reg   *metrics.Registry
	// rrOffset rotates the job that leads each dispatch round.
	rrOffset int
}

type delayTask struct {
	pendingTask
	// skippedAt is when the task first declined an available non-local
	// slot; zero means it has not been skipped yet.
	skippedAt time.Duration
	skipped   bool
}

var _ Scheduler = (*Delay)(nil)

// NewDelay builds a Delay scheduler over the DHT file system ring; the
// hash-key table is aligned with the ring and never changes.
func NewDelay(cfg DelayConfig, ring hashing.Ring) (*Delay, error) {
	table, err := ring.RangeTable()
	if err != nil {
		return nil, err
	}
	return &Delay{
		cfg:   cfg,
		table: table,
		slots: newSlotTable(),
		reg:   metrics.NewRegistry(),
	}, nil
}

// AddNode registers a worker or updates a known worker's slot capacity;
// outstanding (in-flight) slots are preserved across re-registration.
func (s *Delay) AddNode(id hashing.NodeID, slots int) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.slots.add(id, slots)
}

// RemoveNode drops a worker.
func (s *Delay) RemoveNode(id hashing.NodeID) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.slots.remove(id)
}

// Submit enqueues a task.
func (s *Delay) Submit(t Task, now time.Duration) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.queue = append(s.queue, delayTask{pendingTask: pendingTask{task: t, enqueued: now}})
}

// Dispatch assigns tasks in two passes, the way delay scheduling offers
// slots: every free slot first goes to a queued task that is local to it;
// only slots that no queued task wants locally are offered to waiting
// tasks, which accept non-local slots once they have been skipped —
// passed over while such a slot was available — for cfg.Wait.
func (s *Delay) Dispatch(now time.Duration) []Assignment {
	s.mu.Lock()
	defer s.mu.Unlock()
	var out []Assignment
	s.rrOffset++
	s.queue = interleaveByJob(s.queue, func(p delayTask) string { return p.task.Job }, s.rrOffset)
	// Pass 1: local assignments, FIFO per owner.
	remaining := s.queue[:0]
	for i := range s.queue {
		p := s.queue[i]
		owner := s.table.Lookup(p.task.HashKey)
		if s.slots.known(owner) && s.slots.free(owner) > 0 {
			s.slots.take(owner)
			out = append(out, s.assignLocked(p.pendingTask, owner, true, now))
			continue
		}
		remaining = append(remaining, p)
	}
	s.queue = remaining
	// Pass 2: slots nobody wants locally are offered to waiting tasks.
	// The skip clock starts at the first declined offer; after cfg.Wait
	// the task accepts a non-local slot.
	if _, anyFree := s.mostFreeLocked(); !anyFree {
		return out
	}
	remaining = s.queue[:0]
	for i := range s.queue {
		p := s.queue[i]
		node, anyFree := s.mostFreeLocked()
		if !anyFree {
			remaining = append(remaining, s.queue[i:]...)
			break
		}
		if !p.skipped {
			p.skipped = true
			p.skippedAt = now
		}
		if s.cfg.Wait >= 0 && now-p.skippedAt >= s.cfg.Wait {
			s.slots.take(node)
			s.stats.DelayExpired++
			owner := s.table.Lookup(p.task.HashKey)
			out = append(out, s.assignLocked(p.pendingTask, node, node == owner, now))
			continue
		}
		remaining = append(remaining, p)
	}
	s.queue = remaining
	return out
}

// mostFreeLocked returns the server with the most free slots. Ties break
// deterministically by node ID so simulation runs are reproducible.
// Caller holds s.mu.
func (s *Delay) mostFreeLocked() (hashing.NodeID, bool) {
	var best hashing.NodeID
	bestFree := 0
	for id := range s.slots.caps {
		f := s.slots.free(id)
		if f > bestFree || (f == bestFree && f > 0 && id < best) {
			best, bestFree = id, f
		}
	}
	return best, bestFree > 0
}

func (s *Delay) assignLocked(p pendingTask, node hashing.NodeID, local bool, now time.Duration) Assignment {
	s.stats.Assigned++
	if local {
		s.stats.LocalAssigns++
	}
	if s.stats.PerNode == nil {
		s.stats.PerNode = make(map[hashing.NodeID]uint64)
	}
	s.stats.PerNode[node]++
	wait := now - p.enqueued
	s.stats.TotalWait += wait
	s.reg.Histogram("sched.queue_wait_ns").Observe(int64(wait))
	return Assignment{Task: p.task, Node: node, Local: local, Waited: wait}
}

// Release returns a slot to the node.
func (s *Delay) Release(node hashing.NodeID) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.slots.release(node)
}

// Metrics returns the scheduler's registry.
func (s *Delay) Metrics() *metrics.Registry { return s.reg }

// NextDeadline returns the earliest instant a skipped task's delay
// expires, so a virtual-time driver knows when Dispatch could make
// progress without a Release. Tasks that have never been skipped carry no
// deadline: they advance only when their owner frees a slot.
func (s *Delay) NextDeadline() (time.Duration, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.cfg.Wait < 0 {
		return 0, false
	}
	var earliest time.Duration
	found := false
	for _, p := range s.queue {
		if !p.skipped {
			continue
		}
		d := p.skippedAt + s.cfg.Wait
		if !found || d < earliest {
			earliest, found = d, true
		}
	}
	return earliest, found
}

// RangeTable returns the static hash-key table.
func (s *Delay) RangeTable() *hashing.RangeTable {
	return s.table
}

// Pending returns the queued task count.
func (s *Delay) Pending() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.queue)
}

// Stats returns a snapshot of the counters.
func (s *Delay) Stats() Stats {
	s.mu.Lock()
	defer s.mu.Unlock()
	return cloneStats(s.stats)
}
