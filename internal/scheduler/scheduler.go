// Package scheduler implements EclipseMR's job scheduling policies:
//
//   - LAF, the locality-aware fair scheduler (Algorithm 1 of the paper):
//     assigns each task to the server whose dynamically re-partitioned
//     hash-key range covers the task's input hash key, and periodically
//     re-cuts the key space into equally-probable ranges using a
//     box-kernel density estimate with a moving average.
//   - Delay, the paper's variant of Spark's delay scheduling: static
//     hash-key ranges aligned with the DHT file system; a task waits up
//     to a configurable delay (5 s in Spark) for its range owner before
//     being reassigned to any free server.
//   - Fair, a locality-unaware least-loaded scheduler resembling Hadoop's
//     default fair scheduling, used as a baseline.
//
// Schedulers are pure state machines over an abstract clock: callers feed
// task submissions, slot releases and the current time, and pull ready
// assignments. Both the real cluster runtime (wall clock) and the
// discrete-event simulator (virtual clock) drive the same code.
package scheduler

import (
	"math"
	"sort"
	"time"

	"eclipsemr/internal/hashing"
	"eclipsemr/internal/metrics"
)

// Task is one schedulable unit of work (a map or reduce task).
type Task struct {
	// Job identifies the owning job.
	Job string
	// ID is unique within the job.
	ID string
	// HashKey is the hash key of the task's input data (the input block
	// for map tasks, the intermediate-result key range for reduce tasks).
	// The scheduler predicts cache locality from it.
	HashKey hashing.Key
}

// Assignment binds a task to a worker server.
type Assignment struct {
	Task Task
	Node hashing.NodeID
	// Local reports whether the node's hash-key range covered the task's
	// key at assignment time, i.e. whether the scheduler predicts a cache
	// hit.
	Local bool
	// Waited is how long the task sat in the queue.
	Waited time.Duration
}

// Scheduler is the interface shared by all policies. Implementations are
// safe for concurrent use.
type Scheduler interface {
	// AddNode registers a worker with the given number of task slots.
	AddNode(id hashing.NodeID, slots int)
	// RemoveNode deregisters a worker; its queued work is reassigned on
	// subsequent Dispatch calls.
	RemoveNode(id hashing.NodeID)
	// Submit enqueues a task at the given time.
	Submit(t Task, now time.Duration)
	// Dispatch returns every assignment that can be made at time now,
	// consuming slots. It never blocks.
	Dispatch(now time.Duration) []Assignment
	// Release returns a slot on the node, typically on task completion.
	Release(node hashing.NodeID)
	// NextDeadline reports the earliest future instant at which Dispatch
	// could produce new assignments without any Release — only the Delay
	// policy has such deadlines.
	NextDeadline() (time.Duration, bool)
	// RangeTable returns the scheduler's current hash-key table.
	RangeTable() *hashing.RangeTable
	// Pending returns the number of queued, unassigned tasks.
	Pending() int
	// Stats returns a snapshot of scheduling counters.
	Stats() Stats
	// Metrics returns the scheduler's registry (queue-wait histogram,
	// repartition timings) for inclusion in node-level snapshots.
	Metrics() *metrics.Registry
}

// Stats captures the load-balance and locality behaviour the paper
// measures in §III-C.
type Stats struct {
	Assigned     uint64
	LocalAssigns uint64
	// PerNode counts tasks assigned to each node; the paper reports the
	// standard deviation of processed tasks per slot.
	PerNode map[hashing.NodeID]uint64
	// Repartitions counts hash-key-range recomputations (LAF only).
	Repartitions uint64
	// DelayExpired counts tasks that gave up waiting for their range
	// owner (Delay only).
	DelayExpired uint64
	// TotalWait accumulates queue wait across assigned tasks.
	TotalWait time.Duration
}

// LocalityRatio returns the fraction of assignments predicted local.
func (s Stats) LocalityRatio() float64 {
	if s.Assigned == 0 {
		return 0
	}
	return float64(s.LocalAssigns) / float64(s.Assigned)
}

// LoadStdDev returns the standard deviation of per-node assignment counts,
// the paper's load-balance metric.
func (s Stats) LoadStdDev() float64 {
	n := len(s.PerNode)
	if n == 0 {
		return 0
	}
	var sum float64
	for _, c := range s.PerNode {
		sum += float64(c)
	}
	mean := sum / float64(n)
	var ss float64
	for _, c := range s.PerNode {
		d := float64(c) - mean
		ss += d * d
	}
	return math.Sqrt(ss / float64(n))
}

// interleaveByJob reorders queued tasks into a round-robin across jobs
// while preserving each job's internal FIFO order. Schedulers apply it at
// dispatch so concurrent jobs share slots fairly (the multi-job fairness
// Hadoop's fair scheduler provides); with a single job the order is
// unchanged. rot rotates which job leads each round so ties do not always
// break toward the same job — callers advance it per dispatch.
func interleaveByJob[T any](q []T, jobOf func(T) string, rot int) []T {
	if len(q) < 2 {
		return q
	}
	// Cheap single-job fast path: the overwhelmingly common case inside
	// one job's map phase needs no regrouping (and no allocations).
	first := jobOf(q[0])
	multi := false
	for i := 1; i < len(q); i++ {
		if jobOf(q[i]) != first {
			multi = true
			break
		}
	}
	if !multi {
		return q
	}
	byJob := make(map[string][]T)
	for _, t := range q {
		j := jobOf(t)
		byJob[j] = append(byJob[j], t)
	}
	if len(byJob) < 2 {
		return q
	}
	// The round order must be independent of the queue's current layout
	// (which the previous interleave already rotated), or the rotation
	// cancels itself and ties permanently favor one job: use the sorted
	// job names, rotated by the caller's counter.
	order := make([]string, 0, len(byJob))
	for j := range byJob {
		order = append(order, j)
	}
	sort.Strings(order)
	if r := rot % len(order); r > 0 {
		order = append(order[r:], order[:r]...)
	}
	out := q[:0:0]
	for len(out) < len(q) {
		for _, j := range order {
			if tasks := byJob[j]; len(tasks) > 0 {
				out = append(out, tasks[0])
				byJob[j] = tasks[1:]
			}
		}
	}
	return out
}

// slotTable tracks per-node task slots as capacity plus outstanding
// (dispatched but not yet released) counts. Keeping the two separate —
// instead of a single decremented "free" number — makes node
// re-registration safe: a heartbeat-driven AddNode for an already-known
// node updates only the capacity, so slots consumed by in-flight tasks
// are still owed and a later Release cannot inflate the node past its
// configured count. Callers hold their scheduler's mutex.
type slotTable struct {
	caps map[hashing.NodeID]int
	used map[hashing.NodeID]int
}

func newSlotTable() slotTable {
	return slotTable{caps: make(map[hashing.NodeID]int), used: make(map[hashing.NodeID]int)}
}

// add registers a node or updates a known node's capacity, preserving its
// outstanding count.
func (t slotTable) add(id hashing.NodeID, slots int) {
	t.caps[id] = slots
}

// known reports whether the node is registered.
func (t slotTable) known(id hashing.NodeID) bool {
	_, ok := t.caps[id]
	return ok
}

// remove forgets a node entirely, including slots still in flight (the
// node is presumed dead; its tasks are re-dispatched elsewhere).
func (t slotTable) remove(id hashing.NodeID) {
	delete(t.caps, id)
	delete(t.used, id)
}

// free returns the node's currently available slots (never negative: a
// capacity shrink below the outstanding count just blocks new dispatches
// until releases catch up).
func (t slotTable) free(id hashing.NodeID) int {
	f := t.caps[id] - t.used[id]
	if f < 0 {
		return 0
	}
	return f
}

// take consumes one slot on the node.
func (t slotTable) take(id hashing.NodeID) {
	t.used[id]++
}

// release returns one slot, clamping at zero outstanding so spurious
// releases (e.g. a duplicate completion after failover) cannot mint
// capacity.
func (t slotTable) release(id hashing.NodeID) {
	if !t.known(id) {
		return
	}
	if t.used[id] > 0 {
		t.used[id]--
	}
}

// cloneStats deep-copies counters for snapshot returns.
func cloneStats(s Stats) Stats {
	out := s
	out.PerNode = make(map[hashing.NodeID]uint64, len(s.PerNode))
	for k, v := range s.PerNode {
		out.PerNode[k] = v
	}
	return out
}
