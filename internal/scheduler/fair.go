package scheduler

import (
	"math/rand"
	"sort"
	"sync"
	"time"

	"eclipsemr/internal/hashing"
	"eclipsemr/internal/metrics"
)

// Fair is a locality-unaware least-loaded scheduler resembling Hadoop's
// default fair scheduling: each task goes to the server with the most
// free slots, FIFO. It serves as the baseline that trades all cache
// locality for immediate dispatch.
type Fair struct {
	mu    sync.Mutex
	table *hashing.RangeTable // retained only so locality can be *measured*
	slots slotTable
	queue []pendingTask
	stats Stats
	reg   *metrics.Registry
	// rrOffset rotates the job that leads each dispatch round.
	rrOffset int
	// rnd breaks ties between equally loaded servers. Picking by node ID
	// instead would make placement mirror itself across identical job
	// runs, silently granting the locality-unaware baseline warm caches.
	// The fixed seed keeps the scheduler deterministic as a whole while
	// the stream position still separates one dispatch from the next.
	rnd *rand.Rand
}

var _ Scheduler = (*Fair)(nil)

// NewFair builds a Fair scheduler. The ring is used only to report which
// assignments happened to be local; it does not influence placement.
func NewFair(ring hashing.Ring) (*Fair, error) {
	table, err := ring.RangeTable()
	if err != nil {
		return nil, err
	}
	return &Fair{
		table: table,
		slots: newSlotTable(),
		rnd:   rand.New(rand.NewSource(1)),
		reg:   metrics.NewRegistry(),
	}, nil
}

// AddNode registers a worker or updates a known worker's slot capacity;
// outstanding (in-flight) slots are preserved across re-registration.
func (s *Fair) AddNode(id hashing.NodeID, slots int) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.slots.add(id, slots)
}

// RemoveNode drops a worker.
func (s *Fair) RemoveNode(id hashing.NodeID) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.slots.remove(id)
}

// Submit enqueues a task.
func (s *Fair) Submit(t Task, now time.Duration) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.queue = append(s.queue, pendingTask{task: t, enqueued: now})
}

// Dispatch assigns queued tasks to the least-loaded servers, FIFO.
func (s *Fair) Dispatch(now time.Duration) []Assignment {
	s.mu.Lock()
	defer s.mu.Unlock()
	var out []Assignment
	s.rrOffset++
	s.queue = interleaveByJob(s.queue, func(p pendingTask) string { return p.task.Job }, s.rrOffset)
	for len(s.queue) > 0 {
		node, ok := s.mostFreeLocked()
		if !ok {
			break
		}
		p := s.queue[0]
		s.queue = s.queue[1:]
		s.slots.take(node)
		local := s.table.Lookup(p.task.HashKey) == node
		s.stats.Assigned++
		if local {
			s.stats.LocalAssigns++
		}
		if s.stats.PerNode == nil {
			s.stats.PerNode = make(map[hashing.NodeID]uint64)
		}
		s.stats.PerNode[node]++
		wait := now - p.enqueued
		s.stats.TotalWait += wait
		s.reg.Histogram("sched.queue_wait_ns").Observe(int64(wait))
		out = append(out, Assignment{Task: p.task, Node: node, Local: local, Waited: wait})
	}
	return out
}

func (s *Fair) mostFreeLocked() (hashing.NodeID, bool) {
	bestFree := 0
	var ties []hashing.NodeID
	for id := range s.slots.caps {
		f := s.slots.free(id)
		switch {
		case f > bestFree:
			bestFree = f
			ties = ties[:0]
			ties = append(ties, id)
		case f == bestFree && f > 0:
			ties = append(ties, id)
		}
	}
	if bestFree == 0 {
		return "", false
	}
	sort.Slice(ties, func(i, j int) bool { return ties[i] < ties[j] })
	return ties[s.rnd.Intn(len(ties))], true
}

// Release returns a slot to the node.
func (s *Fair) Release(node hashing.NodeID) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.slots.release(node)
}

// Metrics returns the scheduler's registry.
func (s *Fair) Metrics() *metrics.Registry { return s.reg }

// NextDeadline always reports none.
func (s *Fair) NextDeadline() (time.Duration, bool) { return 0, false }

// RangeTable returns the (measurement-only) DHT-aligned table.
func (s *Fair) RangeTable() *hashing.RangeTable { return s.table }

// Pending returns the queued task count.
func (s *Fair) Pending() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.queue)
}

// Stats returns a snapshot of the counters.
func (s *Fair) Stats() Stats {
	s.mu.Lock()
	defer s.mu.Unlock()
	return cloneStats(s.stats)
}
