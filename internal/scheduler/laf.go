package scheduler

import (
	"sync"
	"time"

	"eclipsemr/internal/hashing"
	"eclipsemr/internal/kde"
	"eclipsemr/internal/metrics"
)

// LAFConfig parameterizes the locality-aware fair scheduler.
type LAFConfig struct {
	// KDE holds the density-estimation parameters (bins, bandwidth,
	// alpha, window). Alpha is the weight factor from Algorithm 1: 1
	// considers only the current workload (perfect load balance), values
	// near 0 track the long-term cached-data distribution. Weight factor
	// exactly 0 disables re-partitioning altogether so the ranges stay
	// fixed at their initial (DHT-aligned) state.
	KDE kde.Config
}

// DefaultLAFConfig mirrors the paper's settled parameters (alpha=0.001).
func DefaultLAFConfig() LAFConfig {
	return LAFConfig{KDE: kde.DefaultConfig()}
}

// LAF implements Algorithm 1. A task is dispatched only to the server
// whose current hash-key range contains the task's input hash key; each
// assignment feeds the density estimator, and every completed window
// re-partitions the key space into equally-probable ranges.
type LAF struct {
	mu    sync.Mutex
	cfg   LAFConfig
	est   *kde.Estimator
	table *hashing.RangeTable
	// order is the fixed server order to which CDF partitions are
	// assigned; it follows ring order so range shifts move load between
	// ring neighbors (enabling the misplaced-cache migration option).
	order []hashing.NodeID
	slots slotTable
	queue []pendingTask
	stats Stats
	// rrOffset rotates the job that leads each dispatch round.
	rrOffset int
	reg      *metrics.Registry
}

type pendingTask struct {
	task     Task
	enqueued time.Duration
}

var _ Scheduler = (*LAF)(nil)

// NewLAF builds a LAF scheduler. The initial hash-key table comes from
// the ring's RangeTable (arc-aligned on the chord backend — the paper's
// starting state — uniform on the others); pass a ring containing the
// worker servers. Workers still must be registered with AddNode to
// receive slots.
func NewLAF(cfg LAFConfig, ring hashing.Ring) (*LAF, error) {
	est, err := kde.New(cfg.KDE)
	if err != nil {
		return nil, err
	}
	table, err := ring.RangeTable()
	if err != nil {
		return nil, err
	}
	return &LAF{
		cfg:   cfg,
		est:   est,
		table: table,
		order: table.Servers(),
		slots: newSlotTable(),
		reg:   metrics.NewRegistry(),
	}, nil
}

// AddNode registers a worker with the given slot count. Nodes unknown to
// the initial ring are appended to the partition order and the key space
// re-cut uniformly. Re-registering a known node (heartbeat refresh)
// updates only its capacity: slots held by in-flight tasks stay
// outstanding, so their eventual Release cannot push the node past its
// configured count.
func (s *LAF) AddNode(id hashing.NodeID, slots int) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.slots.known(id) {
		s.slots.add(id, slots)
		return
	}
	s.slots.add(id, slots)
	known := false
	for _, o := range s.order {
		if o == id {
			known = true
			break
		}
	}
	if !known {
		s.order = append(s.order, id)
		s.repartitionLocked()
	}
}

// RemoveNode drops a worker; its hash-key range is redistributed on the
// next repartition (and immediately via a uniform re-cut so queued tasks
// are not orphaned).
func (s *LAF) RemoveNode(id hashing.NodeID) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.slots.remove(id)
	for i, o := range s.order {
		if o == id {
			s.order = append(s.order[:i], s.order[i+1:]...)
			break
		}
	}
	if len(s.order) > 0 {
		s.repartitionLocked()
	}
}

// Submit enqueues a task and feeds its hash key to the density estimator
// (line 10 of Algorithm 1). The key is recorded at arrival, not at slot
// assignment: Algorithm 1 handles each incoming task to completion before
// the next, so its distribution sees the workload's true arrival mix. An
// implementation that recorded keys when a slot was found would observe a
// capacity-biased mix — every server's range appears equally popular
// because every server assigns at its slot rate — and the re-partition
// would fix-point at the current ranges instead of adapting.
func (s *LAF) Submit(t Task, now time.Duration) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.queue = append(s.queue, pendingTask{task: t, enqueued: now})
	if s.cfg.KDE.Alpha > 0 && s.est.Add(t.HashKey) {
		s.repartitionLocked()
		s.stats.Repartitions++
	}
}

// Dispatch assigns every queued task whose range owner has a free slot,
// in FIFO order. This is the paper's while-loop: a task waits for the
// server covering its hash key; because ranges are equally probable, the
// wait is balanced across servers.
func (s *LAF) Dispatch(now time.Duration) []Assignment {
	s.mu.Lock()
	defer s.mu.Unlock()
	var out []Assignment
	s.rrOffset++
	s.queue = interleaveByJob(s.queue, func(p pendingTask) string { return p.task.Job }, s.rrOffset)
	remaining := s.queue[:0]
	for _, p := range s.queue {
		owner := s.table.Lookup(p.task.HashKey)
		if s.slots.known(owner) && s.slots.free(owner) > 0 {
			s.slots.take(owner)
			out = append(out, s.assignLocked(p, owner, true, now))
		} else {
			remaining = append(remaining, p)
		}
	}
	s.queue = remaining
	return out
}

// assignLocked records an assignment. Caller holds s.mu.
func (s *LAF) assignLocked(p pendingTask, node hashing.NodeID, local bool, now time.Duration) Assignment {
	s.stats.Assigned++
	if local {
		s.stats.LocalAssigns++
	}
	if s.stats.PerNode == nil {
		s.stats.PerNode = make(map[hashing.NodeID]uint64)
	}
	s.stats.PerNode[node]++
	wait := now - p.enqueued
	s.stats.TotalWait += wait
	s.reg.Histogram("sched.queue_wait_ns").Observe(int64(wait))
	return Assignment{Task: p.task, Node: node, Local: local, Waited: wait}
}

// repartitionLocked re-cuts the key space into equally-probable ranges
// over the current server order. Caller holds s.mu.
func (s *LAF) repartitionLocked() {
	t := s.reg.Histogram("sched.repartition_ns").Start()
	defer t.Stop()
	s.reg.Counter("sched.repartitions").Inc()
	bounds, err := s.est.Partition(len(s.order))
	if err != nil {
		return // no servers; nothing to schedule onto anyway
	}
	table, err := hashing.NewRangeTable(s.order, bounds)
	if err != nil {
		return
	}
	s.table = table
}

// Release returns a slot to the node.
func (s *LAF) Release(node hashing.NodeID) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.slots.release(node)
}

// Metrics returns the scheduler's registry.
func (s *LAF) Metrics() *metrics.Registry { return s.reg }

// NextDeadline always reports none: LAF assignments are unlocked only by
// slot releases.
func (s *LAF) NextDeadline() (time.Duration, bool) { return 0, false }

// RangeTable returns the current hash-key table.
func (s *LAF) RangeTable() *hashing.RangeTable {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.table
}

// Pending returns the queued task count.
func (s *LAF) Pending() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.queue)
}

// Stats returns a snapshot of the counters.
func (s *LAF) Stats() Stats {
	s.mu.Lock()
	defer s.mu.Unlock()
	return cloneStats(s.stats)
}
