package scheduler

import (
	"fmt"
	"testing"

	"eclipsemr/internal/hashing"
)

// algRing builds a populated ring of the named algorithm.
func algRing(t *testing.T, alg string, n int) (hashing.Ring, []hashing.NodeID) {
	t.Helper()
	r, err := hashing.NewAlgorithmRing(alg)
	if err != nil {
		t.Fatal(err)
	}
	ids := make([]hashing.NodeID, n)
	for i := range ids {
		ids[i] = hashing.NodeID(fmt.Sprintf("w%02d", i))
		if err := r.AddNode(ids[i]); err != nil {
			t.Fatal(err)
		}
	}
	return r, ids
}

// TestSchedulersAcceptNonChordRings is the regression test for the
// schedulers' chord assumption: partition tables used to be cut with
// AlignedRangeTable, which only a chord ring can produce. Every scheduler
// must now build from any Ring backend via RangeTable(), producing a
// table that covers all members and dispatches locality-matched work.
func TestSchedulersAcceptNonChordRings(t *testing.T) {
	algs := []string{hashing.AlgorithmJump, hashing.AlgorithmPower, hashing.AlgorithmRendezvous, "chord:8"}
	for _, alg := range algs {
		alg := alg
		t.Run(alg, func(t *testing.T) {
			ring, ids := algRing(t, alg, 5)
			s := newLAF(t, ring, ids, 2, DefaultLAFConfig())
			table := s.RangeTable()
			if table.Len() != len(ids) {
				t.Fatalf("table has %d ranges for %d members", table.Len(), len(ids))
			}
			seen := make(map[hashing.NodeID]bool)
			for _, id := range table.Servers() {
				seen[id] = true
			}
			for _, id := range ids {
				if !seen[id] {
					t.Fatalf("member %s missing from partition table", id)
				}
			}
			// Dispatch honors the table: a task keyed into a range goes to
			// that range's owner, marked local.
			k := hashing.KeyOfString("some-block")
			want := table.Lookup(k)
			s.Submit(Task{Job: "j", ID: "t0", HashKey: k}, 0)
			as := s.Dispatch(0)
			if len(as) != 1 || as[0].Node != want || !as[0].Local {
				t.Fatalf("assignments = %+v, want one local task on %s", as, want)
			}

			// Fair and Delay build from the same interface.
			if _, err := NewFair(ring); err != nil {
				t.Fatalf("NewFair(%s): %v", alg, err)
			}
			if _, err := NewDelay(DelayConfig{}, ring); err != nil {
				t.Fatalf("NewDelay(%s): %v", alg, err)
			}
		})
	}
}
