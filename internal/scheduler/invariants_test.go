package scheduler

import (
	"fmt"
	"math/rand"
	"testing"
	"time"

	"eclipsemr/internal/hashing"
	"eclipsemr/internal/kde"
)

// TestSlotConservation drives every scheduler through a long random
// sequence of submits, dispatches and releases and checks the core
// resource invariant: a node never runs more tasks than it has slots, and
// every submitted task is eventually assigned exactly once.
func TestSlotConservation(t *testing.T) {
	const (
		nodes = 6
		slots = 3
		tasks = 1500
	)
	ring, ids := testRing(t, nodes)
	makers := map[string]func() Scheduler{
		"laf": func() Scheduler {
			s, err := NewLAF(LAFConfig{KDE: kde.Config{Bins: 256, Bandwidth: 8, Alpha: 0.5, Window: 64}}, ring)
			if err != nil {
				t.Fatal(err)
			}
			return s
		},
		"delay": func() Scheduler {
			s, err := NewDelay(DelayConfig{Wait: 40 * time.Millisecond}, ring)
			if err != nil {
				t.Fatal(err)
			}
			return s
		},
		"fair": func() Scheduler {
			s, err := NewFair(ring)
			if err != nil {
				t.Fatal(err)
			}
			return s
		},
	}
	for name, mk := range makers {
		t.Run(name, func(t *testing.T) {
			s := mk()
			for _, id := range ids {
				s.AddNode(id, slots)
			}
			rng := rand.New(rand.NewSource(99))
			running := map[hashing.NodeID]int{}
			assignedTask := map[string]int{}
			var inFlight []Assignment
			submitted, completed := 0, 0
			now := time.Duration(0)
			for completed < tasks {
				// Random interleaving of submissions and completions.
				if submitted < tasks && (len(inFlight) == 0 || rng.Intn(2) == 0) {
					id := fmt.Sprintf("t%04d", submitted)
					s.Submit(Task{ID: id, HashKey: hashing.Key(rng.Uint64())}, now)
					submitted++
				}
				for _, a := range s.Dispatch(now) {
					running[a.Node]++
					if running[a.Node] > slots {
						t.Fatalf("node %s over capacity: %d running", a.Node, running[a.Node])
					}
					assignedTask[a.Task.ID]++
					if assignedTask[a.Task.ID] > 1 {
						t.Fatalf("task %s assigned twice", a.Task.ID)
					}
					inFlight = append(inFlight, a)
				}
				if len(inFlight) > 0 && rng.Intn(3) != 0 {
					i := rng.Intn(len(inFlight))
					a := inFlight[i]
					inFlight = append(inFlight[:i], inFlight[i+1:]...)
					running[a.Node]--
					s.Release(a.Node)
					completed++
				}
				now += 7 * time.Millisecond
			}
			if s.Pending() != 0 {
				t.Fatalf("pending = %d after all completions", s.Pending())
			}
			st := s.Stats()
			if st.Assigned != tasks {
				t.Fatalf("assigned = %d want %d", st.Assigned, tasks)
			}
			var perNode uint64
			for _, c := range st.PerNode {
				perNode += c
			}
			if perNode != tasks {
				t.Fatalf("per-node counts sum to %d want %d", perNode, tasks)
			}
		})
	}
}

// TestReAddNodeKeepsOutstandingSlots is the regression for the slot
// accounting bug: re-registering an already-known node (as heartbeat
// refreshes do) while its tasks are in flight must not reset its free
// count, or the eventual Release calls inflate capacity and the node
// over-commits. Every policy is exercised through the same sequence:
// fill the node, re-AddNode, then release — free slots must never exceed
// the configured count.
func TestReAddNodeKeepsOutstandingSlots(t *testing.T) {
	const slots = 2
	ring, ids := testRing(t, 1) // one node: every dispatch lands on it
	id := ids[0]
	for name, mk := range map[string]func() Scheduler{
		"laf":   func() Scheduler { s, _ := NewLAF(DefaultLAFConfig(), ring); return s },
		"delay": func() Scheduler { s, _ := NewDelay(DelayConfig{Wait: 0}, ring); return s },
		"fair":  func() Scheduler { s, _ := NewFair(ring); return s },
	} {
		t.Run(name, func(t *testing.T) {
			s := mk()
			s.AddNode(id, slots)
			for i := 0; i < slots+3; i++ {
				s.Submit(Task{ID: fmt.Sprintf("t%d", i), HashKey: hashing.Key(i) * 1e17}, 0)
			}
			if got := len(s.Dispatch(0)); got != slots {
				t.Fatalf("initial dispatch = %d assignments, want %d", got, slots)
			}
			// Heartbeat-style re-registration while both tasks run.
			s.AddNode(id, slots)
			if got := len(s.Dispatch(time.Second)); got != 0 {
				t.Fatalf("re-AddNode minted %d slots while tasks in flight", got)
			}
			// Completions give the slots back — exactly slots more, not 2x.
			s.Release(id)
			s.Release(id)
			if got := len(s.Dispatch(2 * time.Second)); got != slots {
				t.Fatalf("dispatch after releases = %d, want %d", got, slots)
			}
			// A spurious extra Release must not create capacity either.
			s.Release(id)
			s.Release(id)
			s.Release(id) // one more than outstanding
			if got := len(s.Dispatch(3 * time.Second)); got != 1 {
				t.Fatalf("dispatch after clamped release = %d, want 1", got)
			}
		})
	}
}

// TestMultiJobFairness verifies the round-robin across jobs: a large job
// submitted first cannot starve a later small job — both make progress
// proportionally.
func TestMultiJobFairness(t *testing.T) {
	ring, ids := testRing(t, 2)
	for name, mk := range map[string]func() Scheduler{
		"laf":   func() Scheduler { s, _ := NewLAF(DefaultLAFConfig(), ring); return s },
		"delay": func() Scheduler { s, _ := NewDelay(DelayConfig{Wait: -1}, ring); return s },
		"fair":  func() Scheduler { s, _ := NewFair(ring); return s },
	} {
		t.Run(name, func(t *testing.T) {
			s := mk()
			for _, id := range ids {
				s.AddNode(id, 1)
			}
			// Job A floods the queue, then job B arrives.
			for i := 0; i < 100; i++ {
				s.Submit(Task{Job: "A", ID: fmt.Sprintf("a%03d", i), HashKey: hashing.Key(i) * 1e17}, 0)
			}
			for i := 0; i < 100; i++ {
				s.Submit(Task{Job: "B", ID: fmt.Sprintf("b%03d", i), HashKey: hashing.Key(i)*1e17 + 7}, 0)
			}
			done := map[string]int{}
			completed := 0
			var inFlight []Assignment
			now := time.Duration(0)
			for completed < 60 {
				for _, a := range s.Dispatch(now) {
					inFlight = append(inFlight, a)
				}
				if len(inFlight) == 0 {
					t.Fatal("no progress")
				}
				a := inFlight[0]
				inFlight = inFlight[1:]
				s.Release(a.Node)
				done[a.Task.Job]++
				completed++
				now += time.Millisecond
			}
			if done["B"] < 20 {
				t.Fatalf("job B starved: %v after 60 completions", done)
			}
			t.Logf("completions: %v", done)
		})
	}
}
