package scheduler

import (
	"fmt"
	"math"
	"math/rand"
	"testing"
	"time"

	"eclipsemr/internal/hashing"
	"eclipsemr/internal/kde"
)

// testRing builds a ring of n workers named w00..w(n-1).
func testRing(t testing.TB, n int) (hashing.Ring, []hashing.NodeID) {
	t.Helper()
	r := hashing.NewChordRing()
	ids := make([]hashing.NodeID, n)
	for i := 0; i < n; i++ {
		ids[i] = hashing.NodeID(fmt.Sprintf("w%02d", i))
		if err := r.AddNode(ids[i]); err != nil {
			t.Fatal(err)
		}
	}
	return r, ids
}

func newLAF(t testing.TB, ring hashing.Ring, ids []hashing.NodeID, slots int, cfg LAFConfig) *LAF {
	t.Helper()
	s, err := NewLAF(cfg, ring)
	if err != nil {
		t.Fatal(err)
	}
	for _, id := range ids {
		s.AddNode(id, slots)
	}
	return s
}

func TestLAFDispatchesToRangeOwner(t *testing.T) {
	ring, ids := testRing(t, 4)
	s := newLAF(t, ring, ids, 2, DefaultLAFConfig())
	k := hashing.KeyOfString("some-block")
	want := s.RangeTable().Lookup(k)
	s.Submit(Task{Job: "j", ID: "t0", HashKey: k}, 0)
	as := s.Dispatch(0)
	if len(as) != 1 {
		t.Fatalf("Dispatch returned %d assignments", len(as))
	}
	if as[0].Node != want || !as[0].Local {
		t.Fatalf("assignment = %+v, want node %s local", as[0], want)
	}
}

func TestLAFTaskWaitsForItsOwner(t *testing.T) {
	ring, ids := testRing(t, 3)
	s := newLAF(t, ring, ids, 1, DefaultLAFConfig())
	k := hashing.KeyOfString("hot")
	owner := s.RangeTable().Lookup(k)
	// Fill the owner's only slot.
	s.Submit(Task{ID: "t0", HashKey: k}, 0)
	if got := s.Dispatch(0); len(got) != 1 {
		t.Fatalf("first dispatch = %d", len(got))
	}
	// Second task for the same key must wait even though other servers
	// are idle — that is the Algorithm 1 while-loop.
	s.Submit(Task{ID: "t1", HashKey: k}, 0)
	if got := s.Dispatch(time.Second); len(got) != 0 {
		t.Fatalf("task stole a non-owner slot: %+v", got)
	}
	if s.Pending() != 1 {
		t.Fatalf("Pending = %d", s.Pending())
	}
	s.Release(owner)
	got := s.Dispatch(2 * time.Second)
	if len(got) != 1 || got[0].Node != owner {
		t.Fatalf("after release, dispatch = %+v", got)
	}
	if got[0].Waited != 2*time.Second {
		t.Fatalf("Waited = %v", got[0].Waited)
	}
}

func TestLAFRepartitionNarrowsHotRange(t *testing.T) {
	ring, ids := testRing(t, 4)
	cfg := LAFConfig{KDE: kde.Config{Bins: 512, Bandwidth: 4, Alpha: 1, Window: 64}}
	s := newLAF(t, ring, ids, 64*1024, cfg)
	hot := hashing.Key(1 << 62) // fixed hot key at 1/4 of the space
	before, _, ok := s.RangeTable().ServerRange(s.RangeTable().Lookup(hot))
	_ = before
	if !ok {
		t.Fatal("hot key has no owner")
	}
	for i := 0; i < 256; i++ {
		s.Submit(Task{ID: fmt.Sprint(i), HashKey: hot}, 0)
	}
	s.Dispatch(0)
	st := s.Stats()
	if st.Repartitions == 0 {
		t.Fatal("no repartition after full windows")
	}
	// After repartitioning on a single hot key, the owner's range should
	// be tiny: the three interior bounds collapse around the hot key.
	tab := s.RangeTable()
	bounds := tab.Bounds()
	span := float64(uint64(bounds[len(bounds)-1] - bounds[1]))
	if span > float64(hashing.MaxKey)/64 {
		t.Fatalf("interior bounds did not collapse around hot key: %v", bounds)
	}
}

func TestLAFAlphaZeroKeepsStaticRanges(t *testing.T) {
	ring, ids := testRing(t, 4)
	cfg := LAFConfig{KDE: kde.Config{Bins: 64, Bandwidth: 1, Alpha: 0, Window: 4}}
	s := newLAF(t, ring, ids, 1024, cfg)
	before := s.RangeTable().Bounds()
	for i := 0; i < 100; i++ {
		s.Submit(Task{ID: fmt.Sprint(i), HashKey: hashing.Key(1 << 62)}, 0)
	}
	s.Dispatch(0)
	after := s.RangeTable().Bounds()
	for i := range before {
		if before[i] != after[i] {
			t.Fatal("alpha=0 ranges changed")
		}
	}
	if s.Stats().Repartitions != 0 {
		t.Fatal("alpha=0 repartitioned")
	}
}

func TestLAFAddRemoveNode(t *testing.T) {
	ring, ids := testRing(t, 3)
	s := newLAF(t, ring, ids, 1, DefaultLAFConfig())
	s.AddNode("w99", 4)
	if tab := s.RangeTable(); tab.Len() != 4 {
		t.Fatalf("table has %d servers after AddNode", tab.Len())
	}
	s.RemoveNode("w99")
	if tab := s.RangeTable(); tab.Len() != 3 {
		t.Fatalf("table has %d servers after RemoveNode", tab.Len())
	}
	// Re-adding an existing node just updates slots.
	s.AddNode(ids[0], 7)
	if tab := s.RangeTable(); tab.Len() != 3 {
		t.Fatalf("re-add grew the table to %d", tab.Len())
	}
}

func TestLAFReleaseUnknownNodeIgnored(t *testing.T) {
	ring, ids := testRing(t, 2)
	s := newLAF(t, ring, ids, 1, DefaultLAFConfig())
	s.Release("nope") // must not panic or create slots
	if s.slots.known("nope") {
		t.Fatal("Release created slots for unknown node")
	}
}

func newDelay(t testing.TB, ring hashing.Ring, ids []hashing.NodeID, slots int, wait time.Duration) *Delay {
	t.Helper()
	s, err := NewDelay(DelayConfig{Wait: wait}, ring)
	if err != nil {
		t.Fatal(err)
	}
	for _, id := range ids {
		s.AddNode(id, slots)
	}
	return s
}

func TestDelayPrefersOwnerThenFallsBack(t *testing.T) {
	ring, ids := testRing(t, 3)
	s := newDelay(t, ring, ids, 1, 5*time.Second)
	k := hashing.KeyOfString("data")
	owner := s.RangeTable().Lookup(k)
	s.Submit(Task{ID: "t0", HashKey: k}, 0)
	as := s.Dispatch(0)
	if len(as) != 1 || as[0].Node != owner {
		t.Fatalf("first dispatch = %+v", as)
	}
	// Owner now busy; next same-key task waits. Before any Dispatch pass
	// the task has never been skipped, so no deadline exists yet.
	s.Submit(Task{ID: "t1", HashKey: k}, time.Second)
	if _, ok := s.NextDeadline(); ok {
		t.Fatal("deadline exists before the task was ever skipped")
	}
	// This pass skips the task (other servers are idle): the wait clock
	// starts now, at t=2s.
	if got := s.Dispatch(2 * time.Second); len(got) != 0 {
		t.Fatalf("dispatched before delay expired: %+v", got)
	}
	dl, ok := s.NextDeadline()
	if !ok || dl != 7*time.Second {
		t.Fatalf("NextDeadline = %v, %v", dl, ok)
	}
	// After the 5 s skip window the task goes to another (free) server.
	got := s.Dispatch(7 * time.Second)
	if len(got) != 1 {
		t.Fatalf("dispatch after deadline = %+v", got)
	}
	if got[0].Node == owner || got[0].Local {
		t.Fatalf("fallback assignment wrong: %+v", got[0])
	}
	if s.Stats().DelayExpired != 1 {
		t.Fatalf("DelayExpired = %d", s.Stats().DelayExpired)
	}
}

func TestDelayUnlimitedWaitNeverFallsBack(t *testing.T) {
	ring, ids := testRing(t, 3)
	s := newDelay(t, ring, ids, 1, -1)
	k := hashing.KeyOfString("data")
	s.Submit(Task{ID: "t0", HashKey: k}, 0)
	s.Dispatch(0)
	s.Submit(Task{ID: "t1", HashKey: k}, 0)
	if got := s.Dispatch(time.Hour); len(got) != 0 {
		t.Fatalf("unlimited-wait task dispatched elsewhere: %+v", got)
	}
	if _, ok := s.NextDeadline(); ok {
		t.Fatal("unlimited wait reported a deadline")
	}
}

func TestDelayNoDeadlineWhenQueueEmpty(t *testing.T) {
	ring, ids := testRing(t, 2)
	s := newDelay(t, ring, ids, 1, time.Second)
	if _, ok := s.NextDeadline(); ok {
		t.Fatal("empty queue reported a deadline")
	}
}

func TestFairIgnoresLocality(t *testing.T) {
	ring, ids := testRing(t, 4)
	s, err := NewFair(ring)
	if err != nil {
		t.Fatal(err)
	}
	for _, id := range ids {
		s.AddNode(id, 2)
	}
	// Eight same-key tasks spread across all nodes regardless of key.
	k := hashing.KeyOfString("hot")
	for i := 0; i < 8; i++ {
		s.Submit(Task{ID: fmt.Sprint(i), HashKey: k}, 0)
	}
	as := s.Dispatch(0)
	if len(as) != 8 {
		t.Fatalf("dispatched %d of 8", len(as))
	}
	st := s.Stats()
	for _, id := range ids {
		if st.PerNode[id] != 2 {
			t.Fatalf("node %s got %d tasks, want 2", id, st.PerNode[id])
		}
	}
	if st.LoadStdDev() != 0 {
		t.Fatalf("perfect balance expected, stddev = %g", st.LoadStdDev())
	}
}

func TestFairPendingWhenSaturated(t *testing.T) {
	ring, ids := testRing(t, 2)
	s, _ := NewFair(ring)
	for _, id := range ids {
		s.AddNode(id, 1)
	}
	for i := 0; i < 5; i++ {
		s.Submit(Task{ID: fmt.Sprint(i)}, 0)
	}
	as := s.Dispatch(0)
	if len(as) != 2 || s.Pending() != 3 {
		t.Fatalf("dispatched=%d pending=%d", len(as), s.Pending())
	}
	s.Release(ids[0])
	if as = s.Dispatch(0); len(as) != 1 {
		t.Fatalf("after release dispatched %d", len(as))
	}
}

// TestLAFBalancesSkewBetterThanDelay reproduces the §III-C load-balance
// claim: under a skewed key distribution LAF's per-node assignment
// standard deviation is far below Delay's (paper: 4.07 vs 13.07). The
// Delay scheduler here waits indefinitely for the static range owner —
// the paper's description of locality-sticky scheduling (the timed
// fallback is exercised in TestDelayPrefersOwnerThenFallsBack; the full
// timing interplay is the simulator's Figure 7 experiment).
func TestLAFBalancesSkewBetterThanDelay(t *testing.T) {
	const (
		nodes = 8
		slots = 4
		tasks = 2000
	)
	run := func(s Scheduler) float64 {
		rng := rand.New(rand.NewSource(77))
		now := time.Duration(0)
		running := map[hashing.NodeID]int{}
		submitted, completed := 0, 0
		inFlight := []Assignment{}
		for completed < tasks {
			for submitted < tasks && len(inFlight) < nodes*slots*2 {
				// Two-normal-merged skew as in Figure 7's grep workload.
				var center float64
				if rng.Intn(4) < 3 {
					center = 0.2
				} else {
					center = 0.7
				}
				pos := math.Mod(center+rng.NormFloat64()*0.03+1, 1)
				s.Submit(Task{ID: fmt.Sprint(submitted), HashKey: hashing.Key(pos * float64(math.MaxUint64))}, now)
				submitted++
			}
			for _, a := range s.Dispatch(now) {
				running[a.Node]++
				inFlight = append(inFlight, a)
			}
			// Complete one task per tick (deterministic round-robin).
			if len(inFlight) > 0 {
				a := inFlight[0]
				inFlight = inFlight[1:]
				running[a.Node]--
				s.Release(a.Node)
				completed++
			}
			now += 10 * time.Millisecond
		}
		return s.Stats().LoadStdDev()
	}

	ring, ids := testRing(t, nodes)
	laf := newLAF(t, ring, ids, slots, LAFConfig{KDE: kde.Config{Bins: 1024, Bandwidth: 32, Alpha: 0.5, Window: 128}})
	delay := newDelay(t, ring, ids, slots, -1)
	lafStd := run(laf)
	delayStd := run(delay)
	if lafStd >= delayStd/2 {
		t.Fatalf("LAF stddev %.2f not clearly better than Delay %.2f", lafStd, delayStd)
	}
	mean := float64(tasks) / nodes
	if lafStd > mean/3 {
		t.Fatalf("LAF stddev %.2f too high relative to mean %.1f", lafStd, mean)
	}
	t.Logf("load stddev: LAF=%.2f Delay=%.2f (mean %.0f tasks/node)", lafStd, delayStd, mean)
}

func TestStatsLocalityRatio(t *testing.T) {
	var s Stats
	if s.LocalityRatio() != 0 {
		t.Fatal("empty locality ratio != 0")
	}
	s = Stats{Assigned: 4, LocalAssigns: 3}
	if s.LocalityRatio() != 0.75 {
		t.Fatalf("LocalityRatio = %g", s.LocalityRatio())
	}
}

func TestLoadStdDevEmpty(t *testing.T) {
	var s Stats
	if s.LoadStdDev() != 0 {
		t.Fatal("empty LoadStdDev != 0")
	}
}

func TestSchedulerInterfaceCompliance(t *testing.T) {
	ring, ids := testRing(t, 2)
	for name, mk := range map[string]func() Scheduler{
		"laf":   func() Scheduler { s, _ := NewLAF(DefaultLAFConfig(), ring); return s },
		"delay": func() Scheduler { s, _ := NewDelay(DefaultDelayConfig(), ring); return s },
		"fair":  func() Scheduler { s, _ := NewFair(ring); return s },
	} {
		s := mk()
		for _, id := range ids {
			s.AddNode(id, 1)
		}
		s.Submit(Task{ID: "x", HashKey: 42}, 0)
		as := s.Dispatch(0)
		if len(as) != 1 {
			t.Errorf("%s: dispatched %d", name, len(as))
		}
		s.Release(as[0].Node)
		if s.Pending() != 0 {
			t.Errorf("%s: pending %d", name, s.Pending())
		}
		if st := s.Stats(); st.Assigned != 1 {
			t.Errorf("%s: assigned %d", name, st.Assigned)
		}
	}
}

func TestNewSchedulersRejectEmptyRing(t *testing.T) {
	empty := hashing.NewChordRing()
	if _, err := NewLAF(DefaultLAFConfig(), empty); err == nil {
		t.Fatal("NewLAF accepted empty ring")
	}
	if _, err := NewDelay(DefaultDelayConfig(), empty); err == nil {
		t.Fatal("NewDelay accepted empty ring")
	}
	if _, err := NewFair(empty); err == nil {
		t.Fatal("NewFair accepted empty ring")
	}
}
