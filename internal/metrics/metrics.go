// Package metrics is a small dependency-free metrics registry used by the
// node runtime to expose operational counters, gauges and latency
// histograms (tasks executed, bytes moved, cache behaviour, per-stage and
// per-RPC latency) through the cluster.stats endpoint, the optional
// Prometheus-text /metrics endpoint and eclipse-cli. Counters are
// monotonically increasing; gauges are set to the latest value;
// histograms record values into fixed exponential buckets. All operations
// are safe for concurrent use and allocation-free on the hot paths
// (histogram Observe is a couple of atomic adds).
package metrics

import (
	"fmt"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// Counter is a monotonically increasing 64-bit counter.
type Counter struct {
	v atomic.Int64
}

// Add increments the counter by delta (negative deltas are ignored:
// counters never decrease).
func (c *Counter) Add(delta int64) {
	if delta > 0 {
		c.v.Add(delta)
	}
}

// Inc increments the counter by one.
func (c *Counter) Inc() { c.v.Add(1) }

// Value returns the current count.
func (c *Counter) Value() int64 { return c.v.Load() }

// Gauge is a 64-bit value that can move in both directions.
type Gauge struct {
	v atomic.Int64
}

// Set stores the value.
func (g *Gauge) Set(v int64) { g.v.Store(v) }

// Add adjusts the value by delta.
func (g *Gauge) Add(delta int64) { g.v.Add(delta) }

// Value returns the current value.
func (g *Gauge) Value() int64 { return g.v.Load() }

// DefaultLatencyBounds are the bucket upper bounds (nanoseconds) every
// latency histogram shares unless overridden: powers of two from 1 µs to
// ~34 s. Sharing one fixed bound set is what makes cluster-wide Merge a
// bucket-wise addition instead of a lossy re-binning.
var DefaultLatencyBounds = func() []int64 {
	bounds := make([]int64, 26)
	b := int64(time.Microsecond)
	for i := range bounds {
		bounds[i] = b
		b *= 2
	}
	return bounds
}()

// Clock supplies the time source for timers. Production registries use
// the wall clock; deterministic simulations inject a virtual clock so
// instrumented code needs no wall-clock reads.
type Clock interface {
	Now() time.Time
}

// ClockFunc adapts a plain func() time.Time (such as sim.Sim.Clock()) to
// the Clock interface.
type ClockFunc func() time.Time

// Now implements Clock.
func (f ClockFunc) Now() time.Time { return f() }

// wallClock is the default Clock.
type wallClock struct{}

func (wallClock) Now() time.Time { return time.Now() }

// WallClock returns the default wall-time Clock.
func WallClock() Clock { return wallClock{} }

// Histogram counts observations into fixed buckets. Recording is
// lock-free: one atomic add into the bucket plus one into the running
// sum. Values are plain int64s; the runtime's convention is nanoseconds
// (see Timer), but byte-size histograms work the same way.
type Histogram struct {
	bounds []int64 // sorted upper bounds; bucket i holds v <= bounds[i]
	counts []atomic.Int64
	// counts has len(bounds)+1 entries; the last is the overflow bucket.
	sum atomic.Int64
	// clock, when set, replaces the wall clock for Start/Stop timers.
	// Stored atomically (boxed, so differing Clock implementations share
	// one stored type) so SetClock races cleanly with in-flight timers.
	clock atomic.Value // clockBox
}

// clockBox wraps a Clock so atomic.Value sees one concrete type.
type clockBox struct{ c Clock }

// newHistogram builds a histogram over the given sorted upper bounds.
func newHistogram(bounds []int64) *Histogram {
	b := append([]int64(nil), bounds...)
	return &Histogram{bounds: b, counts: make([]atomic.Int64, len(b)+1)}
}

// Observe records one value.
func (h *Histogram) Observe(v int64) {
	// Binary search; bounds are tiny (27 buckets) so this is a handful of
	// compares with no allocation.
	lo, hi := 0, len(h.bounds)
	for lo < hi {
		mid := (lo + hi) / 2
		if v <= h.bounds[mid] {
			hi = mid
		} else {
			lo = mid + 1
		}
	}
	h.counts[lo].Add(1)
	h.sum.Add(v)
}

// ObserveDuration records a duration in nanoseconds.
func (h *Histogram) ObserveDuration(d time.Duration) { h.Observe(int64(d)) }

// Timer measures one interval into a histogram.
type Timer struct {
	h     *Histogram
	start time.Time
}

// now reads the histogram's clock (the wall clock unless SetClock
// injected another source).
func (h *Histogram) now() time.Time {
	if b, ok := h.clock.Load().(clockBox); ok {
		return b.c.Now()
	}
	return time.Now()
}

// SetClock replaces the timer time source; nil restores the wall clock.
func (h *Histogram) SetClock(c Clock) {
	if c == nil {
		c = wallClock{}
	}
	h.clock.Store(clockBox{c})
}

// Start returns a running Timer recording into h.
func (h *Histogram) Start() Timer { return Timer{h: h, start: h.now()} }

// Stop records the elapsed time and returns it. Stop may be called once;
// further calls record again.
func (t Timer) Stop() time.Duration {
	d := t.h.now().Sub(t.start)
	t.h.ObserveDuration(d)
	return d
}

// Snapshot returns the histogram's current state. The counts are copied
// bucket by bucket without a lock, so under concurrent recording the
// snapshot is a consistent-enough view (each bucket atomically read).
func (h *Histogram) Snapshot() HistSnapshot {
	s := HistSnapshot{
		Bounds: append([]int64(nil), h.bounds...),
		Counts: make([]int64, len(h.counts)),
		Sum:    h.sum.Load(),
	}
	for i := range h.counts {
		s.Counts[i] = h.counts[i].Load()
	}
	return s
}

// HistSnapshot is the serializable state of one histogram: Counts[i]
// holds observations <= Bounds[i], and Counts[len(Bounds)] is the
// overflow bucket.
type HistSnapshot struct {
	Bounds []int64
	Counts []int64
	Sum    int64
}

// Count returns the total number of observations.
func (s HistSnapshot) Count() int64 {
	var total int64
	for _, c := range s.Counts {
		total += c
	}
	return total
}

// Mean returns the average observed value, or 0 with no observations.
func (s HistSnapshot) Mean() float64 {
	n := s.Count()
	if n == 0 {
		return 0
	}
	return float64(s.Sum) / float64(n)
}

// Quantile estimates the q-quantile (q in [0,1]) by linear interpolation
// inside the bucket where the cumulative count crosses q. Observations in
// the overflow bucket are attributed the last finite bound.
func (s HistSnapshot) Quantile(q float64) int64 {
	total := s.Count()
	if total == 0 || len(s.Bounds) == 0 {
		return 0
	}
	if q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	rank := q * float64(total)
	var cum float64
	for i, c := range s.Counts {
		if c == 0 {
			continue
		}
		next := cum + float64(c)
		if next >= rank {
			upper := s.Bounds[len(s.Bounds)-1]
			lower := int64(0)
			if i < len(s.Bounds) {
				upper = s.Bounds[i]
			}
			if i > 0 {
				lower = s.Bounds[i-1]
			}
			frac := 1.0
			if c > 0 {
				frac = (rank - cum) / float64(c)
			}
			if frac < 0 {
				frac = 0
			}
			return lower + int64(frac*float64(upper-lower))
		}
		cum = next
	}
	return s.Bounds[len(s.Bounds)-1]
}

// kind tags a metric name with its registered type so one name cannot be
// two different instruments.
type kind uint8

const (
	kindCounter kind = iota + 1
	kindGauge
	kindHistogram
)

func (k kind) String() string {
	switch k {
	case kindCounter:
		return "counter"
	case kindGauge:
		return "gauge"
	case kindHistogram:
		return "histogram"
	}
	return "unknown"
}

// Registry names and collects metrics. The zero value is not usable; use
// NewRegistry.
type Registry struct {
	mu       sync.Mutex
	kinds    map[string]kind
	counters map[string]*Counter
	gauges   map[string]*Gauge
	hists    map[string]*Histogram
	clock    Clock // nil = wall clock; inherited by every histogram
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{
		kinds:    make(map[string]kind),
		counters: make(map[string]*Counter),
		gauges:   make(map[string]*Gauge),
		hists:    make(map[string]*Histogram),
	}
}

// checkKind registers name as k, panicking if it is already registered as
// a different kind: a counter and a gauge sharing a name would silently
// shadow each other in snapshots.
func (r *Registry) checkKind(name string, k kind) {
	if have, ok := r.kinds[name]; ok && have != k {
		panic(fmt.Sprintf("metrics: %q already registered as %s, requested as %s", name, have, k))
	}
	r.kinds[name] = k
}

// SetClock injects the time source used by every histogram timer in the
// registry — existing and future. Deterministic simulations call this
// with a virtual clock; nil restores the wall clock.
func (r *Registry) SetClock(c Clock) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.clock = c
	for _, h := range r.hists {
		h.SetClock(c)
	}
}

// Counter returns (creating if needed) the named counter. Names should be
// dotted paths like "mr.map.tasks". Requesting a name registered as a
// different kind panics.
func (r *Registry) Counter(name string) *Counter {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.checkKind(name, kindCounter)
	c, ok := r.counters[name]
	if !ok {
		c = &Counter{}
		r.counters[name] = c
	}
	return c
}

// Gauge returns (creating if needed) the named gauge.
func (r *Registry) Gauge(name string) *Gauge {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.checkKind(name, kindGauge)
	g, ok := r.gauges[name]
	if !ok {
		g = &Gauge{}
		r.gauges[name] = g
	}
	return g
}

// Histogram returns (creating if needed) the named histogram over
// DefaultLatencyBounds.
func (r *Registry) Histogram(name string) *Histogram {
	return r.HistogramWith(name, DefaultLatencyBounds)
}

// HistogramWith returns (creating if needed) the named histogram, using
// the given sorted bucket upper bounds on first creation. All nodes must
// use identical bounds for a given name or cluster-wide merges degrade to
// bound-folding (see Merge).
func (r *Registry) HistogramWith(name string, bounds []int64) *Histogram {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.checkKind(name, kindHistogram)
	h, ok := r.hists[name]
	if !ok {
		h = newHistogram(bounds)
		if r.clock != nil {
			h.SetClock(r.clock)
		}
		r.hists[name] = h
	}
	return h
}

// Snapshot is one registry's (or one cluster's, after Merge) metrics
// state: flat counter/gauge values plus histogram states, keyed by name.
// The zero value is not usable; use NewSnapshot (or Registry.Snapshot).
type Snapshot struct {
	Values map[string]int64
	Hists  map[string]HistSnapshot
}

// NewSnapshot returns an empty snapshot ready to Merge into.
func NewSnapshot() Snapshot {
	return Snapshot{Values: make(map[string]int64), Hists: make(map[string]HistSnapshot)}
}

// Get returns a value metric by name (0 if absent).
func (s Snapshot) Get(name string) int64 { return s.Values[name] }

// Snapshot returns every metric's current state, keyed by name.
func (r *Registry) Snapshot() Snapshot {
	r.mu.Lock()
	defer r.mu.Unlock()
	out := Snapshot{
		Values: make(map[string]int64, len(r.counters)+len(r.gauges)),
		Hists:  make(map[string]HistSnapshot, len(r.hists)),
	}
	for name, g := range r.gauges {
		out.Values[name] = g.Value()
	}
	for name, c := range r.counters {
		out.Values[name] = c.Value()
	}
	for name, h := range r.hists {
		out.Hists[name] = h.Snapshot()
	}
	return out
}

// String renders the snapshot sorted by name: "name value" lines for
// counters and gauges, "name count=N p50=… p99=… (ms)" lines for
// histograms.
func (r *Registry) String() string {
	snap := r.Snapshot()
	var b strings.Builder
	names := make([]string, 0, len(snap.Values))
	for n := range snap.Values {
		names = append(names, n)
	}
	sort.Strings(names)
	for _, n := range names {
		fmt.Fprintf(&b, "%s %d\n", n, snap.Values[n])
	}
	names = names[:0]
	for n := range snap.Hists {
		names = append(names, n)
	}
	sort.Strings(names)
	for _, n := range names {
		h := snap.Hists[n]
		fmt.Fprintf(&b, "%s count=%d p50=%.3fms p99=%.3fms\n",
			n, h.Count(), ms(h.Quantile(0.50)), ms(h.Quantile(0.99)))
	}
	return b.String()
}

func ms(ns int64) float64 { return float64(ns) / 1e6 }

// Merge accumulates another snapshot into dst (cluster-wide aggregation):
// values are summed and histograms merged bucket by bucket. Histograms
// with identical bounds merge exactly; a histogram whose bounds differ
// (mixed-version cluster) is folded conservatively, attributing each
// source bucket to the destination bucket covering its upper bound.
func Merge(dst *Snapshot, src Snapshot) {
	if dst.Values == nil {
		dst.Values = make(map[string]int64, len(src.Values))
	}
	if dst.Hists == nil {
		dst.Hists = make(map[string]HistSnapshot, len(src.Hists))
	}
	for name, v := range src.Values {
		dst.Values[name] += v
	}
	for name, h := range src.Hists {
		d, ok := dst.Hists[name]
		if !ok {
			dst.Hists[name] = HistSnapshot{
				Bounds: append([]int64(nil), h.Bounds...),
				Counts: append([]int64(nil), h.Counts...),
				Sum:    h.Sum,
			}
			continue
		}
		dst.Hists[name] = mergeHist(d, h)
	}
}

// mergeHist adds src into dst and returns the result.
func mergeHist(dst, src HistSnapshot) HistSnapshot {
	dst.Sum += src.Sum
	if boundsEqual(dst.Bounds, src.Bounds) {
		for i := range src.Counts {
			dst.Counts[i] += src.Counts[i]
		}
		return dst
	}
	// Fold by upper bound: each src bucket lands in the dst bucket that
	// covers its bound; src overflow joins dst overflow.
	for i, c := range src.Counts {
		if c == 0 {
			continue
		}
		if i >= len(src.Bounds) {
			dst.Counts[len(dst.Counts)-1] += c
			continue
		}
		v := src.Bounds[i]
		j := sort.Search(len(dst.Bounds), func(k int) bool { return v <= dst.Bounds[k] })
		dst.Counts[j] += c
	}
	return dst
}

func boundsEqual(a, b []int64) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}
