// Package metrics is a small dependency-free metrics registry used by the
// node runtime to expose operational counters and gauges (tasks executed,
// bytes moved, cache behaviour, RPC volume) through the cluster.stats
// endpoint and eclipse-cli. Counters are monotonically increasing;
// gauges are set to the latest value. All operations are safe for
// concurrent use and allocation-free on the hot paths.
package metrics

import (
	"fmt"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
)

// Counter is a monotonically increasing 64-bit counter.
type Counter struct {
	v atomic.Int64
}

// Add increments the counter by delta (negative deltas are ignored:
// counters never decrease).
func (c *Counter) Add(delta int64) {
	if delta > 0 {
		c.v.Add(delta)
	}
}

// Inc increments the counter by one.
func (c *Counter) Inc() { c.v.Add(1) }

// Value returns the current count.
func (c *Counter) Value() int64 { return c.v.Load() }

// Gauge is a 64-bit value that can move in both directions.
type Gauge struct {
	v atomic.Int64
}

// Set stores the value.
func (g *Gauge) Set(v int64) { g.v.Store(v) }

// Add adjusts the value by delta.
func (g *Gauge) Add(delta int64) { g.v.Add(delta) }

// Value returns the current value.
func (g *Gauge) Value() int64 { return g.v.Load() }

// Registry names and collects metrics. The zero value is not usable; use
// NewRegistry.
type Registry struct {
	mu       sync.Mutex
	counters map[string]*Counter
	gauges   map[string]*Gauge
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{
		counters: make(map[string]*Counter),
		gauges:   make(map[string]*Gauge),
	}
}

// Counter returns (creating if needed) the named counter. Names should be
// dotted paths like "mr.map.tasks".
func (r *Registry) Counter(name string) *Counter {
	r.mu.Lock()
	defer r.mu.Unlock()
	c, ok := r.counters[name]
	if !ok {
		c = &Counter{}
		r.counters[name] = c
	}
	return c
}

// Gauge returns (creating if needed) the named gauge.
func (r *Registry) Gauge(name string) *Gauge {
	r.mu.Lock()
	defer r.mu.Unlock()
	g, ok := r.gauges[name]
	if !ok {
		g = &Gauge{}
		r.gauges[name] = g
	}
	return g
}

// Snapshot returns every metric's current value, keyed by name. Gauges
// and counters share the namespace; registering both kinds under one name
// is a programming error surfaced by Snapshot choosing the counter.
func (r *Registry) Snapshot() map[string]int64 {
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make(map[string]int64, len(r.counters)+len(r.gauges))
	for name, g := range r.gauges {
		out[name] = g.Value()
	}
	for name, c := range r.counters {
		out[name] = c.Value()
	}
	return out
}

// String renders the snapshot sorted by name, one "name value" per line.
func (r *Registry) String() string {
	snap := r.Snapshot()
	names := make([]string, 0, len(snap))
	for n := range snap {
		names = append(names, n)
	}
	sort.Strings(names)
	var b strings.Builder
	for _, n := range names {
		fmt.Fprintf(&b, "%s %d\n", n, snap[n])
	}
	return b.String()
}

// Merge sums another snapshot into dst (cluster-wide aggregation).
func Merge(dst, src map[string]int64) {
	for name, v := range src {
		dst[name] += v
	}
}
