package metrics

import (
	"testing"
	"time"
)

// TestTimerUsesInjectedClock verifies Start/Stop read the registry clock,
// not the wall clock: a virtual clock advanced by exactly 5ms must record
// exactly 5ms.
func TestTimerUsesInjectedClock(t *testing.T) {
	r := NewRegistry()
	now := time.Unix(0, 0)
	r.SetClock(ClockFunc(func() time.Time { return now }))
	h := r.Histogram("stage_ns")
	timer := h.Start()
	now = now.Add(5 * time.Millisecond)
	if d := timer.Stop(); d != 5*time.Millisecond {
		t.Fatalf("elapsed = %v, want 5ms", d)
	}
	s := h.Snapshot()
	if s.Count() != 1 || s.Sum != int64(5*time.Millisecond) {
		t.Fatalf("count=%d sum=%d", s.Count(), s.Sum)
	}
}

// TestSetClockCoversExistingHistograms checks that SetClock retrofits
// histograms created before the call, and that nil restores the wall
// clock.
func TestSetClockCoversExistingHistograms(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("early_ns") // created before SetClock
	base := time.Unix(100, 0)
	r.SetClock(ClockFunc(func() time.Time { return base }))
	timer := h.Start()
	if d := timer.Stop(); d != 0 {
		t.Fatalf("frozen clock elapsed = %v, want 0", d)
	}
	r.SetClock(nil) // back to wall time: a timer must be >= 0 and finite
	if d := h.Start().Stop(); d < 0 || d > time.Minute {
		t.Fatalf("wall elapsed = %v", d)
	}
}

// TestMergeEmptySnapshots: merging an empty snapshot is a no-op, and
// merging into a zero-valued destination allocates its maps.
func TestMergeEmptySnapshots(t *testing.T) {
	dst := NewSnapshot()
	dst.Values["a"] = 3
	dst.Hists["h"] = HistSnapshot{Bounds: []int64{10}, Counts: []int64{1, 0}, Sum: 4}
	Merge(&dst, NewSnapshot())
	if dst.Values["a"] != 3 || dst.Hists["h"].Count() != 1 {
		t.Fatalf("empty merge mutated dst: %+v", dst)
	}
	Merge(&dst, Snapshot{}) // nil maps in src
	if dst.Values["a"] != 3 {
		t.Fatalf("nil-map merge mutated dst: %+v", dst)
	}

	var zero Snapshot // nil maps in dst
	Merge(&zero, dst)
	if zero.Values["a"] != 3 || zero.Hists["h"].Sum != 4 {
		t.Fatalf("merge into zero dst = %+v", zero)
	}
}

// TestMergeFoldBeyondTopBound: folding a src bucket whose bound exceeds
// every dst bound must land in dst's overflow bucket, not panic.
func TestMergeFoldBeyondTopBound(t *testing.T) {
	dst := NewSnapshot()
	dst.Hists["h"] = HistSnapshot{Bounds: []int64{10}, Counts: []int64{1, 0}, Sum: 5}
	src := Snapshot{Hists: map[string]HistSnapshot{
		"h": {Bounds: []int64{10_000}, Counts: []int64{2, 0}, Sum: 300},
	}}
	Merge(&dst, src)
	got := dst.Hists["h"]
	if got.Counts[len(got.Counts)-1] != 2 {
		t.Fatalf("src bucket le=10000 should fold to overflow: %v", got.Counts)
	}
	if got.Sum != 305 || got.Count() != 3 {
		t.Fatalf("sum=%d count=%d", got.Sum, got.Count())
	}
}

// TestQuantileExtremesSingleBucket pins q=0 and q=1 with all mass in one
// bucket: both must stay within that bucket's bounds, and q=1 must return
// its upper bound.
func TestQuantileExtremesSingleBucket(t *testing.T) {
	s := HistSnapshot{Bounds: []int64{100, 200}, Counts: []int64{0, 7, 0}, Sum: 7 * 150}
	if q := s.Quantile(1); q != 200 {
		t.Fatalf("q=1: got %d, want upper bound 200", q)
	}
	q0 := s.Quantile(0)
	if q0 < 100 || q0 > 200 {
		t.Fatalf("q=0: got %d, want within (100,200]", q0)
	}
	// Out-of-range q clamps rather than panics.
	if s.Quantile(-3) != s.Quantile(0) || s.Quantile(7) != s.Quantile(1) {
		t.Fatalf("q clamping: q=-3 -> %d, q=7 -> %d", s.Quantile(-3), s.Quantile(7))
	}
	// Degenerate single-bound histogram.
	one := HistSnapshot{Bounds: []int64{50}, Counts: []int64{3, 0}, Sum: 60}
	if q := one.Quantile(1); q != 50 {
		t.Fatalf("single bucket q=1 = %d, want 50", q)
	}
	if q := one.Quantile(0); q < 0 || q > 50 {
		t.Fatalf("single bucket q=0 = %d, want in [0,50]", q)
	}
}
