package metrics

import (
	"fmt"
	"io"
	"sort"
	"strings"
)

// WriteProm renders a snapshot in the Prometheus text exposition format
// (version 0.0.4). Metric names are sanitized (dots and dashes become
// underscores) and histograms emit the usual cumulative _bucket series
// with `le` labels plus _sum and _count. Counters and gauges are both
// emitted untyped since the snapshot no longer distinguishes them; the
// scrape side treats untyped like gauges, which is the safe default.
func WriteProm(w io.Writer, snap Snapshot) error {
	names := make([]string, 0, len(snap.Values))
	for n := range snap.Values {
		names = append(names, n)
	}
	sort.Strings(names)
	for _, n := range names {
		if _, err := fmt.Fprintf(w, "%s %d\n", promName(n), snap.Values[n]); err != nil {
			return err
		}
	}

	names = names[:0]
	for n := range snap.Hists {
		names = append(names, n)
	}
	sort.Strings(names)
	for _, n := range names {
		h := snap.Hists[n]
		pn := promName(n)
		if _, err := fmt.Fprintf(w, "# TYPE %s histogram\n", pn); err != nil {
			return err
		}
		var cum int64
		for i, c := range h.Counts {
			cum += c
			le := "+Inf"
			if i < len(h.Bounds) {
				// Bounds are nanoseconds; Prometheus convention for
				// latency is seconds.
				le = fmt.Sprintf("%g", float64(h.Bounds[i])/1e9)
			}
			if _, err := fmt.Fprintf(w, "%s_bucket{le=%s} %d\n", pn, promLabelValue(le), cum); err != nil {
				return err
			}
		}
		if _, err := fmt.Fprintf(w, "%s_sum %g\n", pn, float64(h.Sum)/1e9); err != nil {
			return err
		}
		if _, err := fmt.Fprintf(w, "%s_count %d\n", pn, cum); err != nil {
			return err
		}
	}
	return nil
}

// promLabelValue quotes a label value per the Prometheus text exposition
// format: exactly backslash, double-quote and newline are escaped
// (`\\`, `\"`, `\n`). Go's %q is close but not identical — it would
// escape tabs and non-ASCII too, which the Prometheus parser rejects as
// unknown escape sequences — so the escaping is spelled out here and
// pinned by tests.
func promLabelValue(v string) string {
	var b strings.Builder
	b.Grow(len(v) + 2)
	b.WriteByte('"')
	for i := 0; i < len(v); i++ {
		switch c := v[i]; c {
		case '\\':
			b.WriteString(`\\`)
		case '"':
			b.WriteString(`\"`)
		case '\n':
			b.WriteString(`\n`)
		default:
			b.WriteByte(c)
		}
	}
	b.WriteByte('"')
	return b.String()
}

// promName maps a dotted metric name onto the Prometheus charset.
func promName(n string) string {
	return strings.Map(func(r rune) rune {
		switch {
		case r >= 'a' && r <= 'z', r >= 'A' && r <= 'Z', r >= '0' && r <= '9', r == '_', r == ':':
			return r
		default:
			return '_'
		}
	}, n)
}
