package metrics

import (
	"strings"
	"sync"
	"testing"
	"time"
)

func TestCounterMonotonic(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("a.b")
	c.Inc()
	c.Add(4)
	c.Add(-10) // ignored: counters never decrease
	if c.Value() != 5 {
		t.Fatalf("value = %d", c.Value())
	}
	if r.Counter("a.b") != c {
		t.Fatal("Counter not idempotent per name")
	}
}

func TestGauge(t *testing.T) {
	r := NewRegistry()
	g := r.Gauge("g")
	g.Set(10)
	g.Add(-3)
	if g.Value() != 7 {
		t.Fatalf("value = %d", g.Value())
	}
}

func TestSnapshotAndString(t *testing.T) {
	r := NewRegistry()
	r.Counter("z.count").Add(2)
	r.Gauge("a.gauge").Set(9)
	r.Histogram("h.lat").Observe(int64(5 * time.Millisecond))
	snap := r.Snapshot()
	if snap.Get("z.count") != 2 || snap.Get("a.gauge") != 9 {
		t.Fatalf("snapshot = %v", snap.Values)
	}
	if snap.Hists["h.lat"].Count() != 1 {
		t.Fatalf("hist count = %d", snap.Hists["h.lat"].Count())
	}
	s := r.String()
	if !strings.HasPrefix(s, "a.gauge 9\n") || !strings.Contains(s, "z.count 2\n") {
		t.Fatalf("String() = %q", s)
	}
	if !strings.Contains(s, "h.lat count=1") {
		t.Fatalf("String() missing histogram line: %q", s)
	}
}

func TestCrossKindRegistrationPanics(t *testing.T) {
	cases := []struct {
		name  string
		setup func(r *Registry)
		clash func(r *Registry)
	}{
		{"counter-then-gauge", func(r *Registry) { r.Counter("x") }, func(r *Registry) { r.Gauge("x") }},
		{"gauge-then-counter", func(r *Registry) { r.Gauge("x") }, func(r *Registry) { r.Counter("x") }},
		{"counter-then-histogram", func(r *Registry) { r.Counter("x") }, func(r *Registry) { r.Histogram("x") }},
		{"histogram-then-gauge", func(r *Registry) { r.Histogram("x") }, func(r *Registry) { r.Gauge("x") }},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			r := NewRegistry()
			tc.setup(r)
			defer func() {
				rec := recover()
				if rec == nil {
					t.Fatal("cross-kind registration did not panic")
				}
				if msg, ok := rec.(string); !ok || !strings.Contains(msg, `"x"`) {
					t.Fatalf("panic message does not name the metric: %v", rec)
				}
			}()
			tc.clash(r)
		})
	}
}

func TestHistogramQuantiles(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("lat")
	for i := 0; i < 90; i++ {
		h.Observe(int64(1 * time.Millisecond))
	}
	for i := 0; i < 10; i++ {
		h.Observe(int64(100 * time.Millisecond))
	}
	s := h.Snapshot()
	if s.Count() != 100 {
		t.Fatalf("count = %d", s.Count())
	}
	wantSum := 90*int64(time.Millisecond) + 10*int64(100*time.Millisecond)
	if s.Sum != wantSum {
		t.Fatalf("sum = %d, want %d", s.Sum, wantSum)
	}
	p50 := s.Quantile(0.50)
	if p50 < int64(250*time.Microsecond) || p50 > int64(4*time.Millisecond) {
		t.Fatalf("p50 = %v, want ~1ms", time.Duration(p50))
	}
	p99 := s.Quantile(0.99)
	if p99 < int64(32*time.Millisecond) || p99 > int64(300*time.Millisecond) {
		t.Fatalf("p99 = %v, want ~100ms", time.Duration(p99))
	}
	if s.Quantile(0) > s.Quantile(1) {
		t.Fatal("quantiles not monotone")
	}
}

func TestHistogramOverflowBucket(t *testing.T) {
	h := newHistogram([]int64{10, 100})
	h.Observe(5)
	h.Observe(50)
	h.Observe(5000) // beyond the last bound: overflow bucket
	s := h.Snapshot()
	if got := s.Counts[len(s.Counts)-1]; got != 1 {
		t.Fatalf("overflow count = %d", got)
	}
	if s.Count() != 3 {
		t.Fatalf("count = %d", s.Count())
	}
	// Overflow observations are attributed the last finite bound.
	if q := s.Quantile(1); q != 100 {
		t.Fatalf("Quantile(1) = %d", q)
	}
}

func TestTimer(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("op")
	tm := h.Start()
	time.Sleep(2 * time.Millisecond)
	d := tm.Stop()
	if d < 2*time.Millisecond {
		t.Fatalf("elapsed = %v", d)
	}
	s := h.Snapshot()
	if s.Count() != 1 || s.Sum < int64(2*time.Millisecond) {
		t.Fatalf("count=%d sum=%v", s.Count(), time.Duration(s.Sum))
	}
}

func TestMergeValues(t *testing.T) {
	dst := NewSnapshot()
	dst.Values["x"] = 1
	Merge(&dst, Snapshot{Values: map[string]int64{"x": 2, "y": 5}})
	if dst.Values["x"] != 3 || dst.Values["y"] != 5 {
		t.Fatalf("merged = %v", dst.Values)
	}
}

// TestMergeHistogramsEqualsCombinedRecordings is the satellite-required
// property: merging the snapshots of two registries must be
// indistinguishable from recording every observation into one registry.
func TestMergeHistogramsEqualsCombinedRecordings(t *testing.T) {
	obsA := []int64{int64(time.Millisecond), int64(3 * time.Millisecond), int64(time.Second)}
	obsB := []int64{int64(500 * time.Microsecond), int64(40 * time.Millisecond)}

	ra, rb, combined := NewRegistry(), NewRegistry(), NewRegistry()
	for _, v := range obsA {
		ra.Histogram("lat").Observe(v)
		combined.Histogram("lat").Observe(v)
	}
	for _, v := range obsB {
		rb.Histogram("lat").Observe(v)
		combined.Histogram("lat").Observe(v)
	}
	ra.Counter("n").Add(int64(len(obsA)))
	rb.Counter("n").Add(int64(len(obsB)))
	combined.Counter("n").Add(int64(len(obsA) + len(obsB)))

	merged := NewSnapshot()
	Merge(&merged, ra.Snapshot())
	Merge(&merged, rb.Snapshot())
	want := combined.Snapshot()

	if merged.Values["n"] != want.Values["n"] {
		t.Fatalf("values: merged %d, combined %d", merged.Values["n"], want.Values["n"])
	}
	mh, wh := merged.Hists["lat"], want.Hists["lat"]
	if mh.Sum != wh.Sum || mh.Count() != wh.Count() {
		t.Fatalf("sum/count: merged %d/%d, combined %d/%d", mh.Sum, mh.Count(), wh.Sum, wh.Count())
	}
	if len(mh.Counts) != len(wh.Counts) {
		t.Fatalf("bucket counts differ in length: %d vs %d", len(mh.Counts), len(wh.Counts))
	}
	for i := range mh.Counts {
		if mh.Counts[i] != wh.Counts[i] {
			t.Fatalf("bucket %d: merged %d, combined %d", i, mh.Counts[i], wh.Counts[i])
		}
	}
	for _, q := range []float64{0.5, 0.9, 0.99} {
		if mh.Quantile(q) != wh.Quantile(q) {
			t.Fatalf("q%.2f: merged %d, combined %d", q, mh.Quantile(q), wh.Quantile(q))
		}
	}
}

func TestMergeMismatchedBoundsFolds(t *testing.T) {
	dst := NewSnapshot()
	dst.Hists["h"] = HistSnapshot{Bounds: []int64{10, 100, 1000}, Counts: []int64{1, 0, 0, 0}, Sum: 5}
	src := Snapshot{Hists: map[string]HistSnapshot{
		"h": {Bounds: []int64{50}, Counts: []int64{2, 1}, Sum: 2000},
	}}
	Merge(&dst, src)
	got := dst.Hists["h"]
	if got.Count() != 4 || got.Sum != 2005 {
		t.Fatalf("count=%d sum=%d", got.Count(), got.Sum)
	}
	// src bucket le=50 folds into dst bucket le=100; src overflow joins
	// dst overflow.
	if got.Counts[1] != 2 || got.Counts[3] != 1 {
		t.Fatalf("counts = %v", got.Counts)
	}
}

func TestWriteProm(t *testing.T) {
	r := NewRegistry()
	r.Counter("mr.map.tasks").Add(7)
	h := r.HistogramWith("net.rpc", []int64{int64(time.Millisecond), int64(time.Second)})
	h.Observe(int64(500 * time.Microsecond))
	h.Observe(int64(2 * time.Second))
	var b strings.Builder
	if err := WriteProm(&b, r.Snapshot()); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, want := range []string{
		"mr_map_tasks 7\n",
		"# TYPE net_rpc histogram\n",
		`net_rpc_bucket{le="0.001"} 1`,
		`net_rpc_bucket{le="1"} 1`,
		`net_rpc_bucket{le="+Inf"} 2`,
		"net_rpc_count 2\n",
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("prom output missing %q:\n%s", want, out)
		}
	}
}

func TestConcurrentUpdates(t *testing.T) {
	r := NewRegistry()
	var wg sync.WaitGroup
	for i := 0; i < 16; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 1000; j++ {
				r.Counter("hot").Inc()
				r.Gauge("level").Add(1)
				r.Histogram("lat").Observe(int64(j))
			}
		}()
	}
	wg.Wait()
	if r.Counter("hot").Value() != 16000 {
		t.Fatalf("hot = %d", r.Counter("hot").Value())
	}
	if r.Gauge("level").Value() != 16000 {
		t.Fatalf("level = %d", r.Gauge("level").Value())
	}
	if n := r.Histogram("lat").Snapshot().Count(); n != 16000 {
		t.Fatalf("lat count = %d", n)
	}
}
