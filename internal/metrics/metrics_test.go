package metrics

import (
	"strings"
	"sync"
	"testing"
)

func TestCounterMonotonic(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("a.b")
	c.Inc()
	c.Add(4)
	c.Add(-10) // ignored: counters never decrease
	if c.Value() != 5 {
		t.Fatalf("value = %d", c.Value())
	}
	if r.Counter("a.b") != c {
		t.Fatal("Counter not idempotent per name")
	}
}

func TestGauge(t *testing.T) {
	r := NewRegistry()
	g := r.Gauge("g")
	g.Set(10)
	g.Add(-3)
	if g.Value() != 7 {
		t.Fatalf("value = %d", g.Value())
	}
}

func TestSnapshotAndString(t *testing.T) {
	r := NewRegistry()
	r.Counter("z.count").Add(2)
	r.Gauge("a.gauge").Set(9)
	snap := r.Snapshot()
	if snap["z.count"] != 2 || snap["a.gauge"] != 9 {
		t.Fatalf("snapshot = %v", snap)
	}
	s := r.String()
	if !strings.HasPrefix(s, "a.gauge 9\n") || !strings.Contains(s, "z.count 2\n") {
		t.Fatalf("String() = %q", s)
	}
}

func TestMerge(t *testing.T) {
	dst := map[string]int64{"x": 1}
	Merge(dst, map[string]int64{"x": 2, "y": 5})
	if dst["x"] != 3 || dst["y"] != 5 {
		t.Fatalf("merged = %v", dst)
	}
}

func TestConcurrentUpdates(t *testing.T) {
	r := NewRegistry()
	var wg sync.WaitGroup
	for i := 0; i < 16; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 1000; j++ {
				r.Counter("hot").Inc()
				r.Gauge("level").Add(1)
			}
		}()
	}
	wg.Wait()
	if r.Counter("hot").Value() != 16000 {
		t.Fatalf("hot = %d", r.Counter("hot").Value())
	}
	if r.Gauge("level").Value() != 16000 {
		t.Fatalf("level = %d", r.Gauge("level").Value())
	}
}
