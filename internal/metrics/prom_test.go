package metrics

import (
	"strings"
	"testing"
)

// TestPromLabelValueEscaping pins the text-exposition escaping rules:
// exactly backslash, double-quote and newline are escaped, nothing else.
// Go's %q would also escape tabs and non-ASCII, which the Prometheus
// parser rejects as unknown escape sequences.
func TestPromLabelValueEscaping(t *testing.T) {
	cases := []struct{ in, want string }{
		{"0.001", `"0.001"`},
		{"+Inf", `"+Inf"`},
		{`back\slash`, `"back\\slash"`},
		{`say "hi"`, `"say \"hi\""`},
		{"line1\nline2", `"line1\nline2"`},
		{"\\\"\n", `"\\\"\n"`},
		{"tab\there", "\"tab\there\""}, // tab passes through raw
		{"héllo", `"héllo"`},           // UTF-8 passes through raw
		{"", `""`},
		{`trailing\`, `"trailing\\"`},
	}
	for _, tc := range cases {
		if got := promLabelValue(tc.in); got != tc.want {
			t.Errorf("promLabelValue(%q) = %s, want %s", tc.in, got, tc.want)
		}
	}
}

// TestWritePromBucketLabelsEscaped exercises the only label the
// exposition emits today end-to-end: every le value must come out as a
// well-formed quoted string with no raw quotes or newlines inside.
func TestWritePromBucketLabelsEscaped(t *testing.T) {
	r := NewRegistry()
	r.Histogram("mr.map_ns").Observe(1500)
	r.Histogram("mr.map_ns").Observe(3_000_000)
	var b strings.Builder
	if err := WriteProm(&b, r.Snapshot()); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	if !strings.Contains(out, `le="+Inf"`) {
		t.Fatalf("no +Inf bucket in exposition:\n%s", out)
	}
	for _, line := range strings.Split(out, "\n") {
		i := strings.Index(line, `le=`)
		if i < 0 {
			continue
		}
		val := line[i+len(`le=`):]
		end := strings.Index(val, "}")
		if end < 0 {
			t.Fatalf("unterminated label in %q", line)
		}
		val = val[:end]
		if len(val) < 2 || val[0] != '"' || val[len(val)-1] != '"' {
			t.Errorf("le value not quoted: %q", line)
		}
		inner := val[1 : len(val)-1]
		for j := 0; j < len(inner); j++ {
			switch inner[j] {
			case '\\':
				j++ // escape consumes the next byte
			case '"', '\n':
				t.Errorf("raw %q inside label value: %q", inner[j], line)
			}
		}
	}
}
