package benchrun

import (
	"fmt"
	"math"
	"math/rand"
	"runtime"
	"sort"
	"time"

	"eclipsemr/internal/hashing"
)

// RingBenchConfig sizes the ring algorithm comparison: lookup cost,
// churn (keys remapped on one join and one leave) and load balance per
// backend per member count. The O(1) backends (jump, power) are measured
// at the same member counts as the chord ring so the scaling difference
// is visible in one report; rendezvous has its own smaller counts because
// its lookup is O(n) by construction.
type RingBenchConfig struct {
	// Sizes are the member (bucket/token) counts for chord, jump and
	// power. At least three, ascending, so the report shows growth.
	Sizes []int `json:"sizes"`
	// RendezvousSizes are the member counts for the O(n) rendezvous
	// backend (smaller: it targets small local rings).
	RendezvousSizes []int `json:"rendezvous_sizes"`
	// Lookups is how many random keys each lookup timing resolves.
	Lookups int `json:"lookups"`
	// ChurnProbes is how many keys are traced across a join and a leave
	// to measure the remapped fraction.
	ChurnProbes int `json:"churn_probes"`
	// LoadProbes caps the keys counted for the load-balance measurement;
	// sizes where the cap undersamples (< 8 keys per member) skip it.
	LoadProbes int `json:"load_probes"`
	// Seed makes key and member generation reproducible.
	Seed int64 `json:"seed"`
}

// DefaultRingBenchConfig is the full-size comparison: 10k–1M members for
// the O(1)-capable backends, per the scaling claims in EXPERIMENTS.md.
func DefaultRingBenchConfig() RingBenchConfig {
	return RingBenchConfig{
		Sizes:           []int{10_000, 100_000, 1_000_000},
		RendezvousSizes: []int{2_048, 8_192, 32_768},
		Lookups:         4_096,
		ChurnProbes:     4_096,
		LoadProbes:      262_144,
		Seed:            1,
	}
}

// ShortRingBenchConfig is the CI smoke size: same shape, seconds to run.
func ShortRingBenchConfig() RingBenchConfig {
	return RingBenchConfig{
		Sizes:           []int{1_024, 8_192, 65_536},
		RendezvousSizes: []int{256, 1_024, 4_096},
		Lookups:         1_024,
		ChurnProbes:     1_024,
		LoadProbes:      65_536,
		Seed:            1,
	}
}

// RingPoint is one (backend, member count) measurement.
type RingPoint struct {
	Nodes int `json:"nodes"`
	// LookupNS is the mean wall time of one Owner lookup.
	LookupNS float64 `json:"lookup_ns"`
	// JoinRemappedFrac is the fraction of probe keys whose owner changed
	// when one node joined; ideal is 1/(n+1).
	JoinRemappedFrac float64 `json:"join_remapped_frac"`
	JoinIdealFrac    float64 `json:"join_ideal_frac"`
	// LeaveRemappedFrac is the fraction remapped when one node left;
	// ideal is 1/n (only the departed node's keys move).
	LeaveRemappedFrac float64 `json:"leave_remapped_frac"`
	LeaveIdealFrac    float64 `json:"leave_ideal_frac"`
	// LoadCV is the coefficient of variation (stddev/mean) of per-node
	// key counts; 0 is perfect balance. Omitted (with LoadProbes 0) when
	// the probe cap would undersample this size.
	LoadCV     float64 `json:"load_cv,omitempty"`
	LoadProbes int     `json:"load_probes,omitempty"`
}

// RingBackendReport groups one backend's points.
type RingBackendReport struct {
	Algorithm string      `json:"algorithm"`
	Points    []RingPoint `json:"points"`
}

// RingReport is the BENCH_ring.json payload.
type RingReport struct {
	Name      string              `json:"name"`
	GoVersion string              `json:"go_version"`
	Config    RingBenchConfig     `json:"config"`
	Backends  []RingBackendReport `json:"backends"`
}

// RingBench measures every ring backend and returns the report.
func RingBench(cfg RingBenchConfig) (RingReport, error) {
	rep := RingReport{Name: "ring", GoVersion: runtime.Version(), Config: cfg}
	for _, alg := range hashing.Algorithms() {
		sizes := cfg.Sizes
		if alg == hashing.AlgorithmRendezvous {
			sizes = cfg.RendezvousSizes
		}
		back := RingBackendReport{Algorithm: alg}
		for _, n := range sizes {
			pt, err := ringPoint(alg, n, cfg)
			if err != nil {
				return RingReport{}, fmt.Errorf("ring bench %s/%d: %w", alg, n, err)
			}
			back.Points = append(back.Points, pt)
		}
		rep.Backends = append(rep.Backends, back)
	}
	return rep, nil
}

// buildRing populates a ring of the named algorithm with n members. The
// chord backend inserts in ascending ring-position order and rendezvous
// in ascending ID order, so population is linear instead of quadratic —
// the measurements start from identical membership either way.
func buildRing(alg string, n int, extra int) (hashing.Ring, []hashing.NodeID, error) {
	ids := make([]hashing.NodeID, n+extra)
	for i := range ids {
		ids[i] = hashing.NodeID(fmt.Sprintf("bench-%07d", i))
	}
	if alg == hashing.AlgorithmChord {
		r := hashing.NewChordRing()
		type placed struct {
			id  hashing.NodeID
			pos hashing.Key
		}
		order := make([]placed, n)
		for i := 0; i < n; i++ {
			order[i] = placed{ids[i], hashing.KeyOfString(string(ids[i]))}
		}
		//lint:ignore ringcmp ordinal sort picks an insertion order so ring build is linear; no arc membership is derived
		sort.Slice(order, func(i, j int) bool { return order[i].pos < order[j].pos })
		for _, p := range order {
			if err := r.Add(p.id, p.pos); err != nil {
				return nil, nil, err
			}
		}
		return r, ids, nil
	}
	r, err := hashing.NewAlgorithmRing(alg)
	if err != nil {
		return nil, nil, err
	}
	for i := 0; i < n; i++ {
		if err := r.AddNode(ids[i]); err != nil {
			return nil, nil, err
		}
	}
	return r, ids, nil
}

func ringPoint(alg string, n int, cfg RingBenchConfig) (RingPoint, error) {
	ring, ids, err := buildRing(alg, n, 1)
	if err != nil {
		return RingPoint{}, err
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	keys := make([]hashing.Key, cfg.Lookups)
	for i := range keys {
		keys[i] = hashing.Key(rng.Uint64())
	}

	// Lookup timing: mean ns per Owner over the random key set.
	start := time.Now()
	for _, k := range keys {
		if _, err := ring.Owner(k); err != nil {
			return RingPoint{}, err
		}
	}
	pt := RingPoint{
		Nodes:    n,
		LookupNS: float64(time.Since(start).Nanoseconds()) / float64(len(keys)),
	}

	// Churn: trace ownership of the probe set across one join and the
	// matching leave. A single join only remaps ~1/n of the key space, so
	// the probe count scales with n (capped — O(n)-lookup rendezvous gets
	// a lower cap) or the sampled fraction would round to zero.
	churnProbes := cfg.ChurnProbes
	if scaled := 128 * n; scaled > churnProbes {
		churnProbes = scaled
	}
	maxProbes := 1 << 22
	if alg == hashing.AlgorithmRendezvous {
		maxProbes = 32_768
	}
	if churnProbes > maxProbes {
		churnProbes = maxProbes
	}
	probes := make([]hashing.Key, churnProbes)
	for i := range probes {
		probes[i] = hashing.Key(rng.Uint64())
	}
	before, err := owners(ring, probes)
	if err != nil {
		return RingPoint{}, err
	}
	joiner := ids[n]
	if err := ring.AddNode(joiner); err != nil {
		return RingPoint{}, err
	}
	after, err := owners(ring, probes)
	if err != nil {
		return RingPoint{}, err
	}
	pt.JoinRemappedFrac = movedFrac(before, after)
	pt.JoinIdealFrac = 1 / float64(n+1)
	ring.Remove(joiner)
	// Leave: remove an established member and count moved keys.
	victim := ids[n/2]
	ring.Remove(victim)
	left, err := owners(ring, probes)
	if err != nil {
		return RingPoint{}, err
	}
	pt.LeaveRemappedFrac = movedFrac(before, left)
	pt.LeaveIdealFrac = 1 / float64(n)
	if err := ring.AddNode(victim); err != nil {
		return RingPoint{}, err
	}

	// Load balance: per-node key counts over a larger probe set, skipped
	// when the cap would leave fewer than 8 keys per member.
	if cfg.LoadProbes >= 8*n {
		counts := make(map[hashing.NodeID]int, n)
		for i := 0; i < cfg.LoadProbes; i++ {
			owner, err := ring.Owner(hashing.Key(rng.Uint64()))
			if err != nil {
				return RingPoint{}, err
			}
			counts[owner]++
		}
		mean := float64(cfg.LoadProbes) / float64(n)
		var ss float64
		for i := 0; i < n; i++ {
			d := float64(counts[ids[i]]) - mean
			ss += d * d
		}
		pt.LoadCV = math.Sqrt(ss/float64(n)) / mean
		pt.LoadProbes = cfg.LoadProbes
	}
	return pt, nil
}

func owners(r hashing.Ring, keys []hashing.Key) ([]hashing.NodeID, error) {
	out := make([]hashing.NodeID, len(keys))
	for i, k := range keys {
		o, err := r.Owner(k)
		if err != nil {
			return nil, err
		}
		out[i] = o
	}
	return out, nil
}

func movedFrac(a, b []hashing.NodeID) float64 {
	moved := 0
	for i := range a {
		if a[i] != b[i] {
			moved++
		}
	}
	return float64(moved) / float64(len(a))
}
