package benchrun

import (
	"encoding/json"
	"os"
	"path/filepath"
	"testing"
)

// TestWordCountReport runs the smallest wordcount benchmark end to end
// and checks the report carries everything BENCH_wordcount.json
// promises: wall time, per-stage quantiles and a cache hit ratio.
func TestWordCountReport(t *testing.T) {
	cfg := ShortConfig()
	cfg.Nodes, cfg.Bytes, cfg.Jobs = 3, 64<<10, 2
	rep, err := Run("wordcount", cfg)
	if err != nil {
		t.Fatal(err)
	}
	if rep.WallMS <= 0 {
		t.Errorf("wall_ms = %v, want > 0", rep.WallMS)
	}
	if len(rep.JobMS) != cfg.Jobs {
		t.Errorf("job_ms has %d entries, want %d", len(rep.JobMS), cfg.Jobs)
	}
	// Job 2 reads the same blocks as job 1, so the warm iCache must
	// register hits.
	if rep.CacheHitRatio <= 0 {
		t.Errorf("cache_hit_ratio = %v, want > 0 after a repeated job", rep.CacheHitRatio)
	}
	for _, stage := range []string{"mr.map.read_ns", "mr.map.compute_ns", "mr.reduce.compute_ns", "mr.driver.job_ns"} {
		s, ok := rep.Stages[stage]
		if !ok {
			t.Errorf("stage %q missing from report", stage)
			continue
		}
		if s.Count <= 0 || s.P99MS < s.P50MS {
			t.Errorf("stage %q = %+v, want count > 0 and p99 >= p50", stage, s)
		}
	}
	if rep.Counters["mr.map.tasks"] <= 0 {
		t.Errorf("counters carry no map tasks: %v", rep.Counters["mr.map.tasks"])
	}

	path := filepath.Join(t.TempDir(), "BENCH_wordcount.json")
	if err := WriteJSON(path, rep); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	var back Report
	if err := json.Unmarshal(data, &back); err != nil {
		t.Fatalf("BENCH json does not round-trip: %v", err)
	}
	if back.Name != "wordcount" || len(back.Stages) != len(rep.Stages) {
		t.Errorf("round-tripped report differs: name %q, %d stages", back.Name, len(back.Stages))
	}
}

// TestKMeansReport exercises the iterative workload path.
func TestKMeansReport(t *testing.T) {
	cfg := ShortConfig()
	cfg.Nodes, cfg.Bytes, cfg.Iterations = 3, 16<<10, 2
	rep, err := Run("kmeans", cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.JobMS) != cfg.Iterations {
		t.Errorf("job_ms has %d entries, want %d iterations", len(rep.JobMS), cfg.Iterations)
	}
	if len(rep.Stages) == 0 {
		t.Error("kmeans report carries no stage histograms")
	}
}

func TestUnknownWorkload(t *testing.T) {
	if _, err := Run("sortish", ShortConfig()); err == nil {
		t.Fatal("unknown workload did not error")
	}
}
