// Package benchrun runs the paper's workloads on the real in-process
// engine and reduces the cluster-merged metrics snapshot to a compact
// JSON report (wall time, per-stage latency quantiles, cache hit ratio).
// scripts/bench.sh and the go test -bench harness both go through this
// package so every BENCH_*.json is produced the same way and PR-over-PR
// numbers stay comparable.
package benchrun

import (
	"encoding/json"
	"fmt"
	"os"
	"runtime"
	"sort"
	"time"

	"eclipsemr/internal/apps"
	"eclipsemr/internal/cluster"
	"eclipsemr/internal/dhtfs"
	"eclipsemr/internal/mapreduce"
	"eclipsemr/internal/trace"
	"eclipsemr/internal/workloads"
)

// Config sizes one benchmark run. The zero value is invalid; use
// DefaultConfig or ShortConfig as a starting point.
type Config struct {
	// Nodes is the in-process cluster size.
	Nodes int `json:"nodes"`
	// Bytes is the input corpus size (wordcount) or an upper bound used
	// to derive the point count (kmeans).
	Bytes int `json:"bytes"`
	// Jobs is how many times the wordcount job runs over the same input;
	// runs after the first hit the warm iCache, so Jobs >= 2 makes the
	// reported cache hit ratio meaningful.
	Jobs int `json:"jobs"`
	// Iterations is the number of k-means Lloyd iterations.
	Iterations int `json:"iterations"`
	// Seed makes the generated inputs reproducible.
	Seed int64 `json:"seed"`
	// Trace enables per-job span recording on every node for the run, so
	// the report carries the tracing overhead and the final job's trace
	// can be exported (see Overhead and TracedRun).
	Trace bool `json:"trace,omitempty"`
}

// DefaultConfig is the full-size run used for trend tracking.
func DefaultConfig() Config {
	return Config{Nodes: 8, Bytes: 4 << 20, Jobs: 3, Iterations: 3, Seed: 1}
}

// ShortConfig is the CI smoke-test size: a few seconds end to end.
func ShortConfig() Config {
	return Config{Nodes: 4, Bytes: 256 << 10, Jobs: 2, Iterations: 2, Seed: 1}
}

// Stage summarizes one latency histogram from the merged snapshot.
type Stage struct {
	Count  int64   `json:"count"`
	P50MS  float64 `json:"p50_ms"`
	P90MS  float64 `json:"p90_ms"`
	P99MS  float64 `json:"p99_ms"`
	MeanMS float64 `json:"mean_ms"`
}

// Report is the BENCH_*.json payload.
type Report struct {
	Name          string    `json:"name"`
	GoVersion     string    `json:"go_version"`
	Config        Config    `json:"config"`
	WallMS        float64   `json:"wall_ms"`
	JobMS         []float64 `json:"job_ms"`
	CacheHitRatio float64   `json:"cache_hit_ratio"`
	// Shuffle pipeline headline numbers, lifted out of Counters/Stages
	// so report validators and PR diffs can read them without knowing
	// metric names: total intermediate bytes pushed, coalesced batch
	// RPCs issued, and the p99 of one batch push.
	BytesShuffled    int64            `json:"bytes_shuffled"`
	ShuffleBatches   int64            `json:"shuffle_batches"`
	ShuffleSendP99MS float64          `json:"shuffle_send_p99_ms"`
	Counters         map[string]int64 `json:"counters"`
	Stages           map[string]Stage `json:"stages"`
	// TraceSpans is how many spans the run recorded (0 untraced) and
	// TraceDropped how many were overwritten before collection.
	TraceSpans   int   `json:"trace_spans,omitempty"`
	TraceDropped int64 `json:"trace_dropped,omitempty"`
}

// Run executes the named workload ("wordcount" or "kmeans") on a fresh
// in-process cluster and returns the report.
func Run(name string, cfg Config) (Report, error) {
	rep, _, err := run(name, cfg)
	return rep, err
}

// TracedRun executes the workload with tracing forced on and also
// returns the Chrome trace-event export of every recorded span, for the
// CI artifact and for loading a bench run into Perfetto.
func TracedRun(name string, cfg Config) (Report, []byte, error) {
	cfg.Trace = true
	return run(name, cfg)
}

func run(name string, cfg Config) (Report, []byte, error) {
	c, err := cluster.New(cfg.Nodes, cluster.Options{})
	if err != nil {
		return Report{}, nil, err
	}
	defer c.Close()
	c.SetTracing(cfg.Trace)

	rep := Report{Name: name, GoVersion: runtime.Version(), Config: cfg}
	start := time.Now()
	switch name {
	case "wordcount":
		err = runWordCount(c, cfg, &rep)
	case "kmeans":
		err = runKMeans(c, cfg, &rep)
	default:
		err = fmt.Errorf("benchrun: unknown workload %q (want wordcount or kmeans)", name)
	}
	if err != nil {
		return Report{}, nil, err
	}
	rep.WallMS = ms(time.Since(start))
	rep.CacheHitRatio = c.CacheStats().HitRatio()
	fillStages(c, &rep)

	var chrome []byte
	if cfg.Trace {
		spans, dropped, err := c.TraceSpans("") // every job of the run
		if err != nil {
			return Report{}, nil, err
		}
		rep.TraceSpans = len(spans)
		rep.TraceDropped = dropped
		if chrome, err = trace.ChromeTrace(spans); err != nil {
			return Report{}, nil, err
		}
	}
	return rep, chrome, nil
}

// Overhead runs the same workload untraced and traced on identical
// configs and reports the wall-time cost of tracing in percent. The
// traced run's Chrome export rides along so one call produces both the
// EXPERIMENTS.md delta and the trace.json artifact.
type OverheadReport struct {
	Untraced Report  `json:"untraced"`
	Traced   Report  `json:"traced"`
	DeltaPct float64 `json:"delta_pct"`
}

func Overhead(name string, cfg Config) (OverheadReport, []byte, error) {
	cfg.Trace = false
	untraced, _, err := run(name, cfg)
	if err != nil {
		return OverheadReport{}, nil, err
	}
	traced, chrome, err := TracedRun(name, cfg)
	if err != nil {
		return OverheadReport{}, nil, err
	}
	rep := OverheadReport{Untraced: untraced, Traced: traced}
	if untraced.WallMS > 0 {
		rep.DeltaPct = (traced.WallMS - untraced.WallMS) / untraced.WallMS * 100
	}
	return rep, chrome, nil
}

func runWordCount(c *cluster.Cluster, cfg Config, rep *Report) error {
	text := workloads.Text(cfg.Seed, cfg.Bytes, 2000)
	if _, err := c.UploadRecords("bench.txt", "bench", dhtfs.PermPublic, text, '\n'); err != nil {
		return err
	}
	for j := 0; j < cfg.Jobs; j++ {
		jobStart := time.Now()
		res, err := c.Run(mapreduce.JobSpec{
			ID: fmt.Sprintf("bench-wc-%d", j), App: apps.WordCount,
			Inputs: []string{"bench.txt"}, User: "bench",
		})
		if err != nil {
			return err
		}
		if len(res.OutputFiles) == 0 {
			return fmt.Errorf("benchrun: wordcount job %d produced no output", j)
		}
		rep.JobMS = append(rep.JobMS, ms(time.Since(jobStart)))
	}
	return nil
}

func runKMeans(c *cluster.Cluster, cfg Config, rep *Report) error {
	// ~48 bytes per generated point line keeps Bytes roughly honest.
	n := cfg.Bytes / 48
	if n < 64 {
		n = 64
	}
	data, centers := workloads.Points(cfg.Seed, n, 4, 4)
	if _, err := c.UploadRecords("points.txt", "bench", dhtfs.PermPublic, data, '\n'); err != nil {
		return err
	}
	res, err := apps.RunKMeans(c, "points.txt", "bench", centers, cfg.Iterations, true)
	if err != nil {
		return err
	}
	for _, d := range res.IterationTimes {
		rep.JobMS = append(rep.JobMS, ms(d))
	}
	return nil
}

// fillStages reduces the cluster-merged snapshot: every non-empty
// histogram becomes a Stage row and every counter/gauge is carried
// through so regressions in, say, retry counts are visible next to the
// latency shifts they cause.
func fillStages(c *cluster.Cluster, rep *Report) {
	snap := c.MetricsSnapshot()
	rep.Counters = make(map[string]int64, len(snap.Values))
	for name, v := range snap.Values {
		rep.Counters[name] = v
	}
	rep.Stages = make(map[string]Stage, len(snap.Hists))
	for name, h := range snap.Hists {
		n := h.Count()
		if n == 0 {
			continue
		}
		rep.Stages[name] = Stage{
			Count:  n,
			P50MS:  ms(time.Duration(h.Quantile(0.50))),
			P90MS:  ms(time.Duration(h.Quantile(0.90))),
			P99MS:  ms(time.Duration(h.Quantile(0.99))),
			MeanMS: ms(time.Duration(int64(h.Mean()))),
		}
	}
	rep.BytesShuffled = rep.Counters["mr.shuffle.bytes"]
	rep.ShuffleBatches = rep.Counters["mr.shuffle.batches"]
	rep.ShuffleSendP99MS = rep.Stages["mr.shuffle.send_ns"].P99MS
}

func ms(d time.Duration) float64 { return float64(d.Nanoseconds()) / 1e6 }

// WriteJSON writes a report (Report or OverheadReport) to path,
// pretty-printed with sorted keys so reports diff cleanly between PRs.
func WriteJSON(path string, rep interface{}) error {
	data, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}

// StageNames returns the report's stage names sorted, for stable output.
func StageNames(rep Report) []string {
	names := make([]string, 0, len(rep.Stages))
	for name := range rep.Stages {
		names = append(names, name)
	}
	sort.Strings(names)
	return names
}
