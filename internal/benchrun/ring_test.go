package benchrun

import (
	"encoding/json"
	"testing"

	"eclipsemr/internal/hashing"
)

func tinyRingConfig() RingBenchConfig {
	return RingBenchConfig{
		Sizes:           []int{16, 64, 256},
		RendezvousSizes: []int{16, 64, 256},
		Lookups:         256,
		ChurnProbes:     2048,
		LoadProbes:      4096,
		Seed:            1,
	}
}

// TestRingBenchShape pins the BENCH_ring.json schema: every backend gets
// a point per configured size carrying lookup timing and churn fractions.
func TestRingBenchShape(t *testing.T) {
	rep, err := RingBench(tinyRingConfig())
	if err != nil {
		t.Fatal(err)
	}
	if rep.Name != "ring" || rep.GoVersion == "" {
		t.Fatalf("bad header: %+v", rep)
	}
	if len(rep.Backends) != len(hashing.Algorithms()) {
		t.Fatalf("%d backends, want %d", len(rep.Backends), len(hashing.Algorithms()))
	}
	for _, back := range rep.Backends {
		if len(back.Points) != 3 {
			t.Fatalf("%s has %d points, want 3", back.Algorithm, len(back.Points))
		}
		for _, pt := range back.Points {
			if pt.LookupNS <= 0 {
				t.Errorf("%s/%d: lookup_ns = %v", back.Algorithm, pt.Nodes, pt.LookupNS)
			}
			if pt.JoinRemappedFrac <= 0 || pt.JoinRemappedFrac > 1 {
				t.Errorf("%s/%d: join_remapped_frac = %v", back.Algorithm, pt.Nodes, pt.JoinRemappedFrac)
			}
			// No lower bound on leave churn: a chord victim's arc can be
			// arbitrarily narrow, so even zero sampled moves is legitimate.
			if pt.LeaveRemappedFrac < 0 || pt.LeaveRemappedFrac > 1 {
				t.Errorf("%s/%d: leave_remapped_frac = %v", back.Algorithm, pt.Nodes, pt.LeaveRemappedFrac)
			}
			if pt.LoadProbes == 0 {
				t.Errorf("%s/%d: load balance skipped at tiny size", back.Algorithm, pt.Nodes)
			}
		}
	}
	if _, err := json.Marshal(rep); err != nil {
		t.Fatalf("report not JSON-serializable: %v", err)
	}
}

// TestRingBenchChurnBounds pins the churn guarantees the backends are
// chosen for: on the monotone backends a join remaps close to the ideal
// 1/(n+1) of keys, never an order of magnitude more.
func TestRingBenchChurnBounds(t *testing.T) {
	rep, err := RingBench(tinyRingConfig())
	if err != nil {
		t.Fatal(err)
	}
	for _, back := range rep.Backends {
		for _, pt := range back.Points {
			// All four backends are monotone on join: with 2048 probes the
			// sampled fraction stays well under 4x ideal even at n=256.
			if pt.JoinRemappedFrac > 4*pt.JoinIdealFrac+0.01 {
				t.Errorf("%s/%d: join remapped %.4f, ideal %.4f — not monotone?",
					back.Algorithm, pt.Nodes, pt.JoinRemappedFrac, pt.JoinIdealFrac)
			}
			// Leave churn: rendezvous and chord are optimal (≈1/n); the
			// slot-swap backends move at most two nodes' keys (≈2/n).
			limit := 4*pt.LeaveIdealFrac + 0.01
			if pt.LeaveRemappedFrac > limit {
				t.Errorf("%s/%d: leave remapped %.4f exceeds %.4f",
					back.Algorithm, pt.Nodes, pt.LeaveRemappedFrac, limit)
			}
		}
	}
}
