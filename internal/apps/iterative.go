package apps

import (
	"fmt"
	"strconv"
	"strings"
	"time"

	"eclipsemr/internal/mapreduce"
)

// ---------------------------------------------------------------------
// k-means
// ---------------------------------------------------------------------

// kmeansMap assigns each point to its nearest centroid and emits one
// partial (sum, count) accumulator per centroid per block — local
// aggregation keeps shuffle volume tiny, which is why the paper's k-means
// iteration outputs are only ~1.7 KB.
func kmeansMap(params mapreduce.Params, input []byte, emit mapreduce.Emit) error {
	k, err := strconv.Atoi(params.Get("k"))
	if err != nil || k < 1 {
		return fmt.Errorf("apps: kmeans: bad k %q", params.Get("k"))
	}
	dim, err := strconv.Atoi(params.Get("dim"))
	if err != nil || dim < 1 {
		return fmt.Errorf("apps: kmeans: bad dim %q", params.Get("dim"))
	}
	centroids, err := decodeMat(params["centroids"], k, dim)
	if err != nil {
		return fmt.Errorf("apps: kmeans: %w", err)
	}
	// acc[c] holds sum vector followed by count.
	acc := make([][]float64, k)
	err = splitLines(input, func(line string) error {
		p, err := parsePoint(line, dim)
		if err != nil {
			return err
		}
		best, bestD := 0, sqDist(p, centroids[0])
		for c := 1; c < k; c++ {
			if d := sqDist(p, centroids[c]); d < bestD {
				best, bestD = c, d
			}
		}
		if acc[best] == nil {
			acc[best] = make([]float64, dim+1)
		}
		addVec(acc[best][:dim], p)
		acc[best][dim]++
		return nil
	})
	if err != nil {
		return err
	}
	for c, a := range acc {
		if a == nil {
			continue
		}
		if err := emit("c"+strconv.Itoa(c), encodeVec(a)); err != nil {
			return err
		}
	}
	return nil
}

// kmeansReduce merges the partial accumulators of one centroid. It emits
// the merged accumulator (not the mean) so it can double as the map-side
// combiner; the driver divides by the count.
func kmeansReduce(_ mapreduce.Params, key string, values [][]byte, emit mapreduce.Emit) error {
	var acc []float64
	for _, v := range values {
		part, err := decodeVec(v)
		if err != nil {
			return fmt.Errorf("apps: kmeans reduce %s: %w", key, err)
		}
		if acc == nil {
			acc = make([]float64, len(part))
		}
		if len(part) != len(acc) {
			return fmt.Errorf("apps: kmeans reduce %s: accumulator length mismatch", key)
		}
		addVec(acc, part)
	}
	return emit(key, encodeVec(acc))
}

// KMeansResult reports one k-means run.
type KMeansResult struct {
	Centroids [][]float64
	// Shifts holds the max centroid movement per iteration.
	Shifts []float64
	// IterationTimes holds the wall-clock duration of each iteration.
	IterationTimes []time.Duration
	// Results holds each iteration's raw job result.
	Results []mapreduce.Result
}

// RunKMeans executes `iters` Lloyd iterations over a points file. Initial
// centroids seed from the first k distinct emitted centroids of a
// caller-provided start matrix. cacheOutputs stores iteration outputs in
// oCache as the paper's iterative experiments do.
func RunKMeans(r Runner, input, user string, initial [][]float64, iters int, cacheOutputs bool) (KMeansResult, error) {
	if len(initial) == 0 {
		return KMeansResult{}, fmt.Errorf("apps: kmeans needs initial centroids")
	}
	k, dim := len(initial), len(initial[0])
	centroids := make([][]float64, k)
	for i := range centroids {
		centroids[i] = append([]float64(nil), initial[i]...)
	}
	var out KMeansResult
	for it := 0; it < iters; it++ {
		began := time.Now()
		spec := mapreduce.JobSpec{
			ID:     fmt.Sprintf("kmeans-%s-it%d", input, it),
			App:    KMeans,
			Inputs: []string{input},
			User:   user,
			Params: mapreduce.Params{
				"k":         []byte(strconv.Itoa(k)),
				"dim":       []byte(strconv.Itoa(dim)),
				"centroids": encodeMat(centroids),
			},
			CacheOutputs: cacheOutputs,
		}
		res, err := r.Run(spec)
		if err != nil {
			return out, fmt.Errorf("apps: kmeans iteration %d: %w", it, err)
		}
		kvs, err := r.Collect(res, user)
		if err != nil {
			return out, err
		}
		maxShift := 0.0
		for _, kv := range kvs {
			c, err := strconv.Atoi(strings.TrimPrefix(kv.Key, "c"))
			if err != nil || c < 0 || c >= k {
				return out, fmt.Errorf("apps: kmeans: bad centroid key %q", kv.Key)
			}
			acc, err := decodeVec(kv.Value)
			if err != nil {
				return out, err
			}
			count := acc[dim]
			if count == 0 {
				continue
			}
			next := make([]float64, dim)
			for j := 0; j < dim; j++ {
				next[j] = acc[j] / count
			}
			if d := sqDist(next, centroids[c]); d > maxShift {
				maxShift = d
			}
			centroids[c] = next
		}
		out.Shifts = append(out.Shifts, maxShift)
		out.IterationTimes = append(out.IterationTimes, time.Since(began))
		out.Results = append(out.Results, res)
	}
	out.Centroids = centroids
	return out, nil
}

// ---------------------------------------------------------------------
// page rank
// ---------------------------------------------------------------------

const (
	pageRankDamping = 0.85
)

// pageRankMap distributes each node's current rank over its out-edges.
// Ranks arrive as a "ranks" parameter ("node rank" lines); missing nodes
// start at 1/N.
func pageRankMap(params mapreduce.Params, input []byte, emit mapreduce.Emit) error {
	n, err := strconv.ParseFloat(params.Get("n"), 64)
	if err != nil || n <= 0 {
		return fmt.Errorf("apps: pagerank: bad node count %q", params.Get("n"))
	}
	ranks, err := parseRanks(params.Get("ranks"))
	if err != nil {
		return err
	}
	return splitLines(input, func(line string) error {
		fields := strings.Fields(line)
		src := fields[0]
		rank, ok := ranks[src]
		if !ok {
			rank = 1 / n
		}
		// Emitting the source with zero contribution keeps dangling and
		// unreferenced nodes alive in the output.
		if err := emit(src, []byte("0")); err != nil {
			return err
		}
		dsts := fields[1:]
		if len(dsts) == 0 {
			return nil
		}
		share := strconv.FormatFloat(rank/float64(len(dsts)), 'g', 17, 64)
		for _, dst := range dsts {
			if err := emit(dst, []byte(share)); err != nil {
				return err
			}
		}
		return nil
	})
}

// pageRankReduce applies the damped update rule.
func pageRankReduce(params mapreduce.Params, key string, values [][]byte, emit mapreduce.Emit) error {
	n, err := strconv.ParseFloat(params.Get("n"), 64)
	if err != nil || n <= 0 {
		return fmt.Errorf("apps: pagerank: bad node count %q", params.Get("n"))
	}
	sum := 0.0
	for _, v := range values {
		x, err := strconv.ParseFloat(string(v), 64)
		if err != nil {
			return fmt.Errorf("apps: pagerank: bad contribution %q: %w", v, err)
		}
		sum += x
	}
	rank := (1-pageRankDamping)/n + pageRankDamping*sum
	return emit(key, []byte(strconv.FormatFloat(rank, 'g', 17, 64)))
}

// parseRanks parses "node rank" lines.
func parseRanks(s string) (map[string]float64, error) {
	ranks := make(map[string]float64)
	for _, line := range strings.Split(s, "\n") {
		if line == "" {
			continue
		}
		parts := strings.Fields(line)
		if len(parts) != 2 {
			return nil, fmt.Errorf("apps: pagerank: malformed rank line %q", line)
		}
		v, err := strconv.ParseFloat(parts[1], 64)
		if err != nil {
			return nil, err
		}
		ranks[parts[0]] = v
	}
	return ranks, nil
}

func formatRanks(ranks map[string]float64) string {
	var b strings.Builder
	for node, r := range ranks {
		b.WriteString(node)
		b.WriteByte(' ')
		b.WriteString(strconv.FormatFloat(r, 'g', 17, 64))
		b.WriteByte('\n')
	}
	return b.String()
}

// PageRankResult reports one page rank run.
type PageRankResult struct {
	Ranks          map[string]float64
	IterationTimes []time.Duration
	Results        []mapreduce.Result
}

// RunPageRank executes `iters` power iterations over an adjacency-list
// file with n nodes.
func RunPageRank(r Runner, input, user string, n, iters int, cacheOutputs bool) (PageRankResult, error) {
	ranks := make(map[string]float64)
	var out PageRankResult
	for it := 0; it < iters; it++ {
		began := time.Now()
		spec := mapreduce.JobSpec{
			ID:     fmt.Sprintf("pagerank-%s-it%d", input, it),
			App:    PageRank,
			Inputs: []string{input},
			User:   user,
			Params: mapreduce.Params{
				"n":     []byte(strconv.Itoa(n)),
				"ranks": []byte(formatRanks(ranks)),
			},
			CacheOutputs: cacheOutputs,
		}
		res, err := r.Run(spec)
		if err != nil {
			return out, fmt.Errorf("apps: pagerank iteration %d: %w", it, err)
		}
		kvs, err := r.Collect(res, user)
		if err != nil {
			return out, err
		}
		next := make(map[string]float64, len(kvs))
		for _, kv := range kvs {
			v, err := strconv.ParseFloat(string(kv.Value), 64)
			if err != nil {
				return out, fmt.Errorf("apps: pagerank: bad rank %q: %w", kv.Value, err)
			}
			next[kv.Key] = v
		}
		ranks = next
		out.IterationTimes = append(out.IterationTimes, time.Since(began))
		out.Results = append(out.Results, res)
	}
	out.Ranks = ranks
	return out, nil
}

// ---------------------------------------------------------------------
// logistic regression
// ---------------------------------------------------------------------

// logRegMap computes each block's gradient contribution for logistic
// regression with ±1 labels, emitting one accumulated (gradient, count)
// vector per block.
func logRegMap(params mapreduce.Params, input []byte, emit mapreduce.Emit) error {
	dim, err := strconv.Atoi(params.Get("dim"))
	if err != nil || dim < 1 {
		return fmt.Errorf("apps: logreg: bad dim %q", params.Get("dim"))
	}
	w, err := decodeVec(params["weights"])
	if err != nil {
		return fmt.Errorf("apps: logreg: %w", err)
	}
	if len(w) != dim {
		return fmt.Errorf("apps: logreg: weights have %d dims, want %d", len(w), dim)
	}
	grad := make([]float64, dim+1)
	err = splitLines(input, func(line string) error {
		parts := strings.SplitN(line, " ", 2)
		if len(parts) != 2 {
			return fmt.Errorf("apps: logreg: malformed point %.40q", line)
		}
		y, err := strconv.ParseFloat(parts[0], 64)
		if err != nil {
			return err
		}
		x, err := parsePoint(parts[1], dim)
		if err != nil {
			return err
		}
		dot := 0.0
		for j := range x {
			dot += w[j] * x[j]
		}
		// d/dw of log(1+exp(-y w·x)) = -y x σ(-y w·x)
		coef := -y * sigmoid(-y*dot)
		for j := range x {
			grad[j] += coef * x[j]
		}
		grad[dim]++
		return nil
	})
	if err != nil {
		return err
	}
	return emit("grad", encodeVec(grad))
}

// logRegReduce merges partial gradients.
func logRegReduce(_ mapreduce.Params, key string, values [][]byte, emit mapreduce.Emit) error {
	return kmeansReduce(nil, key, values, emit)
}

// LogRegResult reports one logistic regression run.
type LogRegResult struct {
	Weights        []float64
	IterationTimes []time.Duration
	Results        []mapreduce.Result
}

// RunLogReg executes `iters` gradient-descent iterations with learning
// rate lr over a labeled-points file.
func RunLogReg(r Runner, input, user string, dim, iters int, lr float64, cacheOutputs bool) (LogRegResult, error) {
	out := LogRegResult{Weights: make([]float64, dim)}
	for it := 0; it < iters; it++ {
		step, err := runLogRegFrom(r, input, user, out.Weights, it, lr, cacheOutputs)
		if err != nil {
			return out, err
		}
		out.Weights = step.Weights
		out.IterationTimes = append(out.IterationTimes, step.IterationTimes...)
		out.Results = append(out.Results, step.Results...)
	}
	return out, nil
}

// runLogRegFrom executes one gradient-descent iteration starting from w.
func runLogRegFrom(r Runner, input, user string, w []float64, it int, lr float64, cacheOutputs bool) (LogRegResult, error) {
	dim := len(w)
	began := time.Now()
	spec := mapreduce.JobSpec{
		ID:     fmt.Sprintf("logreg-%s-it%d", input, it),
		App:    LogReg,
		Inputs: []string{input},
		User:   user,
		Params: mapreduce.Params{
			"dim":     []byte(strconv.Itoa(dim)),
			"weights": encodeVec(w),
		},
		CacheOutputs: cacheOutputs,
	}
	var out LogRegResult
	res, err := r.Run(spec)
	if err != nil {
		return out, fmt.Errorf("apps: logreg iteration %d: %w", it, err)
	}
	kvs, err := r.Collect(res, user)
	if err != nil {
		return out, err
	}
	if len(kvs) != 1 || kvs[0].Key != "grad" {
		return out, fmt.Errorf("apps: logreg: expected one grad key, got %d pairs", len(kvs))
	}
	acc, err := decodeVec(kvs[0].Value)
	if err != nil {
		return out, err
	}
	next := append([]float64(nil), w...)
	if count := acc[dim]; count > 0 {
		for j := 0; j < dim; j++ {
			next[j] -= lr * acc[j] / count
		}
	}
	out.Weights = next
	out.IterationTimes = append(out.IterationTimes, time.Since(began))
	out.Results = append(out.Results, res)
	return out, nil
}
