package apps

import (
	"math"
	"sort"
	"strconv"
	"strings"
	"testing"
	"testing/quick"
	"time"

	"eclipsemr/internal/cluster"
	"eclipsemr/internal/dhtfs"
	"eclipsemr/internal/mapreduce"
	"eclipsemr/internal/workloads"
)

func newCluster(t *testing.T, n int) *cluster.Cluster {
	t.Helper()
	c, err := cluster.New(n, cluster.Options{
		Config: cluster.Config{
			BlockSize:         2048,
			CacheBytes:        16 << 20,
			HeartbeatInterval: 50 * time.Millisecond,
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(c.Close)
	return c
}

func uploadLines(t *testing.T, c *cluster.Cluster, name string, data []byte) {
	t.Helper()
	if _, err := c.UploadRecords(name, "u", dhtfs.PermPublic, data, '\n'); err != nil {
		t.Fatal(err)
	}
}

func runAndCollect(t *testing.T, c *cluster.Cluster, spec mapreduce.JobSpec) map[string]string {
	t.Helper()
	res, err := c.Run(spec)
	if err != nil {
		t.Fatal(err)
	}
	kvs, err := c.Collect(res, spec.User)
	if err != nil {
		t.Fatal(err)
	}
	out := make(map[string]string, len(kvs))
	for _, kv := range kvs {
		out[kv.Key] = string(kv.Value)
	}
	return out
}

func TestWordCountMatchesReference(t *testing.T) {
	c := newCluster(t, 4)
	text := workloads.Text(7, 16<<10, 500)
	uploadLines(t, c, "zipf.txt", text)
	got := runAndCollect(t, c, mapreduce.JobSpec{
		ID: "wc", App: WordCount, Inputs: []string{"zipf.txt"}, User: "u",
	})
	want := map[string]int{}
	for _, w := range strings.Fields(string(text)) {
		want[w]++
	}
	if len(got) != len(want) {
		t.Fatalf("distinct words: got %d want %d", len(got), len(want))
	}
	for w, n := range want {
		if got[w] != strconv.Itoa(n) {
			t.Fatalf("count[%q] = %s want %d", w, got[w], n)
		}
	}
}

func TestGrepMatchesReference(t *testing.T) {
	c := newCluster(t, 3)
	text := workloads.Text(8, 8<<10, 200)
	uploadLines(t, c, "g.txt", text)
	pattern := "ba"
	got := runAndCollect(t, c, mapreduce.JobSpec{
		ID: "grep", App: Grep, Inputs: []string{"g.txt"}, User: "u",
		Params: mapreduce.Params{"pattern": []byte(pattern)},
	})
	want := map[string]int{}
	for _, line := range strings.Split(string(text), "\n") {
		if strings.Contains(line, pattern) {
			want[line]++
		}
	}
	if len(got) != len(want) {
		t.Fatalf("matching lines: got %d want %d", len(got), len(want))
	}
	for line, n := range want {
		if got[line] != strconv.Itoa(n) {
			t.Fatalf("grep count mismatch for %.40q: %s vs %d", line, got[line], n)
		}
	}
	if err := func() error {
		_, err := c.Run(mapreduce.JobSpec{
			ID: "grep-noparam", App: Grep, Inputs: []string{"g.txt"}, User: "u",
		})
		return err
	}(); err == nil {
		t.Fatal("grep without pattern succeeded")
	}
}

func TestInvertedIndexPostings(t *testing.T) {
	c := newCluster(t, 3)
	docs := workloads.Documents(9, 12, 300, 80)
	uploadLines(t, c, "docs.txt", docs)
	got := runAndCollect(t, c, mapreduce.JobSpec{
		ID: "ii", App: InvertedIndex, Inputs: []string{"docs.txt"}, User: "u",
	})
	// Reference postings.
	want := map[string]map[string]bool{}
	for _, line := range strings.Split(strings.TrimSpace(string(docs)), "\n") {
		parts := strings.SplitN(line, "\t", 2)
		for _, w := range strings.Fields(parts[1]) {
			if want[w] == nil {
				want[w] = map[string]bool{}
			}
			want[w][parts[0]] = true
		}
	}
	if len(got) != len(want) {
		t.Fatalf("terms: got %d want %d", len(got), len(want))
	}
	for term, docsSet := range want {
		posting := strings.Split(got[term], ",")
		if len(posting) != len(docsSet) {
			t.Fatalf("term %q: posting %v want %d docs", term, posting, len(docsSet))
		}
		if !sort.StringsAreSorted(posting) {
			t.Fatalf("term %q posting list not sorted: %v", term, posting)
		}
		for _, d := range posting {
			if !docsSet[d] {
				t.Fatalf("term %q lists wrong doc %q", term, d)
			}
		}
	}
}

func TestSortOutputsSortedPartitions(t *testing.T) {
	c := newCluster(t, 4)
	recs := workloads.Records(10, 2000, 12)
	uploadLines(t, c, "recs.txt", recs)
	res, err := c.Run(mapreduce.JobSpec{
		ID: "sort", App: Sort, Inputs: []string{"recs.txt"}, User: "u",
	})
	if err != nil {
		t.Fatal(err)
	}
	// Each partition's output must be internally key-sorted, and the
	// multiset of records must be preserved.
	want := map[string]int{}
	for _, l := range strings.Split(strings.TrimSpace(string(recs)), "\n") {
		want[l]++
	}
	total := 0
	for _, f := range res.OutputFiles {
		data, err := c.ReadFile(f, "u")
		if err != nil {
			t.Fatal(err)
		}
		kvs, err := mapreduce.DecodeKVs(data)
		if err != nil {
			t.Fatal(err)
		}
		for i, kv := range kvs {
			if i > 0 && kvs[i-1].Key > kv.Key {
				t.Fatalf("partition %s not sorted at %d", f, i)
			}
			n, _ := strconv.Atoi(string(kv.Value))
			if want[kv.Key] != n {
				t.Fatalf("record %q count %d want %d", kv.Key, n, want[kv.Key])
			}
			total += n
		}
	}
	if total != 2000 {
		t.Fatalf("total records = %d", total)
	}
}

func TestKMeansConverges(t *testing.T) {
	c := newCluster(t, 4)
	data, centers := workloads.Points(11, 600, 2, 3)
	uploadLines(t, c, "pts.txt", data)
	// Deliberately poor initial centroids.
	initial := [][]float64{{0, 0}, {1, 1}, {-1, -1}}
	res, err := RunKMeans(c, "pts.txt", "u", initial, 8, false)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Shifts) != 8 || len(res.IterationTimes) != 8 {
		t.Fatalf("iterations = %d", len(res.Shifts))
	}
	// Shifts shrink as Lloyd's algorithm converges.
	if res.Shifts[len(res.Shifts)-1] > res.Shifts[0] {
		t.Fatalf("shifts did not decrease: %v", res.Shifts)
	}
	// Every true center has a learned centroid nearby.
	for _, truth := range centers {
		best := math.Inf(1)
		for _, got := range res.Centroids {
			if d := sqDist(truth, got); d < best {
				best = d
			}
		}
		if best > 1.0 {
			t.Fatalf("no centroid near true center %v (d²=%g): %v", truth, best, res.Centroids)
		}
	}
}

func TestPageRankMatchesLocalPowerIteration(t *testing.T) {
	c := newCluster(t, 3)
	const n = 60
	graph := workloads.Graph(12, n, 3)
	uploadLines(t, c, "graph.txt", graph)
	res, err := RunPageRank(c, "graph.txt", "u", n, 5, false)
	if err != nil {
		t.Fatal(err)
	}
	// Local reference implementation.
	adj := map[string][]string{}
	for _, line := range strings.Split(strings.TrimSpace(string(graph)), "\n") {
		f := strings.Fields(line)
		adj[f[0]] = f[1:]
	}
	ranks := map[string]float64{}
	for node := range adj {
		ranks[node] = 1.0 / n
	}
	for it := 0; it < 5; it++ {
		next := map[string]float64{}
		for node := range adj {
			next[node] = (1 - pageRankDamping) / n
		}
		for src, dsts := range adj {
			if len(dsts) == 0 {
				continue
			}
			share := ranks[src] * pageRankDamping / float64(len(dsts))
			for _, d := range dsts {
				next[d] += share
			}
		}
		ranks = next
	}
	if len(res.Ranks) != n {
		t.Fatalf("ranks for %d nodes, want %d", len(res.Ranks), n)
	}
	for node, want := range ranks {
		got := res.Ranks[node]
		if math.Abs(got-want) > 1e-9 {
			t.Fatalf("rank[%s] = %g want %g", node, got, want)
		}
	}
}

func TestLogRegLearnsSeparator(t *testing.T) {
	c := newCluster(t, 3)
	data, _ := workloads.LabeledPoints(13, 800, 4)
	uploadLines(t, c, "lp.txt", data)
	res, err := RunLogReg(c, "lp.txt", "u", 4, 10, 0.5, false)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.IterationTimes) != 10 {
		t.Fatalf("iterations = %d", len(res.IterationTimes))
	}
	// Training accuracy of the learned weights.
	correct, total := 0, 0
	for _, line := range strings.Split(strings.TrimSpace(string(data)), "\n") {
		parts := strings.SplitN(line, " ", 2)
		y, _ := strconv.ParseFloat(parts[0], 64)
		x, err := parsePoint(parts[1], 4)
		if err != nil {
			t.Fatal(err)
		}
		dot := 0.0
		for j := range x {
			dot += res.Weights[j] * x[j]
		}
		if (dot >= 0) == (y > 0) {
			correct++
		}
		total++
	}
	acc := float64(correct) / float64(total)
	if acc < 0.9 {
		t.Fatalf("training accuracy %.2f < 0.9 (weights %v)", acc, res.Weights)
	}
}

func TestVectorRoundTrip(t *testing.T) {
	f := func(v []float64) bool {
		out, err := decodeVec(encodeVec(v))
		if err != nil || len(out) != len(v) {
			return false
		}
		for i := range v {
			if out[i] != v[i] && !(math.IsNaN(out[i]) && math.IsNaN(v[i])) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
	if _, err := decodeVec([]byte{1, 2, 3}); err == nil {
		t.Fatal("misaligned vector accepted")
	}
}

func TestMatRoundTrip(t *testing.T) {
	m := [][]float64{{1, 2, 3}, {4, 5, 6}}
	out, err := decodeMat(encodeMat(m), 2, 3)
	if err != nil {
		t.Fatal(err)
	}
	for i := range m {
		for j := range m[i] {
			if out[i][j] != m[i][j] {
				t.Fatalf("mat[%d][%d] = %g", i, j, out[i][j])
			}
		}
	}
	if _, err := decodeMat(encodeMat(m), 3, 3); err == nil {
		t.Fatal("wrong shape accepted")
	}
}

func TestParseRanks(t *testing.T) {
	ranks, err := parseRanks("a 0.5\nb 0.25\n")
	if err != nil || ranks["a"] != 0.5 || ranks["b"] != 0.25 {
		t.Fatalf("ranks = %v err = %v", ranks, err)
	}
	if _, err := parseRanks("malformed"); err == nil {
		t.Fatal("malformed ranks accepted")
	}
	round, err := parseRanks(formatRanks(map[string]float64{"x": 1.0 / 3}))
	if err != nil || round["x"] != 1.0/3 {
		t.Fatalf("format/parse round trip = %v, %v", round, err)
	}
}
