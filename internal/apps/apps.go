// Package apps implements the MapReduce applications the paper evaluates
// (§III): word count, grep, inverted index, sort, and the iterative
// k-means, page rank and logistic regression, plus the per-iteration
// drivers the iterative applications need. Applications register
// themselves under the names used throughout the benchmarks.
package apps

import (
	"fmt"
	"math"
	"sort"
	"strconv"
	"strings"

	"eclipsemr/internal/mapreduce"
)

// Application names as registered with the mapreduce package.
const (
	WordCount     = "wordcount"
	Grep          = "grep"
	InvertedIndex = "invertedindex"
	Sort          = "sort"
	KMeans        = "kmeans"
	PageRank      = "pagerank"
	LogReg        = "logreg"
)

// Runner abstracts the job-submission surface (cluster.Cluster satisfies
// it) so iterative drivers do not depend on the cluster package.
type Runner interface {
	Run(spec mapreduce.JobSpec) (mapreduce.Result, error)
	Collect(res mapreduce.Result, user string) ([]mapreduce.KV, error)
}

func init() {
	mapreduce.Register(WordCount, mapreduce.App{
		Map:     wordCountMap,
		Reduce:  sumReduce,
		Combine: sumReduce,
	})
	mapreduce.Register(Grep, mapreduce.App{
		Map:     grepMap,
		Reduce:  sumReduce,
		Combine: sumReduce,
	})
	mapreduce.Register(InvertedIndex, mapreduce.App{
		Map:    invertedIndexMap,
		Reduce: invertedIndexReduce,
	})
	mapreduce.Register(Sort, mapreduce.App{
		Map:    sortMap,
		Reduce: sortReduce,
	})
	mapreduce.Register(KMeans, mapreduce.App{
		Map:     kmeansMap,
		Reduce:  kmeansReduce,
		Combine: kmeansReduce,
	})
	mapreduce.Register(PageRank, mapreduce.App{
		Map:    pageRankMap,
		Reduce: pageRankReduce,
	})
	mapreduce.Register(LogReg, mapreduce.App{
		Map:     logRegMap,
		Reduce:  logRegReduce,
		Combine: logRegReduce,
	})
}

// wordCountMap emits (word, 1) for every whitespace-separated token.
func wordCountMap(_ mapreduce.Params, input []byte, emit mapreduce.Emit) error {
	for _, w := range strings.Fields(string(input)) {
		if err := emit(w, one); err != nil {
			return err
		}
	}
	return nil
}

var one = []byte("1")

// sumReduce adds integer-encoded values, the shared reducer/combiner of
// word count and grep.
func sumReduce(_ mapreduce.Params, key string, values [][]byte, emit mapreduce.Emit) error {
	total := int64(0)
	for _, v := range values {
		n, err := strconv.ParseInt(string(v), 10, 64)
		if err != nil {
			return fmt.Errorf("apps: bad count %q for key %q: %w", v, key, err)
		}
		total += n
	}
	return emit(key, []byte(strconv.FormatInt(total, 10)))
}

// grepMap emits matching lines; the pattern comes from the "pattern"
// parameter.
func grepMap(params mapreduce.Params, input []byte, emit mapreduce.Emit) error {
	pattern := params.Get("pattern")
	if pattern == "" {
		return fmt.Errorf("apps: grep requires a %q parameter", "pattern")
	}
	for _, line := range strings.Split(string(input), "\n") {
		if strings.Contains(line, pattern) {
			if err := emit(line, one); err != nil {
				return err
			}
		}
	}
	return nil
}

// invertedIndexMap parses "docID\ttext" lines and emits (word, docID).
func invertedIndexMap(_ mapreduce.Params, input []byte, emit mapreduce.Emit) error {
	for _, line := range strings.Split(string(input), "\n") {
		if line == "" {
			continue
		}
		parts := strings.SplitN(line, "\t", 2)
		if len(parts) != 2 {
			return fmt.Errorf("apps: inverted index: malformed document line %.40q", line)
		}
		doc := parts[0]
		for _, w := range strings.Fields(parts[1]) {
			if err := emit(w, []byte(doc)); err != nil {
				return err
			}
		}
	}
	return nil
}

// invertedIndexReduce emits the sorted, deduplicated posting list.
func invertedIndexReduce(_ mapreduce.Params, key string, values [][]byte, emit mapreduce.Emit) error {
	seen := make(map[string]bool, len(values))
	docs := make([]string, 0, len(values))
	for _, v := range values {
		d := string(v)
		if !seen[d] {
			seen[d] = true
			docs = append(docs, d)
		}
	}
	sort.Strings(docs)
	return emit(key, []byte(strings.Join(docs, ",")))
}

// sortMap emits each record as a key (TeraSort-style identity map); the
// shuffle and reducer-side grouping do the sorting work, which is what
// the paper's sort benchmark stresses.
func sortMap(_ mapreduce.Params, input []byte, emit mapreduce.Emit) error {
	for _, line := range strings.Split(string(input), "\n") {
		if line == "" {
			continue
		}
		if err := emit(line, one); err != nil {
			return err
		}
	}
	return nil
}

// sortReduce emits each distinct record with its multiplicity; within a
// partition the output is key-sorted.
func sortReduce(_ mapreduce.Params, key string, values [][]byte, emit mapreduce.Emit) error {
	return emit(key, []byte(strconv.Itoa(len(values))))
}

// splitLines iterates non-empty lines.
func splitLines(input []byte, fn func(line string) error) error {
	for _, line := range strings.Split(string(input), "\n") {
		if line == "" {
			continue
		}
		if err := fn(line); err != nil {
			return err
		}
	}
	return nil
}

// parsePoint parses a comma-separated float vector.
func parsePoint(line string, dim int) ([]float64, error) {
	parts := strings.Split(line, ",")
	if len(parts) != dim {
		return nil, fmt.Errorf("apps: point %.40q has %d dims, want %d", line, len(parts), dim)
	}
	p := make([]float64, dim)
	for j, s := range parts {
		v, err := strconv.ParseFloat(strings.TrimSpace(s), 64)
		if err != nil {
			return nil, fmt.Errorf("apps: bad coordinate %q: %w", s, err)
		}
		p[j] = v
	}
	return p, nil
}

func sqDist(a, b []float64) float64 {
	d := 0.0
	for j := range a {
		d += (a[j] - b[j]) * (a[j] - b[j])
	}
	return d
}

func sigmoid(x float64) float64 { return 1 / (1 + math.Exp(-x)) }
