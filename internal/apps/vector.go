package apps

import (
	"encoding/binary"
	"fmt"
	"math"
)

// Float vectors cross the engine as fixed-width little-endian IEEE-754
// streams — compact, allocation-light and byte-order explicit.

// encodeVec serializes a float64 vector.
func encodeVec(v []float64) []byte {
	out := make([]byte, 8*len(v))
	for i, x := range v {
		binary.LittleEndian.PutUint64(out[8*i:], math.Float64bits(x))
	}
	return out
}

// decodeVec parses a float64 vector.
func decodeVec(data []byte) ([]float64, error) {
	if len(data)%8 != 0 {
		return nil, fmt.Errorf("apps: vector payload of %d bytes is not a multiple of 8", len(data))
	}
	out := make([]float64, len(data)/8)
	for i := range out {
		out[i] = math.Float64frombits(binary.LittleEndian.Uint64(data[8*i:]))
	}
	return out, nil
}

// addVec accumulates b into a (equal lengths assumed by callers).
func addVec(a, b []float64) {
	for i := range a {
		a[i] += b[i]
	}
}

// encodeMat serializes k vectors of dimension d as one stream.
func encodeMat(m [][]float64) []byte {
	var out []byte
	for _, row := range m {
		out = append(out, encodeVec(row)...)
	}
	return out
}

// decodeMat parses k rows of dimension d.
func decodeMat(data []byte, k, d int) ([][]float64, error) {
	flat, err := decodeVec(data)
	if err != nil {
		return nil, err
	}
	if len(flat) != k*d {
		return nil, fmt.Errorf("apps: matrix payload has %d values, want %d×%d", len(flat), k, d)
	}
	out := make([][]float64, k)
	for i := range out {
		out[i] = flat[i*d : (i+1)*d]
	}
	return out, nil
}
