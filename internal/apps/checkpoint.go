package apps

import (
	"bytes"
	"encoding/gob"
	"fmt"

	"eclipsemr/internal/dhtfs"
)

// Iterative checkpointing (§II-B/C): EclipseMR persists iteration outputs
// in the DHT file system "so that long running jobs can survive faults
// and restart from the point of failure". The resumable drivers store a
// small checkpoint file after every iteration — the iteration counter and
// the driver state (centroids / ranks / weights) — and a restarted run
// with the same run ID fast-forwards past completed iterations.

// CheckpointStore is the file surface checkpoints need; cluster.Cluster
// satisfies it.
type CheckpointStore interface {
	Upload(name, owner string, perm dhtfs.Perm, data []byte) (dhtfs.Metadata, error)
	ReadFile(name, user string) ([]byte, error)
	DeleteFile(name, user string) error
}

// checkpoint is the persisted driver state.
type checkpoint struct {
	Iteration int
	State     []byte
}

func checkpointFile(app, runID string) string {
	return "_ckpt/" + app + "/" + runID
}

// saveCheckpoint persists the state reached after `iteration` iterations.
func saveCheckpoint(cs CheckpointStore, app, runID, user string, iteration int, state []byte) error {
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(checkpoint{Iteration: iteration, State: state}); err != nil {
		return fmt.Errorf("apps: encode checkpoint: %w", err)
	}
	if _, err := cs.Upload(checkpointFile(app, runID), user, dhtfs.PermPrivate, buf.Bytes()); err != nil {
		return fmt.Errorf("apps: store checkpoint: %w", err)
	}
	return nil
}

// loadCheckpoint fetches a prior run's state; ok=false means no
// checkpoint exists.
func loadCheckpoint(cs CheckpointStore, app, runID, user string) (checkpoint, bool, error) {
	data, err := cs.ReadFile(checkpointFile(app, runID), user)
	if err != nil {
		if dhtfs.IsNotFound(err) {
			return checkpoint{}, false, nil
		}
		return checkpoint{}, false, err
	}
	var ck checkpoint
	if err := gob.NewDecoder(bytes.NewReader(data)).Decode(&ck); err != nil {
		return checkpoint{}, false, fmt.Errorf("apps: corrupt checkpoint %s/%s: %w", app, runID, err)
	}
	return ck, true, nil
}

// DropCheckpoint removes a run's checkpoint so a future call with the
// same run ID starts from scratch. Checkpoints are deliberately kept
// after a run completes: the caller decides when a run ID's history is
// no longer needed.
func DropCheckpoint(cs CheckpointStore, app, runID, user string) {
	_ = cs.DeleteFile(checkpointFile(app, runID), user) // best effort
}

// RunKMeansResumable is RunKMeans with crash recovery: driver state is
// checkpointed to the DHT file system after every iteration under runID,
// and a restarted call with the same runID resumes where the previous
// attempt stopped. The returned result covers only the iterations this
// call executed.
func RunKMeansResumable(r Runner, cs CheckpointStore, input, user, runID string,
	initial [][]float64, iters int, cacheOutputs bool) (KMeansResult, error) {
	if len(initial) == 0 {
		return KMeansResult{}, fmt.Errorf("apps: kmeans needs initial centroids")
	}
	k, dim := len(initial), len(initial[0])
	start := 0
	centroids := initial
	if ck, ok, err := loadCheckpoint(cs, KMeans, runID, user); err != nil {
		return KMeansResult{}, err
	} else if ok && ck.Iteration > 0 {
		restored, err := decodeMat(ck.State, k, dim)
		if err != nil {
			return KMeansResult{}, err
		}
		start = ck.Iteration
		if start > iters {
			start = iters // already past the requested depth: nothing to run
		}
		centroids = restored
	}
	var out KMeansResult
	out.Centroids = centroids
	for it := start; it < iters; it++ {
		step, err := RunKMeans(r, input, user, out.Centroids, 1, cacheOutputs)
		if err != nil {
			return out, err
		}
		// Re-key the single-iteration job under the resumable run's index
		// is unnecessary: job IDs embed the input and centroid state flows
		// through the checkpoint.
		out.Centroids = step.Centroids
		out.Shifts = append(out.Shifts, step.Shifts...)
		out.IterationTimes = append(out.IterationTimes, step.IterationTimes...)
		out.Results = append(out.Results, step.Results...)
		if err := saveCheckpoint(cs, KMeans, runID, user, it+1, encodeMat(out.Centroids)); err != nil {
			return out, err
		}
	}
	return out, nil
}

// RunLogRegResumable is RunLogReg with crash recovery via checkpoints
// under runID.
func RunLogRegResumable(r Runner, cs CheckpointStore, input, user, runID string,
	dim, iters int, lr float64, cacheOutputs bool) (LogRegResult, error) {
	start := 0
	weights := make([]float64, dim)
	if ck, ok, err := loadCheckpoint(cs, LogReg, runID, user); err != nil {
		return LogRegResult{}, err
	} else if ok && ck.Iteration > 0 {
		restored, err := decodeVec(ck.State)
		if err != nil {
			return LogRegResult{}, err
		}
		if len(restored) != dim {
			return LogRegResult{}, fmt.Errorf("apps: checkpoint has %d weights, want %d", len(restored), dim)
		}
		start = ck.Iteration
		if start > iters {
			start = iters
		}
		weights = restored
	}
	out := LogRegResult{Weights: weights}
	for it := start; it < iters; it++ {
		step, err := runLogRegFrom(r, input, user, out.Weights, it, lr, cacheOutputs)
		if err != nil {
			return out, err
		}
		out.Weights = step.Weights
		out.IterationTimes = append(out.IterationTimes, step.IterationTimes...)
		out.Results = append(out.Results, step.Results...)
		if err := saveCheckpoint(cs, LogReg, runID, user, it+1, encodeVec(out.Weights)); err != nil {
			return out, err
		}
	}
	return out, nil
}
