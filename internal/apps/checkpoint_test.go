package apps

import (
	"math"
	"testing"

	"eclipsemr/internal/workloads"
)

func TestKMeansResumableMatchesStraightRun(t *testing.T) {
	c := newCluster(t, 3)
	data, _ := workloads.Points(21, 400, 2, 3)
	uploadLines(t, c, "ck.csv", data)
	initial := [][]float64{{0, 0}, {3, 3}, {-3, -3}}

	// Reference: five straight iterations.
	ref, err := RunKMeans(c, "ck.csv", "u", initial, 5, false)
	if err != nil {
		t.Fatal(err)
	}

	// Resumable run interrupted after two iterations, then continued.
	first, err := RunKMeansResumable(c, c, "ck.csv", "u", "run-1", initial, 2, false)
	if err != nil {
		t.Fatal(err)
	}
	if len(first.Shifts) != 2 {
		t.Fatalf("first leg iterations = %d", len(first.Shifts))
	}
	second, err := RunKMeansResumable(c, c, "ck.csv", "u", "run-1", initial, 5, false)
	if err != nil {
		t.Fatal(err)
	}
	// The second leg only executes the remaining three iterations.
	if len(second.Shifts) != 3 {
		t.Fatalf("second leg iterations = %d", len(second.Shifts))
	}
	// Floating-point reduction order varies across runs (spills arrive in
	// scheduling order), so compare converged cluster structure rather
	// than exact values: every reference centroid must have a resumed
	// centroid nearby.
	for i := range ref.Centroids {
		best := math.Inf(1)
		for j := range second.Centroids {
			if d := sqDist(ref.Centroids[i], second.Centroids[j]); d < best {
				best = d
			}
		}
		if best > 0.5 {
			t.Fatalf("no resumed centroid near reference %v (d²=%g): %v",
				ref.Centroids[i], best, second.Centroids)
		}
	}
	// The checkpoint persists past completion: a call for fewer iterations
	// than already done just returns the restored state.
	noop, err := RunKMeansResumable(c, c, "ck.csv", "u", "run-1", initial, 1, false)
	if err != nil {
		t.Fatal(err)
	}
	if len(noop.Shifts) != 0 {
		t.Fatalf("satisfied run executed %d iterations", len(noop.Shifts))
	}
	// Dropping the checkpoint makes the run ID fresh again.
	DropCheckpoint(c, KMeans, "run-1", "u")
	again, err := RunKMeansResumable(c, c, "ck.csv", "u", "run-1", initial, 1, false)
	if err != nil {
		t.Fatal(err)
	}
	if len(again.Shifts) != 1 {
		t.Fatalf("post-drop run executed %d iterations", len(again.Shifts))
	}
}

func TestLogRegResumableMatchesStraightRun(t *testing.T) {
	c := newCluster(t, 3)
	data, _ := workloads.LabeledPoints(22, 300, 3)
	uploadLines(t, c, "cklr.csv", data)

	ref, err := RunLogReg(c, "cklr.csv", "u", 3, 4, 0.5, false)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := RunLogRegResumable(c, c, "cklr.csv", "u", "lr-1", 3, 2, 0.5, false); err != nil {
		t.Fatal(err)
	}
	resumed, err := RunLogRegResumable(c, c, "cklr.csv", "u", "lr-1", 3, 4, 0.5, false)
	if err != nil {
		t.Fatal(err)
	}
	if len(resumed.IterationTimes) != 2 {
		t.Fatalf("resumed leg executed %d iterations", len(resumed.IterationTimes))
	}
	for j := range ref.Weights {
		if math.Abs(ref.Weights[j]-resumed.Weights[j]) > 1e-6 {
			t.Fatalf("weights diverged: %v vs %v", ref.Weights, resumed.Weights)
		}
	}
}

func TestResumableValidation(t *testing.T) {
	c := newCluster(t, 2)
	if _, err := RunKMeansResumable(c, c, "x", "u", "id", nil, 3, false); err == nil {
		t.Fatal("empty centroids accepted")
	}
	// A checkpoint past the requested iteration count is ignored (the run
	// starts fresh rather than failing).
	data, _ := workloads.Points(23, 100, 2, 2)
	uploadLines(t, c, "ckv.csv", data)
	initial := [][]float64{{1, 1}, {-1, -1}}
	if _, err := RunKMeansResumable(c, c, "ckv.csv", "u", "deep", initial, 4, false); err != nil {
		t.Fatal(err)
	}
}
