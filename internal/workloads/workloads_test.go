package workloads

import (
	"bytes"
	"math"
	"sort"
	"strconv"
	"strings"
	"testing"
)

func TestTextDeterministicAndSized(t *testing.T) {
	a := Text(1, 4096, 1000)
	b := Text(1, 4096, 1000)
	if !bytes.Equal(a, b) {
		t.Fatal("Text not deterministic")
	}
	if len(a) < 4096 || len(a) > 4096+128 {
		t.Fatalf("len = %d", len(a))
	}
	if c := Text(2, 4096, 1000); bytes.Equal(a, c) {
		t.Fatal("different seeds produced identical text")
	}
	// Line-oriented: no line longer than ~80 chars.
	for _, line := range strings.Split(string(a), "\n") {
		if len(line) > 90 {
			t.Fatalf("line too long: %d", len(line))
		}
	}
}

func TestTextIsZipfSkewed(t *testing.T) {
	data := Text(3, 1<<16, 5000)
	counts := map[string]int{}
	for _, w := range strings.Fields(string(data)) {
		counts[w]++
	}
	freqs := make([]int, 0, len(counts))
	for _, c := range counts {
		freqs = append(freqs, c)
	}
	sort.Sort(sort.Reverse(sort.IntSlice(freqs)))
	total := 0
	for _, f := range freqs {
		total += f
	}
	top := 0
	for i := 0; i < len(freqs) && i < 10; i++ {
		top += freqs[i]
	}
	// In Zipf text the 10 hottest words dominate.
	if float64(top)/float64(total) < 0.3 {
		t.Fatalf("top-10 words cover only %.1f%%", 100*float64(top)/float64(total))
	}
}

func TestDocumentsFormat(t *testing.T) {
	data := Documents(1, 5, 256, 100)
	lines := strings.Split(strings.TrimSpace(string(data)), "\n")
	if len(lines) != 5 {
		t.Fatalf("docs = %d", len(lines))
	}
	for _, line := range lines {
		parts := strings.SplitN(line, "\t", 2)
		if len(parts) != 2 || !strings.HasPrefix(parts[0], "doc-") {
			t.Fatalf("malformed doc line %q", line[:40])
		}
	}
}

func TestRecordsFixedWidth(t *testing.T) {
	data := Records(1, 100, 10)
	lines := strings.Split(strings.TrimSpace(string(data)), "\n")
	if len(lines) != 100 {
		t.Fatalf("records = %d", len(lines))
	}
	for _, l := range lines {
		if len(l) != 10 {
			t.Fatalf("record %q has len %d", l, len(l))
		}
	}
	if bytes.Equal(Records(1, 100, 10), Records(2, 100, 10)) {
		t.Fatal("seeds ignored")
	}
}

func TestGraphWellFormed(t *testing.T) {
	data := Graph(1, 200, 4)
	lines := strings.Split(strings.TrimSpace(string(data)), "\n")
	if len(lines) != 200 {
		t.Fatalf("nodes = %d", len(lines))
	}
	indeg := map[int]int{}
	for i, line := range lines {
		fields := strings.Fields(line)
		src, err := strconv.Atoi(fields[0])
		if err != nil || src != i {
			t.Fatalf("line %d starts with %q", i, fields[0])
		}
		for _, f := range fields[1:] {
			dst, err := strconv.Atoi(f)
			if err != nil || dst < 0 || dst >= 200 || dst == src {
				t.Fatalf("bad edge %s -> %s", fields[0], f)
			}
			indeg[dst]++
		}
	}
	// Power-law in-degree: the hottest node should dominate the median.
	max, sum := 0, 0
	for _, d := range indeg {
		sum += d
		if d > max {
			max = d
		}
	}
	if max < 5*sum/len(lines) {
		t.Fatalf("in-degree not skewed: max=%d avg=%d", max, sum/len(lines))
	}
}

func TestPointsParseableAndClustered(t *testing.T) {
	data, centers := Points(1, 300, 3, 3)
	if len(centers) != 3 || len(centers[0]) != 3 {
		t.Fatalf("centers = %v", centers)
	}
	lines := strings.Split(strings.TrimSpace(string(data)), "\n")
	if len(lines) != 300 {
		t.Fatalf("points = %d", len(lines))
	}
	for _, line := range lines {
		coords := strings.Split(line, ",")
		if len(coords) != 3 {
			t.Fatalf("point %q has %d dims", line, len(coords))
		}
		var p [3]float64
		for j, c := range coords {
			v, err := strconv.ParseFloat(c, 64)
			if err != nil {
				t.Fatalf("bad coord %q", c)
			}
			p[j] = v
		}
		// Every point lies near one of the true centers.
		best := math.Inf(1)
		for _, c := range centers {
			d := 0.0
			for j := range c {
				d += (p[j] - c[j]) * (p[j] - c[j])
			}
			if d < best {
				best = d
			}
		}
		if best > 25 { // 0.5 stddev noise: 5 sigma ≈ 2.5, squared 6.25 per dim
			t.Fatalf("point %q far from every center (d²=%g)", line, best)
		}
	}
}

func TestLabeledPointsConsistent(t *testing.T) {
	data, w := LabeledPoints(1, 500, 4)
	lines := strings.Split(strings.TrimSpace(string(data)), "\n")
	if len(lines) != 500 {
		t.Fatalf("points = %d", len(lines))
	}
	agree := 0
	for _, line := range lines {
		parts := strings.SplitN(line, " ", 2)
		label, err := strconv.Atoi(parts[0])
		if err != nil || (label != 1 && label != -1) {
			t.Fatalf("bad label %q", parts[0])
		}
		dot := 0.0
		for j, c := range strings.Split(parts[1], ",") {
			v, err := strconv.ParseFloat(c, 64)
			if err != nil {
				t.Fatalf("bad coord %q", c)
			}
			dot += v * w[j]
		}
		if (dot >= 0) == (label == 1) {
			agree++
		}
	}
	// Labels must largely agree with the generating separator.
	if float64(agree)/500 < 0.9 {
		t.Fatalf("only %d/500 labels agree with true weights", agree)
	}
}

func TestTwoNormalKeysBimodal(t *testing.T) {
	keys := TwoNormalKeys(1, 10000, 0.25, 0.75, 0.02, 0.6)
	if len(keys) != 10000 {
		t.Fatalf("keys = %d", len(keys))
	}
	near := func(pos float64) int {
		n := 0
		lo, hi := KeyAt(pos-0.1), KeyAt(pos+0.1)
		for _, k := range keys {
			if k >= lo && k < hi {
				n++
			}
		}
		return n
	}
	n1, n2 := near(0.25), near(0.75)
	if n1 < 5000 || n2 < 3000 {
		t.Fatalf("modes hold %d and %d of 10000", n1, n2)
	}
	frac1 := float64(n1) / float64(n1+n2)
	if math.Abs(frac1-0.6) > 0.05 {
		t.Fatalf("mode weight = %.2f want 0.6", frac1)
	}
}

func TestUniformKeysSpread(t *testing.T) {
	keys := UniformKeys(1, 10000)
	buckets := make([]int, 8)
	for _, k := range keys {
		buckets[int(uint64(k)>>61)]++
	}
	for i, b := range buckets {
		if b < 1000 || b > 1500 {
			t.Fatalf("bucket %d = %d", i, b)
		}
	}
}

func TestKeyAtWraps(t *testing.T) {
	if KeyAt(0) != 0 {
		t.Fatal("KeyAt(0) != 0")
	}
	if KeyAt(1.25) != KeyAt(0.25) {
		t.Fatal("KeyAt does not wrap above 1")
	}
	if KeyAt(-0.25) != KeyAt(0.75) {
		t.Fatal("KeyAt does not wrap below 0")
	}
}
