// Package workloads generates the synthetic datasets the paper's
// evaluation uses: HiBench-style Zipf-distributed text for word count /
// grep / inverted index / sort, power-law web graphs for page rank,
// Gaussian-mixture point sets for k-means and labeled points for logistic
// regression, and the merged-two-normal hash-key access traces behind the
// Figure 7 skew experiments. All generators are seeded and deterministic.
package workloads

import (
	"fmt"
	"math"
	"math/rand"
	"strconv"
	"strings"

	"eclipsemr/internal/hashing"
)

// Text produces roughly targetBytes of line-oriented text whose word
// frequencies follow a Zipf distribution over a synthetic vocabulary, the
// shape HiBench's text generators produce for word count and grep.
func Text(seed int64, targetBytes, vocabulary int) []byte {
	if vocabulary < 1 {
		vocabulary = 1
	}
	rng := rand.New(rand.NewSource(seed))
	zipf := rand.NewZipf(rng, 1.2, 1, uint64(vocabulary-1))
	var b strings.Builder
	b.Grow(targetBytes + 64)
	col := 0
	for b.Len() < targetBytes {
		w := word(zipf.Uint64())
		b.WriteString(w)
		col += len(w) + 1
		if col >= 70 {
			b.WriteByte('\n')
			col = 0
		} else {
			b.WriteByte(' ')
		}
	}
	b.WriteByte('\n')
	return []byte(b.String())
}

// word renders vocabulary index i as a pronounceable token.
func word(i uint64) string {
	const syllables = "ba be bi bo bu da de di do du ka ke ki ko ku la le li lo lu ma me mi mo mu na ne ni no nu ra re ri ro ru sa se si so su ta te ti to tu"
	parts := strings.Fields(syllables)
	if i == 0 {
		return parts[0]
	}
	var b strings.Builder
	for i > 0 {
		b.WriteString(parts[i%uint64(len(parts))])
		i /= uint64(len(parts))
	}
	return b.String()
}

// Documents produces docCount documents of ~docBytes Zipf text each,
// formatted one per line as "doc-<id>\t<text>" for the inverted index
// application.
func Documents(seed int64, docCount, docBytes, vocabulary int) []byte {
	var b strings.Builder
	for d := 0; d < docCount; d++ {
		text := Text(seed+int64(d), docBytes, vocabulary)
		flat := strings.ReplaceAll(strings.TrimSpace(string(text)), "\n", " ")
		fmt.Fprintf(&b, "doc-%04d\t%s\n", d, flat)
	}
	return []byte(b.String())
}

// Records produces n fixed-width random records (one per line) for the
// sort application, in the spirit of the HiBench/TeraGen input.
func Records(seed int64, n, keyLen int) []byte {
	rng := rand.New(rand.NewSource(seed))
	const alphabet = "ABCDEFGHIJKLMNOPQRSTUVWXYZ0123456789"
	var b strings.Builder
	b.Grow(n * (keyLen + 1))
	key := make([]byte, keyLen)
	for i := 0; i < n; i++ {
		for j := range key {
			key[j] = alphabet[rng.Intn(len(alphabet))]
		}
		b.Write(key)
		b.WriteByte('\n')
	}
	return []byte(b.String())
}

// Graph produces a power-law directed graph with n nodes, one adjacency
// line per node: "nodeID dst1 dst2 ...". Out-degrees average avgDeg;
// destination popularity follows a Zipf distribution, giving the hub
// structure of web graphs used by page rank.
func Graph(seed int64, n, avgDeg int) []byte {
	rng := rand.New(rand.NewSource(seed))
	if n < 2 {
		n = 2
	}
	zipf := rand.NewZipf(rng, 1.3, 2, uint64(n-1))
	var b strings.Builder
	for src := 0; src < n; src++ {
		deg := 1 + rng.Intn(2*avgDeg)
		b.WriteString(strconv.Itoa(src))
		seen := map[int]bool{}
		for d := 0; d < deg; d++ {
			dst := int(zipf.Uint64())
			if dst == src || seen[dst] {
				continue
			}
			seen[dst] = true
			b.WriteByte(' ')
			b.WriteString(strconv.Itoa(dst))
		}
		b.WriteByte('\n')
	}
	return []byte(b.String())
}

// Points produces n d-dimensional points drawn from k Gaussian clusters,
// one comma-separated point per line — the k-means dataset. The true
// cluster centers are returned for verification.
func Points(seed int64, n, d, k int) (data []byte, centers [][]float64) {
	rng := rand.New(rand.NewSource(seed))
	centers = make([][]float64, k)
	for c := range centers {
		centers[c] = make([]float64, d)
		for j := range centers[c] {
			centers[c][j] = rng.Float64()*20 - 10
		}
	}
	var b strings.Builder
	for i := 0; i < n; i++ {
		c := centers[i%k]
		for j := 0; j < d; j++ {
			if j > 0 {
				b.WriteByte(',')
			}
			v := c[j] + rng.NormFloat64()*0.5
			b.WriteString(strconv.FormatFloat(v, 'f', 4, 64))
		}
		b.WriteByte('\n')
	}
	return []byte(b.String()), centers
}

// LabeledPoints produces n d-dimensional points with ±1 labels generated
// by a random linear separator plus noise, one "label x1,x2,..." line
// each — the logistic regression dataset. The true weights are returned.
func LabeledPoints(seed int64, n, d int) (data []byte, weights []float64) {
	rng := rand.New(rand.NewSource(seed))
	weights = make([]float64, d)
	for j := range weights {
		weights[j] = rng.NormFloat64()
	}
	var b strings.Builder
	for i := 0; i < n; i++ {
		x := make([]float64, d)
		dot := 0.0
		for j := range x {
			x[j] = rng.NormFloat64()
			dot += x[j] * weights[j]
		}
		label := "1"
		if dot+rng.NormFloat64()*0.1 < 0 {
			label = "-1"
		}
		b.WriteString(label)
		b.WriteByte(' ')
		for j, v := range x {
			if j > 0 {
				b.WriteByte(',')
			}
			b.WriteString(strconv.FormatFloat(v, 'f', 4, 64))
		}
		b.WriteByte('\n')
	}
	return []byte(b.String()), weights
}

// TwoNormalKeys draws n hash keys from the merged two-normal distribution
// of §III-C's synthetic grep workload: a fraction w1 of accesses cluster
// around position c1 of the key space (expressed in [0,1)) and the rest
// around c2, each with standard deviation sd.
func TwoNormalKeys(seed int64, n int, c1, c2, sd, w1 float64) []hashing.Key {
	rng := rand.New(rand.NewSource(seed))
	out := make([]hashing.Key, n)
	for i := range out {
		center := c2
		if rng.Float64() < w1 {
			center = c1
		}
		pos := math.Mod(center+rng.NormFloat64()*sd+1, 1)
		out[i] = KeyAt(pos)
	}
	return out
}

// UniformKeys draws n uniformly distributed hash keys.
func UniformKeys(seed int64, n int) []hashing.Key {
	rng := rand.New(rand.NewSource(seed))
	out := make([]hashing.Key, n)
	for i := range out {
		out[i] = hashing.Key(rng.Uint64())
	}
	return out
}

// KeyAt maps a position in [0,1) onto the ring key space.
func KeyAt(pos float64) hashing.Key {
	pos = math.Mod(pos+1, 1)
	return hashing.Key(pos * float64(math.MaxUint64))
}
