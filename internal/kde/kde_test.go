package kde

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"eclipsemr/internal/hashing"
)

func mustNew(t *testing.T, cfg Config) *Estimator {
	t.Helper()
	e, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return e
}

func TestNewValidation(t *testing.T) {
	bad := []Config{
		{Bins: 0, Bandwidth: 1, Alpha: 0.5, Window: 10},
		{Bins: 10, Bandwidth: 0, Alpha: 0.5, Window: 10},
		{Bins: 10, Bandwidth: 11, Alpha: 0.5, Window: 10},
		{Bins: 10, Bandwidth: 1, Alpha: -0.1, Window: 10},
		{Bins: 10, Bandwidth: 1, Alpha: 1.1, Window: 10},
		{Bins: 10, Bandwidth: 1, Alpha: 0.5, Window: 0},
	}
	for i, cfg := range bad {
		if _, err := New(cfg); err == nil {
			t.Errorf("config %d accepted: %+v", i, cfg)
		}
	}
	if _, err := New(DefaultConfig()); err != nil {
		t.Fatalf("DefaultConfig rejected: %v", err)
	}
}

func TestBinOfCoversSpace(t *testing.T) {
	e := mustNew(t, Config{Bins: 64, Bandwidth: 1, Alpha: 1, Window: 1})
	if b := e.BinOf(0); b != 0 {
		t.Fatalf("BinOf(0) = %d", b)
	}
	if b := e.BinOf(hashing.MaxKey); b != 63 {
		t.Fatalf("BinOf(MaxKey) = %d", b)
	}
	f := func(k hashing.Key) bool {
		b := e.BinOf(k)
		return b >= 0 && b < 64
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestBinStartIsFirstKeyOfBin(t *testing.T) {
	e := mustNew(t, Config{Bins: 100, Bandwidth: 1, Alpha: 1, Window: 1})
	for b := 0; b < 100; b++ {
		s := e.binStart(b)
		if e.BinOf(s) != b {
			t.Fatalf("BinOf(binStart(%d)) = %d", b, e.BinOf(s))
		}
		if s > 0 && e.BinOf(s-1) != b-1 {
			t.Fatalf("binStart(%d)-1 in bin %d, want %d", b, e.BinOf(s-1), b-1)
		}
	}
}

func TestUnprimedCDFUniform(t *testing.T) {
	e := mustNew(t, Config{Bins: 10, Bandwidth: 1, Alpha: 0.5, Window: 100})
	cdf := e.CDF()
	for b, v := range cdf {
		want := float64(b+1) / 10
		if math.Abs(v-want) > 1e-12 {
			t.Fatalf("uniform CDF[%d] = %g want %g", b, v, want)
		}
	}
	bounds, err := e.Partition(5)
	if err != nil {
		t.Fatal(err)
	}
	// Uniform distribution must partition into equal-width ranges.
	for i := 1; i < len(bounds); i++ {
		width := uint64(bounds[i] - bounds[i-1])
		wantWidth := uint64(1) << 63 / 5 * 2
		if relDiff(float64(width), float64(wantWidth)) > 0.01 {
			t.Fatalf("uniform partition width %d, want ~%d", width, wantWidth)
		}
	}
}

func relDiff(a, b float64) float64 {
	if b == 0 {
		return math.Abs(a)
	}
	return math.Abs(a-b) / math.Abs(b)
}

func TestAddSignalsWindowCompletion(t *testing.T) {
	e := mustNew(t, Config{Bins: 16, Bandwidth: 1, Alpha: 1, Window: 3})
	if e.Add(1) || e.Add(2) {
		t.Fatal("window signalled early")
	}
	if !e.Add(3) {
		t.Fatal("window completion not signalled")
	}
	if e.Merges() != 1 || !e.Primed() {
		t.Fatalf("Merges=%d Primed=%v", e.Merges(), e.Primed())
	}
}

func TestBoxKernelSpreadsMass(t *testing.T) {
	e := mustNew(t, Config{Bins: 16, Bandwidth: 4, Alpha: 1, Window: 1})
	e.Add(0) // bin 0; kernel spreads to bins -1..2 wrapping to 15,0,1,2
	pdf := e.PDF()
	var total float64
	nonzero := 0
	for _, v := range pdf {
		total += v
		if v > 0 {
			nonzero++
		}
	}
	if math.Abs(total-1) > 1e-12 {
		t.Fatalf("kernel mass = %g want 1", total)
	}
	if nonzero != 4 {
		t.Fatalf("kernel touched %d bins want 4", nonzero)
	}
	if pdf[15] == 0 {
		t.Fatal("kernel did not wrap around the ring")
	}
}

func TestMovingAverageAttenuatesHistory(t *testing.T) {
	e := mustNew(t, Config{Bins: 4, Bandwidth: 1, Alpha: 0.5, Window: 4})
	// Window 1: all mass in bin 0.
	for i := 0; i < 4; i++ {
		e.Add(0)
	}
	// Window 2: all mass in bin 2 (keys in the third quarter of the space).
	k2 := hashing.Key(uint64(1) << 63) // exactly half way -> bin 2 of 4
	for i := 0; i < 4; i++ {
		e.Add(k2)
	}
	pdf := e.PDF()
	// ma = 0.5*new + 0.5*old: bin0 = 2, bin2 = 2.
	if math.Abs(pdf[0]-2) > 1e-9 || math.Abs(pdf[2]-2) > 1e-9 {
		t.Fatalf("pdf = %v, want bins 0 and 2 each 2.0", pdf)
	}
	// Window 3: mass in bin 2 again; bin0 decays to 1, bin2 rises to 3.
	for i := 0; i < 4; i++ {
		e.Add(k2)
	}
	pdf = e.PDF()
	if math.Abs(pdf[0]-1) > 1e-9 || math.Abs(pdf[2]-3) > 1e-9 {
		t.Fatalf("after decay pdf = %v", pdf)
	}
}

func TestAlphaOneForgetsHistory(t *testing.T) {
	e := mustNew(t, Config{Bins: 4, Bandwidth: 1, Alpha: 1, Window: 2})
	e.Add(0)
	e.Add(0)
	k2 := hashing.Key(uint64(1) << 63)
	e.Add(k2)
	e.Add(k2)
	pdf := e.PDF()
	if pdf[0] != 0 {
		t.Fatalf("alpha=1 retained history: pdf=%v", pdf)
	}
	if pdf[2] != 2 {
		t.Fatalf("alpha=1 lost current window: pdf=%v", pdf)
	}
}

// TestPartitionSkewNarrowsHotRanges reproduces the paper's core claim: when
// accesses concentrate around two hot keys, the servers covering those keys
// get narrower hash ranges (Figure 3).
func TestPartitionSkewNarrowsHotRanges(t *testing.T) {
	e := mustNew(t, Config{Bins: 1024, Bandwidth: 8, Alpha: 1, Window: 10000})
	rng := rand.New(rand.NewSource(1))
	// Two normal distributions centred at 0.25 and 0.75 of the key space,
	// like the synthetic grep workload in §III-C.
	for i := 0; i < 10000; i++ {
		var center float64
		if rng.Intn(2) == 0 {
			center = 0.25
		} else {
			center = 0.75
		}
		pos := center + rng.NormFloat64()*0.02
		pos = math.Mod(pos+1, 1)
		e.Add(hashing.Key(pos * keySpace))
	}
	bounds, err := e.Partition(8)
	if err != nil {
		t.Fatal(err)
	}
	widths := make([]float64, 8)
	for i := range bounds {
		next := bounds[(i+1)%8]
		widths[i] = float64(uint64(next - bounds[i]))
	}
	// Ranges containing the hot keys (0.25 and 0.75 of the space) must be
	// far narrower than the widest (cold) range.
	hot1 := hashing.Key(0.25 * keySpace)
	hot2 := hashing.Key(0.75 * keySpace)
	var maxW, hotW1, hotW2 float64
	for i := range bounds {
		next := bounds[(i+1)%8]
		if widths[i] > maxW {
			maxW = widths[i]
		}
		if hashing.InRange(hot1, bounds[i], next) {
			hotW1 = widths[i]
		}
		if hashing.InRange(hot2, bounds[i], next) {
			hotW2 = widths[i]
		}
	}
	if hotW1 == 0 || hotW2 == 0 {
		t.Fatal("hot keys not covered by any range")
	}
	if hotW1 > maxW/4 || hotW2 > maxW/4 {
		t.Fatalf("hot ranges not narrowed: hot1=%.3g hot2=%.3g max=%.3g", hotW1, hotW2, maxW)
	}
}

// TestPartitionEquallyProbable checks the defining property of
// partitionCDF: each range receives ~1/n of the access probability mass.
func TestPartitionEquallyProbable(t *testing.T) {
	e := mustNew(t, Config{Bins: 2048, Bandwidth: 4, Alpha: 1, Window: 20000})
	rng := rand.New(rand.NewSource(2))
	samples := make([]hashing.Key, 20000)
	for i := range samples {
		// Skewed: squared uniform concentrates mass near 0.
		u := rng.Float64()
		samples[i] = hashing.Key(u * u * keySpace)
		e.Add(samples[i])
	}
	n := 5
	bounds, err := e.Partition(n)
	if err != nil {
		t.Fatal(err)
	}
	tab, err := hashing.NewRangeTable(
		[]hashing.NodeID{"a", "b", "c", "d", "e"}, bounds)
	if err != nil {
		t.Fatal(err)
	}
	counts := map[hashing.NodeID]int{}
	// Fresh draws from the same distribution.
	for i := 0; i < 20000; i++ {
		u := rng.Float64()
		counts[tab.Lookup(hashing.Key(u*u*keySpace))]++
	}
	for id, c := range counts {
		frac := float64(c) / 20000
		if math.Abs(frac-0.2) > 0.05 {
			t.Errorf("server %s got %.1f%% of accesses, want ~20%%", id, frac*100)
		}
	}
}

func TestPartitionValidation(t *testing.T) {
	e := mustNew(t, DefaultConfig())
	if _, err := e.Partition(0); err == nil {
		t.Fatal("Partition(0) accepted")
	}
	if _, err := e.Partition(-1); err == nil {
		t.Fatal("Partition(-1) accepted")
	}
}

// Property: Partition always returns sorted bounds starting at 0, no
// matter what keys were observed.
func TestPartitionAlwaysSorted(t *testing.T) {
	f := func(keys []hashing.Key, nRanges uint8) bool {
		n := int(nRanges%16) + 1
		e, err := New(Config{Bins: 128, Bandwidth: 4, Alpha: 0.3, Window: 8})
		if err != nil {
			return false
		}
		for _, k := range keys {
			e.Add(k)
		}
		bounds, err := e.Partition(n)
		if err != nil || len(bounds) != n || bounds[0] != 0 {
			return false
		}
		for i := 1; i < len(bounds); i++ {
			if bounds[i] < bounds[i-1] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

// TestHotSpotCollapsesRanges reproduces the extreme single-hot-key case
// from §II-E: when one key receives all accesses, most servers' ranges
// collapse to (nearly) nothing so all servers share the hot data.
func TestHotSpotCollapsesRanges(t *testing.T) {
	e := mustNew(t, Config{Bins: 1024, Bandwidth: 1, Alpha: 1, Window: 1000})
	hot := hashing.Key(0.3 * keySpace)
	for i := 0; i < 1000; i++ {
		e.Add(hot)
	}
	bounds, err := e.Partition(4)
	if err != nil {
		t.Fatal(err)
	}
	// All interior boundaries should land inside the hot key's bin: the
	// middle ranges are (nearly) zero width.
	binW := keySpace / 1024
	for i := 2; i < 4; i++ {
		gap := float64(uint64(bounds[i] - bounds[i-1]))
		if gap > binW {
			t.Fatalf("range %d width %.3g exceeds one bin (%.3g): bounds=%v", i-1, gap, binW, bounds)
		}
	}
}
