// Package kde implements the statistical machinery behind the
// locality-aware fair (LAF) job scheduler: a box-kernel density estimate
// of the hash-key access distribution, an exponential moving average that
// attenuates historic access patterns, and CDF partitioning into
// equally-probable hash-key ranges (Algorithm 1 of the paper).
package kde

import (
	"fmt"
	"math/bits"

	"eclipsemr/internal/hashing"
)

// Estimator tracks the hash-key distribution of recent input-block
// accesses. The key space is divided into Bins fine-grained histogram
// bins; each observed access adds 1/k to k adjacent bins (box kernel
// density estimation, bandwidth k). Every Window observations the current
// histogram is folded into a moving average with weight Alpha:
//
//	ma[b] = Alpha*cur[b] + (1-Alpha)*ma[b]
//
// Estimator is not safe for concurrent use; the scheduler serializes
// access under its own lock.
type Estimator struct {
	bins      int
	bandwidth int
	alpha     float64
	window    int

	cur    []float64 // histogram of the current window
	ma     []float64 // moving-averaged distribution
	count  int       // observations in the current window
	primed bool      // ma has absorbed at least one window
	merges int       // number of completed windows
}

// Config holds Estimator parameters. The zero value is invalid; use
// DefaultConfig as a starting point.
type Config struct {
	Bins      int     // number of histogram bins over the key space
	Bandwidth int     // box-kernel bandwidth k (adjacent bins per access)
	Alpha     float64 // moving-average weight for the newest window
	Window    int     // observations (N) per distribution merge
}

// DefaultConfig mirrors the parameters the paper settles on: a large
// number of fine-grained bins, a modest smoothing bandwidth, alpha=0.001
// (the value fixed for most experiments in §III-C) and a window of 1024
// recent tasks.
func DefaultConfig() Config {
	return Config{Bins: 4096, Bandwidth: 8, Alpha: 0.001, Window: 1024}
}

// New builds an Estimator, validating the configuration.
func New(cfg Config) (*Estimator, error) {
	if cfg.Bins <= 0 {
		return nil, fmt.Errorf("kde: Bins must be positive, got %d", cfg.Bins)
	}
	if cfg.Bandwidth <= 0 || cfg.Bandwidth > cfg.Bins {
		return nil, fmt.Errorf("kde: Bandwidth must be in [1,%d], got %d", cfg.Bins, cfg.Bandwidth)
	}
	if cfg.Alpha < 0 || cfg.Alpha > 1 {
		return nil, fmt.Errorf("kde: Alpha must be in [0,1], got %g", cfg.Alpha)
	}
	if cfg.Window <= 0 {
		return nil, fmt.Errorf("kde: Window must be positive, got %d", cfg.Window)
	}
	return &Estimator{
		bins:      cfg.Bins,
		bandwidth: cfg.Bandwidth,
		alpha:     cfg.Alpha,
		window:    cfg.Window,
		cur:       make([]float64, cfg.Bins),
		ma:        make([]float64, cfg.Bins),
	}, nil
}

// BinOf maps a hash key to its histogram bin: floor(k * bins / 2^64),
// computed without overflow.
func (e *Estimator) BinOf(k hashing.Key) int {
	hi, _ := bits.Mul64(uint64(k), uint64(e.bins))
	return int(hi)
}

// binStart returns the first key of bin b.
func (e *Estimator) binStart(b int) hashing.Key {
	// ceil(b * 2^64 / bins): find smallest key whose bin is b.
	// b*2^64/bins = (b<<64)/bins; compute via bits.Div64.
	if b == 0 {
		return 0
	}
	q, r := bits.Div64(uint64(b), 0, uint64(e.bins))
	if r != 0 {
		q++
	}
	return hashing.Key(q)
}

// binWidth returns the key-space width of bin b as a float (bins may not
// divide 2^64 evenly; the sub-key rounding is irrelevant at 4096 bins).
func (e *Estimator) binWidth() float64 {
	return keySpace / float64(e.bins)
}

const keySpace = float64(1<<63) * 2 // 2^64 as a float64

// Add records one input-block access at hash key k. It returns true when
// the observation completed a window and the moving average was updated —
// the scheduler re-partitions its hash-key ranges on that signal.
func (e *Estimator) Add(k hashing.Key) bool {
	// Box kernel: spread 1 unit of mass across `bandwidth` adjacent bins
	// centred on the key's bin, wrapping around the ring.
	center := e.BinOf(k)
	w := 1.0 / float64(e.bandwidth)
	start := center - (e.bandwidth-1)/2
	for i := 0; i < e.bandwidth; i++ {
		b := (start + i) % e.bins
		if b < 0 {
			b += e.bins
		}
		e.cur[b] += w
	}
	e.count++
	if e.count < e.window {
		return false
	}
	e.merge()
	return true
}

// merge folds the current window into the moving average and resets the
// window, per lines 11–23 of Algorithm 1. The very first window seeds the
// moving average directly so a small alpha does not take thousands of
// windows to escape the empty initial state.
func (e *Estimator) merge() {
	if !e.primed {
		copy(e.ma, e.cur)
		e.primed = true
	} else {
		for b := range e.ma {
			e.ma[b] = e.alpha*e.cur[b] + (1-e.alpha)*e.ma[b]
		}
	}
	for b := range e.cur {
		e.cur[b] = 0
	}
	e.count = 0
	e.merges++
}

// Merges returns how many windows have been folded into the moving
// average.
func (e *Estimator) Merges() int { return e.merges }

// Primed reports whether at least one window has completed; before that
// the distribution is uniform.
func (e *Estimator) Primed() bool { return e.primed }

// PDF returns a copy of the moving-averaged (unnormalized) distribution.
func (e *Estimator) PDF() []float64 {
	return append([]float64(nil), e.ma...)
}

// CDF returns the cumulative distribution over the bins, normalized to
// 1.0. An unprimed (or all-zero) estimator yields the uniform CDF.
func (e *Estimator) CDF() []float64 {
	cdf := make([]float64, e.bins)
	var total float64
	for _, v := range e.ma {
		total += v
	}
	if !e.primed || total == 0 {
		for b := range cdf {
			cdf[b] = float64(b+1) / float64(e.bins)
		}
		return cdf
	}
	var acc float64
	for b, v := range e.ma {
		acc += v
		cdf[b] = acc / total
	}
	return cdf
}

// Partition cuts the key space into n equally-probable ranges and returns
// the n range-start boundaries, beginning at key 0. This is
// partitionCDF() from Algorithm 1: boundary i is the key at which the CDF
// reaches i/n, interpolated linearly within a bin. The returned slice is
// sorted and suitable for hashing.NewRangeTable.
func (e *Estimator) Partition(n int) ([]hashing.Key, error) {
	if n <= 0 {
		return nil, fmt.Errorf("kde: cannot partition into %d ranges", n)
	}
	cdf := e.CDF()
	bounds := make([]hashing.Key, n)
	bounds[0] = 0
	bin := 0
	width := e.binWidth()
	for i := 1; i < n; i++ {
		target := float64(i) / float64(n)
		for bin < e.bins-1 && cdf[bin] < target {
			bin++
		}
		// Interpolate inside the bin. prev is the CDF at the bin's start.
		var prev float64
		if bin > 0 {
			prev = cdf[bin-1]
		}
		mass := cdf[bin] - prev
		frac := 1.0
		if mass > 0 {
			frac = (target - prev) / mass
		}
		if frac < 0 {
			frac = 0
		} else if frac > 1 {
			frac = 1
		}
		key := float64(uint64(e.binStart(bin))) + frac*width
		if key >= keySpace {
			key = keySpace - 1
		}
		bounds[i] = hashing.Key(key)
		//lint:ignore ringcmp partition bounds are monotone cut points on the linear [0,2^64) axis, not ring arcs
		if bounds[i] < bounds[i-1] {
			bounds[i] = bounds[i-1] // clamp: bounds must stay sorted
		}
	}
	return bounds, nil
}
