package kde

import (
	"math/rand"
	"testing"

	"eclipsemr/internal/hashing"
)

// fuzzBins is a power of two so a histogram bin spans exactly 2^56 keys
// and the test's float reconstruction of bin positions is exact.
const fuzzBins = 256

// interpCDF evaluates the estimator's piecewise-linear CDF at key k, the
// same interpolation Partition inverts.
func interpCDF(cdf []float64, k hashing.Key) float64 {
	pos := float64(uint64(k)) / keySpace * float64(len(cdf))
	b := int(pos)
	if b >= len(cdf) {
		b = len(cdf) - 1
	}
	frac := pos - float64(b)
	var prev float64
	if b > 0 {
		prev = cdf[b-1]
	}
	return prev + frac*(cdf[b]-prev)
}

// FuzzPartitionCDF drives Algorithm 1's partitionCDF with arbitrary access
// patterns and partition counts: the returned bounds must start at key 0,
// be sorted, have exactly n entries (full key-space coverage), and cut the
// estimated distribution into equally probable ranges.
func FuzzPartitionCDF(f *testing.F) {
	f.Add(int64(1), uint16(0), uint8(4))      // unprimed: uniform CDF
	f.Add(int64(42), uint16(2000), uint8(5))  // primed, skewed
	f.Add(int64(7), uint16(300), uint8(1))    // single partition
	f.Add(int64(99), uint16(4096), uint8(64)) // many partitions
	f.Fuzz(func(t *testing.T, seed int64, observations uint16, parts uint8) {
		n := int(parts)%64 + 1
		e, err := New(Config{Bins: fuzzBins, Bandwidth: 4, Alpha: 0.5, Window: 128})
		if err != nil {
			t.Fatal(err)
		}
		rng := rand.New(rand.NewSource(seed))
		// Mix a uniform stream with a hot range so schedules see skew.
		hot := hashing.Key(rng.Uint64())
		for i := 0; i < int(observations); i++ {
			k := hashing.Key(rng.Uint64())
			if i%3 == 0 {
				k = hot + hashing.Key(rng.Uint64()%(1<<40))
			}
			e.Add(k)
		}

		bounds, err := e.Partition(n)
		if err != nil {
			t.Fatal(err)
		}
		if len(bounds) != n {
			t.Fatalf("len(bounds) = %d, want %d", len(bounds), n)
		}
		if bounds[0] != 0 {
			t.Fatalf("bounds[0] = %d, want 0 (full key-space coverage)", bounds[0])
		}
		for i := 1; i < n; i++ {
			if bounds[i] < bounds[i-1] {
				t.Fatalf("bounds not monotone at %d: %d < %d", i, bounds[i], bounds[i-1])
			}
		}

		// Equal probability: the CDF at boundary i must be i/n. The only
		// slack needed is for the integer truncation of the boundary key
		// (≤ 1 key, invisible at 2^56 keys per bin) and float rounding —
		// except where consecutive targets fall in a zero-mass region and
		// the clamp snaps a boundary to its predecessor.
		cdf := e.CDF()
		const tol = 1e-6
		for i := 1; i < n; i++ {
			if bounds[i] == bounds[i-1] {
				continue // clamped in a zero-mass stretch
			}
			got := interpCDF(cdf, bounds[i])
			want := float64(i) / float64(n)
			if diff := got - want; diff > tol || diff < -tol {
				t.Fatalf("CDF(bounds[%d]) = %g, want %g (n=%d, obs=%d)",
					i, got, want, n, observations)
			}
		}
	})
}
