// Package bundle defines the debug-bundle format: one JSON artifact
// capturing everything needed to explain a job after the fact — the
// merged structured-event timeline, per-node metrics snapshots, trace
// spans, durable journal state, and the ring/membership view. Bundles
// are produced by the flight recorder (automatically on job failure or
// recovery), by `eclipse-cli debug bundle` on demand, and by the
// simulator's capture hook; cmd/bundlecheck validates them in CI so a
// malformed capture fails the build, not the person debugging at 3am.
package bundle

import (
	"encoding/json"
	"fmt"
	"sort"

	"eclipsemr/internal/events"
	"eclipsemr/internal/trace"
)

// Version is the current bundle schema version.
const Version = 1

// NodeMetrics is one node's flat metrics snapshot (counters and gauges;
// histogram internals stay in /metrics).
type NodeMetrics struct {
	Node   string           `json:"node"`
	Values map[string]int64 `json:"values"`
}

// JournalState summarizes one job's durable journal at capture time.
type JournalState struct {
	Job        string `json:"job"`
	Phase      string `json:"phase"` // map | reduce | done
	Generation int    `json:"generation"`
	MapsDone   int    `json:"maps_done"`
	PartsDone  int    `json:"parts_done"`
	Attempts   int    `json:"attempts"`
}

// Membership is the capturing node's view of the ring.
type Membership struct {
	Manager string   `json:"manager"`
	Epoch   uint64   `json:"epoch"`
	Members []string `json:"members"`
}

// Bundle is the top-level artifact. Every section is always present
// (possibly empty) so readers and the validator need no feature
// detection.
type Bundle struct {
	Version   int    `json:"version"`
	Reason    string `json:"reason"` // what triggered the capture
	Node      string `json:"node"`   // capturing node
	Job       string `json:"job"`    // "" for a cluster-wide capture
	CreatedNS int64  `json:"created_ns"`

	Events        []events.Event `json:"events"`
	EventsDropped int64          `json:"events_dropped"`
	Metrics       []NodeMetrics  `json:"metrics"`
	Spans         []trace.Span   `json:"spans"`
	SpansDropped  int64          `json:"spans_dropped"`
	Journal       []JournalState `json:"journal"`
	Membership    Membership     `json:"membership"`
}

// Encode canonicalizes and serializes a bundle: events merged into their
// deterministic order, spans deduped, metrics and journal entries sorted,
// members sorted. Encoding the same capture twice yields identical bytes.
func Encode(b *Bundle) ([]byte, error) {
	if b.Version == 0 {
		b.Version = Version
	}
	b.Events = events.Merge(b.Events)
	b.Spans = trace.Dedupe(b.Spans)
	sort.Slice(b.Metrics, func(i, j int) bool { return b.Metrics[i].Node < b.Metrics[j].Node })
	sort.Slice(b.Journal, func(i, j int) bool { return b.Journal[i].Job < b.Journal[j].Job })
	sort.Strings(b.Membership.Members)
	// Non-nil empty sections, so the JSON always carries every key.
	if b.Events == nil {
		b.Events = []events.Event{}
	}
	if b.Metrics == nil {
		b.Metrics = []NodeMetrics{}
	}
	if b.Spans == nil {
		b.Spans = []trace.Span{}
	}
	if b.Journal == nil {
		b.Journal = []JournalState{}
	}
	if b.Membership.Members == nil {
		b.Membership.Members = []string{}
	}
	return json.MarshalIndent(b, "", " ")
}

// Decode parses a bundle without validating it.
func Decode(data []byte) (*Bundle, error) {
	var b Bundle
	if err := json.Unmarshal(data, &b); err != nil {
		return nil, fmt.Errorf("bundle: not valid JSON: %w", err)
	}
	return &b, nil
}

// journalPhases are the phases Validate accepts.
var journalPhases = map[string]bool{"map": true, "reduce": true, "done": true}

// Validate checks a serialized bundle against the schema as
// cmd/bundlecheck (and the deterministic e2e) understand it: every
// section present, a known version, a stated reason, at least one event
// in canonical merged order, at least one per-node metrics snapshot, a
// coherent membership view, and well-formed journal entries.
func Validate(data []byte) error {
	// Section presence is checked on the raw object: a struct decode
	// would silently default a missing section.
	var raw map[string]json.RawMessage
	if err := json.Unmarshal(data, &raw); err != nil {
		return fmt.Errorf("bundle: not valid JSON: %w", err)
	}
	for _, section := range []string{
		"version", "reason", "node", "created_ns",
		"events", "metrics", "spans", "journal", "membership",
	} {
		if _, ok := raw[section]; !ok {
			return fmt.Errorf("bundle: missing section %q", section)
		}
	}
	b, err := Decode(data)
	if err != nil {
		return err
	}
	if b.Version != Version {
		return fmt.Errorf("bundle: version %d, want %d", b.Version, Version)
	}
	if b.Reason == "" {
		return fmt.Errorf("bundle: empty reason")
	}
	if b.CreatedNS < 0 {
		return fmt.Errorf("bundle: negative created_ns")
	}
	if len(b.Events) == 0 {
		return fmt.Errorf("bundle: no events (a flight recorder that recorded nothing)")
	}
	for i, e := range b.Events {
		if !e.Kind.Valid() {
			return fmt.Errorf("bundle: event %d: unknown kind %d", i, e.Kind)
		}
		if e.Name == "" {
			return fmt.Errorf("bundle: event %d: empty name", i)
		}
		if e.Node == "" {
			return fmt.Errorf("bundle: event %d (%s): empty node", i, e.Name)
		}
	}
	if merged := events.Merge(b.Events); len(merged) != len(b.Events) {
		return fmt.Errorf("bundle: events contain duplicates (%d after merge, %d in file)",
			len(merged), len(b.Events))
	} else {
		for i := range merged {
			if merged[i] != b.Events[i] {
				return fmt.Errorf("bundle: events not in canonical merge order (first divergence at %d)", i)
			}
		}
	}
	if len(b.Metrics) == 0 {
		return fmt.Errorf("bundle: no metrics snapshots")
	}
	for i, m := range b.Metrics {
		if m.Node == "" {
			return fmt.Errorf("bundle: metrics entry %d: empty node", i)
		}
	}
	for i, s := range b.Spans {
		if s.Name == "" {
			return fmt.Errorf("bundle: span %d: empty name", i)
		}
		if s.DurNS < 0 {
			return fmt.Errorf("bundle: span %d (%s): negative duration", i, s.Name)
		}
	}
	for i, j := range b.Journal {
		if j.Job == "" {
			return fmt.Errorf("bundle: journal entry %d: empty job", i)
		}
		if !journalPhases[j.Phase] {
			return fmt.Errorf("bundle: journal entry %d (%s): unknown phase %q", i, j.Job, j.Phase)
		}
	}
	if len(b.Membership.Members) == 0 {
		return fmt.Errorf("bundle: empty membership view")
	}
	if b.Membership.Manager != "" {
		found := false
		for _, m := range b.Membership.Members {
			if m == b.Membership.Manager {
				found = true
				break
			}
		}
		if !found {
			return fmt.Errorf("bundle: manager %s not in membership view", b.Membership.Manager)
		}
	}
	return nil
}
