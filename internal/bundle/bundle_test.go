package bundle

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"
	"time"

	"eclipsemr/internal/events"
	"eclipsemr/internal/metrics"
)

func testEvents(t *testing.T) []events.Event {
	t.Helper()
	now := int64(0)
	l := events.New("node-a", events.Options{
		Clock:    metrics.ClockFunc(func() time.Time { now += 10; return time.Unix(0, now) }),
		Capacity: 32,
	})
	l.Emit(events.KindJob, "job.submit", events.F{Job: "wc"})
	l.Emit(events.KindMembership, "member.evict", events.F{Detail: "node-b"})
	l.Emit(events.KindJob, "job.recovery", events.F{Job: "wc"})
	return l.Events("", 0)
}

func validBundle(t *testing.T) *Bundle {
	t.Helper()
	return &Bundle{
		Reason:    "test",
		Node:      "node-a",
		Job:       "wc",
		CreatedNS: 42,
		Events:    testEvents(t),
		Metrics:   []NodeMetrics{{Node: "node-a", Values: map[string]int64{"events.dropped": 0}}},
		Journal:   []JournalState{{Job: "wc", Phase: "reduce", MapsDone: 3}},
		Membership: Membership{
			Manager: "node-c", Epoch: 7, Members: []string{"node-a", "node-c"},
		},
	}
}

func TestEncodeValidateRoundTrip(t *testing.T) {
	data, err := Encode(validBundle(t))
	if err != nil {
		t.Fatal(err)
	}
	if err := Validate(data); err != nil {
		t.Fatalf("valid bundle rejected: %v", err)
	}
	b, err := Decode(data)
	if err != nil {
		t.Fatal(err)
	}
	if b.Version != Version || b.Reason != "test" || len(b.Events) != 3 ||
		b.Membership.Manager != "node-c" || b.Journal[0].Phase != "reduce" {
		t.Fatalf("round trip lost fields: %+v", b)
	}
	// Encoding is deterministic.
	again, err := Encode(validBundle(t))
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(data, again) {
		t.Fatal("Encode not deterministic")
	}
}

func TestEncodeAlwaysCarriesSections(t *testing.T) {
	data, err := Encode(&Bundle{
		Reason:     "minimal",
		Node:       "n",
		Events:     testEvents(t),
		Metrics:    []NodeMetrics{{Node: "n"}},
		Membership: Membership{Members: []string{"n"}},
	})
	if err != nil {
		t.Fatal(err)
	}
	var raw map[string]json.RawMessage
	if err := json.Unmarshal(data, &raw); err != nil {
		t.Fatal(err)
	}
	for _, section := range []string{"events", "metrics", "spans", "journal", "membership"} {
		if _, ok := raw[section]; !ok {
			t.Errorf("section %q missing from minimal bundle", section)
		}
	}
	if err := Validate(data); err != nil {
		t.Fatalf("minimal bundle rejected: %v", err)
	}
}

func TestValidateRejects(t *testing.T) {
	cases := []struct {
		name   string
		mutate func(b *Bundle)
		errSub string
	}{
		{"no reason", func(b *Bundle) { b.Reason = "" }, "empty reason"},
		{"no events", func(b *Bundle) { b.Events = nil }, "no events"},
		{"bad kind", func(b *Bundle) { b.Events[0].Kind = 200 }, "unknown kind"},
		{"empty event name", func(b *Bundle) { b.Events[0].Name = "" }, "empty name"},
		{"no metrics", func(b *Bundle) { b.Metrics = nil }, "no metrics"},
		{"anon metrics", func(b *Bundle) { b.Metrics[0].Node = "" }, "empty node"},
		{"bad phase", func(b *Bundle) { b.Journal[0].Phase = "shuffling" }, "unknown phase"},
		{"no members", func(b *Bundle) { b.Membership.Members = nil }, "empty membership"},
		{"foreign manager", func(b *Bundle) { b.Membership.Manager = "ghost" }, "not in membership"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			b := validBundle(t)
			tc.mutate(b)
			data, err := Encode(b)
			if err != nil {
				t.Fatal(err)
			}
			err = Validate(data)
			if err == nil || !strings.Contains(err.Error(), tc.errSub) {
				t.Fatalf("Validate = %v, want error containing %q", err, tc.errSub)
			}
		})
	}
	if err := Validate([]byte("not json")); err == nil {
		t.Fatal("garbage accepted")
	}
	// A hand-built JSON object missing a section must be rejected even
	// though the struct decode would default it.
	if err := Validate([]byte(`{"version":1,"reason":"r","node":"n","created_ns":0}`)); err == nil ||
		!strings.Contains(err.Error(), "missing section") {
		t.Fatalf("missing sections accepted: %v", err)
	}
	// Wrong version.
	b := validBundle(t)
	b.Version = 99
	data, err := Encode(b)
	if err != nil {
		t.Fatal(err)
	}
	if err := Validate(data); err == nil || !strings.Contains(err.Error(), "version") {
		t.Fatalf("wrong version accepted: %v", err)
	}
}

func TestValidateCanonicalOrder(t *testing.T) {
	b := validBundle(t)
	data, err := Encode(b)
	if err != nil {
		t.Fatal(err)
	}
	// Swap two events post-encode: the file is no longer in canonical
	// merge order and must be rejected.
	var dec Bundle
	if err := json.Unmarshal(data, &dec); err != nil {
		t.Fatal(err)
	}
	dec.Events[0], dec.Events[1] = dec.Events[1], dec.Events[0]
	bad, err := json.Marshal(&dec)
	if err != nil {
		t.Fatal(err)
	}
	if err := Validate(bad); err == nil || !strings.Contains(err.Error(), "canonical merge order") {
		t.Fatalf("out-of-order events accepted: %v", err)
	}
	// Duplicate an event: replica-tolerant collection dedupes before
	// encoding, so duplicates in a file mean a broken writer.
	if err := json.Unmarshal(data, &dec); err != nil {
		t.Fatal(err)
	}
	dec.Events = append(dec.Events, dec.Events[0])
	bad, err = json.Marshal(&dec)
	if err != nil {
		t.Fatal(err)
	}
	if err := Validate(bad); err == nil || !strings.Contains(err.Error(), "duplicates") {
		t.Fatalf("duplicate events accepted: %v", err)
	}
}
