package nodecmd

import (
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"
	"time"

	_ "eclipsemr/internal/apps"
	"eclipsemr/internal/cluster"
	"eclipsemr/internal/hashing"
	"eclipsemr/internal/mapreduce"
	"eclipsemr/internal/scheduler"
	"eclipsemr/internal/transport"
)

func TestReadHosts(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "hosts.txt")
	content := "# cluster\nworker-00 127.0.0.1:7001\n\nworker-01 127.0.0.1:7002\n"
	if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
		t.Fatal(err)
	}
	hosts, err := ReadHosts(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(hosts) != 2 || hosts["worker-00"] != "127.0.0.1:7001" {
		t.Fatalf("hosts = %v", hosts)
	}
	if err := os.WriteFile(path, []byte("malformed line here\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := ReadHosts(path); err == nil {
		t.Fatal("malformed hosts accepted")
	}
	if err := os.WriteFile(path, nil, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := ReadHosts(path); err == nil {
		t.Fatal("empty hosts accepted")
	}
	if _, err := ReadHosts(filepath.Join(dir, "missing")); err == nil {
		t.Fatal("missing file accepted")
	}
}

// TestTCPDeploymentEndToEnd boots a 3-node cluster over real loopback TCP
// exactly as cmd/eclipse-node does, then drives the eclipse-cli protocol:
// upload, job submission to the elected manager, collection, and read.
func TestTCPDeploymentEndToEnd(t *testing.T) {
	ids := []hashing.NodeID{"worker-00", "worker-01", "worker-02"}
	hosts := map[hashing.NodeID]string{}
	for _, id := range ids {
		hosts[id] = "127.0.0.1:0"
	}
	net := transport.NewTCP(hosts, 30*time.Second)
	defer net.Close()

	cfg := cluster.Config{
		Replicas:    2,
		MapSlots:    4,
		ReduceSlots: 4,
		CacheBytes:  8 << 20,
		BlockSize:   512,
	}
	var nodes []*cluster.Node
	for _, id := range ids {
		node, err := cluster.NewNode(id, net, cfg)
		if err != nil {
			t.Fatal(err)
		}
		var (
			mu     sync.Mutex
			driver *mapreduce.Driver
		)
		n := node
		ensureDriver := func() (*mapreduce.Driver, error) {
			mu.Lock()
			defer mu.Unlock()
			if !n.IsManager() {
				return nil, fmt.Errorf("not the manager")
			}
			if driver != nil {
				return driver, nil
			}
			sched, err := scheduler.NewLAF(scheduler.DefaultLAFConfig(), n.Ring())
			if err != nil {
				return nil, err
			}
			for _, peer := range n.Ring().Members() {
				sched.AddNode(peer, cfg.MapSlots)
			}
			driver, err = mapreduce.NewDriver(n.ID, net, n.FS(), sched, n.Ring, cfg.ReduceSlots)
			return driver, err
		}
		node.SetExtraHandler(ClientHandler(node, ensureDriver))
		if err := node.Start(); err != nil {
			t.Fatal(err)
		}
		nodes = append(nodes, node)
	}
	defer func() {
		for _, n := range nodes {
			n.Close()
		}
	}()

	// Bootstrap the manager on the last node, as -bootstrap does.
	ring, err := WaitForPeers(net, hosts, ids[2], 30*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	nodes[2].BecomeManagerWith(ring, 1)

	// Client flow, over the same TCP network.
	text := strings.Repeat("ping pong ping net\n", 300)
	var upResp UploadResp
	err = Call(net, ids[0], MethodUpload, UploadReq{
		Name: "t.txt", Owner: "cli", Public: true, Data: []byte(text), Records: true,
	}, &upResp)
	if err != nil {
		t.Fatal(err)
	}
	if upResp.Size != int64(len(text)) || upResp.Blocks < 2 {
		t.Fatalf("upload resp = %+v", upResp)
	}

	mgr, err := FindManager(net, hosts)
	if err != nil {
		t.Fatal(err)
	}
	if mgr != ids[2] {
		t.Fatalf("manager = %s", mgr)
	}

	var runResp RunResp
	err = Call(net, mgr, MethodRun, RunReq{Spec: mapreduce.JobSpec{
		ID: "tcp-wc", App: "wordcount", Inputs: []string{"t.txt"}, User: "cli",
	}}, &runResp)
	if err != nil {
		t.Fatal(err)
	}
	if runResp.Result.MapTasks == 0 {
		t.Fatalf("result = %+v", runResp.Result)
	}

	var collected CollectResp
	err = Call(net, mgr, MethodCollect, CollectReq{Result: runResp.Result, User: "cli"}, &collected)
	if err != nil {
		t.Fatal(err)
	}
	counts := map[string]string{}
	for _, kv := range collected.Pairs {
		counts[kv.Key] = string(kv.Value)
	}
	if counts["ping"] != "600" || counts["pong"] != "300" || counts["net"] != "300" {
		t.Fatalf("counts = %v", counts)
	}

	// Submitting to a non-manager is refused.
	err = Call(net, ids[0], MethodRun, RunReq{Spec: mapreduce.JobSpec{
		ID: "nope", App: "wordcount", Inputs: []string{"t.txt"}, User: "cli",
	}}, &runResp)
	if err == nil || !strings.Contains(err.Error(), "not the manager") {
		t.Fatalf("non-manager run err = %v", err)
	}

	// Listing shows the uploaded file (and hides framework internals).
	var listResp ListResp
	if err := Call(net, ids[0], MethodList, ListReq{User: "cli"}, &listResp); err != nil {
		t.Fatal(err)
	}
	foundFile := false
	for _, n := range listResp.Names {
		if n == "t.txt" {
			foundFile = true
		}
		if strings.HasPrefix(n, "_mr/") {
			t.Fatalf("internal file %q listed by default", n)
		}
	}
	// Metadata is placed by hash key: this node may or may not hold it,
	// so aggregate across all nodes before asserting.
	if !foundFile {
		for _, id := range ids[1:] {
			if err := Call(net, id, MethodList, ListReq{User: "cli"}, &listResp); err != nil {
				t.Fatal(err)
			}
			for _, n := range listResp.Names {
				if n == "t.txt" {
					foundFile = true
				}
			}
		}
	}
	if !foundFile {
		t.Fatal("uploaded file not in any node's listing")
	}

	// Read the file back through the client path.
	var readResp ReadResp
	if err := Call(net, ids[1], MethodRead, ReadReq{Name: "t.txt", User: "cli"}, &readResp); err != nil {
		t.Fatal(err)
	}
	if string(readResp.Data) != text {
		t.Fatal("cat round-trip corrupted")
	}
}

func TestFindManagerNoManager(t *testing.T) {
	net := transport.NewLocal()
	defer net.Close()
	hosts := map[hashing.NodeID]string{"a": "x"}
	if _, err := FindManager(net, hosts); err == nil {
		t.Fatal("FindManager succeeded with no nodes")
	}
}
