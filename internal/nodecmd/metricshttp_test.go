package nodecmd

import (
	"encoding/json"
	"io"
	"net/http"
	"strings"
	"testing"
	"time"

	"eclipsemr/internal/cluster"
	"eclipsemr/internal/metrics"
)

func TestServeMetrics(t *testing.T) {
	reg := metrics.NewRegistry()
	reg.Counter("mr.map.tasks").Add(3)
	reg.Histogram("fs.read_block_ns").Observe(int64(2 * time.Millisecond))

	ready := false
	health := func() cluster.Health {
		return cluster.Health{
			Node: "worker-00", Ready: ready, Manager: "worker-02",
			Epoch: 7, Members: 3, EventsDropped: 11, SpansDropped: 2,
		}
	}
	addr, shutdown, err := ServeMetrics("127.0.0.1:0", reg.Snapshot, health)
	if err != nil {
		t.Fatal(err)
	}
	defer shutdown()

	get := func(path string) (int, string) {
		resp, err := http.Get("http://" + addr + path)
		if err != nil {
			t.Fatalf("GET %s: %v", path, err)
		}
		defer resp.Body.Close()
		body, _ := io.ReadAll(resp.Body)
		return resp.StatusCode, string(body)
	}

	code, body := get("/metrics")
	if code != http.StatusOK {
		t.Fatalf("/metrics status = %d", code)
	}
	for _, want := range []string{
		"mr_map_tasks 3",
		"# TYPE fs_read_block_ns histogram",
		"fs_read_block_ns_count 1",
	} {
		if !strings.Contains(body, want) {
			t.Errorf("/metrics missing %q:\n%s", want, body)
		}
	}

	if code, _ := get("/debug/pprof/cmdline"); code != http.StatusOK {
		t.Errorf("/debug/pprof/cmdline status = %d", code)
	}

	// /healthz is liveness: it answers 200 whether or not the node has
	// joined a view, carrying the full health summary.
	code, body = get("/healthz")
	if code != http.StatusOK {
		t.Fatalf("/healthz status = %d", code)
	}
	var h cluster.Health
	if err := json.Unmarshal([]byte(body), &h); err != nil {
		t.Fatalf("/healthz body is not JSON: %v\n%s", err, body)
	}
	if h.Node != "worker-00" || h.Manager != "worker-02" || h.Epoch != 7 ||
		h.Members != 3 || h.EventsDropped != 11 || h.SpansDropped != 2 {
		t.Errorf("/healthz summary mismatch: %+v", h)
	}

	// /readyz flips with membership: 503 before the node is in a view,
	// 200 after.
	if code, _ := get("/readyz"); code != http.StatusServiceUnavailable {
		t.Errorf("/readyz status = %d before ready, want 503", code)
	}
	ready = true
	if code, _ := get("/readyz"); code != http.StatusOK {
		t.Errorf("/readyz status = %d after ready, want 200", code)
	}
}

// TestServeMetricsNilHealth pins the degraded wiring: without a health
// source the process still reports alive but never ready.
func TestServeMetricsNilHealth(t *testing.T) {
	reg := metrics.NewRegistry()
	addr, shutdown, err := ServeMetrics("127.0.0.1:0", reg.Snapshot, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer shutdown()
	for path, want := range map[string]int{
		"/healthz": http.StatusOK,
		"/readyz":  http.StatusServiceUnavailable,
	} {
		resp, err := http.Get("http://" + addr + path)
		if err != nil {
			t.Fatalf("GET %s: %v", path, err)
		}
		resp.Body.Close()
		if resp.StatusCode != want {
			t.Errorf("%s status = %d, want %d", path, resp.StatusCode, want)
		}
	}
}
