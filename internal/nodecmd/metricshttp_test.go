package nodecmd

import (
	"io"
	"net/http"
	"strings"
	"testing"
	"time"

	"eclipsemr/internal/metrics"
)

func TestServeMetrics(t *testing.T) {
	reg := metrics.NewRegistry()
	reg.Counter("mr.map.tasks").Add(3)
	reg.Histogram("fs.read_block_ns").Observe(int64(2 * time.Millisecond))

	addr, shutdown, err := ServeMetrics("127.0.0.1:0", reg.Snapshot)
	if err != nil {
		t.Fatal(err)
	}
	defer shutdown()

	get := func(path string) (int, string) {
		resp, err := http.Get("http://" + addr + path)
		if err != nil {
			t.Fatalf("GET %s: %v", path, err)
		}
		defer resp.Body.Close()
		body, _ := io.ReadAll(resp.Body)
		return resp.StatusCode, string(body)
	}

	code, body := get("/metrics")
	if code != http.StatusOK {
		t.Fatalf("/metrics status = %d", code)
	}
	for _, want := range []string{
		"mr_map_tasks 3",
		"# TYPE fs_read_block_ns histogram",
		"fs_read_block_ns_count 1",
	} {
		if !strings.Contains(body, want) {
			t.Errorf("/metrics missing %q:\n%s", want, body)
		}
	}

	if code, _ := get("/debug/pprof/cmdline"); code != http.StatusOK {
		t.Errorf("/debug/pprof/cmdline status = %d", code)
	}
}
