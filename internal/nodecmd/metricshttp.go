package nodecmd

import (
	"net"
	"net/http"
	"net/http/pprof"
	"time"

	"eclipsemr/internal/metrics"
)

// ServeMetrics starts an HTTP server on addr (e.g. ":9090") exposing the
// node's operational state for scraping and profiling:
//
//	/metrics        Prometheus text exposition of the snapshot
//	/debug/pprof/*  the standard Go profiling endpoints
//
// snapshot is called per scrape, so gauges (store sizes, hit ratios) are
// fresh. The pprof handlers are mounted on this private mux explicitly —
// the node does not touch http.DefaultServeMux, so importing this package
// never leaks profiling endpoints into other servers.
//
// It returns the bound address (useful with ":0") and a shutdown
// function. Errors binding the listener are returned immediately; serve
// errors after that are ignored (the endpoint is best-effort telemetry).
func ServeMetrics(addr string, snapshot func() metrics.Snapshot) (boundAddr string, shutdown func(), err error) {
	mux := http.NewServeMux()
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		_ = metrics.WriteProm(w, snapshot())
	})
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)

	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return "", nil, err
	}
	srv := &http.Server{Handler: mux, ReadHeaderTimeout: 5 * time.Second}
	//lint:ignore goroleak Serve returns when the returned closer calls srv.Close; the listener is the termination signal
	go func() { _ = srv.Serve(ln) }()
	return ln.Addr().String(), func() { _ = srv.Close() }, nil
}
