package nodecmd

import (
	"encoding/json"
	"net"
	"net/http"
	"net/http/pprof"
	"time"

	"eclipsemr/internal/cluster"
	"eclipsemr/internal/metrics"
)

// ServeMetrics starts an HTTP server on addr (e.g. ":9090") exposing the
// node's operational state for scraping and profiling:
//
//	/metrics        Prometheus text exposition of the snapshot
//	/healthz        liveness: 200 + the node's health summary as JSON
//	/readyz         readiness: 200 once the node is in a membership view
//	/debug/pprof/*  the standard Go profiling endpoints
//
// snapshot is called per scrape, so gauges (store sizes, hit ratios) are
// fresh; health is called per probe for the same reason. A nil health
// source serves liveness only: /healthz answers 200 (the process is up
// enough to serve HTTP) and /readyz answers 503, so a probe never
// mistakes a node without membership wiring for a ready one.
//
// The pprof handlers are mounted on this private mux explicitly — the
// node does not touch http.DefaultServeMux, so importing this package
// never leaks profiling endpoints into other servers.
//
// It returns the bound address (useful with ":0") and a shutdown
// function. Errors binding the listener are returned immediately; serve
// errors after that are ignored (the endpoint is best-effort telemetry).
func ServeMetrics(addr string, snapshot func() metrics.Snapshot, health func() cluster.Health) (boundAddr string, shutdown func(), err error) {
	mux := http.NewServeMux()
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		_ = metrics.WriteProm(w, snapshot())
	})
	mux.HandleFunc("/healthz", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/json; charset=utf-8")
		if health == nil {
			_, _ = w.Write([]byte("{}\n"))
			return
		}
		_ = json.NewEncoder(w).Encode(health())
	})
	mux.HandleFunc("/readyz", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/json; charset=utf-8")
		if health == nil {
			w.WriteHeader(http.StatusServiceUnavailable)
			_, _ = w.Write([]byte("{}\n"))
			return
		}
		h := health()
		if !h.Ready {
			w.WriteHeader(http.StatusServiceUnavailable)
		}
		_ = json.NewEncoder(w).Encode(h)
	})
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)

	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return "", nil, err
	}
	srv := &http.Server{Handler: mux, ReadHeaderTimeout: 5 * time.Second}
	//lint:ignore goroleak Serve returns when the returned closer calls srv.Close; the listener is the termination signal
	go func() { _ = srv.Serve(ln) }()
	return ln.Addr().String(), func() { _ = srv.Close() }, nil
}
