// Package nodecmd holds the deployment glue shared by cmd/eclipse-node
// and cmd/eclipse-cli: hosts-file parsing, cluster bootstrap waiting, the
// client-facing RPC methods a node mounts (file upload/read, job
// submission), and the client-side helpers that call them.
package nodecmd

import (
	"bufio"
	"context"
	"fmt"
	"os"
	"sort"
	"strings"
	"time"

	"eclipsemr/internal/cluster"
	"eclipsemr/internal/dhtfs"
	"eclipsemr/internal/hashing"
	"eclipsemr/internal/mapreduce"
	"eclipsemr/internal/transport"
)

// ReadHosts parses a hosts file of "node-id host:port" lines. Blank lines
// and #-comments are ignored.
func ReadHosts(path string) (map[hashing.NodeID]string, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	hosts := make(map[hashing.NodeID]string)
	sc := bufio.NewScanner(f)
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		fields := strings.Fields(line)
		if len(fields) != 2 {
			return nil, fmt.Errorf("hosts file %s:%d: want \"id host:port\", got %q", path, lineNo, line)
		}
		hosts[hashing.NodeID(fields[0])] = fields[1]
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	if len(hosts) == 0 {
		return nil, fmt.Errorf("hosts file %s is empty", path)
	}
	return hosts, nil
}

// WaitForPeers pings every host until all respond (or the deadline
// lapses), then returns the bootstrap ring containing every node.
func WaitForPeers(net transport.Network, hosts map[hashing.NodeID]string, self hashing.NodeID, timeout time.Duration) (*hashing.ChordRing, error) {
	deadline := time.Now().Add(timeout)
	pending := make(map[hashing.NodeID]bool, len(hosts))
	for id := range hosts {
		if id != self {
			pending[id] = true
		}
	}
	body, err := transport.Encode(struct{}{})
	if err != nil {
		return nil, err
	}
	for len(pending) > 0 {
		for id := range pending {
			if _, err := net.Call(context.Background(), id, "cluster.ping", body); err == nil {
				delete(pending, id)
			}
		}
		if len(pending) == 0 {
			break
		}
		if time.Now().After(deadline) {
			return nil, fmt.Errorf("nodecmd: %d peers unreachable after %v", len(pending), timeout)
		}
		time.Sleep(200 * time.Millisecond)
	}
	ring := hashing.NewChordRing()
	for id := range hosts {
		if err := ring.AddNode(id); err != nil {
			return nil, err
		}
	}
	return ring, nil
}

// Client-facing wire messages.
type (
	// UploadReq stores a file in the DHT file system.
	UploadReq struct {
		Name    string
		Owner   string
		Public  bool
		Data    []byte
		Records bool // record-aligned blocks (newline delimiter)
	}
	// UploadResp returns the stored metadata summary.
	UploadResp struct {
		Blocks int
		Size   int64
	}
	// ReadReq fetches a file.
	ReadReq struct {
		Name string
		User string
	}
	// ReadResp returns file contents.
	ReadResp struct {
		Data []byte
	}
	// RunReq submits a job to the manager.
	RunReq struct {
		Spec mapreduce.JobSpec
	}
	// RunResp returns the job result.
	RunResp struct {
		Result mapreduce.Result
	}
	// CollectReq fetches a finished job's output pairs.
	CollectReq struct {
		Result mapreduce.Result
		User   string
	}
	// CollectResp returns the merged pairs.
	CollectResp struct {
		Pairs []mapreduce.KV
	}
	// ResumeReq asks the manager to adopt an interrupted job from its
	// durable journal and finish it.
	ResumeReq struct {
		Job string
	}
	// JobsResp lists journaled jobs that have not completed (resume
	// candidates).
	JobsResp struct {
		Jobs []string
	}
	// ListReq asks a node for the files whose metadata it holds.
	ListReq struct {
		User string
		// All includes the framework's internal files (_mr/, _ckpt/).
		All bool
	}
	// ListResp returns readable file names held by the queried node; the
	// caller merges across nodes (metadata is replicated).
	ListResp struct {
		Names []string
	}
)

// Client-facing method names.
const (
	MethodUpload  = "client.upload"
	MethodRead    = "client.read"
	MethodList    = "client.list"
	MethodRun     = "job.run"
	MethodCollect = "job.collect"
	MethodResume  = "job.resume"
	MethodJobs    = "job.jobs"
)

// ClientHandler mounts the client-facing methods on a node. ensureDriver
// must return the node's job driver (erroring on non-manager nodes).
func ClientHandler(node *cluster.Node, ensureDriver func() (*mapreduce.Driver, error)) func(string, []byte) ([]byte, bool, error) {
	return func(method string, body []byte) ([]byte, bool, error) {
		switch method {
		case MethodUpload:
			var req UploadReq
			if err := transport.Decode(body, &req); err != nil {
				return nil, true, err
			}
			perm := dhtfs.PermPrivate
			if req.Public {
				perm = dhtfs.PermPublic
			}
			var meta dhtfs.Metadata
			var err error
			if req.Records {
				meta, err = node.FS().UploadRecords(context.Background(), req.Name, req.Owner, perm, req.Data, node.BlockSize(), '\n')
			} else {
				meta, err = node.FS().Upload(context.Background(), req.Name, req.Owner, perm, req.Data, node.BlockSize())
			}
			if err != nil {
				return nil, true, err
			}
			out, err := transport.Encode(UploadResp{Blocks: meta.Blocks(), Size: meta.Size})
			return out, true, err
		case MethodRead:
			var req ReadReq
			if err := transport.Decode(body, &req); err != nil {
				return nil, true, err
			}
			data, err := node.FS().ReadFile(context.Background(), req.Name, req.User)
			if err != nil {
				return nil, true, err
			}
			out, err := transport.Encode(ReadResp{Data: data})
			return out, true, err
		case MethodList:
			var req ListReq
			if err := transport.Decode(body, &req); err != nil {
				return nil, true, err
			}
			var resp ListResp
			for _, name := range node.FS().Store().MetaNames() {
				if !req.All && (strings.HasPrefix(name, "_mr/") || strings.HasPrefix(name, "_ckpt/")) {
					continue
				}
				meta, err := node.FS().Store().GetMeta(name)
				if err != nil || !meta.CanRead(req.User) {
					continue
				}
				resp.Names = append(resp.Names, name)
			}
			sort.Strings(resp.Names)
			out, err := transport.Encode(resp)
			return out, true, err
		case MethodRun:
			var req RunReq
			if err := transport.Decode(body, &req); err != nil {
				return nil, true, err
			}
			driver, err := ensureDriver()
			if err != nil {
				return nil, true, err
			}
			res, err := driver.Run(req.Spec)
			if err != nil {
				return nil, true, err
			}
			out, err := transport.Encode(RunResp{Result: res})
			return out, true, err
		case MethodResume:
			var req ResumeReq
			if err := transport.Decode(body, &req); err != nil {
				return nil, true, err
			}
			driver, err := ensureDriver()
			if err != nil {
				return nil, true, err
			}
			res, err := driver.Resume(req.Job)
			if err != nil {
				return nil, true, err
			}
			out, err := transport.Encode(RunResp{Result: res})
			return out, true, err
		case MethodJobs:
			driver, err := ensureDriver()
			if err != nil {
				return nil, true, err
			}
			jobs, err := driver.Orphans(context.Background())
			if err != nil {
				return nil, true, err
			}
			out, err := transport.Encode(JobsResp{Jobs: jobs})
			return out, true, err
		case MethodCollect:
			var req CollectReq
			if err := transport.Decode(body, &req); err != nil {
				return nil, true, err
			}
			driver, err := ensureDriver()
			if err != nil {
				return nil, true, err
			}
			pairs, err := driver.Collect(context.Background(), req.Result, req.User)
			if err != nil {
				return nil, true, err
			}
			out, err := transport.Encode(CollectResp{Pairs: pairs})
			return out, true, err
		}
		return nil, false, nil
	}
}

// Call is a typed client RPC helper.
func Call(net transport.Network, to hashing.NodeID, method string, req, resp any) error {
	body, err := transport.Encode(req)
	if err != nil {
		return err
	}
	out, err := net.Call(context.Background(), to, method, body)
	if err != nil {
		return err
	}
	if resp == nil {
		return nil
	}
	return transport.Decode(out, resp)
}

// FindManager asks any reachable node who the current resource manager
// is.
func FindManager(net transport.Network, hosts map[hashing.NodeID]string) (hashing.NodeID, error) {
	type pingResp struct {
		Epoch   uint64
		Manager hashing.NodeID
	}
	var lastErr error
	for id := range hosts {
		var resp pingResp
		if err := Call(net, id, "cluster.ping", struct{}{}, &resp); err != nil {
			lastErr = err
			continue
		}
		if resp.Manager != "" {
			return resp.Manager, nil
		}
		lastErr = fmt.Errorf("node %s has no manager yet", id)
	}
	return "", fmt.Errorf("nodecmd: no manager found: %v", lastErr)
}
