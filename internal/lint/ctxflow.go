package lint

import (
	"fmt"
	"go/ast"
	"go/types"
	"strings"
)

// CtxFlow reports code that breaks the module's context-propagation
// discipline. Every transport RPC, dhtfs operation and retry loop takes a
// context; the invariant that makes cancellation, deadlines and tracing
// actually work is that those contexts are inherited from the caller all
// the way up to an entry point, never minted mid-stack:
//
//  1. context.Background()/context.TODO() may only be called in entry
//     point packages (cmd/..., examples/..., internal/nodecmd). Anywhere
//     else a fresh root context severs cancellation from the request
//     that caused the work.
//  2. context.Context must not be stored in struct fields. A stored ctx
//     outlives the call that supplied it, so cancellation and deadline
//     no longer describe the work actually in flight (the Go context
//     rule: pass ctx as the first parameter, per call).
//  3. A function that takes a context.Context must not call time.Sleep:
//     a bare sleep ignores cancellation for its whole duration. Use a
//     timer and select on ctx.Done().
//
// The check is syntactic and per-call; a legitimate fresh root (a
// server-side handler boundary, a detached control-plane probe) carries a
// //lint:ignore ctxflow <reason> stating why the break is deliberate.
func CtxFlow() *Analyzer {
	return &Analyzer{
		Name: "ctxflow",
		Doc:  "contexts must be inherited, never stored or minted mid-stack",
		Run:  runCtxFlow,
	}
}

// isContextType reports whether t is context.Context.
func isContextType(t types.Type) bool {
	return isNamed(t, "context", "Context")
}

// entryPointPkg reports whether an import path is an entry-point package
// where minting a root context is the job: command mains, examples, and
// the shared node-command scaffolding.
func entryPointPkg(path string) bool {
	for _, seg := range strings.Split(path, "/") {
		if seg == "cmd" || seg == "examples" {
			return true
		}
	}
	return strings.HasSuffix(path, "internal/nodecmd")
}

func runCtxFlow(u *Unit) []Finding {
	var findings []Finding
	for _, p := range u.Pkgs {
		entry := entryPointPkg(p.Path)
		for _, f := range p.Files {
			findings = append(findings, ctxFlowFile(u, p, f, entry)...)
		}
	}
	return findings
}

func ctxFlowFile(u *Unit, p *Package, f *ast.File, entry bool) []Finding {
	var findings []Finding

	// Rule 2: no context.Context struct fields.
	ast.Inspect(f, func(n ast.Node) bool {
		st, ok := n.(*ast.StructType)
		if !ok {
			return true
		}
		for _, field := range st.Fields.List {
			tv, ok := p.Info.Types[field.Type]
			if !ok || !isContextType(tv.Type) {
				continue
			}
			name := "embedded"
			if len(field.Names) > 0 {
				name = field.Names[0].Name
			}
			findings = append(findings, Finding{
				Pos:      u.Fset.Position(field.Pos()),
				Analyzer: "ctxflow",
				Message: fmt.Sprintf(
					"context.Context stored in struct field %s; contexts are per-call — pass ctx as a parameter",
					name),
			})
		}
		return true
	})

	// Rule 1: Background/TODO below entry points.
	if !entry {
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			fn := calleeFunc(p.Info, call)
			if fn == nil || fn.Pkg() == nil || fn.Pkg().Path() != "context" {
				return true
			}
			if fn.Name() == "Background" || fn.Name() == "TODO" {
				findings = append(findings, Finding{
					Pos:      u.Fset.Position(call.Pos()),
					Analyzer: "ctxflow",
					Message: fmt.Sprintf(
						"context.%s() below an entry point severs cancellation; accept and thread the caller's ctx",
						fn.Name()),
				})
			}
			return true
		})
	}

	// Rule 3: time.Sleep inside context-aware functions.
	for _, d := range f.Decls {
		fd, ok := d.(*ast.FuncDecl)
		if !ok || fd.Body == nil {
			continue
		}
		if !hasCtxParam(p.Info, fd.Type) {
			// The function itself is not ctx-aware, but nested literals
			// may be; they are found by the literal walk below.
			findings = append(findings, ctxSleepInLits(u, p, fd.Body)...)
			continue
		}
		findings = append(findings, ctxSleepScan(u, p, fd.Body)...)
	}
	return findings
}

// hasCtxParam reports whether a function type declares a context.Context
// parameter.
func hasCtxParam(info *types.Info, ft *ast.FuncType) bool {
	if ft.Params == nil {
		return false
	}
	for _, field := range ft.Params.List {
		if tv, ok := info.Types[field.Type]; ok && isContextType(tv.Type) {
			return true
		}
	}
	return false
}

// ctxSleepScan reports time.Sleep calls in a ctx-aware body. Nested
// function literals are scanned too — they capture the enclosing scope
// where the ctx is available — except literals that declare their own
// ctx parameter, which are ctx-aware in their own right and scanned the
// same way.
func ctxSleepScan(u *Unit, p *Package, body ast.Node) []Finding {
	var findings []Finding
	ast.Inspect(body, func(n ast.Node) bool {
		if call, ok := n.(*ast.CallExpr); ok {
			if fn := calleeFunc(p.Info, call); fn != nil &&
				fn.Pkg() != nil && fn.Pkg().Path() == "time" && fn.Name() == "Sleep" {
				findings = append(findings, Finding{
					Pos:      u.Fset.Position(call.Pos()),
					Analyzer: "ctxflow",
					Message:  "time.Sleep in a context-aware function ignores cancellation; use a timer and select on ctx.Done()",
				})
			}
		}
		return true
	})
	return findings
}

// ctxSleepInLits descends a non-ctx-aware body looking for function
// literals that do declare a ctx parameter, and scans those.
func ctxSleepInLits(u *Unit, p *Package, body ast.Node) []Finding {
	var findings []Finding
	ast.Inspect(body, func(n ast.Node) bool {
		lit, ok := n.(*ast.FuncLit)
		if !ok {
			return true
		}
		if hasCtxParam(p.Info, lit.Type) {
			findings = append(findings, ctxSleepScan(u, p, lit.Body)...)
			return false
		}
		return true
	})
	return findings
}
