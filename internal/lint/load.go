package lint

import (
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
)

// Loader discovers, parses and type-checks packages for one lint run.
// Module-local imports are served from the loader's own checked packages
// (so every analyzer sees one consistent object identity per package);
// everything else falls back to the stdlib source importer.
type Loader struct {
	// Root is the module root directory (the directory holding go.mod).
	Root string
	// Module is the module path from go.mod.
	Module string

	fset     *token.FileSet
	fallback types.Importer
	checked  map[string]*Package // by import path
	order    []*Package          // in check order
}

// NewLoader locates the module root at or above dir and prepares a loader.
func NewLoader(dir string) (*Loader, error) {
	abs, err := filepath.Abs(dir)
	if err != nil {
		return nil, err
	}
	root := abs
	for {
		if _, err := os.Stat(filepath.Join(root, "go.mod")); err == nil {
			break
		}
		parent := filepath.Dir(root)
		if parent == root {
			return nil, fmt.Errorf("lint: no go.mod at or above %s", abs)
		}
		root = parent
	}
	module, err := modulePath(filepath.Join(root, "go.mod"))
	if err != nil {
		return nil, err
	}
	fset := token.NewFileSet()
	return &Loader{
		Root:     root,
		Module:   module,
		fset:     fset,
		fallback: importer.ForCompiler(fset, "source", nil),
		checked:  make(map[string]*Package),
	}, nil
}

// modulePath extracts the module path from a go.mod file.
func modulePath(gomod string) (string, error) {
	data, err := os.ReadFile(gomod)
	if err != nil {
		return "", err
	}
	for _, line := range strings.Split(string(data), "\n") {
		line = strings.TrimSpace(line)
		if rest, ok := strings.CutPrefix(line, "module"); ok {
			rest = strings.TrimSpace(rest)
			if p, err := strconv.Unquote(rest); err == nil {
				rest = p
			}
			if rest != "" {
				return rest, nil
			}
		}
	}
	return "", fmt.Errorf("lint: no module directive in %s", gomod)
}

// Load resolves the given patterns (directories, or dir/... recursive
// patterns; "./..." is the usual spell) into package directories, then
// parses and type-checks them all in dependency order. It returns the
// unit ready for analysis.
func (l *Loader) Load(patterns ...string) (*Unit, error) {
	dirs, err := l.expand(patterns)
	if err != nil {
		return nil, err
	}
	// Parse every target dir first so imports can be resolved to parsed
	// packages before any type-checking starts.
	parsed := make(map[string]*parsedPkg) // by import path
	var paths []string
	for _, dir := range dirs {
		p, err := l.parseDir(dir)
		if err != nil {
			return nil, err
		}
		if p == nil {
			continue // no non-test Go files
		}
		if _, dup := parsed[p.path]; dup {
			return nil, fmt.Errorf("lint: duplicate package %s", p.path)
		}
		parsed[p.path] = p
		paths = append(paths, p.path)
	}
	sort.Strings(paths)
	for _, path := range paths {
		if err := l.check(parsed, path, nil); err != nil {
			return nil, err
		}
	}
	u := &Unit{Fset: l.fset}
	for _, p := range l.order {
		if _, isTarget := parsed[p.Path]; isTarget {
			u.Pkgs = append(u.Pkgs, p)
		}
	}
	return u, nil
}

// expand turns patterns into a sorted list of package directories.
func (l *Loader) expand(patterns []string) ([]string, error) {
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	seen := make(map[string]bool)
	var dirs []string
	add := func(dir string) {
		if !seen[dir] {
			seen[dir] = true
			dirs = append(dirs, dir)
		}
	}
	for _, pat := range patterns {
		recursive := false
		if strings.HasSuffix(pat, "/...") || pat == "..." {
			recursive = true
			pat = strings.TrimSuffix(strings.TrimSuffix(pat, "..."), "/")
			if pat == "" {
				pat = "."
			}
		}
		base := pat
		if !filepath.IsAbs(base) {
			base = filepath.Join(l.Root, base)
		}
		info, err := os.Stat(base)
		if err != nil {
			return nil, fmt.Errorf("lint: %w", err)
		}
		if !info.IsDir() {
			return nil, fmt.Errorf("lint: %s is not a directory", pat)
		}
		if !recursive {
			add(base)
			continue
		}
		err = filepath.WalkDir(base, func(path string, d os.DirEntry, err error) error {
			if err != nil {
				return err
			}
			if !d.IsDir() {
				return nil
			}
			name := d.Name()
			// Same exclusions as the go tool: testdata trees, hidden and
			// underscore directories are not packages.
			if path != base && (name == "testdata" || strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_")) {
				return filepath.SkipDir
			}
			add(path)
			return nil
		})
		if err != nil {
			return nil, err
		}
	}
	sort.Strings(dirs)
	return dirs, nil
}

type parsedPkg struct {
	path  string
	dir   string
	name  string
	files []*ast.File
}

// parseDir parses the non-test Go files of one directory, or returns nil
// if it holds none.
func (l *Loader) parseDir(dir string) (*parsedPkg, error) {
	ents, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var files []*ast.File
	name := ""
	for _, e := range ents {
		fn := e.Name()
		if e.IsDir() || !strings.HasSuffix(fn, ".go") || strings.HasSuffix(fn, "_test.go") {
			continue
		}
		f, err := parser.ParseFile(l.fset, filepath.Join(dir, fn), nil, parser.ParseComments)
		if err != nil {
			return nil, err
		}
		if name == "" {
			name = f.Name.Name
		} else if f.Name.Name != name {
			return nil, fmt.Errorf("lint: %s: mixed packages %s and %s", dir, name, f.Name.Name)
		}
		files = append(files, f)
	}
	if len(files) == 0 {
		return nil, nil
	}
	return &parsedPkg{path: l.importPath(dir), dir: dir, name: name, files: files}, nil
}

// importPath maps a directory beneath the module root to its import path.
// Directories outside the module (or the root itself) map to the module
// path plus a relative suffix; callers only ever pass module dirs.
func (l *Loader) importPath(dir string) string {
	rel, err := filepath.Rel(l.Root, dir)
	if err != nil || rel == "." {
		return l.Module
	}
	return l.Module + "/" + filepath.ToSlash(rel)
}

// check type-checks one parsed package, recursively checking parsed
// module dependencies first. stack guards against import cycles.
func (l *Loader) check(parsed map[string]*parsedPkg, path string, stack []string) error {
	if _, done := l.checked[path]; done {
		return nil
	}
	for _, s := range stack {
		if s == path {
			return fmt.Errorf("lint: import cycle: %s", strings.Join(append(stack, path), " -> "))
		}
	}
	p, ok := parsed[path]
	if !ok {
		return fmt.Errorf("lint: internal error: %s not parsed", path)
	}
	stack = append(stack, path)
	for _, f := range p.files {
		for _, imp := range f.Imports {
			ipath, err := strconv.Unquote(imp.Path.Value)
			if err != nil {
				continue
			}
			if _, isLocal := parsed[ipath]; isLocal {
				if err := l.check(parsed, ipath, stack); err != nil {
					return err
				}
			}
		}
	}
	info := &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
	}
	conf := types.Config{Importer: &unitImporter{loader: l, parsed: parsed}}
	pkg, err := conf.Check(path, l.fset, p.files, info)
	if err != nil {
		return fmt.Errorf("lint: type-checking %s: %w", path, err)
	}
	lp := &Package{Path: path, Dir: p.dir, Files: p.files, Info: info, Types: pkg}
	l.checked[path] = lp
	l.order = append(l.order, lp)
	return nil
}

// unitImporter serves module-local packages from the loader's checked set
// and delegates the rest (stdlib and, for packages not selected by the
// patterns, module packages resolved from source) to the source importer.
type unitImporter struct {
	loader *Loader
	parsed map[string]*parsedPkg
}

func (ui *unitImporter) Import(path string) (*types.Package, error) {
	if p, ok := ui.loader.checked[path]; ok {
		return p.Types, nil
	}
	if _, isLocal := ui.parsed[path]; isLocal {
		// Should have been checked first by the dependency walk; checking
		// here would recurse without cycle detection.
		return nil, fmt.Errorf("lint: internal error: %s imported before checked", path)
	}
	if from, ok := ui.loader.fallback.(types.ImporterFrom); ok {
		return from.ImportFrom(path, ui.loader.Root, 0)
	}
	return ui.loader.fallback.Import(path)
}
