package lint

import (
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
)

// Loader discovers, parses and type-checks packages for one lint run.
// Module-local imports are served from the loader's own checked packages
// (so every analyzer sees one consistent object identity per package);
// everything else falls back to the stdlib source importer.
type Loader struct {
	// Root is the module root directory (the directory holding go.mod).
	Root string
	// Module is the module path from go.mod.
	Module string
	// GoVersion is the go directive from go.mod ("1.22"), if any.
	GoVersion string

	fset     *token.FileSet
	fallback types.Importer
	checked  map[string]*Package // by import path
	checking map[string]bool     // cycle guard across importer re-entry
	order    []*Package          // in check order
}

// NewLoader locates the module root at or above dir and prepares a loader.
func NewLoader(dir string) (*Loader, error) {
	abs, err := filepath.Abs(dir)
	if err != nil {
		return nil, err
	}
	root := abs
	for {
		if _, err := os.Stat(filepath.Join(root, "go.mod")); err == nil {
			break
		}
		parent := filepath.Dir(root)
		if parent == root {
			return nil, fmt.Errorf("lint: no go.mod at or above %s", abs)
		}
		root = parent
	}
	module, goVersion, err := moduleDirectives(filepath.Join(root, "go.mod"))
	if err != nil {
		return nil, err
	}
	fset := token.NewFileSet()
	return &Loader{
		Root:      root,
		Module:    module,
		GoVersion: goVersion,
		fset:      fset,
		fallback:  importer.ForCompiler(fset, "source", nil),
		checked:   make(map[string]*Package),
		checking:  make(map[string]bool),
	}, nil
}

// moduleDirectives extracts the module path and go directive from a
// go.mod file. The go directive is optional and returned as "" when
// absent.
func moduleDirectives(gomod string) (module, goVersion string, err error) {
	data, err := os.ReadFile(gomod)
	if err != nil {
		return "", "", err
	}
	for _, line := range strings.Split(string(data), "\n") {
		line = strings.TrimSpace(line)
		if rest, ok := strings.CutPrefix(line, "module"); ok {
			rest = strings.TrimSpace(rest)
			if p, uerr := strconv.Unquote(rest); uerr == nil {
				rest = p
			}
			if rest != "" && module == "" {
				module = rest
			}
			continue
		}
		if rest, ok := strings.CutPrefix(line, "go "); ok {
			if v := strings.TrimSpace(rest); v != "" && goVersion == "" {
				goVersion = v
			}
		}
	}
	if module == "" {
		return "", "", fmt.Errorf("lint: no module directive in %s", gomod)
	}
	return module, goVersion, nil
}

// Load resolves the given patterns (directories, or dir/... recursive
// patterns; "./..." is the usual spell) into package directories, then
// parses and type-checks them all in dependency order. It returns the
// unit ready for analysis.
func (l *Loader) Load(patterns ...string) (*Unit, error) {
	dirs, err := l.expand(patterns)
	if err != nil {
		return nil, err
	}
	// Parse every target dir first so imports can be resolved to parsed
	// packages before any type-checking starts.
	parsed := make(map[string]*parsedPkg) // by import path
	var paths []string
	for _, dir := range dirs {
		p, err := l.parseDir(dir)
		if err != nil {
			return nil, err
		}
		if p == nil {
			continue // no non-test Go files
		}
		if _, dup := parsed[p.path]; dup {
			return nil, fmt.Errorf("lint: duplicate package %s", p.path)
		}
		parsed[p.path] = p
		paths = append(paths, p.path)
	}
	sort.Strings(paths)
	// Snapshot the target set now: checking may lazily parse further
	// module packages (imports outside the patterns), and those must not
	// become analysis targets themselves.
	targets := make(map[string]bool, len(paths))
	for _, path := range paths {
		targets[path] = true
	}
	for _, path := range paths {
		if err := l.check(parsed, path, nil); err != nil {
			return nil, err
		}
	}
	u := &Unit{Fset: l.fset, GoVersion: l.GoVersion}
	u.All = append(u.All, l.order...)
	for _, p := range l.order {
		if targets[p.Path] {
			u.Pkgs = append(u.Pkgs, p)
		}
	}
	return u, nil
}

// expand turns patterns into a sorted list of package directories.
func (l *Loader) expand(patterns []string) ([]string, error) {
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	seen := make(map[string]bool)
	var dirs []string
	add := func(dir string) {
		if !seen[dir] {
			seen[dir] = true
			dirs = append(dirs, dir)
		}
	}
	for _, pat := range patterns {
		recursive := false
		if strings.HasSuffix(pat, "/...") || pat == "..." {
			recursive = true
			pat = strings.TrimSuffix(strings.TrimSuffix(pat, "..."), "/")
			if pat == "" {
				pat = "."
			}
		}
		base := pat
		if !filepath.IsAbs(base) {
			base = filepath.Join(l.Root, base)
		}
		info, err := os.Stat(base)
		if err != nil {
			return nil, fmt.Errorf("lint: %w", err)
		}
		if !info.IsDir() {
			return nil, fmt.Errorf("lint: %s is not a directory", pat)
		}
		if !recursive {
			add(base)
			continue
		}
		err = filepath.WalkDir(base, func(path string, d os.DirEntry, err error) error {
			if err != nil {
				return err
			}
			if !d.IsDir() {
				return nil
			}
			name := d.Name()
			// Same exclusions as the go tool: testdata trees, hidden and
			// underscore directories are not packages.
			if path != base && (name == "testdata" || strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_")) {
				return filepath.SkipDir
			}
			add(path)
			return nil
		})
		if err != nil {
			return nil, err
		}
	}
	sort.Strings(dirs)
	return dirs, nil
}

type parsedPkg struct {
	path  string
	dir   string
	name  string
	files []*ast.File
}

// parseDir parses the non-test Go files of one directory, or returns nil
// if it holds none.
func (l *Loader) parseDir(dir string) (*parsedPkg, error) {
	ents, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var files []*ast.File
	name := ""
	for _, e := range ents {
		fn := e.Name()
		if e.IsDir() || !strings.HasSuffix(fn, ".go") || strings.HasSuffix(fn, "_test.go") {
			continue
		}
		f, err := parser.ParseFile(l.fset, filepath.Join(dir, fn), nil, parser.ParseComments)
		if err != nil {
			return nil, err
		}
		if name == "" {
			name = f.Name.Name
		} else if f.Name.Name != name {
			return nil, fmt.Errorf("lint: %s: mixed packages %s and %s", dir, name, f.Name.Name)
		}
		files = append(files, f)
	}
	if len(files) == 0 {
		return nil, nil
	}
	return &parsedPkg{path: l.importPath(dir), dir: dir, name: name, files: files}, nil
}

// importPath maps a directory beneath the module root to its import path.
// Directories outside the module (or the root itself) map to the module
// path plus a relative suffix; callers only ever pass module dirs.
func (l *Loader) importPath(dir string) string {
	rel, err := filepath.Rel(l.Root, dir)
	if err != nil || rel == "." {
		return l.Module
	}
	return l.Module + "/" + filepath.ToSlash(rel)
}

// check type-checks one parsed package, recursively checking parsed
// module dependencies first. stack guards against import cycles.
func (l *Loader) check(parsed map[string]*parsedPkg, path string, stack []string) error {
	if _, done := l.checked[path]; done {
		return nil
	}
	for _, s := range stack {
		if s == path {
			return fmt.Errorf("lint: import cycle: %s", strings.Join(append(stack, path), " -> "))
		}
	}
	p, ok := parsed[path]
	if !ok {
		return fmt.Errorf("lint: internal error: %s not parsed", path)
	}
	l.checking[path] = true
	defer delete(l.checking, path)
	stack = append(stack, path)
	for _, f := range p.files {
		for _, imp := range f.Imports {
			ipath, err := strconv.Unquote(imp.Path.Value)
			if err != nil {
				continue
			}
			if _, isLocal := parsed[ipath]; isLocal {
				if err := l.check(parsed, ipath, stack); err != nil {
					return err
				}
			}
		}
	}
	info := &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
	}
	conf := types.Config{Importer: &unitImporter{loader: l, parsed: parsed}}
	pkg, err := conf.Check(path, l.fset, p.files, info)
	if err != nil {
		return fmt.Errorf("lint: type-checking %s: %w", path, err)
	}
	lp := &Package{Path: path, Dir: p.dir, Files: p.files, Info: info, Types: pkg}
	l.checked[path] = lp
	l.order = append(l.order, lp)
	return nil
}

// unitImporter serves every module-local package from the loader's own
// checked set — parsing and checking it on demand when the patterns did
// not select it — and delegates only non-module imports (the stdlib) to
// the source importer. Routing all module packages through one checker is
// what keeps type identities consistent: if a package outside the pattern
// set were resolved from source by the fallback, its view of shared
// dependencies would be distinct *types.Package instances, and values
// flowing between a checked package and a fallback one would spuriously
// fail to type-check (e.g. "does not implement" for interfaces whose
// method signatures mention a shared dependency).
type unitImporter struct {
	loader *Loader
	parsed map[string]*parsedPkg
}

func (ui *unitImporter) Import(path string) (*types.Package, error) {
	l := ui.loader
	if p, ok := l.checked[path]; ok {
		return p.Types, nil
	}
	if path == l.Module || strings.HasPrefix(path, l.Module+"/") {
		if l.checking[path] {
			return nil, fmt.Errorf("lint: import cycle through %s", path)
		}
		if _, ok := ui.parsed[path]; !ok {
			dir := filepath.Join(l.Root, filepath.FromSlash(strings.TrimPrefix(strings.TrimPrefix(path, l.Module), "/")))
			p, err := l.parseDir(dir)
			if err != nil {
				return nil, err
			}
			if p == nil {
				return nil, fmt.Errorf("lint: import %s: no Go files in %s", path, dir)
			}
			ui.parsed[path] = p
		}
		if err := l.check(ui.parsed, path, nil); err != nil {
			return nil, err
		}
		return l.checked[path].Types, nil
	}
	if from, ok := l.fallback.(types.ImporterFrom); ok {
		return from.ImportFrom(path, l.Root, 0)
	}
	return l.fallback.Import(path)
}
