package lint

import (
	"fmt"
	"go/ast"
	"go/token"
)

const hashingPath = "eclipsemr/internal/hashing"

// RingCmp reports ordinal comparisons (<, <=, >, >=) between hashing.Key
// values outside internal/hashing itself.
//
// Keys live on a modular ring: arithmetic wraps at 2^64 and ownership is
// defined by clockwise arcs (§III-A of the paper). A raw ordinal
// comparison is only correct when the arc does not cross zero, so `a < k`
// silently misroutes exactly the keys that wrap — the same bucket-
// arithmetic trap the jump-hash paper warns about. All arc membership
// must go through hashing.Between / hashing.InRange, and relative order
// through hashing.Distance. Equality (==, !=) is always well defined and
// is not flagged.
func RingCmp() *Analyzer {
	return &Analyzer{
		Name: "ringcmp",
		Doc:  "ordinal comparison of hashing.Key values outside internal/hashing",
		Run:  runRingCmp,
	}
}

func runRingCmp(u *Unit) []Finding {
	var findings []Finding
	for _, p := range u.Pkgs {
		if p.Path == hashingPath {
			continue
		}
		for _, f := range p.Files {
			ast.Inspect(f, func(n ast.Node) bool {
				be, ok := n.(*ast.BinaryExpr)
				if !ok {
					return true
				}
				switch be.Op {
				case token.LSS, token.LEQ, token.GTR, token.GEQ:
				default:
					return true
				}
				xt, yt := p.Info.Types[be.X], p.Info.Types[be.Y]
				if !isNamed(xt.Type, hashingPath, "Key") && !isNamed(yt.Type, hashingPath, "Key") {
					return true
				}
				findings = append(findings, Finding{
					Pos:      u.Fset.Position(be.OpPos),
					Analyzer: "ringcmp",
					Message: fmt.Sprintf(
						"raw %s between hashing.Key values ignores ring wraparound; use hashing.Between, hashing.InRange or hashing.Distance",
						be.Op),
				})
				return true
			})
		}
	}
	return findings
}
