package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"strconv"
	"strings"
)

// GoroLeak reports go statements with no visible termination path. A
// long-lived EclipseMR process (a cluster node, the driver) spawns
// goroutines for heartbeats, spill senders, journal flushers and
// speculative attempts; any one of them that cannot be told to stop is a
// leak that accretes across jobs and, under chaos restarts, across node
// lifetimes.
//
// The check is evidence-based and syntactic. A spawned body passes when
// it (or, failing that, a directly called module function) shows one of:
//
//   - a caller-supplied context.Context — a parameter or captured
//     variable, not a ctx dug out of a struct field and not one minted
//     inside the body;
//   - a channel receive or a range over a channel (a close unblocks it);
//   - a select statement (cancellation or shutdown cases live there);
//   - a sync.WaitGroup Done call (a join point exists).
//
// Anything else needs a //lint:ignore goroleak <reason> stating why the
// goroutine's lifetime is actually bounded.
//
// When the enclosing module predates go 1.22 (per the go.mod go
// directive), the analyzer additionally flags goroutine literals that
// capture a loop variable: pre-1.22 all iterations share one variable,
// so every goroutine observes the last value.
func GoroLeak() *Analyzer {
	return &Analyzer{
		Name: "goroleak",
		Doc:  "go statement with no visible termination path",
		Run:  runGoroLeak,
	}
}

// declBody locates the parsed body of a declared function anywhere in the
// unit, by stable funcKey.
type declBody struct {
	pkg  *Package
	body *ast.BlockStmt
}

// Bodies come from every checked module package (Unit.Context), not just
// the analysis targets: evidence must not depend on which packages a
// partial run happened to select.
func unitDeclBodies(u *Unit) map[string]declBody {
	decls := make(map[string]declBody)
	for _, p := range u.Context() {
		for _, f := range p.Files {
			for _, d := range f.Decls {
				fd, ok := d.(*ast.FuncDecl)
				if !ok || fd.Body == nil {
					continue
				}
				if fn, ok := p.Info.Defs[fd.Name].(*types.Func); ok {
					decls[funcKey(fn)] = declBody{pkg: p, body: fd.Body}
				}
			}
		}
	}
	return decls
}

func runGoroLeak(u *Unit) []Finding {
	decls := unitDeclBodies(u)
	pre122 := goVersionBefore(u.GoVersion, 1, 22)
	var findings []Finding
	for _, p := range u.Pkgs {
		for _, f := range p.Files {
			for _, d := range f.Decls {
				fd, ok := d.(*ast.FuncDecl)
				if !ok || fd.Body == nil {
					continue
				}
				w := &goroWalker{u: u, pkg: p, decls: decls, pre122: pre122}
				w.walk(fd.Body, nil)
				findings = append(findings, w.findings...)
			}
		}
	}
	return findings
}

// goroWalker visits one function body, tracking the loop variables in
// scope so goroutine literals that capture them can be flagged on
// pre-1.22 modules.
type goroWalker struct {
	u        *Unit
	pkg      *Package
	decls    map[string]declBody
	pre122   bool
	findings []Finding
}

// walk visits n with the given active loop-variable objects.
func (w *goroWalker) walk(n ast.Node, loopVars []types.Object) {
	if n == nil {
		return
	}
	ast.Inspect(n, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.RangeStmt:
			vars := loopVars
			for _, e := range []ast.Expr{n.Key, n.Value} {
				if id, ok := e.(*ast.Ident); ok && id.Name != "_" {
					if obj := w.pkg.Info.Defs[id]; obj != nil {
						vars = append(vars, obj)
					}
				}
			}
			if n.Key != nil || n.Value != nil {
				w.walk(n.X, loopVars)
				w.walk(n.Body, vars)
				return false
			}
		case *ast.ForStmt:
			vars := loopVars
			if as, ok := n.Init.(*ast.AssignStmt); ok && as.Tok == token.DEFINE {
				for _, e := range as.Lhs {
					if id, ok := e.(*ast.Ident); ok && id.Name != "_" {
						if obj := w.pkg.Info.Defs[id]; obj != nil {
							vars = append(vars, obj)
						}
					}
				}
			}
			if len(vars) > len(loopVars) {
				w.walk(n.Init, loopVars)
				w.walk(n.Cond, vars)
				w.walk(n.Body, vars)
				w.walk(n.Post, vars)
				return false
			}
		case *ast.GoStmt:
			w.goStmt(n, loopVars)
			// Arguments and nested spawns are still visited.
		}
		return true
	})
}

// goStmt checks one go statement: termination evidence plus (pre-1.22)
// loop-variable capture.
func (w *goroWalker) goStmt(g *ast.GoStmt, loopVars []types.Object) {
	var body *ast.BlockStmt
	info := w.pkg.Info
	switch fun := ast.Unparen(g.Call.Fun).(type) {
	case *ast.FuncLit:
		body = fun.Body
		if w.pre122 {
			w.checkLoopCapture(g, fun, loopVars)
		}
	default:
		if fn := calleeFunc(info, g.Call); fn != nil {
			if db, ok := w.decls[funcKey(fn)]; ok {
				body = db.body
				info = db.pkg.Info
			}
		}
	}
	if body == nil {
		w.findings = append(w.findings, Finding{
			Pos:      w.u.Fset.Position(g.Pos()),
			Analyzer: "goroleak",
			Message:  "goroutine body is not statically visible; no termination path is provable — wrap it or //lint:ignore goroleak <reason>",
		})
		return
	}
	if terminationEvidence(info, body) {
		return
	}
	// One level of wrapper-following: a spawn whose body just delegates
	// to a module function inherits that callee's evidence.
	if w.calleeEvidence(info, body) {
		return
	}
	w.findings = append(w.findings, Finding{
		Pos:      w.u.Fset.Position(g.Pos()),
		Analyzer: "goroleak",
		Message:  "goroutine has no visible termination path (caller ctx, channel receive/range, select, or WaitGroup.Done); add one or //lint:ignore goroleak <reason>",
	})
}

// calleeEvidence scans the bodies of module functions called directly in
// body (one level, no recursion) for termination evidence.
func (w *goroWalker) calleeEvidence(info *types.Info, body *ast.BlockStmt) bool {
	found := false
	ast.Inspect(body, func(n ast.Node) bool {
		if found {
			return false
		}
		if _, ok := n.(*ast.FuncLit); ok {
			return false
		}
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		fn := calleeFunc(info, call)
		if fn == nil {
			return true
		}
		if db, ok := w.decls[funcKey(fn)]; ok && terminationEvidence(db.pkg.Info, db.body) {
			found = true
			return false
		}
		return true
	})
	return found
}

// terminationEvidence reports whether a goroutine body shows any of the
// accepted termination paths. Nested function literals are not scanned:
// a select buried in a callback the body registers somewhere proves
// nothing about the body's own loop, and a deferred receive only runs
// once the body already finished.
func terminationEvidence(info *types.Info, body *ast.BlockStmt) bool {
	// Identifiers appearing as the Sel of a selector are field/method
	// accesses, not direct bindings; a ctx fished out of a struct field
	// is not caller-supplied evidence (and is a ctxflow finding anyway).
	selNames := make(map[*ast.Ident]bool)
	ast.Inspect(body, func(n ast.Node) bool {
		if sel, ok := n.(*ast.SelectorExpr); ok {
			selNames[sel.Sel] = true
		}
		return true
	})
	found := false
	ast.Inspect(body, func(n ast.Node) bool {
		if found {
			return false
		}
		switch n := n.(type) {
		case *ast.FuncLit:
			return false
		case *ast.SelectStmt:
			found = true
		case *ast.UnaryExpr:
			if n.Op == token.ARROW {
				found = true
			}
		case *ast.RangeStmt:
			if tv, ok := info.Types[n.X]; ok {
				if _, isChan := tv.Type.Underlying().(*types.Chan); isChan {
					found = true
				}
			}
		case *ast.CallExpr:
			if fn := calleeFunc(info, n); fn != nil &&
				fn.Pkg() != nil && fn.Pkg().Path() == "sync" && fn.Name() == "Done" {
				found = true
			}
		case *ast.Ident:
			if selNames[n] {
				return true
			}
			obj, ok := info.Uses[n].(*types.Var)
			if !ok || !isContextType(obj.Type()) {
				return true
			}
			// Caller-supplied means defined outside the body: a parameter
			// of the spawned function or a captured variable, not a ctx
			// created inside the goroutine itself.
			if obj.Pos() < body.Pos() || obj.Pos() >= body.End() {
				found = true
			}
		}
		return !found
	})
	return found
}

// checkLoopCapture flags a goroutine literal that uses a loop variable of
// an enclosing loop. Only meaningful pre-go1.22: later modules get one
// variable per iteration.
func (w *goroWalker) checkLoopCapture(g *ast.GoStmt, lit *ast.FuncLit, loopVars []types.Object) {
	if len(loopVars) == 0 {
		return
	}
	captured := make(map[types.Object]bool)
	ast.Inspect(lit.Body, func(n ast.Node) bool {
		if id, ok := n.(*ast.Ident); ok {
			if obj := w.pkg.Info.Uses[id]; obj != nil {
				for _, lv := range loopVars {
					if obj == lv {
						captured[obj] = true
					}
				}
			}
		}
		return true
	})
	for _, lv := range loopVars {
		if captured[lv] {
			w.findings = append(w.findings, Finding{
				Pos:      w.u.Fset.Position(g.Pos()),
				Analyzer: "goroleak",
				Message: fmt.Sprintf(
					"goroutine captures loop variable %s; module is go %s (< 1.22), all iterations share one variable — pass it as an argument",
					lv.Name(), w.u.GoVersion),
			})
		}
	}
}

// goVersionBefore reports whether the go directive v ("1.21") names a
// release before major.minor. An empty or unparsable version is treated
// as current (the check stays off).
func goVersionBefore(v string, major, minor int) bool {
	parts := strings.SplitN(v, ".", 3)
	if len(parts) < 2 {
		return false
	}
	maj, err1 := strconv.Atoi(parts[0])
	min, err2 := strconv.Atoi(parts[1])
	if err1 != nil || err2 != nil {
		return false
	}
	return maj < major || (maj == major && min < minor)
}
