// Package lint is eclipse-lint: a stdlib-only static-analysis suite that
// enforces EclipseMR's project-specific invariants at build time — the
// properties the compiler cannot check and that PR 1's chaos layer and
// PR 2's metrics layer only catch at runtime.
//
// The suite loads every package under a module (go/parser + go/types with
// the source importer; no golang.org/x/tools dependency) and runs six
// analyzers:
//
//   - ringcmp:    raw <, <=, >, >= between hashing.Key values outside
//     internal/hashing. Keys live on a modular ring; ordinal
//     comparison silently breaks wraparound arcs (§III-A).
//   - lockedrpc:  transport RPCs issued while a sync.Mutex/RWMutex
//     acquired in the same function is still held — deadlock and
//     tail-latency risk in stabilization, replication, heartbeats.
//   - metricname: metric registrations must use statically known names,
//     and a name must keep one kind (counter/gauge/histogram)
//     across the whole module, or cluster-wide Merge corrupts.
//   - timesource: time.Now/time.Sleep and the global math/rand source
//     inside internal/sim and internal/simcluster, which must
//     use the injected clock/seed so figure sweeps reproduce.
//   - droppederr: implicitly discarded error returns at transport, dhtfs
//     and cache I/O boundaries.
//   - spanend:    trace.Start* spans that can never be ended — result
//     discarded, bound to the blank identifier, or a span
//     variable with neither an End call nor an escape.
//
// Findings print as "file:line: analyzer: message". A finding is
// suppressed by a comment on the same line or the line above:
//
//	//lint:ignore <analyzer> <reason>
//
// The reason is mandatory; an ignore directive without one is itself
// reported.
package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"path/filepath"
	"sort"
	"strings"
)

// Finding is one diagnostic produced by an analyzer.
type Finding struct {
	Pos      token.Position
	Analyzer string
	Message  string
}

// String renders the finding in the canonical file:line: analyzer: message
// form, with the file path made relative to dir when possible.
func (f Finding) String() string { return f.Render("") }

// Render renders the finding with file paths relative to dir (when
// non-empty and the path is beneath it).
func (f Finding) Render(dir string) string {
	file := f.Pos.Filename
	if dir != "" {
		if rel, err := filepath.Rel(dir, file); err == nil && !strings.HasPrefix(rel, "..") {
			file = rel
		}
	}
	return fmt.Sprintf("%s:%d: %s: %s", file, f.Pos.Line, f.Analyzer, f.Message)
}

// Package is one loaded, type-checked package.
type Package struct {
	// Path is the package's import path ("eclipsemr/internal/chord").
	Path string
	// Dir is the directory the package was loaded from.
	Dir string
	// Files are the parsed non-test source files.
	Files []*ast.File
	// Info holds the type-checker's results for Files.
	Info *types.Info
	// Types is the checked package.
	Types *types.Package
}

// Unit is the whole body of code one lint run analyzes. Analyzers see
// every package at once so cross-package facts (the transport call graph,
// the metric-name registry) are visible.
type Unit struct {
	Fset *token.FileSet
	Pkgs []*Package
}

// An Analyzer checks one invariant over a Unit.
type Analyzer struct {
	Name string
	Doc  string
	Run  func(u *Unit) []Finding
}

// Analyzers is the ordered suite eclipse-lint runs.
func Analyzers() []*Analyzer {
	return []*Analyzer{
		RingCmp(),
		LockedRPC(),
		MetricName(),
		TimeSource(),
		DroppedErr(),
		SpanEnd(),
	}
}

// AnalyzerNames returns the suite's analyzer names in run order.
func AnalyzerNames() []string {
	var names []string
	for _, a := range Analyzers() {
		names = append(names, a.Name)
	}
	return names
}

// IgnoreDirective is one parsed //lint:ignore comment.
type IgnoreDirective struct {
	Pos      token.Position
	Analyzer string
	Reason   string
}

const ignorePrefix = "//lint:ignore"

// parseIgnores collects every //lint:ignore directive in the unit, keyed
// by (file, line) of the code the directive covers: the directive's own
// line and the line below it (so both same-line trailing comments and
// whole-line comments above a statement work).
//
// Malformed directives (missing analyzer or reason) are returned as
// findings so they fail the run instead of silently ignoring nothing.
func parseIgnores(u *Unit) (map[string]map[int][]IgnoreDirective, []Finding) {
	known := make(map[string]bool)
	for _, name := range AnalyzerNames() {
		known[name] = true
	}
	ignores := make(map[string]map[int][]IgnoreDirective)
	var bad []Finding
	add := func(file string, line int, d IgnoreDirective) {
		if ignores[file] == nil {
			ignores[file] = make(map[int][]IgnoreDirective)
		}
		ignores[file][line] = append(ignores[file][line], d)
	}
	for _, p := range u.Pkgs {
		for _, f := range p.Files {
			for _, cg := range f.Comments {
				for _, c := range cg.List {
					if !strings.HasPrefix(c.Text, ignorePrefix) {
						continue
					}
					rest := strings.TrimPrefix(c.Text, ignorePrefix)
					pos := u.Fset.Position(c.Pos())
					fields := strings.Fields(rest)
					if len(fields) < 2 {
						bad = append(bad, Finding{
							Pos:      pos,
							Analyzer: "badignore",
							Message:  "malformed directive: want //lint:ignore <analyzer> <reason>",
						})
						continue
					}
					name := fields[0]
					if !known[name] {
						bad = append(bad, Finding{
							Pos:      pos,
							Analyzer: "badignore",
							Message: fmt.Sprintf("unknown analyzer %q (have %s)",
								name, strings.Join(AnalyzerNames(), ", ")),
						})
						continue
					}
					d := IgnoreDirective{Pos: pos, Analyzer: name, Reason: strings.Join(fields[1:], " ")}
					// Covers the directive's own line (trailing comment)
					// and the next line (comment above the statement).
					add(pos.Filename, pos.Line, d)
					add(pos.Filename, pos.Line+1, d)
				}
			}
		}
	}
	return ignores, bad
}

// Run executes the given analyzers over the unit, applies //lint:ignore
// suppression, and returns the surviving findings sorted by position.
func Run(u *Unit, analyzers []*Analyzer) []Finding {
	ignores, bad := parseIgnores(u)
	findings := append([]Finding(nil), bad...)
	for _, a := range analyzers {
		for _, f := range a.Run(u) {
			if suppressed(ignores, f) {
				continue
			}
			findings = append(findings, f)
		}
	}
	sort.Slice(findings, func(i, j int) bool {
		a, b := findings[i], findings[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		return a.Analyzer < b.Analyzer
	})
	return findings
}

func suppressed(ignores map[string]map[int][]IgnoreDirective, f Finding) bool {
	for _, d := range ignores[f.Pos.Filename][f.Pos.Line] {
		if d.Analyzer == f.Analyzer {
			return true
		}
	}
	return false
}

// ---- shared type helpers used by the analyzers ----

// isNamed reports whether t (after pointer indirection) is the named type
// pkgPath.name.
func isNamed(t types.Type, pkgPath, name string) bool {
	if ptr, ok := t.(*types.Pointer); ok {
		t = ptr.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj != nil && obj.Pkg() != nil && obj.Pkg().Path() == pkgPath && obj.Name() == name
}

// calleeFunc resolves the function or method a call expression invokes,
// or nil for indirect calls through function values, type conversions and
// builtins.
func calleeFunc(info *types.Info, call *ast.CallExpr) *types.Func {
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.SelectorExpr:
		if fn, ok := info.Uses[fun.Sel].(*types.Func); ok {
			return fn
		}
	case *ast.Ident:
		if fn, ok := info.Uses[fun].(*types.Func); ok {
			return fn
		}
	}
	return nil
}

// funcKey returns a stable cross-package identity for a function: its
// types.Func full name, e.g. "(*eclipsemr/internal/cluster.Node).call".
// Identity by string survives the same package being type-checked twice
// (once as a subject, once as a dependency).
func funcKey(fn *types.Func) string { return fn.FullName() }

// exprString renders a (small) expression for use in messages and as a
// mutex identity key.
func exprString(e ast.Expr) string {
	switch e := e.(type) {
	case *ast.Ident:
		return e.Name
	case *ast.SelectorExpr:
		return exprString(e.X) + "." + e.Sel.Name
	case *ast.ParenExpr:
		return exprString(e.X)
	case *ast.IndexExpr:
		return exprString(e.X) + "[" + exprString(e.Index) + "]"
	case *ast.StarExpr:
		return "*" + exprString(e.X)
	case *ast.CallExpr:
		return exprString(e.Fun) + "(...)"
	case *ast.BasicLit:
		return e.Value
	default:
		return "<expr>"
	}
}
