// Package lint is eclipse-lint: a stdlib-only static-analysis suite that
// enforces EclipseMR's project-specific invariants at build time — the
// properties the compiler cannot check and that PR 1's chaos layer and
// PR 2's metrics layer only catch at runtime.
//
// The suite loads every package under a module (go/parser + go/types with
// the source importer; no golang.org/x/tools dependency) and runs ten
// analyzers:
//
//   - ringcmp:    raw <, <=, >, >= between hashing.Key values outside
//     internal/hashing. Keys live on a modular ring; ordinal
//     comparison silently breaks wraparound arcs (§III-A).
//   - lockedrpc:  transport RPCs issued while a sync.Mutex/RWMutex
//     acquired in the same function is still held — deadlock and
//     tail-latency risk in stabilization, replication, heartbeats.
//   - lockorder:  the module-wide mutex-acquisition graph, built through
//     the call graph, must stay acyclic; a cycle is a potential
//     deadlock. DESIGN.md holds the canonical lock-rank table.
//   - metricname: metric registrations must use statically known names,
//     and a name must keep one kind (counter/gauge/histogram)
//     across the whole module, or cluster-wide Merge corrupts.
//   - eventname:  events.Log.Emit must use statically known event names;
//     the event vocabulary is the debugging contract that CLI
//     filters, bundles and the deterministic e2e pin.
//   - timesource: time.Now/time.Sleep and the global math/rand source
//     inside internal/sim and internal/simcluster, which must
//     use the injected clock/seed so figure sweeps reproduce.
//   - droppederr: implicitly discarded error returns at transport, dhtfs
//     and cache I/O boundaries.
//   - spanend:    trace.Start* spans that can never be ended — result
//     discarded, bound to the blank identifier, or a span
//     variable with neither an End call nor an escape.
//   - goroleak:   every go statement must show a termination path — a
//     caller-supplied context, a channel receive or range, a
//     select, or a WaitGroup join; plus loop-variable capture
//     when the module predates go 1.22 semantics.
//   - ctxflow:    contexts must flow down from entry points: no
//     context.Background()/TODO() below cmd/, examples/ and
//     internal/nodecmd, no context stored in struct fields,
//     and no bare time.Sleep in context-aware functions.
//
// Findings print as "file:line: analyzer: message". A finding is
// suppressed by a comment on the same line or the line above:
//
//	//lint:ignore <analyzer>[,<analyzer>...] <reason>
//
// The reason is mandatory, and only the named analyzers are suppressed;
// an ignore directive without a reason, naming an unknown analyzer, or
// naming one that suppresses nothing in the run is itself reported.
package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"path/filepath"
	"sort"
	"strings"
)

// Finding is one diagnostic produced by an analyzer.
type Finding struct {
	Pos      token.Position
	Analyzer string
	Message  string
}

// String renders the finding in the canonical file:line: analyzer: message
// form, with the file path made relative to dir when possible.
func (f Finding) String() string { return f.Render("") }

// Render renders the finding with file paths relative to dir (when
// non-empty and the path is beneath it).
func (f Finding) Render(dir string) string {
	file := f.Pos.Filename
	if dir != "" {
		if rel, err := filepath.Rel(dir, file); err == nil && !strings.HasPrefix(rel, "..") {
			file = rel
		}
	}
	return fmt.Sprintf("%s:%d: %s: %s", file, f.Pos.Line, f.Analyzer, f.Message)
}

// Package is one loaded, type-checked package.
type Package struct {
	// Path is the package's import path ("eclipsemr/internal/chord").
	Path string
	// Dir is the directory the package was loaded from.
	Dir string
	// Files are the parsed non-test source files.
	Files []*ast.File
	// Info holds the type-checker's results for Files.
	Info *types.Info
	// Types is the checked package.
	Types *types.Package
}

// Unit is the whole body of code one lint run analyzes. Analyzers see
// every package at once so cross-package facts (the transport call graph,
// the metric-name registry) are visible.
type Unit struct {
	Fset *token.FileSet
	Pkgs []*Package
	// All holds every module package the loader checked — the target
	// Pkgs plus their module-local dependencies. Analyzers report
	// findings only for Pkgs, but evidence lookups (a callee's body, a
	// function's lock summary) should consult All so a partial run
	// (eclipse-lint -diff) reaches the same verdicts as a full one.
	// Empty in hand-built units; see Context().
	All []*Package
	// GoVersion is the module's go directive ("1.22"), empty when the
	// go.mod carries none. goroleak keys its loop-variable-capture check
	// off it: per-iteration semantics arrived in go 1.22.
	GoVersion string
}

// Context returns the packages cross-package lookups should scan: every
// checked module package when the loader recorded them, else the targets.
func (u *Unit) Context() []*Package {
	if len(u.All) > 0 {
		return u.All
	}
	return u.Pkgs
}

// An Analyzer checks one invariant over a Unit.
type Analyzer struct {
	Name string
	Doc  string
	Run  func(u *Unit) []Finding
}

// Analyzers is the ordered suite eclipse-lint runs.
func Analyzers() []*Analyzer {
	return []*Analyzer{
		RingCmp(),
		LockedRPC(),
		LockOrder(),
		MetricName(),
		EventName(),
		TimeSource(),
		DroppedErr(),
		SpanEnd(),
		GoroLeak(),
		CtxFlow(),
	}
}

// AnalyzerNames returns the suite's analyzer names in run order.
func AnalyzerNames() []string {
	var names []string
	for _, a := range Analyzers() {
		names = append(names, a.Name)
	}
	return names
}

// IgnoreDirective is one parsed //lint:ignore comment. A directive names
// one or more analyzers (comma-separated, no spaces inside the list);
// only the named analyzers are suppressed at the covered lines.
type IgnoreDirective struct {
	Pos       token.Position
	Analyzers []string
	Reason    string

	// used records, per named analyzer, whether the directive actually
	// suppressed a finding during the run. Names that ran but suppressed
	// nothing are reported as badignore findings: a stale suppression
	// silently masks the next real violation on that line.
	used map[string]bool
}

// ignoreSet indexes the unit's parsed directives by the (file, line)
// pairs they cover. Both covered lines of one comment share the same
// *IgnoreDirective so use on either line marks the directive used.
type ignoreSet struct {
	byLine map[string]map[int][]*IgnoreDirective
	all    []*IgnoreDirective // in parse order, for deterministic reports
}

const ignorePrefix = "//lint:ignore"

// parseIgnores collects every //lint:ignore directive in the unit, keyed
// by (file, line) of the code the directive covers: the directive's own
// line and the line below it (so both same-line trailing comments and
// whole-line comments above a statement work).
//
// Malformed directives (missing analyzer list or reason, empty list
// elements) and unknown analyzer names are returned as findings so they
// fail the run instead of silently ignoring nothing.
func parseIgnores(u *Unit) (*ignoreSet, []Finding) {
	known := make(map[string]bool)
	for _, name := range AnalyzerNames() {
		known[name] = true
	}
	ign := &ignoreSet{byLine: make(map[string]map[int][]*IgnoreDirective)}
	var bad []Finding
	add := func(file string, line int, d *IgnoreDirective) {
		if ign.byLine[file] == nil {
			ign.byLine[file] = make(map[int][]*IgnoreDirective)
		}
		ign.byLine[file][line] = append(ign.byLine[file][line], d)
	}
	for _, p := range u.Pkgs {
		for _, f := range p.Files {
			for _, cg := range f.Comments {
				for _, c := range cg.List {
					if !strings.HasPrefix(c.Text, ignorePrefix) {
						continue
					}
					rest := strings.TrimPrefix(c.Text, ignorePrefix)
					pos := u.Fset.Position(c.Pos())
					fields := strings.Fields(rest)
					if len(fields) < 2 {
						bad = append(bad, Finding{
							Pos:      pos,
							Analyzer: "badignore",
							Message:  "malformed directive: want //lint:ignore <analyzer>[,<analyzer>...] <reason>",
						})
						continue
					}
					var names []string
					ok := true
					for _, name := range strings.Split(fields[0], ",") {
						if name == "" {
							bad = append(bad, Finding{
								Pos:      pos,
								Analyzer: "badignore",
								Message:  "malformed directive: empty analyzer name in list",
							})
							ok = false
							break
						}
						if !known[name] {
							bad = append(bad, Finding{
								Pos:      pos,
								Analyzer: "badignore",
								Message: fmt.Sprintf("unknown analyzer %q (have %s)",
									name, strings.Join(AnalyzerNames(), ", ")),
							})
							continue
						}
						names = append(names, name)
					}
					if !ok || len(names) == 0 {
						continue
					}
					d := &IgnoreDirective{
						Pos:       pos,
						Analyzers: names,
						Reason:    strings.Join(fields[1:], " "),
						used:      make(map[string]bool),
					}
					ign.all = append(ign.all, d)
					// Covers the directive's own line (trailing comment)
					// and the next line (comment above the statement).
					add(pos.Filename, pos.Line, d)
					add(pos.Filename, pos.Line+1, d)
				}
			}
		}
	}
	return ign, bad
}

// suppress reports whether some directive covers the finding, marking the
// matching analyzer name used on that directive.
func (ign *ignoreSet) suppress(f Finding) bool {
	hit := false
	for _, d := range ign.byLine[f.Pos.Filename][f.Pos.Line] {
		for _, name := range d.Analyzers {
			if name == f.Analyzer {
				d.used[name] = true
				hit = true
			}
		}
	}
	return hit
}

// unused reports badignore findings for directive names that named an
// analyzer that ran but suppressed nothing. Names of analyzers outside
// the run set are exempt: a -only or -diff run must not invalidate
// directives aimed at the full suite.
func (ign *ignoreSet) unused(ran map[string]bool) []Finding {
	var findings []Finding
	for _, d := range ign.all {
		for _, name := range d.Analyzers {
			if ran[name] && !d.used[name] {
				findings = append(findings, Finding{
					Pos:      d.Pos,
					Analyzer: "badignore",
					Message:  fmt.Sprintf("ignore for %q suppressed nothing; delete the name or the directive", name),
				})
			}
		}
	}
	return findings
}

// Run executes the given analyzers over the unit, applies //lint:ignore
// suppression, and returns the surviving findings sorted by position.
// Directives that name an analyzer in the run set but suppress none of
// its findings are reported as badignore.
func Run(u *Unit, analyzers []*Analyzer) []Finding {
	ign, bad := parseIgnores(u)
	findings := append([]Finding(nil), bad...)
	ran := make(map[string]bool)
	for _, a := range analyzers {
		ran[a.Name] = true
		for _, f := range a.Run(u) {
			if ign.suppress(f) {
				continue
			}
			findings = append(findings, f)
		}
	}
	findings = append(findings, ign.unused(ran)...)
	sort.Slice(findings, func(i, j int) bool {
		a, b := findings[i], findings[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		return a.Analyzer < b.Analyzer
	})
	return findings
}

// ---- shared type helpers used by the analyzers ----

// isNamed reports whether t (after pointer indirection) is the named type
// pkgPath.name.
func isNamed(t types.Type, pkgPath, name string) bool {
	if ptr, ok := t.(*types.Pointer); ok {
		t = ptr.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj != nil && obj.Pkg() != nil && obj.Pkg().Path() == pkgPath && obj.Name() == name
}

// calleeFunc resolves the function or method a call expression invokes,
// or nil for indirect calls through function values, type conversions and
// builtins.
func calleeFunc(info *types.Info, call *ast.CallExpr) *types.Func {
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.SelectorExpr:
		if fn, ok := info.Uses[fun.Sel].(*types.Func); ok {
			return fn
		}
	case *ast.Ident:
		if fn, ok := info.Uses[fun].(*types.Func); ok {
			return fn
		}
	}
	return nil
}

// funcKey returns a stable cross-package identity for a function: its
// types.Func full name, e.g. "(*eclipsemr/internal/cluster.Node).call".
// Identity by string survives the same package being type-checked twice
// (once as a subject, once as a dependency).
func funcKey(fn *types.Func) string { return fn.FullName() }

// exprString renders a (small) expression for use in messages and as a
// mutex identity key.
func exprString(e ast.Expr) string {
	switch e := e.(type) {
	case *ast.Ident:
		return e.Name
	case *ast.SelectorExpr:
		return exprString(e.X) + "." + e.Sel.Name
	case *ast.ParenExpr:
		return exprString(e.X)
	case *ast.IndexExpr:
		return exprString(e.X) + "[" + exprString(e.Index) + "]"
	case *ast.StarExpr:
		return "*" + exprString(e.X)
	case *ast.CallExpr:
		return exprString(e.Fun) + "(...)"
	case *ast.BasicLit:
		return e.Value
	default:
		return "<expr>"
	}
}
