package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

const transportPath = "eclipsemr/internal/transport"

// LockedRPC reports transport RPCs (and calls that transitively reach
// one) issued while a sync.Mutex or sync.RWMutex acquired in the same
// function is still held.
//
// Chord-style stabilization, dhtfs replication and cluster heartbeats all
// RPC their ring neighbors; doing so under a node mutex couples local
// lock hold times to remote nodes' responsiveness. Under chaos latency
// that is a tail-latency amplifier, and when two nodes call each other
// symmetrically it is a distributed deadlock. The project rule is: copy
// what you need, unlock, then call.
//
// The analyzer builds a module-wide call graph seeded at
// internal/transport's Call methods (both the Network interface method
// and every concrete implementation) and propagates "blocking" through
// module functions, so wrappers like a node's typed rpc helper are caught
// too. Lock tracking is per-function and syntactic: a finding means a
// Lock/RLock on some mutex expression textually precedes the call with no
// intervening Unlock on the straight-line path.
func LockedRPC() *Analyzer {
	return &Analyzer{
		Name: "lockedrpc",
		Doc:  "transport RPC issued while holding a sync mutex",
		Run:  runLockedRPC,
	}
}

// isTransportCallSeed reports whether fn is one of the root blocking
// RPCs: a method named Call declared in internal/transport.
func isTransportCallSeed(fn *types.Func) bool {
	return fn.Pkg() != nil && fn.Pkg().Path() == transportPath && fn.Name() == "Call"
}

// isSyncLockMethod classifies fn as a sync.Mutex/RWMutex lock or unlock
// method. acquire is true for Lock/RLock/TryLock/TryRLock.
func isSyncLockMethod(fn *types.Func) (acquire, release bool) {
	if fn.Pkg() == nil || fn.Pkg().Path() != "sync" {
		return false, false
	}
	switch fn.Name() {
	case "Lock", "RLock", "TryLock", "TryRLock":
		return true, false
	case "Unlock", "RUnlock":
		return false, true
	}
	return false, false
}

// blockingSet computes, over the whole unit, the set of module functions
// that (transitively) issue a transport Call. The map value is a short
// human-readable chain ending at the transport seed, for messages.
func blockingSet(u *Unit) map[string]string {
	// Direct callees per declared function, by stable funcKey.
	callees := make(map[string][]*types.Func)
	decls := make(map[string]bool)
	for _, p := range u.Pkgs {
		for _, f := range p.Files {
			for _, d := range f.Decls {
				fd, ok := d.(*ast.FuncDecl)
				if !ok || fd.Body == nil {
					continue
				}
				fn, ok := p.Info.Defs[fd.Name].(*types.Func)
				if !ok {
					continue
				}
				key := funcKey(fn)
				decls[key] = true
				ast.Inspect(fd.Body, func(n ast.Node) bool {
					if call, ok := n.(*ast.CallExpr); ok {
						if callee := calleeFunc(p.Info, call); callee != nil {
							callees[key] = append(callees[key], callee)
						}
					}
					return true
				})
			}
		}
	}
	blocking := make(map[string]string)
	for changed := true; changed; {
		changed = false
		for key, calls := range callees {
			if _, done := blocking[key]; done {
				continue
			}
			for _, callee := range calls {
				ck := funcKey(callee)
				if isTransportCallSeed(callee) {
					blocking[key] = shortFuncName(ck)
					changed = true
					break
				}
				if chain, ok := blocking[ck]; ok && decls[ck] {
					blocking[key] = shortFuncName(ck) + " -> " + chain
					changed = true
					break
				}
			}
		}
	}
	return blocking
}

// shortFuncName strips the module path prefix out of a funcKey for
// readable messages: "(*eclipsemr/internal/cluster.Node).call" becomes
// "(*cluster.Node).call".
func shortFuncName(key string) string {
	key = strings.ReplaceAll(key, "eclipsemr/internal/", "")
	return strings.ReplaceAll(key, "eclipsemr/", "")
}

func runLockedRPC(u *Unit) []Finding {
	blocking := blockingSet(u)
	var findings []Finding
	onCall := func(w *lockWalker, call *ast.CallExpr, fn *types.Func, deferred bool) {
		if len(w.held) == 0 {
			return
		}
		key := funcKey(fn)
		chain, isBlocking := blocking[key]
		if !isBlocking && isTransportCallSeed(fn) {
			isBlocking, chain = true, ""
		}
		if !isBlocking {
			return
		}
		name := shortFuncName(key)
		via := ""
		if chain != "" {
			via = fmt.Sprintf(" (reaches %s)", chain)
		}
		for mutex, lk := range w.held {
			w.findings = append(w.findings, Finding{
				Pos:      w.u.Fset.Position(call.Pos()),
				Analyzer: "lockedrpc",
				Message: fmt.Sprintf(
					"transport RPC %s%s while holding %s (locked at line %d); release the mutex before network I/O",
					name, via, mutex, w.u.Fset.Position(lk.pos).Line),
			})
		}
	}
	for _, p := range u.Pkgs {
		for _, f := range p.Files {
			for _, d := range f.Decls {
				fd, ok := d.(*ast.FuncDecl)
				if !ok || fd.Body == nil {
					continue
				}
				w := newLockWalker(u, p, onCall, nil)
				w.stmts(fd.Body.List)
				findings = append(findings, w.findings...)
			}
		}
	}
	return findings
}

// heldLock is one mutex currently held on the walker's straight-line
// path: where it was locked, the receiver expression, and (when the
// receiver resolves to a named type's field, an embedded mutex, or a
// package-level var) its module-wide lock class for lockorder.
type heldLock struct {
	pos   token.Pos
	expr  string
	class string
}

// lockWalker simulates the straight-line lock state of one function body.
// Branch bodies are analyzed with a copy of the held set (locks acquired
// or released inside a branch do not leak past it); function literals run
// in their own empty lock context unless invoked or deferred in place.
//
// The walker itself only tracks state; analyzers observe it through two
// hooks. onCall fires for every resolved non-mutex call (with the current
// held set on w.held); onAcquire fires just before a Lock/RLock/TryLock
// is recorded, with the lock being taken and the set held before it.
type lockWalker struct {
	u         *Unit
	pkg       *Package
	held      map[string]heldLock // keyed by mutex expr
	onCall    func(w *lockWalker, call *ast.CallExpr, fn *types.Func, deferred bool)
	onAcquire func(w *lockWalker, call *ast.CallExpr, lk heldLock)
	findings  []Finding
}

func newLockWalker(u *Unit, p *Package,
	onCall func(*lockWalker, *ast.CallExpr, *types.Func, bool),
	onAcquire func(*lockWalker, *ast.CallExpr, heldLock)) *lockWalker {
	return &lockWalker{
		u: u, pkg: p,
		held:      make(map[string]heldLock),
		onCall:    onCall,
		onAcquire: onAcquire,
	}
}

func (w *lockWalker) clone() *lockWalker {
	c := newLockWalker(w.u, w.pkg, w.onCall, w.onAcquire)
	for k, v := range w.held {
		c.held[k] = v
	}
	return c
}

// branch analyzes a nested statement in a copied lock context and keeps
// its findings.
func (w *lockWalker) branch(stmts ...ast.Stmt) {
	c := w.clone()
	for _, s := range stmts {
		if s != nil {
			c.stmt(s)
		}
	}
	w.findings = append(w.findings, c.findings...)
}

func (w *lockWalker) stmts(list []ast.Stmt) {
	for _, s := range list {
		w.stmt(s)
	}
}

func (w *lockWalker) stmt(s ast.Stmt) {
	switch s := s.(type) {
	case nil:
	case *ast.BlockStmt:
		w.stmts(s.List)
	case *ast.ExprStmt:
		w.expr(s.X)
	case *ast.AssignStmt:
		for _, e := range s.Rhs {
			w.expr(e)
		}
		for _, e := range s.Lhs {
			w.expr(e)
		}
	case *ast.ReturnStmt:
		for _, e := range s.Results {
			w.expr(e)
		}
	case *ast.IncDecStmt:
		w.expr(s.X)
	case *ast.SendStmt:
		w.expr(s.Chan)
		w.expr(s.Value)
	case *ast.DeclStmt:
		if gd, ok := s.Decl.(*ast.GenDecl); ok {
			for _, spec := range gd.Specs {
				if vs, ok := spec.(*ast.ValueSpec); ok {
					for _, e := range vs.Values {
						w.expr(e)
					}
				}
			}
		}
	case *ast.DeferStmt:
		// A deferred Unlock keeps the mutex held to the end of the
		// function (by design); a deferred blocking call is evaluated at
		// return, conservatively treated as running under current locks.
		w.call(s.Call, true)
	case *ast.GoStmt:
		// The goroutine body runs in its own lock context; only the
		// argument expressions are evaluated here.
		for _, e := range s.Call.Args {
			w.expr(e)
		}
		if lit, ok := s.Call.Fun.(*ast.FuncLit); ok {
			w.freshContext(lit)
		}
	case *ast.IfStmt:
		if s.Init != nil {
			w.stmt(s.Init)
		}
		w.expr(s.Cond)
		w.branch(s.Body)
		w.branch(s.Else)
	case *ast.ForStmt:
		if s.Init != nil {
			w.stmt(s.Init)
		}
		if s.Cond != nil {
			w.expr(s.Cond)
		}
		w.branch(s.Body, s.Post)
	case *ast.RangeStmt:
		w.expr(s.X)
		w.branch(s.Body)
	case *ast.SwitchStmt:
		if s.Init != nil {
			w.stmt(s.Init)
		}
		if s.Tag != nil {
			w.expr(s.Tag)
		}
		for _, c := range s.Body.List {
			if cc, ok := c.(*ast.CaseClause); ok {
				w.branch(cc.Body...)
			}
		}
	case *ast.TypeSwitchStmt:
		if s.Init != nil {
			w.stmt(s.Init)
		}
		w.stmt(s.Assign)
		for _, c := range s.Body.List {
			if cc, ok := c.(*ast.CaseClause); ok {
				w.branch(cc.Body...)
			}
		}
	case *ast.SelectStmt:
		for _, c := range s.Body.List {
			if cc, ok := c.(*ast.CommClause); ok {
				w.branch(append([]ast.Stmt{cc.Comm}, cc.Body...)...)
			}
		}
	case *ast.LabeledStmt:
		w.stmt(s.Stmt)
	}
}

// expr walks an expression in source order, dispatching calls and
// isolating non-invoked function literals.
func (w *lockWalker) expr(e ast.Expr) {
	if e == nil {
		return
	}
	switch e := e.(type) {
	case *ast.CallExpr:
		if lit, ok := e.Fun.(*ast.FuncLit); ok {
			// Immediately-invoked literal runs under current locks.
			for _, a := range e.Args {
				w.expr(a)
			}
			w.stmts(lit.Body.List)
			return
		}
		w.call(e, false)
	case *ast.FuncLit:
		w.freshContext(e)
	case *ast.ParenExpr:
		w.expr(e.X)
	case *ast.SelectorExpr:
		w.expr(e.X)
	case *ast.StarExpr:
		w.expr(e.X)
	case *ast.UnaryExpr:
		w.expr(e.X)
	case *ast.BinaryExpr:
		w.expr(e.X)
		w.expr(e.Y)
	case *ast.IndexExpr:
		w.expr(e.X)
		w.expr(e.Index)
	case *ast.SliceExpr:
		w.expr(e.X)
		w.expr(e.Low)
		w.expr(e.High)
		w.expr(e.Max)
	case *ast.TypeAssertExpr:
		w.expr(e.X)
	case *ast.CompositeLit:
		for _, el := range e.Elts {
			w.expr(el)
		}
	case *ast.KeyValueExpr:
		w.expr(e.Key)
		w.expr(e.Value)
	}
}

// freshContext analyzes a function literal body in a new, lock-free
// context (it executes later, not under the current locks).
func (w *lockWalker) freshContext(lit *ast.FuncLit) {
	c := newLockWalker(w.u, w.pkg, w.onCall, w.onAcquire)
	c.stmts(lit.Body.List)
	w.findings = append(w.findings, c.findings...)
}

// call classifies one call: mutex state change (tracked here) or a
// regular call (handed to the analyzer's onCall hook).
func (w *lockWalker) call(call *ast.CallExpr, deferred bool) {
	for _, a := range call.Args {
		w.expr(a)
	}
	fn := calleeFunc(w.pkg.Info, call)
	if fn == nil {
		if sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr); ok {
			w.expr(sel.X)
		}
		return
	}
	if acquire, release := isSyncLockMethod(fn); acquire || release {
		sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
		if !ok {
			return
		}
		mutex := exprString(sel.X)
		if acquire {
			lk := heldLock{pos: call.Pos(), expr: mutex, class: lockClass(w.pkg, sel)}
			if w.onAcquire != nil {
				w.onAcquire(w, call, lk)
			}
			w.held[mutex] = lk
		} else if !deferred {
			delete(w.held, mutex)
		}
		return
	}
	if w.onCall != nil {
		w.onCall(w, call, fn, deferred)
	}
}

// lockClass classifies a mutex receiver expression into a module-wide
// lock class: a named type's field ("(mapreduce.Driver).mu"), an
// embedded mutex ("(transport.Server).Mutex"), or a package-level var
// ("transport.connMu"). Function-local mutexes and unresolvable
// receivers return "" — they cannot participate in cross-function
// ordering.
func lockClass(p *Package, sel *ast.SelectorExpr) string {
	switch x := ast.Unparen(sel.X).(type) {
	case *ast.SelectorExpr:
		// pkg.var.Lock(): a package-level mutex qualified by import.
		if id, ok := ast.Unparen(x.X).(*ast.Ident); ok {
			if pn, ok := p.Info.Uses[id].(*types.PkgName); ok {
				return pn.Imported().Name() + "." + x.Sel.Name
			}
		}
		// X.f.Lock(): field f on the named type of X.
		if tv, ok := p.Info.Types[x.X]; ok {
			if name := namedTypeName(tv.Type); name != "" {
				return "(" + name + ")." + x.Sel.Name
			}
		}
	case *ast.Ident:
		if v, ok := p.Info.Uses[x].(*types.Var); ok {
			if v.Pkg() != nil && v.Parent() == v.Pkg().Scope() {
				return v.Pkg().Name() + "." + v.Name()
			}
			// s.Lock() on a named type embedding the mutex.
			if name := namedTypeName(v.Type()); name != "" && !strings.HasPrefix(name, "sync.") {
				return "(" + name + ").Mutex"
			}
		}
	}
	return ""
}

// namedTypeName renders the (pointer-indirected) named type of t as
// "pkg.Type", or "" when t is not a named type.
func namedTypeName(t types.Type) string {
	if ptr, ok := t.(*types.Pointer); ok {
		t = ptr.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok {
		return ""
	}
	obj := named.Obj()
	if obj == nil {
		return ""
	}
	if obj.Pkg() == nil {
		return obj.Name()
	}
	return obj.Pkg().Name() + "." + obj.Name()
}
