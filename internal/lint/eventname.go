package lint

import (
	"go/ast"
	"go/constant"
	"go/types"
)

const eventsPath = "eclipsemr/internal/events"

// EventName enforces statically known event names at every
// events.Log.Emit site. The event vocabulary is the debugging contract:
// `eclipse-cli events` filters on it, the deterministic chaos e2e pins
// exact sequences of it, and debug bundles are diffed across runs by it.
// A name assembled at runtime fragments that vocabulary silently —
// grep finds nothing, timelines stop lining up — so the analyzer makes
// it a build-time error, exactly as metricname does for metric names.
// Variable data belongs in the event's Job/Task/Detail fields.
func EventName() *Analyzer {
	return &Analyzer{
		Name: "eventname",
		Doc:  "events.Log.Emit uses constant event names",
		Run:  runEventName,
	}
}

func runEventName(u *Unit) []Finding {
	var findings []Finding
	for _, p := range u.Pkgs {
		if p.Path == eventsPath {
			continue // the log implementation passes names through parameters
		}
		rangeConsts := constRangeVars(p)
		for _, f := range p.Files {
			ast.Inspect(f, func(n ast.Node) bool {
				call, ok := n.(*ast.CallExpr)
				if !ok {
					return true
				}
				sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
				if !ok || sel.Sel.Name != "Emit" || len(call.Args) < 2 {
					return true
				}
				fn, ok := p.Info.Uses[sel.Sel].(*types.Func)
				if !ok || fn.Pkg() == nil || fn.Pkg().Path() != eventsPath {
					return true
				}
				recv := fn.Type().(*types.Signature).Recv()
				if recv == nil || !isNamed(recv.Type(), eventsPath, "Log") {
					return true
				}
				arg := ast.Unparen(call.Args[1])
				if tv, ok := p.Info.Types[arg]; ok && tv.Value != nil && tv.Value.Kind() == constant.String {
					return true
				}
				if id, ok := arg.(*ast.Ident); ok {
					if _, ok := rangeConsts[p.Info.Uses[id]]; ok {
						return true
					}
				}
				findings = append(findings, Finding{
					Pos:      u.Fset.Position(arg.Pos()),
					Analyzer: "eventname",
					Message: "event name passed to Log.Emit is not statically known; " +
						"use a constant and put variable data in the event fields (Job/Task/Detail)",
				})
				return true
			})
		}
	}
	return findings
}
