package droppederr

import (
	"context"
	"eclipsemr/internal/hashing"
	"eclipsemr/internal/transport"
)

// bestEffortNotify documents why the drop is safe instead of checking.
func bestEffortNotify(net transport.Network, to hashing.NodeID) {
	//lint:ignore droppederr best-effort wakeup; receiver polls on a timer anyway
	net.Call(context.Background(), to, "wake", nil)
}
