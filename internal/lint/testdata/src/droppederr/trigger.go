// Package droppederr is golden input for the droppederr analyzer.
package droppederr

import (
	"context"
	"eclipsemr/internal/dhtfs"
	"eclipsemr/internal/hashing"
	"eclipsemr/internal/transport"
)

// fireAndForget drops a transport reply and error on the floor: the
// caller cannot tell a delivered request from a partitioned one.
func fireAndForget(net transport.Network, to hashing.NodeID) {
	net.Call(context.Background(), to, "ping", nil) // want "discards the error"
}

// storeWrite loses a block-write failure: the block looks durable but
// was never stored.
func storeWrite(store *dhtfs.Store, k hashing.Key, data []byte) {
	store.PutBlock(k, data) // want "discards the error"
}

// deferredClose is the classic shutdown leak: a Close error on a
// buffered connection is the last chance to learn a flush failed.
func deferredClose(net transport.Network) {
	defer net.Close() // want "defer discards the error"
}

// asyncSend loses the error in a goroutine nobody joins.
func asyncSend(net transport.Network, to hashing.NodeID) {
	go net.Call(context.Background(), to, "push", nil) // want "go statement discards the error"
}
