package droppederr

import (
	"context"
	"eclipsemr/internal/dhtfs"
	"eclipsemr/internal/hashing"
	"eclipsemr/internal/transport"
)

// checked handles the error; nothing to report.
func checked(net transport.Network, to hashing.NodeID) error {
	if _, err := net.Call(context.Background(), to, "ping", nil); err != nil {
		return err
	}
	return nil
}

// explicitDiscard is visible in review and greppable, so it is allowed:
// the analyzer only hunts the invisible drops.
func explicitDiscard(store *dhtfs.Store, k hashing.Key, data []byte) {
	_ = store.PutBlock(k, data) // best-effort prewarm; owner re-replicates
}

// noError calls a boundary function with no error result.
func noError(store *dhtfs.Store, k hashing.Key) bool {
	return store.HasBlock(k)
}
