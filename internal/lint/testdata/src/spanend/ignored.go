package spanend

import (
	"context"

	"eclipsemr/internal/trace"
)

// processLifetime documents why the span intentionally never ends: it
// marks the whole process run and collection happens at exit.
func processLifetime(t *trace.Tracer, ctx context.Context) {
	//lint:ignore spanend process-lifetime marker span; collected live at shutdown, never ended
	_, sp := t.StartSpan(ctx, "node.lifetime")
	sp.Annotate("role", "worker")
}
