// Package spanend is golden input for the spanend analyzer.
package spanend

import (
	"context"

	"eclipsemr/internal/trace"
)

// discarded drops the Start result on the floor: neither the context
// nor the span survives the statement, so End can never run.
func discarded(t *trace.Tracer, ctx context.Context) {
	t.StartRoot(ctx, "job-1", "driver.job") // want "discarded"
}

// blankSpan keeps the context but throws the span away.
func blankSpan(t *trace.Tracer, ctx context.Context) context.Context {
	ctx, _ = t.StartSpan(ctx, "map.read") // want "blank identifier"
	return ctx
}

// leaked binds the span but never ends it: the only uses are method
// calls that do not finish it, so it never reaches the ring buffer.
func leaked(t *trace.Tracer, ctx context.Context) {
	_, sp := t.StartSpan(ctx, "map.compute") // want "never ended"
	sp.Annotate("cache", "miss")
}

// leakedAt is the same hole through the reconstructed-start variant.
func leakedAt(t *trace.Tracer, ctx context.Context) {
	_, sp := t.StartSpanAt(ctx, "sched.queue_wait", 100) // want "never ended"
	sp.Annotate("task", "t1")
	sp.Eventf("retry attempt=%d", 1)
}
