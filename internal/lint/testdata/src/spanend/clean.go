package spanend

import (
	"context"

	"eclipsemr/internal/trace"
)

// deferred is the sanctioned shape: the span ends on every path.
func deferred(t *trace.Tracer, ctx context.Context) {
	ctx, sp := t.StartSpan(ctx, "task.map")
	defer sp.End()
	work(ctx)
}

// direct ends the span inline before an error check, as the read-stage
// instrumentation does.
func direct(t *trace.Tracer, ctx context.Context) error {
	_, sp := t.StartSpan(ctx, "map.read")
	err := readBlock()
	sp.End()
	if err != nil {
		return err
	}
	return nil
}

// branches ends the span on each arm; one End reference is enough for
// the analyzer — path-sensitivity is the reviewer's job.
func branches(t *trace.Tracer, ctx context.Context, hit bool) {
	_, sp := t.StartSpan(ctx, "cache.get")
	if hit {
		sp.Annotate("cache", "hit")
		sp.End()
		return
	}
	sp.Annotate("cache", "miss")
	sp.End()
}

// closureEnd finishes the span from a goroutine's closure.
func closureEnd(t *trace.Tracer, ctx context.Context, done chan struct{}) {
	_, sp := t.StartSpan(ctx, "shuffle.recv")
	go func() {
		<-done
		sp.End()
	}()
}

// returned hands the span to the caller, which owns ending it.
func returned(t *trace.Tracer, ctx context.Context) (context.Context, *trace.Span) {
	return t.StartSpan(ctx, "reduce.compute")
}

// passedOn escapes the span into a helper that ends it.
func passedOn(t *trace.Tracer, ctx context.Context) {
	_, sp := t.StartSpan(ctx, "reduce.write")
	finish(sp)
}

// stored escapes the span into a struct that outlives the function.
type pending struct{ sp *trace.Span }

func stored(t *trace.Tracer, ctx context.Context, p *pending) {
	_, sp := t.StartSpan(ctx, "fs.write_block")
	p.sp = sp
}

func finish(sp *trace.Span) { sp.End() }

func work(context.Context) {}

func readBlock() error { return nil }
