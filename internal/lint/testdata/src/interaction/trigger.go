// Package interaction exercises two analyzers on one function: lockedrpc
// flags the RPC made under a mutex, and lockorder flags the ABBA cycle
// the same function participates in. Both must fire independently — the
// custom interaction test asserts the exact (line, analyzer) pairs.
package interaction

import (
	"context"
	"sync"

	"eclipsemr/internal/hashing"
	"eclipsemr/internal/transport"
)

type peer struct {
	mu   sync.Mutex
	wal  sync.Mutex
	net  transport.Network
	succ hashing.NodeID
}

// lockedFanout holds mu, acquires wal (establishing mu -> wal), and does
// an RPC while both are held.
func lockedFanout(p *peer) {
	p.mu.Lock()
	defer p.mu.Unlock()
	p.wal.Lock()                                          // lockorder: cycle with reverse below
	p.net.Call(context.Background(), p.succ, "ping", nil) // lockedrpc: RPC under a mutex
	p.wal.Unlock()
}

// reverse acquires wal -> mu, completing the cycle.
func reverse(p *peer) {
	p.wal.Lock()
	defer p.wal.Unlock()
	p.mu.Lock() // lockorder: cycle with lockedFanout
	p.mu.Unlock()
}
