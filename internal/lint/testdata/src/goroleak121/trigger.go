// Package goroleak121 pins the pre-go1.22 loop-variable capture check:
// this nested module declares go 1.21, where all loop iterations share
// one variable, so a goroutine capturing it observes the last value.
package goroleak121

func use(int) {}

func spawnAll(items []int, stop chan struct{}) {
	for _, it := range items {
		go func() { // want "captures loop variable it"
			<-stop
			use(it)
		}()
	}
}

// byValue passes the loop variable as an argument: each goroutine gets
// its own copy, so no capture is flagged.
func byValue(items []int, stop chan struct{}) {
	for _, it := range items {
		go func(it int) {
			<-stop
			use(it)
		}(it)
	}
}
