module goroleak121

go 1.21
