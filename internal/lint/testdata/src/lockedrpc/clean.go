package lockedrpc

import "context"

// unlockFirst is the sanctioned shape: snapshot state under the lock,
// release, then do network I/O.
func unlockFirst(s *srv) {
	s.mu.Lock()
	succ := s.succ
	s.mu.Unlock()
	if _, err := s.net.Call(context.Background(), succ, "ping", nil); err != nil {
		return
	}
}

// goroutineBody runs in its own lock context: the spawn site holds the
// mutex, the RPC does not.
func goroutineBody(s *srv) {
	s.mu.Lock()
	defer s.mu.Unlock()
	go func() {
		if _, err := s.net.Call(context.Background(), s.succ, "ping", nil); err != nil {
			return
		}
	}()
}

// lockAfter acquires the mutex only after the RPC returns.
func lockAfter(s *srv) {
	if _, err := s.net.Call(context.Background(), s.succ, "ping", nil); err != nil {
		return
	}
	s.mu.Lock()
	s.succ = ""
	s.mu.Unlock()
}
