// Package lockedrpc is golden input for the lockedrpc analyzer.
package lockedrpc

import (
	"context"
	"sync"

	"eclipsemr/internal/hashing"
	"eclipsemr/internal/transport"
)

type srv struct {
	mu   sync.Mutex
	rwmu sync.RWMutex
	net  transport.Network
	succ hashing.NodeID
}

// direct holds the mutex across a raw transport call.
func direct(s *srv) {
	s.mu.Lock()
	s.net.Call(context.Background(), s.succ, "ping", nil) // want "transport RPC"
	s.mu.Unlock()
}

// viaDefer holds the mutex for the whole function via defer.
func viaDefer(s *srv) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.rpc() // want "reaches"
}

// readLocked: an RLock held across an RPC still starves writers for as
// long as the remote side takes to answer.
func readLocked(s *srv) {
	s.rwmu.RLock()
	defer s.rwmu.RUnlock()
	s.net.Call(context.Background(), s.succ, "ping", nil) // want "transport RPC"
}

// rpc is a typed helper: blocking by propagation, so callers holding a
// lock are flagged even though no transport symbol appears at the call
// site.
func (s *srv) rpc() {
	if _, err := s.net.Call(context.Background(), s.succ, "ping", nil); err != nil {
		return
	}
}
