package lockedrpc

import "context"

// bootstrapBroadcast is a deliberate exception: during single-threaded
// bootstrap no other goroutine can contend, and the suppression records
// that argument.
func bootstrapBroadcast(s *srv) {
	s.mu.Lock()
	defer s.mu.Unlock()
	//lint:ignore lockedrpc bootstrap runs single-threaded before Start, nothing can contend
	s.net.Call(context.Background(), s.succ, "view", nil)
}
