// Package eventname is golden input for the eventname analyzer.
package eventname

import "eclipsemr/internal/events"

// dynamic assembles an event name at runtime, which fragments the event
// vocabulary the CLI filters and the deterministic e2e pin.
func dynamic(l *events.Log, task string) {
	l.Emit(events.KindTask, "map."+task, events.F{}) // want "not statically known"
}

// variable passes a name through a plain variable the analyzer cannot
// prove constant.
func variable(l *events.Log, name string) {
	l.Emit(events.KindJob, name, events.F{Job: "j"}) // want "not statically known"
}
