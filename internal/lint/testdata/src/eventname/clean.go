package eventname

import "eclipsemr/internal/events"

const finishName = "map.finish"

// constants in any constant form are fine; variable data belongs in the
// event fields.
func constants(l *events.Log, task string) {
	l.Emit(events.KindTask, "map.dispatch", events.F{Task: task})
	l.Emit(events.KindTask, finishName, events.F{Task: task})
	l.Emit(events.KindShuffle, "shuffle."+"batch", events.F{})
}

// preCreate mirrors the registries' idiom: a range over a literal of
// constants is statically known.
func preCreate(l *events.Log) {
	for _, name := range []string{"job.submit", "job.done"} {
		l.Emit(events.KindJob, name, events.F{})
	}
}
