package eventname

import "eclipsemr/internal/events"

// forward is a nil-safe emission wrapper (the simulator's idiom): the
// name flows through a parameter, every caller passes a constant, and
// the suppression records why that is safe.
func forward(l *events.Log, k events.Kind, name string, f events.F) {
	//lint:ignore eventname emission wrapper; every caller passes a constant name
	l.Emit(k, name, f)
}
