package goroleak

import (
	"context"
	"sync"
)

// ctxParam: the spawned body waits on a caller-supplied context.
func ctxParam(ctx context.Context) {
	go func(ctx context.Context) {
		<-ctx.Done()
	}(ctx)
}

// captured: a context captured from the enclosing scope counts the same.
func captured(ctx context.Context, work func(context.Context)) {
	go func() {
		work(ctx)
	}()
}

// receive: a channel receive is unblocked by a close.
func receive(stop chan struct{}, work func()) {
	go func() {
		for {
			work()
			<-stop
		}
	}()
}

// rangeChan: ranging over a channel ends when the sender closes it.
func rangeChan(jobs chan int, work func(int)) {
	go func() {
		for j := range jobs {
			work(j)
		}
	}()
}

// joined: a WaitGroup.Done marks a join point the spawner waits on.
func joined(wg *sync.WaitGroup, work func()) {
	wg.Add(1)
	go func() {
		defer wg.Done()
		work()
	}()
}

// runner carries its evidence in the named callee's body.
func runner(ctx context.Context) {
	<-ctx.Done()
}

func namedEvidence(ctx context.Context) {
	go runner(ctx)
}

// worker loops until its stop channel closes.
type worker struct{ stop chan struct{} }

func (w *worker) loop() {
	<-w.stop
}

// wrapped shows no evidence in the spawned literal itself; one level of
// callee expansion finds the receive inside loop.
func wrapped(w *worker) {
	go func() {
		w.loop()
	}()
}
