// Package goroleak is golden input for the goroleak analyzer: every line
// marked `want` must produce a diagnostic.
package goroleak

// noEvidence spawns a loop with no ctx, channel, select or WaitGroup in
// sight — nothing can ever stop it.
func noEvidence(work func()) {
	go func() { // want "no visible termination path"
		for {
			work()
		}
	}()
}

// spin is a named leak: the callee body is visible and shows nothing.
func spin() {
	for {
	}
}

func named() {
	go spin() // want "no visible termination path"
}

// notVisible spawns a function value: the body cannot be inspected, so
// nothing is provable about its lifetime.
func notVisible(f func()) {
	go f() // want "not statically visible"
}

// buriedSelect: the select lives in a nested literal the body only
// registers; it proves nothing about the spawned loop itself.
func buriedSelect(register func(func())) {
	go func() { // want "no visible termination path"
		register(func() {
			select {}
		})
		for {
		}
	}()
}
