package goroleak

// ignoredSpawn documents why its goroutine's lifetime is bounded even
// though no evidence is visible to the analyzer.
func ignoredSpawn(work func()) {
	//lint:ignore goroleak golden suppression: work panics after one call, bounding the loop
	go func() {
		for {
			work()
		}
	}()
}
