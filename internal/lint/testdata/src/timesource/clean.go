package sim

import (
	"math/rand"
	"time"
)

// virtualClock is the sanctioned shape: time is a model variable and
// randomness comes from an explicitly seeded generator.
type virtualClock struct {
	now time.Duration
	rng *rand.Rand
}

func newVirtualClock(seed int64) *virtualClock {
	return &virtualClock{rng: rand.New(rand.NewSource(seed))}
}

func (c *virtualClock) advance(d time.Duration) { c.now += d }

func (c *virtualClock) jitter() time.Duration {
	// Methods on a seeded *rand.Rand are fine; only the global source is
	// banned.
	return time.Duration(c.rng.Int63n(int64(time.Millisecond)))
}
