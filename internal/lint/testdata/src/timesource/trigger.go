// Package sim is golden input for the timesource analyzer (the analyzer
// matches the simulator packages by name as well as import path).
package sim

import (
	"math/rand"
	"time"
)

// tick leaks the wall clock into what must be virtual time.
func tick() time.Duration {
	start := time.Now()         // want "time.Now reads the wall clock"
	time.Sleep(time.Nanosecond) // want "time.Sleep reads the wall clock"
	return time.Since(start)    // want "time.Since reads the wall clock"
}

// draw uses the process-global rand source, whose sequence depends on
// every other caller in the binary.
func draw() int {
	return rand.Intn(10) // want "rand.Intn draws from the global source"
}
