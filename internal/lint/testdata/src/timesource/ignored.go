package sim

import "time"

// wallProgress is a deliberate exception: a progress log line for humans
// watching a long sweep, never fed back into the model.
func wallProgress() time.Time {
	//lint:ignore timesource wall time only feeds a human progress log, not the model
	return time.Now()
}
