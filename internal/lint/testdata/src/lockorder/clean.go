package lockorder

import "sync"

type c struct{ mu sync.Mutex }
type d struct{ mu sync.Mutex }

// cdFirst and cdSecond both take C before D: a consistent rank, no cycle.
func cdFirst(x *c, y *d) {
	x.mu.Lock()
	defer x.mu.Unlock()
	y.mu.Lock()
	y.mu.Unlock()
}

func cdSecond(x *c, y *d) {
	x.mu.Lock()
	y.mu.Lock()
	y.mu.Unlock()
	x.mu.Unlock()
}

// spawned acquisitions run on a new goroutine, not under the spawner's
// locks: no D -> C edge, so the C -> D order above stays acyclic.
func spawn(x *c, y *d) {
	y.mu.Lock()
	defer y.mu.Unlock()
	go func() {
		x.mu.Lock()
		x.mu.Unlock()
	}()
}

// sequential acquisitions of unordered classes never overlap: releasing
// before taking the next lock records no edge at all.
func sequential(x *c, y *d) {
	y.mu.Lock()
	y.mu.Unlock()
	x.mu.Lock()
	x.mu.Unlock()
}
