// Package lockorder is golden input for the lockorder analyzer: every
// line marked `want` must produce a diagnostic.
package lockorder

import "sync"

type a struct{ mu sync.Mutex }
type b struct{ mu sync.Mutex }

// ab acquires A then B.
func ab(x *a, y *b) {
	x.mu.Lock()
	defer x.mu.Unlock()
	y.mu.Lock() // want "lock order cycle"
	y.mu.Unlock()
}

// ba acquires B then A — the reverse order; together with ab this is the
// classic ABBA deadlock.
func ba(x *a, y *b) {
	y.mu.Lock()
	defer y.mu.Unlock()
	x.mu.Lock() // want "lock order cycle"
	x.mu.Unlock()
}

// lockB acquires B on its own; harmless in isolation.
func lockB(y *b) {
	y.mu.Lock()
	y.mu.Unlock()
}

// abViaHelper establishes the A -> B edge through a call: the summary
// fixpoint propagates lockB's acquisition to this call site.
func abViaHelper(x *a, y *b) {
	x.mu.Lock()
	defer x.mu.Unlock()
	lockB(y) // want "lockorder.lockB"
}

// relock re-acquires the very mutex it already holds: sync mutexes are
// not reentrant, so this deadlocks unconditionally.
func relock(x *a) {
	x.mu.Lock()
	x.mu.Lock() // want "not reentrant"
	x.mu.Unlock()
	x.mu.Unlock()
}
