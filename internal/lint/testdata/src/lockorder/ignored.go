package lockorder

import "sync"

type e struct{ mu sync.Mutex }
type f struct{ mu sync.Mutex }

// ef and fe take the two locks in opposite orders, which would be a
// cycle; the suppressions record the (contrived) argument for it.
func ef(x *e, y *f) {
	x.mu.Lock()
	defer x.mu.Unlock()
	//lint:ignore lockorder golden suppression: the opposing order below never runs concurrently with this one
	y.mu.Lock()
	y.mu.Unlock()
}

func fe(x *e, y *f) {
	y.mu.Lock()
	defer y.mu.Unlock()
	//lint:ignore lockorder golden suppression: the opposing order above never runs concurrently with this one
	x.mu.Lock()
	x.mu.Unlock()
}
