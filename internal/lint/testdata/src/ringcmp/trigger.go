// Package ringcmp is golden input for the ringcmp analyzer: every line
// marked `want` must produce a diagnostic.
package ringcmp

import "eclipsemr/internal/hashing"

// owns is the classic broken ownership test: correct only when the arc
// does not wrap past zero.
func owns(k, start, end hashing.Key) bool {
	return start < k && k <= end // want "between hashing.Key values ignores ring wraparound"
}

func closer(a, b, target hashing.Key) bool {
	return target-a >= target-b // want "raw >= between hashing.Key"
}

func mixed(k hashing.Key) bool {
	return k > hashing.KeyOfString("pivot") // want "raw > between hashing.Key"
}
