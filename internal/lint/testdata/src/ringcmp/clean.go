package ringcmp

import "eclipsemr/internal/hashing"

// ownsClean is the sanctioned form: arc membership through the hashing
// helpers, relative order through Distance (a uint64, not a Key).
func ownsClean(k, start, end hashing.Key) bool {
	return hashing.Between(k, start, end)
}

func closerClean(a, b, target hashing.Key) bool {
	return hashing.Distance(a, target) < hashing.Distance(b, target)
}

// equality on keys is always well defined and not flagged.
func same(a, b hashing.Key) bool { return a == b }

// comparisons between plain integers are none of ringcmp's business.
func plain(a, b uint64) bool { return a < b }
