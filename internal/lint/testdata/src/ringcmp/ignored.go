package ringcmp

import "eclipsemr/internal/hashing"

// sortKeys orders keys for a deterministic dump, where ordinal order is
// the point; the suppression keeps the file finding-free.
func sortKeys(a, b hashing.Key) bool {
	//lint:ignore ringcmp ordinal order is intentional for a stable debug dump
	return a < b
}

func sortKeysTrailing(a, b hashing.Key) bool {
	return a < b //lint:ignore ringcmp same-line suppression form
}
