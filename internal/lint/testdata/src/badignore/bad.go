// Package badignore holds malformed suppression directives; each must be
// reported rather than silently ignoring nothing.
package badignore

//lint:ignore ringcmp
func missingReason() {}

//lint:ignore nosuchanalyzer the analyzer name is wrong
func unknownAnalyzer() {}
