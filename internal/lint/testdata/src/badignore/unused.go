package badignore

import "eclipsemr/internal/hashing"

// unusedName lists two analyzers but only ringcmp fires here: the stale
// droppederr entry must be reported as suppressing nothing.
func unusedName(k, start, end hashing.Key) bool {
	//lint:ignore ringcmp,droppederr golden: the ringcmp half is real, the droppederr half is stale
	return start < k && k <= end
}
