package metricname

import "eclipsemr/internal/metrics"

// perMethod mirrors the transport retry layer's per-RPC-method histogram
// family: dynamic by design, with the name space bounded by the cluster's
// method set, so the suppression records why it is safe.
func perMethod(reg *metrics.Registry, method string) {
	//lint:ignore metricname per-method family; names bounded by the fixed RPC method set
	reg.Histogram("rpc." + method + "_ns").Observe(1)
}
