// Package metricname is golden input for the metricname analyzer.
package metricname

import "eclipsemr/internal/metrics"

// dynamic builds a metric name at runtime, which defeats both duplicate
// checking and dashboard stability.
func dynamic(reg *metrics.Registry, shard string) {
	reg.Counter("shard." + shard + ".ops").Inc() // want "not statically known"
}

// collide registers one name with two kinds; the second site is the
// error (the first fixes the kind).
func collide(reg *metrics.Registry) {
	reg.Counter("dup.metric").Inc()
	reg.Gauge("dup.metric").Set(1) // want "registered as gauge here but as counter"
}
