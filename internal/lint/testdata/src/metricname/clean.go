package metricname

import "eclipsemr/internal/metrics"

const opsName = "clean.ops"

// constant names in any constant form are fine, as is re-registering the
// same name with the same kind.
func constants(reg *metrics.Registry) {
	reg.Counter(opsName).Inc()
	reg.Counter("clean." + "concat").Inc()
	reg.Gauge("clean.depth").Set(3)
	reg.Histogram("clean.wait_ns").Observe(1)
	reg.Counter(opsName).Inc()
}

// preCreate is the registries' idiom for making counters visible before
// first increment; a range over a literal of constants is statically
// known.
func preCreate(reg *metrics.Registry) {
	for _, name := range []string{"clean.a", "clean.b", "clean.c"} {
		reg.Counter(name)
	}
}
