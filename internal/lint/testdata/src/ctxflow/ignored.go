package ctxflow

import "context"

// root is this package's deliberate context root; the suppression
// records why severing is intended here.
func root() context.Context {
	//lint:ignore ctxflow golden suppression: a deliberate root at a handler boundary
	return context.Background()
}
