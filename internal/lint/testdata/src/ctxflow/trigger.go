// Package ctxflow is golden input for the ctxflow analyzer: every line
// marked `want` must produce a diagnostic.
package ctxflow

import (
	"context"
	"time"
)

// holder stores a context beyond the call that supplied it.
type holder struct {
	ctx context.Context // want "stored in struct field"
	n   int
}

// mint creates a root context below an entry point.
func mint() context.Context {
	return context.Background() // want "severs cancellation"
}

// todo is the same break spelled TODO.
func todo() context.Context {
	return context.TODO() // want "severs cancellation"
}

// sleepy ignores its caller's cancellation for the whole sleep.
func sleepy(ctx context.Context) error {
	time.Sleep(time.Millisecond) // want "ignores cancellation"
	return ctx.Err()
}

// litSleepy: a ctx-aware literal inside a plain function is held to the
// same rule.
func litSleepy() {
	f := func(ctx context.Context) {
		time.Sleep(time.Millisecond) // want "ignores cancellation"
		_ = ctx
	}
	f(context.TODO()) // want "severs cancellation"
}
