package ctxflow

import (
	"context"
	"time"
)

// threaded passes the caller's ctx down instead of minting one.
func threaded(ctx context.Context) error {
	return wait(ctx, time.Millisecond)
}

// wait is the sanctioned cancellable sleep: a timer raced against
// ctx.Done.
func wait(ctx context.Context, d time.Duration) error {
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-t.C:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}

// plainSleep is not ctx-aware; a bare sleep here has no cancellation to
// ignore.
func plainSleep() {
	time.Sleep(time.Microsecond)
}
