package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
)

// LockOrder builds the module-wide mutex-acquisition graph and reports
// cycles as potential deadlocks.
//
// Mutexes are grouped into lock classes — a named type's field
// ("(mapreduce.Driver).mu"), an embedded mutex, or a package-level var;
// function-local mutexes have no cross-function ordering and are
// excluded. An edge A -> B is recorded when class B is acquired while a
// class-A lock is held, either directly in one function or through a
// statically resolved call whose callee (transitively, via the same
// wrapper-following fixpoint lockedrpc uses) acquires B. Two goroutines
// taking the same pair of locks in opposite orders is the classic ABBA
// deadlock: each holds what the other wants, forever. Keeping the graph
// acyclic — a total lock rank, recorded in DESIGN.md — makes that
// impossible by construction.
//
// Same-class edges are skipped (two instances of one type cannot be
// ordered statically) except for the guaranteed case: re-acquiring the
// very same mutex expression already held, which self-deadlocks because
// sync mutexes are not reentrant.
//
// Limits: calls through interfaces and stored function values are not
// followed, and go statements start a new goroutine whose acquisitions
// do not happen under the spawner's locks (the spawned body is analyzed
// in its own context).
func LockOrder() *Analyzer {
	return &Analyzer{
		Name: "lockorder",
		Doc:  "mutex-acquisition graph must stay acyclic (potential deadlock)",
		Run:  runLockOrder,
	}
}

// lockEdgeSite is one source location establishing an A-before-B edge.
type lockEdgeSite struct {
	pos token.Pos
	via string // callee chain for call-propagated edges, "" for direct
}

type lockPair struct{ from, to string }

// acquireSummaries computes, per declared function, the set of lock
// classes the function (transitively) acquires. Acquisitions inside go
// statements and stored (non-invoked) function literals are excluded:
// they do not run under the caller's locks. Summaries cover every
// checked module package (Unit.Context), not just the targets, so a
// partial run still propagates acquisitions through callees that live
// in unselected packages.
func acquireSummaries(u *Unit) map[string]map[string]bool {
	direct := make(map[string]map[string]bool)
	callees := make(map[string][]string)
	for _, p := range u.Context() {
		for _, f := range p.Files {
			for _, d := range f.Decls {
				fd, ok := d.(*ast.FuncDecl)
				if !ok || fd.Body == nil {
					continue
				}
				fn, ok := p.Info.Defs[fd.Name].(*types.Func)
				if !ok {
					continue
				}
				key := funcKey(fn)
				acq, calls := summarizeBody(p, fd.Body)
				direct[key] = acq
				callees[key] = calls
			}
		}
	}
	// Fixpoint: a function acquires what its (statically resolved,
	// declared-in-module) callees acquire.
	trans := make(map[string]map[string]bool, len(direct))
	for key, acq := range direct {
		set := make(map[string]bool, len(acq))
		for c := range acq {
			set[c] = true
		}
		trans[key] = set
	}
	for changed := true; changed; {
		changed = false
		for key, calls := range callees {
			set := trans[key]
			for _, ck := range calls {
				for c := range trans[ck] {
					if !set[c] {
						set[c] = true
						changed = true
					}
				}
			}
		}
	}
	return trans
}

// summarizeBody collects the lock classes directly acquired in one
// function body and the funcKeys of its statically resolved calls,
// skipping go-spawned and stored function literals.
func summarizeBody(p *Package, body *ast.BlockStmt) (map[string]bool, []string) {
	acq := make(map[string]bool)
	var calls []string
	skipLit := make(map[*ast.FuncLit]bool)
	inlineLit := make(map[*ast.FuncLit]bool)
	goCall := make(map[*ast.CallExpr]bool)
	ast.Inspect(body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.GoStmt:
			// The spawned call runs on another goroutine, not under the
			// caller's locks; only its argument expressions count here.
			goCall[n.Call] = true
			if lit, ok := n.Call.Fun.(*ast.FuncLit); ok {
				skipLit[lit] = true
			}
		case *ast.CallExpr:
			if goCall[n] {
				return true
			}
			if lit, ok := n.Fun.(*ast.FuncLit); ok && !skipLit[lit] {
				inlineLit[lit] = true
			}
			fn := calleeFunc(p.Info, n)
			if fn == nil {
				return true
			}
			if acquire, _ := isSyncLockMethod(fn); acquire {
				if sel, ok := ast.Unparen(n.Fun).(*ast.SelectorExpr); ok {
					if class := lockClass(p, sel); class != "" {
						acq[class] = true
					}
				}
				return true
			}
			calls = append(calls, funcKey(fn))
		case *ast.FuncLit:
			if !inlineLit[n] {
				return false
			}
		}
		return true
	})
	return acq, calls
}

func runLockOrder(u *Unit) []Finding {
	trans := acquireSummaries(u)
	var findings []Finding
	edges := make(map[lockPair][]lockEdgeSite)
	seenSite := make(map[lockPair]map[token.Pos]bool)
	addEdge := func(from, to string, pos token.Pos, via string) {
		pair := lockPair{from, to}
		if seenSite[pair] == nil {
			seenSite[pair] = make(map[token.Pos]bool)
		}
		if seenSite[pair][pos] {
			return
		}
		seenSite[pair][pos] = true
		edges[pair] = append(edges[pair], lockEdgeSite{pos: pos, via: via})
	}
	onAcquire := func(w *lockWalker, call *ast.CallExpr, lk heldLock) {
		if prev, ok := w.held[lk.expr]; ok {
			w.findings = append(w.findings, Finding{
				Pos:      w.u.Fset.Position(call.Pos()),
				Analyzer: "lockorder",
				Message: fmt.Sprintf(
					"mutex %s acquired while already held (locked at line %d); sync mutexes are not reentrant — this self-deadlocks",
					lk.expr, w.u.Fset.Position(prev.pos).Line),
			})
		}
		if lk.class == "" {
			return
		}
		for _, h := range w.held {
			if h.class != "" && h.class != lk.class {
				addEdge(h.class, lk.class, call.Pos(), "")
			}
		}
	}
	onCall := func(w *lockWalker, call *ast.CallExpr, fn *types.Func, deferred bool) {
		if len(w.held) == 0 {
			return
		}
		key := funcKey(fn)
		acq := trans[key]
		if len(acq) == 0 {
			return
		}
		via := shortFuncName(key)
		for _, h := range w.held {
			if h.class == "" {
				continue
			}
			for to := range acq {
				if to != h.class {
					addEdge(h.class, to, call.Pos(), via)
				}
			}
		}
	}
	for _, p := range u.Pkgs {
		for _, f := range p.Files {
			for _, d := range f.Decls {
				fd, ok := d.(*ast.FuncDecl)
				if !ok || fd.Body == nil {
					continue
				}
				w := newLockWalker(u, p, onCall, onAcquire)
				w.stmts(fd.Body.List)
				findings = append(findings, w.findings...)
			}
		}
	}

	// Cycle detection on the class digraph: every edge whose reverse is
	// reachable sits on a cycle; report each of its recorded sites so the
	// fix (or a reasoned ignore) lands where the order is established.
	adj := make(map[string][]string)
	for pair := range edges {
		adj[pair.from] = append(adj[pair.from], pair.to)
	}
	var pairs []lockPair
	for pair := range edges {
		pairs = append(pairs, pair)
	}
	sort.Slice(pairs, func(i, j int) bool {
		if pairs[i].from != pairs[j].from {
			return pairs[i].from < pairs[j].from
		}
		return pairs[i].to < pairs[j].to
	})
	for _, pair := range pairs {
		if !lockReachable(adj, pair.to, pair.from) {
			continue
		}
		sites := edges[pair]
		sort.Slice(sites, func(i, j int) bool { return sites[i].pos < sites[j].pos })
		for _, site := range sites {
			via := ""
			if site.via != "" {
				via = fmt.Sprintf(" (via %s)", site.via)
			}
			findings = append(findings, Finding{
				Pos:      u.Fset.Position(site.pos),
				Analyzer: "lockorder",
				Message: fmt.Sprintf(
					"lock order cycle: %s acquired while holding %s%s, but the reverse order also exists — pick one canonical rank (DESIGN.md, lock ranks)",
					pair.to, pair.from, via),
			})
		}
	}
	return findings
}

// lockReachable reports whether to is reachable from from in the class
// digraph.
func lockReachable(adj map[string][]string, from, to string) bool {
	if from == to {
		return true
	}
	seen := map[string]bool{from: true}
	stack := []string{from}
	for len(stack) > 0 {
		n := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		for _, next := range adj[n] {
			if next == to {
				return true
			}
			if !seen[next] {
				seen[next] = true
				stack = append(stack, next)
			}
		}
	}
	return false
}
