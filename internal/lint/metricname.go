package lint

import (
	"fmt"
	"go/ast"
	"go/constant"
	"go/types"
	"sort"
)

const metricsPath = "eclipsemr/internal/metrics"

// MetricName enforces two rules over metrics.Registry registrations
// (Counter, Gauge, Histogram, HistogramWith):
//
//  1. The metric name must be statically known: a constant expression, or
//     the range variable of a loop over a slice literal of constant
//     strings (the registries' pre-create idiom). Dynamic names defeat
//     both this analyzer's cross-checking and dashboard stability.
//  2. One name, one kind. Node snapshots from every subsystem registry
//     are merged cluster-wide; registering "x" as a counter in one
//     package and a gauge in another is a runtime panic in
//     Registry.checkKind at best and silent Merge corruption at worst.
//     The analyzer reports the collision at build time instead.
func MetricName() *Analyzer {
	return &Analyzer{
		Name: "metricname",
		Doc:  "metric registrations use constant names with one kind per name",
		Run:  runMetricName,
	}
}

// metricKindOf maps a Registry method name to the metric kind it
// registers, or "" for non-registration methods.
func metricKindOf(method string) string {
	switch method {
	case "Counter":
		return "counter"
	case "Gauge":
		return "gauge"
	case "Histogram", "HistogramWith":
		return "histogram"
	}
	return ""
}

type metricReg struct {
	name string
	kind string
	pkg  string
	pos  ast.Node
}

func runMetricName(u *Unit) []Finding {
	var findings []Finding
	var regs []metricReg
	for _, p := range u.Pkgs {
		if p.Path == metricsPath {
			continue // the registry implementation passes names through parameters
		}
		rangeConsts := constRangeVars(p)
		for _, f := range p.Files {
			ast.Inspect(f, func(n ast.Node) bool {
				call, ok := n.(*ast.CallExpr)
				if !ok {
					return true
				}
				sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
				if !ok {
					return true
				}
				kind := metricKindOf(sel.Sel.Name)
				if kind == "" || len(call.Args) == 0 {
					return true
				}
				fn, ok := p.Info.Uses[sel.Sel].(*types.Func)
				if !ok || fn.Pkg() == nil || fn.Pkg().Path() != metricsPath {
					return true
				}
				recv := fn.Type().(*types.Signature).Recv()
				if recv == nil || !isNamed(recv.Type(), metricsPath, "Registry") {
					return true
				}
				arg := ast.Unparen(call.Args[0])
				if tv, ok := p.Info.Types[arg]; ok && tv.Value != nil && tv.Value.Kind() == constant.String {
					regs = append(regs, metricReg{name: constant.StringVal(tv.Value), kind: kind, pkg: p.Path, pos: call})
					return true
				}
				if id, ok := arg.(*ast.Ident); ok {
					if names, ok := rangeConsts[p.Info.Uses[id]]; ok {
						for _, name := range names {
							regs = append(regs, metricReg{name: name, kind: kind, pkg: p.Path, pos: call})
						}
						return true
					}
				}
				findings = append(findings, Finding{
					Pos:      u.Fset.Position(arg.Pos()),
					Analyzer: "metricname",
					Message: fmt.Sprintf(
						"metric name passed to Registry.%s is not statically known; use a constant (or a range over a []string literal of constants)",
						sel.Sel.Name),
				})
				return true
			})
		}
	}
	findings = append(findings, metricKindCollisions(u, regs)...)
	return findings
}

// constRangeVars maps range-variable objects to the constant string lists
// they iterate, for loops of the shape
//
//	for _, name := range []string{"a", "b"} { ... }
func constRangeVars(p *Package) map[types.Object][]string {
	vars := make(map[types.Object][]string)
	for _, f := range p.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			rs, ok := n.(*ast.RangeStmt)
			if !ok || rs.Value == nil {
				return true
			}
			id, ok := rs.Value.(*ast.Ident)
			if !ok {
				return true
			}
			lit, ok := ast.Unparen(rs.X).(*ast.CompositeLit)
			if !ok {
				return true
			}
			var names []string
			for _, el := range lit.Elts {
				tv, ok := p.Info.Types[el]
				if !ok || tv.Value == nil || tv.Value.Kind() != constant.String {
					return true // a non-constant element disqualifies the loop
				}
				names = append(names, constant.StringVal(tv.Value))
			}
			if obj := p.Info.Defs[id]; obj != nil {
				vars[obj] = names
			}
			return true
		})
	}
	return vars
}

// metricKindCollisions cross-checks every statically known registration:
// the same name registered with different kinds anywhere in the module is
// an error at each conflicting site.
func metricKindCollisions(u *Unit, regs []metricReg) []Finding {
	sort.SliceStable(regs, func(i, j int) bool { return regs[i].pos.Pos() < regs[j].pos.Pos() })
	first := make(map[string]metricReg)
	var findings []Finding
	for _, r := range regs {
		prev, seen := first[r.name]
		if !seen {
			first[r.name] = r
			continue
		}
		if prev.kind == r.kind {
			continue
		}
		findings = append(findings, Finding{
			Pos:      u.Fset.Position(r.pos.Pos()),
			Analyzer: "metricname",
			Message: fmt.Sprintf(
				"metric %q registered as %s here but as %s in %s (line %d); one name must keep one kind or cluster Merge corrupts",
				r.name, r.kind, prev.kind, prev.pkg, u.Fset.Position(prev.pos.Pos()).Line),
		})
	}
	return findings
}
