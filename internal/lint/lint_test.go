package lint

import (
	"os"
	"path/filepath"
	"regexp"
	"strings"
	"testing"
)

// loadTestdata loads one golden package under testdata/src.
func loadTestdata(t *testing.T, name string) *Unit {
	t.Helper()
	dir, err := filepath.Abs(filepath.Join("testdata", "src", name))
	if err != nil {
		t.Fatal(err)
	}
	loader, err := NewLoader(dir)
	if err != nil {
		t.Fatalf("NewLoader: %v", err)
	}
	unit, err := loader.Load(dir)
	if err != nil {
		t.Fatalf("Load(%s): %v", name, err)
	}
	if len(unit.Pkgs) != 1 {
		t.Fatalf("Load(%s): got %d packages, want 1", name, len(unit.Pkgs))
	}
	return unit
}

// wantRe matches the golden expectation comments: // want "substring"
var wantRe = regexp.MustCompile(`// want "([^"]+)"`)

// expectations parses the want comments of one golden file into line ->
// required message substring.
func expectations(t *testing.T, file string) map[int]string {
	t.Helper()
	data, err := os.ReadFile(file)
	if err != nil {
		t.Fatal(err)
	}
	want := make(map[int]string)
	for i, line := range strings.Split(string(data), "\n") {
		if m := wantRe.FindStringSubmatch(line); m != nil {
			want[i+1] = m[1]
		}
	}
	if len(want) == 0 {
		t.Fatalf("%s: no // want expectations found", file)
	}
	return want
}

// analyzerByName fetches one analyzer from the suite.
func analyzerByName(t *testing.T, name string) *Analyzer {
	t.Helper()
	for _, a := range Analyzers() {
		if a.Name == name {
			return a
		}
	}
	t.Fatalf("no analyzer %q", name)
	return nil
}

// TestAnalyzersGolden drives every analyzer over its golden package:
// trigger.go must produce exactly its want-marked findings, clean.go and
// ignored.go must produce none (the latter via //lint:ignore).
func TestAnalyzersGolden(t *testing.T) {
	for _, name := range AnalyzerNames() {
		t.Run(name, func(t *testing.T) {
			unit := loadTestdata(t, name)
			a := analyzerByName(t, name)
			findings := Run(unit, []*Analyzer{a})

			pkgDir := unit.Pkgs[0].Dir
			want := expectations(t, filepath.Join(pkgDir, "trigger.go"))

			matched := make(map[int]bool)
			for _, f := range findings {
				if f.Analyzer != a.Name {
					t.Errorf("unexpected analyzer %q in finding: %s", f.Analyzer, f)
					continue
				}
				base := filepath.Base(f.Pos.Filename)
				if base != "trigger.go" {
					t.Errorf("finding outside trigger.go: %s", f)
					continue
				}
				sub, ok := want[f.Pos.Line]
				if !ok {
					t.Errorf("finding at unmarked line %d: %s", f.Pos.Line, f)
					continue
				}
				if !strings.Contains(f.Message, sub) {
					t.Errorf("line %d: message %q does not contain %q", f.Pos.Line, f.Message, sub)
					continue
				}
				matched[f.Pos.Line] = true
			}
			for line, sub := range want {
				if !matched[line] {
					t.Errorf("trigger.go:%d: expected finding containing %q, got none", line, sub)
				}
			}
		})
	}
}

// TestBadIgnoreDirective checks that malformed or unknown-analyzer ignore
// directives are themselves findings: a suppression that silently ignores
// nothing is worse than no suppression.
func TestBadIgnoreDirective(t *testing.T) {
	unit := loadTestdata(t, "badignore")
	findings := Run(unit, Analyzers())
	var badCount int
	for _, f := range findings {
		if f.Analyzer == "badignore" {
			badCount++
		} else {
			t.Errorf("unexpected finding: %s", f)
		}
	}
	if badCount != 2 {
		t.Errorf("got %d badignore findings, want 2 (malformed + unknown analyzer)", badCount)
	}
}

// TestSuiteNames pins the advertised analyzer set; docs and CI reference
// these names.
func TestSuiteNames(t *testing.T) {
	got := strings.Join(AnalyzerNames(), ",")
	want := "ringcmp,lockedrpc,metricname,timesource,droppederr,spanend"
	if got != want {
		t.Fatalf("AnalyzerNames() = %s, want %s", got, want)
	}
}

// TestRepoClean runs the full suite over the whole module: the repo must
// stay lint-clean (violations either fixed or carrying a reasoned
// //lint:ignore). This is the same gate scripts/check.sh and CI enforce
// via cmd/eclipse-lint.
func TestRepoClean(t *testing.T) {
	if testing.Short() {
		t.Skip("type-checking the full module is slow; covered by make lint in CI")
	}
	loader, err := NewLoader(".")
	if err != nil {
		t.Fatal(err)
	}
	unit, err := loader.Load("./...")
	if err != nil {
		t.Fatal(err)
	}
	findings := Run(unit, Analyzers())
	for _, f := range findings {
		t.Errorf("%s", f.Render(loader.Root))
	}
}
