package lint

import (
	"os"
	"path/filepath"
	"regexp"
	"strings"
	"testing"
)

// loadTestdata loads one golden package under testdata/src.
func loadTestdata(t *testing.T, name string) *Unit {
	t.Helper()
	dir, err := filepath.Abs(filepath.Join("testdata", "src", name))
	if err != nil {
		t.Fatal(err)
	}
	loader, err := NewLoader(dir)
	if err != nil {
		t.Fatalf("NewLoader: %v", err)
	}
	unit, err := loader.Load(dir)
	if err != nil {
		t.Fatalf("Load(%s): %v", name, err)
	}
	if len(unit.Pkgs) != 1 {
		t.Fatalf("Load(%s): got %d packages, want 1", name, len(unit.Pkgs))
	}
	return unit
}

// wantRe matches the golden expectation comments: // want "substring"
var wantRe = regexp.MustCompile(`// want "([^"]+)"`)

// expectations parses the want comments of one golden file into line ->
// required message substring.
func expectations(t *testing.T, file string) map[int]string {
	t.Helper()
	data, err := os.ReadFile(file)
	if err != nil {
		t.Fatal(err)
	}
	want := make(map[int]string)
	for i, line := range strings.Split(string(data), "\n") {
		if m := wantRe.FindStringSubmatch(line); m != nil {
			want[i+1] = m[1]
		}
	}
	if len(want) == 0 {
		t.Fatalf("%s: no // want expectations found", file)
	}
	return want
}

// analyzerByName fetches one analyzer from the suite.
func analyzerByName(t *testing.T, name string) *Analyzer {
	t.Helper()
	for _, a := range Analyzers() {
		if a.Name == name {
			return a
		}
	}
	t.Fatalf("no analyzer %q", name)
	return nil
}

// TestAnalyzersGolden drives every analyzer over its golden package:
// trigger.go must produce exactly its want-marked findings, clean.go and
// ignored.go must produce none (the latter via //lint:ignore).
func TestAnalyzersGolden(t *testing.T) {
	for _, name := range AnalyzerNames() {
		t.Run(name, func(t *testing.T) {
			unit := loadTestdata(t, name)
			a := analyzerByName(t, name)
			findings := Run(unit, []*Analyzer{a})

			pkgDir := unit.Pkgs[0].Dir
			want := expectations(t, filepath.Join(pkgDir, "trigger.go"))

			matched := make(map[int]bool)
			for _, f := range findings {
				if f.Analyzer != a.Name {
					t.Errorf("unexpected analyzer %q in finding: %s", f.Analyzer, f)
					continue
				}
				base := filepath.Base(f.Pos.Filename)
				if base != "trigger.go" {
					t.Errorf("finding outside trigger.go: %s", f)
					continue
				}
				sub, ok := want[f.Pos.Line]
				if !ok {
					t.Errorf("finding at unmarked line %d: %s", f.Pos.Line, f)
					continue
				}
				if !strings.Contains(f.Message, sub) {
					t.Errorf("line %d: message %q does not contain %q", f.Pos.Line, f.Message, sub)
					continue
				}
				matched[f.Pos.Line] = true
			}
			for line, sub := range want {
				if !matched[line] {
					t.Errorf("trigger.go:%d: expected finding containing %q, got none", line, sub)
				}
			}
		})
	}
}

// TestBadIgnoreDirective checks that malformed or unknown-analyzer ignore
// directives are themselves findings: a suppression that silently ignores
// nothing is worse than no suppression.
func TestBadIgnoreDirective(t *testing.T) {
	unit := loadTestdata(t, "badignore")
	findings := Run(unit, Analyzers())
	var badCount int
	for _, f := range findings {
		if f.Analyzer == "badignore" {
			badCount++
		} else {
			t.Errorf("unexpected finding: %s", f)
		}
	}
	if badCount != 3 {
		t.Errorf("got %d badignore findings, want 3 (malformed + unknown analyzer + unused name in a comma list)", badCount)
	}
	var unused int
	for _, f := range findings {
		if strings.Contains(f.Message, "suppressed nothing") {
			unused++
			if !strings.Contains(f.Message, `"droppederr"`) {
				t.Errorf("unused-name finding should name droppederr: %s", f)
			}
		}
	}
	if unused != 1 {
		t.Errorf("got %d unused-name findings, want 1", unused)
	}
}

// TestAnalyzerInteraction runs lockedrpc and lockorder together over one
// package where a single function violates both: the findings must not
// mask or duplicate each other.
func TestAnalyzerInteraction(t *testing.T) {
	unit := loadTestdata(t, "interaction")
	findings := Run(unit, []*Analyzer{analyzerByName(t, "lockedrpc"), analyzerByName(t, "lockorder")})

	type site struct {
		line     int
		analyzer string
	}
	got := make(map[site]bool)
	for _, f := range findings {
		got[site{f.Pos.Line, f.Analyzer}] = true
	}
	want := map[site]bool{
		{27, "lockorder"}: true, // p.wal.Lock() in lockedFanout: cycle edge mu -> wal
		{28, "lockedrpc"}: true, // p.net.Call under both mutexes
		{36, "lockorder"}: true, // p.mu.Lock() in reverse: cycle edge wal -> mu
	}
	for s := range want {
		if !got[s] {
			t.Errorf("missing finding: line %d analyzer %s", s.line, s.analyzer)
		}
	}
	for s := range got {
		if !want[s] {
			t.Errorf("unexpected finding: line %d analyzer %s", s.line, s.analyzer)
		}
	}
}

// TestGoroLeakLoopCapturePre122 loads the nested go1.21 module: the
// loop-variable capture check must fire there (and only there — the main
// module is past 1.22, so TestAnalyzersGolden never sees it).
func TestGoroLeakLoopCapturePre122(t *testing.T) {
	unit := loadTestdata(t, "goroleak121")
	if unit.GoVersion != "1.21" {
		t.Fatalf("unit.GoVersion = %q, want 1.21 (from the nested go.mod)", unit.GoVersion)
	}
	findings := Run(unit, []*Analyzer{analyzerByName(t, "goroleak")})

	pkgDir := unit.Pkgs[0].Dir
	want := expectations(t, filepath.Join(pkgDir, "trigger.go"))
	matched := make(map[int]bool)
	for _, f := range findings {
		sub, ok := want[f.Pos.Line]
		if !ok {
			t.Errorf("finding at unmarked line %d: %s", f.Pos.Line, f)
			continue
		}
		if !strings.Contains(f.Message, sub) {
			t.Errorf("line %d: message %q does not contain %q", f.Pos.Line, f.Message, sub)
			continue
		}
		matched[f.Pos.Line] = true
	}
	for line, sub := range want {
		if !matched[line] {
			t.Errorf("trigger.go:%d: expected finding containing %q, got none", line, sub)
		}
	}
}

// TestSuiteNames pins the advertised analyzer set; docs and CI reference
// these names.
func TestSuiteNames(t *testing.T) {
	got := strings.Join(AnalyzerNames(), ",")
	want := "ringcmp,lockedrpc,lockorder,metricname,eventname,timesource,droppederr,spanend,goroleak,ctxflow"
	if got != want {
		t.Fatalf("AnalyzerNames() = %s, want %s", got, want)
	}
}

// TestRepoClean runs the full suite over the whole module: the repo must
// stay lint-clean (violations either fixed or carrying a reasoned
// //lint:ignore). This is the same gate scripts/check.sh and CI enforce
// via cmd/eclipse-lint.
func TestRepoClean(t *testing.T) {
	if testing.Short() {
		t.Skip("type-checking the full module is slow; covered by make lint in CI")
	}
	// The concurrency-invariant analyzers must be part of the enforced
	// suite, not merely available: a rename or a dropped registration
	// would silently stop gating the repo.
	for _, name := range []string{"lockorder", "goroleak", "ctxflow", "eventname"} {
		analyzerByName(t, name)
	}
	loader, err := NewLoader(".")
	if err != nil {
		t.Fatal(err)
	}
	unit, err := loader.Load("./...")
	if err != nil {
		t.Fatal(err)
	}
	findings := Run(unit, Analyzers())
	for _, f := range findings {
		t.Errorf("%s", f.Render(loader.Root))
	}
}

// TestLoadPartialSetOneIdentityPerPackage pins the loader's one-identity
// guarantee for partial pattern sets (what eclipse-lint -diff produces).
// internal/benchrun imports internal/apps, which is outside the set;
// before the loader checked module-local imports itself, the fallback
// source importer gave apps its own instances of shared dependencies,
// and passing a checked *cluster.Cluster to the fallback's apps.Runner
// failed type-checking with a spurious "does not implement". The load
// must succeed, the unchosen dependencies must land in Unit.All (where
// goroleak and lockorder resolve evidence), and only the chosen
// patterns may be analysis targets.
func TestLoadPartialSetOneIdentityPerPackage(t *testing.T) {
	if testing.Short() {
		t.Skip("type-checks a large slice of the module")
	}
	loader, err := NewLoader(".")
	if err != nil {
		t.Fatal(err)
	}
	unit, err := loader.Load("internal/benchrun", "internal/cluster", "internal/mapreduce")
	if err != nil {
		t.Fatalf("partial-set load: %v", err)
	}
	if got := len(unit.Pkgs); got != 3 {
		t.Fatalf("targets = %d packages, want 3", got)
	}
	all := make(map[string]bool)
	for _, p := range unit.All {
		all[p.Path] = true
	}
	for _, dep := range []string{"eclipsemr/internal/apps", "eclipsemr/internal/trace"} {
		if !all[dep] {
			t.Errorf("Unit.All missing module dependency %s; partial-run evidence would diverge from a full run", dep)
		}
	}
	for _, p := range unit.Pkgs {
		if p.Path == "eclipsemr/internal/apps" {
			t.Error("dependency leaked into the analysis targets")
		}
	}
	// The module-wide analyzers must reach full-run verdicts on a subset:
	// the repo is kept clean, so the subset must be clean too — in
	// particular goroleak must find its termination evidence in callees
	// that live outside the chosen patterns.
	for _, f := range Run(unit, Analyzers()) {
		t.Errorf("partial run not clean: %s", f.Render(loader.Root))
	}
}
