package lint

import (
	"fmt"
	"go/ast"
	"go/types"
)

// simPackages are the deterministic-model packages: everything in them
// must draw time from the injected clock and randomness from an
// explicitly seeded generator, or the paper-figure sweeps stop being
// reproducible run to run.
var simPackages = map[string]bool{
	"eclipsemr/internal/sim":        true,
	"eclipsemr/internal/simcluster": true,
}

// isSimPackage matches the deterministic simulators by import path, and
// by package name as a fallback so relocated or vendored copies (and the
// analyzer's own testdata) stay covered.
func isSimPackage(p *Package) bool {
	return simPackages[p.Path] || p.Types.Name() == "sim" || p.Types.Name() == "simcluster"
}

// wallClockFuncs are the time package entry points that read or depend on
// the wall clock.
var wallClockFuncs = map[string]bool{
	"Now":   true,
	"Sleep": true,
	"Since": true,
	"Until": true,
	"After": true,
	"Tick":  true,
}

// seededRandFuncs are the math/rand package-level functions that are fine
// in sim code because they construct explicitly seeded state rather than
// draw from the global source.
var seededRandFuncs = map[string]bool{
	"New":       true,
	"NewSource": true,
	"NewZipf":   true,
}

// TimeSource reports wall-clock reads (time.Now, time.Sleep, ...) and
// global math/rand draws inside internal/sim and internal/simcluster.
//
// Those packages are the figure harness: every experiment in
// EXPERIMENTS.md assumes a sweep re-run reproduces byte-identical CSVs.
// The simulators model time as an explicit variable and take seeds in
// their params, so any leak of real time or of the process-global rand
// source silently breaks determinism. rand.New(rand.NewSource(seed)) is
// allowed; rand.Intn and friends (the global source) are not.
func TimeSource() *Analyzer {
	return &Analyzer{
		Name: "timesource",
		Doc:  "wall clock or global math/rand use inside the deterministic simulators",
		Run:  runTimeSource,
	}
}

func runTimeSource(u *Unit) []Finding {
	var findings []Finding
	for _, p := range u.Pkgs {
		if !isSimPackage(p) {
			continue
		}
		for _, f := range p.Files {
			ast.Inspect(f, func(n ast.Node) bool {
				call, ok := n.(*ast.CallExpr)
				if !ok {
					return true
				}
				fn := calleeFunc(p.Info, call)
				if fn == nil || fn.Pkg() == nil {
					return true
				}
				sig, _ := fn.Type().(*types.Signature)
				isMethod := sig != nil && sig.Recv() != nil
				switch fn.Pkg().Path() {
				case "time":
					if !isMethod && wallClockFuncs[fn.Name()] {
						findings = append(findings, Finding{
							Pos:      u.Fset.Position(call.Pos()),
							Analyzer: "timesource",
							Message: fmt.Sprintf(
								"time.%s reads the wall clock inside the deterministic simulator; use the model's virtual clock",
								fn.Name()),
						})
					}
				case "math/rand", "math/rand/v2":
					if !isMethod && !seededRandFuncs[fn.Name()] {
						findings = append(findings, Finding{
							Pos:      u.Fset.Position(call.Pos()),
							Analyzer: "timesource",
							Message: fmt.Sprintf(
								"rand.%s draws from the global source inside the deterministic simulator; use a seeded *rand.Rand from the experiment params",
								fn.Name()),
						})
					}
				}
				return true
			})
		}
	}
	return findings
}
