package lint

import (
	"fmt"
	"go/ast"
	"go/types"
)

// ioBoundaryPackages are the layers whose errors carry data-loss or
// partition information: dropping one turns a detectable fault into
// silent corruption (a block write that never happened, a shuffle push
// that vanished, a cache insert that was rejected).
var ioBoundaryPackages = map[string]bool{
	"eclipsemr/internal/transport": true,
	"eclipsemr/internal/dhtfs":     true,
	"eclipsemr/internal/cache":     true,
}

// DroppedErr reports implicitly discarded error results from calls into
// the transport, dhtfs and cache I/O boundaries — a call used as a bare
// statement (or go/defer) whose last result is an error.
//
// An explicit `_ = f()` assignment is deliberately not flagged: it is
// visible in review and greppable. The failure mode this analyzer exists
// for is the invisible one, where a write path looks synchronous and
// checked but an error return silently falls on the floor.
func DroppedErr() *Analyzer {
	return &Analyzer{
		Name: "droppederr",
		Doc:  "implicitly discarded errors at transport/dhtfs/cache boundaries",
		Run:  runDroppedErr,
	}
}

var errorType = types.Universe.Lookup("error").Type().Underlying().(*types.Interface)

// returnsError reports whether fn's last result is of type error.
func returnsError(fn *types.Func) bool {
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Results().Len() == 0 {
		return false
	}
	last := sig.Results().At(sig.Results().Len() - 1).Type()
	return types.Implements(last, errorType) && types.IsInterface(last)
}

func runDroppedErr(u *Unit) []Finding {
	var findings []Finding
	check := func(p *Package, call *ast.CallExpr, how string) {
		fn := calleeFunc(p.Info, call)
		if fn == nil || fn.Pkg() == nil || !ioBoundaryPackages[fn.Pkg().Path()] {
			return
		}
		if !returnsError(fn) {
			return
		}
		findings = append(findings, Finding{
			Pos:      u.Fset.Position(call.Pos()),
			Analyzer: "droppederr",
			Message: fmt.Sprintf(
				"%s discards the error from %s; check it (or assign to _ with a comment if loss is intended)",
				how, shortFuncName(funcKey(fn))),
		})
	}
	for _, p := range u.Pkgs {
		for _, f := range p.Files {
			ast.Inspect(f, func(n ast.Node) bool {
				switch s := n.(type) {
				case *ast.ExprStmt:
					if call, ok := s.X.(*ast.CallExpr); ok {
						check(p, call, "statement")
					}
				case *ast.GoStmt:
					check(p, s.Call, "go statement")
				case *ast.DeferStmt:
					check(p, s.Call, "defer")
				}
				return true
			})
		}
	}
	return findings
}
