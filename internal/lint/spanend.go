package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// tracePkgPath is the tracing package whose Start* results must be
// ended. The package itself is exempt: it constructs and finishes spans
// through its own internals.
const tracePkgPath = "eclipsemr/internal/trace"

// SpanEnd reports spans obtained from trace.Start* (StartRoot,
// StartSpan, StartSpanAt) that can never be ended:
//
//   - the call's results are discarded outright (expression statement),
//   - the span result is bound to the blank identifier, or
//   - the span variable neither has End called on it anywhere in the
//     enclosing function (including defers and nested closures) nor
//     escapes it (returned, passed as an argument, stored).
//
// A span that is never ended never reaches the tracer's ring buffer, so
// the trace silently loses the operation: the job timeline shows a hole
// exactly where the instrumented stage ran. The sanctioned shape is
//
//	ctx, sp := t.StartSpan(ctx, "stage")
//	defer sp.End()
func SpanEnd() *Analyzer {
	return &Analyzer{
		Name: "spanend",
		Doc:  "trace.Start* span without a matching End (or escape) in the enclosing function",
		Run:  runSpanEnd,
	}
}

// startCall resolves e to a trace.Start* call, or nil.
func startCall(info *types.Info, e ast.Expr) (*ast.CallExpr, *types.Func) {
	call, ok := ast.Unparen(e).(*ast.CallExpr)
	if !ok {
		return nil, nil
	}
	fn := calleeFunc(info, call)
	if fn == nil || fn.Pkg() == nil || fn.Pkg().Path() != tracePkgPath {
		return nil, nil
	}
	if !strings.HasPrefix(fn.Name(), "Start") {
		return nil, nil
	}
	return call, fn
}

// funcBodies collects every function body in the file with its extent,
// innermost-last when nested.
type bodyRange struct {
	body *ast.BlockStmt
}

func collectBodies(f *ast.File) []bodyRange {
	var out []bodyRange
	ast.Inspect(f, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.FuncDecl:
			if n.Body != nil {
				out = append(out, bodyRange{body: n.Body})
			}
		case *ast.FuncLit:
			out = append(out, bodyRange{body: n.Body})
		}
		return true
	})
	return out
}

// enclosingBody returns the smallest function body containing pos.
func enclosingBody(bodies []bodyRange, pos token.Pos) *ast.BlockStmt {
	var best *ast.BlockStmt
	for _, b := range bodies {
		if b.body.Pos() <= pos && pos < b.body.End() {
			if best == nil || (b.body.Pos() >= best.Pos() && b.body.End() <= best.End()) {
				best = b.body
			}
		}
	}
	return best
}

func runSpanEnd(u *Unit) []Finding {
	var findings []Finding
	for _, p := range u.Pkgs {
		if p.Path == tracePkgPath || p.Types.Name() == "trace" {
			continue
		}
		for _, f := range p.Files {
			bodies := collectBodies(f)
			ast.Inspect(f, func(n ast.Node) bool {
				switch n := n.(type) {
				case *ast.ExprStmt:
					if call, fn := startCall(p.Info, n.X); call != nil {
						findings = append(findings, Finding{
							Pos:      u.Fset.Position(call.Pos()),
							Analyzer: "spanend",
							Message: fmt.Sprintf(
								"result of trace.%s is discarded; the span can never be ended", fn.Name()),
						})
					}
				case *ast.AssignStmt:
					if len(n.Rhs) != 1 || len(n.Lhs) != 2 {
						return true
					}
					call, fn := startCall(p.Info, n.Rhs[0])
					if call == nil {
						return true
					}
					spanIdent, ok := n.Lhs[1].(*ast.Ident)
					if !ok {
						return true // span stored through a selector/index: escapes
					}
					if spanIdent.Name == "_" {
						findings = append(findings, Finding{
							Pos:      u.Fset.Position(call.Pos()),
							Analyzer: "spanend",
							Message: fmt.Sprintf(
								"span from trace.%s is bound to the blank identifier and can never be ended", fn.Name()),
						})
						return true
					}
					obj := p.Info.Defs[spanIdent]
					if obj == nil {
						obj = p.Info.Uses[spanIdent]
					}
					if obj == nil {
						return true
					}
					body := enclosingBody(bodies, call.Pos())
					if body == nil {
						return true
					}
					if !spanHandled(p.Info, body, obj, spanIdent) {
						findings = append(findings, Finding{
							Pos:      u.Fset.Position(call.Pos()),
							Analyzer: "spanend",
							Message: fmt.Sprintf(
								"span %s from trace.%s is never ended and never escapes this function; add a deferred %s.End()",
								spanIdent.Name, fn.Name(), spanIdent.Name),
						})
					}
				}
				return true
			})
		}
	}
	return findings
}

// spanHandled reports whether the span object is either ended (a
// sp.End reference anywhere in the function, covering direct calls,
// defers and closures) or escapes (any use outside a method-receiver
// position: returned, passed as an argument, reassigned, stored).
func spanHandled(info *types.Info, body *ast.BlockStmt, obj types.Object, def *ast.Ident) bool {
	ended := false
	// receiver marks idents appearing as the X of a selector (method
	// calls and field reads on the span): those uses neither end the
	// span nor let it escape, except for End itself.
	receiver := make(map[*ast.Ident]bool)
	ast.Inspect(body, func(n ast.Node) bool {
		sel, ok := n.(*ast.SelectorExpr)
		if !ok {
			return true
		}
		id, ok := sel.X.(*ast.Ident)
		if !ok || info.Uses[id] != obj {
			return true
		}
		receiver[id] = true
		if sel.Sel.Name == "End" {
			ended = true
		}
		return true
	})
	if ended {
		return true
	}
	escapes := false
	ast.Inspect(body, func(n ast.Node) bool {
		id, ok := n.(*ast.Ident)
		if !ok || id == def || receiver[id] {
			return true
		}
		if info.Uses[id] == obj {
			escapes = true
		}
		return true
	})
	return escapes
}
