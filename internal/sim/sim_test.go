package sim

import (
	"math"
	"testing"
)

func almost(t *testing.T, got, want, tol float64, msg string) {
	t.Helper()
	if math.Abs(got-want) > tol {
		t.Fatalf("%s: got %g want %g (±%g)", msg, got, want, tol)
	}
}

func TestEventOrdering(t *testing.T) {
	s := New()
	var order []int
	s.At(2, func() { order = append(order, 2) })
	s.At(1, func() { order = append(order, 1) })
	s.At(1, func() { order = append(order, 10) }) // same time: FIFO
	s.After(3, func() { order = append(order, 3) })
	end := s.Run()
	if end != 3 {
		t.Fatalf("end = %g", end)
	}
	want := []int{1, 10, 2, 3}
	for i, v := range want {
		if order[i] != v {
			t.Fatalf("order = %v", order)
		}
	}
}

func TestEventsScheduleMoreEvents(t *testing.T) {
	s := New()
	count := 0
	var tick func()
	tick = func() {
		count++
		if count < 5 {
			s.After(1, tick)
		}
	}
	s.After(1, tick)
	end := s.Run()
	if count != 5 || end != 5 {
		t.Fatalf("count=%d end=%g", count, end)
	}
}

func TestRunUntil(t *testing.T) {
	s := New()
	fired := 0
	s.At(1, func() { fired++ })
	s.At(5, func() { fired++ })
	s.RunUntil(3)
	if fired != 1 || s.Now() != 3 {
		t.Fatalf("fired=%d now=%g", fired, s.Now())
	}
	if s.Pending() != 1 {
		t.Fatalf("pending = %d", s.Pending())
	}
}

func TestPastEventClamped(t *testing.T) {
	s := New()
	s.At(5, func() {
		s.At(1, func() {}) // in the past: runs "now"
	})
	end := s.Run()
	if end != 5 {
		t.Fatalf("end = %g", end)
	}
}

func TestClockAndDuration(t *testing.T) {
	s := New()
	s.At(1.5, func() {})
	s.Run()
	if got := s.Clock()().UnixNano(); got != 1_500_000_000 {
		t.Fatalf("clock = %d", got)
	}
	if Duration(2.5).Seconds() != 2.5 {
		t.Fatal("Duration wrong")
	}
	if Seconds(Duration(0.25)) != 0.25 {
		t.Fatal("Seconds wrong")
	}
}

func TestQueueSerialFCFS(t *testing.T) {
	s := New()
	q := NewQueue(s, 1)
	var finish []Time
	for i := 0; i < 3; i++ {
		q.Submit(2, func() { finish = append(finish, s.Now()) })
	}
	if q.InService() != 1 || q.QueueLen() != 2 {
		t.Fatalf("in-service=%d queued=%d", q.InService(), q.QueueLen())
	}
	s.Run()
	want := []Time{2, 4, 6}
	for i := range want {
		almost(t, finish[i], want[i], 1e-9, "serial completion")
	}
	almost(t, q.Busy, 6, 1e-9, "busy integral")
}

func TestQueueParallelServers(t *testing.T) {
	s := New()
	q := NewQueue(s, 2)
	var finish []Time
	for i := 0; i < 4; i++ {
		q.Submit(3, func() { finish = append(finish, s.Now()) })
	}
	s.Run()
	// Two at a time: completions at 3,3,6,6.
	almost(t, finish[0], 3, 1e-9, "c0")
	almost(t, finish[1], 3, 1e-9, "c1")
	almost(t, finish[2], 6, 1e-9, "c2")
	almost(t, finish[3], 6, 1e-9, "c3")
}

func TestQueueZeroAndNegativeService(t *testing.T) {
	s := New()
	q := NewQueue(s, 1)
	fired := false
	q.Submit(-5, func() { fired = true })
	s.Run()
	if !fired || s.Now() != 0 {
		t.Fatalf("fired=%v now=%g", fired, s.Now())
	}
	if NewQueue(s, 0).servers != 1 {
		t.Fatal("zero servers not clamped")
	}
}

func TestFlowSingleResource(t *testing.T) {
	s := New()
	n := NewFlowNet(s)
	n.AddResource("nic", 100) // 100 B/s
	var done Time
	n.StartFlow(500, []string{"nic"}, func() { done = s.Now() })
	s.Run()
	almost(t, done, 5, 1e-6, "single flow")
	almost(t, n.Transferred, 500, 1e-6, "transferred bytes")
}

func TestFlowFairSharing(t *testing.T) {
	s := New()
	n := NewFlowNet(s)
	n.AddResource("nic", 100)
	var t1, t2 Time
	// Two equal flows share the link: each runs at 50 B/s.
	n.StartFlow(100, []string{"nic"}, func() { t1 = s.Now() })
	n.StartFlow(100, []string{"nic"}, func() { t2 = s.Now() })
	s.Run()
	almost(t, t1, 2, 1e-6, "flow1")
	almost(t, t2, 2, 1e-6, "flow2")
}

func TestFlowDepartureSpeedsUpSurvivor(t *testing.T) {
	s := New()
	n := NewFlowNet(s)
	n.AddResource("nic", 100)
	var tShort, tLong Time
	n.StartFlow(100, []string{"nic"}, func() { tShort = s.Now() })
	n.StartFlow(300, []string{"nic"}, func() { tLong = s.Now() })
	s.Run()
	// Shared at 50 B/s until the short flow ends at t=2; the long flow has
	// 200 B left and finishes 2 s later at full rate.
	almost(t, tShort, 2, 1e-6, "short flow")
	almost(t, tLong, 4, 1e-6, "long flow")
}

func TestFlowArrivalSlowsExisting(t *testing.T) {
	s := New()
	n := NewFlowNet(s)
	n.AddResource("nic", 100)
	var t1 Time
	n.StartFlow(200, []string{"nic"}, func() { t1 = s.Now() })
	s.At(1, func() {
		n.StartFlow(1000, []string{"nic"}, nil)
	})
	s.Run()
	// First second at 100 B/s leaves 100 B; then shared 50 B/s for 2 s.
	almost(t, t1, 3, 1e-6, "slowed flow")
}

func TestFlowMaxMinAcrossResources(t *testing.T) {
	s := New()
	n := NewFlowNet(s)
	n.AddResource("a", 100)
	n.AddResource("b", 30)
	var tA, tAB Time
	// Flow 1 uses only a; flow 2 crosses a and the narrow b.
	n.StartFlow(300, []string{"a"}, func() { tA = s.Now() })
	n.StartFlow(30, []string{"a", "b"}, func() { tAB = s.Now() })
	s.Run()
	// Max-min: flow 2 bottlenecked at 30 B/s on b, so it gets 30; flow 1
	// gets the remaining 70 on a. Flow 2 finishes at t=1; flow 1 has 230
	// left, then runs at 100 B/s: 1 + 2.3 = 3.3.
	almost(t, tAB, 1, 1e-6, "cross flow")
	almost(t, tA, 3.3, 1e-6, "wide flow")
}

func TestFlowUnknownResourceUnconstrained(t *testing.T) {
	s := New()
	n := NewFlowNet(s)
	var done bool
	n.StartFlow(1e12, []string{"ghost"}, func() { done = true })
	s.Run()
	if !done || s.Now() != 0 {
		t.Fatalf("done=%v now=%g", done, s.Now())
	}
}

func TestFlowZeroSize(t *testing.T) {
	s := New()
	n := NewFlowNet(s)
	n.AddResource("nic", 10)
	done := false
	n.StartFlow(0, []string{"nic"}, func() { done = true })
	s.Run()
	if !done {
		t.Fatal("zero-size flow never completed")
	}
}

func TestFlowManyConcurrent(t *testing.T) {
	s := New()
	n := NewFlowNet(s)
	n.AddResource("nic", 1000)
	completed := 0
	for i := 0; i < 50; i++ {
		n.StartFlow(100, []string{"nic"}, func() { completed++ })
	}
	end := s.Run()
	if completed != 50 {
		t.Fatalf("completed = %d", completed)
	}
	// 50 flows × 100 B over a 1000 B/s link = 5 s total.
	almost(t, end, 5, 1e-3, "aggregate completion")
	if n.ActiveFlows() != 0 {
		t.Fatalf("active flows = %d", n.ActiveFlows())
	}
}

// TestFlowLargeScaleStability exercises the float-residue fallback with
// paper-scale sizes (hundreds of GB) and many staggered arrivals.
func TestFlowLargeScaleStability(t *testing.T) {
	s := New()
	n := NewFlowNet(s)
	for i := 0; i < 8; i++ {
		n.AddResource(string(rune('a'+i)), 125e6) // 1 Gb/s NICs
	}
	completed := 0
	for i := 0; i < 200; i++ {
		src := string(rune('a' + i%8))
		dst := string(rune('a' + (i+3)%8))
		size := 128e6 + float64(i)*1e5
		at := float64(i) * 0.01
		s.At(at, func() {
			n.StartFlow(size, []string{src, dst}, func() { completed++ })
		})
	}
	s.Run()
	if completed != 200 {
		t.Fatalf("completed = %d of 200", completed)
	}
}
