// Package sim is a deterministic discrete-event simulation substrate used
// to regenerate the paper's performance figures at the paper's nominal
// scale (hundreds of gigabytes, 40 nodes) in milliseconds of wall time.
// It provides a virtual clock with an event queue, FCFS queueing
// resources (disks, task slots, a NameNode RPC queue) and a max-min
// fair-shared flow network (NICs and switch uplinks).
package sim

import (
	"container/heap"
	"math"
	"sort"
	"time"
)

// Time is virtual seconds since simulation start.
type Time = float64

type event struct {
	at  Time
	seq uint64 // tie-break: FIFO among simultaneous events
	fn  func()
}

type eventHeap []event

func (h eventHeap) Len() int { return len(h) }
func (h eventHeap) Less(i, j int) bool {
	if h[i].at != h[j].at {
		return h[i].at < h[j].at
	}
	return h[i].seq < h[j].seq
}
func (h eventHeap) Swap(i, j int) { h[i], h[j] = h[j], h[i] }
func (h *eventHeap) Push(x any)   { *h = append(*h, x.(event)) }
func (h *eventHeap) Pop() any     { old := *h; n := len(old); e := old[n-1]; *h = old[:n-1]; return e }

// Sim is one virtual timeline. It is strictly single-threaded: all event
// callbacks run inline in Run, so no synchronization is needed and every
// run is bit-for-bit reproducible.
type Sim struct {
	now Time
	pq  eventHeap
	seq uint64
}

// New returns an empty simulation at time zero.
func New() *Sim { return &Sim{} }

// Now returns the current virtual time.
func (s *Sim) Now() Time { return s.now }

// At schedules fn at absolute time t (clamped to now).
func (s *Sim) At(t Time, fn func()) {
	if t < s.now {
		t = s.now
	}
	s.seq++
	heap.Push(&s.pq, event{at: t, seq: s.seq, fn: fn})
}

// After schedules fn d seconds from now.
func (s *Sim) After(d Time, fn func()) { s.At(s.now+d, fn) }

// Run executes events until the queue drains, returning the final time.
func (s *Sim) Run() Time {
	for s.pq.Len() > 0 {
		e := heap.Pop(&s.pq).(event)
		s.now = e.at
		e.fn()
	}
	return s.now
}

// RunUntil executes events with at <= t, then sets the clock to t.
func (s *Sim) RunUntil(t Time) {
	for s.pq.Len() > 0 && s.pq[0].at <= t {
		e := heap.Pop(&s.pq).(event)
		s.now = e.at
		e.fn()
	}
	if t > s.now {
		s.now = t
	}
}

// Pending returns the number of scheduled events.
func (s *Sim) Pending() int { return s.pq.Len() }

// Clock adapts virtual time to a time.Time source (for cache TTLs).
func (s *Sim) Clock() func() time.Time {
	return func() time.Time {
		return time.Unix(0, int64(s.now*1e9))
	}
}

// Duration converts virtual seconds to a time.Duration (for scheduler
// clocks).
func Duration(t Time) time.Duration { return time.Duration(t * float64(time.Second)) }

// Seconds converts a time.Duration to virtual seconds.
func Seconds(d time.Duration) Time { return d.Seconds() }

// Queue is a FCFS service center with a fixed number of parallel servers
// (an HDD with one head, a pool of task slots, a NameNode handling one
// RPC at a time). Jobs carry explicit service times.
type Queue struct {
	sim     *Sim
	servers int
	busy    int
	waiting []queuedJob
	// Busy integrates server-seconds of work for utilization reporting.
	Busy Time
}

type queuedJob struct {
	service Time
	done    func()
}

// NewQueue creates a queue with the given parallel server count.
func NewQueue(sim *Sim, servers int) *Queue {
	if servers < 1 {
		servers = 1
	}
	return &Queue{sim: sim, servers: servers}
}

// Submit enqueues a job needing `service` seconds of one server; done
// fires at completion.
func (q *Queue) Submit(service Time, done func()) {
	if service < 0 {
		service = 0
	}
	if q.busy < q.servers {
		q.start(service, done)
		return
	}
	q.waiting = append(q.waiting, queuedJob{service: service, done: done})
}

func (q *Queue) start(service Time, done func()) {
	q.busy++
	q.Busy += service
	q.sim.After(service, func() {
		q.busy--
		if len(q.waiting) > 0 {
			next := q.waiting[0]
			q.waiting = q.waiting[1:]
			q.start(next.service, next.done)
		}
		if done != nil {
			done()
		}
	})
}

// QueueLen returns the number of waiting (not yet started) jobs.
func (q *Queue) QueueLen() int { return len(q.waiting) }

// InService returns the number of jobs currently being served.
func (q *Queue) InService() int { return q.busy }

// FlowNet models bandwidth-shared data transfers across a set of capacity
// resources (NICs, switch uplinks). Each flow traverses one or more
// resources; rates follow max-min fairness (progressive water-filling),
// recomputed on every flow arrival and departure.
// FlowNet is deterministic: flows are kept in arrival order and resource
// ties break lexicographically, so identical inputs produce identical
// timelines.
type FlowNet struct {
	sim       *Sim
	resources map[string]float64 // capacity in bytes/sec
	flows     []*Flow            // arrival order
	gen       uint64             // invalidates stale completion events
	lastCalc  Time
	// Transferred accumulates total completed bytes.
	Transferred float64
}

// Flow is one in-flight transfer.
type Flow struct {
	resources []string
	size      float64
	remaining float64
	rate      float64
	done      func()
}

// NewFlowNet creates an empty flow network.
func NewFlowNet(sim *Sim) *FlowNet {
	return &FlowNet{
		sim:       sim,
		resources: make(map[string]float64),
	}
}

// AddResource declares a capacity resource (bytes/sec).
func (n *FlowNet) AddResource(name string, capacity float64) {
	n.resources[name] = capacity
}

// HasResource reports whether a resource exists.
func (n *FlowNet) HasResource(name string) bool {
	_, ok := n.resources[name]
	return ok
}

// StartFlow begins a transfer of size bytes across the named resources;
// done fires at completion. Unknown resources are ignored (treated as
// infinite capacity). A zero-size flow completes after the current event.
func (n *FlowNet) StartFlow(size float64, resources []string, done func()) {
	if size <= 0 {
		n.sim.After(0, done)
		return
	}
	var used []string
	for _, r := range resources {
		if n.HasResource(r) {
			used = append(used, r)
		}
	}
	f := &Flow{resources: used, size: size, remaining: size, done: done}
	n.advance()
	n.flows = append(n.flows, f)
	n.recompute()
}

// advance progresses every flow's remaining work to the current time.
func (n *FlowNet) advance() {
	dt := n.sim.Now() - n.lastCalc
	n.lastCalc = n.sim.Now()
	if dt <= 0 {
		return
	}
	for _, f := range n.flows {
		f.remaining -= f.rate * dt
		if f.remaining < 0 {
			f.remaining = 0
		}
	}
}

// recompute runs max-min water-filling and schedules the next completion.
func (n *FlowNet) recompute() {
	n.gen++
	gen := n.gen
	// Water-filling: repeatedly find the tightest resource and freeze its
	// flows at the fair share. Flows are visited in arrival order and
	// resource ties break lexicographically, keeping runs reproducible.
	unfrozen := make([]*Flow, 0, len(n.flows))
	for _, f := range n.flows {
		f.rate = 0
		if len(f.resources) == 0 {
			f.rate = math.Inf(1) // unconstrained flow
			continue
		}
		unfrozen = append(unfrozen, f)
	}
	remCap := make(map[string]float64, len(n.resources))
	for r, c := range n.resources {
		remCap[r] = c
	}
	for len(unfrozen) > 0 {
		// Count unfrozen flows per resource.
		counts := make(map[string]int)
		for _, f := range unfrozen {
			for _, r := range f.resources {
				counts[r]++
			}
		}
		names := make([]string, 0, len(counts))
		for r := range counts {
			names = append(names, r)
		}
		sort.Strings(names)
		bottleneck := ""
		share := math.Inf(1)
		for _, r := range names {
			s := remCap[r] / float64(counts[r])
			if s < share {
				share, bottleneck = s, r
			}
		}
		if bottleneck == "" {
			break
		}
		keep := unfrozen[:0]
		for _, f := range unfrozen {
			through := false
			for _, r := range f.resources {
				if r == bottleneck {
					through = true
					break
				}
			}
			if !through {
				keep = append(keep, f)
				continue
			}
			f.rate = share
			for _, rr := range f.resources {
				remCap[rr] -= share
			}
		}
		unfrozen = keep
	}
	// Schedule the earliest completion.
	next := math.Inf(1)
	for _, f := range n.flows {
		if f.rate <= 0 {
			continue
		}
		t := f.remaining / f.rate
		if math.IsInf(f.rate, 1) {
			t = 0
		}
		if t < next {
			next = t
		}
	}
	if math.IsInf(next, 1) {
		return
	}
	n.sim.After(next, func() {
		if n.gen != gen {
			return // a newer recompute superseded this event
		}
		n.advance()
		finishedSet := make(map[*Flow]bool)
		var finished []*Flow
		for _, f := range n.flows {
			if f.remaining <= 1e-3 {
				finished = append(finished, f)
				finishedSet[f] = true
			}
		}
		if len(finished) == 0 && len(n.flows) > 0 {
			// Floating-point residue kept the mathematically finished flow
			// marginally above zero; complete the minimum-remaining flow to
			// guarantee progress (the generation guard ensures no newer
			// arrival invalidated this event).
			min := n.flows[0]
			for _, f := range n.flows[1:] {
				if f.remaining < min.remaining {
					min = f
				}
			}
			finished = append(finished, min)
			finishedSet[min] = true
		}
		live := n.flows[:0]
		for _, f := range n.flows {
			if finishedSet[f] {
				n.Transferred += f.size
				continue
			}
			live = append(live, f)
		}
		n.flows = live
		n.recompute()
		for _, f := range finished {
			if f.done != nil {
				f.done()
			}
		}
	})
}

// ActiveFlows returns the number of in-flight transfers.
func (n *FlowNet) ActiveFlows() int { return len(n.flows) }
