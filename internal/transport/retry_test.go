package transport

import (
	"context"
	"errors"
	"testing"
	"time"

	"eclipsemr/internal/hashing"
)

// flakyNet fails the first failures calls with err, then succeeds.
type flakyNet struct {
	calls    int
	failures int
	err      error
}

func (f *flakyNet) Listen(id hashing.NodeID, h Handler) error { return nil }
func (f *flakyNet) Unlisten(id hashing.NodeID)                {}
func (f *flakyNet) Close() error                              { return nil }
func (f *flakyNet) Call(_ context.Context, to hashing.NodeID, method string, body []byte) ([]byte, error) {
	f.calls++
	if f.calls <= f.failures {
		return nil, f.err
	}
	return []byte("ok"), nil
}

func TestRetryRecoversTransientFailures(t *testing.T) {
	inner := &flakyNet{failures: 2, err: ErrDropped}
	r := NewRetry(inner, RetryPolicy{MaxAttempts: 3, BaseDelay: time.Millisecond})
	out, err := r.Call(context.Background(), "a", "m", nil)
	if err != nil {
		t.Fatalf("retry did not absorb 2 drops: %v", err)
	}
	if string(out) != "ok" || inner.calls != 3 {
		t.Fatalf("out = %q after %d inner calls", out, inner.calls)
	}
	if got := r.NetMetrics().Snapshot().Get("net.retries"); got != 2 {
		t.Fatalf("net.retries = %d, want 2", got)
	}
}

func TestRetryGivesUpAfterMaxAttempts(t *testing.T) {
	inner := &flakyNet{failures: 100, err: ErrTimeout}
	r := NewRetry(inner, RetryPolicy{MaxAttempts: 3, BaseDelay: time.Millisecond})
	_, err := r.Call(context.Background(), "a", "m", nil)
	if !errors.Is(err, ErrTimeout) {
		t.Fatalf("exhausted error must preserve the cause: %v", err)
	}
	if inner.calls != 3 {
		t.Fatalf("inner calls = %d, want 3", inner.calls)
	}
	if got := r.NetMetrics().Snapshot().Get("net.retry_exhausted"); got != 1 {
		t.Fatalf("net.retry_exhausted = %d, want 1", got)
	}
}

func TestRetryDoesNotRetryStructuralFailures(t *testing.T) {
	inner := &flakyNet{failures: 100, err: ErrUnreachable}
	r := NewRetry(inner, RetryPolicy{MaxAttempts: 5, BaseDelay: time.Millisecond})
	_, err := r.Call(context.Background(), "a", "m", nil)
	if !errors.Is(err, ErrUnreachable) {
		t.Fatalf("err = %v", err)
	}
	// Unreachable is structural: failing fast keeps failure detection and
	// replica failover prompt.
	if inner.calls != 1 {
		t.Fatalf("inner calls = %d, want 1 (no retry on ErrUnreachable)", inner.calls)
	}
}

func TestBackoffGrowthAndCap(t *testing.T) {
	p := RetryPolicy{MaxAttempts: 5, BaseDelay: 2 * time.Millisecond,
		MaxDelay: 10 * time.Millisecond, Multiplier: 2, JitterFrac: -1}.withDefaults()
	want := []time.Duration{
		2 * time.Millisecond, 4 * time.Millisecond, 8 * time.Millisecond,
		10 * time.Millisecond, 10 * time.Millisecond, // capped
	}
	for retry, w := range want {
		if got := p.Backoff(retry, 0.99); got != w {
			t.Fatalf("Backoff(%d) = %v, want %v (jitter disabled)", retry, got, w)
		}
	}
	// With jitter, the delay shrinks by at most JitterFrac.
	pj := RetryPolicy{BaseDelay: 8 * time.Millisecond, JitterFrac: 0.5}.withDefaults()
	if got := pj.Backoff(0, 1.0); got < 4*time.Millisecond || got > 8*time.Millisecond {
		t.Fatalf("jittered Backoff = %v, want within [4ms, 8ms]", got)
	}
}

func TestRetryOverChaosPreservesOrigins(t *testing.T) {
	inner := NewLocal()
	defer inner.Close()
	chaos := NewChaos(inner, ChaosConfig{Seed: 7, Drop: 0.4})
	r := NewRetry(chaos, RetryPolicy{MaxAttempts: 8, BaseDelay: 100 * time.Microsecond})
	if err := r.Listen("a", echoHandler); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 50; i++ {
		if _, err := r.From("b").Call(context.Background(), "a", "m", nil); err != nil {
			t.Fatalf("call %d not absorbed by retry at drop=0.4: %v", i, err)
		}
	}
	snap := r.NetMetrics().Snapshot()
	if snap.Get("net.retries") == 0 {
		t.Fatal("no retries recorded at drop=0.4")
	}
	// The chaos layer saw origin-stamped traffic even through the retry
	// decorator: crash-stop of the *caller* must cut these calls off.
	chaos.Crash("b")
	if _, err := r.From("b").Call(context.Background(), "a", "m", nil); !errors.Is(err, ErrUnreachable) {
		t.Fatalf("crashed origin still reached a: %v", err)
	}
}

// TestTCPDeadListenerTypedError covers the reconnect satellite: a call to
// a registered address where nothing listens must fail quickly with the
// typed ErrUnreachable rather than hanging until the call timeout.
func TestTCPDeadListenerTypedError(t *testing.T) {
	net := NewTCP(map[hashing.NodeID]string{"dead": "127.0.0.1:1"}, 5*time.Second)
	defer net.Close()
	start := time.Now()
	_, err := net.Call(context.Background(), "dead", "m", nil)
	if !errors.Is(err, ErrUnreachable) {
		t.Fatalf("err = %v, want ErrUnreachable", err)
	}
	if time.Since(start) > 3*time.Second {
		t.Fatalf("dead listener took %v to fail (hang, not typed refusal)", time.Since(start))
	}
}

// TestTCPReconnectAfterRegister restarts a node's listener on a new port
// and re-registers the address: subsequent calls must succeed.
func TestTCPReconnectAfterRegister(t *testing.T) {
	server1 := NewTCP(map[hashing.NodeID]string{"a": "127.0.0.1:0"}, 5*time.Second)
	defer server1.Close()
	if err := server1.Listen("a", echoHandler); err != nil {
		t.Fatal(err)
	}
	addr1, ok := server1.Addr("a")
	if !ok {
		t.Fatal("no bound address for a")
	}
	caller := NewTCP(map[hashing.NodeID]string{"a": addr1}, 5*time.Second)
	defer caller.Close()
	if _, err := caller.Call(context.Background(), "a", "m", nil); err != nil {
		t.Fatalf("initial call: %v", err)
	}

	// The node restarts elsewhere: old listener gone, new port.
	server1.Unlisten("a")
	deadline := time.Now().Add(2 * time.Second)
	for {
		if _, err := caller.Call(context.Background(), "a", "m", nil); err != nil {
			break // old address now refuses
		}
		if time.Now().After(deadline) {
			t.Fatal("calls still succeed after Unlisten")
		}
		time.Sleep(5 * time.Millisecond)
	}

	server2 := NewTCP(map[hashing.NodeID]string{"a": "127.0.0.1:0"}, 5*time.Second)
	defer server2.Close()
	if err := server2.Listen("a", echoHandler); err != nil {
		t.Fatal(err)
	}
	addr2, _ := server2.Addr("a")
	caller.Register("a", addr2)
	reply, err := caller.Call(context.Background(), "a", "back", []byte("x"))
	if err != nil {
		t.Fatalf("call after re-register: %v", err)
	}
	if string(reply) != "back:x" {
		t.Fatalf("reply = %q", reply)
	}
}
