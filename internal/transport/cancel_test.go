package transport

import (
	"context"
	"errors"
	"testing"
	"time"

	"eclipsemr/internal/hashing"
)

// TestRetryBackoffHonorsCancel pins the fix for the uncancellable retry
// loop: a caller that cancels mid-backoff must get its goroutine back
// immediately, with a context error and no further attempts.
func TestRetryBackoffHonorsCancel(t *testing.T) {
	inner := &flakyNet{failures: 100, err: ErrDropped}
	r := NewRetry(inner, RetryPolicy{MaxAttempts: 3, BaseDelay: 5 * time.Second})
	ctx, cancel := context.WithCancel(context.Background())
	go func() {
		time.Sleep(10 * time.Millisecond)
		cancel()
	}()
	start := time.Now()
	_, err := r.Call(ctx, "a", "m", nil)
	if elapsed := time.Since(start); elapsed > time.Second {
		t.Fatalf("cancelled call took %v; the backoff ignored ctx", elapsed)
	}
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if inner.calls != 1 {
		t.Fatalf("inner calls = %d, want 1 (no attempts after cancel)", inner.calls)
	}
}

// TestChaosLatencyHonorsCancel pins the fix for the uncancellable chaos
// delay: injected latency must release a cancelled caller immediately.
// This is what lets a speculative winner abort its straggling loser even
// when the straggling is chaos-injected.
func TestChaosLatencyHonorsCancel(t *testing.T) {
	inner := NewLocal()
	defer inner.Close()
	if err := inner.Listen("b", func(ctx context.Context, method string, body []byte) ([]byte, error) {
		return []byte("ok"), nil
	}); err != nil {
		t.Fatal(err)
	}
	c := NewChaos(inner, ChaosConfig{Seed: 1, Latency: 5 * time.Second})
	ctx, cancel := context.WithCancel(context.Background())
	go func() {
		time.Sleep(10 * time.Millisecond)
		cancel()
	}()
	start := time.Now()
	_, err := c.Call(ctx, hashing.NodeID("b"), "ping", nil)
	if elapsed := time.Since(start); elapsed > time.Second {
		t.Fatalf("cancelled call took %v; the chaos delay ignored ctx", elapsed)
	}
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
}
