package transport

import (
	"bytes"
	"encoding/binary"
	"encoding/gob"
	"fmt"
)

// Raw frames are the fast path for bulk-data methods (segment push and
// fetch): a small gob-encoded header describes the payload, and the
// payload itself — already length-prefixed KV bytes on the shuffle path —
// rides behind it verbatim instead of round-tripping through gob's
// reflection-driven Encode/Decode. The frame is an opaque call body to
// every Network implementation, so the v1/v2 TCP envelope, chaos
// injection, retry and trace propagation all apply unchanged:
//
//	u32 headerLen | gob(header) | payload...

// EncodeFrame builds a raw frame from a header value and zero or more
// payload segments (concatenated in order). The segments are copied into
// the frame exactly once; no per-byte encoding pass touches them.
func EncodeFrame(hdr any, payload ...[]byte) ([]byte, error) {
	var buf bytes.Buffer
	buf.Write([]byte{0, 0, 0, 0}) // header-length placeholder
	if err := gob.NewEncoder(&buf).Encode(hdr); err != nil {
		return nil, fmt.Errorf("transport: encode frame header: %w", err)
	}
	hdrLen := buf.Len() - 4
	total := buf.Len()
	for _, p := range payload {
		total += len(p)
	}
	buf.Grow(total - buf.Len())
	for _, p := range payload {
		buf.Write(p)
	}
	out := buf.Bytes()
	binary.BigEndian.PutUint32(out, uint32(hdrLen))
	return out, nil
}

// DecodeFrame decodes a raw frame's header into hdr (a pointer) and
// returns the payload as a sub-slice of body — zero copy; the payload
// aliases body and stays valid as long as body does. The untrusted
// header length is bounds-checked in uint64 space before any conversion
// so a corrupt frame errors instead of panicking, on every platform.
func DecodeFrame(body []byte, hdr any) ([]byte, error) {
	if len(body) < 4 {
		return nil, fmt.Errorf("transport: frame too short for header length (%d bytes)", len(body))
	}
	hdrLen64 := uint64(binary.BigEndian.Uint32(body))
	if hdrLen64 > uint64(len(body)-4) {
		return nil, fmt.Errorf("transport: frame header length %d exceeds body (%d bytes)", hdrLen64, len(body))
	}
	hdrLen := int(hdrLen64)
	if err := gob.NewDecoder(bytes.NewReader(body[4 : 4+hdrLen])).Decode(hdr); err != nil {
		return nil, fmt.Errorf("transport: decode frame header: %w", err)
	}
	return body[4+hdrLen:], nil
}
