package transport

import (
	"context"
	"time"
)

// sleepCtx waits for d or until ctx is cancelled, whichever comes first,
// returning ctx.Err() in the cancelled case. The transport's waits —
// retry backoff, chaos-injected latency — must all go through this
// rather than time.Sleep: a caller that cancels (a speculative attempt
// that lost its race, a job being torn down) has to get its goroutine
// back immediately, not after the tail of an exponential backoff.
func sleepCtx(ctx context.Context, d time.Duration) error {
	if d <= 0 {
		return ctx.Err()
	}
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-t.C:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}
