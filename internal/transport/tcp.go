package transport

import (
	"context"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"net"
	"sync"
	"time"

	"eclipsemr/internal/hashing"
	"eclipsemr/internal/trace"
)

// TCP is a Network over real sockets. Node IDs are resolved through a
// static address registry supplied by the deployer (cmd/eclipse-node
// reads it from a hosts file). One multiplexed connection is maintained
// per destination; concurrent calls are matched to responses by request
// ID, and inbound requests are served on their own goroutines so nodes
// can call each other re-entrantly.
//
// Wire format, all integers big-endian:
//
//	request v1:  u64 reqID | u16 methodLen | method | u32 bodyLen | body
//	request v2:  u64 reqID | u16 methodLen|0x8000 | method
//	             | u16 hdrLen | hdr | u32 bodyLen | body
//	response:    u64 reqID | u8 status(0 ok, 1 err) | u32 len | payload
//
// The high bit of methodLen versions the request frame: v2 inserts a
// small envelope header (today: the trace.SpanContext) between method
// and body. Writers emit v1 whenever the header would be empty — an
// untraced new node is byte-identical to an old one — and readers accept
// both, so old and new binaries interoperate within a rolling upgrade.
type TCP struct {
	mu       sync.Mutex
	registry map[hashing.NodeID]string // node -> host:port
	conns    map[hashing.NodeID]*tcpConn
	servers  map[hashing.NodeID]net.Listener
	accepted map[hashing.NodeID]map[net.Conn]struct{}
	timeout  time.Duration
	closed   bool
	wg       sync.WaitGroup
}

// NewTCP builds a TCP network over the given node->address registry.
// timeout bounds each call (zero means no timeout).
func NewTCP(registry map[hashing.NodeID]string, timeout time.Duration) *TCP {
	reg := make(map[hashing.NodeID]string, len(registry))
	for id, addr := range registry {
		reg[id] = addr
	}
	return &TCP{
		registry: reg,
		conns:    make(map[hashing.NodeID]*tcpConn),
		servers:  make(map[hashing.NodeID]net.Listener),
		accepted: make(map[hashing.NodeID]map[net.Conn]struct{}),
		timeout:  timeout,
	}
}

// Register adds or updates a node address.
func (t *TCP) Register(id hashing.NodeID, addr string) {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.registry[id] = addr
}

// Addr returns the bound listen address for a node started with Listen,
// useful when listening on port 0.
func (t *TCP) Addr(id hashing.NodeID) (string, bool) {
	t.mu.Lock()
	defer t.mu.Unlock()
	ln, ok := t.servers[id]
	if !ok {
		return "", false
	}
	return ln.Addr().String(), true
}

// Listen binds the node's registered address and serves inbound calls
// with h. If the registered address has port 0 the actual bound address
// replaces it in the registry.
func (t *TCP) Listen(id hashing.NodeID, h Handler) error {
	t.mu.Lock()
	if t.closed {
		t.mu.Unlock()
		return errors.New("transport: network closed")
	}
	addr, ok := t.registry[id]
	if !ok {
		t.mu.Unlock()
		return fmt.Errorf("transport: node %s not in registry", id)
	}
	if _, ok := t.servers[id]; ok {
		t.mu.Unlock()
		return fmt.Errorf("transport: node %s already listening", id)
	}
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		t.mu.Unlock()
		return fmt.Errorf("transport: listen %s: %w", addr, err)
	}
	t.servers[id] = ln
	t.registry[id] = ln.Addr().String()
	t.mu.Unlock()

	t.wg.Add(1)
	go func() {
		defer t.wg.Done()
		for {
			conn, err := ln.Accept()
			if err != nil {
				return // listener closed
			}
			t.mu.Lock()
			set := t.accepted[id]
			if set == nil {
				set = make(map[net.Conn]struct{})
				t.accepted[id] = set
			}
			set[conn] = struct{}{}
			t.mu.Unlock()
			t.wg.Add(1)
			go func() {
				defer t.wg.Done()
				t.serveConn(conn, h)
				t.mu.Lock()
				if set := t.accepted[id]; set != nil {
					delete(set, conn)
				}
				t.mu.Unlock()
			}()
		}
	}()
	return nil
}

// serveConn reads requests and dispatches each to the handler on its own
// goroutine; responses are serialized through a write lock.
func (t *TCP) serveConn(conn net.Conn, h Handler) {
	defer conn.Close()
	var wmu sync.Mutex
	for {
		reqID, method, hdr, body, err := readRequest(conn)
		if err != nil {
			return
		}
		go func() {
			//lint:ignore ctxflow server-side root for one inbound request; cancellation does not cross the wire (see handlerContext)
			ctx := context.Background()
			if len(hdr) > 0 {
				// A corrupt header only loses tracing, never the call.
				if sc, err := trace.DecodeSpanContext(hdr); err == nil {
					ctx = trace.WithRemote(ctx, sc)
				}
			}
			reply, herr := h(ctx, method, body)
			wmu.Lock()
			defer wmu.Unlock()
			status, payload := byte(0), reply
			if herr != nil {
				status, payload = byte(1), []byte(herr.Error())
			}
			if err := writeResponse(conn, reqID, status, payload); err != nil {
				// A failed — possibly partial — response write desyncs the
				// framing for every later reply multiplexed on this
				// connection. Tear it down so the peer fails fast and
				// redials instead of decoding garbage lengths.
				conn.Close()
			}
		}()
	}
}

// Call invokes a method on a remote node.
func (t *TCP) Call(ctx context.Context, to hashing.NodeID, method string, body []byte) ([]byte, error) {
	c, err := t.conn(to)
	if err != nil {
		return nil, err
	}
	reply, err := c.roundTrip(method, trace.Outbound(ctx).Encode(), body, t.timeout)
	if err != nil {
		var re *RemoteError
		if !errors.As(err, &re) {
			// Transport-level failure: drop the cached connection so the
			// next call redials.
			t.dropConn(to, c)
		}
		return nil, err
	}
	return reply, nil
}

func (t *TCP) conn(to hashing.NodeID) (*tcpConn, error) {
	t.mu.Lock()
	if t.closed {
		t.mu.Unlock()
		return nil, errors.New("transport: network closed")
	}
	if c, ok := t.conns[to]; ok {
		t.mu.Unlock()
		return c, nil
	}
	addr, ok := t.registry[to]
	t.mu.Unlock()
	if !ok {
		return nil, fmt.Errorf("%w: %s (not in registry)", ErrUnreachable, to)
	}
	raw, err := net.DialTimeout("tcp", addr, 3*time.Second)
	if err != nil {
		return nil, fmt.Errorf("%w: %s: %v", ErrUnreachable, to, err)
	}
	c := newTCPConn(raw)
	t.mu.Lock()
	if existing, ok := t.conns[to]; ok {
		t.mu.Unlock()
		c.close(errors.New("transport: duplicate connection"))
		return existing, nil
	}
	t.conns[to] = c
	t.mu.Unlock()
	return c, nil
}

func (t *TCP) dropConn(to hashing.NodeID, c *tcpConn) {
	t.mu.Lock()
	if t.conns[to] == c {
		delete(t.conns, to)
	}
	t.mu.Unlock()
	c.close(ErrUnreachable)
}

// Unlisten stops serving on a node, closing its listener and every
// connection it has accepted (so in-flight peers see the crash promptly).
func (t *TCP) Unlisten(id hashing.NodeID) {
	t.mu.Lock()
	ln, ok := t.servers[id]
	delete(t.servers, id)
	conns := t.accepted[id]
	delete(t.accepted, id)
	t.mu.Unlock()
	if ok {
		ln.Close()
	}
	for conn := range conns {
		conn.Close()
	}
}

// Close stops all listeners and client connections.
func (t *TCP) Close() error {
	t.mu.Lock()
	if t.closed {
		t.mu.Unlock()
		return nil
	}
	t.closed = true
	servers := t.servers
	conns := t.conns
	accepted := t.accepted
	t.servers = map[hashing.NodeID]net.Listener{}
	t.conns = map[hashing.NodeID]*tcpConn{}
	t.accepted = map[hashing.NodeID]map[net.Conn]struct{}{}
	t.mu.Unlock()
	for _, ln := range servers {
		ln.Close()
	}
	for _, c := range conns {
		c.close(errors.New("transport: network closed"))
	}
	// Accepted server-side connections must be torn down too, or wg.Wait
	// blocks until every remote peer hangs up on its own.
	for _, set := range accepted {
		for conn := range set {
			conn.Close()
		}
	}
	t.wg.Wait()
	return nil
}

// tcpConn is one multiplexed client connection.
type tcpConn struct {
	raw     net.Conn
	wmu     sync.Mutex
	mu      sync.Mutex
	nextID  uint64
	pending map[uint64]chan tcpReply
	err     error
}

type tcpReply struct {
	status byte
	data   []byte
}

func newTCPConn(raw net.Conn) *tcpConn {
	c := &tcpConn{raw: raw, pending: make(map[uint64]chan tcpReply)}
	//lint:ignore goroleak readLoop exits when the connection closes: readReply errors out and the loop returns
	go c.readLoop()
	return c
}

func (c *tcpConn) readLoop() {
	for {
		var hdr [13]byte
		if _, err := io.ReadFull(c.raw, hdr[:]); err != nil {
			c.close(fmt.Errorf("%w: %v", ErrUnreachable, err))
			return
		}
		reqID := binary.BigEndian.Uint64(hdr[0:8])
		status := hdr[8]
		n := binary.BigEndian.Uint32(hdr[9:13])
		data := make([]byte, n)
		if _, err := io.ReadFull(c.raw, data); err != nil {
			c.close(fmt.Errorf("%w: %v", ErrUnreachable, err))
			return
		}
		c.mu.Lock()
		ch, ok := c.pending[reqID]
		delete(c.pending, reqID)
		c.mu.Unlock()
		if ok {
			ch <- tcpReply{status: status, data: data}
		}
	}
}

func (c *tcpConn) roundTrip(method string, hdr, body []byte, timeout time.Duration) ([]byte, error) {
	ch := make(chan tcpReply, 1)
	c.mu.Lock()
	if c.err != nil {
		err := c.err
		c.mu.Unlock()
		return nil, err
	}
	c.nextID++
	id := c.nextID
	c.pending[id] = ch
	c.mu.Unlock()

	if err := c.writeRequest(id, method, hdr, body); err != nil {
		c.mu.Lock()
		delete(c.pending, id)
		c.mu.Unlock()
		return nil, fmt.Errorf("%w: %v", ErrUnreachable, err)
	}

	var timer <-chan time.Time
	if timeout > 0 {
		tm := time.NewTimer(timeout)
		defer tm.Stop()
		timer = tm.C
	}
	select {
	case r := <-ch:
		switch r.status {
		case 0:
			return r.data, nil
		case statusTransportErr:
			return nil, fmt.Errorf("%w: %s", ErrUnreachable, r.data)
		default:
			return nil, &RemoteError{Method: method, Msg: string(r.data)}
		}
	case <-timer:
		c.mu.Lock()
		delete(c.pending, id)
		c.mu.Unlock()
		return nil, fmt.Errorf("%w: %s after %v", ErrTimeout, method, timeout)
	}
}

// frameV2Flag marks a v2 request frame in the methodLen field; method
// names are bounded well below 32 KiB so the bit is free.
const frameV2Flag = 0x8000

func (c *tcpConn) writeRequest(id uint64, method string, envHdr, body []byte) error {
	if len(method) >= frameV2Flag {
		return errors.New("transport: method name too long")
	}
	if len(envHdr) > 1<<16-1 {
		return errors.New("transport: envelope header too long")
	}
	buf := make([]byte, 0, 16+len(method)+len(envHdr)+len(body))
	var scratch [8]byte
	binary.BigEndian.PutUint64(scratch[:], id)
	buf = append(buf, scratch[:]...)
	mlen := uint16(len(method))
	if len(envHdr) > 0 {
		mlen |= frameV2Flag // v2 frame: envelope header follows the method
	}
	buf = binary.BigEndian.AppendUint16(buf, mlen)
	buf = append(buf, method...)
	if len(envHdr) > 0 {
		buf = binary.BigEndian.AppendUint16(buf, uint16(len(envHdr)))
		buf = append(buf, envHdr...)
	}
	buf = binary.BigEndian.AppendUint32(buf, uint32(len(body)))
	buf = append(buf, body...)
	c.wmu.Lock()
	defer c.wmu.Unlock()
	_, err := c.raw.Write(buf)
	return err
}

func (c *tcpConn) close(err error) {
	c.mu.Lock()
	if c.err == nil {
		c.err = err
	}
	pending := c.pending
	c.pending = map[uint64]chan tcpReply{}
	c.mu.Unlock()
	c.raw.Close()
	for _, ch := range pending {
		ch <- tcpReply{status: statusTransportErr, data: []byte(err.Error())}
	}
}

// statusTransportErr marks a locally synthesized failure reply (connection
// torn down) as opposed to an application error relayed from the remote
// handler (status 1).
const statusTransportErr = 2

func readRequest(r io.Reader) (reqID uint64, method string, envHdr, body []byte, err error) {
	var hdr [10]byte
	if _, err = io.ReadFull(r, hdr[:]); err != nil {
		return 0, "", nil, nil, err
	}
	reqID = binary.BigEndian.Uint64(hdr[0:8])
	mlen := binary.BigEndian.Uint16(hdr[8:10])
	v2 := mlen&frameV2Flag != 0
	mbuf := make([]byte, mlen&^frameV2Flag)
	if _, err = io.ReadFull(r, mbuf); err != nil {
		return 0, "", nil, nil, err
	}
	if v2 {
		var lbuf [2]byte
		if _, err = io.ReadFull(r, lbuf[:]); err != nil {
			return 0, "", nil, nil, err
		}
		envHdr = make([]byte, binary.BigEndian.Uint16(lbuf[:]))
		if _, err = io.ReadFull(r, envHdr); err != nil {
			return 0, "", nil, nil, err
		}
	}
	var lbuf [4]byte
	if _, err = io.ReadFull(r, lbuf[:]); err != nil {
		return 0, "", nil, nil, err
	}
	body = make([]byte, binary.BigEndian.Uint32(lbuf[:]))
	if _, err = io.ReadFull(r, body); err != nil {
		return 0, "", nil, nil, err
	}
	return reqID, string(mbuf), envHdr, body, nil
}

func writeResponse(w io.Writer, reqID uint64, status byte, payload []byte) error {
	buf := make([]byte, 0, 13+len(payload))
	var hdr [13]byte
	binary.BigEndian.PutUint64(hdr[0:8], reqID)
	hdr[8] = status
	binary.BigEndian.PutUint32(hdr[9:13], uint32(len(payload)))
	buf = append(buf, hdr[:]...)
	buf = append(buf, payload...)
	_, err := w.Write(buf)
	return err
}

var _ Network = (*TCP)(nil)
var _ Network = (*Local)(nil)
