package transport

import (
	"context"
	"fmt"
	"math/rand"
	"strconv"
	"sync"
	"time"

	"eclipsemr/internal/hashing"
	"eclipsemr/internal/metrics"
	"eclipsemr/internal/trace"
)

// RetryPolicy bounds transparent retries of transient call failures
// (dropped messages, timeouts) with exponential backoff and jitter.
// Structural failures — ErrUnreachable, remote application errors — are
// never retried here: unreachable nodes are the upper layers' business
// (replica failover, task re-dispatch), and application errors are
// deterministic.
type RetryPolicy struct {
	// MaxAttempts is the total number of tries (first call included).
	// Zero selects 3; 1 disables retries.
	MaxAttempts int
	// BaseDelay is the backoff before the first retry; each further retry
	// multiplies it by Multiplier, capped at MaxDelay. Zeros select
	// 2 ms / 2.0 / 250 ms.
	BaseDelay  time.Duration
	MaxDelay   time.Duration
	Multiplier float64
	// JitterFrac randomizes each delay within [d·(1−JitterFrac), d] so
	// synchronized retry storms decorrelate. Zero selects 0.5; negative
	// disables jitter.
	JitterFrac float64
	// Seed seeds the jitter PRNG (reproducible backoff schedules in
	// tests). Zero selects 1.
	Seed int64
}

// DefaultRetryPolicy returns the policy the cluster mounts by default.
func DefaultRetryPolicy() RetryPolicy {
	return RetryPolicy{MaxAttempts: 3, BaseDelay: 2 * time.Millisecond,
		MaxDelay: 250 * time.Millisecond, Multiplier: 2, JitterFrac: 0.5, Seed: 1}
}

// withDefaults fills zero fields from DefaultRetryPolicy.
func (p RetryPolicy) withDefaults() RetryPolicy {
	def := DefaultRetryPolicy()
	if p.MaxAttempts <= 0 {
		p.MaxAttempts = def.MaxAttempts
	}
	if p.BaseDelay <= 0 {
		p.BaseDelay = def.BaseDelay
	}
	if p.MaxDelay <= 0 {
		p.MaxDelay = def.MaxDelay
	}
	if p.Multiplier < 1 {
		p.Multiplier = def.Multiplier
	}
	if p.JitterFrac == 0 {
		p.JitterFrac = def.JitterFrac
	} else if p.JitterFrac < 0 {
		p.JitterFrac = 0
	}
	if p.Seed == 0 {
		p.Seed = def.Seed
	}
	return p
}

// Backoff returns the delay before retry number retry (0-based), given a
// uniform variate u in [0,1) for the jitter.
func (p RetryPolicy) Backoff(retry int, u float64) time.Duration {
	d := float64(p.BaseDelay)
	for i := 0; i < retry; i++ {
		d *= p.Multiplier
		if d >= float64(p.MaxDelay) {
			d = float64(p.MaxDelay)
			break
		}
	}
	d *= 1 - p.JitterFrac*u
	return time.Duration(d)
}

// Retry decorates a Network with the policy: Call transparently retries
// transient failures. It preserves origin facets of the inner network, so
// Retry(Chaos(Local)) keeps per-origin fault injection.
type Retry struct {
	inner  Network
	policy RetryPolicy
	reg    *metrics.Registry

	mu  sync.Mutex
	rnd *rand.Rand
}

// NewRetry wraps a network. A zero policy selects DefaultRetryPolicy.
func NewRetry(inner Network, policy RetryPolicy) *Retry {
	policy = policy.withDefaults()
	r := &Retry{
		inner:  inner,
		policy: policy,
		reg:    metrics.NewRegistry(),
		rnd:    rand.New(rand.NewSource(policy.Seed)),
	}
	// Pre-create so every metrics snapshot shows the retry counters.
	for _, name := range []string{"net.calls", "net.retries", "net.retry_exhausted"} {
		r.reg.Counter(name)
	}
	return r
}

// Listen delegates to the inner network.
func (r *Retry) Listen(id hashing.NodeID, h Handler) error { return r.inner.Listen(id, h) }

// Unlisten delegates to the inner network.
func (r *Retry) Unlisten(id hashing.NodeID) { r.inner.Unlisten(id) }

// Close delegates to the inner network.
func (r *Retry) Close() error { return r.inner.Close() }

// Call invokes a method, retrying transient failures per the policy.
func (r *Retry) Call(ctx context.Context, to hashing.NodeID, method string, body []byte) ([]byte, error) {
	return r.callOn(ctx, r.inner, to, method, body)
}

// From returns a facet with the given origin if the inner network
// supports origins, else the Retry itself.
func (r *Retry) From(id hashing.NodeID) Network {
	if on, ok := r.inner.(OriginNetwork); ok {
		return retryFacet{r: r, inner: on.From(id)}
	}
	return r
}

// Unwrap exposes the inner network.
func (r *Retry) Unwrap() Network { return r.inner }

// NetMetrics exposes the retry counters.
func (r *Retry) NetMetrics() *metrics.Registry { return r.reg }

func (r *Retry) uniform() float64 {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.rnd.Float64()
}

// callOn is the shared retry loop for the base network and its facets.
// The whole loop is timed into a per-method latency histogram, so the
// recorded RPC latency includes backoff sleeps and any chaos-injected
// delay from an inner Chaos network — the latency the caller actually
// experienced.
func (r *Retry) callOn(ctx context.Context, inner Network, to hashing.NodeID, method string, body []byte) ([]byte, error) {
	r.reg.Counter("net.calls").Inc()
	//lint:ignore metricname per-RPC-method histogram family; the name space is bounded by the cluster's fixed method set
	defer r.reg.Histogram("net.rpc." + method + "_ns").Start().Stop()
	var lastErr error
	for attempt := 0; attempt < r.policy.MaxAttempts; attempt++ {
		if attempt > 0 {
			r.reg.Counter("net.retries").Inc()
			backoff := r.policy.Backoff(attempt-1, r.uniform())
			// Each retry attempt is a span event on the caller side, and
			// the (last) attempt number an annotation, so retried RPCs are
			// visible in collected traces.
			trace.Eventf(ctx, "retry attempt=%d method=%s backoff=%v cause=%v",
				attempt, method, backoff, lastErr)
			trace.Annotate(ctx, "retry", strconv.Itoa(attempt))
			// A cancelled caller gets out of the backoff immediately; the
			// context error is non-transient, so no further attempts run.
			if err := sleepCtx(ctx, backoff); err != nil {
				return nil, fmt.Errorf("transport: %s to %s abandoned in backoff after %d attempt(s): %w",
					method, to, attempt, err)
			}
		}
		out, err := inner.Call(ctx, to, method, body)
		if err == nil {
			return out, nil
		}
		lastErr = err
		if !IsTransient(err) {
			return nil, err
		}
	}
	r.reg.Counter("net.retry_exhausted").Inc()
	return nil, fmt.Errorf("transport: %d attempts to %s exhausted: %w",
		r.policy.MaxAttempts, to, lastErr)
}

type retryFacet struct {
	r     *Retry
	inner Network
}

func (f retryFacet) Listen(id hashing.NodeID, h Handler) error { return f.r.Listen(id, h) }
func (f retryFacet) Unlisten(id hashing.NodeID)                { f.r.Unlisten(id) }
func (f retryFacet) Close() error                              { return f.r.Close() }
func (f retryFacet) Call(ctx context.Context, to hashing.NodeID, method string, body []byte) ([]byte, error) {
	return f.r.callOn(ctx, f.inner, to, method, body)
}

var _ OriginNetwork = (*Retry)(nil)
var _ MetricsSource = (*Retry)(nil)
