// Package transport provides the message substrate EclipseMR nodes use to
// talk to each other: a Network interface with two implementations, an
// in-process network for tests, examples and single-process clusters, and
// a TCP network (cmd/eclipse-node) for real multi-machine deployment.
//
// The unit of communication is a named method call carrying opaque bytes;
// the cluster layer defines the method set and encodes payloads with gob
// (see Codec). Keeping the transport byte-oriented means every protocol
// interaction — metadata lookup, block reads, proactive shuffle pushes,
// heartbeats, election messages — crosses the same boundary whether the
// peers share a process or a data center.
package transport

import (
	"bytes"
	"context"
	"encoding/gob"
	"errors"
	"fmt"
	"sync"

	"eclipsemr/internal/hashing"
	"eclipsemr/internal/metrics"
	"eclipsemr/internal/trace"
)

// Handler processes one inbound call on a node. The context carries the
// caller's trace.SpanContext (if the call was traced) and nothing else:
// cancellation does not cross the wire, so handlers receive a fresh
// context even on the in-process network.
type Handler func(ctx context.Context, method string, body []byte) ([]byte, error)

// Network connects nodes by ID.
type Network interface {
	// Listen registers a node and its handler.
	Listen(id hashing.NodeID, h Handler) error
	// Call invokes method on the destination node and returns its reply.
	// The context's active trace span (if any) is propagated to the
	// handler through the transport envelope.
	Call(ctx context.Context, to hashing.NodeID, method string, body []byte) ([]byte, error)
	// Unlisten removes a node; subsequent calls to it fail.
	Unlisten(id hashing.NodeID)
	// Close tears the network down.
	Close() error
}

// handlerContext builds the context a handler runs under: a fresh
// background context carrying only the caller's span context, preserving
// distributed semantics (no shared cancellation or values) on every
// transport.
func handlerContext(callerCtx context.Context) context.Context {
	//lint:ignore ctxflow deliberate severing: handlers must not inherit the caller's cancellation, mirroring a real network boundary
	return trace.WithRemote(context.Background(), trace.Outbound(callerCtx))
}

// ErrUnreachable is returned when the destination node is not listening
// (crashed, partitioned, or never started).
var ErrUnreachable = errors.New("transport: node unreachable")

// ErrDropped is returned when a message was lost in flight (only the
// fault-injecting Chaos network produces it). The handler may or may not
// have executed — a dropped reply looks identical to a dropped request —
// so callers must treat retried calls as at-least-once.
var ErrDropped = errors.New("transport: message dropped")

// ErrTimeout is returned when a call did not complete within the
// transport's per-call timeout. As with ErrDropped, the remote handler
// may have executed.
var ErrTimeout = errors.New("transport: call timed out")

// IsTransient reports whether an error is worth retrying on the same
// destination: lost messages and timeouts are transient, while
// ErrUnreachable is structural (the node is gone — callers should fail
// over to a replica instead of hammering a dead address).
func IsTransient(err error) bool {
	return errors.Is(err, ErrDropped) || errors.Is(err, ErrTimeout)
}

// OriginNetwork is implemented by networks that can stamp outbound calls
// with the calling node's identity. Per-origin facets enable asymmetric
// fault injection (A can reach B while B cannot reach A) and proper
// crash-stop semantics (a crashed node's own outbound calls fail too).
type OriginNetwork interface {
	Network
	// From returns a facet of the network whose Calls carry the given
	// origin. Listen/Unlisten/Close on the facet affect the shared
	// network.
	From(id hashing.NodeID) Network
}

// MetricsSource is implemented by network layers that expose operational
// counters (retries, injected drops, …).
type MetricsSource interface {
	NetMetrics() *metrics.Registry
}

// RemoteError wraps an error string returned by a remote handler so
// callers can distinguish transport failures from application failures.
type RemoteError struct {
	Method string
	Msg    string
}

func (e *RemoteError) Error() string {
	return fmt.Sprintf("transport: remote %s failed: %s", e.Method, e.Msg)
}

// Local is an in-process Network. Payloads are copied on both directions
// so callers cannot observe shared memory across the "wire", preserving
// distributed semantics. Nodes can be partitioned for failure-injection
// tests.
type Local struct {
	mu          sync.RWMutex
	handlers    map[hashing.NodeID]Handler
	partitioned map[hashing.NodeID]bool
	closed      bool
}

// NewLocal builds an empty in-process network.
func NewLocal() *Local {
	return &Local{
		handlers:    make(map[hashing.NodeID]Handler),
		partitioned: make(map[hashing.NodeID]bool),
	}
}

// Listen registers a node.
func (l *Local) Listen(id hashing.NodeID, h Handler) error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.closed {
		return errors.New("transport: network closed")
	}
	if _, ok := l.handlers[id]; ok {
		return fmt.Errorf("transport: node %s already listening", id)
	}
	l.handlers[id] = h
	return nil
}

// Call invokes a method on the destination.
func (l *Local) Call(ctx context.Context, to hashing.NodeID, method string, body []byte) ([]byte, error) {
	l.mu.RLock()
	h, ok := l.handlers[to]
	cut := l.partitioned[to]
	closed := l.closed
	l.mu.RUnlock()
	if closed || !ok || cut {
		return nil, fmt.Errorf("%w: %s", ErrUnreachable, to)
	}
	reply, err := h(handlerContext(ctx), method, append([]byte(nil), body...))
	if err != nil {
		return nil, &RemoteError{Method: method, Msg: err.Error()}
	}
	return append([]byte(nil), reply...), nil
}

// Unlisten removes a node.
func (l *Local) Unlisten(id hashing.NodeID) {
	l.mu.Lock()
	defer l.mu.Unlock()
	delete(l.handlers, id)
	delete(l.partitioned, id)
}

// Partition makes a node unreachable without deregistering it — the node
// keeps running but nobody can call it, simulating a network failure as
// opposed to a crash.
func (l *Local) Partition(id hashing.NodeID, cut bool) {
	l.mu.Lock()
	defer l.mu.Unlock()
	l.partitioned[id] = cut
}

// Close shuts the network down.
func (l *Local) Close() error {
	l.mu.Lock()
	defer l.mu.Unlock()
	l.closed = true
	l.handlers = map[hashing.NodeID]Handler{}
	return nil
}

// Encode gob-encodes a value for a call payload.
func Encode(v any) ([]byte, error) {
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(v); err != nil {
		return nil, fmt.Errorf("transport: encode: %w", err)
	}
	return buf.Bytes(), nil
}

// Decode gob-decodes a call payload into out (a pointer).
func Decode(data []byte, out any) error {
	if err := gob.NewDecoder(bytes.NewReader(data)).Decode(out); err != nil {
		return fmt.Errorf("transport: decode: %w", err)
	}
	return nil
}
