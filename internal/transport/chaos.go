package transport

import (
	"context"
	"fmt"
	"hash/fnv"
	"sync"
	"time"

	"eclipsemr/internal/hashing"
	"eclipsemr/internal/metrics"
	"eclipsemr/internal/trace"
)

// ChaosConfig parameterizes fault injection. The zero value injects
// nothing; the decorated network behaves exactly like the inner one.
type ChaosConfig struct {
	// Seed makes the failure schedule reproducible: the drop/latency
	// decision for the n-th call on a given (from, to) link is a pure
	// function of (Seed, from, to, n), so the same seed and the same
	// per-link call sequence replay the same faults regardless of how
	// calls on *different* links interleave.
	Seed int64
	// Drop is the per-message loss probability in [0, 1]. Half the losses
	// hit the request (the handler never runs), half hit the reply (the
	// handler runs but the caller sees ErrDropped) — exercising both the
	// at-most-once and the at-least-once failure mode.
	Drop float64
	// Latency is added to every delivered call.
	Latency time.Duration
	// Jitter adds a uniform extra delay in [0, Jitter).
	Jitter time.Duration
	// Logf, when set, receives one line per injected fault, carrying the
	// link, call index and seed needed to reproduce the schedule
	// (t.Logf in tests).
	Logf func(format string, args ...any)
}

// linkKey identifies a directed link; an empty from means the caller did
// not use an origin facet.
type linkKey struct {
	from, to hashing.NodeID
}

// linkRule overrides the global config for one directed link.
type linkRule struct {
	drop       float64
	hasDrop    bool
	latency    time.Duration
	jitter     time.Duration
	hasLatency bool
	cut        bool
}

// Chaos decorates a Network with seeded fault injection: per-link message
// drop, latency and jitter, asymmetric partitions, and crash-stop of
// whole nodes. It is the adversarial substrate the robustness tests run
// the full cluster under; consumers survive it through the Retry layer,
// driver task re-dispatch and dhtfs replica failover.
type Chaos struct {
	inner Network
	reg   *metrics.Registry

	mu      sync.Mutex
	cfg     ChaosConfig
	links   map[linkKey]linkRule
	crashed map[hashing.NodeID]bool
	counts  map[linkKey]uint64
}

// NewChaos wraps a network with fault injection.
func NewChaos(inner Network, cfg ChaosConfig) *Chaos {
	c := &Chaos{
		inner:   inner,
		reg:     metrics.NewRegistry(),
		cfg:     cfg,
		links:   make(map[linkKey]linkRule),
		crashed: make(map[hashing.NodeID]bool),
		counts:  make(map[linkKey]uint64),
	}
	// Pre-create the counters so a fault-free run still exposes them.
	for _, name := range []string{
		"chaos.calls", "chaos.drops", "chaos.drops.request",
		"chaos.drops.reply", "chaos.blocked",
	} {
		c.reg.Counter(name)
	}
	return c
}

// SetDrop replaces the global drop probability (enable or quiesce chaos
// at a test phase boundary, e.g. after a fault-free upload).
func (c *Chaos) SetDrop(p float64) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.cfg.Drop = p
}

// SetLink overrides drop and latency for one directed link. An empty from
// matches calls made without an origin facet as well as any facet, so
// ("", to) approximates "anyone → to".
func (c *Chaos) SetLink(from, to hashing.NodeID, drop float64, latency, jitter time.Duration) {
	c.mu.Lock()
	defer c.mu.Unlock()
	r := c.links[linkKey{from, to}]
	r.drop, r.hasDrop = drop, true
	r.latency, r.jitter, r.hasLatency = latency, jitter, true
	c.links[linkKey{from, to}] = r
}

// Partition cuts (or heals) the directed link from → to. Cutting only one
// direction yields an asymmetric partition: from cannot reach to, while
// to still reaches from.
func (c *Chaos) Partition(from, to hashing.NodeID, cut bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	r := c.links[linkKey{from, to}]
	r.cut = cut
	c.links[linkKey{from, to}] = r
}

// Crash makes a node fail-stop at the transport level: every call to it
// and — via origin facets — from it returns ErrUnreachable, including
// replies to calls already in flight. The node's goroutines keep running
// (as a real crashed machine's peers cannot tell), but nothing it does is
// observable.
func (c *Chaos) Crash(id hashing.NodeID) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.crashed[id] = true
}

// Revive heals a crashed node.
func (c *Chaos) Revive(id hashing.NodeID) {
	c.mu.Lock()
	defer c.mu.Unlock()
	delete(c.crashed, id)
}

// Listen delegates to the inner network.
func (c *Chaos) Listen(id hashing.NodeID, h Handler) error { return c.inner.Listen(id, h) }

// Unlisten delegates to the inner network.
func (c *Chaos) Unlisten(id hashing.NodeID) { c.inner.Unlisten(id) }

// Close delegates to the inner network.
func (c *Chaos) Close() error { return c.inner.Close() }

// Call invokes a method with fault injection, with no origin identity.
func (c *Chaos) Call(ctx context.Context, to hashing.NodeID, method string, body []byte) ([]byte, error) {
	return c.call(ctx, "", to, method, body)
}

// From returns an origin-stamped facet.
func (c *Chaos) From(id hashing.NodeID) Network { return chaosFacet{c: c, from: id} }

// Unwrap exposes the inner network (metrics aggregation walks the chain).
func (c *Chaos) Unwrap() Network { return c.inner }

// NetMetrics exposes the injection counters.
func (c *Chaos) NetMetrics() *metrics.Registry { return c.reg }

type chaosFacet struct {
	c    *Chaos
	from hashing.NodeID
}

func (f chaosFacet) Listen(id hashing.NodeID, h Handler) error { return f.c.Listen(id, h) }
func (f chaosFacet) Unlisten(id hashing.NodeID)                { f.c.Unlisten(id) }
func (f chaosFacet) Close() error                              { return f.c.Close() }
func (f chaosFacet) Call(ctx context.Context, to hashing.NodeID, method string, body []byte) ([]byte, error) {
	return f.c.call(ctx, f.from, to, method, body)
}

// splitmix64 is the per-call pseudo-random mixer; a fixed, portable
// function keeps failure schedules identical across platforms and runs.
func splitmix64(z uint64) uint64 {
	z += 0x9e3779b97f4a7c15
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// linkHash folds a directed link into the schedule seed.
func linkHash(from, to hashing.NodeID) uint64 {
	h := fnv.New64a()
	h.Write([]byte(from))
	h.Write([]byte{0})
	h.Write([]byte(to))
	return h.Sum64()
}

// uniform derives the k-th uniform [0,1) variate of call n on a link.
func uniform(seed int64, link uint64, n uint64, k uint64) float64 {
	u := splitmix64(uint64(seed) ^ splitmix64(link+k*0x632be59bd9b4e019) ^ splitmix64(n))
	return float64(u>>11) / float64(1<<53)
}

// call runs the fault schedule for one message.
func (c *Chaos) call(ctx context.Context, from, to hashing.NodeID, method string, body []byte) ([]byte, error) {
	c.mu.Lock()
	cfg := c.cfg
	drop, latency, jitter := cfg.Drop, cfg.Latency, cfg.Jitter
	cut := false
	// Exact link first, then "anyone → to".
	for _, k := range []linkKey{{from, to}, {"", to}} {
		if r, ok := c.links[k]; ok {
			if r.hasDrop {
				drop = r.drop
			}
			if r.hasLatency {
				latency, jitter = r.latency, r.jitter
			}
			cut = cut || r.cut
			break
		}
	}
	dead := c.crashed[to] || (from != "" && c.crashed[from])
	link := linkKey{from, to}
	n := c.counts[link]
	c.counts[link] = n + 1
	c.mu.Unlock()

	c.reg.Counter("chaos.calls").Inc()
	if dead || cut {
		c.reg.Counter("chaos.blocked").Inc()
		return nil, fmt.Errorf("%w: %s (chaos: link %s->%s blocked)", ErrUnreachable, to, from, to)
	}

	lh := linkHash(from, to)
	uDrop := uniform(cfg.Seed, lh, n, 0)
	// The RNG draws above happen before the delay, so a cancelling caller
	// does not perturb the deterministic fault schedule other callers see.
	if d := latency + time.Duration(float64(jitter)*uniform(cfg.Seed, lh, n, 1)); d > 0 {
		trace.Annotate(ctx, "chaos.delay", d.String())
		if err := sleepCtx(ctx, d); err != nil {
			return nil, fmt.Errorf("transport: %s to %s cancelled in chaos delay: %w", method, to, err)
		}
	}
	if uDrop < drop/2 {
		c.reg.Counter("chaos.drops").Inc()
		c.reg.Counter("chaos.drops.request").Inc()
		trace.Eventf(ctx, "chaos: dropped request %s n=%d", method, n)
		c.logf("chaos: drop request link=%s->%s method=%s n=%d seed=%d", from, to, method, n, cfg.Seed)
		return nil, fmt.Errorf("%w: request %s to %s (chaos n=%d)", ErrDropped, method, to, n)
	}
	out, err := c.inner.Call(ctx, to, method, body)
	if uDrop < drop {
		c.reg.Counter("chaos.drops").Inc()
		c.reg.Counter("chaos.drops.reply").Inc()
		trace.Eventf(ctx, "chaos: dropped reply %s n=%d", method, n)
		c.logf("chaos: drop reply link=%s->%s method=%s n=%d seed=%d", from, to, method, n, cfg.Seed)
		return nil, fmt.Errorf("%w: reply %s from %s (chaos n=%d)", ErrDropped, method, to, n)
	}
	// Crash-stop must also swallow replies to calls that were in flight
	// when the node died.
	c.mu.Lock()
	dead = c.crashed[to] || (from != "" && c.crashed[from])
	c.mu.Unlock()
	if dead {
		c.reg.Counter("chaos.blocked").Inc()
		return nil, fmt.Errorf("%w: %s (chaos: crashed mid-call)", ErrUnreachable, to)
	}
	return out, err
}

func (c *Chaos) logf(format string, args ...any) {
	c.mu.Lock()
	logf := c.cfg.Logf
	c.mu.Unlock()
	if logf != nil {
		logf(format, args...)
	}
}

var _ OriginNetwork = (*Chaos)(nil)
var _ MetricsSource = (*Chaos)(nil)
