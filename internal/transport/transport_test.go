package transport

import (
	"context"
	"errors"
	"fmt"
	"strings"
	"sync"
	"testing"
	"time"

	"eclipsemr/internal/hashing"
)

func echoHandler(_ context.Context, method string, body []byte) ([]byte, error) {
	if method == "fail" {
		return nil, errors.New("boom")
	}
	return append([]byte(method+":"), body...), nil
}

func TestLocalCall(t *testing.T) {
	n := NewLocal()
	if err := n.Listen("a", echoHandler); err != nil {
		t.Fatal(err)
	}
	reply, err := n.Call(context.Background(), "a", "echo", []byte("hi"))
	if err != nil {
		t.Fatal(err)
	}
	if string(reply) != "echo:hi" {
		t.Fatalf("reply = %q", reply)
	}
}

func TestLocalRemoteError(t *testing.T) {
	n := NewLocal()
	n.Listen("a", echoHandler)
	_, err := n.Call(context.Background(), "a", "fail", nil)
	var re *RemoteError
	if !errors.As(err, &re) || re.Msg != "boom" {
		t.Fatalf("err = %v", err)
	}
}

func TestLocalUnreachable(t *testing.T) {
	n := NewLocal()
	if _, err := n.Call(context.Background(), "ghost", "m", nil); !errors.Is(err, ErrUnreachable) {
		t.Fatalf("err = %v", err)
	}
	n.Listen("a", echoHandler)
	n.Unlisten("a")
	if _, err := n.Call(context.Background(), "a", "m", nil); !errors.Is(err, ErrUnreachable) {
		t.Fatalf("after Unlisten err = %v", err)
	}
}

func TestLocalPartition(t *testing.T) {
	n := NewLocal()
	n.Listen("a", echoHandler)
	n.Partition("a", true)
	if _, err := n.Call(context.Background(), "a", "m", nil); !errors.Is(err, ErrUnreachable) {
		t.Fatalf("partitioned node reachable: %v", err)
	}
	n.Partition("a", false)
	if _, err := n.Call(context.Background(), "a", "m", nil); err != nil {
		t.Fatalf("healed node unreachable: %v", err)
	}
}

func TestLocalDuplicateListen(t *testing.T) {
	n := NewLocal()
	n.Listen("a", echoHandler)
	if err := n.Listen("a", echoHandler); err == nil {
		t.Fatal("duplicate Listen accepted")
	}
}

func TestLocalPayloadIsolation(t *testing.T) {
	n := NewLocal()
	var got []byte
	n.Listen("a", func(_ context.Context, method string, body []byte) ([]byte, error) {
		got = body
		return body, nil
	})
	sent := []byte("mutable")
	reply, err := n.Call(context.Background(), "a", "m", sent)
	if err != nil {
		t.Fatal(err)
	}
	sent[0] = 'X'
	if got[0] == 'X' {
		t.Fatal("handler observed caller mutation: payload not copied")
	}
	reply[0] = 'Y'
	if got[0] == 'Y' {
		t.Fatal("caller mutation visible to handler reply buffer")
	}
}

func TestLocalClosed(t *testing.T) {
	n := NewLocal()
	n.Listen("a", echoHandler)
	n.Close()
	if _, err := n.Call(context.Background(), "a", "m", nil); err == nil {
		t.Fatal("call succeeded on closed network")
	}
	if err := n.Listen("b", echoHandler); err == nil {
		t.Fatal("Listen succeeded on closed network")
	}
}

func TestEncodeDecodeRoundTrip(t *testing.T) {
	type payload struct {
		Name string
		Keys []hashing.Key
	}
	in := payload{Name: "f", Keys: []hashing.Key{1, 2, 3}}
	data, err := Encode(in)
	if err != nil {
		t.Fatal(err)
	}
	var out payload
	if err := Decode(data, &out); err != nil {
		t.Fatal(err)
	}
	if out.Name != in.Name || len(out.Keys) != 3 || out.Keys[2] != 3 {
		t.Fatalf("round trip = %+v", out)
	}
	if err := Decode([]byte("garbage"), &out); err == nil {
		t.Fatal("Decode accepted garbage")
	}
}

func newTCPPair(t *testing.T) *TCP {
	t.Helper()
	net := NewTCP(map[hashing.NodeID]string{
		"a": "127.0.0.1:0",
		"b": "127.0.0.1:0",
	}, 5*time.Second)
	t.Cleanup(func() { net.Close() })
	return net
}

func TestTCPCall(t *testing.T) {
	net := newTCPPair(t)
	if err := net.Listen("a", echoHandler); err != nil {
		t.Fatal(err)
	}
	reply, err := net.Call(context.Background(), "a", "ping", []byte("x"))
	if err != nil {
		t.Fatal(err)
	}
	if string(reply) != "ping:x" {
		t.Fatalf("reply = %q", reply)
	}
	if _, ok := net.Addr("a"); !ok {
		t.Fatal("Addr(a) missing")
	}
}

func TestTCPRemoteError(t *testing.T) {
	net := newTCPPair(t)
	net.Listen("a", echoHandler)
	_, err := net.Call(context.Background(), "a", "fail", nil)
	var re *RemoteError
	if !errors.As(err, &re) || re.Msg != "boom" {
		t.Fatalf("err = %v", err)
	}
	// The connection must survive an application error.
	if _, err := net.Call(context.Background(), "a", "ok", nil); err != nil {
		t.Fatalf("call after remote error: %v", err)
	}
}

func TestTCPUnreachable(t *testing.T) {
	net := NewTCP(map[hashing.NodeID]string{"dead": "127.0.0.1:1"}, time.Second)
	defer net.Close()
	if _, err := net.Call(context.Background(), "dead", "m", nil); !errors.Is(err, ErrUnreachable) {
		t.Fatalf("err = %v", err)
	}
	if _, err := net.Call(context.Background(), "unknown", "m", nil); !errors.Is(err, ErrUnreachable) {
		t.Fatalf("unknown node err = %v", err)
	}
}

func TestTCPConcurrentCalls(t *testing.T) {
	net := newTCPPair(t)
	net.Listen("a", func(_ context.Context, method string, body []byte) ([]byte, error) {
		time.Sleep(time.Millisecond) // force interleaving
		return body, nil
	})
	var wg sync.WaitGroup
	errs := make(chan error, 64)
	for i := 0; i < 64; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			msg := fmt.Sprintf("msg-%03d", i)
			reply, err := net.Call(context.Background(), "a", "echo", []byte(msg))
			if err != nil {
				errs <- err
				return
			}
			if string(reply) != msg {
				errs <- fmt.Errorf("mismatched reply %q for %q", reply, msg)
			}
		}(i)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
}

func TestTCPReentrantCalls(t *testing.T) {
	net := newTCPPair(t)
	// a calls b, which calls back into a: must not deadlock.
	net.Listen("a", func(_ context.Context, method string, body []byte) ([]byte, error) {
		if method == "start" {
			return net.Call(context.Background(), "b", "relay", body)
		}
		return append([]byte("a-final:"), body...), nil
	})
	net.Listen("b", func(_ context.Context, method string, body []byte) ([]byte, error) {
		return net.Call(context.Background(), "a", "final", body)
	})
	reply, err := net.Call(context.Background(), "a", "start", []byte("z"))
	if err != nil {
		t.Fatal(err)
	}
	if string(reply) != "a-final:z" {
		t.Fatalf("reply = %q", reply)
	}
}

func TestTCPLargePayload(t *testing.T) {
	net := newTCPPair(t)
	net.Listen("a", echoHandler)
	big := make([]byte, 4<<20)
	for i := range big {
		big[i] = byte(i)
	}
	reply, err := net.Call(context.Background(), "a", "big", big)
	if err != nil {
		t.Fatal(err)
	}
	if len(reply) != len(big)+len("big:") {
		t.Fatalf("reply len = %d", len(reply))
	}
}

func TestTCPTimeout(t *testing.T) {
	net := NewTCP(map[hashing.NodeID]string{"a": "127.0.0.1:0"}, 50*time.Millisecond)
	defer net.Close()
	block := make(chan struct{})
	net.Listen("a", func(_ context.Context, method string, body []byte) ([]byte, error) {
		<-block
		return nil, nil
	})
	_, err := net.Call(context.Background(), "a", "slow", nil)
	close(block)
	if err == nil || !strings.Contains(err.Error(), "timed out") {
		t.Fatalf("err = %v", err)
	}
}

func TestTCPUnlistenStopsService(t *testing.T) {
	net := newTCPPair(t)
	net.Listen("a", echoHandler)
	if _, err := net.Call(context.Background(), "a", "m", nil); err != nil {
		t.Fatal(err)
	}
	net.Unlisten("a")
	// Existing connection dies; a fresh call must fail.
	deadline := time.Now().Add(2 * time.Second)
	for {
		if _, err := net.Call(context.Background(), "a", "m", nil); err != nil {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("calls still succeed after Unlisten")
		}
		time.Sleep(10 * time.Millisecond)
	}
}

func TestTCPDuplicateListen(t *testing.T) {
	net := newTCPPair(t)
	net.Listen("a", echoHandler)
	if err := net.Listen("a", echoHandler); err == nil {
		t.Fatal("duplicate Listen accepted")
	}
	if err := net.Listen("nope", echoHandler); err == nil {
		t.Fatal("Listen for unregistered node accepted")
	}
}
