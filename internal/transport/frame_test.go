package transport

import (
	"bytes"
	"testing"
)

type frameHdr struct {
	Name string
	Lens []int
}

func TestFrameRoundTrip(t *testing.T) {
	hdr := frameHdr{Name: "segs", Lens: []int{3, 0, 5}}
	body, err := EncodeFrame(hdr, []byte("abc"), nil, []byte("hello"))
	if err != nil {
		t.Fatal(err)
	}
	var got frameHdr
	payload, err := DecodeFrame(body, &got)
	if err != nil {
		t.Fatal(err)
	}
	if got.Name != hdr.Name || len(got.Lens) != len(hdr.Lens) {
		t.Fatalf("header round trip: %+v -> %+v", hdr, got)
	}
	if !bytes.Equal(payload, []byte("abchello")) {
		t.Fatalf("payload = %q, want %q", payload, "abchello")
	}
}

func TestFrameEmptyPayload(t *testing.T) {
	body, err := EncodeFrame(frameHdr{Name: "empty"})
	if err != nil {
		t.Fatal(err)
	}
	var got frameHdr
	payload, err := DecodeFrame(body, &got)
	if err != nil {
		t.Fatal(err)
	}
	if len(payload) != 0 {
		t.Fatalf("payload = %d bytes, want 0", len(payload))
	}
	if got.Name != "empty" {
		t.Fatalf("header = %+v", got)
	}
}

func TestFramePayloadAliasesBody(t *testing.T) {
	body, err := EncodeFrame(frameHdr{}, []byte("xyz"))
	if err != nil {
		t.Fatal(err)
	}
	var got frameHdr
	payload, err := DecodeFrame(body, &got)
	if err != nil {
		t.Fatal(err)
	}
	if len(payload) != 3 || &payload[0] != &body[len(body)-3] {
		t.Fatal("payload is not a zero-copy view of body")
	}
}

func TestFrameDecodeRejectsCorrupt(t *testing.T) {
	cases := map[string][]byte{
		"empty":            {},
		"short":            {0, 0, 1},
		"header overruns":  {0xff, 0xff, 0xff, 0xff, 'x'},
		"max u32 length":   {0x80, 0x00, 0x00, 0x00},
		"garbage gob":      {0, 0, 0, 2, 0xfe, 0xfe},
		"truncated header": {0, 0, 0, 9, 1, 2},
	}
	for name, body := range cases {
		var hdr frameHdr
		if _, err := DecodeFrame(body, &hdr); err == nil {
			t.Errorf("%s: corrupt frame accepted", name)
		}
	}
}

// FuzzDecodeFrame exercises the raw-frame codec on arbitrary bytes: the
// decoder must never panic, and any frame it accepts must round-trip —
// re-encoding the decoded header with the returned payload yields a frame
// that decodes to the same header and payload again.
func FuzzDecodeFrame(f *testing.F) {
	f.Add([]byte{})
	f.Add([]byte{0, 0, 0, 0})
	f.Add([]byte{0xff, 0xff, 0xff, 0xff, 'x'})
	f.Add([]byte{0x80, 0x00, 0x00, 0x00, 1, 2, 3})
	if seed, err := EncodeFrame(frameHdr{Name: "s", Lens: []int{2}}, []byte("hi")); err == nil {
		f.Add(seed)
	}
	f.Fuzz(func(t *testing.T, data []byte) {
		var hdr frameHdr
		payload, err := DecodeFrame(data, &hdr)
		if err != nil {
			return // rejected frames just need to not panic
		}
		round, err := EncodeFrame(hdr, payload)
		if err != nil {
			t.Fatalf("re-encode of accepted frame failed: %v", err)
		}
		var hdr2 frameHdr
		payload2, err := DecodeFrame(round, &hdr2)
		if err != nil {
			t.Fatalf("re-encoded frame rejected: %v", err)
		}
		if hdr2.Name != hdr.Name || len(hdr2.Lens) != len(hdr.Lens) || !bytes.Equal(payload2, payload) {
			t.Fatalf("round trip changed frame: %+v/%x -> %+v/%x", hdr, payload, hdr2, payload2)
		}
	})
}
