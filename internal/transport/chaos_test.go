package transport

import (
	"context"
	"errors"
	"strings"
	"testing"
	"time"

	"eclipsemr/internal/hashing"
)

// chaosPattern replays n sequential calls on one link and records the
// outcome of each as a single character (success, dropped, unreachable).
func chaosPattern(c *Chaos, from, to hashing.NodeID, n int) string {
	var sb strings.Builder
	caller := c.From(from)
	for i := 0; i < n; i++ {
		_, err := caller.Call(context.Background(), to, "echo", []byte("hi"))
		switch {
		case err == nil:
			sb.WriteByte('o')
		case errors.Is(err, ErrDropped):
			sb.WriteByte('d')
		case errors.Is(err, ErrUnreachable):
			sb.WriteByte('u')
		default:
			sb.WriteByte('?')
		}
	}
	return sb.String()
}

// TestChaosDeterministicSchedule asserts the acceptance property: the same
// seed produces the same failure schedule, and a different seed produces a
// different one.
func TestChaosDeterministicSchedule(t *testing.T) {
	build := func(seed int64) *Chaos {
		inner := NewLocal()
		t.Cleanup(func() { inner.Close() })
		c := NewChaos(inner, ChaosConfig{Seed: seed, Drop: 0.3})
		if err := c.Listen("a", echoHandler); err != nil {
			t.Fatal(err)
		}
		return c
	}
	const calls = 200
	first := chaosPattern(build(42), "x", "a", calls)
	second := chaosPattern(build(42), "x", "a", calls)
	if first != second {
		t.Fatalf("same seed, different schedules:\n%s\n%s", first, second)
	}
	if !strings.Contains(first, "d") || !strings.Contains(first, "o") {
		t.Fatalf("schedule at drop=0.3 should mix drops and successes: %s", first)
	}
	other := chaosPattern(build(43), "x", "a", calls)
	if first == other {
		t.Fatalf("different seeds produced the identical %d-call schedule", calls)
	}
}

func TestChaosDropAllAndCounters(t *testing.T) {
	inner := NewLocal()
	defer inner.Close()
	c := NewChaos(inner, ChaosConfig{Seed: 1, Drop: 1.0})
	c.Listen("a", echoHandler)
	const calls = 20
	for i := 0; i < calls; i++ {
		_, err := c.Call(context.Background(), "a", "m", nil)
		if !errors.Is(err, ErrDropped) {
			t.Fatalf("call %d: err = %v, want ErrDropped", i, err)
		}
		if !IsTransient(err) {
			t.Fatalf("dropped error not transient: %v", err)
		}
	}
	snap := c.NetMetrics().Snapshot()
	if snap.Get("chaos.drops") != calls {
		t.Fatalf("chaos.drops = %d, want %d", snap.Get("chaos.drops"), calls)
	}
	if snap.Get("chaos.drops.request")+snap.Get("chaos.drops.reply") != calls {
		t.Fatalf("request+reply drops = %d+%d, want %d",
			snap.Get("chaos.drops.request"), snap.Get("chaos.drops.reply"), calls)
	}
	// Drop schedules must exercise both failure modes.
	if snap.Get("chaos.drops.request") == 0 || snap.Get("chaos.drops.reply") == 0 {
		t.Fatalf("one-sided drop split: request=%d reply=%d",
			snap.Get("chaos.drops.request"), snap.Get("chaos.drops.reply"))
	}
}

func TestChaosReplyDropRunsHandler(t *testing.T) {
	inner := NewLocal()
	defer inner.Close()
	c := NewChaos(inner, ChaosConfig{Seed: 1, Drop: 1.0})
	handled := 0
	c.Listen("a", func(_ context.Context, method string, body []byte) ([]byte, error) {
		handled++
		return nil, nil
	})
	for i := 0; i < 40; i++ {
		c.Call(context.Background(), "a", "m", nil)
	}
	// At drop=1 half the losses are reply drops, for which the handler
	// must have run (the at-least-once failure mode).
	if handled == 0 {
		t.Fatal("no reply-dropped call reached the handler")
	}
	if handled == 40 {
		t.Fatal("no request drop prevented handler execution")
	}
}

func TestChaosLatency(t *testing.T) {
	inner := NewLocal()
	defer inner.Close()
	c := NewChaos(inner, ChaosConfig{Seed: 1, Latency: 20 * time.Millisecond})
	c.Listen("a", echoHandler)
	start := time.Now()
	if _, err := c.Call(context.Background(), "a", "m", nil); err != nil {
		t.Fatal(err)
	}
	if d := time.Since(start); d < 20*time.Millisecond {
		t.Fatalf("call took %v, want >= 20ms injected latency", d)
	}
}

func TestChaosAsymmetricPartition(t *testing.T) {
	inner := NewLocal()
	defer inner.Close()
	c := NewChaos(inner, ChaosConfig{Seed: 1})
	c.Listen("a", echoHandler)
	c.Listen("b", echoHandler)
	c.Partition("a", "b", true)
	if _, err := c.From("a").Call(context.Background(), "b", "m", nil); !errors.Is(err, ErrUnreachable) {
		t.Fatalf("a->b err = %v, want ErrUnreachable", err)
	}
	if _, err := c.From("b").Call(context.Background(), "a", "m", nil); err != nil {
		t.Fatalf("b->a should still work: %v", err)
	}
	c.Partition("a", "b", false)
	if _, err := c.From("a").Call(context.Background(), "b", "m", nil); err != nil {
		t.Fatalf("healed a->b: %v", err)
	}
}

func TestChaosCrashRevive(t *testing.T) {
	inner := NewLocal()
	defer inner.Close()
	c := NewChaos(inner, ChaosConfig{Seed: 1})
	c.Listen("a", echoHandler)
	c.Listen("b", echoHandler)
	c.Crash("a")
	if _, err := c.From("b").Call(context.Background(), "a", "m", nil); !errors.Is(err, ErrUnreachable) {
		t.Fatalf("call to crashed node: err = %v", err)
	}
	// Crash-stop is bidirectional: the dead node's own calls go nowhere.
	if _, err := c.From("a").Call(context.Background(), "b", "m", nil); !errors.Is(err, ErrUnreachable) {
		t.Fatalf("call from crashed node: err = %v", err)
	}
	c.Revive("a")
	if _, err := c.From("b").Call(context.Background(), "a", "m", nil); err != nil {
		t.Fatalf("call after revive: %v", err)
	}
}

func TestChaosPerLinkOverride(t *testing.T) {
	inner := NewLocal()
	defer inner.Close()
	c := NewChaos(inner, ChaosConfig{Seed: 1}) // global drop 0
	c.Listen("a", echoHandler)
	c.Listen("b", echoHandler)
	c.SetLink("x", "a", 1.0, 0, 0)
	if _, err := c.From("x").Call(context.Background(), "a", "m", nil); !errors.Is(err, ErrDropped) {
		t.Fatalf("overridden link should drop: %v", err)
	}
	if _, err := c.From("x").Call(context.Background(), "b", "m", nil); err != nil {
		t.Fatalf("other link affected by override: %v", err)
	}
	if _, err := c.From("y").Call(context.Background(), "a", "m", nil); err != nil {
		t.Fatalf("other origin affected by override: %v", err)
	}
}

func TestChaosZeroConfigIsTransparent(t *testing.T) {
	inner := NewLocal()
	defer inner.Close()
	c := NewChaos(inner, ChaosConfig{})
	c.Listen("a", echoHandler)
	for i := 0; i < 50; i++ {
		reply, err := c.Call(context.Background(), "a", "echo", []byte("hi"))
		if err != nil || string(reply) != "echo:hi" {
			t.Fatalf("zero-config chaos altered behavior: %q, %v", reply, err)
		}
	}
}
