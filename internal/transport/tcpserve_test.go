package transport

import (
	"context"
	"errors"
	"net"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// failWriteConn wraps a net.Conn and fails every Write once armed,
// recording whether the server tore the connection down.
type failWriteConn struct {
	net.Conn
	fail      atomic.Bool
	closeOnce sync.Once
	closed    chan struct{}
}

func newFailWriteConn(c net.Conn) *failWriteConn {
	return &failWriteConn{Conn: c, closed: make(chan struct{})}
}

func (c *failWriteConn) Write(b []byte) (int, error) {
	if c.fail.Load() {
		return 0, errors.New("injected write failure")
	}
	return c.Conn.Write(b)
}

func (c *failWriteConn) Close() error {
	c.closeOnce.Do(func() { close(c.closed) })
	return c.Conn.Close()
}

// TestTCPServeConnClosesOnWriteError is the regression test for the
// swallowed writeResponse error in serveConn: a failed (possibly
// partial) response write used to be ignored, leaving the connection
// open with desynced framing — the client would then block on a reply
// that never parses until its timeout. The server must instead close the
// connection so the client fails fast with a transport error and
// redials.
func TestTCPServeConnClosesOnWriteError(t *testing.T) {
	clientRaw, serverRaw := net.Pipe()
	server := newFailWriteConn(serverRaw)

	h := func(_ context.Context, method string, body []byte) ([]byte, error) {
		return []byte("ok"), nil
	}
	done := make(chan struct{})
	go func() {
		defer close(done)
		(&TCP{}).serveConn(server, h)
	}()

	client := newTCPConn(clientRaw)
	defer client.close(errors.New("test done"))

	// Healthy round trip first: the write path works until armed.
	reply, err := client.roundTrip("ping", nil, nil, 2*time.Second)
	if err != nil {
		t.Fatalf("healthy roundTrip: %v", err)
	}
	if string(reply) != "ok" {
		t.Fatalf("reply = %q, want ok", reply)
	}

	// Arm the fault: the next response write fails, so the server must
	// close the connection rather than keep serving a desynced stream.
	server.fail.Store(true)
	_, err = client.roundTrip("ping", nil, nil, 2*time.Second)
	if err == nil {
		t.Fatal("roundTrip after write failure: want error, got nil")
	}
	if !errors.Is(err, ErrUnreachable) {
		t.Fatalf("roundTrip after write failure: got %v, want ErrUnreachable (connection torn down, not a timeout)", err)
	}
	select {
	case <-server.closed:
	case <-time.After(2 * time.Second):
		t.Fatal("server never closed the connection after a response write error")
	}
	select {
	case <-done:
	case <-time.After(2 * time.Second):
		t.Fatal("serveConn did not return after the connection was closed")
	}
}
