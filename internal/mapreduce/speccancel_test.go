package mapreduce

import (
	"context"
	"fmt"
	"testing"
	"time"

	"eclipsemr/internal/hashing"
	"eclipsemr/internal/scheduler"
)

// TestCancelInflightCancelsBothAttempts pins the loser-abort wiring: when
// a task completes, cancelInflight must fire both the original attempt's
// cancel and the hedge's, and drop the scanner entry, so whichever
// duplicate lost the race has its RPC unblocked immediately.
func TestCancelInflightCancelsBothAttempts(t *testing.T) {
	ec := newEngineCluster(t, engineOpts{nodes: 3})
	d := ec.driver
	j := &activeJob{spec: JobSpec{ID: "spec-cancel", SpeculativeDeadline: time.Millisecond}}
	task := scheduler.Task{Job: "spec-cancel", ID: "m0"}

	octx, ocancel := context.WithCancel(context.Background())
	d.trackInflight(j, task, 0, ec.ids[1], ocancel)
	hctx, hcancel := context.WithCancel(context.Background())
	defer hcancel()
	d.specMu.Lock()
	if it := d.inflight[inflightKey("spec-cancel", "m0")]; it != nil {
		it.hedgeCancel = hcancel
	}
	d.specMu.Unlock()

	d.cancelInflight("spec-cancel", "m0")
	select {
	case <-octx.Done():
	default:
		t.Fatal("original attempt's ctx not cancelled")
	}
	select {
	case <-hctx.Done():
	default:
		t.Fatal("hedge attempt's ctx not cancelled")
	}
	d.specMu.Lock()
	_, still := d.inflight[inflightKey("spec-cancel", "m0")]
	d.specMu.Unlock()
	if still {
		t.Fatal("inflight entry not removed")
	}
	// Idempotent: a second call (the other attempt finishing) is a no-op.
	d.cancelInflight("spec-cancel", "m0")
}

// TestJournalFailedFlushNotLost pins two journalWriter fixes at once: a
// flush that fails to upload must re-mark the state dirty (not silently
// drop the snapshot), and close's final flush must run even under a
// cancelled job context, so the retried snapshot still lands.
func TestJournalFailedFlushNotLost(t *testing.T) {
	ec := newEngineCluster(t, engineOpts{nodes: 3})
	self := ec.ids[0]

	// Pick a job ID whose journal file maps entirely to remote nodes:
	// both the metadata key and the single block key must avoid the
	// driver's own node, so partitioning the remotes fails the flush
	// deterministically (self-calls bypass the network).
	var jobID string
	for i := 0; i < 10000 && jobID == ""; i++ {
		id := fmt.Sprintf("dirty-%04d", i)
		file := journalFile(id)
		onSelf := false
		for _, k := range []hashing.Key{hashing.KeyOfString(file), hashing.BlockKey(file, 0)} {
			set, err := ec.ring.ReplicaSet(k, 2)
			if err != nil {
				t.Fatal(err)
			}
			for _, n := range set {
				if n == self {
					onSelf = true
				}
			}
		}
		if !onSelf {
			jobID = id
		}
	}
	if jobID == "" {
		t.Fatal("no job ID maps its journal entirely to remote nodes")
	}

	spec := JobSpec{ID: jobID, App: "test-wordcount", Inputs: []string{"s.txt"}, User: "tester"}
	mk := &marker{Servers: []hashing.NodeID{self}, Bounds: []hashing.Key{hashing.KeyOfString("x")},
		PartBytes: []int64{0}}
	w := ec.driver.newJournalWriter(context.Background(), spec, mk, nil)

	for _, id := range ec.ids[1:] {
		ec.net.Partition(id, true)
	}
	w.updateSync(func(j *journal) { j.MapsDone["m1"] = true })
	if got := ec.driver.reg.Snapshot().Get("mr.driver.journal_errors"); got == 0 {
		t.Fatal("the partitioned flush did not fail; the test exercises nothing")
	}
	for _, id := range ec.ids[1:] {
		ec.net.Partition(id, false)
	}

	// Close under an already-cancelled context: the final flush must
	// still persist the retried snapshot (context.WithoutCancel).
	cctx, cancel := context.WithCancel(context.Background())
	cancel()
	w.close(cctx)

	j, err := ec.driver.loadJournal(context.Background(), jobID)
	if err != nil {
		t.Fatal(err)
	}
	if !j.MapsDone["m1"] {
		t.Fatal("mutation from the failed flush was lost; close did not retry the dropped snapshot")
	}
}
