package mapreduce

import (
	"context"
	"fmt"
	"strconv"
	"strings"
	"sync"
	"testing"
	"time"

	"eclipsemr/internal/cache"
	"eclipsemr/internal/dhtfs"
	"eclipsemr/internal/hashing"
	"eclipsemr/internal/scheduler"
	"eclipsemr/internal/transport"
)

// Test applications registered once for the whole package test binary.
func init() {
	Register("test-wordcount", App{
		Map: func(_ Params, input []byte, emit Emit) error {
			for _, w := range strings.Fields(string(input)) {
				if err := emit(w, []byte("1")); err != nil {
					return err
				}
			}
			return nil
		},
		Reduce: func(_ Params, key string, values [][]byte, emit Emit) error {
			total := 0
			for _, v := range values {
				n, err := strconv.Atoi(string(v))
				if err != nil {
					return err
				}
				total += n
			}
			return emit(key, []byte(strconv.Itoa(total)))
		},
		Combine: func(_ Params, key string, values [][]byte, emit Emit) error {
			total := 0
			for _, v := range values {
				n, err := strconv.Atoi(string(v))
				if err != nil {
					return err
				}
				total += n
			}
			return emit(key, []byte(strconv.Itoa(total)))
		},
	})
	Register("test-grep", App{
		Map: func(params Params, input []byte, emit Emit) error {
			pattern := params.Get("pattern")
			for _, line := range strings.Split(string(input), "\n") {
				if strings.Contains(line, pattern) {
					if err := emit(line, []byte("1")); err != nil {
						return err
					}
				}
			}
			return nil
		},
		Reduce: func(_ Params, key string, values [][]byte, emit Emit) error {
			return emit(key, []byte(strconv.Itoa(len(values))))
		},
	})
	Register("test-failing-map", App{
		Map: func(Params, []byte, Emit) error {
			return fmt.Errorf("deliberate map failure")
		},
		Reduce: func(_ Params, key string, _ [][]byte, emit Emit) error {
			return emit(key, nil)
		},
	})
}

// engineCluster is a full in-process EclipseMR data plane: DHT FS, caches,
// workers, a scheduling policy and a driver.
type engineCluster struct {
	mu      sync.Mutex
	ring    *hashing.ChordRing
	net     *transport.Local
	fs      map[hashing.NodeID]*dhtfs.Service
	workers map[hashing.NodeID]*Worker
	ids     []hashing.NodeID
	sched   scheduler.Scheduler
	driver  *Driver
}

type engineOpts struct {
	nodes     int
	slots     int
	cacheSize int64
	policy    string // "laf" (default), "delay", "fair"
	replicas  int
}

func newEngineCluster(t *testing.T, o engineOpts) *engineCluster {
	t.Helper()
	if o.nodes == 0 {
		o.nodes = 5
	}
	if o.slots == 0 {
		o.slots = 4
	}
	if o.cacheSize == 0 {
		o.cacheSize = 1 << 20
	}
	if o.replicas == 0 {
		o.replicas = 2
	}
	ec := &engineCluster{
		ring:    hashing.NewChordRing(),
		net:     transport.NewLocal(),
		fs:      make(map[hashing.NodeID]*dhtfs.Service),
		workers: make(map[hashing.NodeID]*Worker),
	}
	ringFn := func() hashing.Ring {
		ec.mu.Lock()
		defer ec.mu.Unlock()
		return ec.ring.Clone()
	}
	for i := 0; i < o.nodes; i++ {
		id := hashing.NodeID(fmt.Sprintf("worker-%02d", i))
		if err := ec.ring.AddNode(id); err != nil {
			t.Fatal(err)
		}
		ec.ids = append(ec.ids, id)
	}
	for _, id := range ec.ids {
		fs, err := dhtfs.NewService(id, ec.net, ringFn, o.replicas)
		if err != nil {
			t.Fatal(err)
		}
		nc := cache.New(o.cacheSize/2, o.cacheSize/2)
		w := NewWorker(id, fs, nc, ec.net)
		ec.fs[id] = fs
		ec.workers[id] = w
		handler := func(fs *dhtfs.Service, w *Worker) transport.Handler {
			return func(ctx context.Context, method string, body []byte) ([]byte, error) {
				if out, ok, err := w.Handle(ctx, method, body); ok {
					return out, err
				}
				if out, ok, err := fs.Handle(ctx, method, body); ok {
					return out, err
				}
				return nil, fmt.Errorf("unknown method %s", method)
			}
		}(fs, w)
		if err := ec.net.Listen(id, handler); err != nil {
			t.Fatal(err)
		}
	}
	var sched scheduler.Scheduler
	var err error
	switch o.policy {
	case "", "laf":
		sched, err = scheduler.NewLAF(scheduler.DefaultLAFConfig(), ec.ring)
	case "delay":
		sched, err = scheduler.NewDelay(scheduler.DelayConfig{Wait: 100 * time.Millisecond}, ec.ring)
	case "fair":
		sched, err = scheduler.NewFair(ec.ring)
	default:
		t.Fatalf("unknown policy %q", o.policy)
	}
	if err != nil {
		t.Fatal(err)
	}
	for _, id := range ec.ids {
		sched.AddNode(id, o.slots)
	}
	ec.sched = sched
	driver, err := NewDriver(ec.ids[0], ec.net, ec.fs[ec.ids[0]], sched, ringFn, o.slots)
	if err != nil {
		t.Fatal(err)
	}
	ec.driver = driver
	return ec
}

// upload stores a line-oriented file via the first node, with blocks cut
// at record boundaries so map tasks never see torn words.
func (ec *engineCluster) upload(t *testing.T, name string, data []byte, blockSize int) {
	t.Helper()
	if _, err := ec.fs[ec.ids[0]].UploadRecords(context.Background(), name, "tester", dhtfs.PermPublic, data, blockSize, '\n'); err != nil {
		t.Fatal(err)
	}
}

// corpus builds a deterministic text with known word counts.
func corpus(words map[string]int) []byte {
	var b strings.Builder
	keys := make([]string, 0, len(words))
	for w := range words {
		keys = append(keys, w)
	}
	// Interleave words to spread them across blocks.
	for round := 0; ; round++ {
		emitted := false
		for _, w := range keys {
			if words[w] > round {
				b.WriteString(w)
				b.WriteByte(' ')
				if (round+len(w))%7 == 0 {
					b.WriteByte('\n')
				}
				emitted = true
			}
		}
		if !emitted {
			break
		}
	}
	return []byte(b.String())
}

func countsFromKVs(t *testing.T, kvs []KV) map[string]int {
	t.Helper()
	out := make(map[string]int)
	for _, kv := range kvs {
		n, err := strconv.Atoi(string(kv.Value))
		if err != nil {
			t.Fatalf("bad count %q for %q", kv.Value, kv.Key)
		}
		if _, dup := out[kv.Key]; dup {
			t.Fatalf("duplicate key %q across partitions", kv.Key)
		}
		out[kv.Key] = n
	}
	return out
}

func TestWordCountEndToEnd(t *testing.T) {
	ec := newEngineCluster(t, engineOpts{})
	want := map[string]int{"apple": 120, "banana": 75, "cherry": 31, "date": 9, "elderberry": 230}
	ec.upload(t, "corpus.txt", corpus(want), 512)

	res, err := ec.driver.Run(JobSpec{
		ID:     "wc-1",
		App:    "test-wordcount",
		Inputs: []string{"corpus.txt"},
		User:   "tester",
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.MapTasks == 0 || res.ReduceTasks == 0 {
		t.Fatalf("result = %+v", res)
	}
	kvs, err := ec.driver.Collect(context.Background(), res, "tester")
	if err != nil {
		t.Fatal(err)
	}
	got := countsFromKVs(t, kvs)
	if len(got) != len(want) {
		t.Fatalf("got %d words want %d: %v", len(got), len(want), got)
	}
	for w, n := range want {
		if got[w] != n {
			t.Errorf("count[%q] = %d want %d", w, got[w], n)
		}
	}
	if res.ShuffleBytes == 0 {
		t.Error("no shuffle bytes recorded")
	}
}

func TestWordCountAllPolicies(t *testing.T) {
	want := map[string]int{"x": 40, "yy": 17, "zzz": 55}
	for _, policy := range []string{"laf", "delay", "fair"} {
		t.Run(policy, func(t *testing.T) {
			ec := newEngineCluster(t, engineOpts{policy: policy})
			ec.upload(t, "c.txt", corpus(want), 128)
			res, err := ec.driver.Run(JobSpec{
				ID: "wc-" + policy, App: "test-wordcount",
				Inputs: []string{"c.txt"}, User: "tester",
			})
			if err != nil {
				t.Fatal(err)
			}
			kvs, err := ec.driver.Collect(context.Background(), res, "tester")
			if err != nil {
				t.Fatal(err)
			}
			got := countsFromKVs(t, kvs)
			for w, n := range want {
				if got[w] != n {
					t.Errorf("count[%q] = %d want %d", w, got[w], n)
				}
			}
		})
	}
}

func TestGrepWithParams(t *testing.T) {
	ec := newEngineCluster(t, engineOpts{})
	text := "error: disk full\nok: fine\nerror: disk full\nwarn: hot\n"
	ec.upload(t, "log.txt", []byte(strings.Repeat(text, 20)), 64)
	res, err := ec.driver.Run(JobSpec{
		ID: "grep-1", App: "test-grep",
		Inputs: []string{"log.txt"}, User: "tester",
		Params: Params{"pattern": []byte("error")},
	})
	if err != nil {
		t.Fatal(err)
	}
	kvs, err := ec.driver.Collect(context.Background(), res, "tester")
	if err != nil {
		t.Fatal(err)
	}
	// Blocks split lines arbitrarily, so just verify only matching lines
	// appear and the total is plausible (>0).
	total := 0
	for _, kv := range kvs {
		if !strings.Contains(kv.Key, "error") {
			t.Fatalf("non-matching line %q in output", kv.Key)
		}
		n, _ := strconv.Atoi(string(kv.Value))
		total += n
	}
	if total == 0 {
		t.Fatal("grep found nothing")
	}
}

func TestSecondJobHitsICache(t *testing.T) {
	ec := newEngineCluster(t, engineOpts{policy: "laf", cacheSize: 8 << 20})
	want := map[string]int{"only": 200}
	ec.upload(t, "c.txt", corpus(want), 256)
	run := func(id string) Result {
		res, err := ec.driver.Run(JobSpec{
			ID: id, App: "test-wordcount", Inputs: []string{"c.txt"}, User: "tester",
		})
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	first := run("wc-a")
	if first.CacheHits != 0 {
		t.Fatalf("cold run had %d cache hits", first.CacheHits)
	}
	second := run("wc-b")
	if second.CacheHits == 0 {
		t.Fatal("warm run had no iCache hits")
	}
	t.Logf("warm-run cache hits: %d/%d maps", second.CacheHits, second.MapTasks)
}

func TestReuseTagSkipsMapPhase(t *testing.T) {
	ec := newEngineCluster(t, engineOpts{})
	want := map[string]int{"alpha": 64, "beta": 32}
	ec.upload(t, "c.txt", corpus(want), 256)
	spec := JobSpec{
		ID: "r1", App: "test-wordcount", Inputs: []string{"c.txt"},
		User: "tester", ReuseTag: "wc-shared",
	}
	res1, err := ec.driver.Run(spec)
	if err != nil {
		t.Fatal(err)
	}
	if res1.MapsSkipped || res1.MapTasks == 0 {
		t.Fatalf("first run: %+v", res1)
	}
	spec.ID = "r2"
	res2, err := ec.driver.Run(spec)
	if err != nil {
		t.Fatal(err)
	}
	if !res2.MapsSkipped || res2.MapTasks != 0 {
		t.Fatalf("second run did not reuse: %+v", res2)
	}
	kvs, err := ec.driver.Collect(context.Background(), res2, "tester")
	if err != nil {
		t.Fatal(err)
	}
	got := countsFromKVs(t, kvs)
	for w, n := range want {
		if got[w] != n {
			t.Errorf("reused count[%q] = %d want %d", w, got[w], n)
		}
	}
}

func TestCacheIntermediatesServesSecondReduce(t *testing.T) {
	ec := newEngineCluster(t, engineOpts{cacheSize: 8 << 20})
	ec.upload(t, "c.txt", corpus(map[string]int{"k": 50}), 128)
	spec := JobSpec{
		ID: "ci1", App: "test-wordcount", Inputs: []string{"c.txt"},
		User: "tester", ReuseTag: "ci-shared", CacheIntermediates: true,
	}
	if _, err := ec.driver.Run(spec); err != nil {
		t.Fatal(err)
	}
	spec.ID = "ci2"
	res2, err := ec.driver.Run(spec)
	if err != nil {
		t.Fatal(err)
	}
	if res2.CacheHits == 0 {
		t.Fatal("second reduce did not hit oCache for merged input")
	}
}

func TestFailingMapSurfacesError(t *testing.T) {
	ec := newEngineCluster(t, engineOpts{})
	ec.upload(t, "c.txt", []byte("data"), 64)
	_, err := ec.driver.Run(JobSpec{
		ID: "fail-1", App: "test-failing-map", Inputs: []string{"c.txt"},
		User: "tester", MaxAttempts: 2,
	})
	if err == nil || !strings.Contains(err.Error(), "deliberate map failure") {
		t.Fatalf("err = %v", err)
	}
}

func TestMissingInputFails(t *testing.T) {
	ec := newEngineCluster(t, engineOpts{})
	_, err := ec.driver.Run(JobSpec{
		ID: "mi-1", App: "test-wordcount", Inputs: []string{"ghost.txt"}, User: "tester",
	})
	if err == nil || !dhtfs.IsNotFound(err) {
		t.Fatalf("err = %v", err)
	}
}

func TestPermissionEnforcedOnInputs(t *testing.T) {
	ec := newEngineCluster(t, engineOpts{})
	if _, err := ec.fs[ec.ids[0]].Upload(context.Background(), "private.txt", "alice", dhtfs.PermPrivate, []byte("x y z"), 64); err != nil {
		t.Fatal(err)
	}
	_, err := ec.driver.Run(JobSpec{
		ID: "p-1", App: "test-wordcount", Inputs: []string{"private.txt"}, User: "eve",
	})
	if err == nil || !dhtfs.IsPermission(err) {
		t.Fatalf("err = %v", err)
	}
}

func TestSmallSpillThresholdManySpills(t *testing.T) {
	// A tiny spill threshold forces many proactive pushes per map task and
	// exercises spill concatenation on the reducer side.
	ec := newEngineCluster(t, engineOpts{})
	want := map[string]int{"aaa": 90, "bbb": 90, "ccc": 90}
	ec.upload(t, "c.txt", corpus(want), 256)
	res, err := ec.driver.Run(JobSpec{
		ID: "spill-1", App: "test-wordcount", Inputs: []string{"c.txt"},
		User: "tester", SpillThreshold: 32, // bytes!
	})
	if err != nil {
		t.Fatal(err)
	}
	kvs, err := ec.driver.Collect(context.Background(), res, "tester")
	if err != nil {
		t.Fatal(err)
	}
	got := countsFromKVs(t, kvs)
	for w, n := range want {
		if got[w] != n {
			t.Errorf("count[%q] = %d want %d", w, got[w], n)
		}
	}
}

func TestMultipleInputFiles(t *testing.T) {
	ec := newEngineCluster(t, engineOpts{})
	ec.upload(t, "a.txt", corpus(map[string]int{"shared": 10, "a-only": 5}), 128)
	ec.upload(t, "b.txt", corpus(map[string]int{"shared": 7, "b-only": 3}), 128)
	res, err := ec.driver.Run(JobSpec{
		ID: "multi-1", App: "test-wordcount",
		Inputs: []string{"a.txt", "b.txt"}, User: "tester",
	})
	if err != nil {
		t.Fatal(err)
	}
	kvs, err := ec.driver.Collect(context.Background(), res, "tester")
	if err != nil {
		t.Fatal(err)
	}
	got := countsFromKVs(t, kvs)
	if got["shared"] != 17 || got["a-only"] != 5 || got["b-only"] != 3 {
		t.Fatalf("counts = %v", got)
	}
}

func TestDropIntermediates(t *testing.T) {
	ec := newEngineCluster(t, engineOpts{})
	ec.upload(t, "c.txt", corpus(map[string]int{"w": 30}), 128)
	spec := JobSpec{ID: "d1", App: "test-wordcount", Inputs: []string{"c.txt"}, User: "tester"}
	if _, err := ec.driver.Run(spec); err != nil {
		t.Fatal(err)
	}
	ec.driver.DropIntermediates(context.Background(), spec)
	for _, fs := range ec.fs {
		if _, _, segs := fs.Store().Counts(); segs != 0 {
			t.Fatal("segments remain after DropIntermediates")
		}
	}
}

// TestIntermediateTTLInvalidatesReuse covers the paper's TTL on stored
// intermediate results: once the TTL lapses, a job with the same reuse
// tag must re-run its map phase instead of reducing over expired spills.
func TestIntermediateTTLInvalidatesReuse(t *testing.T) {
	ec := newEngineCluster(t, engineOpts{})
	now := time.Unix(1000, 0)
	clock := func() time.Time { return now }
	for _, fs := range ec.fs {
		fs.SetClock(clock)
	}
	want := map[string]int{"ttl": 48}
	ec.upload(t, "ttl.txt", corpus(want), 128)
	spec := JobSpec{
		ID: "ttl-1", App: "test-wordcount", Inputs: []string{"ttl.txt"},
		User: "tester", ReuseTag: "ttl-shared", IntermediateTTL: time.Minute,
	}
	if _, err := ec.driver.Run(spec); err != nil {
		t.Fatal(err)
	}
	// Within the TTL the second run reuses the intermediates.
	spec.ID = "ttl-2"
	res, err := ec.driver.Run(spec)
	if err != nil {
		t.Fatal(err)
	}
	if !res.MapsSkipped {
		t.Fatal("run within TTL did not reuse")
	}
	// Past the TTL the marker is stale and maps re-run — and the job
	// still produces correct output from the fresh intermediates.
	now = now.Add(2 * time.Minute)
	spec.ID = "ttl-3"
	res, err = ec.driver.Run(spec)
	if err != nil {
		t.Fatal(err)
	}
	if res.MapsSkipped || res.MapTasks == 0 {
		t.Fatalf("run after TTL reused stale intermediates: %+v", res)
	}
	kvs, err := ec.driver.Collect(context.Background(), res, "tester")
	if err != nil {
		t.Fatal(err)
	}
	got := countsFromKVs(t, kvs)
	if got["ttl"] != 48 {
		t.Fatalf("counts = %v", got)
	}
}
