package mapreduce

import (
	"context"
	"fmt"

	"eclipsemr/internal/cache"
	"eclipsemr/internal/hashing"
	"eclipsemr/internal/transport"
)

// Misplaced-cache migration (§II-E): when the LAF scheduler shifts a
// server's hash-key range, blocks cached under the old ranges can end up
// on a neighbor whose range no longer covers them. EclipseMR "provides an
// option to check if a left or a right neighbor worker server has cached
// data objects, and to migrate the cached data if either one has". The
// worker serves its cached blocks by range (mr.cacheRange) and adopts a
// new range by pulling misplaced entries from both ring neighbors
// (mr.adoptRange).

// Wire messages for cache migration.
type (
	// CacheRangeReq asks a node for its cached input blocks within
	// [Start, End).
	CacheRangeReq struct {
		Start hashing.Key
		End   hashing.Key
	}
	// CachedBlock is one migrating iCache entry.
	CachedBlock struct {
		Key  hashing.Key
		Data []byte
	}
	// CacheRangeResp carries the matching entries.
	CacheRangeResp struct {
		Blocks []CachedBlock
	}
	// AdoptRangeReq tells a node its new cache range and its current ring
	// neighbors to check for misplaced entries.
	AdoptRangeReq struct {
		Start hashing.Key
		End   hashing.Key
		Left  hashing.NodeID
		Right hashing.NodeID
	}
	// AdoptRangeResp reports how many blocks were migrated in.
	AdoptRangeResp struct {
		Migrated int
	}
)

// Migration method names.
const (
	MethodCacheRange = "mr.cacheRange"
	MethodAdoptRange = "mr.adoptRange"
)

// handleMigration serves the migration methods; called from
// Worker.Handle.
func (w *Worker) handleMigration(ctx context.Context, method string, body []byte) ([]byte, bool, error) {
	switch method {
	case MethodCacheRange:
		var req CacheRangeReq
		if err := transport.Decode(body, &req); err != nil {
			return nil, true, err
		}
		var resp CacheRangeResp
		for _, e := range w.cache.ICache.EntriesInRange(req.Start, req.End) {
			data, _ := e.Value.([]byte)
			if data == nil {
				continue
			}
			resp.Blocks = append(resp.Blocks, CachedBlock{Key: e.HashKey, Data: data})
		}
		out, err := transport.Encode(resp)
		return out, true, err
	case MethodAdoptRange:
		var req AdoptRangeReq
		if err := transport.Decode(body, &req); err != nil {
			return nil, true, err
		}
		migrated, err := w.adoptRange(ctx, req)
		if err != nil {
			return nil, true, err
		}
		out, err := transport.Encode(AdoptRangeResp{Migrated: migrated})
		return out, true, err
	}
	return nil, false, nil
}

// adoptRange pulls cached blocks in [Start, End) from both neighbors into
// the local iCache, skipping anything already cached here.
func (w *Worker) adoptRange(ctx context.Context, req AdoptRangeReq) (int, error) {
	migrated := 0
	var firstErr error
	for _, neighbor := range []hashing.NodeID{req.Left, req.Right} {
		if neighbor == "" || neighbor == w.self {
			continue
		}
		body, err := transport.Encode(CacheRangeReq{Start: req.Start, End: req.End})
		if err != nil {
			return migrated, err
		}
		out, err := w.net.Call(ctx, neighbor, MethodCacheRange, body)
		if err != nil {
			if firstErr == nil {
				firstErr = fmt.Errorf("mapreduce: migrate from %s: %w", neighbor, err)
			}
			continue // a dead neighbor is not fatal; recovery handles it
		}
		var resp CacheRangeResp
		if err := transport.Decode(out, &resp); err != nil {
			return migrated, err
		}
		for _, blk := range resp.Blocks {
			if _, ok := w.cache.ICache.Peek(cache.BlockKey(blk.Key)); ok {
				continue
			}
			if w.cache.PutBlock(blk.Key, blk.Data) {
				migrated++
			}
		}
	}
	if migrated == 0 && firstErr != nil {
		return 0, firstErr
	}
	return migrated, nil
}
