package mapreduce

import (
	"bytes"
	"testing"
)

// FuzzDecodeKVs exercises the spill codec on arbitrary byte streams: the
// decoder must never panic, and any stream it accepts must re-encode to
// the identical bytes (the format is canonical — this is what makes
// segment append-concatenation sound).
func FuzzDecodeKVs(f *testing.F) {
	f.Add([]byte{})
	f.Add(EncodeKVs([]KV{{Key: "a", Value: []byte("1")}}))
	f.Add(EncodeKVs([]KV{
		{Key: "", Value: nil},
		{Key: "hello", Value: []byte("world")},
		{Key: "hello", Value: bytes.Repeat([]byte{0xff}, 100)},
	}))
	f.Add([]byte{0, 0, 0, 1, 'k'})             // truncated value length
	f.Add([]byte{0xff, 0xff, 0xff, 0xff, 'x'}) // absurd key length
	// Lengths at exactly 2^31: int(uint32) wraps negative on 32-bit
	// platforms if converted before validation (the overflow regression).
	f.Add([]byte{0x80, 0x00, 0x00, 0x00, 'x'})
	f.Add([]byte{0x00, 0x00, 0x00, 0x01, 'k', 0x80, 0x00, 0x00, 0x00, 'v'})
	f.Fuzz(func(t *testing.T, data []byte) {
		kvs, err := DecodeKVs(data)
		if err != nil {
			return // rejected streams just need to not panic
		}
		round := EncodeKVs(kvs)
		if !bytes.Equal(round, data) {
			t.Fatalf("accepted stream is not canonical: %x re-encodes to %x", data, round)
		}
		// A second decode of the re-encoding must agree.
		again, err := DecodeKVs(round)
		if err != nil {
			t.Fatalf("re-encoded stream rejected: %v", err)
		}
		if len(again) != len(kvs) {
			t.Fatalf("round trip changed pair count: %d -> %d", len(kvs), len(again))
		}
		for i := range kvs {
			if again[i].Key != kvs[i].Key || !bytes.Equal(again[i].Value, kvs[i].Value) {
				t.Fatalf("pair %d changed: %+v -> %+v", i, kvs[i], again[i])
			}
		}
	})
}
