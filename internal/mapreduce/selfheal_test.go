package mapreduce

import (
	"context"
	"fmt"
	"strconv"
	"strings"
	"sync"
	"testing"
	"time"

	"eclipsemr/internal/hashing"
)

// test-slow-wordcount paces each map call so cancellation tests can
// deterministically interrupt a job mid-map-phase: on a purely local
// transport an unpaced 50-task job can finish before a cancellation
// goroutine is even scheduled.
func init() {
	Register("test-slow-wordcount", App{
		Map: func(_ Params, input []byte, emit Emit) error {
			time.Sleep(2 * time.Millisecond)
			for _, w := range strings.Fields(string(input)) {
				if err := emit(w, []byte("1")); err != nil {
					return err
				}
			}
			return nil
		},
		Reduce: func(_ Params, key string, values [][]byte, emit Emit) error {
			total := 0
			for _, v := range values {
				n, err := strconv.Atoi(string(v))
				if err != nil {
					return err
				}
				total += n
			}
			return emit(key, []byte(strconv.Itoa(total)))
		},
	})
}

// wideCorpus builds a corpus with many distinct words so every reduce
// partition of a small cluster is non-empty (each word hashes
// independently; with hundreds of keys, no ring range stays empty).
func wideCorpus(distinct, repeat int) ([]byte, map[string]int) {
	var b strings.Builder
	want := make(map[string]int, distinct)
	for r := 0; r < repeat; r++ {
		for i := 0; i < distinct; i++ {
			w := fmt.Sprintf("word%03d", i)
			b.WriteString(w)
			if (i+r)%5 == 4 {
				b.WriteByte('\n')
			} else {
				b.WriteByte(' ')
			}
			want[w]++
		}
		b.WriteByte('\n')
	}
	return []byte(b.String()), want
}

func checkCounts(t *testing.T, got map[string]int, want map[string]int) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("got %d distinct keys, want %d", len(got), len(want))
	}
	for w, n := range want {
		if got[w] != n {
			t.Fatalf("count[%q] = %d, want %d", w, got[w], n)
		}
	}
}

// TestLostPartitionRecovery kills a reduce-partition owner after the map
// phase (unreplicated intermediates, so its partitions' spills are gone)
// and verifies the job self-heals: the contributing maps re-execute with
// a partition filter, the lost partitions re-home to survivors, and the
// output is exact — without re-reducing the partitions that survived.
func TestLostPartitionRecovery(t *testing.T) {
	ec := newEngineCluster(t, engineOpts{nodes: 5})
	text, want := wideCorpus(200, 8)
	ec.upload(t, "heal.txt", text, 512)

	victim := ec.ids[1] // not the driver node
	var once sync.Once
	ec.driver.SetEventListener(func(job, event string) {
		if event != "map_done" {
			return
		}
		once.Do(func() {
			// Crash-stop the victim and evict it, as the manager would
			// after failure detection.
			ec.net.Unlisten(victim)
			ec.mu.Lock()
			ec.ring.Remove(victim)
			ec.mu.Unlock()
			ec.sched.RemoveNode(victim)
		})
	})
	res, err := ec.driver.Run(JobSpec{
		ID: "heal-1", App: "test-wordcount", Inputs: []string{"heal.txt"}, User: "tester",
	})
	if err != nil {
		t.Fatalf("job did not self-heal: %v", err)
	}
	if res.RecoveredPartitions < 1 {
		t.Fatalf("RecoveredPartitions = %d, want >= 1 (victim owned no partition?)", res.RecoveredPartitions)
	}
	snap := ec.driver.Metrics().Snapshot()
	if got := snap.Get("mr.driver.partition_recoveries"); got != int64(res.RecoveredPartitions) {
		t.Errorf("partition_recoveries counter = %d, result says %d", got, res.RecoveredPartitions)
	}
	// Exactly one successful reduce per partition: surviving partitions
	// were not re-reduced by the recovery round.
	if got := snap.Get("mr.driver.partition_reduces"); got != int64(res.ReduceTasks) {
		t.Errorf("partition_reduces = %d, want %d (completed partitions re-reduced?)", got, res.ReduceTasks)
	}
	kvs, err := ec.driver.Collect(context.Background(), res, "tester")
	if err != nil {
		t.Fatal(err)
	}
	checkCounts(t, countsFromKVs(t, kvs), want)
}

// TestLostPartitionLegacyFailFast pins the DisableRecovery escape hatch:
// the pre-recovery behavior (job fails when a partition's holders die)
// stays available.
func TestLostPartitionLegacyFailFast(t *testing.T) {
	ec := newEngineCluster(t, engineOpts{nodes: 4})
	text, _ := wideCorpus(120, 4)
	ec.upload(t, "legacy.txt", text, 512)

	victim := ec.ids[1]
	var once sync.Once
	ec.driver.SetEventListener(func(job, event string) {
		if event != "map_done" {
			return
		}
		once.Do(func() {
			ec.net.Unlisten(victim)
			ec.mu.Lock()
			ec.ring.Remove(victim)
			ec.mu.Unlock()
			ec.sched.RemoveNode(victim)
		})
	})
	_, err := ec.driver.Run(JobSpec{
		ID: "legacy-1", App: "test-wordcount", Inputs: []string{"legacy.txt"},
		User: "tester", DisableRecovery: true,
	})
	if err == nil {
		t.Fatal("DisableRecovery job succeeded despite a lost partition")
	}
	if !strings.Contains(err.Error(), "lost with node") {
		t.Fatalf("unexpected error: %v", err)
	}
}

// TestResumeAfterMidMapCancel interrupts a job mid-map-phase (the driver
// dying) and resumes it from the durable journal: only the unfinished map
// tasks re-execute and the output is exact.
func TestResumeAfterMidMapCancel(t *testing.T) {
	ec := newEngineCluster(t, engineOpts{nodes: 4, slots: 2})
	text, want := wideCorpus(150, 10)
	ec.upload(t, "resume.txt", text, 256)
	meta, err := ec.fs[ec.ids[0]].Lookup(context.Background(), "resume.txt", "tester")
	if err != nil {
		t.Fatal(err)
	}
	totalMaps := len(meta.BlockKeys)
	if totalMaps < 12 {
		t.Fatalf("corpus too small: %d blocks", totalMaps)
	}

	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	done := 0
	var mu sync.Mutex
	ec.driver.SetEventListener(func(job, event string) {
		if event != "map_task_done" {
			return
		}
		mu.Lock()
		done++
		if done == 3 {
			cancel() // the "crash": no further dispatches
		}
		mu.Unlock()
	})
	spec := JobSpec{ID: "resume-1", App: "test-slow-wordcount", Inputs: []string{"resume.txt"}, User: "tester"}
	if _, err := ec.driver.RunContext(ctx, spec); err == nil {
		t.Fatal("canceled run reported success")
	}
	ec.driver.SetEventListener(nil)

	res, err := ec.driver.Resume("resume-1")
	if err != nil {
		t.Fatalf("resume: %v", err)
	}
	if !res.Resumed {
		t.Error("Resumed flag not set")
	}
	if res.MapTasks >= totalMaps || res.MapTasks == 0 {
		t.Errorf("resumed run re-executed %d of %d maps; want a strict, non-empty subset", res.MapTasks, totalMaps)
	}
	kvs, err := ec.driver.Collect(context.Background(), res, "tester")
	if err != nil {
		t.Fatal(err)
	}
	checkCounts(t, countsFromKVs(t, kvs), want)
	if got := ec.driver.Metrics().Snapshot().Get("mr.driver.journal_resumes"); got != 1 {
		t.Errorf("journal_resumes = %d, want 1", got)
	}
}

// TestResumeAfterMidReduceCancel interrupts between reduce completions:
// the resumed run skips the map phase entirely (journaled done) and the
// partitions already journaled as complete.
func TestResumeAfterMidReduceCancel(t *testing.T) {
	ec := newEngineCluster(t, engineOpts{nodes: 5})
	text, want := wideCorpus(200, 6)
	ec.upload(t, "resume2.txt", text, 512)

	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	var once sync.Once
	ec.driver.SetEventListener(func(job, event string) {
		if event == "partition_done" {
			once.Do(cancel)
		}
	})
	spec := JobSpec{ID: "resume-2", App: "test-wordcount", Inputs: []string{"resume2.txt"}, User: "tester"}
	if _, err := ec.driver.RunContext(ctx, spec); err == nil {
		// All reduce dispatches can beat the cancel; the journal then holds
		// a completed job and resume must be a pure no-op replay below.
		t.Log("job finished before the cancel took effect")
	}
	ec.driver.SetEventListener(nil)

	res, err := ec.driver.Resume("resume-2")
	if err != nil {
		t.Fatalf("resume: %v", err)
	}
	if res.MapTasks != 0 {
		t.Errorf("resumed run re-executed %d map tasks, want 0 (map phase journaled done)", res.MapTasks)
	}
	if !res.MapsSkipped {
		t.Error("MapsSkipped not set on resumed run")
	}
	kvs, err := ec.driver.Collect(context.Background(), res, "tester")
	if err != nil {
		t.Fatal(err)
	}
	checkCounts(t, countsFromKVs(t, kvs), want)
}

// TestResumeCompletedJobReplaysResult pins that resuming a job whose
// journal reached the done phase re-runs nothing and returns the recorded
// output set.
func TestResumeCompletedJobReplaysResult(t *testing.T) {
	ec := newEngineCluster(t, engineOpts{nodes: 3})
	text, want := wideCorpus(80, 5)
	ec.upload(t, "done.txt", text, 512)
	spec := JobSpec{ID: "done-1", App: "test-wordcount", Inputs: []string{"done.txt"}, User: "tester"}
	first, err := ec.driver.Run(spec)
	if err != nil {
		t.Fatal(err)
	}
	before := ec.driver.Metrics().Snapshot().Get("mr.driver.partition_reduces")
	res, err := ec.driver.Resume("done-1")
	if err != nil {
		t.Fatal(err)
	}
	if fmt.Sprint(res.OutputFiles) != fmt.Sprint(first.OutputFiles) {
		t.Fatalf("replayed outputs %v != original %v", res.OutputFiles, first.OutputFiles)
	}
	if after := ec.driver.Metrics().Snapshot().Get("mr.driver.partition_reduces"); after != before {
		t.Fatalf("resume of a done job re-reduced partitions: %d -> %d", before, after)
	}
	kvs, err := ec.driver.Collect(context.Background(), res, "tester")
	if err != nil {
		t.Fatal(err)
	}
	checkCounts(t, countsFromKVs(t, kvs), want)
}

// TestDisableJournalLeavesNothingToResume pins the opt-out: without a
// journal a job cannot be adopted.
func TestDisableJournalLeavesNothingToResume(t *testing.T) {
	ec := newEngineCluster(t, engineOpts{nodes: 3})
	text, _ := wideCorpus(50, 3)
	ec.upload(t, "nojournal.txt", text, 512)
	spec := JobSpec{
		ID: "nojournal-1", App: "test-wordcount", Inputs: []string{"nojournal.txt"},
		User: "tester", DisableJournal: true,
	}
	if _, err := ec.driver.Run(spec); err != nil {
		t.Fatal(err)
	}
	if _, err := ec.driver.Resume("nojournal-1"); err == nil {
		t.Fatal("Resume succeeded without a journal")
	}
	jobs, err := ec.driver.Orphans(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if len(jobs) != 0 {
		t.Fatalf("orphans = %v, want none", jobs)
	}
}

// TestOrphansListsInterruptedJobs pins the adoption listing: an
// interrupted job shows up, a completed one does not, and dropping the
// intermediates clears the journal.
func TestOrphansListsInterruptedJobs(t *testing.T) {
	ec := newEngineCluster(t, engineOpts{nodes: 4, slots: 2})
	text, _ := wideCorpus(100, 8)
	ec.upload(t, "orphan.txt", text, 256)

	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	var once sync.Once
	ec.driver.SetEventListener(func(job, event string) {
		if event == "map_task_done" {
			once.Do(cancel)
		}
	})
	spec := JobSpec{ID: "orphan-1", App: "test-slow-wordcount", Inputs: []string{"orphan.txt"}, User: "tester"}
	if _, err := ec.driver.RunContext(ctx, spec); err == nil {
		t.Fatal("canceled run reported success")
	}
	ec.driver.SetEventListener(nil)

	jobs, err := ec.driver.Orphans(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if len(jobs) != 1 || jobs[0] != "orphan-1" {
		t.Fatalf("orphans = %v, want [orphan-1]", jobs)
	}
	res, err := ec.driver.Resume("orphan-1")
	if err != nil {
		t.Fatal(err)
	}
	if jobs, err = ec.driver.Orphans(context.Background()); err != nil || len(jobs) != 0 {
		t.Fatalf("orphans after completion = %v (err %v), want none", jobs, err)
	}
	ec.driver.DropIntermediates(context.Background(), spec)
	if _, err := ec.driver.Resume("orphan-1"); err == nil {
		t.Fatal("journal survived DropIntermediates")
	}
	_ = res
}

// TestAttemptStrideSupersedesInterruptedGeneration pins the generation
// arithmetic that makes resume safe against stale spills: a resumed run's
// attempts start one full stride above every attempt the interrupted
// generation could have used, so its spills always win the store's
// max-attempt dedup.
func TestAttemptStrideSupersedesInterruptedGeneration(t *testing.T) {
	ec := newEngineCluster(t, engineOpts{nodes: 3})
	spec := JobSpec{ID: "stride-1", App: "test-wordcount", Inputs: []string{"s.txt"}, User: "tester"}
	mk := &marker{Servers: []hashing.NodeID{ec.ids[0]}, Bounds: []hashing.Key{hashing.KeyOfString("x")},
		PartBytes: []int64{0}}
	w0 := ec.driver.newJournalWriter(context.Background(), spec, mk, nil)
	if got := w0.attemptBase(); got != 0 {
		t.Fatalf("generation 0 attempt base = %d, want 0", got)
	}
	w0.close(context.Background())
	prior, err := ec.driver.loadJournal(context.Background(), "stride-1")
	if err != nil {
		t.Fatal(err)
	}
	w1 := ec.driver.newJournalWriter(context.Background(), spec, mk, prior)
	defer w1.close(context.Background())
	if got := w1.attemptBase(); got != attemptStride {
		t.Fatalf("generation 1 attempt base = %d, want %d", got, attemptStride)
	}
	// Retry budgets stay per-generation under the stride floor.
	if got := st1Base(attemptStride + 2); got != attemptStride {
		t.Fatalf("st1Base(%d) = %d, want %d", attemptStride+2, got, attemptStride)
	}
}

// TestOnlyPartitionsFiltersShuffle pins the recovery re-shuffle filter at
// the worker level: with OnlyPartitions set, a map pushes spills only for
// the listed partitions.
func TestOnlyPartitionsFiltersShuffle(t *testing.T) {
	ec := newEngineCluster(t, engineOpts{nodes: 3})
	text, _ := wideCorpus(100, 2)
	ec.upload(t, "only.txt", text, 1<<20)
	meta, err := ec.fs[ec.ids[0]].Lookup(context.Background(), "only.txt", "tester")
	if err != nil {
		t.Fatal(err)
	}
	table, err := hashing.AlignedRangeTable(ec.ring)
	if err != nil {
		t.Fatal(err)
	}
	req := RunMapReq{
		Job: "only-1", Namespace: "job:only-1", App: "test-wordcount",
		BlockKey: meta.BlockKeys[0], Task: "t0", Attempt: 0,
		ReduceServers: table.Servers(), ReduceBounds: table.Bounds(),
		OnlyPartitions: []int{1},
	}
	resp, err := ec.workers[ec.ids[0]].runMap(context.Background(), req)
	if err != nil {
		t.Fatal(err)
	}
	for part, b := range resp.PartBytes {
		if part == 1 && b == 0 {
			t.Error("wanted partition 1 produced no bytes")
		}
		if part != 1 && b != 0 {
			t.Errorf("partition %d got %d bytes despite OnlyPartitions=[1]", part, b)
		}
	}
}

// TestReduceEpochInvalidatesMergedCache is the regression test for the
// stale merged-intermediate cache: a reduce that cached its merged
// partition input must not serve that blob to a later reduce running
// after superseding map attempts landed. The driver expresses "after the
// supersede" by bumping Epoch, which re-keys the oCache entry.
func TestReduceEpochInvalidatesMergedCache(t *testing.T) {
	ec := newEngineCluster(t, engineOpts{nodes: 3})
	ns := "job:epoch-1"
	owner := ec.ids[1]
	store := ec.fs[owner].Store()

	store.AppendTaskSegment(ns, partitionName(0), "m0", 0, 0,
		EncodeKVs([]KV{{Key: "alpha", Value: []byte("1")}, {Key: "beta", Value: []byte("1")}}), 0)
	req := RunReduceReq{
		Job: "epoch-1", Namespace: ns, App: "test-wordcount",
		Partition: 0, SegmentOwner: owner, OutputFile: "epoch-out-a",
		CacheIntermediates: true, Epoch: 0, User: "tester",
	}
	resp, err := ec.workers[owner].runReduce(context.Background(), req)
	if err != nil {
		t.Fatal(err)
	}
	if resp.Keys != 2 || resp.InputCached {
		t.Fatalf("first reduce: keys=%d cached=%v, want 2/false", resp.Keys, resp.InputCached)
	}

	// A recovery round re-executes the map with a higher attempt and more
	// data; the old attempt's spills are superseded in the store, but the
	// merged blob cached above still describes them.
	store.AppendTaskSegment(ns, partitionName(0), "m0", 1, 0,
		EncodeKVs([]KV{{Key: "alpha", Value: []byte("1")}, {Key: "beta", Value: []byte("1")},
			{Key: "gamma", Value: []byte("1")}}), 0)

	// Same epoch = same cache key: this is the pre-fix behavior, kept so
	// unchanged re-reduces (e.g. ReuseTag across jobs) still hit.
	req.OutputFile = "epoch-out-b"
	resp, err = ec.workers[owner].runReduce(context.Background(), req)
	if err != nil {
		t.Fatal(err)
	}
	if !resp.InputCached {
		t.Fatal("same-epoch re-reduce missed the cache")
	}

	// Bumped epoch: the stale blob must be invisible and the reduce must
	// see the superseding attempt's data.
	req.Epoch, req.OutputFile = 1, "epoch-out-c"
	resp, err = ec.workers[owner].runReduce(context.Background(), req)
	if err != nil {
		t.Fatal(err)
	}
	if resp.InputCached {
		t.Fatal("bumped epoch still served the stale merged blob")
	}
	if resp.Keys != 3 {
		t.Fatalf("post-supersede reduce keys = %d, want 3", resp.Keys)
	}
}

// TestLostPartitionRecoveryCachedIntermediates runs the lost-partition
// e2e path with CacheIntermediates on: recovery re-homes partitions onto
// survivors whose oCache may hold merged blobs from before the crash, and
// the epoch bump must keep those from polluting the recovered reduces.
// Output must stay exact.
func TestLostPartitionRecoveryCachedIntermediates(t *testing.T) {
	ec := newEngineCluster(t, engineOpts{nodes: 5, cacheSize: 8 << 20})
	text, want := wideCorpus(200, 8)
	ec.upload(t, "healcache.txt", text, 512)

	victim := ec.ids[1]
	var once sync.Once
	ec.driver.SetEventListener(func(job, event string) {
		if event != "map_done" {
			return
		}
		once.Do(func() {
			ec.net.Unlisten(victim)
			ec.mu.Lock()
			ec.ring.Remove(victim)
			ec.mu.Unlock()
			ec.sched.RemoveNode(victim)
		})
	})
	res, err := ec.driver.Run(JobSpec{
		ID: "healcache-1", App: "test-wordcount", Inputs: []string{"healcache.txt"},
		User: "tester", CacheIntermediates: true,
	})
	if err != nil {
		t.Fatalf("job did not self-heal with cached intermediates: %v", err)
	}
	if res.RecoveredPartitions < 1 {
		t.Fatalf("RecoveredPartitions = %d, want >= 1", res.RecoveredPartitions)
	}
	kvs, err := ec.driver.Collect(context.Background(), res, "tester")
	if err != nil {
		t.Fatal(err)
	}
	checkCounts(t, countsFromKVs(t, kvs), want)
}
