package mapreduce

import (
	"context"
	"testing"

	"eclipsemr/internal/hashing"
	"eclipsemr/internal/transport"
)

// callWorker invokes a worker method through the test network.
func callWorker(t *testing.T, ec *engineCluster, to hashing.NodeID, method string, req, resp any) {
	t.Helper()
	body, err := transport.Encode(req)
	if err != nil {
		t.Fatal(err)
	}
	out, err := ec.net.Call(context.Background(), to, method, body)
	if err != nil {
		t.Fatal(err)
	}
	if err := transport.Decode(out, resp); err != nil {
		t.Fatal(err)
	}
}

func TestCacheRangeServesOnlyMatchingBlocks(t *testing.T) {
	ec := newEngineCluster(t, engineOpts{nodes: 3})
	w := ec.workers[ec.ids[0]]
	w.Cache().PutBlock(100, []byte("inside"))
	w.Cache().PutBlock(900, []byte("outside"))
	var resp CacheRangeResp
	callWorker(t, ec, ec.ids[0], MethodCacheRange, CacheRangeReq{Start: 50, End: 500}, &resp)
	if len(resp.Blocks) != 1 || resp.Blocks[0].Key != 100 || string(resp.Blocks[0].Data) != "inside" {
		t.Fatalf("blocks = %+v", resp.Blocks)
	}
}

func TestAdoptRangeMigratesFromNeighbors(t *testing.T) {
	ec := newEngineCluster(t, engineOpts{nodes: 3, cacheSize: 4 << 20})
	left, mid, right := ec.workers[ec.ids[0]], ec.workers[ec.ids[1]], ec.workers[ec.ids[2]]
	// Blocks cached on the neighbors under old ranges, now covered by
	// mid's new range [0, 1000).
	left.Cache().PutBlock(10, []byte("from-left"))
	right.Cache().PutBlock(20, []byte("from-right"))
	right.Cache().PutBlock(5000, []byte("stays")) // outside the range
	// mid already holds one of them: no double count.
	mid.Cache().PutBlock(10, []byte("from-left"))

	var resp AdoptRangeResp
	callWorker(t, ec, ec.ids[1], MethodAdoptRange, AdoptRangeReq{
		Start: 0, End: 1000, Left: ec.ids[0], Right: ec.ids[2],
	}, &resp)
	if resp.Migrated != 1 {
		t.Fatalf("migrated = %d, want 1 (only the right neighbor's block 20)", resp.Migrated)
	}
	if data, ok := mid.Cache().GetBlock(20); !ok || string(data) != "from-right" {
		t.Fatalf("block 20 not migrated: %q %v", data, ok)
	}
	if _, ok := mid.Cache().GetBlock(5000); ok {
		t.Fatal("out-of-range block migrated")
	}
}

func TestAdoptRangeToleratesDeadNeighbor(t *testing.T) {
	ec := newEngineCluster(t, engineOpts{nodes: 3})
	ec.workers[ec.ids[2]].Cache().PutBlock(42, []byte("survivor"))
	ec.net.Unlisten(ec.ids[0]) // left neighbor is dead
	var resp AdoptRangeResp
	callWorker(t, ec, ec.ids[1], MethodAdoptRange, AdoptRangeReq{
		Start: 0, End: 1000, Left: ec.ids[0], Right: ec.ids[2],
	}, &resp)
	if resp.Migrated != 1 {
		t.Fatalf("migrated = %d despite live right neighbor", resp.Migrated)
	}
}

func TestAdoptRangeAllNeighborsDeadErrors(t *testing.T) {
	ec := newEngineCluster(t, engineOpts{nodes: 3})
	ec.net.Unlisten(ec.ids[0])
	ec.net.Unlisten(ec.ids[2])
	body, err := transport.Encode(AdoptRangeReq{Start: 0, End: 10, Left: ec.ids[0], Right: ec.ids[2]})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := ec.net.Call(context.Background(), ec.ids[1], MethodAdoptRange, body); err == nil {
		t.Fatal("adopt with all neighbors dead succeeded")
	}
}
