package mapreduce

import (
	"context"
	"errors"
	"fmt"
	"sync"

	"eclipsemr/internal/dhtfs"
	"eclipsemr/internal/events"
	"eclipsemr/internal/hashing"
	"eclipsemr/internal/metrics"
	"eclipsemr/internal/transport"
)

// spillWindow bounds the async shuffle pipeline per map task: at most
// spillWindow encoded spills queued for the sender plus one batch of at
// most spillWindow spills in flight, so emit blocks (backpressure) once
// 2*spillWindow spills are unacknowledged.
const spillWindow = 4

// spillBufPool recycles per-partition emit buffers across spills and map
// tasks, replacing the per-KV value clone the emit path used to pay.
var spillBufPool = sync.Pool{
	New: func() any {
		b := make([]byte, 0, 64<<10)
		return &b
	},
}

func getSpillBuf() *[]byte {
	b := spillBufPool.Get().(*[]byte)
	*b = (*b)[:0]
	return b
}

func putSpillBuf(b *[]byte) {
	if b != nil {
		spillBufPool.Put(b)
	}
}

// spillJob is one full emit buffer handed to the sender. seq was assigned
// at hand-off in emit order, so the single sender goroutine preserves the
// per-partition sequence the dedup layer expects.
type spillJob struct {
	part int
	seq  int
	buf  *[]byte
}

// spillSender is the asynchronous half of the proactive shuffle (§II-D):
// one goroutine per map task drains full spill buffers while app.Map
// keeps computing, applies the map-side combiner, coalesces spills that
// share a destination node into one PushTaggedSegmentBatch RPC, and
// joins every push error for the task end. Attempt/seq semantics are
// identical to the old inline path: seq is per-partition emit order and
// each spill must land on at least one of its targets.
type spillSender struct {
	w        *Worker
	req      RunMapReq
	combiner ReduceFunc
	inflight *metrics.Gauge

	jobs chan spillJob
	done chan struct{}

	// Owned by the sender goroutine; read by the task goroutine only
	// after finish() observes done closed.
	partBytes []int64
	errs      []error
	failed    bool
}

func (w *Worker) newSpillSender(ctx context.Context, req RunMapReq, combiner ReduceFunc) *spillSender {
	s := &spillSender{
		w:         w,
		req:       req,
		combiner:  combiner,
		inflight:  w.reg.Gauge("mr.shuffle.inflight"),
		jobs:      make(chan spillJob, spillWindow),
		done:      make(chan struct{}),
		partBytes: make([]int64, len(req.ReduceServers)),
	}
	go s.run(ctx)
	return s
}

// enqueue hands one full buffer to the sender, blocking when the
// in-flight window is full. The buffer is owned by the sender from here
// on and is recycled once its push completes.
func (s *spillSender) enqueue(part, seq int, buf *[]byte) {
	s.inflight.Add(1)
	s.jobs <- spillJob{part: part, seq: seq, buf: buf}
}

// finish closes the pipeline, waits for the sender to drain, and returns
// the per-partition byte accounting with every push error joined.
func (s *spillSender) finish() ([]int64, error) {
	close(s.jobs)
	<-s.done
	return s.partBytes, errors.Join(s.errs...)
}

func (s *spillSender) run(ctx context.Context) {
	defer close(s.done)
	for job := range s.jobs {
		batch := []spillJob{job}
		// Coalesce whatever else is already queued, so spills sharing a
		// target travel in one RPC instead of one RPC per (partition,
		// spill).
	drain:
		for len(batch) < spillWindow {
			select {
			case next, ok := <-s.jobs:
				if !ok {
					break drain
				}
				batch = append(batch, next)
			default:
				break drain
			}
		}
		s.send(ctx, batch)
		s.inflight.Add(-int64(len(batch)))
	}
}

// fail records a push error; the sender keeps draining (and discarding)
// so emit never blocks behind a doomed attempt.
func (s *spillSender) fail(err error) {
	s.errs = append(s.errs, err)
	s.failed = true
}

// send combines and pushes one batch of spills, grouped per destination
// node, then recycles the batch's buffers.
func (s *spillSender) send(ctx context.Context, batch []spillJob) {
	defer func() {
		for _, j := range batch {
			putSpillBuf(j.buf)
		}
	}()
	if s.failed {
		return // attempt already failed; just recycle
	}

	// Map-side combiner, per spill, before the bytes are batched. The
	// combined stream replaces the raw buffer (also pooled).
	if s.combiner != nil {
		for i := range batch {
			combined, err := combineStream(s.combiner, s.req.Params, *batch[i].buf)
			if err != nil {
				s.fail(err)
				return
			}
			putSpillBuf(batch[i].buf)
			batch[i].buf = combined
		}
	}

	// Group the batch per destination node, preserving first-appearance
	// order so the outbound call sequence is deterministic. targetIdx
	// remembers whether a node is a job's owner (0) or replica (1) for
	// the replica-spill accounting.
	type route struct {
		entries   []dhtfs.SegBatchEntry
		jobIdx    []int
		targetIdx []int
	}
	perNode := make(map[hashing.NodeID]*route)
	var order []hashing.NodeID
	stored := make([]int, len(batch))
	for i, j := range batch {
		entry := dhtfs.SegBatchEntry{
			Partition: partitionName(j.part),
			Tag:       dhtfs.SegTag{Task: s.req.Task, Attempt: s.req.Attempt, Seq: j.seq},
			Data:      *j.buf,
		}
		for ti, t := range s.targets(j.part) {
			r := perNode[t]
			if r == nil {
				r = &route{}
				perNode[t] = r
				order = append(order, t)
			}
			r.entries = append(r.entries, entry)
			r.jobIdx = append(r.jobIdx, i)
			r.targetIdx = append(r.targetIdx, ti)
		}
	}

	var lastErr error
	for _, node := range order {
		r := perNode[node]
		if err := s.push(ctx, node, r.entries); err != nil {
			if errors.Is(err, transport.ErrUnreachable) {
				// Skipped target: the reduce side unions the surviving
				// copies, as long as each spill landed somewhere.
				lastErr = err
				continue
			}
			s.fail(fmt.Errorf("mapreduce: spill batch of %d to %s: %w", len(r.entries), node, err))
			return
		}
		for k, i := range r.jobIdx {
			stored[i]++
			if r.targetIdx[k] > 0 {
				s.w.reg.Counter("mr.shuffle.replica_spills").Inc()
			}
		}
	}
	for i, n := range stored {
		if n == 0 {
			s.fail(fmt.Errorf("mapreduce: spill partition %d: no reachable target: %w", batch[i].part, lastErr))
			return
		}
	}
	for _, j := range batch {
		size := int64(len(*j.buf))
		s.partBytes[j.part] += size
		s.w.reg.Counter("mr.shuffle.spills").Inc()
		s.w.reg.Counter("mr.shuffle.bytes").Add(size)
	}
}

// targets lists the nodes one partition's spills must reach: the owner
// and, when the job replicates intermediates, the recorded replica.
func (s *spillSender) targets(part int) []hashing.NodeID {
	targets := []hashing.NodeID{s.req.ReduceServers[part]}
	if len(s.req.ReduceReplicas) == len(s.req.ReduceServers) {
		if r := s.req.ReduceReplicas[part]; r != "" && r != targets[0] {
			targets = append(targets, r)
		}
	}
	return targets
}

// push delivers one coalesced batch to one node. The legacy untracked
// path (Task "") keeps its one-append-per-spill wire semantics through
// the same batch method: the store appends unconditionally per entry.
func (s *spillSender) push(ctx context.Context, node hashing.NodeID, entries []dhtfs.SegBatchEntry) error {
	defer s.w.reg.Histogram("mr.shuffle.send_ns").Start().Stop()
	ctx, sp := s.w.tracer.StartSpan(ctx, "shuffle.send")
	defer sp.End()
	sp.Annotate("node", string(node))
	sp.Annotate("spills", fmt.Sprintf("%d", len(entries)))
	s.w.reg.Counter("mr.shuffle.batches").Inc()
	s.w.events.Emit(events.KindShuffle, "shuffle.batch", events.F{
		Job: s.req.Job, Task: s.req.Task, Attempt: s.req.Attempt,
		Detail: fmt.Sprintf("%s spills=%d", node, len(entries)),
	})
	return s.w.fs.PushTaggedSegmentBatch(ctx, node, s.req.Namespace, entries, s.req.TTL)
}

// combineStream runs the combiner over one encoded spill, returning a
// pooled buffer with the combined stream. The decode is zero-copy (the
// group values alias data), and the combiner's output is appended
// straight into the result buffer — no intermediate KV materialization.
func combineStream(fn ReduceFunc, params Params, data []byte) (*[]byte, error) {
	kvs, err := decodeKVsView(data)
	if err != nil {
		return nil, fmt.Errorf("mapreduce: combine input: %w", err)
	}
	out := getSpillBuf()
	emit := func(key string, value []byte) error {
		*out = AppendKV(*out, KV{Key: key, Value: value})
		return nil
	}
	for _, g := range GroupByKey(kvs) {
		if err := fn(params, g.Key, g.Values, emit); err != nil {
			putSpillBuf(out)
			return nil, fmt.Errorf("mapreduce: combine key %q: %w", g.Key, err)
		}
	}
	return out, nil
}
