package mapreduce

import (
	"context"
	"fmt"
	"time"

	"eclipsemr/internal/cache"
	"eclipsemr/internal/dhtfs"
	"eclipsemr/internal/events"
	"eclipsemr/internal/hashing"
	"eclipsemr/internal/metrics"
	"eclipsemr/internal/trace"
	"eclipsemr/internal/transport"
)

// Wire messages for the mr.* worker methods.
type (
	// RunMapReq asks a worker to execute one map task.
	RunMapReq struct {
		Job       string
		Namespace string
		App       string
		Params    Params
		// BlockKey identifies the input block in the DHT file system.
		BlockKey hashing.Key
		// Task names the map task and Attempt counts its executions
		// (0-based), so spills from retried or re-dispatched attempts
		// supersede rather than duplicate earlier ones. An empty Task
		// selects the legacy untracked append path.
		Task    string
		Attempt int
		// ReduceServers / ReduceBounds describe the reduce partition
		// table fixed at job start (partition i is owned by
		// ReduceServers[i]).
		ReduceServers []hashing.NodeID
		ReduceBounds  []hashing.Key
		// ReduceReplicas, when parallel to ReduceServers, names a second
		// spill target per partition (the owner's ring successor at job
		// start) for crash-tolerant intermediates.
		ReduceReplicas []hashing.NodeID
		// OnlyPartitions, when non-empty, restricts output to the listed
		// reduce partitions: pairs hashing elsewhere are discarded instead
		// of buffered and shuffled. Partition recovery uses this to rebuild
		// only the lost partitions.
		OnlyPartitions []int
		SpillThreshold int
		TTL            time.Duration
	}
	// RunMapResp reports the intermediate bytes pushed per partition —
	// the mapper's "notify the scheduler with their hash keys" step.
	RunMapResp struct {
		PartBytes []int64
		// CacheHit reports the input block was served from iCache.
		CacheHit bool
		// RemoteRead reports the block came from a remote server's shard.
		RemoteRead bool
	}
	// RunReduceReq asks a worker to execute one reduce task.
	RunReduceReq struct {
		Job       string
		Namespace string
		App       string
		Params    Params
		Partition int
		// SegmentOwner is the node holding the partition's spills.
		SegmentOwner hashing.NodeID
		// SegmentReplicas, when set, lists every node that may hold part
		// of the partition's spills (owner plus replicas); the reduce then
		// unions the attempt-tagged segments from all reachable members.
		SegmentReplicas []hashing.NodeID
		OutputFile      string
		// OutputBlockSize sizes the DHT-FS blocks of the output file.
		OutputBlockSize    int
		CacheIntermediates bool
		CacheOutputs       bool
		// Epoch keys the merged-intermediate oCache entry. The driver
		// bumps it whenever partition recovery or a resumed generation
		// re-executes maps with higher attempts, so a re-homed or retried
		// reduce can never serve a stale merged blob cached before the
		// supersede.
		Epoch int
		TTL   time.Duration
		User  string
	}
	// RunReduceResp summarizes a reduce task.
	RunReduceResp struct {
		Keys        int64
		OutputBytes int64
		// InputCached reports the merged partition input came from oCache.
		InputCached bool
		// HasOutput reports whether an output file was written (empty
		// partitions produce none).
		HasOutput bool
	}
)

// Worker method names.
const (
	MethodRunMap    = "mr.runMap"
	MethodRunReduce = "mr.runReduce"
)

// Worker executes map and reduce tasks on one node. It reads input blocks
// through the node's iCache, proactively shuffles intermediate results to
// reducer-side nodes, and serves reduce tasks from locally stored
// segments (or oCache).
type Worker struct {
	self   hashing.NodeID
	fs     *dhtfs.Service
	cache  *cache.NodeCache
	net    transport.Network
	reg    *metrics.Registry
	tracer *trace.Tracer
	events *events.Log
}

// NewWorker builds a Worker bound to the node's file system service and
// cache.
func NewWorker(self hashing.NodeID, fs *dhtfs.Service, nc *cache.NodeCache, net transport.Network) *Worker {
	return &Worker{self: self, fs: fs, cache: nc, net: net, reg: metrics.NewRegistry()}
}

// Cache exposes the node cache for stats collection.
func (w *Worker) Cache() *cache.NodeCache { return w.cache }

// Metrics exposes the worker's operational counters.
func (w *Worker) Metrics() *metrics.Registry { return w.reg }

// SetTracer wires the node's tracer into the worker. Call before serving
// tasks; a nil tracer (the default) disables worker spans.
func (w *Worker) SetTracer(tr *trace.Tracer) { w.tracer = tr }

// SetEvents wires the node's structured event log into the worker so
// shuffle batches land in the flight recorder (nil disables emission).
func (w *Worker) SetEvents(l *events.Log) { w.events = l }

// Handle serves one inbound mr.* call; the bool reports method ownership.
// The context carries the caller's span context, so task spans started
// here become children of the driver's dispatch span.
func (w *Worker) Handle(ctx context.Context, method string, body []byte) ([]byte, bool, error) {
	switch method {
	case MethodRunMap:
		var req RunMapReq
		if err := transport.Decode(body, &req); err != nil {
			return nil, true, err
		}
		resp, err := w.runMap(ctx, req)
		if err != nil {
			return nil, true, err
		}
		out, err := transport.Encode(resp)
		return out, true, err
	case MethodRunReduce:
		var req RunReduceReq
		if err := transport.Decode(body, &req); err != nil {
			return nil, true, err
		}
		resp, err := w.runReduce(ctx, req)
		if err != nil {
			return nil, true, err
		}
		out, err := transport.Encode(resp)
		return out, true, err
	}
	return w.handleMigration(ctx, method, body)
}

// fetchBlock implements the paper's map-side read path: iCache, then the
// local DHT-FS shard, then a remote read that populates iCache so the
// popular block is now cached *here*, in the range the scheduler mapped it
// to — independent of where the file system stored it.
func (w *Worker) fetchBlock(ctx context.Context, k hashing.Key) (data []byte, cacheHit, remote bool, err error) {
	if data, ok := w.cache.GetBlock(k); ok {
		return data, true, false, nil
	}
	if data, err := w.fs.Store().GetBlock(k); err == nil {
		w.cache.PutBlock(k, data)
		return data, false, false, nil
	}
	data, err = w.fs.ReadBlock(ctx, k)
	if err != nil {
		return nil, false, false, err
	}
	w.cache.PutBlock(k, data)
	return data, false, true, nil
}

// runMap executes one map task with proactive shuffling.
func (w *Worker) runMap(ctx context.Context, req RunMapReq) (RunMapResp, error) {
	ctx, task := w.tracer.StartSpan(ctx, "task.map")
	defer task.End()
	task.Annotate("task", req.Task)
	app, err := lookupApp(req.App)
	if err != nil {
		return RunMapResp{}, err
	}
	if len(req.ReduceServers) == 0 || len(req.ReduceServers) != len(req.ReduceBounds) {
		return RunMapResp{}, fmt.Errorf("mapreduce: malformed reduce table (%d servers, %d bounds)",
			len(req.ReduceServers), len(req.ReduceBounds))
	}
	table, err := hashing.NewRangeTable(req.ReduceServers, req.ReduceBounds)
	if err != nil {
		return RunMapResp{}, err
	}
	readTimer := w.reg.Histogram("mr.map.read_ns").Start()
	rctx, rd := w.tracer.StartSpan(ctx, "map.read")
	input, cacheHit, remote, err := w.fetchBlock(rctx, req.BlockKey)
	if cacheHit {
		rd.Annotate("cache", "hit")
	} else {
		rd.Annotate("cache", "miss")
	}
	if remote {
		rd.Annotate("remote", "true")
	}
	rd.End()
	readTimer.Stop()
	if err != nil {
		return RunMapResp{}, fmt.Errorf("mapreduce: map input %s: %w", req.BlockKey, err)
	}
	w.reg.Counter("mr.map.tasks").Inc()
	w.reg.Counter("mr.map.input_bytes").Add(int64(len(input)))
	if cacheHit {
		w.reg.Counter("mr.map.cache_hits").Inc()
	}
	if remote {
		w.reg.Counter("mr.map.remote_reads").Inc()
	}

	threshold := req.SpillThreshold
	if threshold <= 0 {
		threshold = DefaultSpillThreshold
	}
	nParts := len(req.ReduceServers)
	resp := RunMapResp{CacheHit: cacheHit, RemoteRead: remote}
	// Emit appends encoded pairs straight into pooled per-partition
	// buffers (no per-KV value clone) and hands full buffers to the async
	// sender, so pushes overlap the rest of the map compute. All error
	// state lives in locally-scoped variables: the sender goroutine never
	// touches this function's err.
	sender := w.newSpillSender(ctx, req, app.Combine)
	buffers := make([]*[]byte, nParts)
	seqs := make([]int, nParts)

	flush := func(part int) {
		buf := buffers[part]
		if buf == nil || len(*buf) == 0 {
			return
		}
		buffers[part] = nil
		sender.enqueue(part, seqs[part], buf)
		seqs[part]++
	}

	var wanted map[int]bool
	if len(req.OnlyPartitions) > 0 {
		wanted = make(map[int]bool, len(req.OnlyPartitions))
		for _, p := range req.OnlyPartitions {
			wanted[p] = true
		}
	}

	emit := func(key string, value []byte) error {
		part := table.LookupIndex(hashing.KeyOfString(key))
		if wanted != nil && !wanted[part] {
			return nil
		}
		buf := buffers[part]
		if buf == nil {
			buf = getSpillBuf()
			buffers[part] = buf
		}
		*buf = AppendKV(*buf, KV{Key: key, Value: value})
		// Proactive shuffle: hand the buffer off the moment it crosses
		// the spill threshold, while the map is still running.
		if len(*buf) >= threshold {
			flush(part)
		}
		return nil
	}

	// Compute time covers the user map function; the combiner and the
	// batch pushes run on the sender goroutine and are timed as
	// mr.shuffle.send_ns (their spans parent under task.map, not
	// map.compute).
	computeTimer := w.reg.Histogram("mr.map.compute_ns").Start()
	_, comp := w.tracer.StartSpan(ctx, "map.compute")
	mapErr := app.Map(req.Params, input, emit)
	if mapErr == nil {
		for part := range buffers {
			flush(part)
		}
	}
	comp.End()
	// The task is not done until every queued push is acknowledged;
	// errors from background pushes fail the attempt exactly like the old
	// inline path did.
	partBytes, sendErr := sender.finish()
	computeTimer.Stop()
	for _, b := range buffers {
		putSpillBuf(b) // unflushed buffers of a failed map
	}
	if mapErr != nil {
		return RunMapResp{}, fmt.Errorf("mapreduce: map %s on block %s: %w", req.App, req.BlockKey, mapErr)
	}
	if sendErr != nil {
		return RunMapResp{}, sendErr
	}
	resp.PartBytes = partBytes
	return resp, nil
}

// partitionName is the segment-store partition label for index part.
func partitionName(part int) string { return fmt.Sprintf("p%04d", part) }

// mergedTag is the oCache data ID of a partition's merged reduce input.
// The epoch is part of the key: entries cached before a recovery round or
// a resumed generation (which push superseding attempts) are simply never
// looked up again.
func mergedTag(part, epoch int) string {
	return fmt.Sprintf("merged:%s@e%d", partitionName(part), epoch)
}

// gatherReplicatedSegments unions the attempt-tagged spills of a partition
// from every reachable replica. Each spill reached at least one member of
// the set (pushSpill's invariant), so the union over the reachable members
// is complete as long as at least one answers; duplicates and superseded
// attempts are resolved by dhtfs.MergeTaggedSegments.
func (w *Worker) gatherReplicatedSegments(ctx context.Context, req RunReduceReq) ([][]byte, error) {
	partition := partitionName(req.Partition)
	var tagged []dhtfs.TaggedSegment
	reached := 0
	var lastErr error
	for _, t := range req.SegmentReplicas {
		var segs []dhtfs.TaggedSegment
		var err error
		if t == w.self {
			segs = w.fs.Store().ReadTaggedSegments(req.Namespace, partition)
		} else {
			segs, err = w.fs.FetchTaggedSegments(ctx, t, req.Namespace, partition)
		}
		if err != nil {
			lastErr = err
			continue
		}
		reached++
		tagged = append(tagged, segs...)
	}
	if reached == 0 {
		return nil, fmt.Errorf("mapreduce: partition %d: no segment replica reachable: %w",
			req.Partition, lastErr)
	}
	return dhtfs.MergeTaggedSegments(tagged), nil
}

// runReduce executes one reduce task: gather the partition's intermediate
// data (oCache, local segments, or a remote fetch if scheduled off the
// segment owner), group by key, reduce, and persist the output to the DHT
// file system.
func (w *Worker) runReduce(ctx context.Context, req RunReduceReq) (RunReduceResp, error) {
	ctx, task := w.tracer.StartSpan(ctx, "task.reduce")
	defer task.End()
	task.Annotate("partition", partitionName(req.Partition))
	app, err := lookupApp(req.App)
	if err != nil {
		return RunReduceResp{}, err
	}
	var resp RunReduceResp
	var merged []byte
	if data, ok := w.cache.GetTagged(req.Namespace, mergedTag(req.Partition, req.Epoch)); ok {
		merged = data
		resp.InputCached = true
		task.Annotate("cache", "hit")
	} else {
		task.Annotate("cache", "miss")
		recvTimer := w.reg.Histogram("mr.shuffle.recv_ns").Start()
		rctx, recv := w.tracer.StartSpan(ctx, "shuffle.recv")
		var segments [][]byte
		if len(req.SegmentReplicas) > 0 {
			segments, err = w.gatherReplicatedSegments(rctx, req)
			if err != nil {
				recv.End()
				return RunReduceResp{}, err
			}
		} else if req.SegmentOwner == w.self {
			segments = w.fs.Store().ReadSegments(req.Namespace, partitionName(req.Partition))
		} else {
			segments, err = w.fs.FetchSegments(rctx, req.SegmentOwner, req.Namespace, partitionName(req.Partition))
			if err != nil {
				recv.End()
				return RunReduceResp{}, fmt.Errorf("mapreduce: fetch segments for partition %d: %w",
					req.Partition, err)
			}
		}
		for _, seg := range segments {
			merged = append(merged, seg...)
		}
		recv.End()
		recvTimer.Stop()
		if req.CacheIntermediates && len(merged) > 0 {
			tag := mergedTag(req.Partition, req.Epoch)
			w.cache.PutTagged(req.Namespace, tag,
				hashing.KeyOfString(req.Namespace+tag), merged, req.TTL)
		}
	}
	if len(merged) == 0 {
		return resp, nil // empty partition
	}
	kvs, err := DecodeKVs(merged)
	if err != nil {
		return RunReduceResp{}, fmt.Errorf("mapreduce: partition %d corrupt: %w", req.Partition, err)
	}
	var output []byte
	emit := func(key string, value []byte) error {
		output = AppendKV(output, KV{Key: key, Value: value})
		return nil
	}
	computeTimer := w.reg.Histogram("mr.reduce.compute_ns").Start()
	_, comp := w.tracer.StartSpan(ctx, "reduce.compute")
	for _, g := range GroupByKey(kvs) {
		resp.Keys++
		if err := app.Reduce(req.Params, g.Key, g.Values, emit); err != nil {
			comp.End()
			return RunReduceResp{}, fmt.Errorf("mapreduce: reduce key %q: %w", g.Key, err)
		}
	}
	comp.End()
	computeTimer.Stop()
	blockSize := req.OutputBlockSize
	if blockSize <= 0 {
		blockSize = 1 << 20
	}
	writeTimer := w.reg.Histogram("mr.reduce.write_ns").Start()
	wctx, wr := w.tracer.StartSpan(ctx, "reduce.write")
	_, err = w.fs.Upload(wctx, req.OutputFile, req.User, dhtfs.PermPublic, output, blockSize)
	wr.End()
	writeTimer.Stop()
	if err != nil {
		return RunReduceResp{}, fmt.Errorf("mapreduce: store output %q: %w", req.OutputFile, err)
	}
	if req.CacheOutputs {
		w.cache.PutTagged(req.Namespace, "out:"+partitionName(req.Partition),
			hashing.KeyOfString(req.OutputFile), output, req.TTL)
	}
	resp.OutputBytes = int64(len(output))
	resp.HasOutput = true
	w.reg.Counter("mr.reduce.tasks").Inc()
	w.reg.Counter("mr.reduce.keys").Add(resp.Keys)
	w.reg.Counter("mr.reduce.output_bytes").Add(resp.OutputBytes)
	return resp, nil
}
