package mapreduce

import (
	"bytes"
	"testing"
	"testing/quick"
)

func TestEncodeDecodeKVs(t *testing.T) {
	in := []KV{
		{Key: "alpha", Value: []byte("1")},
		{Key: "", Value: nil}, // empty key and value are legal
		{Key: "beta", Value: []byte{0, 1, 2, 255}},
	}
	data := EncodeKVs(in)
	out, err := DecodeKVs(data)
	if err != nil {
		t.Fatal(err)
	}
	if len(out) != len(in) {
		t.Fatalf("len = %d", len(out))
	}
	for i := range in {
		if out[i].Key != in[i].Key || !bytes.Equal(out[i].Value, in[i].Value) {
			t.Fatalf("pair %d = %+v want %+v", i, out[i], in[i])
		}
	}
}

func TestDecodeKVsRejectsTruncation(t *testing.T) {
	data := EncodeKVs([]KV{{Key: "key", Value: []byte("value")}})
	for cut := 1; cut < len(data); cut++ {
		if _, err := DecodeKVs(data[:cut]); err == nil {
			t.Fatalf("truncation at %d accepted", cut)
		}
	}
	if out, err := DecodeKVs(nil); err != nil || len(out) != 0 {
		t.Fatalf("empty stream: %v, %d", err, len(out))
	}
}

// Property: concatenation of encodings decodes to concatenation of pairs —
// the invariant that makes spill appends safe.
func TestEncodingConcatenation(t *testing.T) {
	f := func(a, b []string) bool {
		mk := func(keys []string) []KV {
			kvs := make([]KV, len(keys))
			for i, k := range keys {
				kvs[i] = KV{Key: k, Value: []byte(k + "!")}
			}
			return kvs
		}
		ka, kb := mk(a), mk(b)
		joined := append(append([]byte(nil), EncodeKVs(ka)...), EncodeKVs(kb)...)
		out, err := DecodeKVs(joined)
		if err != nil {
			return false
		}
		want := append(append([]KV(nil), ka...), kb...)
		if len(out) != len(want) {
			return false
		}
		for i := range want {
			if out[i].Key != want[i].Key || !bytes.Equal(out[i].Value, want[i].Value) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestGroupByKey(t *testing.T) {
	kvs := []KV{
		{Key: "b", Value: []byte("1")},
		{Key: "a", Value: []byte("2")},
		{Key: "b", Value: []byte("3")},
		{Key: "a", Value: []byte("4")},
	}
	groups := GroupByKey(kvs)
	if len(groups) != 2 {
		t.Fatalf("groups = %d", len(groups))
	}
	if groups[0].Key != "a" || groups[1].Key != "b" {
		t.Fatalf("order = %s,%s", groups[0].Key, groups[1].Key)
	}
	// Stability: values keep their emission order within a key.
	if string(groups[0].Values[0]) != "2" || string(groups[0].Values[1]) != "4" {
		t.Fatalf("a values = %q", groups[0].Values)
	}
	if string(groups[1].Values[0]) != "1" || string(groups[1].Values[1]) != "3" {
		t.Fatalf("b values = %q", groups[1].Values)
	}
	if got := GroupByKey(nil); len(got) != 0 {
		t.Fatalf("empty group = %v", got)
	}
	// Input must not be reordered in place.
	if kvs[0].Key != "b" {
		t.Fatal("GroupByKey mutated its input")
	}
}

func TestParamsCloneAndGet(t *testing.T) {
	p := Params{"k": []byte("v")}
	c := p.Clone()
	c["k"][0] = 'X'
	if p.Get("k") != "v" {
		t.Fatal("Clone aliased values")
	}
	if p.Get("missing") != "" {
		t.Fatal("missing param not empty")
	}
}

func TestRegisterValidation(t *testing.T) {
	mustPanic := func(name string, app App) {
		t.Helper()
		defer func() {
			if recover() == nil {
				t.Fatalf("Register(%s) did not panic", name)
			}
		}()
		Register(name, app)
	}
	mustPanic("incomplete", App{})
	ok := App{
		Map:    func(Params, []byte, Emit) error { return nil },
		Reduce: func(Params, string, [][]byte, Emit) error { return nil },
	}
	Register("enc-test-app", ok)
	mustPanic("enc-test-app", ok) // duplicate
	found := false
	for _, n := range RegisteredApps() {
		if n == "enc-test-app" {
			found = true
		}
	}
	if !found {
		t.Fatal("registered app not listed")
	}
	if _, err := lookupApp("nope"); err == nil {
		t.Fatal("lookup of unknown app succeeded")
	}
}

func TestJobSpecNamespaceAndValidate(t *testing.T) {
	s := JobSpec{ID: "j1", App: "enc-test-app", Inputs: []string{"f"}}
	if s.Namespace() != "job:j1" {
		t.Fatalf("Namespace = %q", s.Namespace())
	}
	s.ReuseTag = "shared"
	if s.Namespace() != "tag:shared" {
		t.Fatalf("Namespace = %q", s.Namespace())
	}
	bad := []JobSpec{
		{},
		{ID: "x"},
		{ID: "x", App: "enc-test-app"},
		{ID: "x", App: "unregistered", Inputs: []string{"f"}},
	}
	for i, b := range bad {
		if err := b.validate(); err == nil {
			t.Errorf("spec %d validated", i)
		}
	}
}
