package mapreduce

import (
	"context"
	"fmt"
	"sort"
	"strings"
	"sync"

	"eclipsemr/internal/dhtfs"
	"eclipsemr/internal/events"
	"eclipsemr/internal/hashing"
	"eclipsemr/internal/transport"
)

// Job journal: the durable record of one job's progress, stored as a
// replicated DHT-FS file. The `_mr/<ns>/done` reuse marker records only a
// *finished* map phase; the journal extends it to live state — the spec,
// the partition table fixed at job start, per-task completion and
// per-partition completion — so a restarted or newly elected manager can
// adopt an interrupted job with Driver.Resume and re-execute only the
// missing work.

// Journal phases, in order.
const (
	phaseMap    = "map"
	phaseReduce = "reduce"
	phaseDone   = "done"
)

// attemptStride separates the attempt ranges of successive driver
// generations: a resumed run tags its executions with attempts from the
// next stride, so its spills always supersede partial spills of the
// interrupted generation in the store's max-attempt dedup — even when the
// crash lost the journal updates recording how far attempts had advanced.
const attemptStride = 1 << 20

// journal is the gob-encoded journal file payload.
type journal struct {
	Spec JobSpec
	// Phase is the furthest phase the job has entered (map → reduce →
	// done).
	Phase string
	// Generation counts driver adoptions: 0 for the original run, +1 per
	// resume. Attempts of generation g start at g*attemptStride.
	Generation int
	// Mk is the partition table fixed at job start. A resumed map phase
	// must keep spilling to the same owners the completed tasks spilled
	// to; its PartBytes mirror the live marker as map tasks complete.
	Mk marker
	// MapsDone marks map task IDs whose spills are fully pushed.
	MapsDone map[string]bool
	// Attempts records the last attempt known used per map task
	// (observability; correctness on resume comes from Generation).
	Attempts map[string]int
	// PartsDone maps completed reduce partitions to their output file
	// ("" for an empty partition with no output).
	PartsDone map[int]string
}

// journalPrefix namespaces journal files inside the framework-internal
// tree (hidden from client.list like the reuse markers).
const journalPrefix = "_mr/journal/"

func journalFile(jobID string) string { return journalPrefix + jobID }

// journalWriter persists one job's journal with write coalescing: map
// completions mark the state dirty and a single flusher goroutine uploads
// the latest snapshot, so a burst of completions costs one upload, not
// one per task. Uploads are best effort — the journal trades a little
// idempotent re-execution on resume for never failing a healthy job on a
// flaky network — but phase transitions and partition completions flush
// synchronously, so a resumed driver never re-reduces a completed
// partition.
type journalWriter struct {
	d    *Driver
	file string
	user string

	// mu guards the journal state and dirty flag only; no RPC ever runs
	// under it.
	mu    sync.Mutex
	j     journal
	dirty bool

	// All uploads run on the single flusher goroutine, which both
	// serializes snapshots (they reach the file system in order) and keeps
	// network I/O off every mutex. sendMu guards kick sends against close.
	sendMu sync.Mutex
	closed bool
	kick   chan chan struct{} // nil = coalesced async flush; non-nil = acked sync flush
	idle   chan struct{}      // closed when the flusher goroutine exits
}

// newJournalWriter seeds the writer from a prior journal (resume) or a
// fresh one, persists the opening snapshot synchronously, and starts the
// flusher.
func (d *Driver) newJournalWriter(ctx context.Context, spec JobSpec, mk *marker, prior *journal) *journalWriter {
	w := &journalWriter{
		d:    d,
		file: journalFile(spec.ID),
		user: spec.User,
		kick: make(chan chan struct{}, 1),
		idle: make(chan struct{}),
	}
	if prior != nil {
		w.j = *prior
		w.j.Generation = prior.Generation + 1
	} else {
		w.j = journal{Spec: spec, Phase: phaseMap}
	}
	if w.j.MapsDone == nil {
		w.j.MapsDone = make(map[string]bool)
	}
	if w.j.Attempts == nil {
		w.j.Attempts = make(map[string]int)
	}
	if w.j.PartsDone == nil {
		w.j.PartsDone = make(map[int]string)
	}
	w.j.Mk = copyMarker(mk)
	w.dirty = true
	// The journal must exist before any work it would cover; the flusher
	// is not running yet, so calling doFlush directly is single-threaded.
	w.doFlush(ctx)
	go w.loop(ctx)
	return w
}

// attemptBase returns the first attempt number of this writer's
// generation.
func (w *journalWriter) attemptBase() int {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.j.Generation * attemptStride
}

// signalFlush hands a flush request to the flusher goroutine. A nil done
// coalesces (drop the kick if one is already pending); a non-nil done is
// delivered unconditionally and closed once the flush covering the
// caller's mutation completed. Returns false after close.
func (w *journalWriter) signalFlush(done chan struct{}) bool {
	w.sendMu.Lock()
	defer w.sendMu.Unlock()
	if w.closed {
		return false
	}
	if done == nil {
		select {
		case w.kick <- nil:
		default:
		}
		return true
	}
	// The flusher never takes sendMu, so this blocking send always drains.
	w.kick <- done
	return true
}

// update applies a mutation and schedules an asynchronous flush. Safe to
// call with driver locks held: it only signals the flusher.
func (w *journalWriter) update(fn func(*journal)) {
	w.mu.Lock()
	fn(&w.j)
	w.dirty = true
	w.mu.Unlock()
	w.signalFlush(nil)
}

// updateSync applies a mutation and waits until a flush covering it has
// been persisted. Must not be called with driver locks held (it blocks on
// file-system RPCs).
func (w *journalWriter) updateSync(fn func(*journal)) {
	w.mu.Lock()
	fn(&w.j)
	w.dirty = true
	w.mu.Unlock()
	done := make(chan struct{})
	if w.signalFlush(done) {
		<-done
	}
}

// setPhase records a phase transition (with the current marker state)
// synchronously.
func (w *journalWriter) setPhase(phase string, mk *marker) {
	snap := copyMarker(mk)
	w.updateSync(func(j *journal) {
		j.Phase = phase
		j.Mk = snap
	})
}

// loop is the coalescing flusher: each kick flushes the latest snapshot
// and acks sync requests. An ack is correct even when doFlush found
// nothing dirty: the requester's mutation was then already covered by an
// earlier flush (dirty is cleared under mu only when the snapshot
// includes it).
func (w *journalWriter) loop(ctx context.Context) {
	defer close(w.idle)
	for done := range w.kick {
		w.doFlush(ctx)
		if done != nil {
			close(done)
		}
	}
}

// doFlush uploads the current snapshot if dirty. Only the flusher
// goroutine (and the single-threaded open/close paths) call it. Upload
// errors are counted, not surfaced: losing a journal write only means a
// resume re-executes a few already-finished tasks (idempotently, thanks
// to the attempt-tagged store). A failed upload re-marks the state dirty
// so the dropped snapshot is retried by the next flush — in particular by
// close's final one; without that, mutations between the failed flush and
// close would silently never reach the journal file.
func (w *journalWriter) doFlush(ctx context.Context) {
	w.mu.Lock()
	if !w.dirty {
		w.mu.Unlock()
		return
	}
	w.dirty = false
	data, err := transport.Encode(w.j)
	jobID := w.j.Spec.ID
	phase := w.j.Phase
	w.mu.Unlock()
	if err == nil {
		_, err = w.d.fs.Upload(ctx, w.file, w.user, dhtfs.PermPublic, data, 1<<20)
	}
	if err != nil {
		// Visible discard: journaling is best effort by design (see the
		// type comment); the counter keeps the loss observable.
		w.d.reg.Counter("mr.driver.journal_errors").Inc()
		w.d.events.Emit(events.KindJournal, "journal.flush_error", events.F{
			Job: jobID, Detail: err.Error(),
		})
		w.mu.Lock()
		w.dirty = true
		w.mu.Unlock()
		return
	}
	w.d.events.Emit(events.KindJournal, "journal.flush", events.F{Job: jobID, Detail: phase})
}

// close stops the flusher and persists the final state, so even an
// aborted run leaves its latest progress adoptable. The final flush runs
// on a context detached from ctx's cancellation: a cancelled job is
// exactly the case where the last snapshot must still reach the journal
// for a later Resume to adopt.
func (w *journalWriter) close(ctx context.Context) {
	w.sendMu.Lock()
	if w.closed {
		w.sendMu.Unlock()
		return
	}
	w.closed = true
	w.sendMu.Unlock()
	close(w.kick)
	<-w.idle
	// Single-threaded again: the flusher has exited.
	w.doFlush(context.WithoutCancel(ctx))
}

// copyMarker deep-copies a marker so journal snapshots never alias the
// live slices the dispatcher mutates.
func copyMarker(mk *marker) marker {
	if mk == nil {
		return marker{}
	}
	out := *mk
	out.Servers = append([]hashing.NodeID(nil), mk.Servers...)
	out.Bounds = append([]hashing.Key(nil), mk.Bounds...)
	out.PartBytes = append([]int64(nil), mk.PartBytes...)
	out.Replicas = append([]hashing.NodeID(nil), mk.Replicas...)
	return out
}

// loadJournal fetches and decodes a job's journal.
func (d *Driver) loadJournal(ctx context.Context, jobID string) (*journal, error) {
	data, err := d.fs.ReadFile(ctx, journalFile(jobID), "")
	if err != nil {
		return nil, fmt.Errorf("mapreduce: job %s has no journal: %w", jobID, err)
	}
	var j journal
	if err := transport.Decode(data, &j); err != nil {
		return nil, fmt.Errorf("mapreduce: corrupt journal for job %s: %w", jobID, err)
	}
	if j.Spec.ID != jobID {
		return nil, fmt.Errorf("mapreduce: journal for job %s names job %s", jobID, j.Spec.ID)
	}
	return &j, nil
}

// Resume loads the durable journal of an interrupted job and drives it
// to completion, skipping the maps and reduce partitions the journal
// records as done. A job whose journal already reached the done phase
// returns its recorded result without re-running anything. This is how a
// restarted or newly elected manager adopts in-flight jobs.
func (d *Driver) Resume(jobID string) (Result, error) {
	//lint:ignore ctxflow Resume is the ctx-less convenience entry point; ResumeContext is the threaded form
	return d.ResumeContext(context.Background(), jobID)
}

// ResumeContext is Resume with caller-controlled cancellation.
func (d *Driver) ResumeContext(ctx context.Context, jobID string) (Result, error) {
	prior, err := d.loadJournal(ctx, jobID)
	if err != nil {
		return Result{}, err
	}
	if err := prior.Spec.validate(); err != nil {
		return Result{}, err
	}
	return d.run(ctx, prior.Spec, prior)
}

// JournalSnapshot is the externally visible progress summary of one
// journaled job, for debug bundles and operator tooling. It deliberately
// flattens the journal to counts: the full journal carries the job spec
// (including params), which does not belong in a shareable bundle.
type JournalSnapshot struct {
	Job        string
	Phase      string
	Generation int
	// MapsDone / PartsDone count completed map tasks and reduce
	// partitions; Attempts counts map tasks with at least one recorded
	// attempt.
	MapsDone  int
	PartsDone int
	Attempts  int
}

// JournalSnapshots summarizes every journal reachable through fs. A
// non-empty job restricts the listing to that job. Unreachable or corrupt
// journals are skipped — bundle capture runs exactly when parts of the
// cluster are failing. Sorted by job ID.
func JournalSnapshots(ctx context.Context, fs *dhtfs.Service, job string) ([]JournalSnapshot, error) {
	names, err := fs.ListPrefix(ctx, journalPrefix)
	if err != nil {
		return nil, err
	}
	var out []JournalSnapshot
	for _, name := range names {
		jobID := strings.TrimPrefix(name, journalPrefix)
		if job != "" && jobID != job {
			continue
		}
		data, err := fs.ReadFile(ctx, name, "")
		if err != nil {
			continue
		}
		var j journal
		if err := transport.Decode(data, &j); err != nil {
			continue
		}
		out = append(out, JournalSnapshot{
			Job:        jobID,
			Phase:      j.Phase,
			Generation: j.Generation,
			MapsDone:   len(j.MapsDone),
			PartsDone:  len(j.PartsDone),
			Attempts:   len(j.Attempts),
		})
	}
	sort.Slice(out, func(i, k int) bool { return out[i].Job < out[k].Job })
	return out, nil
}

// Orphans lists journaled jobs that have not reached the done phase —
// the jobs a newly elected manager should adopt with Resume. Sorted by
// job ID.
func (d *Driver) Orphans(ctx context.Context) ([]string, error) {
	names, err := d.fs.ListPrefix(ctx, journalPrefix)
	if err != nil {
		return nil, err
	}
	var jobs []string
	for _, name := range names {
		jobID := strings.TrimPrefix(name, journalPrefix)
		j, err := d.loadJournal(ctx, jobID)
		if err != nil {
			continue // a corrupt or vanished journal is not adoptable
		}
		if j.Phase != phaseDone {
			jobs = append(jobs, jobID)
		}
	}
	sort.Strings(jobs)
	return jobs, nil
}
