package mapreduce

import (
	"context"
	"errors"
	"fmt"
	"sort"
	"strconv"
	"sync"
	"time"

	"eclipsemr/internal/dhtfs"
	"eclipsemr/internal/hashing"
	"eclipsemr/internal/metrics"
	"eclipsemr/internal/scheduler"
	"eclipsemr/internal/trace"
	"eclipsemr/internal/transport"
)

// Driver orchestrates MapReduce jobs from the job-scheduler node: it
// resolves input metadata through the DHT file system, feeds map tasks to
// the pluggable scheduling policy, dispatches tasks to workers over the
// transport, schedules reduce tasks at the nodes storing the intermediate
// results, and assembles results.
//
// A single Driver runs any number of jobs concurrently (the paper's
// Figure 8 batches seven): one dispatcher goroutine owns the scheduling
// policy and routes each assignment to the job that submitted the task,
// so concurrent Run calls share worker slots under the policy.
type Driver struct {
	self  hashing.NodeID
	net   transport.Network
	fs    *dhtfs.Service
	sched scheduler.Scheduler
	ring  func() *hashing.Ring
	// reduceSlots bounds concurrent reduce tasks per node.
	reduceSlots int
	start       time.Time
	reg         *metrics.Registry
	tracer      *trace.Tracer

	mu   sync.Mutex
	jobs map[string]*activeJob
	// wake nudges the dispatcher; buffered so signalling never blocks.
	wake    chan struct{}
	started bool
	closed  bool
}

// activeJob is the dispatcher-side state of one running map phase.
type activeJob struct {
	// ctx carries the job's root span; dispatcher goroutines parent their
	// task spans under it.
	ctx       context.Context
	spec      JobSpec
	ns        string
	mk        *marker
	res       *Result
	attempts  map[string]int
	taskByID  map[string]scheduler.Task
	remaining int
	done      chan error // buffered(1); receives the phase outcome
	failed    bool
}

// NewDriver builds a Driver. The scheduler must already know the worker
// nodes and their map slots; reduceSlots bounds reducer concurrency per
// node (the paper configures 8 map and 8 reduce slots per server).
func NewDriver(self hashing.NodeID, net transport.Network, fs *dhtfs.Service,
	sched scheduler.Scheduler, ring func() *hashing.Ring, reduceSlots int) (*Driver, error) {
	if fs == nil || sched == nil || ring == nil {
		return nil, errors.New("mapreduce: driver requires fs, scheduler and ring")
	}
	if reduceSlots <= 0 {
		reduceSlots = 8
	}
	d := &Driver{
		self:        self,
		net:         net,
		fs:          fs,
		sched:       sched,
		ring:        ring,
		reduceSlots: reduceSlots,
		start:       time.Now(),
		reg:         metrics.NewRegistry(),
		jobs:        make(map[string]*activeJob),
		wake:        make(chan struct{}, 1),
	}
	// Pre-create so every metrics snapshot shows the recovery counters.
	for _, name := range []string{
		"mr.driver.map_retries", "mr.driver.map_failovers", "mr.driver.reduce_failovers",
	} {
		d.reg.Counter(name)
	}
	return d, nil
}

// Metrics exposes the driver's retry and failover counters.
func (d *Driver) Metrics() *metrics.Registry { return d.reg }

// SetTracer wires the node's tracer into the driver. Call before
// submitting jobs; a nil tracer (the default) disables driver spans.
func (d *Driver) SetTracer(tr *trace.Tracer) { d.tracer = tr }

// since returns the driver's monotonic time, the clock fed to the
// scheduling policy.
func (d *Driver) since() time.Duration { return time.Since(d.start) }

// marker is the completion record persisted to the DHT file system when a
// job with a reuse tag finishes its map phase; a later job with the same
// tag reads it instead of re-running the maps.
type marker struct {
	Servers   []hashing.NodeID
	Bounds    []hashing.Key
	PartBytes []int64
	// Replicas, when the job replicates intermediates, names each
	// partition owner's ring successor at job start; recording it here
	// keeps the spill-target table stable even if the ring changes
	// mid-job.
	Replicas []hashing.NodeID
	// Expires invalidates the marker (and with it reuse of the stored
	// intermediates) once the job's IntermediateTTL lapses; zero means no
	// TTL.
	Expires time.Time
}

func markerFile(namespace string) string { return "_mr/" + namespace + "/done" }

// Run executes one job to completion. Run may be called concurrently for
// different jobs; job IDs must be unique among in-flight jobs.
func (d *Driver) Run(spec JobSpec) (Result, error) {
	if err := spec.validate(); err != nil {
		return Result{}, err
	}
	began := time.Now()
	ns := spec.Namespace()
	res := Result{Job: spec.ID}

	// The job is the trace: its ID is the trace ID, and this root span
	// covers the whole run. Every task span on every node descends from it.
	ctx, root := d.tracer.StartRoot(context.Background(), spec.ID, "driver.job")
	root.Annotate("app", spec.App)
	defer root.End()

	// Reuse path: a completed map phase under this namespace lets the job
	// skip straight to reducing (§II-C).
	var mk marker
	reused := false
	if spec.ReuseTag != "" {
		if data, err := d.fs.ReadFile(ctx, markerFile(ns), spec.User); err == nil {
			if err := transport.Decode(data, &mk); err != nil {
				return Result{}, fmt.Errorf("mapreduce: corrupt reuse marker for %q: %w", ns, err)
			}
			// The TTL on stored intermediate results invalidates reuse.
			if mk.Expires.IsZero() || d.fs.Now().Before(mk.Expires) {
				reused = true
			} else {
				mk = marker{}
			}
		}
	}

	if !reused {
		table, err := hashing.AlignedRangeTable(d.ring())
		if err != nil {
			return Result{}, err
		}
		mk.Servers = table.Servers()
		mk.Bounds = table.Bounds()
		mk.PartBytes = make([]int64, table.Len())
		if spec.ReplicateIntermediates {
			mk.Replicas = make([]hashing.NodeID, len(mk.Servers))
			ring := d.ring()
			for i, owner := range mk.Servers {
				if succ, err := ring.Successor(owner); err == nil && succ != owner {
					mk.Replicas[i] = succ
				}
			}
		}

		tasks, err := d.mapTasks(ctx, spec)
		if err != nil {
			return Result{}, err
		}
		res.MapTasks = len(tasks)
		if err := d.runMapPhase(ctx, spec, ns, tasks, &mk, &res); err != nil {
			return Result{}, err
		}
		if spec.ReuseTag != "" {
			if spec.IntermediateTTL > 0 {
				mk.Expires = d.fs.Now().Add(spec.IntermediateTTL)
			}
			data, err := transport.Encode(mk)
			if err != nil {
				return Result{}, err
			}
			if _, err := d.fs.Upload(ctx, markerFile(ns), spec.User, dhtfs.PermPublic, data, 1<<20); err != nil {
				return Result{}, fmt.Errorf("mapreduce: store reuse marker: %w", err)
			}
		}
	} else {
		res.MapsSkipped = true
		root.Annotate("maps", "reused")
	}

	if err := d.runReducePhase(ctx, spec, ns, mk, &res); err != nil {
		return Result{}, err
	}
	res.Elapsed = time.Since(began)
	d.reg.Histogram("mr.driver.job_ns").ObserveDuration(res.Elapsed)
	return res, nil
}

// mapTasks expands the job's input files into one task per block.
func (d *Driver) mapTasks(ctx context.Context, spec JobSpec) ([]scheduler.Task, error) {
	var tasks []scheduler.Task
	for _, input := range spec.Inputs {
		meta, err := d.fs.Lookup(ctx, input, spec.User)
		if err != nil {
			return nil, fmt.Errorf("mapreduce: input %q: %w", input, err)
		}
		for i, bk := range meta.BlockKeys {
			tasks = append(tasks, scheduler.Task{
				Job:     spec.ID,
				ID:      fmt.Sprintf("%s/m/%s/%d", spec.ID, input, i),
				HashKey: bk,
			})
		}
	}
	return tasks, nil
}

// runMapPhase registers the job with the dispatcher, submits its tasks,
// and waits for the phase to finish.
func (d *Driver) runMapPhase(ctx context.Context, spec JobSpec, ns string, tasks []scheduler.Task, mk *marker, res *Result) error {
	j := &activeJob{
		ctx:       ctx,
		spec:      spec,
		ns:        ns,
		mk:        mk,
		res:       res,
		attempts:  make(map[string]int, len(tasks)),
		taskByID:  make(map[string]scheduler.Task, len(tasks)),
		remaining: len(tasks),
		done:      make(chan error, 1),
	}
	for _, t := range tasks {
		j.taskByID[t.ID] = t
	}

	d.mu.Lock()
	if d.closed {
		d.mu.Unlock()
		return errors.New("mapreduce: driver closed")
	}
	if _, dup := d.jobs[spec.ID]; dup {
		d.mu.Unlock()
		return fmt.Errorf("mapreduce: job %s is already running", spec.ID)
	}
	d.jobs[spec.ID] = j
	if !d.started {
		d.started = true
		go d.dispatchLoop()
	}
	d.mu.Unlock()

	now := d.since()
	for _, t := range tasks {
		d.sched.Submit(t, now)
	}
	d.signal()
	err := <-j.done

	d.mu.Lock()
	delete(d.jobs, spec.ID)
	d.mu.Unlock()
	return err
}

// signal nudges the dispatcher without blocking.
func (d *Driver) signal() {
	select {
	case d.wake <- struct{}{}:
	default:
	}
}

// dispatchLoop is the single goroutine that pumps the scheduling policy:
// it pulls ready assignments, routes each to its job, and wakes for
// delay-scheduler deadlines. It runs for the driver's lifetime.
func (d *Driver) dispatchLoop() {
	for {
		d.mu.Lock()
		closed := d.closed
		d.mu.Unlock()
		if closed {
			return
		}

		for _, a := range d.sched.Dispatch(d.since()) {
			d.mu.Lock()
			j := d.jobs[a.Task.Job]
			d.mu.Unlock()
			if j == nil {
				// The job failed and deregistered while this task sat in
				// the queue; give the slot back.
				d.sched.Release(a.Node)
				continue
			}
			go d.runMapTask(j, a)
		}

		var timerC <-chan time.Time
		var timer *time.Timer
		if dl, ok := d.sched.NextDeadline(); ok {
			if wait := dl - d.since(); wait > 0 {
				timer = time.NewTimer(wait)
				timerC = timer.C
			} else {
				// Deadline already passed: take another dispatch pass.
				continue
			}
		}
		select {
		case <-d.wake:
		case <-timerC:
		}
		if timer != nil {
			timer.Stop()
		}
	}
}

// mapReq builds the RunMapReq for one execution attempt of a map task.
func (d *Driver) mapReq(j *activeJob, t scheduler.Task, attempt int) RunMapReq {
	return RunMapReq{
		Job:            j.spec.ID,
		Namespace:      j.ns,
		App:            j.spec.App,
		Params:         j.spec.Params,
		BlockKey:       t.HashKey,
		Task:           t.ID,
		Attempt:        attempt,
		ReduceServers:  j.mk.Servers,
		ReduceBounds:   j.mk.Bounds,
		ReduceReplicas: j.mk.Replicas,
		SpillThreshold: j.spec.SpillThreshold,
		TTL:            j.spec.IntermediateTTL,
	}
}

// completeMapLocked accounts one successful map execution. Caller holds
// d.mu.
func (d *Driver) completeMapLocked(j *activeJob, resp RunMapResp) {
	if j.failed {
		return
	}
	for i, b := range resp.PartBytes {
		j.mk.PartBytes[i] += b
	}
	j.res.ShuffleBytes += sum(resp.PartBytes)
	if resp.CacheHit {
		j.res.CacheHits++
	} else {
		j.res.CacheMisses++
	}
	j.remaining--
	if j.remaining == 0 {
		j.done <- nil
	}
}

// runMapTask executes one assignment against its worker and accounts the
// completion.
func (d *Driver) runMapTask(j *activeJob, a scheduler.Assignment) {
	d.mu.Lock()
	attempt := j.attempts[a.Task.ID]
	d.mu.Unlock()
	// The queue wait is only known at dispatch; reconstruct it as a span
	// ending now so the timeline shows time-in-scheduler per task.
	if a.Waited > 0 {
		_, qs := d.tracer.StartSpanAt(j.ctx, "sched.queue_wait", d.tracer.NowNS()-int64(a.Waited))
		qs.Annotate("task", a.Task.ID)
		qs.End()
	}
	tctx, sp := d.tracer.StartSpan(j.ctx, "driver.map_task")
	sp.Annotate("task", a.Task.ID)
	sp.Annotate("node", string(a.Node))
	sp.Annotate("local", strconv.FormatBool(a.Local))
	var resp RunMapResp
	rpcTimer := d.reg.Histogram("mr.driver.map_rpc_ns").Start()
	err := d.call(tctx, a.Node, MethodRunMap, d.mapReq(j, a.Task, attempt), &resp)
	rpcTimer.Stop()
	switch {
	case err != nil:
		sp.Annotate("error", err.Error())
	case resp.CacheHit:
		sp.Annotate("cache", "hit")
	default:
		sp.Annotate("cache", "miss")
	}
	sp.End()

	maxAttempts := j.spec.MaxAttempts
	if maxAttempts <= 0 {
		maxAttempts = 3
	}

	d.mu.Lock()
	defer func() {
		d.mu.Unlock()
		d.signal()
	}()
	if err == nil {
		d.sched.Release(a.Node)
		d.completeMapLocked(j, resp)
		return
	}
	// Failure handling: unreachable workers leave the pool; application
	// errors are retried elsewhere up to the limit.
	if errors.Is(err, transport.ErrUnreachable) {
		d.sched.RemoveNode(a.Node)
	} else {
		d.sched.Release(a.Node)
	}
	if j.failed {
		return
	}
	j.attempts[a.Task.ID]++
	if j.attempts[a.Task.ID] >= maxAttempts {
		// The scheduler's retry budget is spent. Fall back to the paper's
		// recovery rule: hand the task straight to the replica set of its
		// input's hash key — the successor that takes over a faulty
		// server's range also holds the block's replica.
		d.reg.Counter("mr.driver.map_failovers").Inc()
		go d.failoverMapTask(j, j.taskByID[a.Task.ID], a.Node, err)
		return
	}
	d.reg.Counter("mr.driver.map_retries").Inc()
	d.sched.Submit(j.taskByID[a.Task.ID], d.since())
}

// failoverMapTask dispatches a map task directly (off the scheduler) to
// the members of its hash key's replica set, excluding the node that just
// failed it. The job fails only when every candidate has failed too.
func (d *Driver) failoverMapTask(j *activeJob, t scheduler.Task, exclude hashing.NodeID, lastErr error) {
	candidates, _ := d.ring().ReplicaSet(t.HashKey, 3)
	for _, cand := range candidates {
		if cand == exclude {
			continue
		}
		d.mu.Lock()
		if j.failed {
			d.mu.Unlock()
			return
		}
		attempt := j.attempts[t.ID]
		j.attempts[t.ID]++
		d.mu.Unlock()
		tctx, sp := d.tracer.StartSpan(j.ctx, "driver.map_task")
		sp.Annotate("task", t.ID)
		sp.Annotate("node", string(cand))
		sp.Annotate("failover", "true")
		sp.Annotate("attempt", strconv.Itoa(attempt))
		var resp RunMapResp
		rpcTimer := d.reg.Histogram("mr.driver.map_rpc_ns").Start()
		err := d.call(tctx, cand, MethodRunMap, d.mapReq(j, t, attempt), &resp)
		rpcTimer.Stop()
		if err != nil {
			sp.Annotate("error", err.Error())
		}
		sp.End()
		if err == nil {
			d.mu.Lock()
			d.completeMapLocked(j, resp)
			d.mu.Unlock()
			d.signal()
			return
		}
		lastErr = err
	}
	d.mu.Lock()
	defer func() {
		d.mu.Unlock()
		d.signal()
	}()
	if j.failed {
		return
	}
	j.failed = true
	j.done <- fmt.Errorf("mapreduce: task %s failed %d times (failover exhausted), last error: %w",
		t.ID, j.attempts[t.ID], lastErr)
}

// Close stops the dispatcher goroutine. Intended for process shutdown;
// jobs still in flight fail their map phases.
func (d *Driver) Close() {
	d.mu.Lock()
	d.closed = true
	jobs := make([]*activeJob, 0, len(d.jobs))
	for _, j := range d.jobs {
		jobs = append(jobs, j)
	}
	d.mu.Unlock()
	for _, j := range jobs {
		select {
		case j.done <- errors.New("mapreduce: driver closed"):
		default:
		}
	}
	d.signal()
}

// runReducePhase schedules one reduce task per non-empty partition,
// directly at the node storing the partition's segments (the paper's
// reduce placement: "the scheduler schedules reduce tasks where the
// intermediate results are stored"). Per-node concurrency is bounded by
// reduceSlots.
func (d *Driver) runReducePhase(ctx context.Context, spec JobSpec, ns string, mk marker, res *Result) error {
	type reduceTask struct {
		part    int
		owner   hashing.NodeID
		replica hashing.NodeID
	}
	var tasks []reduceTask
	for part, bytes := range mk.PartBytes {
		if bytes > 0 {
			t := reduceTask{part: part, owner: mk.Servers[part]}
			if part < len(mk.Replicas) {
				t.replica = mk.Replicas[part]
			}
			tasks = append(tasks, t)
		}
	}
	res.ReduceTasks = len(tasks)
	if len(tasks) == 0 {
		return nil
	}
	sem := make(map[hashing.NodeID]chan struct{})
	for _, t := range tasks {
		if _, ok := sem[t.owner]; !ok {
			sem[t.owner] = make(chan struct{}, d.reduceSlots)
		}
	}
	var (
		wg       sync.WaitGroup
		mu       sync.Mutex
		firstErr error
	)
	for _, t := range tasks {
		wg.Add(1)
		go func(t reduceTask) {
			defer wg.Done()
			sem[t.owner] <- struct{}{}
			defer func() { <-sem[t.owner] }()
			outFile := fmt.Sprintf("%s.out.%s", spec.ID, partitionName(t.part))
			req := RunReduceReq{
				Job:                spec.ID,
				Namespace:          ns,
				App:                spec.App,
				Params:             spec.Params,
				Partition:          t.part,
				SegmentOwner:       t.owner,
				OutputFile:         outFile,
				CacheIntermediates: spec.CacheIntermediates,
				CacheOutputs:       spec.CacheOutputs,
				TTL:                spec.IntermediateTTL,
				User:               spec.User,
			}
			if t.replica != "" {
				req.SegmentReplicas = []hashing.NodeID{t.owner, t.replica}
			}
			tctx, sp := d.tracer.StartSpan(ctx, "driver.reduce_task")
			sp.Annotate("partition", strconv.Itoa(t.part))
			sp.Annotate("node", string(t.owner))
			defer sp.End()
			var resp RunReduceResp
			rpcTimer := d.reg.Histogram("mr.driver.reduce_rpc_ns").Start()
			err := d.call(tctx, t.owner, MethodRunReduce, req, &resp)
			rpcTimer.Stop()
			if err != nil && errors.Is(err, transport.ErrUnreachable) {
				if t.replica != "" {
					// The owner died, but the job replicated its spills:
					// re-run the reduce at the replica, which unions the
					// surviving copies.
					d.reg.Counter("mr.driver.reduce_failovers").Inc()
					sp.Annotate("failover", string(t.replica))
					err = d.call(tctx, t.replica, MethodRunReduce, req, &resp)
				} else {
					// Segment owner died. Its successor holds no segments
					// (the paper leaves intermediates unreplicated by
					// default), so surface the failure: the caller restarts
					// the job.
					err = fmt.Errorf("mapreduce: reduce partition %d lost with node %s: %w",
						t.part, t.owner, err)
				}
			}
			mu.Lock()
			defer mu.Unlock()
			if err != nil {
				if firstErr == nil {
					firstErr = err
				}
				return
			}
			if resp.InputCached {
				res.CacheHits++
			}
			if resp.HasOutput {
				res.OutputFiles = append(res.OutputFiles, outFile)
			}
		}(t)
	}
	wg.Wait()
	// Completion order is scheduling-dependent; sort (lexicographic =
	// partition order under the fixed-width partition naming) so results
	// are deterministic run to run.
	sort.Strings(res.OutputFiles)
	return firstErr
}

// call invokes a worker method over the network (the driver node is
// itself a listening worker, so self-calls take the same path).
func (d *Driver) call(ctx context.Context, to hashing.NodeID, method string, req, resp any) error {
	body, err := transport.Encode(req)
	if err != nil {
		return err
	}
	out, err := d.net.Call(ctx, to, method, body)
	if err != nil {
		return err
	}
	return transport.Decode(out, resp)
}

// Collect reads and decodes every output file of a completed job,
// returning the merged key-value pairs (sorted within each partition;
// partitions concatenated in partition order).
func (d *Driver) Collect(ctx context.Context, res Result, user string) ([]KV, error) {
	var out []KV
	for _, f := range res.OutputFiles {
		data, err := d.fs.ReadFile(ctx, f, user)
		if err != nil {
			return nil, fmt.Errorf("mapreduce: collect %q: %w", f, err)
		}
		kvs, err := DecodeKVs(data)
		if err != nil {
			return nil, fmt.Errorf("mapreduce: collect %q: %w", f, err)
		}
		out = append(out, kvs...)
	}
	return out, nil
}

// DropIntermediates removes a namespace's segments cluster-wide.
func (d *Driver) DropIntermediates(ctx context.Context, spec JobSpec) {
	d.fs.DropJob(ctx, spec.Namespace())
}

func sum(xs []int64) int64 {
	var total int64
	for _, x := range xs {
		total += x
	}
	return total
}
