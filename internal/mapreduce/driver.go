package mapreduce

import (
	"context"
	"errors"
	"fmt"
	"sort"
	"strconv"
	"sync"
	"time"

	"eclipsemr/internal/dhtfs"
	"eclipsemr/internal/events"
	"eclipsemr/internal/hashing"
	"eclipsemr/internal/metrics"
	"eclipsemr/internal/scheduler"
	"eclipsemr/internal/trace"
	"eclipsemr/internal/transport"
)

// Driver orchestrates MapReduce jobs from the job-scheduler node: it
// resolves input metadata through the DHT file system, feeds map tasks to
// the pluggable scheduling policy, dispatches tasks to workers over the
// transport, schedules reduce tasks at the nodes storing the intermediate
// results, and assembles results.
//
// A single Driver runs any number of jobs concurrently (the paper's
// Figure 8 batches seven): one dispatcher goroutine owns the scheduling
// policy and routes each assignment to the job that submitted the task,
// so concurrent Run calls share worker slots under the policy.
//
// Jobs self-heal: progress is journaled through the DHT file system so an
// interrupted job can be adopted with Resume, a reduce partition lost
// with its owner is rebuilt by re-executing the contributing maps with a
// partition filter, and straggling map tasks are hedged speculatively
// when the spec enables it.
type Driver struct {
	self  hashing.NodeID
	net   transport.Network
	fs    *dhtfs.Service
	sched scheduler.Scheduler
	ring  func() hashing.Ring
	// reduceSlots bounds concurrent reduce tasks per node.
	reduceSlots int
	start       time.Time
	reg         *metrics.Registry
	tracer      *trace.Tracer
	events      *events.Log
	// onEvent, when set, observes job lifecycle points (see
	// SetEventListener).
	onEvent func(job, event string)
	// flight, when set, is invoked after a job fails or survives a
	// recovery round (see SetFlightRecorder).
	flight func(job, reason string)

	mu   sync.Mutex
	jobs map[string]*activeJob
	// wake nudges the dispatcher; buffered so signalling never blocks.
	wake    chan struct{}
	started bool
	closed  bool

	// Speculative-execution state: tracked in-flight map executions and
	// the lazily started straggler scanner (speculate.go).
	specMu   sync.Mutex
	inflight map[string]*inflightTask
	specOn   bool
	hedgeSem chan struct{}
}

// activeJob is the dispatcher-side state of one running map phase.
type activeJob struct {
	// ctx carries the job's root span; dispatcher goroutines parent their
	// task spans under it.
	//lint:ignore ctxflow activeJob IS the per-call state of one RunContext invocation — the field scopes the job's ctx to the job, not beyond it
	ctx      context.Context
	spec     JobSpec
	ns       string
	mk       *marker
	res      *Result
	attempts map[string]int
	// completed guards per-task completion accounting: with speculative
	// hedges, retries and failovers racing, only the first finisher
	// counts.
	completed map[string]bool
	// only, when non-empty, restricts the tasks' shuffle output to the
	// listed reduce partitions (partition recovery re-executions).
	only []int
	// jw, when non-nil, journals task completions (nil for recovery
	// re-executions, whose tasks are already journaled as done).
	jw        *journalWriter
	taskByID  map[string]scheduler.Task
	remaining int
	done      chan error // buffered(1); receives the phase outcome
	failed    bool
}

// NewDriver builds a Driver. The scheduler must already know the worker
// nodes and their map slots; reduceSlots bounds reducer concurrency per
// node (the paper configures 8 map and 8 reduce slots per server).
func NewDriver(self hashing.NodeID, net transport.Network, fs *dhtfs.Service,
	sched scheduler.Scheduler, ring func() hashing.Ring, reduceSlots int) (*Driver, error) {
	if fs == nil || sched == nil || ring == nil {
		return nil, errors.New("mapreduce: driver requires fs, scheduler and ring")
	}
	if reduceSlots <= 0 {
		reduceSlots = 8
	}
	d := &Driver{
		self:        self,
		net:         net,
		fs:          fs,
		sched:       sched,
		ring:        ring,
		reduceSlots: reduceSlots,
		start:       time.Now(),
		reg:         metrics.NewRegistry(),
		jobs:        make(map[string]*activeJob),
		wake:        make(chan struct{}, 1),
		inflight:    make(map[string]*inflightTask),
		hedgeSem:    make(chan struct{}, speculationMaxHedges),
	}
	// Pre-created so every metrics snapshot shows the retry, failover,
	// recovery and speculation counters, even at zero.
	for _, name := range []string{
		"mr.driver.map_retries",
		"mr.driver.map_failovers",
		"mr.driver.reduce_failovers",
		"mr.driver.partition_recoveries",
		"mr.driver.partition_reduces",
		"mr.driver.parts_skipped_resume",
		"mr.driver.journal_resumes",
		"mr.driver.journal_errors",
		"mr.driver.speculative_launched",
		"mr.driver.speculative_won",
		"mr.driver.speculative_wasted",
	} {
		d.reg.Counter(name)
	}
	return d, nil
}

// Metrics exposes the driver's retry, failover, recovery and speculation
// counters.
func (d *Driver) Metrics() *metrics.Registry { return d.reg }

// SetTracer wires the node's tracer into the driver. Call before
// submitting jobs; a nil tracer (the default) disables driver spans.
func (d *Driver) SetTracer(tr *trace.Tracer) { d.tracer = tr }

// SetEvents wires the manager node's structured event log into the
// driver so job, task, speculation and journal transitions land in the
// flight recorder (nil, the default, disables emission). Call before
// submitting jobs.
func (d *Driver) SetEvents(l *events.Log) { d.events = l }

// SetFlightRecorder registers the failure-capture hook: fn runs after a
// job fails ("job_failed") or survives a recovery round ("recovery"),
// with no driver locks held. Deployments snapshot a debug bundle here.
// Call before submitting jobs.
func (d *Driver) SetFlightRecorder(fn func(job, reason string)) { d.flight = fn }

// recordFlight invokes the failure-capture hook, if any.
func (d *Driver) recordFlight(job, reason string) {
	if d.flight != nil {
		d.flight(job, reason)
	}
}

// SetEventListener registers a callback observing job lifecycle points:
// "map_task_done" (per completed map task), "map_done" (map phase
// complete), "partition_done" (per completed reduce partition) and
// "job_done". Intended for tests and adoption hooks. The callback may
// run with driver-internal locks held and must not call back into the
// Driver (canceling a context is fine). Call before submitting jobs.
func (d *Driver) SetEventListener(fn func(job, event string)) { d.onEvent = fn }

// emitEvent invokes the lifecycle listener, if any.
func (d *Driver) emitEvent(job, event string) {
	if d.onEvent != nil {
		d.onEvent(job, event)
	}
}

// since returns the driver's monotonic time, the clock fed to the
// scheduling policy.
func (d *Driver) since() time.Duration { return time.Since(d.start) }

// marker is the completion record persisted to the DHT file system when a
// job with a reuse tag finishes its map phase; a later job with the same
// tag reads it instead of re-running the maps.
type marker struct {
	Servers   []hashing.NodeID
	Bounds    []hashing.Key
	PartBytes []int64
	// Replicas, when the job replicates intermediates, names each
	// partition owner's ring successor at job start; recording it here
	// keeps the spill-target table stable even if the ring changes
	// mid-job.
	Replicas []hashing.NodeID
	// Expires invalidates the marker (and with it reuse of the stored
	// intermediates) once the job's IntermediateTTL lapses; zero means no
	// TTL.
	Expires time.Time
}

func markerFile(namespace string) string { return "_mr/" + namespace + "/done" }

// runState threads one run's cross-phase state: the partition table, the
// journal writer, and what partition recovery needs to re-execute maps.
type runState struct {
	spec JobSpec
	ns   string
	mk   *marker
	res  *Result
	jw   *journalWriter // nil with DisableJournal
	// attempts records the last attempt used per map task this run;
	// recovery re-executions bump strictly past it.
	attempts map[string]int
	// attemptBase is this driver generation's first attempt number
	// (resumed runs start a fresh stride above every prior generation).
	attemptBase int
	// reduceEpoch keys the workers' merged-intermediate cache entries for
	// this run. It starts at attemptBase (unique per generation) and is
	// bumped on every partition-recovery round, so merged blobs cached
	// before superseding attempts were pushed are never served again.
	reduceEpoch int
	// mapTasks lists every contributing map task, for partition-recovery
	// re-execution (nil when the map phase was reused via tag and the
	// intermediates are shared).
	mapTasks []scheduler.Task
	// partsDone maps finished partitions to their recorded output file
	// ("" = no output).
	partsDone map[int]string
}

// Run executes one job to completion. Run may be called concurrently for
// different jobs; job IDs must be unique among in-flight jobs.
func (d *Driver) Run(spec JobSpec) (Result, error) {
	//lint:ignore ctxflow Run is the ctx-less convenience entry point; RunContext is the threaded form
	return d.RunContext(context.Background(), spec)
}

// RunContext is Run with caller-controlled cancellation: canceling ctx
// aborts the job between task dispatches (in-flight worker RPCs run to
// completion and are journaled, so a later Resume skips them).
func (d *Driver) RunContext(ctx context.Context, spec JobSpec) (Result, error) {
	if err := spec.validate(); err != nil {
		return Result{}, err
	}
	return d.run(ctx, spec, nil)
}

// run executes a job, fresh (prior == nil) or adopted from a journal.
func (d *Driver) run(ctx context.Context, spec JobSpec, prior *journal) (_ Result, err error) {
	began := time.Now()
	ns := spec.Namespace()
	res := Result{Job: spec.ID, Resumed: prior != nil}

	// The job is the trace: its ID is the trace ID, and this root span
	// covers the whole run. Every task span on every node descends from it.
	ctx, root := d.tracer.StartRoot(ctx, spec.ID, "driver.job")
	root.Annotate("app", spec.App)
	defer root.End()

	d.events.Emit(events.KindJob, "job.submit", events.F{Job: spec.ID, Detail: spec.App})
	// The terminal job event (and the failure capture) covers every exit
	// path, including the early journaled-done return below.
	defer func() {
		if err != nil {
			d.events.Emit(events.KindJob, "job.failed", events.F{Job: spec.ID, Detail: err.Error()})
			d.recordFlight(spec.ID, "job_failed")
		} else {
			d.events.Emit(events.KindJob, "job.done", events.F{Job: spec.ID})
		}
	}()

	if prior != nil {
		if prior.Phase == phaseDone {
			// The job finished before the previous driver died; hand back
			// the journaled result instead of re-running anything.
			root.Annotate("resume", phaseDone)
			for _, f := range prior.PartsDone {
				if f != "" {
					res.OutputFiles = append(res.OutputFiles, f)
				}
			}
			sort.Strings(res.OutputFiles)
			res.MapsSkipped = true
			res.Elapsed = time.Since(began)
			return res, nil
		}
		root.Annotate("resume", prior.Phase)
		d.reg.Counter("mr.driver.journal_resumes").Inc()
		d.events.Emit(events.KindJournal, "journal.resume", events.F{Job: spec.ID, Detail: prior.Phase})
	}

	// Reuse path: a completed map phase under this namespace lets the job
	// skip straight to reducing (§II-C). Resumed runs already carry their
	// partition table in the journal.
	var mk marker
	reused := false
	if prior != nil {
		mk = copyMarker(&prior.Mk)
	} else if spec.ReuseTag != "" {
		if data, err := d.fs.ReadFile(ctx, markerFile(ns), spec.User); err == nil {
			if err := transport.Decode(data, &mk); err != nil {
				return Result{}, fmt.Errorf("mapreduce: corrupt reuse marker for %q: %w", ns, err)
			}
			// The TTL on stored intermediate results invalidates reuse.
			if mk.Expires.IsZero() || d.fs.Now().Before(mk.Expires) {
				reused = true
			} else {
				mk = marker{}
			}
		}
	}
	if prior == nil && !reused {
		table, err := d.ring().RangeTable()
		if err != nil {
			return Result{}, err
		}
		mk.Servers = table.Servers()
		mk.Bounds = table.Bounds()
		mk.PartBytes = make([]int64, table.Len())
		if spec.ReplicateIntermediates {
			mk.Replicas = make([]hashing.NodeID, len(mk.Servers))
			ring := d.ring()
			for i, owner := range mk.Servers {
				if succ, err := ring.Successor(owner); err == nil && succ != owner {
					mk.Replicas[i] = succ
				}
			}
		}
	}

	st := &runState{
		spec:      spec,
		ns:        ns,
		mk:        &mk,
		res:       &res,
		attempts:  make(map[string]int),
		partsDone: make(map[int]string),
	}
	if prior != nil {
		for part, out := range prior.PartsDone {
			st.partsDone[part] = out
		}
		st.attemptBase = (prior.Generation + 1) * attemptStride
	}
	st.reduceEpoch = st.attemptBase
	if !spec.DisableJournal {
		st.jw = d.newJournalWriter(ctx, spec, &mk, prior)
		// The final flush on every exit path leaves even an aborted run
		// adoptable at its latest progress.
		defer st.jw.close(ctx)
	}

	runMaps := !reused && (prior == nil || prior.Phase == phaseMap)
	if !reused {
		// Partition recovery re-executes the contributing map tasks, so
		// they are expanded even when the journal says the map phase is
		// done. (A tag-reused map phase shares its intermediates with
		// other jobs and is not re-executable here.)
		tasks, err := d.mapTasks(ctx, spec)
		if err != nil {
			return Result{}, err
		}
		st.mapTasks = tasks
	}

	// A journal adoption may find partition owners that died with the
	// previous driver (most commonly the old manager itself). They must be
	// re-homed before any map runs, or the resumed maps would push their
	// spills at dead nodes and fail the phase.
	var deadParts []int
	if prior != nil {
		var err error
		deadParts, err = d.rehomeDeadPartitions(ctx, st)
		if err != nil {
			return Result{}, err
		}
	}

	if runMaps {
		todo := st.mapTasks
		if prior != nil {
			todo = nil
			for _, t := range st.mapTasks {
				if !prior.MapsDone[t.ID] {
					todo = append(todo, t)
				}
			}
		}
		for _, t := range todo {
			st.attempts[t.ID] = st.attemptBase
		}
		res.MapTasks = len(todo)
		if len(todo) > 0 {
			d.events.Emit(events.KindJob, "job.phase.map", events.F{
				Job: spec.ID, Detail: fmt.Sprintf("tasks=%d", len(todo)),
			})
			j := &activeJob{
				spec:     spec,
				ns:       ns,
				mk:       &mk,
				res:      &res,
				attempts: st.attempts,
				jw:       st.jw,
			}
			if err := d.runMapPhase(ctx, j, todo); err != nil {
				return Result{}, err
			}
		}
		if spec.ReuseTag != "" {
			if spec.IntermediateTTL > 0 {
				mk.Expires = d.fs.Now().Add(spec.IntermediateTTL)
			}
			data, err := transport.Encode(mk)
			if err != nil {
				return Result{}, err
			}
			if _, err := d.fs.Upload(ctx, markerFile(ns), spec.User, dhtfs.PermPublic, data, 1<<20); err != nil {
				return Result{}, fmt.Errorf("mapreduce: store reuse marker: %w", err)
			}
		}
		d.emitEvent(spec.ID, "map_done")
	} else {
		res.MapsSkipped = true
		if reused {
			root.Annotate("maps", "reused")
		} else {
			root.Annotate("maps", "journaled")
		}
	}
	// Journaled-done maps never re-ran, so their spills for any re-homed
	// partition died with the old owner: re-shuffle exactly those
	// partitions from exactly those maps before reducing.
	if len(deadParts) > 0 {
		if err := d.reshuffleLostPartitions(ctx, st, prior, deadParts); err != nil {
			return Result{}, err
		}
	}
	if st.jw != nil && (prior == nil || prior.Phase == phaseMap) {
		st.jw.setPhase(phaseReduce, &mk)
	}

	d.events.Emit(events.KindJob, "job.phase.reduce", events.F{Job: spec.ID})
	if err := d.runReducePhase(ctx, st); err != nil {
		return Result{}, err
	}
	if st.jw != nil {
		st.jw.setPhase(phaseDone, &mk)
	}
	d.emitEvent(spec.ID, "job_done")
	res.Elapsed = time.Since(began)
	d.reg.Histogram("mr.driver.job_ns").ObserveDuration(res.Elapsed)
	return res, nil
}

// mapTasks expands the job's input files into one task per block.
func (d *Driver) mapTasks(ctx context.Context, spec JobSpec) ([]scheduler.Task, error) {
	var tasks []scheduler.Task
	for _, input := range spec.Inputs {
		meta, err := d.fs.Lookup(ctx, input, spec.User)
		if err != nil {
			return nil, fmt.Errorf("mapreduce: input %q: %w", input, err)
		}
		for i, bk := range meta.BlockKeys {
			tasks = append(tasks, scheduler.Task{
				Job:     spec.ID,
				ID:      fmt.Sprintf("%s/m/%s/%d", spec.ID, input, i),
				HashKey: bk,
			})
		}
	}
	return tasks, nil
}

// runMapPhase registers the job with the dispatcher, submits its tasks,
// and waits for the phase to finish.
func (d *Driver) runMapPhase(ctx context.Context, j *activeJob, tasks []scheduler.Task) error {
	j.ctx = ctx
	j.taskByID = make(map[string]scheduler.Task, len(tasks))
	j.completed = make(map[string]bool, len(tasks))
	j.remaining = len(tasks)
	j.done = make(chan error, 1)
	if j.attempts == nil {
		j.attempts = make(map[string]int, len(tasks))
	}
	for _, t := range tasks {
		j.taskByID[t.ID] = t
	}

	d.mu.Lock()
	if d.closed {
		d.mu.Unlock()
		return errors.New("mapreduce: driver closed")
	}
	if _, dup := d.jobs[j.spec.ID]; dup {
		d.mu.Unlock()
		return fmt.Errorf("mapreduce: job %s is already running", j.spec.ID)
	}
	d.jobs[j.spec.ID] = j
	if !d.started {
		d.started = true
		go d.dispatchLoop()
	}
	d.mu.Unlock()
	d.maybeStartSpeculator(j.spec)

	// Cancellation aborts the phase between dispatches; in-flight worker
	// RPCs run to completion (and are journaled), so a later Resume skips
	// exactly what finished.
	if ctx.Done() != nil {
		stopWatch := make(chan struct{})
		defer close(stopWatch)
		go func() {
			select {
			case <-ctx.Done():
				d.failJob(j, ctx.Err())
			case <-stopWatch:
			}
		}()
	}

	now := d.since()
	for _, t := range tasks {
		d.events.Emit(events.KindSched, "sched.admit", events.F{Job: t.Job, Task: t.ID})
		d.sched.Submit(t, now)
	}
	d.signal()
	err := <-j.done

	d.mu.Lock()
	delete(d.jobs, j.spec.ID)
	d.mu.Unlock()
	return err
}

// failJob marks a job failed and delivers the outcome once.
func (d *Driver) failJob(j *activeJob, err error) {
	d.mu.Lock()
	defer d.mu.Unlock()
	if j.failed {
		return
	}
	j.failed = true
	j.done <- err
}

// signal nudges the dispatcher without blocking.
func (d *Driver) signal() {
	select {
	case d.wake <- struct{}{}:
	default:
	}
}

// dispatchLoop is the single goroutine that pumps the scheduling policy:
// it pulls ready assignments, routes each to its job, and wakes for
// delay-scheduler deadlines. It runs for the driver's lifetime.
func (d *Driver) dispatchLoop() {
	for {
		d.mu.Lock()
		closed := d.closed
		d.mu.Unlock()
		if closed {
			return
		}

		for _, a := range d.sched.Dispatch(d.since()) {
			d.mu.Lock()
			j := d.jobs[a.Task.Job]
			d.mu.Unlock()
			if j == nil {
				// The job failed and deregistered while this task sat in
				// the queue; give the slot back.
				d.sched.Release(a.Node)
				continue
			}
			go d.runMapTask(j, a)
		}

		var timerC <-chan time.Time
		var timer *time.Timer
		if dl, ok := d.sched.NextDeadline(); ok {
			if wait := dl - d.since(); wait > 0 {
				timer = time.NewTimer(wait)
				timerC = timer.C
			} else {
				// Deadline already passed: take another dispatch pass.
				continue
			}
		}
		select {
		case <-d.wake:
		case <-timerC:
		}
		if timer != nil {
			timer.Stop()
		}
	}
}

// mapReq builds the RunMapReq for one execution attempt of a map task.
func (d *Driver) mapReq(j *activeJob, t scheduler.Task, attempt int) RunMapReq {
	return RunMapReq{
		Job:            j.spec.ID,
		Namespace:      j.ns,
		App:            j.spec.App,
		Params:         j.spec.Params,
		BlockKey:       t.HashKey,
		Task:           t.ID,
		Attempt:        attempt,
		ReduceServers:  j.mk.Servers,
		ReduceBounds:   j.mk.Bounds,
		ReduceReplicas: j.mk.Replicas,
		OnlyPartitions: j.only,
		SpillThreshold: j.spec.SpillThreshold,
		TTL:            j.spec.IntermediateTTL,
	}
}

// completeMapLocked accounts one successful map execution; duplicate
// finishers (a speculative hedge losing to the original, a stale retry)
// are ignored. Caller holds d.mu.
func (d *Driver) completeMapLocked(j *activeJob, taskID string, resp RunMapResp) {
	if j.failed || j.completed[taskID] {
		return
	}
	j.completed[taskID] = true
	d.events.Emit(events.KindTask, "map.finish", events.F{
		Job: j.spec.ID, Task: taskID, Attempt: j.attempts[taskID],
	})
	// The race is decided: abort whichever duplicate attempt is still in
	// flight (the hedge when the original won, and vice versa) so it
	// stops consuming the straggling node instead of running to the end.
	d.cancelInflight(j.spec.ID, taskID)
	for i, b := range resp.PartBytes {
		j.mk.PartBytes[i] += b
	}
	j.res.ShuffleBytes += sum(resp.PartBytes)
	if resp.CacheHit {
		j.res.CacheHits++
	} else {
		j.res.CacheMisses++
	}
	if j.jw != nil {
		attempt := j.attempts[taskID]
		partBytes := append([]int64(nil), j.mk.PartBytes...)
		j.jw.update(func(jr *journal) {
			jr.MapsDone[taskID] = true
			if jr.Attempts[taskID] < attempt {
				jr.Attempts[taskID] = attempt
			}
			jr.Mk.PartBytes = partBytes
		})
	}
	d.emitEvent(j.spec.ID, "map_task_done")
	j.remaining--
	if j.remaining == 0 {
		j.done <- nil
	}
}

// runMapTask executes one assignment against its worker and accounts the
// completion.
func (d *Driver) runMapTask(j *activeJob, a scheduler.Assignment) {
	d.mu.Lock()
	if j.failed || j.completed[a.Task.ID] {
		// A hedge or an earlier attempt finished this task while the
		// assignment sat in the queue; just return the slot.
		d.sched.Release(a.Node)
		d.mu.Unlock()
		d.signal()
		return
	}
	attempt := j.attempts[a.Task.ID]
	d.mu.Unlock()
	// The queue wait is only known at dispatch; reconstruct it as a span
	// ending now so the timeline shows time-in-scheduler per task.
	if a.Waited > 0 {
		_, qs := d.tracer.StartSpanAt(j.ctx, "sched.queue_wait", d.tracer.NowNS()-int64(a.Waited))
		qs.Annotate("task", a.Task.ID)
		qs.End()
	}
	tctx, sp := d.tracer.StartSpan(j.ctx, "driver.map_task")
	sp.Annotate("task", a.Task.ID)
	sp.Annotate("node", string(a.Node))
	sp.Annotate("local", strconv.FormatBool(a.Local))
	d.events.Emit(events.KindTask, "map.dispatch", events.F{
		Job: j.spec.ID, Task: a.Task.ID, Attempt: attempt, Detail: string(a.Node),
	})
	// The attempt runs under its own cancellable context, registered with
	// the straggler scanner: if a speculative hedge wins the task, it
	// aborts this RPC through cancelInflight instead of letting it run to
	// completion against the straggling node.
	actx, cancel := context.WithCancel(tctx)
	defer cancel()
	d.trackInflight(j, a.Task, attempt, a.Node, cancel)
	var resp RunMapResp
	rpcTimer := d.reg.Histogram("mr.driver.map_rpc_ns").Start()
	err := d.call(actx, a.Node, MethodRunMap, d.mapReq(j, a.Task, attempt), &resp)
	rpcTimer.Stop()
	d.untrackInflight(a.Task.Job, a.Task.ID)
	switch {
	case err != nil:
		sp.Annotate("error", err.Error())
	case resp.CacheHit:
		sp.Annotate("cache", "hit")
	default:
		sp.Annotate("cache", "miss")
	}
	sp.End()

	maxAttempts := j.spec.maxAttempts()

	d.mu.Lock()
	defer func() {
		d.mu.Unlock()
		d.signal()
	}()
	if err == nil {
		d.sched.Release(a.Node)
		d.completeMapLocked(j, a.Task.ID, resp)
		return
	}
	// Failure handling: unreachable workers leave the pool; application
	// errors are retried elsewhere up to the limit.
	if errors.Is(err, transport.ErrUnreachable) {
		d.sched.RemoveNode(a.Node)
	} else {
		d.sched.Release(a.Node)
	}
	if j.failed || j.completed[a.Task.ID] {
		// A speculative hedge already finished the task; the straggler's
		// failure needs no retry.
		return
	}
	j.attempts[a.Task.ID]++
	if j.attempts[a.Task.ID] >= st1Base(attempt)+maxAttempts {
		// The scheduler's retry budget is spent. Fall back to the paper's
		// recovery rule: hand the task straight to the replica set of its
		// input's hash key — the successor that takes over a faulty
		// server's range also holds the block's replica.
		d.reg.Counter("mr.driver.map_failovers").Inc()
		d.events.Emit(events.KindTask, "map.giveup", events.F{
			Job: j.spec.ID, Task: a.Task.ID, Attempt: attempt, Detail: err.Error(),
		})
		go d.failoverMapTask(j, j.taskByID[a.Task.ID], a.Node, err)
		return
	}
	d.reg.Counter("mr.driver.map_retries").Inc()
	d.events.Emit(events.KindTask, "map.retry", events.F{
		Job: j.spec.ID, Task: a.Task.ID, Attempt: attempt, Detail: err.Error(),
	})
	d.sched.Submit(j.taskByID[a.Task.ID], d.since())
}

// st1Base floors an attempt number to its generation's stride base, so
// the per-generation retry budget stays maxAttempts regardless of how
// many earlier generations ran.
func st1Base(attempt int) int { return attempt - attempt%attemptStride }

// failoverMapTask dispatches a map task directly (off the scheduler) to
// the members of its hash key's replica set, excluding the node that just
// failed it. The job fails only when every candidate has failed too.
func (d *Driver) failoverMapTask(j *activeJob, t scheduler.Task, exclude hashing.NodeID, lastErr error) {
	candidates, _ := d.ring().ReplicaSet(t.HashKey, 3)
	for _, cand := range candidates {
		if cand == exclude {
			continue
		}
		d.mu.Lock()
		if j.failed || j.completed[t.ID] {
			d.mu.Unlock()
			return
		}
		attempt := j.attempts[t.ID]
		j.attempts[t.ID]++
		d.mu.Unlock()
		tctx, sp := d.tracer.StartSpan(j.ctx, "driver.map_task")
		sp.Annotate("task", t.ID)
		sp.Annotate("node", string(cand))
		sp.Annotate("failover", "true")
		sp.Annotate("attempt", strconv.Itoa(attempt))
		d.events.Emit(events.KindTask, "map.failover", events.F{
			Job: j.spec.ID, Task: t.ID, Attempt: attempt, Detail: string(cand),
		})
		var resp RunMapResp
		rpcTimer := d.reg.Histogram("mr.driver.map_rpc_ns").Start()
		err := d.call(tctx, cand, MethodRunMap, d.mapReq(j, t, attempt), &resp)
		rpcTimer.Stop()
		if err != nil {
			sp.Annotate("error", err.Error())
		}
		sp.End()
		if err == nil {
			d.mu.Lock()
			d.completeMapLocked(j, t.ID, resp)
			d.mu.Unlock()
			d.signal()
			return
		}
		lastErr = err
	}
	d.failJob(j, fmt.Errorf("mapreduce: task %s failed (failover exhausted), last error: %w",
		t.ID, lastErr))
	d.signal()
}

// Close stops the dispatcher goroutine. Intended for process shutdown;
// jobs still in flight fail their map phases.
func (d *Driver) Close() {
	d.mu.Lock()
	d.closed = true
	jobs := make([]*activeJob, 0, len(d.jobs))
	for _, j := range d.jobs {
		jobs = append(jobs, j)
	}
	d.mu.Unlock()
	for _, j := range jobs {
		select {
		case j.done <- errors.New("mapreduce: driver closed"):
		default:
		}
	}
	d.signal()
}

// reduceTask describes one partition's reduce execution target.
type reduceTask struct {
	part    int
	owner   hashing.NodeID
	replica hashing.NodeID
}

// errPartitionLost marks a reduce partition whose segment holders are all
// unreachable — the trigger for lost-partition recovery.
type errPartitionLost struct {
	part  int
	owner hashing.NodeID
	cause error
}

func (e errPartitionLost) Error() string {
	return fmt.Sprintf("mapreduce: reduce partition %d lost with node %s: %v", e.part, e.owner, e.cause)
}

func (e errPartitionLost) Unwrap() error { return e.cause }

// lostPart pairs a lost partition with its terminal error.
type lostPart struct {
	t   reduceTask
	err error
}

// runReducePhase schedules one reduce task per non-empty partition,
// directly at the node storing the partition's segments (the paper's
// reduce placement: "the scheduler schedules reduce tasks where the
// intermediate results are stored"). Partitions the journal records as
// done are skipped; partitions whose segment holders all died are
// recovered by re-executing the contributing maps and re-homing the
// partition on a surviving node. Per-node concurrency is bounded by
// reduceSlots.
func (d *Driver) runReducePhase(ctx context.Context, st *runState) error {
	var tasks []reduceTask
	skipped := 0
	for part, bytes := range st.mk.PartBytes {
		if bytes <= 0 {
			continue
		}
		if out, ok := st.partsDone[part]; ok {
			// Completed under a previous driver generation: keep its
			// output, skip the re-reduce.
			if out != "" {
				st.res.OutputFiles = append(st.res.OutputFiles, out)
			}
			skipped++
			continue
		}
		t := reduceTask{part: part, owner: st.mk.Servers[part]}
		if part < len(st.mk.Replicas) {
			t.replica = st.mk.Replicas[part]
		}
		tasks = append(tasks, t)
	}
	if skipped > 0 {
		d.reg.Counter("mr.driver.parts_skipped_resume").Add(int64(skipped))
	}
	st.res.ReduceTasks = len(tasks)
	if len(tasks) == 0 {
		sort.Strings(st.res.OutputFiles)
		return nil
	}
	lost, err := d.reduceWave(ctx, st, tasks)
	if err != nil {
		return err
	}
	for round := 0; len(lost) > 0; round++ {
		if st.spec.DisableRecovery {
			return lost[0].err
		}
		if round >= st.spec.maxAttempts() {
			return fmt.Errorf("mapreduce: partition recovery exhausted after %d rounds: %w", round, lost[0].err)
		}
		retry, err := d.recoverPartitions(ctx, st, lost)
		if err != nil {
			return err
		}
		lost, err = d.reduceWave(ctx, st, retry)
		if err != nil {
			return err
		}
	}
	// Completion order is scheduling-dependent; sort (lexicographic =
	// partition order under the fixed-width partition naming) so results
	// are deterministic run to run.
	sort.Strings(st.res.OutputFiles)
	return nil
}

// reduceWave runs one wave of reduce tasks, journaling each completed
// partition, and returns the partitions whose segment holders were all
// unreachable (sorted by partition for deterministic recovery order).
func (d *Driver) reduceWave(ctx context.Context, st *runState, tasks []reduceTask) ([]lostPart, error) {
	sem := make(map[hashing.NodeID]chan struct{})
	for _, t := range tasks {
		if _, ok := sem[t.owner]; !ok {
			sem[t.owner] = make(chan struct{}, d.reduceSlots)
		}
	}
	var (
		wg       sync.WaitGroup
		mu       sync.Mutex
		firstErr error
		lost     []lostPart
	)
	for _, t := range tasks {
		wg.Add(1)
		go func(t reduceTask) {
			defer wg.Done()
			if err := ctx.Err(); err != nil {
				mu.Lock()
				if firstErr == nil {
					firstErr = err
				}
				mu.Unlock()
				return
			}
			sem[t.owner] <- struct{}{}
			defer func() { <-sem[t.owner] }()
			resp, outFile, err := d.runReduceTask(ctx, st, t)
			if err != nil {
				var lp errPartitionLost
				mu.Lock()
				defer mu.Unlock()
				if errors.As(err, &lp) {
					lost = append(lost, lostPart{t: t, err: err})
				} else if firstErr == nil {
					firstErr = err
				}
				return
			}
			record := ""
			if resp.HasOutput {
				record = outFile
			}
			if st.jw != nil {
				// Synchronous: a resumed driver must never re-reduce a
				// completed partition, so completion outlives this driver
				// before the job proceeds.
				st.jw.updateSync(func(j *journal) { j.PartsDone[t.part] = record })
			}
			mu.Lock()
			st.partsDone[t.part] = record
			if resp.HasOutput {
				st.res.OutputFiles = append(st.res.OutputFiles, outFile)
			}
			if resp.InputCached {
				st.res.CacheHits++
			}
			mu.Unlock()
			d.emitEvent(st.spec.ID, "partition_done")
		}(t)
	}
	wg.Wait()
	if firstErr != nil {
		return nil, firstErr
	}
	sort.Slice(lost, func(i, j int) bool { return lost[i].t.part < lost[j].t.part })
	return lost, nil
}

// runReduceTask executes one partition's reduce, walking the candidate
// executors (satellite of the self-healing layer: the full surviving
// replica set, not just the single recorded replica) before declaring
// the partition lost.
func (d *Driver) runReduceTask(ctx context.Context, st *runState, t reduceTask) (RunReduceResp, string, error) {
	outFile := fmt.Sprintf("%s.out.%s", st.spec.ID, partitionName(t.part))
	req := RunReduceReq{
		Job:                st.spec.ID,
		Namespace:          st.ns,
		App:                st.spec.App,
		Params:             st.spec.Params,
		Partition:          t.part,
		SegmentOwner:       t.owner,
		OutputFile:         outFile,
		CacheIntermediates: st.spec.CacheIntermediates,
		CacheOutputs:       st.spec.CacheOutputs,
		Epoch:              st.reduceEpoch,
		TTL:                st.spec.IntermediateTTL,
		User:               st.spec.User,
	}
	if t.replica != "" {
		req.SegmentReplicas = []hashing.NodeID{t.owner, t.replica}
	}
	tctx, sp := d.tracer.StartSpan(ctx, "driver.reduce_task")
	sp.Annotate("partition", strconv.Itoa(t.part))
	sp.Annotate("node", string(t.owner))
	defer sp.End()
	var lastErr error
	for i, cand := range d.reduceCandidates(st, t) {
		if i > 0 {
			// Walking past the recorded owner is a failover, whether to
			// the recorded replica or further around the ring.
			d.reg.Counter("mr.driver.reduce_failovers").Inc()
			sp.Annotate("failover", string(cand))
			d.events.Emit(events.KindTask, "reduce.failover", events.F{
				Job: st.spec.ID, Task: partitionName(t.part), Detail: string(cand),
			})
		} else {
			d.events.Emit(events.KindTask, "reduce.dispatch", events.F{
				Job: st.spec.ID, Task: partitionName(t.part), Detail: string(cand),
			})
		}
		var resp RunReduceResp
		rpcTimer := d.reg.Histogram("mr.driver.reduce_rpc_ns").Start()
		err := d.call(tctx, cand, MethodRunReduce, req, &resp)
		rpcTimer.Stop()
		if err == nil {
			d.reg.Counter("mr.driver.partition_reduces").Inc()
			d.events.Emit(events.KindTask, "reduce.finish", events.F{
				Job: st.spec.ID, Task: partitionName(t.part), Detail: string(cand),
			})
			return resp, outFile, nil
		}
		if i == 0 && !errors.Is(err, transport.ErrUnreachable) && !transport.IsTransient(err) {
			// The owner executed the reduce and failed: an application
			// error, not a lost partition.
			sp.Annotate("error", err.Error())
			return RunReduceResp{}, "", err
		}
		lastErr = err
	}
	sp.Annotate("error", "partition lost")
	return RunReduceResp{}, "", errPartitionLost{part: t.part, owner: t.owner, cause: lastErr}
}

// reduceCandidates orders the nodes that may be able to execute a
// partition's reduce: the recorded segment owner first, then the
// recorded intermediate replica, then the surviving members of the
// partition bound's current ring replica set. Any of the latter gather
// the segments remotely, which also recovers asymmetric partitions where
// the owner is unreachable from the driver but not from a peer.
func (d *Driver) reduceCandidates(st *runState, t reduceTask) []hashing.NodeID {
	out := []hashing.NodeID{t.owner}
	seen := map[hashing.NodeID]bool{t.owner: true}
	if t.replica != "" && !seen[t.replica] {
		out = append(out, t.replica)
		seen[t.replica] = true
	}
	if t.part < len(st.mk.Bounds) {
		if set, err := d.ring().ReplicaSet(st.mk.Bounds[t.part], 3); err == nil {
			for _, c := range set {
				if !seen[c] {
					out = append(out, c)
					seen[c] = true
				}
			}
		}
	}
	return out
}

// recoverPartitions is lost-partition recovery, the heart of the
// self-healing layer: each lost partition is re-homed to a surviving
// ring node, the contributing map tasks are re-executed through the
// scheduler with a strictly higher attempt and a partition filter (only
// the lost partitions are re-shuffled; surviving partitions keep their
// segments untouched), and the returned tasks re-run the reduces at the
// new owners. The store's attempt/seq dedup discards any stale straggler
// spills from the dead node's generation.
func (d *Driver) recoverPartitions(ctx context.Context, st *runState, lost []lostPart) ([]reduceTask, error) {
	if len(st.mapTasks) == 0 {
		return nil, fmt.Errorf("mapreduce: cannot recover: map tasks are not re-executable (tag-reused intermediates): %w", lost[0].err)
	}
	_, sp := d.tracer.StartSpan(ctx, "driver.partition_recovery")
	defer sp.End()
	ring := d.ring()
	var retry []reduceTask
	var only []int
	for _, l := range lost {
		var newOwner hashing.NodeID
		if l.t.part < len(st.mk.Bounds) {
			if set, err := ring.ReplicaSet(st.mk.Bounds[l.t.part], 3); err == nil {
				for _, c := range set {
					if c != l.t.owner && c != l.t.replica {
						newOwner = c
						break
					}
				}
			}
		}
		if newOwner == "" {
			return nil, fmt.Errorf("mapreduce: no surviving node can adopt reduce partition %d: %w", l.t.part, l.err)
		}
		d.reg.Counter("mr.driver.partition_recoveries").Inc()
		st.res.RecoveredPartitions++
		sp.Annotate(partitionName(l.t.part), string(newOwner))
		d.events.Emit(events.KindTask, "partition.rehome", events.F{
			Job: st.spec.ID, Task: partitionName(l.t.part), Detail: string(newOwner),
		})
		st.mk.Servers[l.t.part] = newOwner
		var newReplica hashing.NodeID
		if len(st.mk.Replicas) > 0 {
			if succ, err := ring.Successor(newOwner); err == nil && succ != newOwner && succ != l.t.owner {
				newReplica = succ
			}
			st.mk.Replicas[l.t.part] = newReplica
		}
		only = append(only, l.t.part)
		retry = append(retry, reduceTask{part: l.t.part, owner: newOwner, replica: newReplica})
	}
	d.emitEvent(st.spec.ID, "recovery")
	d.events.Emit(events.KindJob, "job.recovery", events.F{
		Job: st.spec.ID, Detail: fmt.Sprintf("partitions=%d", len(lost)),
	})
	d.recordFlight(st.spec.ID, "recovery")
	// The recovery maps push strictly higher attempts: invalidate every
	// merged-intermediate cache entry by moving the reduces to a new
	// epoch key.
	st.reduceEpoch++
	// Record the re-homing durably before re-shuffling, so a resume after
	// a further failure reduces at the adopted owners.
	if st.jw != nil {
		snap := copyMarker(st.mk)
		st.jw.updateSync(func(j *journal) { j.Mk = snap })
	}
	// Re-execute every contributing map with an attempt strictly above
	// anything pushed before (including prior driver generations).
	for _, t := range st.mapTasks {
		if st.attempts[t.ID] < st.attemptBase {
			st.attempts[t.ID] = st.attemptBase
		}
		st.attempts[t.ID]++
	}
	scratch := Result{Job: st.spec.ID}
	rmk := copyMarker(st.mk)
	rmk.PartBytes = make([]int64, len(st.mk.PartBytes))
	j := &activeJob{
		spec:     st.spec,
		ns:       st.ns,
		mk:       &rmk,
		res:      &scratch,
		attempts: st.attempts,
		only:     only,
	}
	if err := d.runMapPhase(ctx, j, st.mapTasks); err != nil {
		return nil, fmt.Errorf("mapreduce: partition-recovery map re-execution: %w", err)
	}
	// The re-shuffle and re-reads are real work the job paid for.
	st.res.ShuffleBytes += scratch.ShuffleBytes
	st.res.CacheHits += scratch.CacheHits
	st.res.CacheMisses += scratch.CacheMisses
	return retry, nil
}

// rehomeDeadPartitions repairs an adopted job's partition table against
// the current ring before any task runs: partitions whose journaled owner
// left the ring are promoted to their intermediate replica when one is
// alive (the replica holds full spill copies), or re-homed to a surviving
// node otherwise. Re-homed partitions lost their data with the owner and
// are returned for a filtered re-shuffle.
func (d *Driver) rehomeDeadPartitions(ctx context.Context, st *runState) ([]int, error) {
	ring := d.ring()
	live := make(map[hashing.NodeID]bool)
	for _, id := range ring.Members() {
		live[id] = true
	}
	_, sp := d.tracer.StartSpan(ctx, "driver.partition_rehome")
	defer sp.End()
	var dead []int
	changed := false
	for p, owner := range st.mk.Servers {
		if live[owner] {
			continue
		}
		if _, done := st.partsDone[p]; done {
			continue // output already stored and replicated in the FS
		}
		var replica hashing.NodeID
		if p < len(st.mk.Replicas) {
			replica = st.mk.Replicas[p]
		}
		if replica != "" && live[replica] {
			// The replica holds a full copy of every pushed spill: promote
			// it and grow a fresh replica behind it.
			st.mk.Servers[p] = replica
			var next hashing.NodeID
			if succ, err := ring.Successor(replica); err == nil && succ != replica {
				next = succ
			}
			st.mk.Replicas[p] = next
			sp.Annotate(partitionName(p), "promoted "+string(replica))
			d.events.Emit(events.KindTask, "partition.rehome", events.F{
				Job: st.spec.ID, Task: partitionName(p), Detail: "promoted " + string(replica),
			})
			changed = true
			continue
		}
		// Owner (and replica, if any) died with the intermediates. The ring
		// no longer contains them, so any replica-set member is a live home.
		var newOwner hashing.NodeID
		if p < len(st.mk.Bounds) {
			if set, err := ring.ReplicaSet(st.mk.Bounds[p], 3); err == nil && len(set) > 0 {
				newOwner = set[0]
			}
		}
		if newOwner == "" {
			return nil, fmt.Errorf("mapreduce: no surviving node can adopt reduce partition %d of resumed job %s", p, st.spec.ID)
		}
		d.reg.Counter("mr.driver.partition_recoveries").Inc()
		st.res.RecoveredPartitions++
		st.mk.Servers[p] = newOwner
		if len(st.mk.Replicas) > 0 {
			var next hashing.NodeID
			if succ, err := ring.Successor(newOwner); err == nil && succ != newOwner {
				next = succ
			}
			st.mk.Replicas[p] = next
		}
		st.mk.PartBytes[p] = 0 // nothing survives; the re-shuffle refills it
		sp.Annotate(partitionName(p), "re-homed "+string(newOwner))
		d.events.Emit(events.KindTask, "partition.rehome", events.F{
			Job: st.spec.ID, Task: partitionName(p), Detail: string(newOwner),
		})
		dead = append(dead, p)
		changed = true
	}
	if len(dead) > 0 {
		d.emitEvent(st.spec.ID, "recovery")
		d.events.Emit(events.KindJob, "job.recovery", events.F{
			Job: st.spec.ID, Detail: fmt.Sprintf("partitions=%d", len(dead)),
		})
		d.recordFlight(st.spec.ID, "recovery")
	}
	// Persist the repaired table before any spill is pushed at it, so a
	// further failure resumes against the adopted owners.
	if changed && st.jw != nil {
		snap := copyMarker(st.mk)
		st.jw.updateSync(func(j *journal) { j.Mk = snap })
	}
	return dead, nil
}

// reshuffleLostPartitions re-executes an adopted job's journaled-done map
// tasks with a partition filter, restoring exactly the re-homed
// partitions' intermediates at their new owners. The resumed generation's
// attempt stride makes these spills supersede any stale ones a dying
// pusher may still deliver.
func (d *Driver) reshuffleLostPartitions(ctx context.Context, st *runState, prior *journal, only []int) error {
	if len(st.mapTasks) == 0 {
		return fmt.Errorf("mapreduce: cannot re-shuffle lost partitions of job %s: map tasks are not re-executable", st.spec.ID)
	}
	var redo []scheduler.Task
	for _, t := range st.mapTasks {
		if prior.MapsDone[t.ID] {
			redo = append(redo, t)
		}
	}
	if len(redo) == 0 {
		return nil // every map re-ran this generation and already pushed to the new owners
	}
	for _, t := range redo {
		if st.attempts[t.ID] < st.attemptBase {
			st.attempts[t.ID] = st.attemptBase
		}
		st.attempts[t.ID]++
	}
	scratch := Result{Job: st.spec.ID}
	j := &activeJob{
		spec: st.spec,
		ns:   st.ns,
		// The live marker, on purpose: the re-homed partitions' PartBytes
		// must accumulate where the reduce phase reads them.
		mk:       st.mk,
		res:      &scratch,
		attempts: st.attempts,
		jw:       st.jw,
		only:     only,
	}
	if err := d.runMapPhase(ctx, j, redo); err != nil {
		return fmt.Errorf("mapreduce: lost-partition re-shuffle: %w", err)
	}
	st.res.ShuffleBytes += scratch.ShuffleBytes
	st.res.CacheHits += scratch.CacheHits
	st.res.CacheMisses += scratch.CacheMisses
	return nil
}

// call invokes a worker method over the network (the driver node is
// itself a listening worker, so self-calls take the same path).
func (d *Driver) call(ctx context.Context, to hashing.NodeID, method string, req, resp any) error {
	body, err := transport.Encode(req)
	if err != nil {
		return err
	}
	out, err := d.net.Call(ctx, to, method, body)
	if err != nil {
		return err
	}
	return transport.Decode(out, resp)
}

// Collect reads and decodes every output file of a completed job,
// returning the merged key-value pairs (sorted within each partition;
// partitions concatenated in partition order).
func (d *Driver) Collect(ctx context.Context, res Result, user string) ([]KV, error) {
	var out []KV
	for _, f := range res.OutputFiles {
		data, err := d.fs.ReadFile(ctx, f, user)
		if err != nil {
			return nil, fmt.Errorf("mapreduce: collect %q: %w", f, err)
		}
		kvs, err := DecodeKVs(data)
		if err != nil {
			return nil, fmt.Errorf("mapreduce: collect %q: %w", f, err)
		}
		out = append(out, kvs...)
	}
	return out, nil
}

// DropIntermediates removes a namespace's segments cluster-wide, along
// with the job's journal done-record.
func (d *Driver) DropIntermediates(ctx context.Context, spec JobSpec) {
	d.fs.DropJob(ctx, spec.Namespace())
	if !spec.DisableJournal {
		if err := d.fs.Delete(ctx, journalFile(spec.ID), spec.User); err != nil {
			// Best effort, like the segment sweep; the counter keeps a
			// stuck journal observable.
			d.reg.Counter("mr.driver.journal_errors").Inc()
		}
	}
}

func sum(xs []int64) int64 {
	var total int64
	for _, x := range xs {
		total += x
	}
	return total
}
