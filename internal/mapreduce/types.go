// Package mapreduce implements EclipseMR's distributed MapReduce engine
// on top of the DHT file system and the distributed in-memory cache:
//
//   - Map tasks are placed by the pluggable job scheduler (LAF or Delay)
//     according to the hash keys of their input blocks, read their input
//     through iCache, and proactively shuffle intermediate results: each
//     mapper partitions its output by intermediate hash key, buffers it,
//     and pushes 32 MB spills to the reducer-side DHT file system while
//     the map is still running (§II-D).
//   - Reduce tasks are scheduled where the intermediate results were
//     stored (the partition's ring owner), so the shuffle needs no
//     map-completion barrier and no reducer-side pull.
//   - Applications may tag intermediate results or iteration outputs for
//     reuse; a later job with the same tag skips its map phase entirely
//     (§II-B, §II-C).
//
// Because tasks execute on remote workers, map and reduce functions are
// referenced by registered application name, as in Hadoop.
package mapreduce

import (
	"fmt"
	"sort"
	"sync"
	"time"
)

// Params carries per-job application parameters (e.g. k-means centroids,
// a grep pattern) to every task.
type Params map[string][]byte

// Get returns a parameter as a string.
func (p Params) Get(key string) string { return string(p[key]) }

// Clone deep-copies the parameter set.
func (p Params) Clone() Params {
	out := make(Params, len(p))
	for k, v := range p {
		out[k] = append([]byte(nil), v...)
	}
	return out
}

// Emit receives one intermediate or output key-value pair.
type Emit func(key string, value []byte) error

// MapFunc processes one input block.
type MapFunc func(params Params, input []byte, emit Emit) error

// ReduceFunc processes all values of one intermediate key. It also serves
// as the optional combiner run over map-side buffers before spilling.
type ReduceFunc func(params Params, key string, values [][]byte, emit Emit) error

// App is a registered MapReduce application.
type App struct {
	// Map is required.
	Map MapFunc
	// Reduce is required.
	Reduce ReduceFunc
	// Combine optionally pre-aggregates map output before each spill,
	// cutting shuffle volume (word count sums counts map-side, etc.).
	Combine ReduceFunc
}

var (
	registryMu sync.RWMutex
	registry   = make(map[string]App)
)

// Register installs an application under a name. Registering the same
// name twice panics: application sets are program-level configuration and
// a silent overwrite would mask a deployment bug.
func Register(name string, app App) {
	if app.Map == nil || app.Reduce == nil {
		panic("mapreduce: Register " + name + ": Map and Reduce are required")
	}
	registryMu.Lock()
	defer registryMu.Unlock()
	if _, dup := registry[name]; dup {
		panic("mapreduce: Register called twice for " + name)
	}
	registry[name] = app
}

// lookupApp fetches a registered application.
func lookupApp(name string) (App, error) {
	registryMu.RLock()
	defer registryMu.RUnlock()
	app, ok := registry[name]
	if !ok {
		return App{}, fmt.Errorf("mapreduce: application %q not registered", name)
	}
	return app, nil
}

// RegisteredApps lists registered application names, sorted.
func RegisteredApps() []string {
	registryMu.RLock()
	defer registryMu.RUnlock()
	names := make([]string, 0, len(registry))
	for n := range registry {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// JobSpec describes one MapReduce job.
type JobSpec struct {
	// ID uniquely names the job run. Required.
	ID string
	// App is the registered application name. Required.
	App string
	// Inputs are DHT file system file names whose blocks become map
	// tasks. Required unless the job reuses tagged intermediates.
	Inputs []string
	// User is the requesting user, checked against file permissions.
	User string
	// Params are broadcast to every task.
	Params Params
	// SpillThreshold is the proactive-shuffle buffer size per reduce
	// partition; when a mapper's buffered output for a partition exceeds
	// it, the buffer is pushed to the reducer-side DHT file system. The
	// paper's experiments use 32 MB. Zero selects DefaultSpillThreshold.
	SpillThreshold int
	// ReuseTag, when set, namespaces the job's intermediate results so a
	// later job with the same tag (and App) can skip its map phase and
	// reuse them directly.
	ReuseTag string
	// CacheIntermediates caches merged partition input in oCache on the
	// reducer side so re-reduces over the same tag skip the file system.
	CacheIntermediates bool
	// CacheOutputs stores each reduce partition's output in the reduce
	// node's oCache (iteration outputs of iterative jobs, §II-C).
	CacheOutputs bool
	// IntermediateTTL bounds cached intermediate lifetime (the paper's
	// time-to-live on stored intermediate results). Zero means no TTL.
	IntermediateTTL time.Duration
	// MaxAttempts bounds per-task retries; zero selects 3.
	MaxAttempts int
	// ReplicateIntermediates pushes every shuffle spill to the partition
	// owner's ring successor as well, so a reduce task can still assemble
	// its complete input when the owner crashes mid-job. The paper leaves
	// intermediates unreplicated (lost spills force map re-execution);
	// this opt-in trades shuffle bandwidth for crash tolerance.
	ReplicateIntermediates bool
	// SpeculativeMultiple, when > 0, hedges a duplicate execution of any
	// map task whose RPC has been running longer than this multiple of
	// the job-wide p99 map latency observed so far (straggler detection
	// from the live histogram). Zero disables latency-relative
	// speculation.
	SpeculativeMultiple float64
	// SpeculativeDeadline, when > 0, hedges a duplicate execution of any
	// map task that has been running at least this long, regardless of
	// the latency histogram. Zero disables the hard deadline.
	SpeculativeDeadline time.Duration
	// DisableJournal skips the durable job journal. Without a journal an
	// interrupted job cannot be resumed by a restarted or newly elected
	// manager; completed work is lost with the driver.
	DisableJournal bool
	// DisableRecovery restores the legacy fail-fast behavior when a
	// reduce partition's intermediates are lost with their owner: the job
	// fails instead of re-executing the contributing map tasks and
	// re-homing the partition on a surviving ring node.
	DisableRecovery bool
}

// DefaultSpillThreshold matches the paper's 32 MB payload buffer.
const DefaultSpillThreshold = 32 << 20

// Namespace returns the segment namespace: the reuse tag when sharing is
// requested, otherwise the private job ID.
func (s JobSpec) Namespace() string {
	if s.ReuseTag != "" {
		return "tag:" + s.ReuseTag
	}
	return "job:" + s.ID
}

// speculative reports whether the spec enables straggler hedging.
func (s JobSpec) speculative() bool {
	return s.SpeculativeMultiple > 0 || s.SpeculativeDeadline > 0
}

// maxAttempts returns the per-task retry bound with the default applied.
func (s JobSpec) maxAttempts() int {
	if s.MaxAttempts <= 0 {
		return 3
	}
	return s.MaxAttempts
}

// validate checks required fields.
func (s JobSpec) validate() error {
	if s.ID == "" {
		return fmt.Errorf("mapreduce: job ID is required")
	}
	if s.App == "" {
		return fmt.Errorf("mapreduce: job %s: application name is required", s.ID)
	}
	if _, err := lookupApp(s.App); err != nil {
		return err
	}
	if len(s.Inputs) == 0 {
		return fmt.Errorf("mapreduce: job %s: at least one input file is required", s.ID)
	}
	return nil
}

// Result summarizes a completed job.
type Result struct {
	Job string
	// OutputFiles lists the DHT file system files holding reduce output,
	// one per non-empty partition.
	OutputFiles []string
	// MapTasks / ReduceTasks are the executed task counts (zero map tasks
	// means the job reused tagged intermediates).
	MapTasks    int
	ReduceTasks int
	// MapsSkipped reports that the map phase was skipped via reuse.
	MapsSkipped bool
	// Resumed reports the run was adopted from a durable journal rather
	// than started fresh; MapTasks/ReduceTasks then count only the work
	// this driver re-executed.
	Resumed bool
	// RecoveredPartitions counts reduce partitions whose intermediates
	// were lost with their owner and rebuilt by re-executing the
	// contributing map tasks on surviving nodes (zero on a fault-free
	// run).
	RecoveredPartitions int
	// CacheHits / CacheMisses aggregate worker-side iCache+oCache
	// counters attributable to this job's block reads.
	CacheHits   int64
	CacheMisses int64
	// ShuffleBytes is the total intermediate data pushed by mappers.
	ShuffleBytes int64
	// Elapsed is the wall-clock job time observed by the driver.
	Elapsed time.Duration
}
