package mapreduce

import (
	"context"
	"strconv"
	"time"

	"eclipsemr/internal/events"
	"eclipsemr/internal/hashing"
	"eclipsemr/internal/scheduler"
)

// Speculative straggler re-execution: a single scanner goroutine watches
// the driver's in-flight map RPCs and hedges a duplicate execution of any
// task that has been running suspiciously long — longer than a
// configurable multiple of the job-wide p99 map latency observed so far,
// or past a hard per-task deadline. The hedge runs on a ring replica of
// the task's input block; the first finisher wins and the loser's result
// is discarded by the completed-task guard.
//
// Hedges reuse the original attempt number on purpose. Map execution is
// deterministic, so the hedge pushes byte-identical (task, attempt, seq)
// spill segments, which the segment store treats as idempotent
// retransmits. A bumped attempt would be wrong: the store deletes
// lower-attempt spills when a higher attempt arrives, so a hedge that
// spilled partially and then lost the race (or failed) would have
// destroyed the original's data.

const (
	// speculationTick is the scanner period; cheap (a map walk and one
	// histogram snapshot), so it can be tight enough to catch stragglers
	// in short test jobs.
	speculationTick = 2 * time.Millisecond
	// speculationMinSamples gates p99-relative detection until the
	// latency histogram has enough completions to mean something.
	speculationMinSamples = 16
	// speculationMaxHedges bounds concurrent hedge RPCs driver-wide, so a
	// slow cluster cannot amplify its own load with duplicate work.
	speculationMaxHedges = 16
)

// inflightTask records one running map RPC for the straggler scanner.
type inflightTask struct {
	j       *activeJob
	t       scheduler.Task
	attempt int
	node    hashing.NodeID
	started time.Time
	hedged  bool
	// cancel aborts the original attempt's RPC; hedgeCancel (set under
	// specMu once a hedge launches) aborts the duplicate. Whichever
	// attempt completes the task cancels the other through
	// cancelInflight, so the loser's RPC unblocks immediately instead of
	// running to completion against a straggling node.
	cancel      context.CancelFunc
	hedgeCancel context.CancelFunc
}

func inflightKey(job, task string) string { return job + "\x00" + task }

// trackInflight registers a dispatched map RPC with the straggler
// scanner. Only jobs that enable speculation are tracked. cancel aborts
// the attempt's RPC and is invoked when a duplicate attempt wins.
func (d *Driver) trackInflight(j *activeJob, t scheduler.Task, attempt int, node hashing.NodeID, cancel context.CancelFunc) {
	if !j.spec.speculative() {
		return
	}
	d.specMu.Lock()
	d.inflight[inflightKey(t.Job, t.ID)] = &inflightTask{
		j: j, t: t, attempt: attempt, node: node, started: time.Now(), cancel: cancel,
	}
	d.specMu.Unlock()
}

// untrackInflight removes a finished map RPC from the scanner.
func (d *Driver) untrackInflight(job, task string) {
	d.specMu.Lock()
	delete(d.inflight, inflightKey(job, task))
	d.specMu.Unlock()
}

// cancelInflight drops a completed task from the straggler scanner and
// cancels whichever of its attempts is still in flight — the original
// when a hedge won, the hedge when the original won. Safe to call with
// d.mu held: the lock order is d.mu before specMu, and context cancel
// functions take neither.
func (d *Driver) cancelInflight(job, task string) {
	key := inflightKey(job, task)
	d.specMu.Lock()
	it := d.inflight[key]
	delete(d.inflight, key)
	d.specMu.Unlock()
	if it == nil {
		return
	}
	if it.cancel != nil {
		it.cancel()
	}
	if it.hedgeCancel != nil {
		it.hedgeCancel()
	}
}

// maybeStartSpeculator lazily starts the scanner the first time a
// speculative job runs. The scanner lives until the driver closes.
func (d *Driver) maybeStartSpeculator(spec JobSpec) {
	if !spec.speculative() {
		return
	}
	d.mu.Lock()
	start := !d.specOn && !d.closed
	if start {
		d.specOn = true
	}
	d.mu.Unlock()
	if start {
		go d.speculationLoop()
	}
}

// speculationLoop drives the periodic straggler scan.
func (d *Driver) speculationLoop() {
	ticker := time.NewTicker(speculationTick)
	defer ticker.Stop()
	for range ticker.C {
		d.mu.Lock()
		closed := d.closed
		d.mu.Unlock()
		if closed {
			return
		}
		d.speculatePass(time.Now())
	}
}

// speculatePass hedges every tracked RPC that exceeds its job's
// straggler threshold.
func (d *Driver) speculatePass(now time.Time) {
	snap := d.reg.Histogram("mr.driver.map_rpc_ns").Snapshot()
	var p99 time.Duration
	if snap.Count() >= speculationMinSamples {
		p99 = time.Duration(snap.Quantile(0.99))
	}
	var launch []*inflightTask
	d.specMu.Lock()
	for _, it := range d.inflight {
		if it.hedged {
			continue
		}
		threshold := time.Duration(0)
		if m := it.j.spec.SpeculativeMultiple; m > 0 && p99 > 0 {
			threshold = time.Duration(float64(p99) * m)
		}
		if dl := it.j.spec.SpeculativeDeadline; dl > 0 && (threshold == 0 || dl < threshold) {
			threshold = dl
		}
		if threshold <= 0 || now.Sub(it.started) < threshold {
			continue
		}
		it.hedged = true
		launch = append(launch, it)
	}
	d.specMu.Unlock()
	for _, it := range launch {
		select {
		case d.hedgeSem <- struct{}{}:
			go func(ctx context.Context, it *inflightTask) {
				defer func() { <-d.hedgeSem }()
				d.hedgeMapTask(ctx, it)
			}(it.j.ctx, it)
		default:
			// Hedge budget exhausted: let the next pass retry this task.
			d.specMu.Lock()
			it.hedged = false
			d.specMu.Unlock()
		}
	}
}

// hedgeMapTask runs one speculative duplicate of a straggling map task on
// a ring replica of its input block. ctx is the job's root context; the
// hedge RPC runs under its own cancellable child so the original's
// completion can abort it mid-flight.
func (d *Driver) hedgeMapTask(ctx context.Context, it *inflightTask) {
	j := it.j
	d.mu.Lock()
	dead := j.failed || j.completed[it.t.ID]
	d.mu.Unlock()
	if dead {
		return
	}
	var target hashing.NodeID
	if set, err := d.ring().ReplicaSet(it.t.HashKey, 3); err == nil {
		for _, cand := range set {
			if cand != it.node {
				target = cand
				break
			}
		}
	}
	if target == "" {
		return // no distinct replica to hedge on
	}
	d.reg.Counter("mr.driver.speculative_launched").Inc()
	d.events.Emit(events.KindSpec, "spec.launch", events.F{
		Job: it.t.Job, Task: it.t.ID, Attempt: it.attempt, Detail: string(target),
	})
	tctx, sp := d.tracer.StartSpan(ctx, "driver.map_task")
	sp.Annotate("task", it.t.ID)
	sp.Annotate("node", string(target))
	sp.Annotate("speculative", "true")
	sp.Annotate("attempt", strconv.Itoa(it.attempt))
	hctx, hcancel := context.WithCancel(tctx)
	defer hcancel()
	// Register the hedge's cancel so the original attempt, if it wins,
	// aborts this RPC. Guarded against the entry having been replaced by
	// a retry's re-track while the hedge sat behind the semaphore.
	d.specMu.Lock()
	if cur := d.inflight[inflightKey(it.t.Job, it.t.ID)]; cur == it {
		it.hedgeCancel = hcancel
	}
	d.specMu.Unlock()
	var resp RunMapResp
	// Same attempt as the original on purpose: identical spills are
	// idempotent retransmits (see the file comment).
	err := d.call(hctx, target, MethodRunMap, d.mapReq(j, it.t, it.attempt), &resp)
	d.mu.Lock()
	won := err == nil && !j.failed && !j.completed[it.t.ID]
	if won {
		d.reg.Counter("mr.driver.speculative_won").Inc()
		d.events.Emit(events.KindSpec, "spec.win", events.F{
			Job: it.t.Job, Task: it.t.ID, Attempt: it.attempt, Detail: string(target),
		})
		d.completeMapLocked(j, it.t.ID, resp)
	} else {
		d.reg.Counter("mr.driver.speculative_wasted").Inc()
		d.events.Emit(events.KindSpec, "spec.waste", events.F{
			Job: it.t.Job, Task: it.t.ID, Attempt: it.attempt, Detail: string(target),
		})
	}
	d.mu.Unlock()
	if err != nil {
		sp.Annotate("error", err.Error())
	} else if won {
		sp.Annotate("speculation", "won")
	} else {
		sp.Annotate("speculation", "lost")
	}
	sp.End()
	d.signal()
}
