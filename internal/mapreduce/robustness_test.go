package mapreduce

import (
	"bytes"
	"testing"
	"testing/quick"
)

// Property: DecodeKVs never panics on arbitrary bytes — it either returns
// an error or a pair list that re-encodes to a prefix-compatible stream.
func TestDecodeKVsArbitraryBytes(t *testing.T) {
	f := func(data []byte) bool {
		kvs, err := DecodeKVs(data)
		if err != nil {
			return true // rejected: fine
		}
		// Accepted input must round-trip exactly.
		return bytes.Equal(EncodeKVs(kvs), data)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Fatal(err)
	}
}

// Property: Encode→Decode is the identity for arbitrary pair lists.
func TestKVRoundTripArbitrary(t *testing.T) {
	f := func(keys []string, values [][]byte) bool {
		n := len(keys)
		if len(values) < n {
			n = len(values)
		}
		kvs := make([]KV, n)
		for i := 0; i < n; i++ {
			kvs[i] = KV{Key: keys[i], Value: values[i]}
		}
		out, err := DecodeKVs(EncodeKVs(kvs))
		if err != nil || len(out) != len(kvs) {
			return false
		}
		for i := range kvs {
			if out[i].Key != kvs[i].Key || !bytes.Equal(out[i].Value, kvs[i].Value) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

// Property: GroupByKey conserves every value exactly once.
func TestGroupByKeyConservesValues(t *testing.T) {
	f := func(keys []uint8, payload uint8) bool {
		kvs := make([]KV, len(keys))
		for i, k := range keys {
			kvs[i] = KV{Key: string(rune('a' + k%16)), Value: []byte{payload, k}}
		}
		groups := GroupByKey(kvs)
		total := 0
		for _, g := range groups {
			total += len(g.Values)
			for i := 1; i < len(g.Values); i++ {
				if g.Key == "" {
					return false
				}
			}
		}
		return total == len(kvs)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}
