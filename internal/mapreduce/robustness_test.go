package mapreduce

import (
	"bytes"
	"context"
	"testing"
	"testing/quick"

	"eclipsemr/internal/hashing"
)

// Property: DecodeKVs never panics on arbitrary bytes — it either returns
// an error or a pair list that re-encodes to a prefix-compatible stream.
func TestDecodeKVsArbitraryBytes(t *testing.T) {
	f := func(data []byte) bool {
		kvs, err := DecodeKVs(data)
		if err != nil {
			return true // rejected: fine
		}
		// Accepted input must round-trip exactly.
		return bytes.Equal(EncodeKVs(kvs), data)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Fatal(err)
	}
}

// Property: Encode→Decode is the identity for arbitrary pair lists.
func TestKVRoundTripArbitrary(t *testing.T) {
	f := func(keys []string, values [][]byte) bool {
		n := len(keys)
		if len(values) < n {
			n = len(values)
		}
		kvs := make([]KV, n)
		for i := 0; i < n; i++ {
			kvs[i] = KV{Key: keys[i], Value: values[i]}
		}
		out, err := DecodeKVs(EncodeKVs(kvs))
		if err != nil || len(out) != len(kvs) {
			return false
		}
		for i := range kvs {
			if out[i].Key != kvs[i].Key || !bytes.Equal(out[i].Value, kvs[i].Value) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

// Property: GroupByKey conserves every value exactly once.
func TestGroupByKeyConservesValues(t *testing.T) {
	f := func(keys []uint8, payload uint8) bool {
		kvs := make([]KV, len(keys))
		for i, k := range keys {
			kvs[i] = KV{Key: string(rune('a' + k%16)), Value: []byte{payload, k}}
		}
		groups := GroupByKey(kvs)
		total := 0
		for _, g := range groups {
			total += len(g.Values)
			for i := 1; i < len(g.Values); i++ {
				if g.Key == "" {
					return false
				}
			}
		}
		return total == len(kvs)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

// TestDecodeKVsHugeLength is the regression test for the 32-bit length
// overflow: a declared key or value length at or above 2^31 used to wrap
// negative through int(uint32) on 32-bit platforms and corrupt the scan.
// Lengths must now be validated against the remaining input in unsigned
// space before conversion, so these streams error out everywhere.
func TestDecodeKVsHugeLength(t *testing.T) {
	cases := map[string][]byte{
		// Key length 0x80000000 with 1 byte of data behind it.
		"huge key": {0x80, 0x00, 0x00, 0x00, 'x'},
		// Key length 0xffffffff (would be -1 as int32).
		"max key": {0xff, 0xff, 0xff, 0xff, 'x'},
		// Valid 1-byte key, then value length 0x80000000.
		"huge value": {0x00, 0x00, 0x00, 0x01, 'k', 0x80, 0x00, 0x00, 0x00, 'v'},
		// Valid 1-byte key, then value length 0xffffffff.
		"max value": {0x00, 0x00, 0x00, 0x01, 'k', 0xff, 0xff, 0xff, 0xff, 'v'},
	}
	for name, data := range cases {
		if kvs, err := DecodeKVs(data); err == nil {
			t.Errorf("%s: DecodeKVs accepted %x as %v", name, data, kvs)
		}
	}
}

// TestAsyncSpillRetransmitDedup pins that the coalesced batch path keeps
// the store's (task, attempt, seq) dedup exactly: re-running the same map
// attempt (a duplicate dispatch) replaces its spills instead of
// duplicating them, and a higher attempt supersedes them all.
func TestAsyncSpillRetransmitDedup(t *testing.T) {
	ec := newEngineCluster(t, engineOpts{nodes: 3})
	text, _ := wideCorpus(150, 3)
	ec.upload(t, "dedup.txt", text, 1<<20)
	meta, err := ec.fs[ec.ids[0]].Lookup(context.Background(), "dedup.txt", "tester")
	if err != nil {
		t.Fatal(err)
	}
	table, err := hashing.AlignedRangeTable(ec.ring)
	if err != nil {
		t.Fatal(err)
	}
	req := RunMapReq{
		Job: "dd-1", Namespace: "job:dd-1", App: "test-wordcount",
		BlockKey: meta.BlockKeys[0], Task: "t0", Attempt: 0,
		ReduceServers: table.Servers(), ReduceBounds: table.Bounds(),
		SpillThreshold: 64,
	}
	run := func() {
		t.Helper()
		if _, err := ec.workers[ec.ids[0]].runMap(context.Background(), req); err != nil {
			t.Fatal(err)
		}
	}
	count := func() (segments int, bytes int) {
		t.Helper()
		for part, owner := range table.Servers() {
			for _, seg := range ec.fs[owner].Store().ReadTaggedSegments(req.Namespace, partitionName(part)) {
				segments++
				bytes += len(seg.Data)
			}
		}
		return segments, bytes
	}
	run()
	segs1, bytes1 := count()
	if segs1 == 0 {
		t.Fatal("first attempt stored no segments")
	}
	run() // duplicate dispatch of the same attempt: replaced, not appended
	if segs2, bytes2 := count(); segs2 != segs1 || bytes2 != bytes1 {
		t.Fatalf("after retransmit: %d segments/%d bytes, want %d/%d", segs2, bytes2, segs1, bytes1)
	}
	req.Attempt = 1
	run() // higher attempt supersedes everything from attempt 0
	segs3, bytes3 := count()
	if segs3 != segs1 || bytes3 != bytes1 {
		t.Fatalf("after supersede: %d segments/%d bytes, want %d/%d", segs3, bytes3, segs1, bytes1)
	}
	for part, owner := range table.Servers() {
		for _, seg := range ec.fs[owner].Store().ReadTaggedSegments(req.Namespace, partitionName(part)) {
			if seg.Attempt != 1 {
				t.Fatalf("partition %d still holds attempt-%d segment after supersede", part, seg.Attempt)
			}
		}
	}
}
