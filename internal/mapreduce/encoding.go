package mapreduce

import (
	"encoding/binary"
	"fmt"
	"sort"
)

// KV is one key-value pair in the intermediate and output streams.
type KV struct {
	Key   string
	Value []byte
}

// Intermediate spills and reduce outputs cross the wire and the DHT file
// system as flat streams of length-prefixed pairs:
//
//	u32 keyLen | key | u32 valueLen | value | ...
//
// A hand-rolled format (rather than gob) keeps spills append-concatenable:
// the byte concatenation of two streams is the stream of their
// concatenated pairs, which is exactly what segment append gives us.

// AppendKV appends one encoded pair to buf and returns the extended slice.
func AppendKV(buf []byte, kv KV) []byte {
	var l [4]byte
	binary.BigEndian.PutUint32(l[:], uint32(len(kv.Key)))
	buf = append(buf, l[:]...)
	buf = append(buf, kv.Key...)
	binary.BigEndian.PutUint32(l[:], uint32(len(kv.Value)))
	buf = append(buf, l[:]...)
	buf = append(buf, kv.Value...)
	return buf
}

// EncodeKVs encodes a pair slice as one stream.
func EncodeKVs(kvs []KV) []byte {
	size := 0
	for _, kv := range kvs {
		size += 8 + len(kv.Key) + len(kv.Value)
	}
	buf := make([]byte, 0, size)
	for _, kv := range kvs {
		buf = AppendKV(buf, kv)
	}
	return buf
}

// DecodeKVs parses a stream back into pairs. Values are copied out of
// data, so the result outlives the input buffer.
func DecodeKVs(data []byte) ([]KV, error) { return decodeKVs(data, true) }

// decodeKVsView is DecodeKVs without the value copies: Values alias data,
// so the result is only valid while data is. The spill sender uses it to
// feed the combiner without duplicating a whole buffered spill.
func decodeKVsView(data []byte) ([]KV, error) { return decodeKVs(data, false) }

func decodeKVs(data []byte, copyValues bool) ([]KV, error) {
	var out []KV
	for off := 0; off < len(data); {
		if off+4 > len(data) {
			return nil, fmt.Errorf("mapreduce: truncated key length at offset %d", off)
		}
		// The wire lengths are untrusted u32s: bound them against the
		// remaining bytes in uint64 space *before* converting to int, so a
		// corrupt stream with a length >= 2^31 errors out instead of going
		// negative and panicking on 32-bit platforms.
		klen64 := uint64(binary.BigEndian.Uint32(data[off:]))
		off += 4
		if klen64 > uint64(len(data)-off) {
			return nil, fmt.Errorf("mapreduce: truncated key at offset %d", off)
		}
		klen := int(klen64)
		key := string(data[off : off+klen])
		off += klen
		if off+4 > len(data) {
			return nil, fmt.Errorf("mapreduce: truncated value length at offset %d", off)
		}
		vlen64 := uint64(binary.BigEndian.Uint32(data[off:]))
		off += 4
		if vlen64 > uint64(len(data)-off) {
			return nil, fmt.Errorf("mapreduce: truncated value at offset %d", off)
		}
		vlen := int(vlen64)
		value := data[off : off+vlen : off+vlen]
		if copyValues {
			value = append([]byte(nil), value...)
		}
		off += vlen
		out = append(out, KV{Key: key, Value: value})
	}
	return out, nil
}

// GroupByKey sorts pairs by key and collates the values of equal keys,
// preserving the pairs' relative order within a key (stable sort): the
// reducer contract.
func GroupByKey(kvs []KV) []Group {
	sorted := append([]KV(nil), kvs...)
	sort.SliceStable(sorted, func(i, j int) bool { return sorted[i].Key < sorted[j].Key })
	var out []Group
	for i := 0; i < len(sorted); {
		j := i
		var values [][]byte
		for ; j < len(sorted) && sorted[j].Key == sorted[i].Key; j++ {
			values = append(values, sorted[j].Value)
		}
		out = append(out, Group{Key: sorted[i].Key, Values: values})
		i = j
	}
	return out
}

// Group is one reduce input: a key and all of its values.
type Group struct {
	Key    string
	Values [][]byte
}
